/**
 * @file
 * Schedule-search portfolio race: MaxSAT vs beam search vs
 * branch-and-bound at matched anytime budgets.
 *
 * For each start schedule the full portfolio runs once
 * (search::runPortfolio) and the per-strategy SearchStats are reported:
 * expansions, prune/dead-end counts, best objective reached, and
 * expansions-to-first-improvement. The portfolio's best verified
 * objective is the gate metric — it is bit-deterministic at expansion
 * budgets, so the committed baseline is compared exactly:
 *
 *  - FAILS if the portfolio returns a schedule objective-worse than its
 *    start (the anytime contract);
 *  - FAILS if, at the default internal budgets, the portfolio's best
 *    objective regresses behind the committed baseline
 *    ($PROPHUNT_SEARCH_PORTFOLIO_BASELINE, default
 *    ../bench/results/search_portfolio_baseline.json).
 *
 * Budget overrides (PROPHUNT_SEARCH_EXPANSIONS,
 * PROPHUNT_SEARCH_MAXSAT_ITERS) disable the baseline gate: the
 * committed numbers are only meaningful at the budgets they were
 * recorded at. Writes $PROPHUNT_BENCH_OUT (default
 * BENCH_search_portfolio.json). PROPHUNT_FULL adds the rqt60 LDPC
 * config on top of the surface-code defaults.
 *
 * Expansion-rate gates (surface_d5_poor beam, also skipped under budget
 * overrides):
 *
 *  - FAILS if the incremental beam expands < 5x faster than a same-run
 *    scratch calibration (deep copy + from-scratch evaluate + full
 *    re-hash per expansion — the pre-incremental cost model). Same-run
 *    calibration makes this gate machine-independent.
 *  - FAILS if the machine's scratch calibration is at least as fast as
 *    the committed one (same-or-better hardware) but the beam rate
 *    drops below half the committed beam rate.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "search/incremental.h"
#include "search/portfolio.h"

using namespace prophunt;

namespace {

// Fixed internal budgets: the determinism contract makes the gate an
// exact comparison, but only while everyone runs the same budgets.
constexpr std::size_t kDefaultExpansions = 4000;
constexpr std::size_t kDefaultMaxSatIters = 2;
constexpr uint64_t kSeed = 29;

struct StrategyRow
{
    std::string name;
    bool winner = false;
    search::SearchStats stats;
};

struct Row
{
    std::string code;
    uint64_t startObjective = 0;
    uint64_t portfolioObjective = 0;
    double secs = 0.0;
    /** Same-run scratch-evaluation rate (0 = not calibrated). */
    double scratchRate = 0.0;
    std::vector<StrategyRow> strategies;
};

/**
 * Expansions/sec of the pre-incremental cost model: every expansion
 * pays a deep schedule copy, a from-scratch objective evaluation, and
 * a full schedule re-hash. The incremental beam rate is gated against
 * this number measured in the same process, so the ratio is a
 * machine-independent speedup, not an absolute-time assertion.
 */
double
scratchCalibration(const circuit::SmSchedule &start, std::size_t count)
{
    search::ScheduleObjective objective(start.codePtr());
    std::vector<search::Move> moves;
    search::enumerateMoves(start, moves);
    if (moves.empty() || count == 0) {
        return 0.0;
    }
    uint64_t sink = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < count; ++i) {
        circuit::SmSchedule next =
            search::applyMove(start, moves[i % moves.size()]);
        sink ^= objective.evaluate(next) ^ search::scheduleKey(next);
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    benchmark::DoNotOptimize(sink);
    return secs > 0.0 ? (double)count / secs : 0.0;
}

/** As decode_service: numeric @p key of @p code's entry in one of our
 * own committed JSON artifacts (0 when absent). */
double
baselineValue(const std::string &path, const std::string &code,
              const char *key)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        return 0.0;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);
    std::string anchor = "\"code\": \"" + code + "\"";
    std::size_t at = text.find(anchor);
    if (at == std::string::npos) {
        return 0.0;
    }
    std::string quoted = std::string("\"") + key + "\":";
    std::size_t k = text.find(quoted, at);
    if (k == std::string::npos) {
        return 0.0;
    }
    return std::atof(text.c_str() + k + quoted.size());
}

Row
race(const std::string &label, const circuit::SmSchedule &start,
     std::size_t rounds)
{
    core::PropHuntOptions opts;
    opts.iterations =
        phbench::envSize("PROPHUNT_SEARCH_MAXSAT_ITERS", kDefaultMaxSatIters);
    opts.samplesPerIteration = 100;
    opts.maxAmbiguousPerIteration = 4;
    opts.maxCost = 8;
    opts.seed = kSeed;
    opts.ler = phbench::lerOptions();
    opts.threads = phbench::config().threads;

    search::PortfolioOptions portfolio;
    portfolio.enabled = true;
    std::size_t expansions =
        phbench::envSize("PROPHUNT_SEARCH_EXPANSIONS", kDefaultExpansions);
    portfolio.beamBudget = {expansions, 0.0};
    portfolio.bnbBudget = {expansions, 0.0};

    search::ScheduleObjective objective(start.codePtr());
    Row row;
    row.code = label;
    row.startObjective = objective.evaluate(start);

    auto t0 = std::chrono::steady_clock::now();
    core::OptimizeResult res =
        search::runPortfolio(start, rounds, opts, portfolio);
    row.secs = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    row.portfolioObjective = objective.evaluate(res.finalSchedule());
    for (const search::StrategyReport &rep : res.searchReports) {
        row.strategies.push_back({rep.name, rep.winner, rep.stats});
    }

    std::printf("\n--- %s (start objective %llu) ---\n", label.c_str(),
                (unsigned long long)row.startObjective);
    std::printf("%14s %10s %8s %8s %16s %10s %10s %8s %8s %8s\n",
                "strategy", "expansions", "pruned", "dead",
                "best_objective", "first_imp", "exp/s", "tt_hit",
                "tt_miss", "winner");
    for (const StrategyRow &s : row.strategies) {
        std::printf(
            "%14s %10llu %8llu %8llu %16llu %10llu %10.0f %8llu %8llu "
            "%8s\n",
            s.name.c_str(), (unsigned long long)s.stats.expansions,
            (unsigned long long)s.stats.prunedByBound,
            (unsigned long long)s.stats.deadEnds,
            (unsigned long long)s.stats.bestObjective,
            (unsigned long long)s.stats.firstImprovementExpansions,
            s.stats.expansionsPerSec(),
            (unsigned long long)s.stats.transpositionHits,
            (unsigned long long)s.stats.transpositionMisses,
            s.winner ? "yes" : "");
    }
    std::printf("portfolio best %llu in %.2fs\n",
                (unsigned long long)row.portfolioObjective, row.secs);
    return row;
}

} // namespace

static void
BM_ObjectiveEvaluate(benchmark::State &state)
{
    code::SurfaceCode s(5);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    search::ScheduleObjective obj(cp);
    circuit::SmSchedule sched = circuit::poorSurfaceSchedule(s);
    for (auto _ : state) {
        benchmark::DoNotOptimize(obj.evaluate(sched));
    }
}
BENCHMARK(BM_ObjectiveEvaluate)->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    std::printf("=== Schedule-search portfolio: MaxSAT vs beam vs B&B at "
                "matched budgets ===\n");
    std::printf("Expected shape: beam/B&B find hook-alignment improvements "
                "within thousands of expansions; MaxSAT verifies against "
                "the circuit-level model but costs solver time.\n");

    std::vector<Row> rows;
    {
        code::SurfaceCode s(3);
        rows.push_back(race("surface_d3_poor",
                            circuit::poorSurfaceSchedule(s), 3));
    }
    {
        code::SurfaceCode s(5);
        rows.push_back(race("surface_d5_poor",
                            circuit::poorSurfaceSchedule(s), 5));
        rows.back().scratchRate =
            scratchCalibration(circuit::poorSurfaceSchedule(s), 400);
        std::printf("scratch calibration (d5): %.0f expansions/sec\n",
                    rows.back().scratchRate);
    }
    if (phbench::envFlag("PROPHUNT_FULL")) {
        auto c = code::benchmarkRqt60();
        auto cp = std::make_shared<const code::CssCode>(c);
        rows.push_back(
            race("rqt60_coloration", circuit::colorationSchedule(cp), 6));
    }

    bool failed = false;
    for (const Row &row : rows) {
        if (row.portfolioObjective > row.startObjective) {
            std::printf("FAIL: %s portfolio returned a worse schedule "
                        "than its start (%llu > %llu)\n",
                        row.code.c_str(),
                        (unsigned long long)row.portfolioObjective,
                        (unsigned long long)row.startObjective);
            failed = true;
        }
    }

    // Committed-baseline gate: exact because the portfolio objective is
    // bit-deterministic at expansion budgets — but only at the default
    // budgets the baseline was recorded at.
    bool budgetsOverridden =
        std::getenv("PROPHUNT_SEARCH_EXPANSIONS") != nullptr ||
        std::getenv("PROPHUNT_SEARCH_MAXSAT_ITERS") != nullptr;
    const char *basePath = std::getenv("PROPHUNT_SEARCH_PORTFOLIO_BASELINE");
    std::string baseline =
        basePath ? basePath
                 : "../bench/results/search_portfolio_baseline.json";
    if (budgetsOverridden) {
        std::printf("\nbaseline gate skipped (budget overridden by env)\n");
    } else {
        for (const Row &row : rows) {
            double committed = baselineValue(baseline, row.code,
                                             "portfolio_objective");
            if (committed <= 0.0) {
                continue; // config absent from baseline: no gate
            }
            if ((double)row.portfolioObjective > committed) {
                std::printf("FAIL: %s portfolio objective %llu regressed "
                            "behind committed baseline %.0f\n",
                            row.code.c_str(),
                            (unsigned long long)row.portfolioObjective,
                            committed);
                failed = true;
            }
        }

        // Expansion-rate gates on the d5 beam. The 5x ratio compares
        // against the same-run scratch calibration, so it holds on any
        // machine; the absolute-rate gate only fires on hardware that
        // matches or beats the committed calibration speed.
        for (const Row &row : rows) {
            if (row.code != "surface_d5_poor" || row.scratchRate <= 0.0) {
                continue;
            }
            double beam_rate = 0.0;
            for (const StrategyRow &s : row.strategies) {
                if (s.name == "beam") {
                    beam_rate = s.stats.expansionsPerSec();
                }
            }
            if (beam_rate <= 0.0) {
                continue;
            }
            double ratio = beam_rate / row.scratchRate;
            std::printf("\nd5 beam incremental speedup: %.1fx over "
                        "scratch (%.0f vs %.0f expansions/sec)\n",
                        ratio, beam_rate, row.scratchRate);
            if (ratio < 5.0) {
                std::printf("FAIL: incremental beam is only %.1fx the "
                            "scratch rate (gate: >= 5x)\n",
                            ratio);
                failed = true;
            }
            double committed_scratch = baselineValue(
                baseline, row.code, "scratch_expansions_per_sec");
            double committed_beam = baselineValue(
                baseline, row.code, "beam_expansions_per_sec");
            if (committed_scratch > 0.0 && committed_beam > 0.0 &&
                row.scratchRate >= committed_scratch &&
                beam_rate < 0.5 * committed_beam) {
                std::printf(
                    "FAIL: machine matches committed calibration "
                    "(%.0f >= %.0f scratch exp/s) but beam rate %.0f "
                    "fell below half the committed %.0f\n",
                    row.scratchRate, committed_scratch, beam_rate,
                    committed_beam);
                failed = true;
            }
        }
    }

    const char *outPath = std::getenv("PROPHUNT_BENCH_OUT");
    std::string path = outPath ? outPath : "BENCH_search_portfolio.json";
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"search_portfolio\",\n");
        std::fprintf(f, "  \"configs\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &row = rows[i];
            std::fprintf(f, "    {\"code\": \"%s\",\n", row.code.c_str());
            std::fprintf(f, "     \"start_objective\": %llu,\n",
                         (unsigned long long)row.startObjective);
            std::fprintf(f, "     \"portfolio_objective\": %llu,\n",
                         (unsigned long long)row.portfolioObjective);
            std::fprintf(f, "     \"seconds\": %.3f,\n", row.secs);
            if (row.scratchRate > 0.0) {
                std::fprintf(f,
                             "     \"scratch_expansions_per_sec\": %.0f,\n",
                             row.scratchRate);
                for (const StrategyRow &sr : row.strategies) {
                    if (sr.name == "beam") {
                        std::fprintf(
                            f,
                            "     \"beam_expansions_per_sec\": %.0f,\n",
                            sr.stats.expansionsPerSec());
                    }
                }
            }
            std::fprintf(f, "     \"strategies\": [\n");
            for (std::size_t s = 0; s < row.strategies.size(); ++s) {
                const StrategyRow &sr = row.strategies[s];
                std::fprintf(
                    f,
                    "      {\"name\": \"%s\", \"winner\": %s,\n"
                    "       \"expansions\": %llu, \"pruned\": %llu, "
                    "\"dead_ends\": %llu,\n"
                    "       \"best_objective\": %llu, "
                    "\"first_improvement_expansions\": %llu,\n"
                    "       \"expansions_per_sec\": %.0f, "
                    "\"transposition_hits\": %llu, "
                    "\"transposition_misses\": %llu,\n"
                    "       \"total_us\": %llu}%s\n",
                    sr.name.c_str(), sr.winner ? "true" : "false",
                    (unsigned long long)sr.stats.expansions,
                    (unsigned long long)sr.stats.prunedByBound,
                    (unsigned long long)sr.stats.deadEnds,
                    (unsigned long long)sr.stats.bestObjective,
                    (unsigned long long)sr.stats.firstImprovementExpansions,
                    sr.stats.expansionsPerSec(),
                    (unsigned long long)sr.stats.transpositionHits,
                    (unsigned long long)sr.stats.transpositionMisses,
                    (unsigned long long)sr.stats.totalUs,
                    s + 1 < row.strategies.size() ? "," : "");
            }
            std::fprintf(f, "     ]}%s\n",
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\nwrote %s (baseline: %s)\n", path.c_str(),
                    baseline.c_str());
    }

    if (failed) {
        return 1;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
