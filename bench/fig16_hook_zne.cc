/**
 * @file
 * Figure 16: Hook-ZNE.
 *
 * (a) Noise amplification range at fixed code distance: the logical error
 *     rates realizable by intermediate SM circuits (modeled as fractional
 *     effective distances under suppression factor Lambda) against the
 *     coarse odd-integer ladder available to DS-ZNE; plus a measured
 *     ladder from actual PropHunt intermediate circuits on a d=3 surface
 *     code.
 * (b) Bias comparison between DS-ZNE and Hook-ZNE under the paper's
 *     setup: Lambda=2, RB depth 50, a 20000-shot total budget, three
 *     distance ranges.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "zne/zne.h"

using namespace prophunt;

namespace {

void
figure16a()
{
    std::printf("--- (a) noise amplification at fixed d=13 ---\n");
    std::printf("%8s | fine Hook-ZNE noise scales (x = effective "
                "distance steps of 0.5)\n",
                "Lambda");
    for (double lam : {1.5, 2.14, 3.0, 4.0}) {
        std::printf("%8.2f |", lam);
        double base = zne::logicalErrorRate(lam, 13.0);
        for (double d = 13.0; d >= 10.0; d -= 0.5) {
            std::printf(" %7.2f", zne::logicalErrorRate(lam, d) / base);
        }
        std::printf("\n");
    }
    std::printf("%8s |", "DS-ZNE");
    double base = zne::logicalErrorRate(2.0, 13.0);
    for (double d : {13.0, 11.0, 9.0, 7.0}) {
        std::printf(" %7.1f", zne::logicalErrorRate(2.0, d) / base);
    }
    std::printf("   (Lambda=2: coarse jumps of 2x per distance step)\n");

    // Measured ladder: LERs of intermediate schedules from a PropHunt run
    // on the d=3 surface code, normalized to the optimized end point.
    code::SurfaceCode s(3);
    // Gentle optimization settings: fewer samples per iteration slow the
    // convergence and expose more intermediate noise levels (Section 7).
    core::PropHuntOptions opts = phbench::defaultOptions(23);
    opts.iterations = 8;
    opts.samplesPerIteration = 40;
    opts.maxAmbiguousPerIteration = 2;
    core::PropHunt tool(opts);
    core::OptimizeResult res =
        tool.optimize(circuit::poorSurfaceSchedule(s), 3);
    std::printf("measured intermediate-circuit ladder (d=3, p=2e-3, "
                "normalized):");
    std::vector<double> lers;
    for (const auto &snap : res.snapshots) {
        lers.push_back(phbench::combinedLer(
            snap, 3, 2e-3, "union_find",
            phbench::shots(), 31));
    }
    double end = lers.back() > 0 ? lers.back() : 1e-6;
    for (double l : lers) {
        std::printf(" %.2f", l / end);
    }
    std::printf("\n\n");
}

void
figure16b()
{
    std::printf("--- (b) bias: DS-ZNE vs Hook-ZNE (Lambda=2, depth 50, "
                "20000 shots, 200 trials) ---\n");
    zne::ZneConfig cfg;
    cfg.lambdaSuppression = 2.0;
    cfg.depth = 50;
    cfg.totalShots = 20000;
    std::size_t trials = phbench::envSize("PROPHUNT_ZNE_TRIALS", 200);
    std::printf("%16s %12s %12s %10s\n", "distance range", "DS-ZNE",
                "Hook-ZNE", "ratio");
    for (double dmax : {13.0, 11.0, 9.0}) {
        double ds = zne::zneBias(zne::dsZneDistances(dmax), cfg, trials,
                                 901);
        double hook = zne::zneBias(zne::hookZneDistances(dmax), cfg,
                                   trials, 901);
        std::printf("%10.0f..%-4.0f %12.5f %12.5f %9.2fx\n",
                    dmax - 6.0, dmax, ds, hook, hook > 0 ? ds / hook : 0);
    }
    std::printf("Expected shape: Hook-ZNE bias 3x-6x below DS-ZNE in "
                "every range.\n\n");
}

} // namespace

static void
BM_ZneEstimate(benchmark::State &state)
{
    zne::ZneConfig cfg;
    cfg.totalShots = 20000;
    sim::Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            zne::zneEstimate(zne::hookZneDistances(13.0), cfg, rng));
    }
}
BENCHMARK(BM_ZneEstimate)->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    std::printf("=== Figure 16: Hook-ZNE ===\n");
    figure16a();
    figure16b();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
