/**
 * @file
 * Distributed-sweep contract bench: checkpoint/resume and shard-merge
 * must be bit-identical to an uninterrupted serial sweep.
 *
 * Three phases over a reduced fig12-style d=3 surface SPRT sweep:
 *
 *   1. kill/resume — fork a worker that runs the checkpointed sweep
 *      (checkpoint every chunk), SIGKILL it after a growing delay, and
 *      fork the next worker to resume from the surviving checkpoint;
 *      repeat until a worker completes. Every kill point is a resume
 *      point, so one run exercises many interruption offsets.
 *   2. serial oracle — the same request, no checkpoint, one process.
 *      The resumed result and the finalized checkpoint must match it
 *      point for point: shots, failures, and SPRT decisions.
 *   3. shard matrix — for k in {1,2,3} and ler.threads in {1,2}, run k
 *      disjoint shard workers to per-shard checkpoints, merge them in
 *      rotated (non-canonical) order, finalize, and compare to the
 *      oracle. A late-arriving shard must never flip a decision.
 *
 * All forks happen before the parent constructs any Engine (fork and
 * worker-pool threads do not mix); children build their own Engine and
 * leave via _Exit. Writes $PROPHUNT_BENCH_OUT (default
 * BENCH_distributed_sweep.json); exits nonzero on any violation, so CI
 * and the distributed_sweep_smoke ctest can gate on it.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/sweep_checkpoint.h"
#include "bench_common.h"

#if defined(__unix__) || defined(__APPLE__)
#define PROPHUNT_HAVE_FORK 1
#include <csignal>
#include <cstdlib>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace prophunt;

namespace {

/** The reduced fig12-style sweep every phase runs. */
api::SweepRequest
baseRequest()
{
    code::SurfaceCode s(3);
    api::SweepRequest req(circuit::nzSchedule(s));
    req.rounds = 3;
    req.ps = {1e-3, 2e-3, 4e-3, 8e-3};
    req.decoder = "union_find";
    req.shotsPerPoint = phbench::shots();
    req.seed = 13;
    req.ler = phbench::lerOptions();
    req.sprt.enabled = true;
    req.sprt.decisionLer = 0.02;
    req.sprt.chunkShots = 512;
    req.sprt.minShots = 256;
    return req;
}

/** Point-for-point bit-identity: shots, failures, decisions. */
bool
identical(const api::SweepResult &a, const api::SweepResult &b,
          const char *label)
{
    if (a.points.size() != b.points.size()) {
        std::fprintf(stderr, "%s: point count %zu != %zu\n", label,
                     a.points.size(), b.points.size());
        return false;
    }
    bool ok = true;
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const api::SweepPointResult &x = a.points[i];
        const api::SweepPointResult &y = b.points[i];
        if (x.memory.z.shots != y.memory.z.shots ||
            x.memory.z.failures != y.memory.z.failures ||
            x.memory.x.shots != y.memory.x.shots ||
            x.memory.x.failures != y.memory.x.failures ||
            x.decision != y.decision) {
            std::fprintf(stderr,
                         "%s: point %zu (p=%g) mismatch: "
                         "z=%zu/%zu vs %zu/%zu, x=%zu/%zu vs %zu/%zu, "
                         "decision %s vs %s\n",
                         label, i, x.p, x.memory.z.failures,
                         x.memory.z.shots, y.memory.z.failures,
                         y.memory.z.shots, x.memory.x.failures,
                         x.memory.x.shots, y.memory.x.failures,
                         y.memory.x.shots, api::toString(x.decision),
                         api::toString(y.decision));
            ok = false;
        }
    }
    return ok;
}

struct KillResumeOutcome
{
    bool supported = false;
    bool completed = false;
    bool interrupted = false; ///< at least one kill left partial work
    std::size_t attempts = 0;
    std::size_t kills = 0;
};

#ifdef PROPHUNT_HAVE_FORK
/**
 * Fork workers running the checkpointed sweep, SIGKILL each after a
 * growing delay until one finishes naturally. Must run before the
 * parent creates any threads.
 */
/** Fork one worker running @p req; kill it after @p delay_us (0 = let
 * it finish). Returns 0 = finished, 1 = killed, -1 = failure. */
int
runWorker(const api::SweepRequest &req, useconds_t delay_us)
{
    std::fflush(stdout);
    std::fflush(stderr);
    pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        return -1;
    }
    if (pid == 0) {
        // Worker: own engine, resume from whatever checkpoint the
        // previous (killed) worker left, _Exit without flushing the
        // parent's inherited stdio buffers.
        try {
            api::Engine engine;
            (void)engine.run(req);
            std::_Exit(0);
        } catch (...) {
            std::_Exit(4);
        }
    }
    if (delay_us > 0) {
        usleep(delay_us);
        kill(pid, SIGKILL);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        return 0;
    }
    if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
        return 1;
    }
    std::fprintf(stderr, "kill/resume: worker failed (status %d)\n",
                 status);
    return -1;
}

/**
 * Fork workers running the checkpointed sweep, SIGKILL each after an
 * adaptive delay until at least one kill lands mid-run (a partial
 * checkpoint survives) and a later worker resumes it to completion.
 * The delay grows after an early kill and shrinks when a worker
 * outruns it, homing in on the compute window. Must run before the
 * parent creates any threads.
 */
KillResumeOutcome
killResumeLoop(const api::SweepRequest &req)
{
    KillResumeOutcome out;
    out.supported = true;
    useconds_t delay_us = 4000;
    const std::size_t max_attempts = 80;
    while (out.attempts < max_attempts) {
        if (out.completed && out.interrupted) {
            return out;
        }
        if (out.completed) {
            // Finished before any kill interrupted it: discard and
            // retry faster until a kill lands inside the run.
            std::remove(req.checkpointPath.c_str());
            out.completed = false;
            delay_us = delay_us > 2000 ? delay_us / 2 : 1000;
        }
        ++out.attempts;
        int rc = runWorker(req, delay_us);
        if (rc < 0) {
            return out;
        }
        if (rc == 0) {
            out.completed = true;
            continue;
        }
        ++out.kills;
        auto cp = api::SweepCheckpoint::loadIfExists(req.checkpointPath);
        if (cp && !api::finalizeSweep(*cp).complete) {
            std::size_t done = 0;
            for (const auto &p : cp->points) {
                for (const auto &c : p.chunks) {
                    done += c.done ? 1 : 0;
                }
            }
            out.interrupted = out.interrupted || done > 0;
        }
        delay_us += delay_us / 2;
    }
    // Attempts exhausted: let the last resume run to completion so the
    // bit-identity phase can still judge whatever was exercised.
    if (!out.completed) {
        out.completed = runWorker(req, 0) == 0;
    }
    return out;
}
#endif

} // namespace

int
main()
{
    api::SweepRequest req = baseRequest();
    const std::string ck_path = "distributed_sweep_ck.json";
    std::remove(ck_path.c_str());
    std::remove((ck_path + ".tmp").c_str());

    std::printf("=== Distributed sweep: kill/resume + shard merge vs "
                "serial oracle (d=3, %zu shots/point) ===\n",
                req.shotsPerPoint);

    // Phase 1 runs first: fork before this process owns any threads.
    KillResumeOutcome kr;
#ifdef PROPHUNT_HAVE_FORK
    {
        api::SweepRequest worker = req;
        worker.checkpointPath = ck_path;
        worker.checkpointEveryChunks = 1;
        kr = killResumeLoop(worker);
        if (kr.supported && !kr.completed) {
            std::fprintf(stderr, "kill/resume: no worker completed in "
                                 "%zu attempts\n",
                         kr.attempts);
            return 1;
        }
    }
#else
    std::printf("kill/resume: fork() unavailable on this platform, "
                "phase skipped\n");
#endif

    // Phase 2: serial oracle (threads now allowed).
    api::Engine engine;
    api::SweepResult oracle = engine.run(req);

    bool resume_identical = true;
    if (kr.completed) {
        // The finalized checkpoint of the killed-and-resumed workers...
        api::SweepFinalize fin =
            api::finalizeSweep(api::SweepCheckpoint::load(ck_path));
        resume_identical =
            fin.complete &&
            identical(fin.result, oracle, "kill/resume checkpoint");
        // ...and a fresh resume over the complete checkpoint (a no-op
        // run returning the full canonical result) must both match.
        api::SweepRequest replay = req;
        replay.checkpointPath = ck_path;
        api::SweepResult resumed = engine.run(replay);
        resume_identical =
            resume_identical &&
            identical(resumed, oracle, "kill/resume replay") &&
            resumed.telemetry.shots == 0;
        std::printf("kill/resume: %zu kills over %zu attempts, "
                    "mid-run interruption %s, bit-identical: %s\n",
                    kr.kills, kr.attempts,
                    kr.interrupted ? "observed" : "NOT observed",
                    resume_identical ? "yes" : "NO");
    }

    // Phase 3: shard matrix. k workers over disjoint (point, chunk)
    // slices, merged in rotated order, finalized, compared.
    struct MatrixCell
    {
        std::size_t shards;
        std::size_t threads;
        bool identicalToOracle;
    };
    std::vector<MatrixCell> matrix;
    bool shards_identical = true;
    for (std::size_t k = 1; k <= 3; ++k) {
        for (std::size_t threads = 1; threads <= 2; ++threads) {
            std::vector<api::SweepCheckpoint> parts;
            for (std::size_t i = 0; i < k; ++i) {
                api::SweepRequest shard = req;
                shard.ler.threads = threads;
                shard.shard.index = i;
                shard.shard.count = k;
                char buf[64];
                std::snprintf(buf, sizeof buf,
                              "distributed_sweep_s%zu_of_%zu.json", i, k);
                std::remove(buf);
                shard.checkpointPath = buf;
                (void)engine.run(shard);
                parts.push_back(api::SweepCheckpoint::load(buf));
                std::remove(buf);
            }
            std::rotate(parts.begin(), parts.begin() + (k > 1 ? 1 : 0),
                        parts.end());
            api::SweepFinalize fin =
                api::finalizeSweep(api::mergeSweepCheckpoints(parts));
            char label[64];
            std::snprintf(label, sizeof label, "merge k=%zu threads=%zu",
                          k, threads);
            bool ok =
                fin.complete && identical(fin.result, oracle, label);
            matrix.push_back({k, threads, ok});
            shards_identical = shards_identical && ok;
            std::printf("%s: %s\n", label, ok ? "identical" : "MISMATCH");
        }
    }

    std::remove(ck_path.c_str());

    std::string path = phbench::config().benchOut.empty()
                           ? "BENCH_distributed_sweep.json"
                           : phbench::config().benchOut;
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"distributed_sweep\",\n"
                     "  \"shots_per_point\": %zu,\n"
                     "  \"kill_resume_supported\": %s,\n"
                     "  \"kill_resume_attempts\": %zu,\n"
                     "  \"kill_resume_kills\": %zu,\n"
                     "  \"kill_resume_interrupted_midrun\": %s,\n"
                     "  \"kill_resume_identical\": %s,\n"
                     "  \"shard_merge_identical\": %s,\n"
                     "  \"matrix\": [",
                     req.shotsPerPoint, kr.supported ? "true" : "false",
                     kr.attempts, kr.kills,
                     kr.interrupted ? "true" : "false",
                     resume_identical ? "true" : "false",
                     shards_identical ? "true" : "false");
        for (std::size_t i = 0; i < matrix.size(); ++i) {
            std::fprintf(f,
                         "%s\n    {\"shards\": %zu, \"threads\": %zu, "
                         "\"identical\": %s}",
                         i == 0 ? "" : ",", matrix[i].shards,
                         matrix[i].threads,
                         matrix[i].identicalToOracle ? "true" : "false");
        }
        std::fprintf(f, "\n  ],\n  \"points\": [");
        for (std::size_t i = 0; i < oracle.points.size(); ++i) {
            const api::SweepPointResult &pt = oracle.points[i];
            std::fprintf(f,
                         "%s\n    {\"p\": %g, \"z_shots\": %zu, "
                         "\"z_failures\": %zu, \"x_shots\": %zu, "
                         "\"x_failures\": %zu, \"decision\": \"%s\"}",
                         i == 0 ? "" : ",", pt.p, pt.memory.z.shots,
                         pt.memory.z.failures, pt.memory.x.shots,
                         pt.memory.x.failures,
                         api::toString(pt.decision));
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    }

    bool midrun_ok = !kr.supported || kr.interrupted;
    if (!resume_identical || !shards_identical || !midrun_ok) {
        std::fprintf(stderr,
                     "distributed_sweep: contract violation "
                     "(resume_identical=%d shard_merge_identical=%d "
                     "midrun_interruption=%d)\n",
                     resume_identical, shards_identical, midrun_ok);
        return 1;
    }
    return 0;
}
