/**
 * @file
 * Figure 15: sensitivity of SM circuits to idle errors between gate
 * layers.
 *
 * PropHunt's optimized circuits are typically deeper than the coloration
 * baseline; this study sweeps the idle error strength t_g/T (two-qubit
 * layer time over coherence time) at a fixed 1e-3 gate error rate and
 * shows over what range the propagation improvements outweigh the added
 * depth. Three hardware reference points are marked, following the
 * paper: gate-based neutral atoms (~3e-7), superconducting (~2e-4), and
 * movement-based neutral atoms (~5e-4).
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace prophunt;

namespace {

void
runCode(const code::CssCode &code, std::size_t distance)
{
    auto cp = std::make_shared<const code::CssCode>(code);
    auto kind = phbench::decoderFor(code);
    std::size_t n_shots = phbench::shotsFor(code, phbench::shots());
    double p = 1e-3;

    circuit::SmSchedule start = circuit::randomColorationSchedule(cp, 1);
    core::PropHuntOptions opts = phbench::defaultOptions(5 + code.n());
    opts.maxDepth = start.depth() + 4;
    core::PropHunt tool(opts);
    circuit::SmSchedule opt =
        tool.optimize(start, distance).finalSchedule();

    std::printf("\n--- %s (depth: coloration=%zu prophunt=%zu) ---\n",
                code.name().c_str(), start.depth(), opt.depth());
    std::printf("%12s %14s %14s %8s\n", "idle (t_g/T)", "coloration",
                "prophunt", "ratio");
    for (double idle : {0.0, 3e-7, 1e-5, 1e-4, 2e-4, 5e-4, 2e-3}) {
        double lc = phbench::combinedLer(start, distance, p, kind, n_shots,
                                         301, idle);
        double lo = phbench::combinedLer(opt, distance, p, kind, n_shots,
                                         301, idle);
        const char *marker = "";
        if (idle == 3e-7) {
            marker = "  <- neutral atoms (gates)";
        } else if (idle == 2e-4) {
            marker = "  <- superconducting";
        } else if (idle == 5e-4) {
            marker = "  <- neutral atoms (movement)";
        }
        std::printf("%12.1e %14.5f %14.5f %8.2f%s\n", idle, lc, lo,
                    lo > 0 ? lc / lo : 0.0, marker);
    }
}

} // namespace

static void
BM_DemBuildWithIdle(benchmark::State &state)
{
    code::SurfaceCode s(5);
    auto circ = circuit::buildMemoryCircuit(circuit::nzSchedule(s), 5,
                                            circuit::MemoryBasis::Z);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::buildDem(circ, sim::NoiseModel::withIdle(1e-3, 1e-4)));
    }
}
BENCHMARK(BM_DemBuildWithIdle)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    std::printf("=== Figure 15: idle-error sensitivity at gate error "
                "1e-3 ===\n");
    std::printf("Expected shape: prophunt at or below coloration for all "
                "relevant idle strengths; the\nadvantage narrows as idle "
                "errors dominate (deeper circuits idle longer).\n");
    runCode(code::benchmarkSurface(3), 3);
    runCode(code::benchmarkSurface(5), 5);
    runCode(code::benchmarkLp39(), 3);
    runCode(code::benchmarkRqt60(), 6);
    if (phbench::envFlag("PROPHUNT_FULL")) {
        runCode(code::benchmarkSurface(7), 7);
        runCode(code::benchmarkRqt54(), 4);
    }
    std::printf("\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
