/**
 * @file
 * Figure 14: scaling of the ambiguous-subgraph MaxSAT formulation.
 *
 * Collects per-solve statistics from PropHunt runs (subgraph solves are
 * bucketed by the weight of the found logical error, which tracks the
 * growing effective distance during optimization) and reports model size
 * and solve-time distributions per d_eff.
 *
 * The default run is CI-safe: d=3 and d=5 surface codes at reduced
 * budgets. PROPHUNT_FULL restores the paper-scale sweep (d=7 and the
 * rqt60 LDPC code, 25 iterations x 500 samples, 16 ambiguous subgraphs
 * per iteration); PROPHUNT_ITERS / PROPHUNT_SAMPLES still override
 * either mode.
 */
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"

using namespace prophunt;

namespace {

struct Bucket
{
    std::size_t count = 0;
    double timeMin = 1e300, timeMax = 0, timeSum = 0;
    std::size_t varsSum = 0, clausesSum = 0;
};

void
runCode(const code::CssCode &code, std::size_t distance,
        const circuit::SmSchedule &start, const char *label)
{
    bool full = phbench::envFlag("PROPHUNT_FULL");
    core::PropHuntOptions opts = phbench::defaultOptions(17);
    if (full) {
        // Paper-scale budgets unless the env overrides them explicitly.
        opts.iterations = phbench::envSize("PROPHUNT_ITERS", 25);
        opts.samplesPerIteration = phbench::envSize("PROPHUNT_SAMPLES", 500);
    }
    opts.maxAmbiguousPerIteration = full ? 16 : 8;
    core::PropHunt tool(opts);
    core::OptimizeResult res = tool.optimize(start, distance);

    std::map<std::size_t, Bucket> buckets;
    for (const auto &rec : res.history) {
        for (std::size_t i = 0; i < rec.solveWeights.size(); ++i) {
            const auto &st = rec.solveStats[i];
            Bucket &b = buckets[rec.solveWeights[i]];
            ++b.count;
            b.timeMin = std::min(b.timeMin, st.wallSeconds);
            b.timeMax = std::max(b.timeMax, st.wallSeconds);
            b.timeSum += st.wallSeconds;
            b.varsSum += st.variables;
            b.clausesSum += st.hardClauses;
        }
    }
    std::printf("\n--- %s (%s) ---\n", code.name().c_str(), label);
    std::printf("%6s %7s %10s %12s %12s %12s %12s\n", "d_eff", "solves",
                "vars(avg)", "clauses(avg)", "t_min(s)", "t_avg(s)",
                "t_max(s)");
    for (const auto &[weight, b] : buckets) {
        std::printf("%6zu %7zu %10zu %12zu %12.4f %12.4f %12.4f\n", weight,
                    b.count, b.varsSum / b.count, b.clausesSum / b.count,
                    b.timeMin, b.timeSum / b.count, b.timeMax);
    }
}

} // namespace

static void
BM_SubgraphSampling(benchmark::State &state)
{
    code::SurfaceCode s(5);
    auto circ = circuit::buildMemoryCircuit(
        circuit::poorSurfaceSchedule(s), 5, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    core::SubgraphFinder finder(dem);
    sim::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(finder.sample(rng, 48));
    }
}
BENCHMARK(BM_SubgraphSampling)->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    std::printf("=== Figure 14: subgraph MaxSAT scaling during "
                "optimization ===\n");
    std::printf("Expected shape: model size and solve time grow with "
                "d_eff; d_eff saturates at the code distance.\n");
    {
        code::SurfaceCode s(3);
        runCode(s.code(), 3, circuit::poorSurfaceSchedule(s),
                "poor start");
    }
    {
        code::SurfaceCode s(5);
        runCode(s.code(), 5, circuit::poorSurfaceSchedule(s),
                "poor start");
    }
    if (phbench::envFlag("PROPHUNT_FULL")) {
        {
            code::SurfaceCode s(7);
            runCode(s.code(), 7, circuit::poorSurfaceSchedule(s),
                    "poor start");
        }
        {
            auto c = code::benchmarkRqt60();
            auto cp = std::make_shared<const code::CssCode>(c);
            runCode(c, 6, circuit::colorationSchedule(cp),
                    "coloration start");
        }
    } else {
        std::printf("\n(reduced run: d=7 and rqt60 need PROPHUNT_FULL)\n");
    }
    std::printf("\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
