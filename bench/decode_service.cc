/**
 * @file
 * Saturation benchmark of api::DecodeService: N concurrent clients
 * submitting LER jobs against one persistent service.
 *
 * Per code (lp39 fast, rqt54 the gated reference) the run measures:
 *
 *  - "calib": a raw single-thread decoder::measureDemLer of the same
 *    shot budget — the machine-speed reference all committed-baseline
 *    gates are guarded by;
 *  - a single-client phase: one thread draining the request list
 *    through the service (warm lane groups, no tally reuse), whose
 *    shots/sec must sustain the committed single-request rate on rqt54
 *    within 5% slack on hardware at least as fast as the baseline's;
 *  - client phases N in {1, 2, 4}: the same request list split
 *    round-robin over N submitting threads (each request decodes on
 *    its caller, so clients are the concurrency), reporting
 *    requests/sec and shots/sec. While the machine has a core per
 *    client, shots/sec at N > 1 may never fall below 0.95x the
 *    single-client rate — on multi-core hardware it should scale up;
 *    an oversubscribed box legitimately pays some contention and is
 *    not gated.
 *
 * Every phase runs the identical seed set, so the per-request failure
 * counts must be bit-identical across all phases and client counts —
 * the run FAILS on any mismatch (the service determinism contract,
 * observed under real saturation rather than a test harness).
 *
 * Tally reuse is disabled (distinct work per request is the point);
 * coalescing stays on so clients share each code's warm clone group.
 *
 * Writes $PROPHUNT_BENCH_OUT (default BENCH_decode_service.json);
 * the committed reference lives at $PROPHUNT_DECODE_SERVICE_BASELINE
 * (default ../bench/results/decode_service_baseline.json).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/decode_service.h"
#include "bench_common.h"
#include "decoder/logical_error.h"

using namespace prophunt;

namespace {

struct Config
{
    const char *name;
    code::CssCode (*build)();
    std::size_t rounds;
    double p;
    std::size_t divisor; ///< shots per request = PROPHUNT_SHOTS / divisor.
};

/** One decode problem pinned behind a DecodeJob::keepAlive handle. */
struct Model
{
    circuit::SmCircuit circuit;
    sim::Dem dem;
    std::unique_ptr<decoder::Decoder> prototype;
};

struct Phase
{
    std::size_t clients = 0;
    double secs = 0;
    double requestsPerSec = 0;
    double shotsPerSec = 0;
    std::vector<std::size_t> failures; ///< Per request index.
};

struct Row
{
    std::string name;
    double p = 0;
    std::size_t shotsPerRequest = 0;
    std::size_t requests = 0;
    std::size_t shardShots = 0;
    double calibRate = 0;
    std::vector<Phase> phases;
    bool identicalAcrossPhases = true;
    api::DecodeServiceStats stats;
};

const std::size_t kClientCounts[] = {1, 2, 4};
constexpr std::size_t kRequestsPerPhase = 8;

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** As packed_pipeline: numeric @p key of @p code's entry in one of our
 * own committed JSON artifacts (0 when absent). */
double
baselineValue(const std::string &path, const std::string &code,
              const char *key)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        return 0.0;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);
    std::string anchor = "\"code\": \"" + code + "\"";
    std::size_t at = text.find(anchor);
    if (at == std::string::npos) {
        return 0.0;
    }
    std::string quoted = std::string("\"") + key + "\":";
    std::size_t k = text.find(quoted, at);
    if (k == std::string::npos) {
        return 0.0;
    }
    return std::atof(text.c_str() + k + quoted.size());
}

/** Drain the request list through @p service with @p clients threads. */
Phase
runPhase(api::DecodeService &service, const std::shared_ptr<Model> &model,
         const std::string &key, std::size_t clients, std::size_t shots,
         std::size_t shard_shots)
{
    Phase phase;
    phase.clients = clients;
    phase.failures.assign(kRequestsPerPhase, 0);
    double t0 = now();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (std::size_t r = c; r < kRequestsPerPhase; r += clients) {
                api::DecodeJob job;
                job.key = key;
                job.dem = &model->dem;
                job.prototype = model->prototype.get();
                job.keepAlive = model;
                job.shots = shots;
                job.seed = 300 + r; // identical seed set in every phase
                job.ler.threads = 1; // clients are the concurrency
                job.ler.shardShots = shard_shots;
                phase.failures[r] =
                    service.measure(job).result.failures;
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    phase.secs = now() - t0;
    phase.requestsPerSec = kRequestsPerPhase / phase.secs;
    phase.shotsPerSec = kRequestsPerPhase * shots / phase.secs;
    return phase;
}

Row
runConfig(const Config &cfg)
{
    Row row;
    row.name = cfg.name;
    row.p = cfg.p;
    std::size_t base = phbench::envSize("PROPHUNT_SHOTS", 20000);
    row.shotsPerRequest = std::max<std::size_t>(100, base / cfg.divisor);
    row.requests = kRequestsPerPhase;
    // ~8 shards per request: enough queue churn to exercise the shard
    // queues without shard setup dominating.
    row.shardShots = std::max<std::size_t>(32, row.shotsPerRequest / 8);

    auto model = std::make_shared<Model>();
    auto cp = std::make_shared<const code::CssCode>(cfg.build());
    model->circuit = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), cfg.rounds,
        circuit::MemoryBasis::Z);
    model->dem =
        sim::buildDem(model->circuit, sim::NoiseModel::uniform(cfg.p));
    model->prototype = decoder::Registry::make(
        phbench::decoderFor(*cp), model->dem, model->circuit);

    std::size_t reps = std::max<std::size_t>(
        1, phbench::envSize("PROPHUNT_BENCH_REPS", 3));

    // --- calibration: raw serial measureDemLer, best of reps.
    decoder::LerOptions serial;
    serial.threads = 1;
    serial.shardShots = row.shardShots;
    double calibSecs = 1e300;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        auto dec = model->prototype->clone();
        double t0 = now();
        decoder::measureDemLer(model->dem, *dec, row.shotsPerRequest, 300,
                               serial);
        calibSecs = std::min(calibSecs, now() - t0);
    }
    row.calibRate = row.shotsPerRequest / calibSecs;

    // --- the service under saturation: one persistent instance across
    // all phases (warm clones carry over — that is the product).
    api::DecodeServiceOptions opts;
    opts.reuseShots = false;
    api::DecodeService service(opts);
    for (std::size_t clients : kClientCounts) {
        Phase best;
        for (std::size_t rep = 0; rep < reps; ++rep) {
            Phase p = runPhase(service, model, cfg.name, clients,
                               row.shotsPerRequest, row.shardShots);
            if (best.clients == 0 || p.secs < best.secs) {
                best = p;
            }
        }
        if (!row.phases.empty() &&
            best.failures != row.phases.front().failures) {
            row.identicalAcrossPhases = false;
        }
        row.phases.push_back(best);
    }
    row.stats = service.stats();
    return row;
}

} // namespace

int
main()
{
    std::printf("=== DecodeService saturation: N clients, persistent lane "
                "pools (reuse off, coalescing on) ===\n");
    std::printf("Expected shape: single-client shots/sec ~= raw serial "
                "rate; identical failures at every client count; "
                "shots/sec non-collapsing (multi-core: scaling up) as "
                "clients grow.\n\n");

    const Config configs[] = {
        {"lp39", code::benchmarkLp39, 3, 2e-3, 5},
        {"rqt54", code::benchmarkRqt54, 4, 2e-3, 33},
    };

    const char *basePath = std::getenv("PROPHUNT_DECODE_SERVICE_BASELINE");
    std::string baseline =
        basePath ? basePath
                 : "../bench/results/decode_service_baseline.json";

    std::vector<Row> rows;
    bool identical = true;
    bool gateHolds = true;
    std::string gateDetail;
    std::printf("%-7s %7s %7s %8s %12s | %8s %10s %10s %8s\n", "code",
                "shots/r", "shards", "clients", "calib/s", "reqs/s",
                "shots/s", "scaling", "bits==");
    for (const Config &cfg : configs) {
        Row row = runConfig(cfg);
        double single = row.phases.front().shotsPerSec;
        for (const Phase &ph : row.phases) {
            std::printf("%-7s %7zu %7zu %8zu %12.0f | %8.2f %10.0f %9.2fx "
                        "%8s\n",
                        row.name.c_str(), row.shotsPerRequest,
                        row.shotsPerRequest / row.shardShots, ph.clients,
                        row.calibRate, ph.requestsPerSec, ph.shotsPerSec,
                        ph.shotsPerSec / single,
                        row.identicalAcrossPhases ? "yes" : "NO");
        }
        identical = identical && row.identicalAcrossPhases;

        if (row.name == "rqt54") {
            // Scaling gate: more clients may never collapse throughput
            // below 0.95x the single-client rate — demanded only while
            // the machine has a core per client (an oversubscribed box
            // legitimately pays contention for extra clients).
            std::size_t cores = std::max<std::size_t>(
                1, std::thread::hardware_concurrency());
            for (const Phase &ph : row.phases) {
                if (ph.clients <= cores && ph.shotsPerSec < 0.95 * single) {
                    gateHolds = false;
                    char buf[160];
                    std::snprintf(buf, sizeof buf,
                                  "%zu clients %.0f shots/s < 0.95x "
                                  "single-client %.0f shots/s on rqt54",
                                  ph.clients, ph.shotsPerSec, single);
                    gateDetail = buf;
                }
            }
            // Committed-baseline gate, guarded by the calibration rate:
            // only on hardware at least as fast as the baseline's may
            // the committed single-client rate be demanded (5% slack).
            double committedCalib =
                baselineValue(baseline, "rqt54", "calib_shots_per_sec");
            double committedSingle = baselineValue(
                baseline, "rqt54", "single_client_shots_per_sec");
            if (committedCalib > 0 && committedSingle > 0 &&
                row.calibRate >= committedCalib &&
                single < 0.95 * committedSingle) {
                gateHolds = false;
                char buf[160];
                std::snprintf(buf, sizeof buf,
                              "single client %.0f shots/s < 0.95x "
                              "committed %.0f shots/s on rqt54",
                              single, committedSingle);
                gateDetail = buf;
            }
        }
        rows.push_back(std::move(row));
    }

    const char *outPath = std::getenv("PROPHUNT_BENCH_OUT");
    std::string path = outPath ? outPath : "BENCH_decode_service.json";
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"decode_service\",\n"
                        "  \"requests_per_phase\": %zu,\n  \"configs\": [\n",
                    kRequestsPerPhase);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            double single = r.phases.front().shotsPerSec;
            std::fprintf(
                f,
                "    {\"code\": \"%s\", \"p\": %g,\n"
                "     \"shots_per_request\": %zu,\n"
                "     \"shard_shots\": %zu,\n"
                "     \"calib_shots_per_sec\": %.1f,\n"
                "     \"single_client_shots_per_sec\": %.1f,\n",
                r.name.c_str(), r.p, r.shotsPerRequest, r.shardShots,
                r.calibRate, single);
            for (const Phase &ph : r.phases) {
                std::fprintf(f,
                             "     \"clients_%zu_requests_per_sec\": %.2f,\n"
                             "     \"clients_%zu_shots_per_sec\": %.1f,\n"
                             "     \"clients_%zu_scaling\": %.3f,\n",
                             ph.clients, ph.requestsPerSec, ph.clients,
                             ph.shotsPerSec, ph.clients,
                             ph.shotsPerSec / single);
            }
            std::fprintf(
                f,
                "     \"coalesced_requests\": %zu,\n"
                "     \"work_steals\": %zu,\n"
                "     \"peak_queue_depth\": %zu,\n"
                "     \"clone_hits\": %zu, \"clone_misses\": %zu,\n"
                "     \"identical_across_clients\": %s}%s\n",
                r.stats.coalescedRequests, r.stats.steals,
                r.stats.peakQueueDepth, r.stats.cloneHits,
                r.stats.cloneMisses,
                r.identicalAcrossPhases ? "true" : "false",
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\nwrote %s (baseline: %s)\n", path.c_str(),
                    baseline.c_str());
    }

    if (!identical) {
        std::fprintf(stderr, "decode_service: results differ across "
                             "client counts (determinism violation)\n");
        return 1;
    }
    if (!gateHolds) {
        std::fprintf(stderr, "decode_service: saturation gate: %s\n",
                     gateDetail.c_str());
        return 1;
    }
    return 0;
}
