/**
 * @file
 * Ablation study: which parts of PropHunt's pipeline earn their keep?
 *
 * Compares three variants on the d=5 surface code starting from the poor
 * schedule (where the optimization signal is strongest):
 *
 *   full        — the paper's pipeline (Sections 5.1-5.5);
 *   no-verify   — skip the ambiguity-removal check of Section 5.4 and
 *                 apply any commutation-valid, schedulable candidate;
 *   no-mindepth — keep verification but drop the minimum-depth
 *                 tie-breaking of Section 5.5.
 *
 * Reported: final LER, effective distance and depth for each variant.
 * The expected shape: no-verify converges worse (changes that merely move
 * ambiguity around get applied); no-mindepth matches full on LER but
 * yields deeper circuits.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace prophunt;

namespace {

void
runVariant(const char *label, bool verify, bool min_depth)
{
    code::SurfaceCode s(5);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    core::PropHuntOptions opts = phbench::defaultOptions(42);
    opts.verifyAmbiguityRemoval = verify;
    opts.preferMinDepth = min_depth;
    core::PropHunt tool(opts);
    core::OptimizeResult res = tool.optimize(start, 5);

    double ler = phbench::combinedLer(res.finalSchedule(), 5, 2e-3,
                                      "union_find",
                                      phbench::shots(), 909);
    std::size_t deff = core::estimateEffectiveDistance(res.finalSchedule(),
                                                       5, 1e-3, 300, 5);
    std::size_t applied = 0;
    for (const auto &rec : res.history) {
        applied += rec.changesApplied;
    }
    std::printf("%-12s LER=%.5f  d_eff=%zu  depth=%zu  applied=%zu  "
                "iterations=%zu\n",
                label, ler, deff, res.finalSchedule().depth(), applied,
                res.history.size());
}

} // namespace

static void
BM_VerifyChange(benchmark::State &state)
{
    code::SurfaceCode s(3);
    auto circ = circuit::buildMemoryCircuit(
        circuit::poorSurfaceSchedule(s), 3, circuit::MemoryBasis::Z);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::buildDem(circ, sim::NoiseModel::uniform(1e-3)));
    }
}
BENCHMARK(BM_VerifyChange)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    std::printf("=== Ablation: PropHunt pipeline stages (d=5 surface, "
                "poor start, p=2e-3) ===\n");
    double baseline = [&] {
        code::SurfaceCode s(5);
        return phbench::combinedLer(circuit::poorSurfaceSchedule(s), 5,
                                    2e-3, "union_find",
                                    phbench::shots(), 909);
    }();
    std::printf("%-12s LER=%.5f  (unoptimized poor schedule)\n", "start",
                baseline);
    runVariant("full", true, true);
    runVariant("no-verify", false, true);
    runVariant("no-mindepth", true, false);
    std::printf("\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
