/**
 * @file
 * Table 2: MaxSAT model size — global formulation vs ambiguous subgraphs.
 *
 * For the paper's three codes ([[39,3,3]], [[49,1,7]], [[60,2,6]]) the
 * global min-weight-logical-error model is built over the entire
 * circuit-level DEM, and the subgraph model over one sampled ambiguous
 * subgraph. Reported columns mirror the paper: variables, hard clauses,
 * soft clauses, wall-clock time ('*' = solver timed out). Absolute
 * timings differ from the paper's Loandra-on-Xeon setup; the wide gap in
 * tractability between the two formulations is the reproduced result.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "prophunt/minweight.h"

using namespace prophunt;

namespace {

struct Row
{
    std::string code;
    std::string deff;
    sat::MaxSatStats stats;
    bool found;
    std::size_t weight;
};

void
printRow(const char *formulation, const Row &r)
{
    char time_buf[64];
    if (r.stats.timedOut) {
        std::snprintf(time_buf, sizeof time_buf, "*");
    } else {
        std::snprintf(time_buf, sizeof time_buf, "%.2f s",
                      r.stats.wallSeconds);
    }
    std::printf("%-9s %-16s %-10s %10zu %12zu %12zu %10s\n", formulation,
                r.code.c_str(), r.deff.c_str(), r.stats.variables,
                r.stats.hardClauses, r.stats.softClauses, time_buf);
}

Row
globalRow(const code::CssCode &code, std::size_t rounds, double timeout)
{
    auto cp = std::make_shared<const code::CssCode>(code);
    circuit::SmSchedule sched = circuit::colorationSchedule(cp);
    auto circ =
        circuit::buildMemoryCircuit(sched, rounds, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    core::MinWeightResult mw =
        core::solveGlobalMinWeight(dem, 8, timeout);
    Row r{code.name(), "", mw.stats, mw.found, mw.weight};
    r.deff = mw.found ? "d_eff=" + std::to_string(mw.weight) : "-";
    return r;
}

Row
subgraphRow(const code::CssCode &code, std::size_t rounds, double timeout)
{
    auto cp = std::make_shared<const code::CssCode>(code);
    circuit::SmSchedule sched = circuit::colorationSchedule(cp);
    auto circ =
        circuit::buildMemoryCircuit(sched, rounds, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    core::SubgraphFinder finder(dem);
    sim::Rng rng(5);
    for (int trial = 0; trial < 400; ++trial) {
        core::Subgraph sg = finder.sample(rng, 48);
        if (!sg.ambiguous) {
            continue;
        }
        core::MinWeightResult mw =
            core::solveMinWeightLogical(dem, sg, 12, timeout);
        Row r{code.name(), "", mw.stats, mw.found, mw.weight};
        r.deff = mw.found ? "d_eff=" + std::to_string(mw.weight) : "-";
        return r;
    }
    Row r{code.name(), "no ambiguity", {}, false, 0};
    return r;
}

} // namespace

static void
BM_SubgraphMaxSat(benchmark::State &state)
{
    auto cp = std::make_shared<const code::CssCode>(
        code::benchmarkLp39());
    circuit::SmSchedule sched = circuit::colorationSchedule(cp);
    auto circ =
        circuit::buildMemoryCircuit(sched, 3, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    core::SubgraphFinder finder(dem);
    sim::Rng rng(5);
    core::Subgraph sg;
    do {
        sg = finder.sample(rng, 48);
    } while (!sg.ambiguous);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::solveMinWeightLogical(dem, sg, 12, 10.0));
    }
}
BENCHMARK(BM_SubgraphMaxSat)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    double timeout = phbench::envDouble("PROPHUNT_SAT_TIMEOUT", 60.0);
    std::printf("=== Table 2: MaxSAT model sizes, global vs subgraph "
                "(timeout %.0f s) ===\n",
                timeout);
    std::printf("%-9s %-16s %-10s %10s %12s %12s %10s\n", "form.", "code",
                "result", "variables", "hard", "soft", "time");

    struct Spec
    {
        code::CssCode code;
        std::size_t rounds;
    };
    std::vector<Spec> codes = {{code::benchmarkLp39(), 3},
                               {code::benchmarkSurface(7), 7},
                               {code::benchmarkRqt60(), 6}};
    for (const auto &[c, rounds] : codes) {
        printRow("global", globalRow(c, rounds, timeout));
    }
    for (const auto &[c, rounds] : codes) {
        printRow("subgraph", subgraphRow(c, rounds, timeout));
    }
    std::printf("Expected shape: subgraph models are orders of magnitude "
                "smaller and solve in ~seconds;\nglobal models time out "
                "or take orders of magnitude longer.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
