/**
 * @file
 * Shared helpers for the experiment harness.
 *
 * Every bench binary regenerates one table or figure of the paper and
 * runs its measurements through one process-wide prophunt::api::Engine,
 * so circuits/DEMs/decoders are cached across the (circuit, p) points of
 * a sweep. Budgets default to seconds-to-minutes runtimes and scale with
 * the PROPHUNT_* environment variables documented in api/config.h
 * (PROPHUNT_SHOTS, PROPHUNT_ITERS, PROPHUNT_SAMPLES, PROPHUNT_THREADS,
 * PROPHUNT_MAX_FAILURES, PROPHUNT_FULL, ...).
 *
 * The env helpers below are thin compatibility shims over api::Config /
 * api::env*; new code should use those directly.
 */
#ifndef PROPHUNT_BENCH_COMMON_H
#define PROPHUNT_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "api/config.h"
#include "api/engine.h"
#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"
#include "prophunt/optimizer.h"
#include "sim/dem_builder.h"

namespace phbench {

/** The environment-derived configuration, read once. */
inline const prophunt::api::Config &
config()
{
    static const prophunt::api::Config cfg =
        prophunt::api::Config::fromEnv();
    return cfg;
}

/** Process-wide engine: one artifact cache for the whole bench run. */
inline prophunt::api::Engine &
engine()
{
    static prophunt::api::Engine e;
    return e;
}

// --- compatibility shims (prefer api::Config / api::env*) -------------------

inline std::size_t
envSize(const char *name, std::size_t def)
{
    return prophunt::api::envSize(name, def);
}

inline double
envDouble(const char *name, double def)
{
    return prophunt::api::envDouble(name, def);
}

inline bool
envFlag(const char *name)
{
    return prophunt::api::envFlag(name);
}

inline std::size_t
shots()
{
    return config().shots;
}

/** Options for the parallel LER engine, scaled by the environment. */
inline prophunt::decoder::LerOptions
lerOptions()
{
    return config().lerOptions();
}

// ---------------------------------------------------------------------------

/** Combined memory-Z + memory-X LER of a schedule, through the engine. */
inline double
combinedLer(const prophunt::circuit::SmSchedule &sched, std::size_t rounds,
            double p, const prophunt::decoder::DecoderSpec &decoder,
            std::size_t num_shots, uint64_t seed, double p_idle = 0.0)
{
    prophunt::api::LerRequest req(sched);
    req.rounds = rounds;
    req.noise = prophunt::sim::NoiseModel::withIdle(p, p_idle);
    req.decoder = decoder;
    req.shots = num_shots;
    req.seed = seed;
    req.ler = lerOptions();
    return engine().run(req).ler();
}

/** Decoder choice matching the paper: matching for surface, BP for LDPC. */
inline prophunt::decoder::DecoderSpec
decoderFor(const prophunt::code::CssCode &code)
{
    return code.name().find("surface") != std::string::npos
               ? prophunt::decoder::DecoderSpec{"union_find"}
               : prophunt::decoder::DecoderSpec{"bp_osd"};
}

/** LDPC decoding is slower; scale shot budgets down for BP codes. */
inline std::size_t
shotsFor(const prophunt::code::CssCode &code, std::size_t base)
{
    return decoderFor(code).name == "union_find"
               ? base
               : std::max<std::size_t>(500, base / 2);
}

/** Rounds used for a code's memory experiment (the code distance). */
inline std::size_t
roundsFor(const prophunt::code::CssCode &code, std::size_t distance)
{
    (void)code;
    return distance;
}

/** Default PropHunt options scaled by the environment. The LER knobs are
 * shared with the optimizer so PROPHUNT_THREADS sizes one pool for
 * sampling, candidate verification, and LER scoring alike. */
inline prophunt::core::PropHuntOptions
defaultOptions(uint64_t seed)
{
    return config().propHuntOptions(seed);
}

} // namespace phbench

#endif // PROPHUNT_BENCH_COMMON_H
