/**
 * @file
 * Shared helpers for the experiment harness.
 *
 * Every bench binary regenerates one table or figure of the paper. Shot
 * counts and optimization budgets default to seconds-to-minutes runtimes
 * and scale with environment variables:
 *
 *   PROPHUNT_SHOTS  Monte-Carlo shots per (circuit, p) point (default 20000)
 *   PROPHUNT_ITERS  PropHunt iterations (default 6)
 *   PROPHUNT_SAMPLES Subgraph samples per iteration (default 200)
 *   PROPHUNT_SAT_TIMEOUT Seconds per MaxSAT solve in Table 2 (default 60)
 *   PROPHUNT_FULL   If set, include the largest codes in sweeps.
 *   PROPHUNT_THREADS LER worker threads (default 0 = hardware concurrency)
 *   PROPHUNT_MAX_FAILURES Early-stop failure target per LER run (default 0
 *                   = disabled; results stay thread-count independent)
 */
#ifndef PROPHUNT_BENCH_COMMON_H
#define PROPHUNT_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"
#include "decoder/logical_error.h"
#include "prophunt/optimizer.h"
#include "sim/dem_builder.h"

namespace phbench {

inline std::size_t
envSize(const char *name, std::size_t def)
{
    const char *v = std::getenv(name);
    return v ? (std::size_t)std::strtoull(v, nullptr, 10) : def;
}

inline double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    return v ? std::strtod(v, nullptr) : def;
}

inline bool
envFlag(const char *name)
{
    return std::getenv(name) != nullptr;
}

inline std::size_t
shots()
{
    return envSize("PROPHUNT_SHOTS", 20000);
}

/** Options for the parallel LER engine, scaled by the environment. */
inline prophunt::decoder::LerOptions
lerOptions()
{
    prophunt::decoder::LerOptions opts;
    opts.threads = envSize("PROPHUNT_THREADS", 0);
    opts.maxFailures = envSize("PROPHUNT_MAX_FAILURES", 0);
    return opts;
}

/** Combined memory-Z + memory-X LER of a schedule. */
inline double
combinedLer(const prophunt::circuit::SmSchedule &sched, std::size_t rounds,
            double p, prophunt::decoder::DecoderKind kind,
            std::size_t num_shots, uint64_t seed, double p_idle = 0.0)
{
    prophunt::sim::NoiseModel noise =
        prophunt::sim::NoiseModel::withIdle(p, p_idle);
    return prophunt::decoder::measureMemoryLer(sched, rounds, noise, kind,
                                               num_shots, seed, lerOptions())
        .combined();
}

/** Decoder choice matching the paper: matching for surface, BP for LDPC. */
inline prophunt::decoder::DecoderKind
decoderFor(const prophunt::code::CssCode &code)
{
    return code.name().find("surface") != std::string::npos
               ? prophunt::decoder::DecoderKind::UnionFind
               : prophunt::decoder::DecoderKind::BpOsd;
}

/** LDPC decoding is slower; scale shot budgets down for BP codes. */
inline std::size_t
shotsFor(const prophunt::code::CssCode &code, std::size_t base)
{
    return decoderFor(code) == prophunt::decoder::DecoderKind::UnionFind
               ? base
               : std::max<std::size_t>(500, base / 2);
}

/** Rounds used for a code's memory experiment (the code distance). */
inline std::size_t
roundsFor(const prophunt::code::CssCode &code, std::size_t distance)
{
    (void)code;
    return distance;
}

/** Default PropHunt options scaled by the environment. The LER knobs are
 * shared with the optimizer so PROPHUNT_THREADS sizes one pool for
 * sampling, candidate verification, and LER scoring alike. */
inline prophunt::core::PropHuntOptions
defaultOptions(uint64_t seed)
{
    prophunt::core::PropHuntOptions opts;
    opts.iterations = envSize("PROPHUNT_ITERS", 6);
    opts.samplesPerIteration = envSize("PROPHUNT_SAMPLES", 200);
    opts.seed = seed;
    opts.ler = lerOptions();
    return opts;
}

} // namespace phbench

#endif // PROPHUNT_BENCH_COMMON_H
