/**
 * @file
 * Figure 1: circuit depth and effective distance are imperfect predictors
 * of SM-circuit performance.
 *
 * Generates an ensemble of valid SM circuits for the d=5 surface code
 * (hand-designed, poor, deterministic and random colorations), measures
 * depth, circuit-level effective distance and logical error rate, and
 * reports the counterexample pairs the paper highlights: equal-or-better
 * predictor values with worse measured LER.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.h"

using namespace prophunt;

namespace {

struct Entry
{
    std::string label;
    std::size_t depth;
    std::size_t deff;
    double ler;
};

std::vector<Entry>
runEnsemble()
{
    std::size_t d = 5;
    double p = 2e-3;
    std::size_t n_shots = phbench::shots();
    code::SurfaceCode s(d);
    auto cp = std::make_shared<const code::CssCode>(s.code());

    std::vector<std::pair<std::string, circuit::SmSchedule>> circuits;
    circuits.push_back({"nz-schedule", circuit::nzSchedule(s)});
    circuits.push_back({"poor-schedule", circuit::poorSurfaceSchedule(s)});
    circuits.push_back({"coloration", circuit::colorationSchedule(cp)});
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        circuits.push_back({"random-coloration-" + std::to_string(seed),
                            circuit::randomColorationSchedule(cp, seed)});
    }

    std::vector<Entry> entries;
    for (const auto &[label, sched] : circuits) {
        Entry e;
        e.label = label;
        e.depth = sched.depth();
        e.deff = core::estimateEffectiveDistance(sched, d, 1e-3, 400, 11);
        e.ler = phbench::combinedLer(sched, d, p,
                                     "union_find",
                                     n_shots, 77);
        entries.push_back(e);
    }
    return entries;
}

} // namespace

static void
BM_EffectiveDistanceEstimate(benchmark::State &state)
{
    code::SurfaceCode s(5);
    circuit::SmSchedule sched = circuit::poorSurfaceSchedule(s);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::estimateEffectiveDistance(sched, 5, 1e-3, 50, 3));
    }
}
BENCHMARK(BM_EffectiveDistanceEstimate)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    std::printf("=== Figure 1: imperfect performance predictors "
                "(d=5 surface code, p=2e-3) ===\n");
    auto entries = runEnsemble();
    std::printf("%-24s %8s %6s %12s\n", "circuit", "depth", "d_eff",
                "LER");
    for (const auto &e : entries) {
        std::printf("%-24s %8zu %6zu %12.5f\n", e.label.c_str(), e.depth,
                    e.deff, e.ler);
    }

    // Counterexamples: (a) depth alone and (b) d_eff alone mispredict.
    std::size_t depth_cex = 0, deff_cex = 0;
    for (const auto &a : entries) {
        for (const auto &b : entries) {
            if (a.depth <= b.depth && a.ler > 1.3 * b.ler) {
                ++depth_cex;
            }
            if (a.deff >= b.deff && a.ler > 1.3 * b.ler) {
                ++deff_cex;
            }
        }
    }
    std::printf("\ncounterexample pairs (equal-or-better predictor, >1.3x "
                "worse LER):\n");
    std::printf("  depth: %zu   d_eff: %zu\n", depth_cex, deff_cex);
    std::printf("Paper's claim holds iff both counts are nonzero.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
