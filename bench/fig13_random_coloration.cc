/**
 * @file
 * Figure 13: robustness of PropHunt across random coloration starts.
 *
 * Three different random coloration circuits per code; the bar chart of
 * the paper becomes min/max ranges of starting and ending LER at a fixed
 * physical error rate. PropHunt must consistently improve the input.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace prophunt;

namespace {

void
runCode(const code::CssCode &code, std::size_t distance)
{
    auto cp = std::make_shared<const code::CssCode>(code);
    auto kind = phbench::decoderFor(code);
    std::size_t n_shots = phbench::shotsFor(code, phbench::shots());
    double p = 2e-3;

    double start_min = 1.0, start_max = 0.0, end_min = 1.0, end_max = 0.0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        circuit::SmSchedule start =
            circuit::randomColorationSchedule(cp, seed);
        core::PropHuntOptions opts = phbench::defaultOptions(seed * 31);
        opts.maxDepth = start.depth() + 4;
        core::PropHunt tool(opts);
        core::OptimizeResult res = tool.optimize(start, distance);
        double ls = phbench::combinedLer(start, distance, p, kind, n_shots,
                                         seed * 7);
        double le = phbench::combinedLer(res.finalSchedule(), distance, p,
                                         kind, n_shots, seed * 7);
        start_min = std::min(start_min, ls);
        start_max = std::max(start_max, ls);
        end_min = std::min(end_min, le);
        end_max = std::max(end_max, le);
    }
    std::printf("%-22s start=[%.5f, %.5f]  prophunt=[%.5f, %.5f]  "
                "improvement(midpoints)=%.2fx\n",
                code.name().c_str(), start_min, start_max, end_min,
                end_max,
                (end_min + end_max) > 0
                    ? (start_min + start_max) / (end_min + end_max)
                    : 0.0);
}

} // namespace

static void
BM_RandomColoration(benchmark::State &state)
{
    auto cp = std::make_shared<const code::CssCode>(
        code::benchmarkLp39());
    uint64_t seed = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            circuit::randomColorationSchedule(cp, ++seed));
    }
}
BENCHMARK(BM_RandomColoration)->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    std::printf("=== Figure 13: PropHunt on three random coloration "
                "circuits (p=2e-3) ===\n");
    std::printf("Expected shape: every prophunt range at or below its "
                "start range.\n");
    runCode(code::benchmarkSurface(3), 3);
    runCode(code::benchmarkSurface(5), 5);
    runCode(code::benchmarkLp39(), 3);
    runCode(code::benchmarkRqt60(), 6);
    if (phbench::envFlag("PROPHUNT_FULL")) {
        runCode(code::benchmarkSurface(7), 7);
        runCode(code::benchmarkSurface(9), 9);
        runCode(code::benchmarkRqt54(), 4);
        runCode(code::benchmarkRqt108(), 4);
    }
    std::printf("\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
