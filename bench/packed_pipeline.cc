/**
 * @file
 * Before/after micro-benchmark of the packed sample -> decodeBatch
 * pipeline on the Figure 12 LDPC codes (single thread, reduced shots).
 *
 * "Seed scalar" is the original pipeline preserved verbatim: scalar
 * row-layout sampling, a fresh flipped-detector vector per shot, and
 * BpOsdDecoder::decodeReference (the per-region implementation the
 * repository started with). "Packed" is the word-packed frame sampler, one
 * transpose per batch, and the batched decoder with default options.
 *
 * Alongside throughput the run verifies the pipeline's three contracts:
 * the packed sampler reproduces the scalar sampler bit for bit,
 * decodeBatch equals per-shot decode() on identical syndromes, and the
 * exact decoder mode (stagnationWindow = 0) reproduces the seed reference
 * prediction for prediction.
 *
 * On top of the seed-vs-batched comparison, the run measures the lane
 * engine (BpOsdOptions::laneWidth SIMD lanes fed packed frames through
 * decodePacked, no transpose at all) against the batched path and emits a
 * second artifact, $PROPHUNT_LANE_BENCH_OUT (default
 * BENCH_lane_pipeline.json). When a committed batched baseline is
 * readable ($PROPHUNT_LANE_BASELINE, default
 * ../bench/results/packed_pipeline_baseline.json), the artifact also
 * records the lane speedup against it, and the run FAILS if the lane
 * path is slower than the committed batched throughput on rqt54 — the
 * CI regression gate for the packed decode path.
 *
 * Writes a JSON artifact to $PROPHUNT_BENCH_OUT (default
 * BENCH_packed_pipeline.json); bench/results/ keeps committed baselines
 * for both artifacts.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "decoder/bp_osd.h"
#include "sim/frame_sampler.h"

using namespace prophunt;

namespace {

struct Config
{
    const char *name;
    code::CssCode (*build)();
    std::size_t rounds;
    double p;
    std::size_t divisor; ///< shots = PROPHUNT_SHOTS / divisor.
};

struct Row
{
    std::string name;
    std::size_t shots = 0;
    double p = 0;
    double scalarRate = 0;
    double packedRate = 0;
    double laneRate = 0;
    double laneOccupancy = 0;
    std::size_t laneWidth = 0;
    bool samplerIdentical = false;
    bool batchEqualsDecode = false;
    bool exactEqualsReference = false;
    bool laneEqualsBatched = false;
    double lerScalar = 0;
    double lerPacked = 0;
    // OSD-isolated section: the same frames through the lane engine with
    // the packed gf2_dense elimination vs the retained scalar post-pass.
    std::size_t osdShots = 0;
    double osdUsPacked = 0;
    double osdUsScalar = 0;
    bool osdEqual = false;
};

/**
 * Numeric value of @p key in the entry of @p code inside one of our own
 * committed baseline JSON artifacts, or 0 when the file, entry, or key
 * is absent. The files are our own output, so a string scan beats a
 * JSON library.
 */
double
baselineValue(const std::string &path, const std::string &code,
              const char *key)
{
    FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
        return 0.0;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);
    std::string anchor = "\"code\": \"" + code + "\"";
    std::size_t at = text.find(anchor);
    if (at == std::string::npos) {
        return 0.0;
    }
    std::string quoted = std::string("\"") + key + "\":";
    std::size_t k = text.find(quoted, at);
    if (k == std::string::npos) {
        return 0.0;
    }
    return std::atof(text.c_str() + k + quoted.size());
}

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Row
runConfig(const Config &cfg)
{
    Row row;
    row.name = cfg.name;
    row.p = cfg.p;
    std::size_t base = phbench::envSize("PROPHUNT_SHOTS", 20000);
    row.shots = std::max<std::size_t>(100, base / cfg.divisor);

    auto cp = std::make_shared<const code::CssCode>(cfg.build());
    auto sched = circuit::colorationSchedule(cp);
    auto circ = circuit::buildMemoryCircuit(sched, cfg.rounds,
                                            circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(cfg.p));

    decoder::BpOsdOptions exactOpts;
    exactOpts.stagnationWindow = 0;
    decoder::BpOsdDecoder seedDec(dem, exactOpts);
    decoder::BpOsdDecoder packedDec(dem); // default (stagnation window)

    // Best-of-N timing on both paths to suppress scheduler noise.
    std::size_t reps = std::max<std::size_t>(
        1, phbench::envSize("PROPHUNT_BENCH_REPS", 3));

    // --- seed scalar path: row sampling + per-shot reference decode.
    std::vector<uint64_t> seedPred(row.shots);
    sim::SampleBatch scalarBatch;
    double scalarSecs = 1e300;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        double t0 = now();
        scalarBatch = sim::sampleDem(dem, row.shots, 201);
        for (std::size_t s = 0; s < row.shots; ++s) {
            seedPred[s] =
                seedDec.decodeReference(scalarBatch.flippedDetectors(s));
        }
        scalarSecs = std::min(scalarSecs, now() - t0);
    }

    // --- packed path: frame sampling + transpose + batched decode.
    std::vector<uint64_t> packedPred(row.shots);
    sim::FrameBatch frames;
    sim::SampleBatch rows;
    double packedSecs = 1e300;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        double t0 = now();
        sim::sampleDemFramesInto(dem, row.shots, 201, frames);
        sim::transposeFrames(frames, rows);
        packedDec.decodeBatch(rows, 0, row.shots, packedPred.data());
        packedSecs = std::min(packedSecs, now() - t0);
    }

    // --- lane path: packed frames straight into the SIMD lane engine.
    decoder::BpOsdOptions laneOpts; // default laneWidth, packed OSD
    row.laneWidth = laneOpts.laneWidth;
    decoder::BpOsdDecoder laneDec(dem, laneOpts);
    std::vector<uint64_t> lanePred(row.shots);
    double laneSecs = 1e300;
    decoder::PackedDecodeStats laneStats;
    row.osdUsPacked = 1e300;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        double t0 = now();
        sim::sampleDemFramesInto(dem, row.shots, 201, frames);
        laneStats = decoder::PackedDecodeStats{};
        laneDec.decodePacked(frames.view(), lanePred.data(), &laneStats);
        laneSecs = std::min(laneSecs, now() - t0);
        row.osdUsPacked =
            std::min(row.osdUsPacked, (double)laneStats.osdUs);
    }
    row.laneOccupancy = laneStats.laneOccupancy();
    row.osdShots = laneStats.osdShots;

    // --- OSD-isolated: identical decode with the scalar post-pass
    // instead of the packed elimination. Predictions must be identical
    // (the elimination backends are bit-exact); only osdUs may differ —
    // the committed gate below keeps the packed elimination from
    // regressing behind the scalar reference.
    decoder::BpOsdOptions scalarOsdOpts;
    scalarOsdOpts.packedOsd = false;
    decoder::BpOsdDecoder scalarOsdDec(dem, scalarOsdOpts);
    std::vector<uint64_t> scalarOsdPred(row.shots);
    row.osdUsScalar = 1e300;
    // frames still holds the seed-201 batch from the lane loop, and the
    // per-rep metric (osdUs) is measured inside decodePacked, so there
    // is nothing to re-sample.
    for (std::size_t rep = 0; rep < reps; ++rep) {
        decoder::PackedDecodeStats st;
        scalarOsdDec.decodePacked(frames.view(), scalarOsdPred.data(),
                                  &st);
        row.osdUsScalar = std::min(row.osdUsScalar, (double)st.osdUs);
    }
    row.osdEqual = scalarOsdPred == lanePred;

    row.scalarRate = row.shots / scalarSecs;
    row.packedRate = row.shots / packedSecs;
    row.laneRate = row.shots / laneSecs;

    // Contracts.
    row.samplerIdentical =
        rows.det == scalarBatch.det && rows.obs == scalarBatch.obs;
    row.batchEqualsDecode = true;
    row.exactEqualsReference = true;
    row.laneEqualsBatched = lanePred == packedPred;
    std::vector<uint32_t> scratch;
    std::size_t failScalar = 0, failPacked = 0;
    for (std::size_t s = 0; s < row.shots; ++s) {
        rows.flippedDetectors(s, scratch);
        if (packedDec.decode(scratch) != packedPred[s]) {
            row.batchEqualsDecode = false;
        }
        if (seedDec.decode(scratch) != seedPred[s]) {
            row.exactEqualsReference = false;
        }
        failScalar += seedPred[s] != rows.obsMask(s);
        failPacked += packedPred[s] != rows.obsMask(s);
    }
    row.lerScalar = (double)failScalar / row.shots;
    row.lerPacked = (double)failPacked / row.shots;
    return row;
}

} // namespace

int
main()
{
    std::printf("=== Packed sample -> decodeBatch pipeline vs seed scalar "
                "path (fig12 LDPC codes, 1 thread) ===\n");
    std::printf("Expected shape: >=3x shots/sec on the RQT codes where "
                "BP+OSD dominates; identical sampler bits; decodeBatch == "
                "decode; exact mode == seed reference.\n\n");

    const Config configs[] = {
        {"lp39", code::benchmarkLp39, 3, 2e-3, 5},
        {"rqt54", code::benchmarkRqt54, 4, 2e-3, 33},
        {"rqt60", code::benchmarkRqt60, 6, 2e-3, 50},
    };

    std::vector<Row> rowsOut;
    bool contractsHold = true;
    std::printf("%-7s %6s %10s %12s %12s %12s %8s %8s %8s %9s %9s\n",
                "code", "shots", "p", "scalar/s", "packed/s", "lane/s",
                "speedup", "bits==", "lane==", "LERscal", "LERpack");
    for (const Config &cfg : configs) {
        Row r = runConfig(cfg);
        std::printf("%-7s %6zu %10.4f %12.0f %12.0f %12.0f %7.2fx %8s %8s "
                    "%9.4f %9.4f\n",
                    r.name.c_str(), r.shots, r.p, r.scalarRate,
                    r.packedRate, r.laneRate, r.laneRate / r.packedRate,
                    r.samplerIdentical ? "yes" : "NO",
                    r.batchEqualsDecode && r.exactEqualsReference &&
                            r.laneEqualsBatched
                        ? "yes"
                        : "NO",
                    r.lerScalar, r.lerPacked);
        contractsHold = contractsHold && r.samplerIdentical &&
                        r.batchEqualsDecode && r.exactEqualsReference &&
                        r.laneEqualsBatched && r.osdEqual;
        rowsOut.push_back(r);
    }

    std::printf("\n=== OSD post-pass: packed gf2_dense elimination vs "
                "scalar reference (same lane decode) ===\n");
    std::printf("%-7s %9s %12s %12s %9s %6s\n", "code", "osdShots",
                "packed_us", "scalar_us", "speedup", "bits==");
    for (const Row &r : rowsOut) {
        std::printf("%-7s %9zu %12.0f %12.0f %8.2fx %6s\n", r.name.c_str(),
                    r.osdShots, r.osdUsPacked, r.osdUsScalar,
                    r.osdUsPacked > 0 ? r.osdUsScalar / r.osdUsPacked
                                      : 0.0,
                    r.osdEqual ? "yes" : "NO");
    }

    const char *outPath = std::getenv("PROPHUNT_BENCH_OUT");
    std::string path = outPath ? outPath : "BENCH_packed_pipeline.json";
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"packed_pipeline\",\n"
                        "  \"threads\": 1,\n  \"configs\": [\n");
        for (std::size_t i = 0; i < rowsOut.size(); ++i) {
            const Row &r = rowsOut[i];
            std::fprintf(
                f,
                "    {\"code\": \"%s\", \"shots\": %zu, \"p\": %g,\n"
                "     \"seed_scalar_shots_per_sec\": %.1f,\n"
                "     \"packed_batch_shots_per_sec\": %.1f,\n"
                "     \"speedup\": %.3f,\n"
                "     \"sampler_bits_identical\": %s,\n"
                "     \"batch_equals_decode\": %s,\n"
                "     \"exact_mode_equals_seed_reference\": %s,\n"
                "     \"ler_seed_scalar\": %.5f, \"ler_packed\": %.5f}%s\n",
                r.name.c_str(), r.shots, r.p, r.scalarRate, r.packedRate,
                r.packedRate / r.scalarRate,
                r.samplerIdentical ? "true" : "false",
                r.batchEqualsDecode ? "true" : "false",
                r.exactEqualsReference ? "true" : "false", r.lerScalar,
                r.lerPacked, i + 1 < rowsOut.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\nwrote %s\n", path.c_str());
    }

    // Lane-vs-batched artifact, with the committed batched baseline as
    // the cross-PR reference when available.
    const char *basePath = std::getenv("PROPHUNT_LANE_BASELINE");
    std::string baseline =
        basePath ? basePath : "../bench/results/packed_pipeline_baseline.json";
    // The committed PR 4 lane record: the end-to-end speedup gate
    // reference (lane_shots_per_sec of that PR, frozen).
    const char *laneRecPath = std::getenv("PROPHUNT_PR4_LANE_BASELINE");
    std::string laneRecord =
        laneRecPath ? laneRecPath
                    : "../bench/results/lane_pipeline_baseline.json";
    const char *laneOut = std::getenv("PROPHUNT_LANE_BENCH_OUT");
    std::string lanePath = laneOut ? laneOut : "BENCH_lane_pipeline.json";
    bool laneGateHolds = true;
    std::string gateDetail;
    if (FILE *f = std::fopen(lanePath.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"lane_pipeline\",\n"
                        "  \"threads\": 1,\n  \"configs\": [\n");
        for (std::size_t i = 0; i < rowsOut.size(); ++i) {
            const Row &r = rowsOut[i];
            double committed =
                baselineValue(baseline, r.name,
                              "packed_batch_shots_per_sec");
            std::fprintf(
                f,
                "    {\"code\": \"%s\", \"shots\": %zu, \"p\": %g,\n"
                "     \"lane_width\": %zu,\n"
                "     \"batched_shots_per_sec\": %.1f,\n"
                "     \"lane_shots_per_sec\": %.1f,\n"
                "     \"lane_occupancy\": %.3f,\n"
                "     \"speedup_vs_batched\": %.3f,\n"
                "     \"committed_batched_shots_per_sec\": %.1f,\n"
                "     \"speedup_vs_committed_batched\": %.3f,\n"
                "     \"lane_equals_batched\": %s,\n"
                "     \"ler_lane\": %.5f}%s\n",
                r.name.c_str(), r.shots, r.p, r.laneWidth, r.packedRate,
                r.laneRate, r.laneOccupancy, r.laneRate / r.packedRate,
                committed,
                committed > 0 ? r.laneRate / committed : 0.0,
                r.laneEqualsBatched ? "true" : "false",
                // lane == batched predictions, so the lane LER is the
                // packed LER by construction (still recorded for the
                // artifact's self-sufficiency).
                r.lerPacked, i + 1 < rowsOut.size() ? "," : "");
            // CI regression gate on rqt54: the lane path may never fall
            // behind the batched path measured in THIS run (machine
            // independent), and on hardware at least as fast as the
            // committed baseline's it may not fall behind the committed
            // batched throughput either. Gating on the same-run numbers
            // first keeps the check meaningful on slower CI runners,
            // where the committed absolute rate is unreachable by any
            // path.
            if (r.name == "rqt54") {
                bool slowerThanBatched = r.laneRate < r.packedRate;
                bool slowerThanCommitted = committed > 0 &&
                                           r.packedRate >= committed &&
                                           r.laneRate < committed;
                if (slowerThanBatched || slowerThanCommitted) {
                    laneGateHolds = false;
                    char buf[192];
                    std::snprintf(
                        buf, sizeof buf,
                        "lane %.0f shots/s < %s %.0f shots/s on rqt54",
                        r.laneRate,
                        slowerThanBatched ? "same-run batched"
                                          : "committed batched",
                        slowerThanBatched ? r.packedRate : committed);
                    gateDetail = buf;
                }
                // End-to-end speedup gate for the packed-OSD rewrite:
                // on hardware at least as fast as the committed batched
                // baseline's, the lane path must beat the frozen PR 4
                // lane record by >= 1.3x on rqt54. The machine guard
                // keeps the check meaningful on slower CI runners.
                double pr4Lane = baselineValue(laneRecord, r.name,
                                               "lane_shots_per_sec");
                if (pr4Lane > 0 && committed > 0 &&
                    r.packedRate >= committed &&
                    r.laneRate < 1.3 * pr4Lane) {
                    laneGateHolds = false;
                    char buf[192];
                    std::snprintf(buf, sizeof buf,
                                  "lane %.0f shots/s < 1.3x committed PR4 "
                                  "lane %.0f shots/s on rqt54",
                                  r.laneRate, pr4Lane);
                    gateDetail = buf;
                }
            }
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s (baseline: %s)\n", lanePath.c_str(),
                    baseline.c_str());
    }

    // OSD-isolated artifact + regression gate: the packed gf2_dense
    // elimination may never fall behind the scalar post-pass it replaced
    // on rqt54 (5% slack absorbs timer noise; the committed baseline
    // records the expected margin for cross-PR comparison).
    const char *osdOut = std::getenv("PROPHUNT_OSD_BENCH_OUT");
    std::string osdPath = osdOut ? osdOut : "BENCH_osd_pipeline.json";
    const char *osdBasePath = std::getenv("PROPHUNT_OSD_BASELINE");
    std::string osdBaseline =
        osdBasePath ? osdBasePath
                    : "../bench/results/osd_pipeline_baseline.json";
    bool osdGateHolds = true;
    std::string osdGateDetail;
    if (FILE *f = std::fopen(osdPath.c_str(), "w")) {
        std::fprintf(f, "{\n  \"bench\": \"osd_pipeline\",\n"
                        "  \"threads\": 1,\n  \"configs\": [\n");
        for (std::size_t i = 0; i < rowsOut.size(); ++i) {
            const Row &r = rowsOut[i];
            double committedPacked =
                baselineValue(osdBaseline, r.name, "packed_elim_us");
            std::fprintf(
                f,
                "    {\"code\": \"%s\", \"shots\": %zu, \"p\": %g,\n"
                "     \"osd_shots\": %zu,\n"
                "     \"packed_elim_us\": %.1f,\n"
                "     \"scalar_post_pass_us\": %.1f,\n"
                "     \"osd_speedup\": %.3f,\n"
                "     \"committed_packed_elim_us\": %.1f,\n"
                "     \"osd_backends_identical\": %s}%s\n",
                r.name.c_str(), r.shots, r.p, r.osdShots, r.osdUsPacked,
                r.osdUsScalar,
                r.osdUsPacked > 0 ? r.osdUsScalar / r.osdUsPacked : 0.0,
                committedPacked, r.osdEqual ? "true" : "false",
                i + 1 < rowsOut.size() ? "," : "");
            if (r.name == "rqt54" && r.osdShots > 0 &&
                r.osdUsPacked > 1.05 * r.osdUsScalar) {
                osdGateHolds = false;
                char buf[160];
                std::snprintf(buf, sizeof buf,
                              "packed elimination %.0fus > scalar "
                              "post-pass %.0fus on rqt54",
                              r.osdUsPacked, r.osdUsScalar);
                osdGateDetail = buf;
            }
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s (baseline: %s)\n", osdPath.c_str(),
                    osdBaseline.c_str());
    }

    if (!contractsHold) {
        std::fprintf(stderr, "packed_pipeline: contract violation (see "
                             "table above)\n");
        return 1;
    }
    if (!laneGateHolds) {
        std::fprintf(stderr, "packed_pipeline: lane regression gate: %s\n",
                     gateDetail.c_str());
        return 1;
    }
    if (!osdGateHolds) {
        std::fprintf(stderr, "packed_pipeline: OSD elimination gate: %s\n",
                     osdGateDetail.c_str());
        return 1;
    }
    return 0;
}
