/**
 * @file
 * Figure 12: PropHunt's performance on the benchmark QEC codes.
 *
 * For each Table 1 code: start from the coloration circuit, run PropHunt,
 * and report LER vs physical error rate for the start, an intermediate
 * snapshot, and the optimized end; surface codes also report the
 * hand-designed circuit. Surface codes decode with union-find, LP/RQT
 * codes with BP+OSD, mirroring the paper's PyMatching / BP-LSD split.
 *
 * Default budgets keep the run in minutes; set PROPHUNT_FULL to include
 * the [[81,1,9]] and [[108,12,4]] codes, and raise PROPHUNT_SHOTS /
 * PROPHUNT_ITERS to sharpen the estimates.
 */
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_common.h"

using namespace prophunt;

namespace {

struct CodeSpec
{
    code::CssCode code;
    std::size_t distance;
    std::optional<circuit::SmSchedule> hand;
};

std::vector<CodeSpec>
specs()
{
    std::vector<CodeSpec> out;
    std::vector<std::size_t> surface_ds = {3, 5, 7};
    if (phbench::envFlag("PROPHUNT_FULL")) {
        surface_ds.push_back(9);
    }
    for (std::size_t d : surface_ds) {
        code::SurfaceCode s(d);
        out.push_back({s.code(), d, circuit::nzSchedule(s)});
    }
    out.push_back({code::benchmarkLp39(), 3, std::nullopt});
    out.push_back({code::benchmarkRqt60(), 6, std::nullopt});
    out.push_back({code::benchmarkRqt54(), 4, std::nullopt});
    if (phbench::envFlag("PROPHUNT_FULL")) {
        out.push_back({code::benchmarkRqt108(), 4, std::nullopt});
    }
    return out;
}

void
runCode(const CodeSpec &spec)
{
    auto cp = std::make_shared<const code::CssCode>(spec.code);
    auto kind = phbench::decoderFor(spec.code);
    std::size_t n_shots = phbench::shotsFor(spec.code, phbench::shots());
    std::size_t rounds = spec.distance;

    // The paper's optimization start is "the coloration circuit"; like
    // the paper's (Fig. 13 shows it is randomized) ours is a seeded
    // random coloration instance.
    circuit::SmSchedule start = circuit::randomColorationSchedule(cp, 1);
    core::PropHuntOptions opts = phbench::defaultOptions(1000 + spec.code.n());
    opts.maxDepth = start.depth() + 4;
    core::PropHunt tool(opts);
    core::OptimizeResult res = tool.optimize(start, rounds);
    const circuit::SmSchedule &end = res.finalSchedule();
    const circuit::SmSchedule &mid =
        res.snapshots[res.snapshots.size() / 2];

    std::printf("\n--- %s (rounds=%zu, decoder=%s, shots=%zu, "
                "iterations=%zu) ---\n",
                spec.code.name().c_str(), rounds,
                kind.name.c_str(),
                n_shots, res.history.size());
    std::printf("depth: coloration=%zu optimized=%zu\n", start.depth(),
                end.depth());
    std::printf("%10s %12s %12s %12s", "p", "coloration", "intermediate",
                "prophunt");
    if (spec.hand) {
        std::printf(" %12s", "hand");
    }
    std::printf("\n");
    for (double p : {1e-3, 2e-3, 4e-3}) {
        double l0 = phbench::combinedLer(start, rounds, p, kind, n_shots,
                                         201);
        double lm =
            phbench::combinedLer(mid, rounds, p, kind, n_shots, 201);
        double l1 =
            phbench::combinedLer(end, rounds, p, kind, n_shots, 201);
        std::printf("%10.4f %12.5f %12.5f %12.5f", p, l0, lm, l1);
        if (spec.hand) {
            std::printf(" %12.5f",
                        phbench::combinedLer(*spec.hand, rounds, p, kind,
                                             n_shots, 201));
        }
        std::printf("\n");
    }
}

} // namespace

static void
BM_PropHuntIterationD3(benchmark::State &state)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    circuit::SmSchedule start = circuit::colorationSchedule(cp);
    core::PropHuntOptions opts;
    opts.iterations = 1;
    opts.samplesPerIteration = 100;
    opts.seed = 9;
    for (auto _ : state) {
        core::PropHunt tool(opts);
        benchmark::DoNotOptimize(tool.optimize(start, 3));
    }
}
BENCHMARK(BM_PropHuntIterationD3)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    std::printf("=== Figure 12: benchmark-code optimization "
                "(coloration start -> PropHunt end) ===\n");
    std::printf("Expected shape: prophunt <= coloration everywhere; for "
                "surface codes prophunt ~ hand-designed;\n"
                "for LP/RQT codes a 2.5x-4x gap at p=1e-3 as budgets "
                "grow.\n");
    for (const auto &spec : specs()) {
        runCode(spec);
    }
    std::printf("\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
