/**
 * @file
 * Extension study (paper Section 8 / future work): augmenting SM circuits
 * with flag qubits.
 *
 * The paper notes PropHunt does not use extra ancillas to detect hook
 * errors and suggests combining its circuits with flag fault-tolerance as
 * future work. This bench quantifies that combination on the d=3/d=5
 * surface codes: for the poor schedule (distance-reducing hooks) and the
 * PropHunt-optimized schedule, measure LER with and without flags, and
 * the circuit-level d_eff. Flags restore d_eff for the poor schedule at
 * the cost of extra qubits and depth; on already-optimized schedules they
 * mostly add overhead — PropHunt's reordering achieves the same
 * protection for free.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "circuit/flags.h"
#include "prophunt/minweight.h"

using namespace prophunt;

namespace {

double
flaggedLer(const circuit::SmSchedule &sched, std::size_t rounds, double p,
           std::size_t n_shots, uint64_t seed)
{
    api::LerRequest req(sched);
    req.rounds = rounds;
    req.noise = sim::NoiseModel::uniform(p);
    req.decoder = "bp_osd";
    req.shots = n_shots;
    req.seed = seed;
    req.ler = phbench::lerOptions();
    req.flagWeight = 4;
    return phbench::engine().run(req).ler();
}

std::size_t
flaggedDeff(const circuit::SmSchedule &sched, std::size_t rounds)
{
    auto circ = circuit::buildFlaggedMemoryCircuit(
        sched, rounds, circuit::MemoryBasis::Z, 4);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    core::MinWeightResult mw = core::solveGlobalMinWeight(dem, 6, 60.0);
    return mw.found ? mw.weight : 0;
}

void
runDistance(std::size_t d)
{
    code::SurfaceCode s(d);
    double p = 2e-3;
    std::size_t n_shots = phbench::shots() / 2;

    circuit::SmSchedule poor = circuit::poorSurfaceSchedule(s);
    core::PropHuntOptions opts = phbench::defaultOptions(3);
    opts.maxDepth = poor.depth() + 4;
    core::PropHunt tool(opts);
    circuit::SmSchedule optimized =
        tool.optimize(poor, d).finalSchedule();

    std::printf("\n--- d=%zu surface code (p=%.0e) ---\n", d, p);
    std::printf("%-22s %12s %12s %10s\n", "schedule", "plain LER",
                "flagged LER", "d_eff");
    struct Row
    {
        const char *label;
        const circuit::SmSchedule &sched;
    } rows[] = {{"poor", poor}, {"prophunt(poor start)", optimized}};
    for (const auto &[label, sched] : rows) {
        double plain = phbench::combinedLer(
            sched, d, p, "bp_osd", n_shots, 71);
        double flg = flaggedLer(sched, d, p, n_shots, 71);
        std::size_t deff =
            d == 3 ? flaggedDeff(sched, d)
                   : core::estimateEffectiveDistance(sched, d, 1e-3, 200,
                                                     7);
        std::printf("%-22s %12.5f %12.5f %9zu%s\n", label, plain, flg,
                    deff, d == 3 ? " (flagged)" : " (plain)");
    }
}

} // namespace

static void
BM_FlaggedCircuitBuild(benchmark::State &state)
{
    code::SurfaceCode s(5);
    circuit::SmSchedule sched = circuit::poorSurfaceSchedule(s);
    for (auto _ : state) {
        benchmark::DoNotOptimize(circuit::buildFlaggedMemoryCircuit(
            sched, 5, circuit::MemoryBasis::Z, 4));
    }
}
BENCHMARK(BM_FlaggedCircuitBuild)->Unit(benchmark::kMicrosecond);

int
main(int argc, char **argv)
{
    std::printf("=== Extension: flag fault-tolerance on top of PropHunt "
                "===\n");
    std::printf("Expected shape: flags rescue the poor schedule (hooks "
                "detected, d_eff restored); on\nPropHunt-optimized "
                "schedules they add qubits and depth for little LER "
                "gain.\n");
    runDistance(3);
    runDistance(5);
    std::printf("\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
