/**
 * @file
 * Figure 6: good vs poor CNOT schedule for the d=3 surface code.
 *
 * Reproduces the motivating comparison: the hand-designed 'N-Z' schedule
 * against the swapped (poor) schedule, as LER vs physical error rate,
 * plus the effective distances (3 vs 2) explaining the gap.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace prophunt;

static void
BM_MemoryLerD3(benchmark::State &state)
{
    code::SurfaceCode s(3);
    circuit::SmSchedule nz = circuit::nzSchedule(s);
    for (auto _ : state) {
        benchmark::DoNotOptimize(phbench::combinedLer(
            nz, 3, 3e-3, "union_find", 2000, 5));
    }
}
BENCHMARK(BM_MemoryLerD3)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    std::size_t n_shots = phbench::shots();
    code::SurfaceCode s(3);
    circuit::SmSchedule good = circuit::nzSchedule(s);
    circuit::SmSchedule poor = circuit::poorSurfaceSchedule(s);

    std::printf("=== Figure 6: good vs poor schedule, d=3 surface code "
                "===\n");
    std::printf("d_eff: good=%zu poor=%zu\n",
                core::estimateEffectiveDistance(good, 3, 1e-3, 300, 3),
                core::estimateEffectiveDistance(poor, 3, 1e-3, 300, 3));
    std::printf("%10s %14s %14s %8s\n", "p", "LER(good)", "LER(poor)",
                "ratio");
    for (double p : {1e-3, 2e-3, 4e-3, 8e-3, 1.6e-2}) {
        double lg = phbench::combinedLer(
            good, 3, p, "union_find", n_shots, 13);
        double lp = phbench::combinedLer(
            poor, 3, p, "union_find", n_shots, 13);
        std::printf("%10.4f %14.5f %14.5f %8.2f\n", p, lg, lp,
                    lg > 0 ? lp / lg : 0.0);
    }
    std::printf("Expected shape: poor/good ratio > 1 and growing as p "
                "falls (d_eff 2 vs 3).\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
