/**
 * @file
 * Engine sweep smoke: the fig06 good-vs-poor d=3 sweep through
 * api::Engine::sweep, fixed-budget vs SPRT-adaptive.
 *
 * Runs the reduced Figure 6 sweep twice per schedule — once with the
 * fixed per-point shot budget and once with SPRT early stopping — and
 * verifies the engine's contracts:
 *
 *   - the two runs reach identical above/below decisions at the 2%
 *     decision threshold on every point, and
 *   - the adaptive run uses strictly fewer total shots, and
 *   - a cache-disabled engine reproduces the cached sweep bit for bit.
 *
 * Writes a JSON artifact to $PROPHUNT_BENCH_OUT (default
 * BENCH_api_sweep.json) recording per-point decisions/shots and the
 * total shots-saved ratio; exits nonzero on any contract violation, so
 * CI can use it as the api_smoke gate.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace prophunt;

namespace {

struct SweepPair
{
    std::string label;
    api::SweepResult fixed;
    api::SweepResult adaptive;
};

api::SweepRequest
baseRequest(const circuit::SmSchedule &sched, std::size_t shots_per_point)
{
    api::SweepRequest req(sched);
    req.rounds = 3;
    req.ps = {1e-3, 2e-3, 4e-3, 8e-3, 1.6e-2};
    req.decoder = "union_find";
    req.shotsPerPoint = shots_per_point;
    req.seed = 13;
    req.ler = phbench::lerOptions();
    req.sprt.decisionLer = 0.02;
    req.sprt.chunkShots = 1024;
    req.sprt.minShots = 512;
    return req;
}

SweepPair
runPair(const char *label, const circuit::SmSchedule &sched,
        std::size_t shots_per_point)
{
    SweepPair pair;
    pair.label = label;
    api::SweepRequest req = baseRequest(sched, shots_per_point);
    req.sprt.enabled = false;
    pair.fixed = phbench::engine().sweep(req);
    req.sprt.enabled = true;
    pair.adaptive = phbench::engine().sweep(req);
    return pair;
}

} // namespace

int
main()
{
    std::size_t shots_per_point = phbench::shots();
    code::SurfaceCode s(3);
    std::vector<SweepPair> pairs = {
        runPair("nz", circuit::nzSchedule(s), shots_per_point),
        runPair("poor", circuit::poorSurfaceSchedule(s), shots_per_point),
    };

    bool decisionsMatch = true;
    std::size_t fixedShots = 0, adaptiveShots = 0;
    std::printf("=== Engine sweep: fixed budget vs SPRT (d=3 fig06 sweep, "
                "decision LER 0.02) ===\n");
    std::printf("%-6s %10s %10s %12s %10s %10s %10s\n", "sched", "p",
                "LER(fix)", "LER(sprt)", "decision", "shots_fix",
                "shots_sprt");
    for (const SweepPair &pair : pairs) {
        for (std::size_t i = 0; i < pair.fixed.points.size(); ++i) {
            const auto &f = pair.fixed.points[i];
            const auto &a = pair.adaptive.points[i];
            bool match = f.decision == a.decision;
            decisionsMatch = decisionsMatch && match;
            std::printf("%-6s %10.4f %10.5f %12.5f %7s/%-3s %10zu %10zu\n",
                        pair.label.c_str(), f.p, f.ler(), a.ler(),
                        api::toString(f.decision),
                        match ? "ok" : "DIFF",
                        f.telemetry.shots, a.telemetry.shots);
        }
        fixedShots += pair.fixed.totalShots();
        adaptiveShots += pair.adaptive.totalShots();
    }
    bool fewerShots = adaptiveShots < fixedShots;
    auto cacheStats = phbench::engine().cacheStats();
    std::printf("\ntotal shots: fixed=%zu sprt=%zu (%.1f%% saved)  "
                "cache: %zu hits / %zu misses\n",
                fixedShots, adaptiveShots,
                100.0 * (1.0 - (double)adaptiveShots / (double)fixedShots),
                cacheStats.hits, cacheStats.misses);

    // Cache contract: a cache-disabled engine reproduces the cached
    // fixed-budget sweep bit for bit.
    bool cacheIdentical = true;
    {
        api::EngineOptions opts;
        opts.cacheEnabled = false;
        api::Engine cold(opts);
        api::SweepRequest req =
            baseRequest(circuit::nzSchedule(s), shots_per_point);
        req.sprt.enabled = false;
        api::SweepResult uncached = cold.sweep(req);
        for (std::size_t i = 0; i < uncached.points.size(); ++i) {
            const auto &a = pairs[0].fixed.points[i];
            const auto &b = uncached.points[i];
            cacheIdentical = cacheIdentical &&
                             a.memory.z.failures == b.memory.z.failures &&
                             a.memory.x.failures == b.memory.x.failures &&
                             a.memory.z.shots == b.memory.z.shots &&
                             a.memory.x.shots == b.memory.x.shots;
        }
        std::printf("cache on/off bit-identical: %s\n",
                    cacheIdentical ? "yes" : "NO");
    }

    std::string path = phbench::config().benchOut.empty()
                           ? "BENCH_api_sweep.json"
                           : phbench::config().benchOut;
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f,
                     "{\n  \"bench\": \"api_sweep\",\n"
                     "  \"decision_ler\": 0.02,\n"
                     "  \"shots_per_point\": %zu,\n"
                     "  \"fixed_total_shots\": %zu,\n"
                     "  \"sprt_total_shots\": %zu,\n"
                     "  \"shots_saved\": %zu,\n"
                     "  \"decisions_match\": %s,\n"
                     "  \"sprt_strictly_fewer\": %s,\n"
                     "  \"cache_bit_identical\": %s,\n"
                     "  \"points\": [\n",
                     shots_per_point, fixedShots, adaptiveShots,
                     fixedShots - adaptiveShots,
                     decisionsMatch ? "true" : "false",
                     fewerShots ? "true" : "false",
                     cacheIdentical ? "true" : "false");
        bool firstRow = true;
        for (const SweepPair &pair : pairs) {
            for (std::size_t i = 0; i < pair.fixed.points.size(); ++i) {
                const auto &fx = pair.fixed.points[i];
                const auto &ad = pair.adaptive.points[i];
                std::fprintf(
                    f,
                    "%s    {\"schedule\": \"%s\", \"p\": %g,\n"
                    "     \"ler_fixed\": %.5f, \"ler_sprt\": %.5f,\n"
                    "     \"decision\": \"%s\", \"decision_sprt\": \"%s\",\n"
                    "     \"shots_fixed\": %zu, \"shots_sprt\": %zu}",
                    firstRow ? "" : ",\n", pair.label.c_str(), fx.p,
                    fx.ler(), ad.ler(), api::toString(fx.decision),
                    api::toString(ad.decision), fx.telemetry.shots,
                    ad.telemetry.shots);
                firstRow = false;
            }
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    }

    if (!decisionsMatch || !fewerShots || !cacheIdentical) {
        std::fprintf(stderr, "api_sweep: contract violation "
                             "(decisions_match=%d fewer_shots=%d "
                             "cache_identical=%d)\n",
                     decisionsMatch, fewerShots, cacheIdentical);
        return 1;
    }
    return 0;
}
