#include "zne/extrapolation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prophunt::zne {

double
extrapolateLinear(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.empty()) {
        throw std::invalid_argument("extrapolateLinear: bad input");
    }
    double n = (double)xs.size();
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    double denom = n * sxx - sx * sx;
    if (std::fabs(denom) < 1e-30) {
        return sy / n;
    }
    double slope = (n * sxy - sx * sy) / denom;
    double intercept = (sy - slope * sx) / n;
    return intercept;
}

double
extrapolateExponential(const std::vector<double> &xs,
                       const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.empty()) {
        throw std::invalid_argument("extrapolateExponential: bad input");
    }
    for (double y : ys) {
        if (y <= 0) {
            return extrapolateLinear(xs, ys);
        }
    }
    // Log-linear least squares (the mitiq-style exponential ansatz),
    // lightly variance-weighted: with additive shot noise sigma on y the
    // noise on log(y) is ~ sigma/y, so deeply decayed points are
    // down-weighted, with a floor so every point stays informative.
    double y_max = 0;
    for (double y : ys) {
        y_max = std::max(y_max, y);
    }
    double w_floor = 0.3 * y_max;
    double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
    for (std::size_t i = 0; i < ys.size(); ++i) {
        double wy = std::max(ys[i], w_floor);
        double w = wy * wy;
        double ly = std::log(ys[i]);
        sw += w;
        swx += w * xs[i];
        swy += w * ly;
        swxx += w * xs[i] * xs[i];
        swxy += w * xs[i] * ly;
    }
    double denom = sw * swxx - swx * swx;
    if (std::fabs(denom) < 1e-30) {
        return std::exp(swy / sw);
    }
    double slope = (sw * swxy - swx * swy) / denom;
    double intercept = (swy - slope * swx) / sw;
    return std::exp(intercept);
}

double
extrapolateRichardson(const std::vector<double> &xs,
                      const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.empty()) {
        throw std::invalid_argument("extrapolateRichardson: bad input");
    }
    // Lagrange interpolation evaluated at 0.
    double total = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double term = ys[i];
        for (std::size_t j = 0; j < xs.size(); ++j) {
            if (j != i) {
                term *= (0.0 - xs[j]) / (xs[i] - xs[j]);
            }
        }
        total += term;
    }
    return total;
}

} // namespace prophunt::zne
