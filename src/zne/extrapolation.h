/**
 * @file
 * Zero-noise extrapolation fits.
 *
 * ZNE runs a circuit at amplified noise levels lambda >= 1 and fits the
 * expectation value E(lambda) back to the zero-noise limit lambda = 0. The
 * exponential ansatz matches the depolarizing decay of logical RB circuits;
 * Richardson (polynomial through all points) and linear fits are provided
 * for comparison and as fallbacks when expectations cross zero.
 */
#ifndef PROPHUNT_ZNE_EXTRAPOLATION_H
#define PROPHUNT_ZNE_EXTRAPOLATION_H

#include <vector>

namespace prophunt::zne {

/** Least-squares fit of E = a * exp(b * x), evaluated at x = 0.
 * Falls back to linear extrapolation if any y <= 0. */
double extrapolateExponential(const std::vector<double> &xs,
                              const std::vector<double> &ys);

/** Richardson extrapolation: the degree-(n-1) interpolant at x = 0. */
double extrapolateRichardson(const std::vector<double> &xs,
                             const std::vector<double> &ys);

/** Ordinary least-squares line, evaluated at x = 0. */
double extrapolateLinear(const std::vector<double> &xs,
                         const std::vector<double> &ys);

} // namespace prophunt::zne

#endif // PROPHUNT_ZNE_EXTRAPOLATION_H
