/**
 * @file
 * QEC-ZNE estimators: Distance-Scaling ZNE vs Hook-ZNE (paper Section 7).
 *
 * The logical error rate at (possibly fractional) distance d under
 * suppression factor Lambda is P_L(d) = Lambda^{-(d+1)/2}. DS-ZNE can only
 * realize odd integer d, giving coarse noise-scale ladders; Hook-ZNE uses
 * the suboptimal intermediate SM circuits from PropHunt's optimization to
 * realize finely spaced effective distances at fixed code distance. Both
 * estimators run a logical randomized-benchmarking model (survival
 * expectation E = (1-2*eps)^depth with binomial shot noise) and
 * extrapolate to the zero-noise limit; bias is the L1 distance to the
 * ideal expectation of 1.
 */
#ifndef PROPHUNT_ZNE_ZNE_H
#define PROPHUNT_ZNE_ZNE_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace prophunt::zne {

/** P_L(d) = Lambda^{-(d+1)/2}, the paper's suppression model. */
double logicalErrorRate(double lambda_suppression, double distance);

/**
 * Noiseless survival expectation of the logical RB model after @p depth
 * layers with per-layer logical error rate @p eps: (1 - eps)^depth
 * (the depolarizing-parameter convention of randomized benchmarking).
 */
double rbExpectation(double eps, std::size_t depth);

/** Shot-noise estimator of the RB expectation from @p shots samples. */
double sampleRbExpectation(double eps, std::size_t depth, std::size_t shots,
                           sim::Rng &rng);

/** One ZNE experiment configuration. */
struct ZneConfig
{
    /** Error-suppression factor Lambda (e.g. 2.14 for Google's data). */
    double lambdaSuppression = 2.0;
    /** Two-qubit-depth of the benchmarked logical circuit. */
    std::size_t depth = 50;
    /** Total shot budget across all noise levels. */
    std::size_t totalShots = 20000;
};

/**
 * Run one ZNE estimate over the given effective distances.
 *
 * Each distance d_i realizes noise scale lambda_i = P_L(d_i)/P_L(d_max);
 * the extrapolated expectation at lambda = 0 is returned.
 */
double zneEstimate(const std::vector<double> &distances,
                   const ZneConfig &config, sim::Rng &rng);

/** Average |estimate - ideal| over repeated trials. */
double zneBias(const std::vector<double> &distances, const ZneConfig &config,
               std::size_t trials, uint64_t seed);

/** DS-ZNE ladder: {d, d-2, d-4, d-6} (odd integer distances). */
std::vector<double> dsZneDistances(double d_max);

/** Hook-ZNE ladder: {d, d-0.5, d-1, d-1.5} (fractional distances realized
 * by intermediate SM circuits). */
std::vector<double> hookZneDistances(double d_max);

} // namespace prophunt::zne

#endif // PROPHUNT_ZNE_ZNE_H
