#include "zne/zne.h"

#include <algorithm>
#include <cmath>

#include "zne/extrapolation.h"

namespace prophunt::zne {

double
logicalErrorRate(double lambda_suppression, double distance)
{
    return std::pow(lambda_suppression, -(distance + 1.0) / 2.0);
}

double
rbExpectation(double eps, std::size_t depth)
{
    // Standard RB convention: eps is the per-layer depolarizing parameter
    // and the polarization (expectation of the target observable) decays
    // by (1 - eps) per layer.
    return std::pow(1.0 - eps, (double)depth);
}

double
sampleRbExpectation(double eps, std::size_t depth, std::size_t shots,
                    sim::Rng &rng)
{
    double e = rbExpectation(eps, depth);
    double p_plus = (1.0 + e) / 2.0;
    std::size_t plus = 0;
    for (std::size_t s = 0; s < shots; ++s) {
        if (rng.uniform() < p_plus) {
            ++plus;
        }
    }
    return 2.0 * (double)plus / (double)shots - 1.0;
}

double
zneEstimate(const std::vector<double> &distances, const ZneConfig &config,
            sim::Rng &rng)
{
    double d_max = *std::max_element(distances.begin(), distances.end());
    double eps_base = logicalErrorRate(config.lambdaSuppression, d_max);
    std::size_t shots_each =
        std::max<std::size_t>(1, config.totalShots / distances.size());

    std::vector<double> lambdas, estimates;
    for (double d : distances) {
        double eps = logicalErrorRate(config.lambdaSuppression, d);
        lambdas.push_back(eps / eps_base);
        estimates.push_back(
            sampleRbExpectation(eps, config.depth, shots_each, rng));
    }
    return extrapolateExponential(lambdas, estimates);
}

double
zneBias(const std::vector<double> &distances, const ZneConfig &config,
        std::size_t trials, uint64_t seed)
{
    double total = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
        sim::Rng rng(seed + t * 0x9e3779b97f4a7c15ULL);
        double est = zneEstimate(distances, config, rng);
        total += std::fabs(est - 1.0);
    }
    return total / (double)trials;
}

std::vector<double>
dsZneDistances(double d_max)
{
    return {d_max, d_max - 2.0, d_max - 4.0, d_max - 6.0};
}

std::vector<double>
hookZneDistances(double d_max)
{
    return {d_max, d_max - 0.5, d_max - 1.0, d_max - 1.5};
}

} // namespace prophunt::zne
