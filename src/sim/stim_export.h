/**
 * @file
 * Interop: export circuits and detector error models in Stim's text
 * formats.
 *
 * Downstream users can round-trip this library's SM circuits through the
 * reference toolchain the paper used — Stim for DEM extraction and
 * sampling, PyMatching / BP-LSD for decoding — to cross-check our
 * substrate substitutions independently. The exported circuit uses R/RX,
 * CX, M/MX, TICK, DETECTOR and OBSERVABLE_INCLUDE instructions; the DEM
 * uses `error(p) D.. L..` lines.
 */
#ifndef PROPHUNT_SIM_STIM_EXPORT_H
#define PROPHUNT_SIM_STIM_EXPORT_H

#include <string>

#include "circuit/sm_circuit.h"
#include "sim/dem.h"
#include "sim/noise_model.h"

namespace prophunt::sim {

/**
 * Render the circuit as a Stim circuit string.
 *
 * @param circuit The memory experiment to export.
 * @param noise If nonzero, DEPOLARIZE1/DEPOLARIZE2 and X_ERROR/Z_ERROR
 * annotations matching the paper's noise model are woven in so Stim
 * reproduces the same detector error model.
 */
std::string toStimCircuit(const circuit::SmCircuit &circuit,
                          const NoiseModel &noise = {});

/** Render the DEM as a Stim detector-error-model string. */
std::string toStimDem(const Dem &dem);

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_STIM_EXPORT_H
