#include "sim/dem_builder.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>
#include <stdexcept>

namespace prophunt::sim {

namespace {

using circuit::Instruction;
using circuit::OpType;
using circuit::SmCircuit;

/** A fault component to inject into the bit planes at a sweep position. */
struct Activation
{
    uint32_t fault;
    uint32_t qubit;
    bool x; ///< Fault has an X component on this qubit.
    bool z; ///< Fault has a Z component on this qubit.
};

bool
hasX(Pauli p)
{
    return p == Pauli::X || p == Pauli::Y;
}

bool
hasZ(Pauli p)
{
    return p == Pauli::Z || p == Pauli::Y;
}

/** All 15 non-identity two-qubit Pauli pairs. */
std::vector<std::pair<Pauli, Pauli>>
twoQubitPaulis()
{
    std::vector<std::pair<Pauli, Pauli>> out;
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            if (a == 0 && b == 0) {
                continue;
            }
            out.push_back({(Pauli)a, (Pauli)b});
        }
    }
    return out;
}

} // namespace

Dem
buildDem(const SmCircuit &circuit, const NoiseModel &noise)
{
    std::size_t num_instr = circuit.instructions.size();
    std::vector<FaultLoc> faults;
    std::vector<double> fault_p;
    std::vector<std::vector<Activation>> before(num_instr), after(num_instr);

    auto add_1q = [&](std::size_t instr, uint32_t q, Pauli p, double prob,
                      bool before_instr) {
        uint32_t f = (uint32_t)faults.size();
        FaultLoc loc;
        loc.instr = instr;
        loc.p0 = p;
        faults.push_back(loc);
        fault_p.push_back(prob);
        Activation act{f, q, hasX(p), hasZ(p)};
        (before_instr ? before : after)[instr].push_back(act);
    };

    // Enumerate fault locations.
    const auto two_q = twoQubitPaulis();
    for (std::size_t i = 0; i < num_instr; ++i) {
        const Instruction &ins = circuit.instructions[i];
        switch (ins.op) {
        case OpType::ResetZ:
        case OpType::ResetX:
            if (noise.p1 > 0) {
                for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
                    add_1q(i, ins.qubits[0], p, noise.p1 / 3.0, false);
                }
            }
            break;
        case OpType::MeasureZ:
        case OpType::MeasureX:
            if (noise.p1 > 0) {
                for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
                    add_1q(i, ins.qubits[0], p, noise.p1 / 3.0, true);
                }
            }
            break;
        case OpType::Cnot:
            if (noise.p2 > 0) {
                for (const auto &[pc, pt] : two_q) {
                    uint32_t f = (uint32_t)faults.size();
                    FaultLoc loc;
                    loc.instr = i;
                    loc.p0 = pc;
                    loc.p1 = pt;
                    loc.isCnot = true;
                    loc.cnot = circuit.cnotInfo[i];
                    faults.push_back(loc);
                    fault_p.push_back(noise.p2 / 15.0);
                    if (hasX(pc) || hasZ(pc)) {
                        after[i].push_back(
                            {f, ins.qubits[0], hasX(pc), hasZ(pc)});
                    }
                    if (hasX(pt) || hasZ(pt)) {
                        after[i].push_back(
                            {f, ins.qubits[1], hasX(pt), hasZ(pt)});
                    }
                }
            }
            break;
        case OpType::Tick:
            break;
        }
    }

    // Idle faults: qubits unused during each CNOT layer.
    if (noise.pIdle > 0) {
        std::size_t i = 0;
        while (i < num_instr) {
            if (circuit.instructions[i].op != OpType::Cnot) {
                ++i;
                continue;
            }
            std::size_t layer_start = i;
            std::vector<bool> busy(circuit.numQubits, false);
            while (i < num_instr &&
                   circuit.instructions[i].op == OpType::Cnot) {
                busy[circuit.instructions[i].qubits[0]] = true;
                busy[circuit.instructions[i].qubits[1]] = true;
                ++i;
            }
            for (uint32_t q = 0; q < circuit.numQubits; ++q) {
                if (!busy[q]) {
                    for (Pauli p : {Pauli::X, Pauli::Y, Pauli::Z}) {
                        add_1q(layer_start, q, p, noise.pIdle / 3.0, true);
                    }
                }
            }
        }
    }

    std::size_t num_faults = faults.size();
    std::size_t words = (num_faults + 63) / 64;

    // Bit planes: for each qubit, which faults currently have an X (Z)
    // component there.
    std::vector<std::vector<uint64_t>> xp(circuit.numQubits,
                                          std::vector<uint64_t>(words, 0));
    std::vector<std::vector<uint64_t>> zp = xp;

    // Measurement flips per fault.
    std::vector<std::vector<uint32_t>> fault_meas(num_faults);

    std::size_t meas_index = 0;
    auto scan_plane = [&](const std::vector<uint64_t> &plane,
                          std::size_t meas) {
        for (std::size_t w = 0; w < words; ++w) {
            uint64_t bits = plane[w];
            while (bits) {
                uint32_t f = (uint32_t)((w << 6) + std::countr_zero(bits));
                bits &= bits - 1;
                fault_meas[f].push_back((uint32_t)meas);
            }
        }
    };
    auto activate = [&](const Activation &a) {
        if (a.x) {
            xp[a.qubit][a.fault >> 6] ^= uint64_t{1} << (a.fault & 63);
        }
        if (a.z) {
            zp[a.qubit][a.fault >> 6] ^= uint64_t{1} << (a.fault & 63);
        }
    };

    for (std::size_t i = 0; i < num_instr; ++i) {
        for (const Activation &a : before[i]) {
            activate(a);
        }
        const Instruction &ins = circuit.instructions[i];
        switch (ins.op) {
        case OpType::ResetZ:
        case OpType::ResetX: {
            uint32_t q = ins.qubits[0];
            std::fill(xp[q].begin(), xp[q].end(), 0);
            std::fill(zp[q].begin(), zp[q].end(), 0);
            break;
        }
        case OpType::Cnot: {
            uint32_t c = ins.qubits[0], t = ins.qubits[1];
            for (std::size_t w = 0; w < words; ++w) {
                xp[t][w] ^= xp[c][w];
                zp[c][w] ^= zp[t][w];
            }
            break;
        }
        case OpType::MeasureZ:
            scan_plane(xp[ins.qubits[0]], meas_index++);
            break;
        case OpType::MeasureX:
            scan_plane(zp[ins.qubits[0]], meas_index++);
            break;
        case OpType::Tick:
            break;
        }
        for (const Activation &a : after[i]) {
            activate(a);
        }
    }
    if (meas_index != circuit.numMeasurements) {
        throw std::logic_error("buildDem: measurement count mismatch");
    }

    // Measurement -> detector / observable incidence.
    std::vector<std::vector<uint32_t>> meas_det(circuit.numMeasurements);
    for (std::size_t d = 0; d < circuit.detectors.size(); ++d) {
        for (std::size_t mm : circuit.detectors[d]) {
            meas_det[mm].push_back((uint32_t)d);
        }
    }
    std::vector<std::vector<uint32_t>> meas_obs(circuit.numMeasurements);
    for (std::size_t o = 0; o < circuit.observables.size(); ++o) {
        for (std::size_t mm : circuit.observables[o]) {
            meas_obs[mm].push_back((uint32_t)o);
        }
    }

    // Convert measurement flips to detector/observable signatures and merge
    // identical signatures.
    using Signature = std::pair<std::vector<uint32_t>, std::vector<uint32_t>>;
    std::map<Signature, std::size_t> index;
    Dem dem;
    dem.numDetectors = circuit.detectors.size();
    dem.numObservables = circuit.observables.size();

    auto odd_elements = [](std::vector<uint32_t> v) {
        std::sort(v.begin(), v.end());
        std::vector<uint32_t> out;
        for (std::size_t i = 0; i < v.size();) {
            std::size_t j = i;
            while (j < v.size() && v[j] == v[i]) {
                ++j;
            }
            if ((j - i) % 2 == 1) {
                out.push_back(v[i]);
            }
            i = j;
        }
        return out;
    };

    for (std::size_t f = 0; f < num_faults; ++f) {
        std::vector<uint32_t> dets, obs;
        for (uint32_t mm : fault_meas[f]) {
            for (uint32_t d : meas_det[mm]) {
                dets.push_back(d);
            }
            for (uint32_t o : meas_obs[mm]) {
                obs.push_back(o);
            }
        }
        dets = odd_elements(std::move(dets));
        obs = odd_elements(std::move(obs));
        if (dets.empty() && obs.empty()) {
            continue;
        }
        Signature sig{dets, obs};
        auto it = index.find(sig);
        if (it == index.end()) {
            ErrorMechanism mech;
            mech.p = fault_p[f];
            mech.detectors = std::move(sig.first);
            mech.observables = std::move(sig.second);
            mech.sources.push_back(faults[f]);
            index.emplace(Signature{mech.detectors, mech.observables},
                          dem.errors.size());
            dem.errors.push_back(std::move(mech));
        } else {
            ErrorMechanism &mech = dem.errors[it->second];
            mech.p = mech.p + fault_p[f] - 2.0 * mech.p * fault_p[f];
            mech.sources.push_back(faults[f]);
        }
    }
    return dem;
}

} // namespace prophunt::sim
