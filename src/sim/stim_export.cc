#include "sim/stim_export.h"

#include <sstream>

namespace prophunt::sim {

std::string
toStimCircuit(const circuit::SmCircuit &circuit, const NoiseModel &noise)
{
    std::ostringstream out;
    out << "# exported by prophunt (memory-"
        << (circuit.basis == circuit::MemoryBasis::Z ? "Z" : "X") << ", "
        << circuit.rounds << " rounds)\n";

    for (const auto &ins : circuit.instructions) {
        switch (ins.op) {
        case circuit::OpType::ResetZ:
            out << "R " << ins.qubits[0] << "\n";
            if (noise.p1 > 0) {
                out << "DEPOLARIZE1(" << noise.p1 << ") " << ins.qubits[0]
                    << "\n";
            }
            break;
        case circuit::OpType::ResetX:
            out << "RX " << ins.qubits[0] << "\n";
            if (noise.p1 > 0) {
                out << "DEPOLARIZE1(" << noise.p1 << ") " << ins.qubits[0]
                    << "\n";
            }
            break;
        case circuit::OpType::Cnot:
            out << "CX " << ins.qubits[0] << " " << ins.qubits[1] << "\n";
            if (noise.p2 > 0) {
                out << "DEPOLARIZE2(" << noise.p2 << ") " << ins.qubits[0]
                    << " " << ins.qubits[1] << "\n";
            }
            break;
        case circuit::OpType::MeasureZ:
            if (noise.p1 > 0) {
                out << "DEPOLARIZE1(" << noise.p1 << ") " << ins.qubits[0]
                    << "\n";
            }
            out << "M " << ins.qubits[0] << "\n";
            break;
        case circuit::OpType::MeasureX:
            if (noise.p1 > 0) {
                out << "DEPOLARIZE1(" << noise.p1 << ") " << ins.qubits[0]
                    << "\n";
            }
            out << "MX " << ins.qubits[0] << "\n";
            break;
        case circuit::OpType::Tick:
            out << "TICK\n";
            break;
        }
    }

    // Detector and observable definitions via relative record lookback.
    std::size_t total = circuit.numMeasurements;
    for (const auto &det : circuit.detectors) {
        out << "DETECTOR";
        for (std::size_t m : det) {
            out << " rec[-" << (total - m) << "]";
        }
        out << "\n";
    }
    for (std::size_t o = 0; o < circuit.observables.size(); ++o) {
        out << "OBSERVABLE_INCLUDE(" << o << ")";
        for (std::size_t m : circuit.observables[o]) {
            out << " rec[-" << (total - m) << "]";
        }
        out << "\n";
    }
    return out.str();
}

std::string
toStimDem(const Dem &dem)
{
    std::ostringstream out;
    for (const auto &mech : dem.errors) {
        out << "error(" << mech.p << ")";
        for (uint32_t d : mech.detectors) {
            out << " D" << d;
        }
        for (uint32_t o : mech.observables) {
            out << " L" << o;
        }
        out << "\n";
    }
    return out.str();
}

} // namespace prophunt::sim
