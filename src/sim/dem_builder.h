/**
 * @file
 * DEM extraction: deterministic Pauli-fault propagation through a circuit.
 *
 * Every possible fault location is propagated through the remainder of the
 * circuit using the CNOT rules of the paper's Figure 3b to determine which
 * measurements (and hence detectors and observables) it flips. Faults with
 * identical detector/observable signatures are merged with the usual
 * independent-XOR probability combination p = p_a + p_b - 2 p_a p_b.
 *
 * The propagation is batched: instead of walking the circuit once per
 * fault, we sweep the circuit once, carrying per-qubit bit planes indexed
 * by fault (X plane and Z plane). A CNOT is then two word-wise XORs per
 * plane word, making DEM extraction effectively linear in circuit size.
 */
#ifndef PROPHUNT_SIM_DEM_BUILDER_H
#define PROPHUNT_SIM_DEM_BUILDER_H

#include "circuit/sm_circuit.h"
#include "sim/dem.h"
#include "sim/noise_model.h"

namespace prophunt::sim {

/** Extract the detector error model of @p circuit under @p noise. */
Dem buildDem(const circuit::SmCircuit &circuit, const NoiseModel &noise);

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_DEM_BUILDER_H
