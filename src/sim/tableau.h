/**
 * @file
 * Stabilizer tableau simulator (Aaronson-Gottesman CHP style).
 *
 * An exact simulator for the Clifford circuits this library builds. It is
 * deliberately independent of the Pauli-frame machinery in dem_builder so
 * the two can cross-validate: a noiseless memory experiment must produce
 * all-zero detectors, and injecting a single Pauli fault must flip exactly
 * the detectors and observables the DEM predicts for that fault location.
 */
#ifndef PROPHUNT_SIM_TABLEAU_H
#define PROPHUNT_SIM_TABLEAU_H

#include <cstdint>
#include <vector>

#include "circuit/sm_circuit.h"
#include "gf2/bitvec.h"
#include "sim/dem.h"
#include "sim/rng.h"

namespace prophunt::sim {

/**
 * Stabilizer state of n qubits, initialized to |0...0>.
 *
 * Rows 0..n-1 are destabilizers, rows n..2n-1 stabilizers, following the
 * standard CHP layout with an extra scratch row for deterministic
 * measurements.
 */
class Tableau
{
  public:
    explicit Tableau(std::size_t n);

    std::size_t numQubits() const { return n_; }

    void applyH(std::size_t q);
    void applyCnot(std::size_t control, std::size_t target);
    void applyX(std::size_t q);
    void applyZ(std::size_t q);
    void applyY(std::size_t q);

    /**
     * Measure qubit @p q in the Z basis.
     *
     * @param rng Supplies the outcome for non-deterministic measurements.
     * @return The measurement outcome (0 or 1).
     */
    bool measureZ(std::size_t q, Rng &rng);

    /** Measure in the X basis (H-conjugated Z measurement). */
    bool measureX(std::size_t q, Rng &rng);

    /** Reset to |0> (measure Z, flip if 1). */
    void resetZ(std::size_t q, Rng &rng);

    /** Reset to |+>. */
    void resetX(std::size_t q, Rng &rng);

  private:
    void rowsum(std::size_t h, std::size_t i);
    int pauliPhaseExponent(bool x1, bool z1, bool x2, bool z2) const;

    std::size_t n_;
    // Row-major bit storage: x_[row] and z_[row] are n-bit vectors,
    // r_[row] the sign bit.
    std::vector<gf2::BitVec> x_;
    std::vector<gf2::BitVec> z_;
    std::vector<uint8_t> r_;
};

/**
 * Run a full SM circuit on the tableau simulator.
 *
 * @param circuit The circuit to execute.
 * @param rng Outcome source for random measurements.
 * @param inject Optional single fault: after (or, for measurements,
 * before) instruction inject->instr, apply inject->p0 to qubit 0 of the
 * instruction and inject->p1 to qubit 1 (CNOTs). Pass nullptr for a
 * noiseless run.
 * @return One bit per measurement, in circuit order.
 */
std::vector<uint8_t> runTableau(const circuit::SmCircuit &circuit, Rng &rng,
                                const FaultLoc *inject = nullptr);

/** Detector values from a measurement record. */
std::vector<uint8_t> detectorValues(const circuit::SmCircuit &circuit,
                                    const std::vector<uint8_t> &meas);

/** Observable values from a measurement record. */
std::vector<uint8_t> observableValues(const circuit::SmCircuit &circuit,
                                      const std::vector<uint8_t> &meas);

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_TABLEAU_H
