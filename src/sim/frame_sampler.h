/**
 * @file
 * Word-packed ("frame" layout) Monte-Carlo sampling.
 *
 * The scalar sampler stores one shot per row (shot-major); this sampler
 * keeps 64 shots per machine word in detector-major order, the layout Stim
 * uses for frame simulation. Sampling still iterates error mechanisms with
 * geometric skipping, but events landing in the same 64-shot window are
 * accumulated into one shot mask and XORed into the mechanism's detector
 * and observable rows a whole word at a time.
 *
 * The packed batch is bit-identical to the scalar sampler at the same seed
 * (both consume the RNG stream identically), so the sharded pipeline can
 * sample packed, transpose once per shard, and hand row-layout batches to
 * the decoders without changing any sampled bit.
 */
#ifndef PROPHUNT_SIM_FRAME_SAMPLER_H
#define PROPHUNT_SIM_FRAME_SAMPLER_H

#include <cstdint>
#include <vector>

#include "sim/dem.h"
#include "sim/sampler.h"

namespace prophunt::sim {

/**
 * Non-owning view of frame-layout (detector-major, 64 shots per word)
 * outcomes.
 *
 * This is the type the packed decode path consumes
 * (decoder::Decoder::decodePacked): decoders that understand the frame
 * layout read detector rows directly, everything else is adapted through
 * one transpose. @p obs may be null — decoding only needs detectors.
 */
struct FrameView
{
    const uint64_t *det = nullptr;
    const uint64_t *obs = nullptr;
    std::size_t shots = 0;
    /** Words per detector/observable row: ceil(shots / 64). */
    std::size_t shotWords = 0;
    std::size_t numDetectors = 0;
    std::size_t numObservables = 0;

    const uint64_t *
    detRow(std::size_t d) const
    {
        return det + d * shotWords;
    }

    bool
    detBit(std::size_t d, std::size_t shot) const
    {
        return (detRow(d)[shot >> 6] >> (shot & 63)) & 1;
    }
};

/** Bit-packed outcomes in frame layout: 64 shots per word, detector-major. */
struct FrameBatch
{
    std::size_t shots = 0;
    /** Words per detector/observable row: ceil(shots / 64). */
    std::size_t shotWords = 0;
    std::size_t numDetectors = 0;
    std::size_t numObservables = 0;
    /** det[d * shotWords + w]: shots (w*64)..(w*64+63) of detector d. */
    std::vector<uint64_t> det;
    /** obs[o * shotWords + w]: shots (w*64)..(w*64+63) of observable o. */
    std::vector<uint64_t> obs;

    bool
    detBit(std::size_t d, std::size_t shot) const
    {
        return (det[d * shotWords + (shot >> 6)] >> (shot & 63)) & 1;
    }

    bool
    obsBit(std::size_t o, std::size_t shot) const
    {
        return (obs[o * shotWords + (shot >> 6)] >> (shot & 63)) & 1;
    }

    /** View of this batch (obs included when present). */
    FrameView view() const;

    /**
     * Observable flip masks (first 64 observables) of every shot, read
     * straight from the frame rows into @p out — the packed pipeline's
     * replacement for transposing the observable plane.
     */
    void obsMasks(std::vector<uint64_t> &out) const;
};

/**
 * Sample @p shots shots from @p dem into @p out, reusing its storage.
 *
 * RNG-stream compatible with sampleDemInto: the same (mechanism, shot)
 * events fire at the same seed, so transposing the result reproduces the
 * scalar row batch bit for bit.
 */
void sampleDemFramesInto(const Dem &dem, std::size_t shots, uint64_t seed,
                         FrameBatch &out);

/** Allocate-and-sample convenience wrapper around sampleDemFramesInto. */
FrameBatch sampleDemFrames(const Dem &dem, std::size_t shots, uint64_t seed);

/** In-place transpose of a 64x64 bit matrix (bit j of m[i] <-> bit i of
 * m[j]). */
void transpose64x64(uint64_t m[64]);

/**
 * Transpose a frame batch into caller-owned row storage.
 *
 * @p det_rows / @p obs_rows receive frames.shots rows of @p det_words /
 * @p obs_words words; every word of every row is written (rows beyond the
 * frame's detector/observable count read as zero), so the destination does
 * not need to be zeroed. Row widths must satisfy
 * det_words * 64 >= numDetectors (likewise for observables).
 */
void transposeFrames(const FrameBatch &frames, std::size_t det_words,
                     std::size_t obs_words, uint64_t *det_rows,
                     uint64_t *obs_rows);

/** Transpose a frame batch into a row-layout SampleBatch, reusing its
 * storage. */
void transposeFrames(const FrameBatch &frames, SampleBatch &out);

/**
 * Transpose a frame view into a row-layout SampleBatch, reusing its
 * storage.
 *
 * The adapter behind Decoder::decodePacked for decoders without a native
 * packed path. A null @p view.obs leaves the observable rows zeroed.
 */
void transposeView(const FrameView &view, SampleBatch &out);

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_FRAME_SAMPLER_H
