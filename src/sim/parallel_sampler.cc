#include "sim/parallel_sampler.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/frame_sampler.h"

namespace prophunt::sim {

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
shardSeed(uint64_t master_seed, std::size_t shard)
{
    // Equivalent to advancing SplitMix64(master_seed) shard+1 times and
    // taking the last output, but O(1): the state after k steps is
    // master_seed + k * golden.
    uint64_t state = master_seed + (uint64_t)shard * 0x9e3779b97f4a7c15ULL;
    return splitMix64(state);
}

std::size_t
resolveThreads(std::size_t threads)
{
    if (threads != 0) {
        return threads;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::size_t
shardWorkers(const ShardPlan &plan, std::size_t threads)
{
    return std::min(resolveThreads(threads), plan.numShards());
}

/**
 * One queued index range. Lives on the caller's stack: the caller never
 * returns from run() while any participant is inside, and removes the run
 * from the queue before waiting, so no worker can observe a dead pointer.
 */
struct WorkerPool::RunState
{
    std::size_t n = 0;
    std::size_t maxSlots = 1;
    const std::function<void(std::size_t, std::size_t)> *fn = nullptr;
    const std::atomic<bool> *stop = nullptr;
    /** Next index to claim; guarded by the pool mutex. */
    std::size_t cursor = 0;
    /** Dense participant slots handed out so far (slot 0 is the caller). */
    std::size_t slotsUsed = 0;
    /** Threads currently inside drainLocked for this run. */
    std::size_t participants = 0;
    bool stopped = false;
    std::exception_ptr error;
    std::condition_variable doneCv;

    bool
    hasWork() const
    {
        return !stopped && cursor < n &&
               (stop == nullptr || !stop->load(std::memory_order_relaxed));
    }
};

WorkerPool::WorkerPool(std::size_t threads)
{
    threads_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        threads_.emplace_back([this] { workerLoop(); });
    }
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_) {
        t.join();
    }
}

WorkerPool &
WorkerPool::shared()
{
    static WorkerPool pool(resolveThreads(0) - 1);
    return pool;
}

void
WorkerPool::drainLocked(RunState &run, std::size_t slot,
                        std::unique_lock<std::mutex> &lock)
{
    while (run.hasWork()) {
        std::size_t i = run.cursor++;
        lock.unlock();
        try {
            (*run.fn)(i, slot);
        } catch (...) {
            lock.lock();
            if (!run.error) {
                run.error = std::current_exception();
            }
            run.stopped = true;
            return;
        }
        lock.lock();
    }
}

void
WorkerPool::run(std::size_t n, std::size_t maxSlots,
                const std::function<void(std::size_t, std::size_t)> &fn,
                const std::atomic<bool> *stop)
{
    if (n == 0) {
        return;
    }
    RunState run;
    run.n = n;
    run.maxSlots = std::max<std::size_t>(maxSlots, 1);
    run.fn = &fn;
    run.stop = stop;

    std::unique_lock<std::mutex> lock(mutex_);
    run.slotsUsed = 1; // the caller is participant 0
    run.participants = 1;
    bool queued = run.maxSlots > 1 && n > 1 && !threads_.empty();
    if (queued) {
        queue_.push_back(&run);
        workCv_.notify_all();
    }
    drainLocked(run, 0, lock);
    run.participants--;
    if (queued) {
        queue_.erase(std::find(queue_.begin(), queue_.end(), &run));
        run.doneCv.wait(lock, [&] { return run.participants == 0; });
    }
    if (run.error) {
        lock.unlock();
        std::rethrow_exception(run.error);
    }
}

void
WorkerPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        RunState *pick = nullptr;
        for (RunState *r : queue_) {
            if (r->hasWork() && r->slotsUsed < r->maxSlots) {
                pick = r;
                break;
            }
        }
        if (pick == nullptr) {
            if (shutdown_) {
                return;
            }
            workCv_.wait(lock);
            continue;
        }
        std::size_t slot = pick->slotsUsed++;
        pick->participants++;
        drainLocked(*pick, slot, lock);
        pick->participants--;
        if (pick->participants == 0) {
            pick->doneCv.notify_all();
        }
    }
}

void
forEachShard(const ShardPlan &plan, std::size_t threads,
             const std::function<void(std::size_t, std::size_t)> &fn,
             const std::atomic<bool> *stop)
{
    WorkerPool::shared().run(plan.numShards(), shardWorkers(plan, threads),
                             fn, stop);
}

void
parallelFor(std::size_t n, std::size_t threads,
            const std::function<void(std::size_t)> &fn)
{
    WorkerPool::shared().run(n, std::min(resolveThreads(threads), n),
                             [&fn](std::size_t i, std::size_t) { fn(i); });
}

void
validateDemProbabilities(const Dem &dem, const char *where)
{
    for (const ErrorMechanism &mech : dem.errors) {
        if (mech.p >= 1.0) {
            throw std::invalid_argument(std::string(where) + ": p >= 1");
        }
    }
}

void
forEachFrameShard(
    const Dem &dem, const ShardPlan &plan, uint64_t seed,
    std::size_t threads,
    const std::function<void(std::size_t, std::size_t, const FrameBatch &)>
        &fn,
    const std::atomic<bool> *stop)
{
    // Validate up front: a throw inside a worker would terminate.
    validateDemProbabilities(dem, "forEachFrameShard");
    std::vector<FrameBatch> scratch(shardWorkers(plan, threads));
    forEachShard(
        plan, threads,
        [&](std::size_t shard, std::size_t worker) {
            FrameBatch &frames = scratch[worker];
            sampleDemFramesInto(dem, plan.shotsOf(shard),
                                shardSeed(seed, shard), frames);
            fn(shard, worker, frames);
        },
        stop);
}

SampleBatch
sampleDemSharded(const Dem &dem, std::size_t shots, uint64_t seed,
                 std::size_t threads, std::size_t shard_shots)
{
    SampleBatch batch;
    batch.shots = shots;
    batch.detWords = (dem.numDetectors + 63) / 64;
    batch.obsWords = (std::max<std::size_t>(dem.numObservables, 1) + 63) / 64;
    batch.det.assign(shots * batch.detWords, 0);
    batch.obs.assign(shots * batch.obsWords, 0);

    // Each shard is sampled word-packed (frame layout) and transposed into
    // its row range; the packed sampler consumes the RNG stream exactly as
    // the scalar one, so the batch is unchanged bit for bit.
    ShardPlan plan{shots, std::max<std::size_t>(shard_shots, 1)};
    forEachFrameShard(
        dem, plan, seed, threads,
        [&](std::size_t shard, std::size_t, const FrameBatch &frames) {
            std::size_t off = plan.offsetOf(shard);
            transposeFrames(frames, batch.detWords, batch.obsWords,
                            batch.det.data() + off * batch.detWords,
                            batch.obs.data() + off * batch.obsWords);
        });
    return batch;
}

} // namespace prophunt::sim
