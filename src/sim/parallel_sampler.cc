#include "sim/parallel_sampler.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/frame_sampler.h"

namespace prophunt::sim {

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
shardSeed(uint64_t master_seed, std::size_t shard)
{
    // Equivalent to advancing SplitMix64(master_seed) shard+1 times and
    // taking the last output, but O(1): the state after k steps is
    // master_seed + k * golden.
    uint64_t state = master_seed + (uint64_t)shard * 0x9e3779b97f4a7c15ULL;
    return splitMix64(state);
}

std::size_t
resolveThreads(std::size_t threads)
{
    if (threads != 0) {
        return threads;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::size_t
shardWorkers(const ShardPlan &plan, std::size_t threads)
{
    return std::min(resolveThreads(threads), plan.numShards());
}

void
forEachShard(const ShardPlan &plan, std::size_t threads,
             const std::function<void(std::size_t, std::size_t)> &fn,
             const std::atomic<bool> *stop)
{
    std::size_t n = plan.numShards();
    if (n == 0) {
        return;
    }
    std::atomic<std::size_t> next{0};
    auto run = [&](std::size_t worker) {
        for (;;) {
            if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
                return;
            }
            std::size_t shard = next.fetch_add(1);
            if (shard >= n) {
                return;
            }
            fn(shard, worker);
        }
    };

    std::size_t workers = shardWorkers(plan, threads);
    if (workers <= 1) {
        run(0);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
        pool.emplace_back(run, w);
    }
    try {
        run(0);
    } catch (...) {
        for (std::thread &t : pool) {
            t.join();
        }
        throw;
    }
    for (std::thread &t : pool) {
        t.join();
    }
}

void
parallelFor(std::size_t n, std::size_t threads,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0) {
        return;
    }
    std::size_t workers = std::min(resolveThreads(threads), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
        }
        return;
    }
    std::atomic<std::size_t> next{0};
    auto run = [&]() {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1)) {
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
        pool.emplace_back(run);
    }
    try {
        run();
    } catch (...) {
        for (std::thread &t : pool) {
            t.join();
        }
        throw;
    }
    for (std::thread &t : pool) {
        t.join();
    }
}

void
validateDemProbabilities(const Dem &dem, const char *where)
{
    for (const ErrorMechanism &mech : dem.errors) {
        if (mech.p >= 1.0) {
            throw std::invalid_argument(std::string(where) + ": p >= 1");
        }
    }
}

void
forEachFrameShard(
    const Dem &dem, const ShardPlan &plan, uint64_t seed,
    std::size_t threads,
    const std::function<void(std::size_t, std::size_t, const FrameBatch &)>
        &fn,
    const std::atomic<bool> *stop)
{
    // Validate up front: a throw inside a worker would terminate.
    validateDemProbabilities(dem, "forEachFrameShard");
    std::vector<FrameBatch> scratch(shardWorkers(plan, threads));
    forEachShard(
        plan, threads,
        [&](std::size_t shard, std::size_t worker) {
            FrameBatch &frames = scratch[worker];
            sampleDemFramesInto(dem, plan.shotsOf(shard),
                                shardSeed(seed, shard), frames);
            fn(shard, worker, frames);
        },
        stop);
}

SampleBatch
sampleDemSharded(const Dem &dem, std::size_t shots, uint64_t seed,
                 std::size_t threads, std::size_t shard_shots)
{
    SampleBatch batch;
    batch.shots = shots;
    batch.detWords = (dem.numDetectors + 63) / 64;
    batch.obsWords = (std::max<std::size_t>(dem.numObservables, 1) + 63) / 64;
    batch.det.assign(shots * batch.detWords, 0);
    batch.obs.assign(shots * batch.obsWords, 0);

    // Each shard is sampled word-packed (frame layout) and transposed into
    // its row range; the packed sampler consumes the RNG stream exactly as
    // the scalar one, so the batch is unchanged bit for bit.
    ShardPlan plan{shots, std::max<std::size_t>(shard_shots, 1)};
    forEachFrameShard(
        dem, plan, seed, threads,
        [&](std::size_t shard, std::size_t, const FrameBatch &frames) {
            std::size_t off = plan.offsetOf(shard);
            transposeFrames(frames, batch.detWords, batch.obsWords,
                            batch.det.data() + off * batch.detWords,
                            batch.obs.data() + off * batch.obsWords);
        });
    return batch;
}

} // namespace prophunt::sim
