/**
 * @file
 * Shared geometric-skip event kernel for the DEM samplers.
 *
 * Both the scalar row sampler and the word-packed frame sampler must
 * consume the RNG stream identically — their outputs are contractually
 * bit-identical at a fixed seed — so the per-mechanism skip loop lives
 * here once: the first event lands at floor(log(U)/log(1-p)), and each
 * subsequent gap is an independent geometric variate.
 */
#ifndef PROPHUNT_SIM_EVENT_STREAM_H
#define PROPHUNT_SIM_EVENT_STREAM_H

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "sim/dem.h"
#include "sim/rng.h"

namespace prophunt::sim::detail {

/**
 * Invoke emit(shot) for every shot in [0, shots) where @p mech fires.
 *
 * Shots are emitted in ascending order. Throws std::invalid_argument
 * (tagged with @p where) for p >= 1; p <= 0 mechanisms emit nothing and
 * consume no randomness.
 */
template <typename Emit>
inline void
forEachMechanismEvent(const ErrorMechanism &mech, std::size_t shots,
                      Rng &rng, const char *where, Emit emit)
{
    if (mech.p <= 0.0) {
        return;
    }
    if (mech.p >= 1.0) {
        throw std::invalid_argument(std::string(where) + ": p >= 1");
    }
    double log1mp = std::log1p(-mech.p);
    double u = rng.uniform();
    std::size_t shot = (std::size_t)(std::log(u <= 0 ? 1e-300 : u) / log1mp);
    while (shot < shots) {
        emit(shot);
        u = rng.uniform();
        shot += 1 + (std::size_t)(std::log(u <= 0 ? 1e-300 : u) / log1mp);
    }
}

} // namespace prophunt::sim::detail

#endif // PROPHUNT_SIM_EVENT_STREAM_H
