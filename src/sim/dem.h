/**
 * @file
 * Circuit-level detector error models (DEMs).
 *
 * A DEM is the circuit-level counterpart of the code's check and logical
 * matrices (paper Section 2.7): each independent error mechanism maps to
 * the set of detectors and logical observables it flips. Mechanisms retain
 * provenance — the gate fault locations that produced them — so PropHunt
 * can map a circuit-level error back to candidate schedule changes.
 */
#ifndef PROPHUNT_SIM_DEM_H
#define PROPHUNT_SIM_DEM_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/sm_circuit.h"
#include "gf2/matrix.h"

namespace prophunt::sim {

/** Pauli labels for fault components. */
enum class Pauli : uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/** A single physical fault location in the circuit. */
struct FaultLoc
{
    /** Index of the faulted instruction. */
    std::size_t instr = 0;
    /** Pauli applied to the first (or only) qubit of the instruction. */
    Pauli p0 = Pauli::I;
    /** Pauli applied to the second qubit (CNOT faults only). */
    Pauli p1 = Pauli::I;
    /** True iff this is a CNOT fault with valid schedule provenance. */
    bool isCnot = false;
    /** Schedule provenance (valid iff isCnot). */
    circuit::CnotInfo cnot;
};

/** An independent error mechanism of the DEM. */
struct ErrorMechanism
{
    double p = 0.0;
    /** Flipped detectors, sorted ascending. */
    std::vector<uint32_t> detectors;
    /** Flipped logical observables, sorted ascending. */
    std::vector<uint32_t> observables;
    /** Fault locations merged into this mechanism. */
    std::vector<FaultLoc> sources;
};

/** A complete detector error model. */
struct Dem
{
    std::size_t numDetectors = 0;
    std::size_t numObservables = 0;
    std::vector<ErrorMechanism> errors;

    /** Circuit-level check matrix H: detectors x errors. */
    gf2::Matrix checkMatrix() const;

    /** Circuit-level logical matrix L: observables x errors. */
    gf2::Matrix logicalMatrix() const;

    /** Adjacency: for each detector, the mechanisms touching it. */
    std::vector<std::vector<uint32_t>> detectorToErrors() const;
};

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_DEM_H
