/**
 * @file
 * Fast seeded RNG (xoshiro256**) for Monte-Carlo sampling.
 *
 * std::mt19937_64 is fine for setup-time randomness, but the sampler draws
 * billions of variates; xoshiro256** is several times faster with excellent
 * statistical quality.
 */
#ifndef PROPHUNT_SIM_RNG_H
#define PROPHUNT_SIM_RNG_H

#include <cstdint>

namespace prophunt::sim {

/** xoshiro256** by Blackman & Vigna (public domain reference design). */
class Rng
{
  public:
    explicit Rng(uint64_t seed)
    {
        // SplitMix64 seeding.
        uint64_t x = seed;
        for (auto &word : s_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    uint64_t
    next()
    {
        uint64_t result = rotl(s_[1] * 5, 7) * 9;
        uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (double)(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, n). */
    uint64_t
    below(uint64_t n)
    {
        return next() % n;
    }

    // UniformRandomBitGenerator interface for <algorithm> shuffles.
    using result_type = uint64_t;
    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~uint64_t{0}; }
    uint64_t operator()() { return next(); }

  private:
    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t s_[4];
};

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_RNG_H
