/**
 * @file
 * Monte-Carlo sampling of detector error models.
 *
 * Each mechanism fires independently with its probability; firing XORs its
 * detector and observable signature into the shot. Sampling iterates
 * mechanisms and uses geometric skipping across shots, so the cost is
 * proportional to the number of *events*, not mechanisms x shots.
 */
#ifndef PROPHUNT_SIM_SAMPLER_H
#define PROPHUNT_SIM_SAMPLER_H

#include <cstdint>
#include <vector>

#include "sim/dem.h"

namespace prophunt::sim {

/** Bit-packed detector and observable outcomes for a batch of shots. */
struct SampleBatch
{
    std::size_t shots = 0;
    std::size_t detWords = 0;
    std::size_t obsWords = 0;
    /** det[shot * detWords + w]: detector bits of one shot. */
    std::vector<uint64_t> det;
    std::vector<uint64_t> obs;

    bool
    detBit(std::size_t shot, std::size_t d) const
    {
        return (det[shot * detWords + (d >> 6)] >> (d & 63)) & 1;
    }

    bool
    obsBit(std::size_t shot, std::size_t o) const
    {
        return (obs[shot * obsWords + (o >> 6)] >> (o & 63)) & 1;
    }

    /** Indices of flipped detectors for one shot. */
    std::vector<uint32_t> flippedDetectors(std::size_t shot) const;

    /**
     * Indices of flipped detectors for one shot, into a reusable buffer.
     *
     * @p out is cleared first; capacity is retained across calls, so hot
     * loops avoid one heap allocation per shot.
     */
    void flippedDetectors(std::size_t shot, std::vector<uint32_t> &out) const;

    /** Observable flip mask (first 64 observables) for one shot. */
    uint64_t obsMask(std::size_t shot) const;
};

/** Sample @p shots shots from @p dem with the given seed. */
SampleBatch sampleDem(const Dem &dem, std::size_t shots, uint64_t seed);

/**
 * Sample @p shots shots into caller-owned row storage.
 *
 * @p det / @p obs point at the first word of the first row; rows are
 * @p det_words / @p obs_words wide and must be zeroed by the caller. Used by
 * the sharded sampler to write shards into disjoint ranges of one batch.
 */
void sampleDemInto(const Dem &dem, std::size_t shots, uint64_t seed,
                   std::size_t det_words, std::size_t obs_words,
                   uint64_t *det, uint64_t *obs);

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_SAMPLER_H
