#include "sim/tableau.h"

#include <stdexcept>

namespace prophunt::sim {

Tableau::Tableau(std::size_t n)
    : n_(n), x_(2 * n + 1, gf2::BitVec(n)), z_(2 * n + 1, gf2::BitVec(n)),
      r_(2 * n + 1, 0)
{
    for (std::size_t i = 0; i < n; ++i) {
        x_[i].set(i, true);          // destabilizer X_i
        z_[n + i].set(i, true);      // stabilizer Z_i
    }
}

int
Tableau::pauliPhaseExponent(bool x1, bool z1, bool x2, bool z2) const
{
    // Exponent of i in (x1,z1) * (x2,z2), from Aaronson-Gottesman.
    if (!x1 && !z1) {
        return 0;
    }
    if (x1 && z1) { // Y
        return (int)z2 - (int)x2;
    }
    if (x1) { // X
        return (int)z2 * (2 * (int)x2 - 1);
    }
    // Z
    return (int)x2 * (1 - 2 * (int)z2);
}

void
Tableau::rowsum(std::size_t h, std::size_t i)
{
    int phase = 2 * (int)r_[h] + 2 * (int)r_[i];
    for (std::size_t j = 0; j < n_; ++j) {
        phase += pauliPhaseExponent(x_[i].get(j), z_[i].get(j),
                                    x_[h].get(j), z_[h].get(j));
    }
    phase = ((phase % 4) + 4) % 4;
    // Stabilizer-row updates always land on 0 or 2 (commuting products);
    // destabilizer-row updates may be odd, but their phases are never
    // read, so any consistent clamp works.
    r_[h] = phase == 2 || phase == 3;
    x_[h] ^= x_[i];
    z_[h] ^= z_[i];
}

void
Tableau::applyH(std::size_t q)
{
    for (std::size_t i = 0; i < 2 * n_; ++i) {
        bool xb = x_[i].get(q), zb = z_[i].get(q);
        r_[i] ^= (uint8_t)(xb && zb);
        x_[i].set(q, zb);
        z_[i].set(q, xb);
    }
}

void
Tableau::applyCnot(std::size_t c, std::size_t t)
{
    for (std::size_t i = 0; i < 2 * n_; ++i) {
        bool xc = x_[i].get(c), zc = z_[i].get(c);
        bool xt = x_[i].get(t), zt = z_[i].get(t);
        r_[i] ^= (uint8_t)(xc && zt && (xt == zc));
        x_[i].set(t, xt ^ xc);
        z_[i].set(c, zc ^ zt);
    }
}

void
Tableau::applyX(std::size_t q)
{
    for (std::size_t i = 0; i < 2 * n_; ++i) {
        r_[i] ^= (uint8_t)z_[i].get(q);
    }
}

void
Tableau::applyZ(std::size_t q)
{
    for (std::size_t i = 0; i < 2 * n_; ++i) {
        r_[i] ^= (uint8_t)x_[i].get(q);
    }
}

void
Tableau::applyY(std::size_t q)
{
    for (std::size_t i = 0; i < 2 * n_; ++i) {
        r_[i] ^= (uint8_t)(x_[i].get(q) != z_[i].get(q));
    }
}

bool
Tableau::measureZ(std::size_t q, Rng &rng)
{
    std::size_t p = 2 * n_;
    for (std::size_t i = n_; i < 2 * n_; ++i) {
        if (x_[i].get(q)) {
            p = i;
            break;
        }
    }
    if (p < 2 * n_) {
        // Random outcome.
        for (std::size_t i = 0; i < 2 * n_; ++i) {
            if (i != p && x_[i].get(q)) {
                rowsum(i, p);
            }
        }
        x_[p - n_] = x_[p];
        z_[p - n_] = z_[p];
        r_[p - n_] = r_[p];
        x_[p].clear();
        z_[p].clear();
        z_[p].set(q, true);
        bool outcome = rng.next() & 1;
        r_[p] = outcome;
        return outcome;
    }
    // Deterministic outcome via the scratch row.
    std::size_t s = 2 * n_;
    x_[s].clear();
    z_[s].clear();
    r_[s] = 0;
    for (std::size_t i = 0; i < n_; ++i) {
        if (x_[i].get(q)) {
            rowsum(s, i + n_);
        }
    }
    return r_[s];
}

bool
Tableau::measureX(std::size_t q, Rng &rng)
{
    applyH(q);
    bool b = measureZ(q, rng);
    applyH(q);
    return b;
}

void
Tableau::resetZ(std::size_t q, Rng &rng)
{
    if (measureZ(q, rng)) {
        applyX(q);
    }
}

void
Tableau::resetX(std::size_t q, Rng &rng)
{
    resetZ(q, rng);
    applyH(q);
}

namespace {

void
applyPauli(Tableau &t, Pauli p, std::size_t q)
{
    switch (p) {
    case Pauli::I:
        break;
    case Pauli::X:
        t.applyX(q);
        break;
    case Pauli::Y:
        t.applyY(q);
        break;
    case Pauli::Z:
        t.applyZ(q);
        break;
    }
}

} // namespace

std::vector<uint8_t>
runTableau(const circuit::SmCircuit &circuit, Rng &rng,
           const FaultLoc *inject)
{
    Tableau tab(circuit.numQubits);
    std::vector<uint8_t> meas;
    meas.reserve(circuit.numMeasurements);
    for (std::size_t i = 0; i < circuit.instructions.size(); ++i) {
        const auto &ins = circuit.instructions[i];
        bool fault_here = inject && inject->instr == i;
        bool before = ins.op == circuit::OpType::MeasureZ ||
                      ins.op == circuit::OpType::MeasureX;
        if (fault_here && before) {
            applyPauli(tab, inject->p0, ins.qubits[0]);
        }
        switch (ins.op) {
        case circuit::OpType::ResetZ:
            tab.resetZ(ins.qubits[0], rng);
            break;
        case circuit::OpType::ResetX:
            tab.resetX(ins.qubits[0], rng);
            break;
        case circuit::OpType::Cnot:
            tab.applyCnot(ins.qubits[0], ins.qubits[1]);
            break;
        case circuit::OpType::MeasureZ:
            meas.push_back(tab.measureZ(ins.qubits[0], rng));
            break;
        case circuit::OpType::MeasureX:
            meas.push_back(tab.measureX(ins.qubits[0], rng));
            break;
        case circuit::OpType::Tick:
            break;
        }
        if (fault_here && !before) {
            applyPauli(tab, inject->p0, ins.qubits[0]);
            if (ins.qubits.size() > 1) {
                applyPauli(tab, inject->p1, ins.qubits[1]);
            }
        }
    }
    return meas;
}

std::vector<uint8_t>
detectorValues(const circuit::SmCircuit &circuit,
               const std::vector<uint8_t> &meas)
{
    std::vector<uint8_t> out;
    out.reserve(circuit.detectors.size());
    for (const auto &det : circuit.detectors) {
        uint8_t v = 0;
        for (std::size_t m : det) {
            v ^= meas[m];
        }
        out.push_back(v);
    }
    return out;
}

std::vector<uint8_t>
observableValues(const circuit::SmCircuit &circuit,
                 const std::vector<uint8_t> &meas)
{
    std::vector<uint8_t> out;
    out.reserve(circuit.observables.size());
    for (const auto &obs : circuit.observables) {
        uint8_t v = 0;
        for (std::size_t m : obs) {
            v ^= meas[m];
        }
        out.push_back(v);
    }
    return out;
}

} // namespace prophunt::sim
