/**
 * @file
 * Circuit-level depolarizing noise model (paper Section 6.1).
 *
 * Single-qubit operations (resets, and measurements — noise inserted just
 * before the measurement) suffer {X, Y, Z} each with probability p1/3;
 * CNOTs suffer each of the 15 non-identity two-qubit Paulis with
 * probability p2/15. Idle qubits in each CNOT layer optionally suffer
 * {X, Y, Z} each with pIdle/3 — the Pauli-twirling idle approximation used
 * by the Figure 15 sensitivity study.
 */
#ifndef PROPHUNT_SIM_NOISE_MODEL_H
#define PROPHUNT_SIM_NOISE_MODEL_H

namespace prophunt::sim {

/** Error probabilities for the circuit-level model. */
struct NoiseModel
{
    double p1 = 0.0;    ///< Depolarizing strength after 1q ops.
    double p2 = 0.0;    ///< Depolarizing strength after CNOTs.
    double pIdle = 0.0; ///< Per-CNOT-layer idle depolarizing strength.

    /** Uniform model: p1 = p2 = p, no idle noise. */
    static NoiseModel uniform(double p) { return {p, p, 0.0}; }

    /** Uniform gate noise plus idle noise of the given strength. */
    static NoiseModel withIdle(double p, double p_idle)
    {
        return {p, p, p_idle};
    }
};

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_NOISE_MODEL_H
