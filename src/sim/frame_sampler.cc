#include "sim/frame_sampler.h"

#include <algorithm>
#include <bit>

#include "sim/event_stream.h"
#include "sim/rng.h"

namespace prophunt::sim {

void
sampleDemFramesInto(const Dem &dem, std::size_t shots, uint64_t seed,
                    FrameBatch &out)
{
    out.shots = shots;
    out.shotWords = (shots + 63) / 64;
    out.numDetectors = dem.numDetectors;
    out.numObservables = dem.numObservables;
    out.det.assign(out.numDetectors * out.shotWords, 0);
    out.obs.assign(out.numObservables * out.shotWords, 0);

    Rng rng(seed);
    for (const ErrorMechanism &mech : dem.errors) {
        // Accumulate the mask of firing shots within one 64-shot window,
        // then XOR the window into the signature rows a word at a time.
        std::size_t word = 0;
        uint64_t mask = 0;
        auto flush = [&]() {
            if (mask == 0) {
                return;
            }
            for (uint32_t d : mech.detectors) {
                out.det[d * out.shotWords + word] ^= mask;
            }
            for (uint32_t o : mech.observables) {
                out.obs[o * out.shotWords + word] ^= mask;
            }
            mask = 0;
        };
        detail::forEachMechanismEvent(
            mech, shots, rng, "sampleDemFrames", [&](std::size_t shot) {
                std::size_t w = shot >> 6;
                if (w != word) {
                    flush();
                    word = w;
                }
                mask |= uint64_t{1} << (shot & 63);
            });
        flush();
    }
}

FrameBatch
sampleDemFrames(const Dem &dem, std::size_t shots, uint64_t seed)
{
    FrameBatch out;
    sampleDemFramesInto(dem, shots, seed, out);
    return out;
}

void
transpose64x64(uint64_t m[64])
{
    // Hacker's Delight recursive block swap (low-bit-first variant): at
    // step j, swap the upper-right and lower-left j x j sub-blocks of
    // every 2j x 2j tile.
    uint64_t mask = 0x00000000FFFFFFFFULL;
    for (std::size_t j = 32; j != 0; j >>= 1, mask ^= mask << j) {
        for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
            uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
            m[k] ^= t << j;
            m[k + j] ^= t;
        }
    }
}

namespace {

/**
 * Transpose one plane (detector or observable rows) of a frame batch into
 * row-major storage of @p row_words words per shot.
 */
void
transposePlane(const uint64_t *frames, std::size_t rows,
               std::size_t shot_words, std::size_t shots,
               std::size_t row_words, uint64_t *out)
{
    uint64_t block[64];
    for (std::size_t rb = 0; rb < row_words; ++rb) {
        for (std::size_t w = 0; w < shot_words; ++w) {
            for (std::size_t i = 0; i < 64; ++i) {
                std::size_t row = rb * 64 + i;
                block[i] = row < rows ? frames[row * shot_words + w] : 0;
            }
            transpose64x64(block);
            std::size_t limit = std::min<std::size_t>(64, shots - w * 64);
            for (std::size_t j = 0; j < limit; ++j) {
                out[(w * 64 + j) * row_words + rb] = block[j];
            }
        }
    }
}

} // namespace

void
transposeFrames(const FrameBatch &frames, std::size_t det_words,
                std::size_t obs_words, uint64_t *det_rows,
                uint64_t *obs_rows)
{
    transposePlane(frames.det.data(), frames.numDetectors, frames.shotWords,
                   frames.shots, det_words, det_rows);
    transposePlane(frames.obs.data(), frames.numObservables,
                   frames.shotWords, frames.shots, obs_words, obs_rows);
}

void
transposeFrames(const FrameBatch &frames, SampleBatch &out)
{
    transposeView(frames.view(), out);
}

void
transposeView(const FrameView &view, SampleBatch &out)
{
    out.shots = view.shots;
    out.detWords = (view.numDetectors + 63) / 64;
    out.obsWords = (std::max<std::size_t>(view.numObservables, 1) + 63) / 64;
    out.det.resize(view.shots * out.detWords);
    out.obs.resize(view.shots * out.obsWords);
    transposePlane(view.det, view.numDetectors, view.shotWords, view.shots,
                   out.detWords, out.det.data());
    if (view.obs != nullptr) {
        transposePlane(view.obs, view.numObservables, view.shotWords,
                       view.shots, out.obsWords, out.obs.data());
    } else {
        std::fill(out.obs.begin(), out.obs.end(), 0);
    }
}

FrameView
FrameBatch::view() const
{
    FrameView v;
    v.det = det.data();
    v.obs = obs.empty() ? nullptr : obs.data();
    v.shots = shots;
    v.shotWords = shotWords;
    v.numDetectors = numDetectors;
    v.numObservables = numObservables;
    return v;
}

void
FrameBatch::obsMasks(std::vector<uint64_t> &out) const
{
    out.assign(shots, 0);
    std::size_t rows = std::min<std::size_t>(numObservables, 64);
    for (std::size_t o = 0; o < rows; ++o) {
        const uint64_t *row = obs.data() + o * shotWords;
        uint64_t bit = uint64_t{1} << o;
        for (std::size_t w = 0; w < shotWords; ++w) {
            uint64_t word = row[w];
            while (word != 0) {
                std::size_t shot = w * 64 + (std::size_t)std::countr_zero(word);
                out[shot] |= bit;
                word &= word - 1;
            }
        }
    }
}

} // namespace prophunt::sim
