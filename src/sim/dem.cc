#include "sim/dem.h"

namespace prophunt::sim {

gf2::Matrix
Dem::checkMatrix() const
{
    gf2::Matrix h(numDetectors, errors.size());
    for (std::size_t e = 0; e < errors.size(); ++e) {
        for (uint32_t d : errors[e].detectors) {
            h.set(d, e, true);
        }
    }
    return h;
}

gf2::Matrix
Dem::logicalMatrix() const
{
    gf2::Matrix l(numObservables, errors.size());
    for (std::size_t e = 0; e < errors.size(); ++e) {
        for (uint32_t o : errors[e].observables) {
            l.set(o, e, true);
        }
    }
    return l;
}

std::vector<std::vector<uint32_t>>
Dem::detectorToErrors() const
{
    std::vector<std::vector<uint32_t>> adj(numDetectors);
    for (std::size_t e = 0; e < errors.size(); ++e) {
        for (uint32_t d : errors[e].detectors) {
            adj[d].push_back((uint32_t)e);
        }
    }
    return adj;
}

} // namespace prophunt::sim
