#include "sim/sampler.h"

#include <algorithm>
#include <bit>

#include "sim/event_stream.h"
#include "sim/rng.h"

namespace prophunt::sim {

std::vector<uint32_t>
SampleBatch::flippedDetectors(std::size_t shot) const
{
    std::vector<uint32_t> out;
    flippedDetectors(shot, out);
    return out;
}

void
SampleBatch::flippedDetectors(std::size_t shot,
                              std::vector<uint32_t> &out) const
{
    out.clear();
    const uint64_t *row = det.data() + shot * detWords;
    for (std::size_t w = 0; w < detWords; ++w) {
        uint64_t bits = row[w];
        while (bits) {
            out.push_back((uint32_t)((w << 6) + std::countr_zero(bits)));
            bits &= bits - 1;
        }
    }
}

uint64_t
SampleBatch::obsMask(std::size_t shot) const
{
    return obsWords == 0 ? 0 : obs[shot * obsWords];
}

void
sampleDemInto(const Dem &dem, std::size_t shots, uint64_t seed,
              std::size_t det_words, std::size_t obs_words, uint64_t *det,
              uint64_t *obs)
{
    Rng rng(seed);
    for (const ErrorMechanism &mech : dem.errors) {
        detail::forEachMechanismEvent(
            mech, shots, rng, "sampleDem", [&](std::size_t shot) {
                uint64_t *drow = det + shot * det_words;
                for (uint32_t d : mech.detectors) {
                    drow[d >> 6] ^= uint64_t{1} << (d & 63);
                }
                uint64_t *orow = obs + shot * obs_words;
                for (uint32_t o : mech.observables) {
                    orow[o >> 6] ^= uint64_t{1} << (o & 63);
                }
            });
    }
}

SampleBatch
sampleDem(const Dem &dem, std::size_t shots, uint64_t seed)
{
    SampleBatch batch;
    batch.shots = shots;
    batch.detWords = (dem.numDetectors + 63) / 64;
    batch.obsWords = (std::max<std::size_t>(dem.numObservables, 1) + 63) / 64;
    batch.det.assign(shots * batch.detWords, 0);
    batch.obs.assign(shots * batch.obsWords, 0);
    sampleDemInto(dem, shots, seed, batch.detWords, batch.obsWords,
                  batch.det.data(), batch.obs.data());
    return batch;
}

} // namespace prophunt::sim
