/**
 * @file
 * Sharded, multi-threaded Monte-Carlo sampling.
 *
 * Shots are split into fixed-size shards; shard i is sampled with its own
 * RNG stream seeded by the i-th output of a SplitMix64 generator seeded
 * with the master seed. The result is therefore defined as the
 * concatenation of independent per-shard serial runs, which makes it
 * bit-identical for every thread count (including 1) at a fixed master
 * seed. Threads claim shards from an atomic counter and write into
 * disjoint row ranges of one shared batch.
 */
#ifndef PROPHUNT_SIM_PARALLEL_SAMPLER_H
#define PROPHUNT_SIM_PARALLEL_SAMPLER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "sim/frame_sampler.h"
#include "sim/sampler.h"

namespace prophunt::sim {

/** Default shots per shard: large enough to amortize thread handoff,
 * small enough that early stopping has useful granularity. */
inline constexpr std::size_t kDefaultShardShots = 4096;

/** One step of the SplitMix64 sequence (state is advanced in place). */
uint64_t splitMix64(uint64_t &state);

/** Seed of shard @p shard: the shard-th output of SplitMix64(masterSeed). */
uint64_t shardSeed(uint64_t master_seed, std::size_t shard);

/** Resolve a thread-count knob: 0 means hardware concurrency. */
std::size_t resolveThreads(std::size_t threads);

/** Fixed-size sharding of a shot budget. */
struct ShardPlan
{
    std::size_t shots = 0;
    std::size_t shardShots = kDefaultShardShots;

    std::size_t
    numShards() const
    {
        return shardShots == 0 ? 0 : (shots + shardShots - 1) / shardShots;
    }

    std::size_t
    offsetOf(std::size_t shard) const
    {
        return shard * shardShots;
    }

    /** Shots in shard @p shard (the last shard may be short). */
    std::size_t
    shotsOf(std::size_t shard) const
    {
        std::size_t off = offsetOf(shard);
        return off >= shots ? 0 : std::min(shardShots, shots - off);
    }
};

/** Workers forEachShard will use: min(resolveThreads(threads), shards). */
std::size_t shardWorkers(const ShardPlan &plan, std::size_t threads);

/**
 * Throw std::invalid_argument if any mechanism has p >= 1.
 *
 * Callers that sample on pool threads must validate before spawning: a
 * throw inside a worker would terminate the process.
 */
void validateDemProbabilities(const Dem &dem, const char *where);

/**
 * Run @p fn(i) for i in [0, n) across @p threads workers.
 *
 * The shared work-stealing loop used by both the sampling shards and the
 * PropHunt optimizer's candidate verification: indices are claimed from an
 * atomic counter, @p threads = 0 means hardware concurrency, and @p fn must
 * not throw from pool threads.
 */
void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)> &fn);

/**
 * Run @p fn(shard, worker) for every shard of @p plan.
 *
 * Shards are claimed from an atomic counter, so claim order is ascending;
 * worker is in [0, shardWorkers(plan, threads)) and lets callers keep
 * per-worker state (e.g. a cloned decoder). If @p stop is non-null it is
 * checked before each claim; shards already claimed still complete, which
 * keeps the completed set a contiguous prefix. @p fn must not throw from
 * pool threads — validate inputs before calling.
 */
void forEachShard(const ShardPlan &plan, std::size_t threads,
                  const std::function<void(std::size_t, std::size_t)> &fn,
                  const std::atomic<bool> *stop = nullptr);

/**
 * Sample every shard of @p plan word-packed and hand each to @p fn.
 *
 * The one sampling driver behind both the row-batch API
 * (sampleDemSharded transposes each shard into its row range) and the
 * packed decode pipeline (measureDemLer hands the frames straight to
 * Decoder::decodePacked). @p fn(shard, worker, frames) receives the
 * shard's outcomes in per-worker scratch that is reused across shards;
 * shard semantics (seeding, claim order, @p stop) are those of
 * forEachShard. Validates the DEM before spawning workers.
 */
void forEachFrameShard(
    const Dem &dem, const ShardPlan &plan, uint64_t seed,
    std::size_t threads,
    const std::function<void(std::size_t, std::size_t, const FrameBatch &)>
        &fn,
    const std::atomic<bool> *stop = nullptr);

/**
 * Sample @p shots shots from @p dem across @p threads workers.
 *
 * Bit-identical for every thread count at a fixed master seed; equals the
 * concatenation of sampleDem(plan.shotsOf(i), shardSeed(seed, i)) runs.
 */
SampleBatch sampleDemSharded(const Dem &dem, std::size_t shots, uint64_t seed,
                             std::size_t threads,
                             std::size_t shard_shots = kDefaultShardShots);

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_PARALLEL_SAMPLER_H
