/**
 * @file
 * Sharded, multi-threaded Monte-Carlo sampling.
 *
 * Shots are split into fixed-size shards; shard i is sampled with its own
 * RNG stream seeded by the i-th output of a SplitMix64 generator seeded
 * with the master seed. The result is therefore defined as the
 * concatenation of independent per-shard serial runs, which makes it
 * bit-identical for every thread count (including 1) at a fixed master
 * seed. Shards are claimed in ascending order from a persistent WorkerPool
 * and written into disjoint row ranges of one shared batch.
 */
#ifndef PROPHUNT_SIM_PARALLEL_SAMPLER_H
#define PROPHUNT_SIM_PARALLEL_SAMPLER_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/frame_sampler.h"
#include "sim/sampler.h"

namespace prophunt::sim {

/** Default shots per shard: large enough to amortize thread handoff,
 * small enough that early stopping has useful granularity. */
inline constexpr std::size_t kDefaultShardShots = 4096;

/** One step of the SplitMix64 sequence (state is advanced in place). */
uint64_t splitMix64(uint64_t &state);

/** Seed of shard @p shard: the shard-th output of SplitMix64(masterSeed). */
uint64_t shardSeed(uint64_t master_seed, std::size_t shard);

/** Resolve a thread-count knob: 0 means hardware concurrency. */
std::size_t resolveThreads(std::size_t threads);

/** Fixed-size sharding of a shot budget. */
struct ShardPlan
{
    std::size_t shots = 0;
    std::size_t shardShots = kDefaultShardShots;

    std::size_t
    numShards() const
    {
        return shardShots == 0 ? 0 : (shots + shardShots - 1) / shardShots;
    }

    std::size_t
    offsetOf(std::size_t shard) const
    {
        return shard * shardShots;
    }

    /** Shots in shard @p shard (the last shard may be short). */
    std::size_t
    shotsOf(std::size_t shard) const
    {
        std::size_t off = offsetOf(shard);
        return off >= shots ? 0 : std::min(shardShots, shots - off);
    }
};

/** Workers forEachShard will use: min(resolveThreads(threads), shards). */
std::size_t shardWorkers(const ShardPlan &plan, std::size_t threads);

/**
 * Persistent pool of worker threads draining index runs.
 *
 * A run is a half-open index range [0, n) executed by at most @p maxSlots
 * concurrent participants. The calling thread always participates (so a
 * pool with zero threads degrades to a serial loop, and nested runs issued
 * from inside a pool worker always make progress: every run's caller can
 * drain it alone). Idle pool workers pick the oldest queued run with both
 * work and a free participant slot — when several runs are queued this is
 * what work stealing looks like from the outside: a thread that finished
 * one run's indices moves straight onto another run's queue.
 *
 * Each participant is handed a dense slot id in [0, maxSlots); slot 0 is
 * always the caller. Indices are claimed from a cursor under the pool
 * mutex, so the claim order is ascending and the completed set is a
 * contiguous prefix when a run is stopped early. Exceptions thrown by the
 * work function stop the run and are rethrown on the calling thread.
 */
class WorkerPool
{
  public:
    /** Spawn @p threads pool workers (callers additionally help). */
    explicit WorkerPool(std::size_t threads);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Worker threads owned by the pool (the caller of run() is extra). */
    std::size_t
    threadCount() const
    {
        return threads_.size();
    }

    /**
     * Process-wide pool sized hardware_concurrency() - 1, so one caller
     * plus the pool saturates the machine. Created on first use.
     */
    static WorkerPool &shared();

    /**
     * Run @p fn(i, slot) for i in [0, n) on up to @p maxSlots participants
     * (the caller included). Returns when every claimed index finished.
     * If @p stop is non-null it is checked before each claim; indices
     * already claimed still complete.
     */
    void run(std::size_t n, std::size_t maxSlots,
             const std::function<void(std::size_t, std::size_t)> &fn,
             const std::atomic<bool> *stop = nullptr);

  private:
    struct RunState;

    void workerLoop();
    void drainLocked(RunState &run, std::size_t slot,
                     std::unique_lock<std::mutex> &lock);

    std::mutex mutex_;
    std::condition_variable workCv_;
    std::vector<RunState *> queue_;
    std::vector<std::thread> threads_;
    bool shutdown_ = false;
};

/**
 * Throw std::invalid_argument if any mechanism has p >= 1.
 *
 * Callers that sample on pool threads must validate before spawning: a
 * throw inside a worker would terminate the process.
 */
void validateDemProbabilities(const Dem &dem, const char *where);

/**
 * Run @p fn(i) for i in [0, n) across @p threads workers.
 *
 * The shared work-distribution loop used by both the sampling shards and
 * the PropHunt optimizer's candidate verification: indices are claimed in
 * ascending order from WorkerPool::shared(), and @p threads = 0 means
 * hardware concurrency.
 */
void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)> &fn);

/**
 * Run @p fn(shard, worker) for every shard of @p plan.
 *
 * Shards are claimed in ascending order from WorkerPool::shared(); worker
 * is in [0, shardWorkers(plan, threads)) and lets callers keep per-worker
 * state (e.g. a cloned decoder). If @p stop is non-null it is checked
 * before each claim; shards already claimed still complete, which keeps
 * the completed set a contiguous prefix.
 */
void forEachShard(const ShardPlan &plan, std::size_t threads,
                  const std::function<void(std::size_t, std::size_t)> &fn,
                  const std::atomic<bool> *stop = nullptr);

/**
 * Sample every shard of @p plan word-packed and hand each to @p fn.
 *
 * The one sampling driver behind both the row-batch API
 * (sampleDemSharded transposes each shard into its row range) and the
 * packed decode pipeline (measureDemLer hands the frames straight to
 * Decoder::decodePacked). @p fn(shard, worker, frames) receives the
 * shard's outcomes in per-worker scratch that is reused across shards;
 * shard semantics (seeding, claim order, @p stop) are those of
 * forEachShard. Validates the DEM before spawning workers.
 */
void forEachFrameShard(
    const Dem &dem, const ShardPlan &plan, uint64_t seed,
    std::size_t threads,
    const std::function<void(std::size_t, std::size_t, const FrameBatch &)>
        &fn,
    const std::atomic<bool> *stop = nullptr);

/**
 * Sample @p shots shots from @p dem across @p threads workers.
 *
 * Bit-identical for every thread count at a fixed master seed; equals the
 * concatenation of sampleDem(plan.shotsOf(i), shardSeed(seed, i)) runs.
 */
SampleBatch sampleDemSharded(const Dem &dem, std::size_t shots, uint64_t seed,
                             std::size_t threads,
                             std::size_t shard_shots = kDefaultShardShots);

} // namespace prophunt::sim

#endif // PROPHUNT_SIM_PARALLEL_SAMPLER_H
