#include "gf2/matrix.h"

#include <cassert>
#include <stdexcept>

namespace prophunt::gf2 {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : cols_(cols), rows_(rows, BitVec(cols))
{
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m.set(i, i, true);
    }
    return m;
}

Matrix
Matrix::fromRows(const std::vector<std::vector<int>> &rows)
{
    Matrix m;
    for (const auto &r : rows) {
        m.appendRow(BitVec::fromBits(r));
    }
    return m;
}

void
Matrix::appendRow(const BitVec &r)
{
    if (rows_.empty() && cols_ == 0) {
        cols_ = r.size();
    }
    if (r.size() != cols_) {
        throw std::invalid_argument("Matrix::appendRow size mismatch");
    }
    rows_.push_back(r);
}

BitVec
Matrix::column(std::size_t c) const
{
    BitVec v(rows());
    for (std::size_t r = 0; r < rows(); ++r) {
        if (rows_[r].get(c)) {
            v.set(r, true);
        }
    }
    return v;
}

Matrix
Matrix::transpose() const
{
    Matrix t(cols_, rows());
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t c : rows_[r].support()) {
            t.set(c, r, true);
        }
    }
    return t;
}

BitVec
Matrix::mulVec(const BitVec &v) const
{
    if (v.size() != cols_) {
        throw std::invalid_argument("Matrix::mulVec size mismatch");
    }
    BitVec out(rows());
    for (std::size_t r = 0; r < rows(); ++r) {
        if (rows_[r].dot(v)) {
            out.set(r, true);
        }
    }
    return out;
}

Matrix
Matrix::mul(const Matrix &other) const
{
    if (other.rows() != cols_) {
        throw std::invalid_argument("Matrix::mul shape mismatch");
    }
    Matrix out(rows(), other.cols());
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t k : rows_[r].support()) {
            out.rows_[r] ^= other.rows_[k];
        }
    }
    return out;
}

RowEchelon
Matrix::rowEchelon() const
{
    RowEchelon re;
    re.rows = rows_;
    std::size_t pivot_row = 0;
    for (std::size_t c = 0; c < cols_ && pivot_row < re.rows.size(); ++c) {
        // Find a row at or below pivot_row with a 1 in column c.
        std::size_t sel = re.rows.size();
        for (std::size_t r = pivot_row; r < re.rows.size(); ++r) {
            if (re.rows[r].get(c)) {
                sel = r;
                break;
            }
        }
        if (sel == re.rows.size()) {
            continue;
        }
        std::swap(re.rows[pivot_row], re.rows[sel]);
        for (std::size_t r = 0; r < re.rows.size(); ++r) {
            if (r != pivot_row && re.rows[r].get(c)) {
                re.rows[r] ^= re.rows[pivot_row];
            }
        }
        re.pivotCol.push_back(c);
        ++pivot_row;
    }
    re.rank = pivot_row;
    re.rows.resize(re.rank, BitVec(cols_));
    return re;
}

std::size_t
Matrix::rank() const
{
    return rowEchelon().rank;
}

bool
Matrix::rowSpaceContains(const BitVec &v) const
{
    if (v.size() != cols_) {
        throw std::invalid_argument("rowSpaceContains size mismatch");
    }
    RowEchelon re = rowEchelon();
    BitVec residual = v;
    for (std::size_t r = 0; r < re.rank; ++r) {
        if (residual.get(re.pivotCol[r])) {
            residual ^= re.rows[r];
        }
    }
    return residual.isZero();
}

std::vector<BitVec>
Matrix::kernelBasis() const
{
    RowEchelon re = rowEchelon();
    std::vector<bool> is_pivot(cols_, false);
    for (std::size_t c : re.pivotCol) {
        is_pivot[c] = true;
    }
    std::vector<BitVec> basis;
    for (std::size_t free_c = 0; free_c < cols_; ++free_c) {
        if (is_pivot[free_c]) {
            continue;
        }
        BitVec x(cols_);
        x.set(free_c, true);
        // Back-substitute: pivot variable r takes the value of the free
        // column entry in its reduced row.
        for (std::size_t r = 0; r < re.rank; ++r) {
            if (re.rows[r].get(free_c)) {
                x.set(re.pivotCol[r], true);
            }
        }
        basis.push_back(std::move(x));
    }
    return basis;
}

std::optional<BitVec>
Matrix::solve(const BitVec &b) const
{
    if (b.size() != rows()) {
        throw std::invalid_argument("Matrix::solve size mismatch");
    }
    // Eliminate on the augmented matrix [A | b].
    std::vector<BitVec> work = rows_;
    BitVec rhs = b;
    std::vector<std::size_t> pivot_col;
    std::size_t pivot_row = 0;
    for (std::size_t c = 0; c < cols_ && pivot_row < work.size(); ++c) {
        std::size_t sel = work.size();
        for (std::size_t r = pivot_row; r < work.size(); ++r) {
            if (work[r].get(c)) {
                sel = r;
                break;
            }
        }
        if (sel == work.size()) {
            continue;
        }
        std::swap(work[pivot_row], work[sel]);
        bool tmp = rhs.get(pivot_row);
        rhs.set(pivot_row, rhs.get(sel));
        rhs.set(sel, tmp);
        for (std::size_t r = 0; r < work.size(); ++r) {
            if (r != pivot_row && work[r].get(c)) {
                work[r] ^= work[pivot_row];
                rhs.set(r, rhs.get(r) ^ rhs.get(pivot_row));
            }
        }
        pivot_col.push_back(c);
        ++pivot_row;
    }
    // Inconsistent if a zero row has rhs 1.
    for (std::size_t r = pivot_row; r < work.size(); ++r) {
        if (rhs.get(r)) {
            return std::nullopt;
        }
    }
    BitVec x(cols_);
    for (std::size_t r = 0; r < pivot_row; ++r) {
        if (rhs.get(r)) {
            x.set(pivot_col[r], true);
        }
    }
    return x;
}

Matrix
Matrix::selectRows(const std::vector<std::size_t> &idx) const
{
    Matrix m(idx.size(), cols_);
    for (std::size_t i = 0; i < idx.size(); ++i) {
        m.rows_[i] = rows_[idx[i]];
    }
    return m;
}

Matrix
Matrix::selectCols(const std::vector<std::size_t> &idx) const
{
    Matrix m(rows(), idx.size());
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t i = 0; i < idx.size(); ++i) {
            if (rows_[r].get(idx[i])) {
                m.set(r, i, true);
            }
        }
    }
    return m;
}

Matrix
Matrix::vstack(const Matrix &bottom) const
{
    if (bottom.rows() > 0 && rows() > 0 && bottom.cols() != cols_) {
        throw std::invalid_argument("vstack column mismatch");
    }
    Matrix m = *this;
    if (m.rows() == 0) {
        m.cols_ = bottom.cols_;
    }
    for (std::size_t r = 0; r < bottom.rows(); ++r) {
        m.rows_.push_back(bottom.rows_[r]);
    }
    return m;
}

Matrix
Matrix::hstack(const Matrix &right) const
{
    if (right.rows() != rows()) {
        throw std::invalid_argument("hstack row mismatch");
    }
    Matrix m(rows(), cols_ + right.cols());
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t c : rows_[r].support()) {
            m.set(r, c, true);
        }
        for (std::size_t c : right.rows_[r].support()) {
            m.set(r, cols_ + c, true);
        }
    }
    return m;
}

std::string
Matrix::toString() const
{
    std::string s;
    for (std::size_t r = 0; r < rows(); ++r) {
        s += rows_[r].toString();
        s.push_back('\n');
    }
    return s;
}

} // namespace prophunt::gf2
