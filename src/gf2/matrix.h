/**
 * @file
 * Dense matrix over GF(2) with row-major bit-packed storage.
 *
 * All the linear-algebra questions the paper asks — "is L' in the row space
 * of H'?", "what is the kernel of H_Z?", "what is rank(H)?" — reduce to
 * Gaussian elimination over GF(2), implemented here on packed words.
 */
#ifndef PROPHUNT_GF2_MATRIX_H
#define PROPHUNT_GF2_MATRIX_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "gf2/bitvec.h"

namespace prophunt::gf2 {

/** Result of row reduction: the reduced matrix plus pivot bookkeeping. */
struct RowEchelon
{
    /** Reduced row-echelon form of the input. */
    std::vector<BitVec> rows;
    /** pivotCol[r] = pivot column of reduced row r (rows beyond rank absent). */
    std::vector<std::size_t> pivotCol;
    /** Rank of the input matrix. */
    std::size_t rank = 0;
};

/**
 * A rows() x cols() matrix over GF(2).
 *
 * Rows are BitVec values; column operations are done through transposition
 * or per-bit access. The class is a plain value type: cheap to copy for the
 * small matrices PropHunt's subgraph analysis uses, and move-friendly for
 * the large circuit-level check matrices.
 */
class Matrix
{
  public:
    Matrix() = default;

    /** All-zero matrix of the given shape. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /** Build from 0/1 integer rows (handy in tests and code tables). */
    static Matrix fromRows(const std::vector<std::vector<int>> &rows);

    std::size_t rows() const { return rows_.size(); }
    std::size_t cols() const { return cols_; }

    bool get(std::size_t r, std::size_t c) const { return rows_[r].get(c); }
    void set(std::size_t r, std::size_t c, bool v) { rows_[r].set(c, v); }

    const BitVec &row(std::size_t r) const { return rows_[r]; }
    BitVec &row(std::size_t r) { return rows_[r]; }

    /** Append a row (must match cols(), unless the matrix is empty). */
    void appendRow(const BitVec &r);

    /** Extract column @p c as a BitVec of length rows(). */
    BitVec column(std::size_t c) const;

    Matrix transpose() const;

    /** Matrix-vector product over GF(2): returns A * v (length rows()). */
    BitVec mulVec(const BitVec &v) const;

    /** Matrix product over GF(2). */
    Matrix mul(const Matrix &other) const;

    bool operator==(const Matrix &other) const = default;

    /** Rank via Gaussian elimination (input is untouched). */
    std::size_t rank() const;

    /** Full reduced row-echelon decomposition. */
    RowEchelon rowEchelon() const;

    /**
     * True iff @p v lies in the row space of this matrix.
     *
     * This is the paper's ambiguity primitive: a subgraph has an ambiguous
     * error iff some logical row is NOT in the row space of H'.
     */
    bool rowSpaceContains(const BitVec &v) const;

    /** Basis of the (right) kernel: all x with A x = 0. */
    std::vector<BitVec> kernelBasis() const;

    /** One solution x of A x = b, or nullopt if inconsistent. */
    std::optional<BitVec> solve(const BitVec &b) const;

    /** Submatrix with the given rows (in order). */
    Matrix selectRows(const std::vector<std::size_t> &idx) const;

    /** Submatrix with the given columns (in order). */
    Matrix selectCols(const std::vector<std::size_t> &idx) const;

    /** Stack @p bottom below this matrix (column counts must match). */
    Matrix vstack(const Matrix &bottom) const;

    /** Concatenate @p right to the right of this matrix (row counts match). */
    Matrix hstack(const Matrix &right) const;

    std::string toString() const;

  private:
    std::size_t cols_ = 0;
    std::vector<BitVec> rows_;
};

} // namespace prophunt::gf2

#endif // PROPHUNT_GF2_MATRIX_H
