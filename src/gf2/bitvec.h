/**
 * @file
 * Dense bit vector over GF(2), packed 64 bits per word.
 *
 * BitVec is the workhorse value type of the whole library: error patterns,
 * syndromes, stabilizer rows and logical-observable rows are all GF(2)
 * vectors. Arithmetic is mod-2 (XOR).
 */
#ifndef PROPHUNT_GF2_BITVEC_H
#define PROPHUNT_GF2_BITVEC_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace prophunt::gf2 {

/**
 * A fixed-length vector over GF(2).
 *
 * Bits beyond size() in the last word are kept zero (class invariant), so
 * whole-word operations (XOR, popcount, comparison) need no masking.
 */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct an all-zero vector of @p n bits. */
    explicit BitVec(std::size_t n) : n_(n), w_((n + 63) / 64, 0) {}

    /** Construct from a list of 0/1 values. */
    static BitVec fromBits(const std::vector<int> &bits);

    /** Construct with the given support (indices set to 1). */
    static BitVec fromSupport(std::size_t n, const std::vector<std::size_t> &support);

    std::size_t size() const { return n_; }
    std::size_t words() const { return w_.size(); }

    bool get(std::size_t i) const { return (w_[i >> 6] >> (i & 63)) & 1; }

    void
    set(std::size_t i, bool v)
    {
        uint64_t mask = uint64_t{1} << (i & 63);
        if (v) {
            w_[i >> 6] |= mask;
        } else {
            w_[i >> 6] &= ~mask;
        }
    }

    void flip(std::size_t i) { w_[i >> 6] ^= uint64_t{1} << (i & 63); }

    /** XOR-accumulate @p other into this vector. Sizes must match. */
    BitVec &operator^=(const BitVec &other);

    BitVec operator^(const BitVec &other) const;

    bool operator==(const BitVec &other) const = default;

    /** Number of set bits (the Hamming weight of the vector). */
    std::size_t popcount() const;

    /** True if every bit is zero. */
    bool isZero() const;

    /** Index of the first set bit, or size() if none. */
    std::size_t firstSet() const;

    /** GF(2) inner product: parity of the AND of the two vectors. */
    bool dot(const BitVec &other) const;

    /** Indices of all set bits, ascending. */
    std::vector<std::size_t> support() const;

    /** Zero every bit while keeping the length. */
    void clear();

    /** Grow or shrink to @p n bits; new bits are zero. */
    void resize(std::size_t n);

    /** Raw word access for bulk algorithms (row reduction, sampling). */
    uint64_t word(std::size_t i) const { return w_[i]; }
    uint64_t &word(std::size_t i) { return w_[i]; }

    /** Render as a 0/1 string, index 0 first. */
    std::string toString() const;

  private:
    /** Clear any bits at positions >= n_ in the last word. */
    void maskTail();

    std::size_t n_ = 0;
    std::vector<uint64_t> w_;
};

} // namespace prophunt::gf2

#endif // PROPHUNT_GF2_BITVEC_H
