#include "gf2/bitvec.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace prophunt::gf2 {

BitVec
BitVec::fromBits(const std::vector<int> &bits)
{
    BitVec v(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) {
            v.set(i, true);
        }
    }
    return v;
}

BitVec
BitVec::fromSupport(std::size_t n, const std::vector<std::size_t> &support)
{
    BitVec v(n);
    for (std::size_t i : support) {
        assert(i < n);
        v.set(i, true);
    }
    return v;
}

BitVec &
BitVec::operator^=(const BitVec &other)
{
    if (other.n_ != n_) {
        throw std::invalid_argument("BitVec size mismatch in xor");
    }
    for (std::size_t i = 0; i < w_.size(); ++i) {
        w_[i] ^= other.w_[i];
    }
    return *this;
}

BitVec
BitVec::operator^(const BitVec &other) const
{
    BitVec r = *this;
    r ^= other;
    return r;
}

std::size_t
BitVec::popcount() const
{
    std::size_t c = 0;
    for (uint64_t w : w_) {
        c += std::popcount(w);
    }
    return c;
}

bool
BitVec::isZero() const
{
    for (uint64_t w : w_) {
        if (w) {
            return false;
        }
    }
    return true;
}

std::size_t
BitVec::firstSet() const
{
    for (std::size_t i = 0; i < w_.size(); ++i) {
        if (w_[i]) {
            return (i << 6) + std::countr_zero(w_[i]);
        }
    }
    return n_;
}

bool
BitVec::dot(const BitVec &other) const
{
    if (other.n_ != n_) {
        throw std::invalid_argument("BitVec size mismatch in dot");
    }
    uint64_t acc = 0;
    for (std::size_t i = 0; i < w_.size(); ++i) {
        acc ^= w_[i] & other.w_[i];
    }
    return std::popcount(acc) & 1;
}

std::vector<std::size_t>
BitVec::support() const
{
    std::vector<std::size_t> s;
    for (std::size_t i = 0; i < w_.size(); ++i) {
        uint64_t w = w_[i];
        while (w) {
            s.push_back((i << 6) + std::countr_zero(w));
            w &= w - 1;
        }
    }
    return s;
}

void
BitVec::clear()
{
    for (uint64_t &w : w_) {
        w = 0;
    }
}

void
BitVec::resize(std::size_t n)
{
    n_ = n;
    w_.resize((n + 63) / 64, 0);
    maskTail();
}

void
BitVec::maskTail()
{
    if (n_ % 64 != 0 && !w_.empty()) {
        w_.back() &= (uint64_t{1} << (n_ % 64)) - 1;
    }
}

std::string
BitVec::toString() const
{
    std::string s;
    s.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        s.push_back(get(i) ? '1' : '0');
    }
    return s;
}

} // namespace prophunt::gf2
