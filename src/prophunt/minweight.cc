#include "prophunt/minweight.h"

#include <numeric>

#include "sat/xor_encoder.h"

namespace prophunt::core {

namespace {

/** Shared formulation over an arbitrary error subset. */
MinWeightResult
solveOnErrors(const sim::Dem &dem, const std::vector<uint32_t> &errors,
              const std::vector<uint32_t> &detectors, std::size_t max_cost,
              double timeout_seconds)
{
    MinWeightResult result;
    sat::MaxSatSolver maxsat;

    // One variable per error mechanism.
    std::vector<sat::Var> evar(errors.size());
    for (std::size_t i = 0; i < errors.size(); ++i) {
        evar[i] = maxsat.newVar();
    }

    // Syndrome parities: XOR of incident errors must be false.
    std::vector<int> det_local(dem.numDetectors, -1);
    for (std::size_t i = 0; i < detectors.size(); ++i) {
        det_local[detectors[i]] = (int)i;
    }
    std::vector<std::vector<sat::Lit>> det_inputs(detectors.size());
    std::vector<std::vector<sat::Lit>> obs_inputs(dem.numObservables);
    for (std::size_t i = 0; i < errors.size(); ++i) {
        const auto &mech = dem.errors[errors[i]];
        for (uint32_t d : mech.detectors) {
            if (det_local[d] >= 0) {
                det_inputs[det_local[d]].push_back(sat::mkLit(evar[i]));
            }
        }
        for (uint32_t o : mech.observables) {
            obs_inputs[o].push_back(sat::mkLit(evar[i]));
        }
    }

    // Route the Tseitin encodings through the MaxSAT hard-clause counter by
    // encoding into a scratch Solver is not possible; MaxSatSolver exposes
    // newVar/addHard, so the XOR trees are built manually here.
    auto xor_gate = [&](sat::Lit a, sat::Lit b) {
        sat::Lit c = sat::mkLit(maxsat.newVar());
        maxsat.addHard({sat::negate(a), sat::negate(b), sat::negate(c)});
        maxsat.addHard({a, b, sat::negate(c)});
        maxsat.addHard({a, sat::negate(b), c});
        maxsat.addHard({sat::negate(a), b, c});
        return c;
    };
    auto xor_tree = [&](std::vector<sat::Lit> inputs) {
        while (inputs.size() > 1) {
            std::vector<sat::Lit> next;
            for (std::size_t i = 0; i + 1 < inputs.size(); i += 2) {
                next.push_back(xor_gate(inputs[i], inputs[i + 1]));
            }
            if (inputs.size() % 2 == 1) {
                next.push_back(inputs.back());
            }
            inputs = std::move(next);
        }
        return inputs[0];
    };

    for (std::size_t d = 0; d < detectors.size(); ++d) {
        if (det_inputs[d].empty()) {
            continue;
        }
        sat::Lit out = xor_tree(det_inputs[d]);
        maxsat.addHard({sat::negate(out)}); // syndrome must stay unflipped
    }

    std::vector<sat::Lit> logical_outs;
    for (std::size_t o = 0; o < dem.numObservables; ++o) {
        if (obs_inputs[o].empty()) {
            continue;
        }
        logical_outs.push_back(xor_tree(obs_inputs[o]));
    }
    if (logical_outs.empty()) {
        return result; // no logical support: no logical error possible
    }
    maxsat.addHard(logical_outs); // at least one observable flips

    for (std::size_t i = 0; i < errors.size(); ++i) {
        maxsat.addSoft(sat::negate(sat::mkLit(evar[i]))); // prefer E_i false
    }

    sat::MaxSatResult r = maxsat.solve(max_cost, timeout_seconds);
    result.stats = r.stats;
    if (!r.satisfiable) {
        return result;
    }
    result.found = true;
    result.weight = r.optimum;
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (r.model[(std::size_t)evar[i]]) {
            result.errors.push_back(errors[i]);
        }
    }
    return result;
}

} // namespace

MinWeightResult
solveMinWeightLogical(const sim::Dem &dem, const Subgraph &subgraph,
                      std::size_t max_cost, double timeout_seconds)
{
    return solveOnErrors(dem, subgraph.errors, subgraph.detectors, max_cost,
                         timeout_seconds);
}

MinWeightResult
solveGlobalMinWeight(const sim::Dem &dem, std::size_t max_cost,
                     double timeout_seconds)
{
    std::vector<uint32_t> all_errors(dem.errors.size());
    std::iota(all_errors.begin(), all_errors.end(), 0);
    std::vector<uint32_t> all_dets(dem.numDetectors);
    std::iota(all_dets.begin(), all_dets.end(), 0);
    return solveOnErrors(dem, all_errors, all_dets, max_cost,
                         timeout_seconds);
}

} // namespace prophunt::core
