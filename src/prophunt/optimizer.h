/**
 * @file
 * The PropHunt iterative optimization loop (paper Section 5, Figure 8).
 *
 * Each iteration: (1) build the circuit-level decoding graph of the current
 * schedule; (2) sample random subgraphs in parallel until ambiguity is
 * found; (3) solve each ambiguous subgraph for a min-weight logical error
 * with MaxSAT; (4) enumerate reordering/rescheduling candidates; (5) prune
 * by validity and ambiguity removal; (6) apply, preferring the minimum
 * resulting circuit depth when multiple verified changes target the same
 * subgraph. Iterations run on both memory bases so X- and Z-side hook
 * errors are both optimized.
 */
#ifndef PROPHUNT_PROPHUNT_OPTIMIZER_H
#define PROPHUNT_PROPHUNT_OPTIMIZER_H

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "decoder/logical_error.h"
#include "prophunt/changes.h"
#include "prophunt/minweight.h"
#include "prophunt/pruning.h"
#include "prophunt/subgraph.h"
#include "search/stats.h"
#include "sim/noise_model.h"

namespace prophunt::search {
class TranspositionCache;
} // namespace prophunt::search

namespace prophunt::core {

/** Tuning knobs of the optimization loop. */
struct PropHuntOptions
{
    std::size_t iterations = 25;
    std::size_t samplesPerIteration = 500;
    /** Subgraph expansion budget (error nodes). */
    std::size_t maxSubgraphErrors = 48;
    /** Ambiguous subgraphs processed per iteration (per basis). */
    std::size_t maxAmbiguousPerIteration = 8;
    /** Gate error rate used for the circuit-level model. */
    double p = 1e-3;
    /** MaxSAT weight bound. */
    std::size_t maxCost = 12;
    double satTimeoutSeconds = 5.0;
    /**
     * Worker threads for subgraph sampling and candidate verification;
     * 0 defers to ler.threads (and hardware concurrency if that is also
     * 0), so one knob sizes the shared pool for the whole pipeline.
     */
    std::size_t threads = 0;
    /**
     * Monte-Carlo LER engine knobs shared with any logical-error-rate
     * scoring done on behalf of the optimizer (candidate sweeps, final
     * before/after measurement). Callers that score schedules should pass
     * this through measureMemoryLer so the optimizer and the LER engine
     * draw from one thread-pool configuration and early-stopping policy.
     */
    decoder::LerOptions ler;
    uint64_t seed = 1;
    /**
     * Ablation: verify that candidates actually remove the found
     * ambiguity (Section 5.4). Off = apply any commutation-valid,
     * schedulable candidate.
     */
    bool verifyAmbiguityRemoval = true;
    /**
     * Ablation: among verified changes for one subgraph, apply the one
     * with minimal circuit depth (Section 5.5). Off = first verified.
     */
    bool preferMinDepth = true;
    /**
     * Upper bound on the depth of applied schedules (0 = unlimited).
     * Circuit depth is the paper's secondary optimization target; a
     * slack over the starting depth keeps depth creep bounded when the
     * remaining ambiguity is at the code distance and irreducible.
     */
    std::size_t maxDepth = 0;
    /**
     * Optional caller-owned cancellation flag (parity with
     * api::LerRequest::cancel). Checked between iterations: once set,
     * optimize() returns the best schedule reached so far — a valid
     * prefix of the full run.
     */
    const std::atomic<bool> *cancel = nullptr;
    /**
     * Optional wall-clock budget in seconds across all iterations
     * (0 = unlimited). Checked between iterations, so the loop is
     * anytime; like any wall-clock budget it trades bit-reproducibility
     * for latency control.
     */
    double wallSecondsBudget = 0.0;
    /**
     * Optional caller-owned transposition cache (scheduleKey -> packed
     * objective) shared with the search portfolio. When set, the loop's
     * candidate-validity and revalidation steps probe it before paying a
     * full commutation/timestep check; cached entries are bit-identical
     * to fresh evaluations, so results are unchanged by this knob.
     */
    search::TranspositionCache *transpositions = nullptr;
};

/** Telemetry for one optimization iteration. */
struct IterationRecord
{
    std::size_t iteration = 0;
    std::size_t ambiguousFound = 0;
    std::size_t candidatesEnumerated = 0;
    std::size_t changesVerified = 0;
    std::size_t changesApplied = 0;
    std::size_t depth = 0;
    /** Minimum logical-error weight seen (circuit-level d_eff estimate). */
    std::size_t minLogicalWeight = std::numeric_limits<std::size_t>::max();
    /** Per-solve MaxSAT statistics (Figure 14 scaling data). */
    std::vector<sat::MaxSatStats> solveStats;
    /** Weights of solved min-weight logical errors. */
    std::vector<std::size_t> solveWeights;
};

/** Optimization outcome: the final schedule plus per-iteration telemetry
 * and intermediate schedule snapshots (the Hook-ZNE raw material). */
struct OptimizeResult
{
    std::vector<IterationRecord> history;
    /** Schedule after each iteration (snapshots[0] = input). Portfolio
     * runs append the winning schedule, so finalSchedule() is always
     * the returned optimum. */
    std::vector<circuit::SmSchedule> snapshots;
    /** Per-strategy search telemetry when the schedule-search portfolio
     * served the request (search::runPortfolio); empty for classic
     * MaxSAT-only runs. */
    std::vector<search::StrategyReport> searchReports;

    const circuit::SmSchedule &finalSchedule() const
    {
        return snapshots.back();
    }
};

/** The PropHunt optimizer. */
class PropHunt
{
  public:
    explicit PropHunt(PropHuntOptions options) : opts_(options) {}

    /**
     * Optimize a schedule.
     *
     * @param start Starting schedule (e.g. a coloration circuit).
     * @param rounds Rounds of the memory experiment used for the
     * circuit-level model (typically the code distance).
     */
    OptimizeResult optimize(const circuit::SmSchedule &start,
                            std::size_t rounds) const;

  private:
    PropHuntOptions opts_;
};

/**
 * Estimate the circuit-level effective distance of a schedule: the minimum
 * weight over min-weight logical errors of sampled ambiguous subgraphs
 * (both bases). Returns max() if no ambiguity was found within the budget.
 */
std::size_t estimateEffectiveDistance(const circuit::SmSchedule &schedule,
                                      std::size_t rounds, double p,
                                      std::size_t samples, uint64_t seed);

} // namespace prophunt::core

#endif // PROPHUNT_PROPHUNT_OPTIMIZER_H
