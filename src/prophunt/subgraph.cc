#include "prophunt/subgraph.h"

#include <algorithm>

namespace prophunt::core {

SubgraphFinder::SubgraphFinder(const sim::Dem &dem)
    : dem_(dem), detAdj_(dem.detectorToErrors())
{
}

std::vector<uint32_t>
interiorErrors(const sim::Dem &dem, const std::vector<uint32_t> &detectors)
{
    std::vector<uint8_t> in_set(dem.numDetectors, 0);
    for (uint32_t d : detectors) {
        in_set[d] = 1;
    }
    std::vector<uint32_t> errors;
    for (std::size_t e = 0; e < dem.errors.size(); ++e) {
        const auto &dets = dem.errors[e].detectors;
        bool inside = true;
        for (uint32_t d : dets) {
            if (!in_set[d]) {
                inside = false;
                break;
            }
        }
        if (inside) {
            errors.push_back((uint32_t)e);
        }
    }
    return errors;
}

bool
hasAmbiguity(const sim::Dem &dem, const std::vector<uint32_t> &detectors,
             const std::vector<uint32_t> &errors)
{
    // H': |S'| x |E'|; logical rows restricted to E'.
    std::vector<int> det_local(dem.numDetectors, -1);
    for (std::size_t i = 0; i < detectors.size(); ++i) {
        det_local[detectors[i]] = (int)i;
    }
    gf2::Matrix h(detectors.size(), errors.size());
    for (std::size_t c = 0; c < errors.size(); ++c) {
        for (uint32_t d : dem.errors[errors[c]].detectors) {
            h.set((std::size_t)det_local[d], c, true);
        }
    }
    for (std::size_t obs = 0; obs < dem.numObservables; ++obs) {
        gf2::BitVec row(errors.size());
        for (std::size_t c = 0; c < errors.size(); ++c) {
            for (uint32_t o : dem.errors[errors[c]].observables) {
                if (o == obs) {
                    row.flip(c);
                }
            }
        }
        if (row.isZero()) {
            continue;
        }
        if (!h.rowSpaceContains(row)) {
            return true;
        }
    }
    return false;
}

Subgraph
SubgraphFinder::sample(sim::Rng &rng, std::size_t max_errors) const
{
    Subgraph sg;
    if (dem_.errors.empty()) {
        return sg;
    }
    std::vector<uint8_t> det_in(dem_.numDetectors, 0);
    std::vector<uint8_t> err_seen(dem_.errors.size(), 0);
    // Count of in-subgraph detectors per candidate error.
    std::vector<uint32_t> touch(dem_.errors.size(), 0);
    std::vector<uint32_t> frontier; // errors adjacent to S', not interior

    auto add_detector = [&](uint32_t d) {
        if (det_in[d]) {
            return;
        }
        det_in[d] = 1;
        sg.detectors.push_back(d);
        for (uint32_t e : detAdj_[d]) {
            if (!err_seen[e]) {
                err_seen[e] = 1;
                frontier.push_back(e);
            }
            ++touch[e];
        }
    };

    auto absorb = [&](uint32_t e) {
        // Add error e and its detectors to the subgraph.
        for (uint32_t d : dem_.errors[e].detectors) {
            add_detector(d);
        }
    };

    auto collect_interior = [&]() {
        sg.errors.clear();
        // An error is interior when every one of its detectors is inside.
        for (std::size_t e = 0; e < dem_.errors.size(); ++e) {
            if (err_seen[e] &&
                touch[e] == dem_.errors[e].detectors.size()) {
                sg.errors.push_back((uint32_t)e);
            }
        }
    };

    // Random seed error node.
    uint32_t seed_err = (uint32_t)rng.below(dem_.errors.size());
    // Avoid starting on a detector-less mechanism.
    for (std::size_t tries = 0;
         dem_.errors[seed_err].detectors.empty() && tries < 32; ++tries) {
        seed_err = (uint32_t)rng.below(dem_.errors.size());
    }
    absorb(seed_err);
    collect_interior();
    if (hasAmbiguity(dem_, sg.detectors, sg.errors)) {
        sg.ambiguous = true;
        return sg;
    }

    while (sg.errors.size() < max_errors) {
        // Pick a random frontier error (adjacent to S' but not interior).
        std::vector<uint32_t> candidates;
        for (uint32_t e : frontier) {
            if (touch[e] < dem_.errors[e].detectors.size()) {
                candidates.push_back(e);
            }
        }
        if (candidates.empty()) {
            break; // disconnected component exhausted
        }
        uint32_t pick = candidates[rng.below(candidates.size())];
        absorb(pick);
        collect_interior();
        if (hasAmbiguity(dem_, sg.detectors, sg.errors)) {
            sg.ambiguous = true;
            return sg;
        }
    }
    return sg;
}

} // namespace prophunt::core
