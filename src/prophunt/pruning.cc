#include "prophunt/pruning.h"

#include <map>
#include <tuple>

#include "sim/dem_builder.h"

namespace prophunt::core {

namespace {

/** Schedule-independent identity of a CNOT fault. */
using FaultKey = std::tuple<std::size_t, std::size_t, std::size_t, uint8_t,
                            uint8_t>; // check, data qubit, round, p0, p1

FaultKey
keyOf(const sim::FaultLoc &loc)
{
    return {loc.cnot.check, loc.cnot.dataQubit, loc.cnot.round,
            (uint8_t)loc.p0, (uint8_t)loc.p1};
}

} // namespace

std::optional<VerifiedChange>
verifyChange(const circuit::SmSchedule &base, const CircuitChange &change,
             const std::vector<uint32_t> &ambiguous_detectors,
             const std::vector<uint32_t> &logical_errors,
             const sim::Dem &dem, std::size_t rounds,
             circuit::MemoryBasis basis, const sim::NoiseModel &noise)
{
    circuit::SmSchedule candidate = change.apply(base);

    // 1. Circuit validity.
    if (!candidate.commutationValid()) {
        return std::nullopt;
    }
    auto ts = candidate.computeTimesteps();
    if (!ts) {
        return std::nullopt; // cyclic precedence: not schedulable
    }

    // 2. Rebuild the circuit-level model for the candidate.
    circuit::SmCircuit circ =
        circuit::buildMemoryCircuit(candidate, rounds, basis);
    sim::Dem new_dem = sim::buildDem(circ, noise);

    // Ambiguity must be gone on the original syndrome bits.
    std::vector<uint32_t> interior =
        interiorErrors(new_dem, ambiguous_detectors);
    if (hasAmbiguity(new_dem, ambiguous_detectors, interior)) {
        return std::nullopt;
    }

    // The updated circuit-level errors at the original fault locations must
    // not constitute a new undetected logical error.
    std::map<FaultKey, uint32_t> new_mech_of;
    for (std::size_t e = 0; e < new_dem.errors.size(); ++e) {
        for (const sim::FaultLoc &loc : new_dem.errors[e].sources) {
            if (loc.isCnot) {
                new_mech_of[keyOf(loc)] = (uint32_t)e;
            }
        }
    }
    std::vector<uint32_t> det_parity(new_dem.numDetectors, 0);
    std::vector<uint32_t> obs_parity(new_dem.numObservables, 0);
    bool any_mapped = false;
    for (uint32_t err : logical_errors) {
        for (const sim::FaultLoc &loc : dem.errors[err].sources) {
            if (!loc.isCnot) {
                continue;
            }
            auto it = new_mech_of.find(keyOf(loc));
            if (it == new_mech_of.end()) {
                continue; // fault became trivial in the new circuit
            }
            any_mapped = true;
            const auto &mech = new_dem.errors[it->second];
            for (uint32_t d : mech.detectors) {
                det_parity[d] ^= 1;
            }
            for (uint32_t o : mech.observables) {
                obs_parity[o] ^= 1;
            }
            break; // one representative fault per mechanism
        }
    }
    if (any_mapped) {
        bool detected = false;
        for (uint32_t v : det_parity) {
            if (v) {
                detected = true;
                break;
            }
        }
        bool logical = false;
        for (uint32_t v : obs_parity) {
            if (v) {
                logical = true;
                break;
            }
        }
        if (!detected && logical) {
            return std::nullopt; // still an undetected logical error
        }
    }

    VerifiedChange vc{change, std::move(candidate), ts->depth};
    return vc;
}

} // namespace prophunt::core
