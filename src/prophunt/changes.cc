#include "prophunt/changes.h"

#include <algorithm>
#include <set>

namespace prophunt::core {

namespace {

bool
hasXComponent(sim::Pauli p)
{
    return p == sim::Pauli::X || p == sim::Pauli::Y;
}

bool
hasZComponent(sim::Pauli p)
{
    return p == sim::Pauli::Z || p == sim::Pauli::Y;
}

/**
 * Hook classification: does this CNOT fault put a propagating Pauli on the
 * ancilla mid-sequence? For an X check the ancilla is the control and an X
 * component spreads to the data targets of subsequent CNOTs; for a Z check
 * the ancilla is the target and a Z component spreads back onto the data
 * controls of subsequent CNOTs (paper Section 2.8).
 */
bool
isHookFault(const sim::FaultLoc &loc, bool check_is_x, std::size_t weight)
{
    if (!loc.isCnot || loc.cnot.posInCheck + 1 >= weight) {
        return false; // last CNOT cannot spread within the round
    }
    if (check_is_x) {
        return hasXComponent(loc.p0); // ancilla is qubit 0 (control)
    }
    return hasZComponent(loc.p1); // ancilla is qubit 1 (target)
}

} // namespace

circuit::SmSchedule
CircuitChange::apply(const circuit::SmSchedule &s) const
{
    if (kind == Kind::Reorder) {
        return s.withReorder(check, fromPos, beforePos);
    }
    circuit::SmSchedule out = s;
    for (const auto &[qubit, a, b] : swaps) {
        out = out.withRelativeSwap(qubit, a, b);
    }
    return out;
}

std::string
CircuitChange::key() const
{
    std::string k = kind == Kind::Reorder ? "O" : "S";
    if (kind == Kind::Reorder) {
        k += std::to_string(check) + "," + std::to_string(fromPos) + "," +
             std::to_string(beforePos);
    } else {
        for (const auto &[q, a, b] : swaps) {
            k += std::to_string(q) + ":" + std::to_string(std::min(a, b)) +
                 "-" + std::to_string(std::max(a, b)) + ";";
        }
    }
    return k;
}

std::vector<CircuitChange>
enumerateChanges(const circuit::SmSchedule &schedule, const sim::Dem &dem,
                 const circuit::SmCircuit &circ,
                 const std::vector<uint32_t> &logical_errors, sim::Rng &rng)
{
    const code::CssCode &code = schedule.code();
    std::vector<CircuitChange> out;
    std::set<std::string> seen;
    auto push = [&](CircuitChange c) {
        if (seen.insert(c.key()).second) {
            out.push_back(std::move(c));
        }
    };

    for (uint32_t err : logical_errors) {
        const sim::ErrorMechanism &mech = dem.errors[err];
        for (const sim::FaultLoc &loc : mech.sources) {
            if (!loc.isCnot || loc.cnot.flag) {
                continue; // flag couplings are not schedule slots
            }
            std::size_t c = loc.cnot.check;
            std::size_t qi = loc.cnot.dataQubit;
            std::size_t pos = loc.cnot.posInCheck;
            std::size_t w = schedule.checkOrder(c).size();
            bool cx = code.isXCheck(c);

            // Reordering changes for hook errors: move each other qubit
            // directly before the hook CNOT.
            if (isHookFault(loc, cx, w)) {
                for (std::size_t j = 0; j < w; ++j) {
                    if (j == pos) {
                        continue;
                    }
                    CircuitChange ch;
                    ch.kind = CircuitChange::Kind::Reorder;
                    ch.check = c;
                    ch.fromPos = j;
                    ch.beforePos = pos;
                    push(std::move(ch));
                }
            }

            // Rescheduling changes: swap this check against every check
            // flipped by the error (the paper's S_{q,i}) that shares
            // qubit qi.
            std::set<std::size_t> flipped_checks;
            for (uint32_t d : mech.detectors) {
                flipped_checks.insert(circ.detectorSource[d].first);
            }
            for (std::size_t other : schedule.qubitOrder(qi)) {
                if (other == c || !flipped_checks.count(other)) {
                    continue;
                }
                CircuitChange ch;
                ch.kind = CircuitChange::Kind::Reschedule;
                ch.swaps.push_back({qi, c, other});
                bool other_x = code.isXCheck(other);
                if (other_x != cx) {
                    // Preserve commutation with a paired swap on another
                    // shared qubit.
                    std::vector<std::size_t> shared =
                        schedule.sharedQubits(c, other);
                    std::vector<std::size_t> others;
                    for (std::size_t q : shared) {
                        if (q != qi) {
                            others.push_back(q);
                        }
                    }
                    if (others.empty()) {
                        continue; // cannot preserve commutation
                    }
                    std::size_t qk = others.size() == 1
                                         ? others[0]
                                         : others[rng.below(others.size())];
                    ch.swaps.push_back({qk, c, other});
                }
                push(std::move(ch));
            }
        }
    }
    return out;
}

} // namespace prophunt::core
