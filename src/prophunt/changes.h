/**
 * @file
 * Candidate SM-circuit change enumeration (paper Section 5.3).
 *
 * Each error mechanism of a found min-weight logical error maps back to the
 * CNOT gates that can produce it. Two change types modify how such errors
 * propagate:
 *
 *  - Reordering (5.3.1): for a hook error caused by the CNOT at position i
 *    of a weight-w check, w-1 candidates each move another data qubit
 *    directly before position i.
 *  - Rescheduling (5.3.2): swap the relative order of the fault's check and
 *    another check flipped by the error on the shared data qubit; X/Z pairs
 *    get a paired second swap on another shared qubit to preserve
 *    stabilizer commutation.
 */
#ifndef PROPHUNT_PROPHUNT_CHANGES_H
#define PROPHUNT_PROPHUNT_CHANGES_H

#include <cstdint>
#include <string>
#include <vector>

#include <array>

#include "circuit/schedule.h"
#include "circuit/sm_circuit.h"
#include "sim/dem.h"
#include "sim/rng.h"

namespace prophunt::core {

/** One candidate schedule change. */
struct CircuitChange
{
    enum class Kind { Reorder, Reschedule };

    Kind kind = Kind::Reorder;
    /** Reorder: check, from position, before position. */
    std::size_t check = 0;
    std::size_t fromPos = 0;
    std::size_t beforePos = 0;
    /** Reschedule: swaps of (qubit, checkA, checkB); one or two entries. */
    std::vector<std::array<std::size_t, 3>> swaps;

    /** Apply to a schedule, returning the modified copy. */
    circuit::SmSchedule apply(const circuit::SmSchedule &s) const;

    /** Stable key for deduplication. */
    std::string key() const;
};

/**
 * Enumerate candidate changes for a min-weight logical error.
 *
 * @param schedule Current schedule.
 * @param dem DEM the error was found in (provides gate provenance).
 * @param circ Circuit the DEM came from (maps detectors back to checks).
 * @param logical_errors Mechanism indices of the logical error.
 * @param rng Used for the random q_k selection when an X/Z rescheduling
 * pair shares more than two qubits.
 */
std::vector<CircuitChange> enumerateChanges(
    const circuit::SmSchedule &schedule, const sim::Dem &dem,
    const circuit::SmCircuit &circ,
    const std::vector<uint32_t> &logical_errors, sim::Rng &rng);

} // namespace prophunt::core

#endif // PROPHUNT_PROPHUNT_CHANGES_H
