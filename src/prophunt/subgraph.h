/**
 * @file
 * Ambiguous decoding-subgraph finding (paper Section 5.1).
 *
 * The circuit-level decoding graph is bipartite: syndrome (detector) nodes
 * vs error nodes. Starting from a random error node, the subgraph expands
 * one adjacent error node at a time (staying connected), automatically
 * absorbing error nodes whose entire detector support is inside. After each
 * step the submatrices H' and L' are checked: if some logical row is NOT in
 * the row space of H', the subgraph contains ambiguous errors and expansion
 * halts.
 */
#ifndef PROPHUNT_PROPHUNT_SUBGRAPH_H
#define PROPHUNT_PROPHUNT_SUBGRAPH_H

#include <cstdint>
#include <vector>

#include "gf2/matrix.h"
#include "sim/dem.h"
#include "sim/rng.h"

namespace prophunt::core {

/** A connected decoding subgraph. */
struct Subgraph
{
    /** Detector (syndrome) nodes S'. */
    std::vector<uint32_t> detectors;
    /** Interior error nodes E': errors with all detectors inside S'. */
    std::vector<uint32_t> errors;
    /** True iff some logical row escapes rowspace(H'). */
    bool ambiguous = false;
};

/** Reusable sampler of ambiguous subgraphs over one DEM. */
class SubgraphFinder
{
  public:
    explicit SubgraphFinder(const sim::Dem &dem);

    /**
     * Sample one subgraph.
     *
     * @param rng Randomness source.
     * @param max_errors Expansion budget; sampling returns a non-ambiguous
     * subgraph once exceeded.
     */
    Subgraph sample(sim::Rng &rng, std::size_t max_errors) const;

    const sim::Dem &dem() const { return dem_; }

  private:
    const sim::Dem &dem_;
    std::vector<std::vector<uint32_t>> detAdj_;
};

/**
 * Interior errors of a detector set: errors whose entire detector support
 * lies inside @p detectors (paper Section 4.1's sub-matrix definition).
 */
std::vector<uint32_t> interiorErrors(const sim::Dem &dem,
                                     const std::vector<uint32_t> &detectors);

/**
 * Ambiguity check: true iff some logical row, restricted to the error
 * columns, is NOT in the row space of the restricted check matrix.
 */
bool hasAmbiguity(const sim::Dem &dem,
                  const std::vector<uint32_t> &detectors,
                  const std::vector<uint32_t> &errors);

} // namespace prophunt::core

#endif // PROPHUNT_PROPHUNT_SUBGRAPH_H
