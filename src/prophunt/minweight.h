/**
 * @file
 * Min-weight logical-error solving via MaxSAT (paper Section 5.2).
 *
 * Variables are error mechanisms. Hard constraints define every syndrome
 * and logical parity through Tseitin XOR trees, force all syndromes false
 * (the error is undetected) and at least one logical observable true. Soft
 * constraints prefer every error false, so the optimum is a minimum-weight
 * undetected logical error. Works on a subgraph (fast, the PropHunt inner
 * loop) or on the whole DEM (the intractable global formulation of
 * Table 2).
 */
#ifndef PROPHUNT_PROPHUNT_MINWEIGHT_H
#define PROPHUNT_PROPHUNT_MINWEIGHT_H

#include <cstdint>
#include <vector>

#include "prophunt/subgraph.h"
#include "sat/maxsat.h"
#include "sim/dem.h"

namespace prophunt::core {

/** Result of a min-weight logical-error solve. */
struct MinWeightResult
{
    /** True iff an undetected logical error exists (and was found). */
    bool found = false;
    /** Weight (mechanism count) of the found error. */
    std::size_t weight = 0;
    /** Global mechanism indices of the found error. */
    std::vector<uint32_t> errors;
    sat::MaxSatStats stats;
};

/** Solve on a subgraph (H', L' restricted to its nodes). */
MinWeightResult solveMinWeightLogical(const sim::Dem &dem,
                                      const Subgraph &subgraph,
                                      std::size_t max_cost,
                                      double timeout_seconds);

/** Solve on the full DEM — the global formulation of Table 2. */
MinWeightResult solveGlobalMinWeight(const sim::Dem &dem,
                                     std::size_t max_cost,
                                     double timeout_seconds);

} // namespace prophunt::core

#endif // PROPHUNT_PROPHUNT_MINWEIGHT_H
