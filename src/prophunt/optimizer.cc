#include "prophunt/optimizer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <map>
#include <set>

#include "search/objective.h"
#include "search/transposition.h"
#include "sim/dem_builder.h"
#include "sim/parallel_sampler.h"

namespace prophunt::core {

namespace {

using sim::parallelFor;

/** Effective worker count: explicit threads, else the LER engine's knob,
 * else hardware concurrency — one pool configuration for the pipeline. */
std::size_t
workerCount(const PropHuntOptions &opts)
{
    std::size_t requested =
        opts.threads != 0 ? opts.threads : opts.ler.threads;
    return sim::resolveThreads(requested);
}

/**
 * Ambiguous subgraphs sampled from one DEM, deduplicated.
 *
 * Deterministic for every thread count: each sample index owns an
 * independent RNG stream, blocks of kSampleBlock indices are sampled in
 * parallel, and results merge (dedup + max_keep cutoff) serially in
 * index order. Early exit happens at block granularity, so the kept set
 * is a pure function of (seed, samples, max_keep).
 */
std::vector<Subgraph>
sampleAmbiguous(const sim::Dem &dem, std::size_t samples,
                std::size_t max_errors, std::size_t max_keep,
                std::size_t threads, uint64_t seed)
{
    constexpr std::size_t kSampleBlock = 32;
    SubgraphFinder finder(dem);
    std::vector<Subgraph> found;
    std::set<std::vector<uint32_t>> seen;
    std::vector<std::optional<Subgraph>> block(kSampleBlock);

    for (std::size_t base = 0;
         base < samples && found.size() < max_keep; base += kSampleBlock) {
        std::size_t count = std::min(kSampleBlock, samples - base);
        parallelFor(count, threads, [&](std::size_t i) {
            sim::Rng rng(seed ^
                         ((base + i + 1) * 0x517cc1b727220a95ULL));
            Subgraph sg = finder.sample(rng, max_errors);
            block[i] = sg.ambiguous ? std::optional<Subgraph>(std::move(sg))
                                    : std::nullopt;
        });
        for (std::size_t i = 0; i < count && found.size() < max_keep;
             ++i) {
            if (!block[i]) {
                continue;
            }
            std::vector<uint32_t> key = block[i]->detectors;
            std::sort(key.begin(), key.end());
            if (seen.insert(std::move(key)).second) {
                found.push_back(std::move(*block[i]));
            }
        }
    }
    return found;
}

} // namespace

OptimizeResult
PropHunt::optimize(const circuit::SmSchedule &start,
                   std::size_t rounds) const
{
    OptimizeResult result;
    result.snapshots.push_back(start);
    circuit::SmSchedule current = start;
    std::size_t threads = workerCount(opts_);
    sim::NoiseModel noise = sim::NoiseModel::uniform(opts_.p);
    sim::Rng rng(opts_.seed);
    std::size_t stalled = 0;
    auto t0 = std::chrono::steady_clock::now();
    auto interrupted = [&]() {
        if (opts_.cancel != nullptr &&
            opts_.cancel->load(std::memory_order_relaxed)) {
            return true;
        }
        if (opts_.wallSecondsBudget > 0.0) {
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            if (dt.count() >= opts_.wallSecondsBudget) {
                return true;
            }
        }
        return false;
    };

    for (std::size_t iter = 0; iter < opts_.iterations; ++iter) {
        if (interrupted()) {
            break; // anytime: the snapshots so far are a valid prefix
        }
        IterationRecord rec;
        rec.iteration = iter;

        struct BasisWork
        {
            circuit::MemoryBasis basis;
            circuit::SmCircuit circ;
            sim::Dem dem;
            std::vector<Subgraph> subgraphs;
        };
        std::vector<BasisWork> work;
        for (auto basis :
             {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
            BasisWork w;
            w.basis = basis;
            w.circ = circuit::buildMemoryCircuit(current, rounds, basis);
            w.dem = sim::buildDem(w.circ, noise);
            w.subgraphs = sampleAmbiguous(
                w.dem, opts_.samplesPerIteration / 2,
                opts_.maxSubgraphErrors, opts_.maxAmbiguousPerIteration,
                threads, opts_.seed ^ (iter * 2654435761u) ^
                             (basis == circuit::MemoryBasis::X ? 0xabcdu
                                                               : 0));
            rec.ambiguousFound += w.subgraphs.size();
            work.push_back(std::move(w));
        }

        // Solve each ambiguous subgraph and enumerate+verify candidates.
        struct SubgraphPlan
        {
            const BasisWork *bw;
            const Subgraph *sg;
            MinWeightResult mw;
            std::vector<CircuitChange> candidates;
            std::vector<VerifiedChange> verified;
        };
        std::vector<SubgraphPlan> plans;
        for (const BasisWork &bw : work) {
            for (const Subgraph &sg : bw.subgraphs) {
                plans.push_back({&bw, &sg, {}, {}, {}});
            }
        }
        parallelFor(plans.size(), threads, [&](std::size_t i) {
            plans[i].mw =
                solveMinWeightLogical(plans[i].bw->dem, *plans[i].sg,
                                      opts_.maxCost,
                                      opts_.satTimeoutSeconds);
        });
        for (SubgraphPlan &plan : plans) {
            rec.solveStats.push_back(plan.mw.stats);
            if (plan.mw.found) {
                rec.solveWeights.push_back(plan.mw.weight);
                rec.minLogicalWeight =
                    std::min(rec.minLogicalWeight, plan.mw.weight);
            }
        }

        // Candidate enumeration (cheap, serial for RNG determinism).
        for (SubgraphPlan &plan : plans) {
            if (!plan.mw.found || plan.mw.weight == 0) {
                continue;
            }
            plan.candidates = enumerateChanges(
                current, plan.bw->dem, plan.bw->circ, plan.mw.errors, rng);
            rec.candidatesEnumerated += plan.candidates.size();
        }

        // Verification (expensive: DEM rebuild per candidate) in parallel.
        struct VerifyTask
        {
            SubgraphPlan *plan;
            const CircuitChange *change;
        };
        std::vector<VerifyTask> tasks;
        for (SubgraphPlan &plan : plans) {
            for (const CircuitChange &ch : plan.candidates) {
                tasks.push_back({&plan, &ch});
            }
        }
        // Results land in per-task slots and are collected in task order,
        // so the verified lists are identical for every thread count.
        std::vector<std::optional<VerifiedChange>> taskResults(
            tasks.size());
        parallelFor(tasks.size(), threads, [&](std::size_t i) {
            std::optional<VerifiedChange> vc;
            if (opts_.verifyAmbiguityRemoval) {
                vc = verifyChange(current, *tasks[i].change,
                                  tasks[i].plan->sg->detectors,
                                  tasks[i].plan->mw.errors,
                                  tasks[i].plan->bw->dem, rounds,
                                  tasks[i].plan->bw->basis, noise);
            } else {
                // Ablated pruning: only circuit validity is checked. A
                // shared transposition cache already knows the verdict
                // for schedules the search portfolio scored; probe it
                // (read-only — parallel inserts would make hit counts
                // timing-dependent) before paying the full check.
                circuit::SmSchedule cand = tasks[i].change->apply(current);
                uint64_t cached = 0;
                bool have_cached =
                    opts_.transpositions != nullptr &&
                    opts_.transpositions->lookup(
                        search::scheduleKey(cand), cached);
                if (have_cached &&
                    cached == search::kInvalidObjective) {
                    // Known invalid: reject without re-checking.
                } else if (have_cached &&
                           search::ScheduleObjective::unpackDepth(
                               cached)) {
                    vc = VerifiedChange{
                        *tasks[i].change, std::move(cand),
                        *search::ScheduleObjective::unpackDepth(cached)};
                } else {
                    // Miss, or depth saturated in the packed objective:
                    // fall back to the full validity check.
                    if (cand.commutationValid()) {
                        auto ts = cand.computeTimesteps();
                        if (ts) {
                            vc = VerifiedChange{*tasks[i].change,
                                                std::move(cand),
                                                ts->depth};
                        }
                    }
                }
            }
            taskResults[i] = std::move(vc);
        });
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (taskResults[i]) {
                tasks[i].plan->verified.push_back(
                    std::move(*taskResults[i]));
            }
        }

        // Apply: one change per subgraph, minimum depth first.
        std::set<std::string> applied_keys;
        for (SubgraphPlan &plan : plans) {
            if (plan.verified.empty()) {
                continue;
            }
            rec.changesVerified += plan.verified.size();
            if (opts_.preferMinDepth) {
                // stable: depth ties keep deterministic task order.
                std::stable_sort(plan.verified.begin(), plan.verified.end(),
                          [](const VerifiedChange &a,
                             const VerifiedChange &b) {
                              return a.depth < b.depth;
                          });
            }
            for (const VerifiedChange &vc : plan.verified) {
                if (opts_.maxDepth != 0 && vc.depth > opts_.maxDepth) {
                    continue; // depth budget exceeded
                }
                if (applied_keys.count(vc.change.key())) {
                    break; // already applied for another subgraph
                }
                // Re-validate against the *current* schedule (a previously
                // applied change may interact). A cached objective for
                // the candidate already encodes validity.
                circuit::SmSchedule next = vc.change.apply(current);
                uint64_t cached = 0;
                if (opts_.transpositions != nullptr &&
                    opts_.transpositions->lookup(
                        search::scheduleKey(next), cached)) {
                    if (cached == search::kInvalidObjective) {
                        continue;
                    }
                } else if (!next.commutationValid() ||
                           !next.schedulable()) {
                    continue;
                }
                current = std::move(next);
                applied_keys.insert(vc.change.key());
                ++rec.changesApplied;
                break;
            }
        }

        rec.depth = current.depth();
        bool no_ambiguity = rec.ambiguousFound == 0;
        bool no_progress = rec.changesApplied == 0;
        result.history.push_back(std::move(rec));
        result.snapshots.push_back(current);
        if (no_ambiguity) {
            break; // converged: no ambiguity found within the budget
        }
        if (no_progress) {
            ++stalled;
            if (stalled >= 3) {
                break; // ambiguity persists but is unresolvable (d_eff = d)
            }
        } else {
            stalled = 0;
        }
    }
    return result;
}

std::size_t
estimateEffectiveDistance(const circuit::SmSchedule &schedule,
                          std::size_t rounds, double p, std::size_t samples,
                          uint64_t seed)
{
    sim::NoiseModel noise = sim::NoiseModel::uniform(p);
    std::size_t best = std::numeric_limits<std::size_t>::max();
    std::size_t threads = sim::resolveThreads(0);
    for (auto basis : {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
        circuit::SmCircuit circ =
            circuit::buildMemoryCircuit(schedule, rounds, basis);
        sim::Dem dem = sim::buildDem(circ, noise);
        std::vector<Subgraph> sgs = sampleAmbiguous(
            dem, samples / 2, 64, 16, threads,
            seed ^ (basis == circuit::MemoryBasis::X ? 0x5555u : 0));
        for (const Subgraph &sg : sgs) {
            MinWeightResult mw = solveMinWeightLogical(dem, sg, 16, 10.0);
            if (mw.found) {
                best = std::min(best, mw.weight);
            }
        }
    }
    return best;
}

} // namespace prophunt::core
