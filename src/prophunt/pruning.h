/**
 * @file
 * Candidate-change pruning (paper Section 5.4).
 *
 * Two checks gate every candidate:
 *
 *  1. Circuit validity: stabilizer commutation is preserved and the CNOT
 *     precedence constraints are acyclic (schedulable).
 *  2. Ambiguity removal: with the candidate applied, the original ambiguous
 *     detector set must decode unambiguously (all logical rows back in
 *     rowspace(H')), and the updated circuit-level errors at the same gate
 *     fault locations must no longer form an undetected logical error
 *     (H'e' != 0 or L'e' = 0).
 *
 * Detector indices are schedule-independent (a detector is a (check, round)
 * pair), so the "original ambiguous syndrome bits" transfer directly to the
 * candidate's DEM.
 */
#ifndef PROPHUNT_PROPHUNT_PRUNING_H
#define PROPHUNT_PROPHUNT_PRUNING_H

#include <optional>

#include "prophunt/changes.h"
#include "prophunt/subgraph.h"
#include "sim/noise_model.h"

namespace prophunt::core {

/** A candidate change that survived pruning. */
struct VerifiedChange
{
    CircuitChange change;
    circuit::SmSchedule schedule;
    std::size_t depth = 0;
};

/**
 * Check one candidate; returns the verified change or nullopt.
 *
 * @param base Current schedule.
 * @param change Candidate to verify.
 * @param ambiguous_detectors The subgraph's detector set S'.
 * @param logical_errors Mechanisms of the found min-weight logical error
 * in the current DEM (their sources identify the gates to re-check).
 * @param dem Current DEM (for fault-location keys).
 * @param rounds, basis, noise Circuit-construction parameters (must match
 * the DEM the subgraph was found in).
 */
std::optional<VerifiedChange> verifyChange(
    const circuit::SmSchedule &base, const CircuitChange &change,
    const std::vector<uint32_t> &ambiguous_detectors,
    const std::vector<uint32_t> &logical_errors, const sim::Dem &dem,
    std::size_t rounds, circuit::MemoryBasis basis,
    const sim::NoiseModel &noise);

} // namespace prophunt::core

#endif // PROPHUNT_PROPHUNT_PRUNING_H
