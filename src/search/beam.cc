#include "search/beam.h"

#include <algorithm>
#include <chrono>

#include "search/incremental.h"
#include "search/transposition.h"
#include "sim/rng.h"

namespace prophunt::search {

namespace {

/** Deterministic subsample of k move indices, returned ascending so the
 * enumeration order survives. Partial Fisher-Yates over a caller-reused
 * index array seeded from (seed, iteration, state). */
void
sampleIndices(std::size_t total, std::size_t k, uint64_t seed,
              std::vector<std::size_t> &idx)
{
    idx.resize(total);
    for (std::size_t i = 0; i < total; ++i) {
        idx[i] = i;
    }
    sim::Rng rng(seed);
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + (std::size_t)(rng.next() % (total - i));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    std::sort(idx.begin(), idx.end());
}

} // namespace

SearchOutcome
runBeamSearch(const SearchContext &ctx, const BeamOptions &options)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();
    auto elapsed_us = [&t0]() {
        return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
                   Clock::now() - t0)
            .count();
    };
    TranspositionCache *cache = ctx.transpositions;
    uint64_t hits0 = cache ? cache->hits() : 0;
    uint64_t misses0 = cache ? cache->misses() : 0;

    SearchOutcome out(ctx.start);
    uint64_t best_obj = cachedEvaluate(ctx.objective, ctx.start, cache);

    struct State
    {
        circuit::SmSchedule sched;
        uint64_t obj;
        uint64_t key;
    };
    std::vector<State> beam;
    beam.push_back({ctx.start, best_obj, scheduleKey(ctx.start)});
    FifoKeySet visited(options.visitedWindow);
    visited.insert(beam[0].key);

    // The expansion hot loop never materializes a schedule: candidates
    // are (parent, move) pairs scored through the incremental state
    // (probe-before-apply via keyAfter on cache hits), and only the
    // width winners — plus strict improvements — get copied out.
    ObjectiveState state(ctx.objective);
    struct Candidate
    {
        std::size_t parent;
        Move move;
        uint64_t obj;
        uint64_t key;
    };
    std::vector<Candidate> candidates;
    std::vector<Move> moves;
    std::vector<std::size_t> picks;
    std::vector<State> next_beam;

    std::size_t width = std::max<std::size_t>(1, options.width);
    std::size_t stale = 0;
    bool stop = false;
    for (std::size_t iter = 0;
         !stop && (options.maxIterations == 0 ||
                   iter < options.maxIterations);
         ++iter) {
        candidates.clear();
        uint64_t round_best = best_obj;
        for (std::size_t si = 0; si < beam.size() && !stop; ++si) {
            state.reset(beam[si].sched);
            enumerateMoves(state.schedule(), moves);
            if (options.maxNeighborsPerState != 0 &&
                moves.size() > options.maxNeighborsPerState) {
                sampleIndices(moves.size(), options.maxNeighborsPerState,
                              ctx.seed ^ (iter * 0x9e3779b97f4a7c15ULL) ^
                                  (si * 0xbf58476d1ce4e5b9ULL),
                              picks);
            } else {
                picks.resize(moves.size());
                for (std::size_t i = 0; i < moves.size(); ++i) {
                    picks[i] = i;
                }
            }
            for (std::size_t pick : picks) {
                if (ctx.cancelled() ||
                    (ctx.budget.maxExpansions != 0 &&
                     out.stats.expansions >= ctx.budget.maxExpansions) ||
                    (ctx.budget.wallSeconds > 0.0 &&
                     (double)elapsed_us() >=
                         ctx.budget.wallSeconds * 1e6)) {
                    stop = true;
                    break;
                }
                ++out.stats.expansions;
                const Move &mv = moves[pick];
                uint64_t key = state.keyAfter(mv);
                uint64_t obj = 0;
                if (cache == nullptr || !cache->lookup(key, obj)) {
                    obj = state.apply(mv);
                    if (cache != nullptr) {
                        cache->insert(key, obj);
                    }
                    state.undo();
                }
                if (obj == kInvalidObjective) {
                    ++out.stats.deadEnds;
                    continue;
                }
                if (!visited.insert(key)) {
                    continue; // already seen within the window
                }
                if (obj < best_obj) {
                    best_obj = obj;
                    out.schedule = applyMove(beam[si].sched, mv);
                    if (out.stats.firstImprovementExpansions == 0) {
                        out.stats.firstImprovementExpansions =
                            out.stats.expansions;
                        out.stats.timeToFirstImprovementUs = elapsed_us();
                    }
                }
                candidates.push_back({si, mv, obj, key});
            }
        }
        if (candidates.empty()) {
            break; // neighborhood exhausted
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate &a, const Candidate &b) {
                      return a.obj != b.obj ? a.obj < b.obj
                                            : a.key < b.key;
                  });
        if (candidates.size() > width) {
            candidates.resize(width);
        }
        next_beam.clear();
        for (const Candidate &cand : candidates) {
            next_beam.push_back({applyMove(beam[cand.parent].sched,
                                           cand.move),
                                 cand.obj, cand.key});
        }
        beam.swap(next_beam);
        if (best_obj < round_best) {
            stale = 0;
        } else if (++stale >= options.patience) {
            break;
        }
    }

    out.stats.bestObjective = best_obj;
    out.stats.totalUs = elapsed_us();
    if (cache != nullptr) {
        out.stats.transpositionHits = cache->hits() - hits0;
        out.stats.transpositionMisses = cache->misses() - misses0;
    }
    return out;
}

} // namespace prophunt::search
