#include "search/beam.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "sim/rng.h"

namespace prophunt::search {

namespace {

/** One schedule move: a reorder or a relative swap. */
struct Move
{
    enum class Kind { Reorder, RelativeSwap };
    Kind kind = Kind::Reorder;
    std::size_t a = 0; // check (reorder) / qubit (swap)
    std::size_t b = 0; // from_pos / check_a
    std::size_t c = 0; // before_pos / check_b
};

/** All single moves of a schedule, in a fixed deterministic order. */
std::vector<Move>
enumerateMoves(const circuit::SmSchedule &sched)
{
    std::vector<Move> moves;
    const code::CssCode &code = sched.code();
    for (std::size_t check = 0; check < code.numChecks(); ++check) {
        std::size_t w = sched.checkOrder(check).size();
        for (std::size_t from = 0; from < w; ++from) {
            for (std::size_t before = 0; before <= w; ++before) {
                if (before == from || before == from + 1) {
                    continue; // no-op positions
                }
                moves.push_back(
                    {Move::Kind::Reorder, check, from, before});
            }
        }
    }
    for (std::size_t q = 0; q < code.n(); ++q) {
        const auto &order = sched.qubitOrder(q);
        for (std::size_t i = 0; i < order.size(); ++i) {
            for (std::size_t j = i + 1; j < order.size(); ++j) {
                moves.push_back(
                    {Move::Kind::RelativeSwap, q, order[i], order[j]});
            }
        }
    }
    return moves;
}

circuit::SmSchedule
applyMove(const circuit::SmSchedule &sched, const Move &move)
{
    if (move.kind == Move::Kind::Reorder) {
        return sched.withReorder(move.a, move.b, move.c);
    }
    return sched.withRelativeSwap(move.a, move.b, move.c);
}

/** Deterministic subsample of k move indices, returned ascending so the
 * enumeration order survives. Partial Fisher-Yates over an index array
 * seeded from (seed, iteration, state). */
std::vector<std::size_t>
sampleIndices(std::size_t total, std::size_t k, uint64_t seed)
{
    std::vector<std::size_t> idx(total);
    for (std::size_t i = 0; i < total; ++i) {
        idx[i] = i;
    }
    sim::Rng rng(seed);
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + (std::size_t)(rng.next() % (total - i));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

} // namespace

SearchOutcome
runBeamSearch(const SearchContext &ctx, const BeamOptions &options)
{
    using Clock = std::chrono::steady_clock;
    auto t0 = Clock::now();
    auto elapsed_us = [&t0]() {
        return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
                   Clock::now() - t0)
            .count();
    };

    SearchOutcome out(ctx.start);
    uint64_t best_obj = ctx.objective.evaluate(ctx.start);

    struct State
    {
        circuit::SmSchedule sched;
        uint64_t obj;
        uint64_t key;
    };
    std::vector<State> beam;
    beam.push_back({ctx.start, best_obj, scheduleKey(ctx.start)});
    std::unordered_set<uint64_t> visited;
    visited.insert(beam[0].key);

    std::size_t width = std::max<std::size_t>(1, options.width);
    std::size_t stale = 0;
    bool stop = false;
    for (std::size_t iter = 0;
         !stop && (options.maxIterations == 0 ||
                   iter < options.maxIterations);
         ++iter) {
        std::vector<State> candidates;
        uint64_t round_best = best_obj;
        for (std::size_t si = 0; si < beam.size() && !stop; ++si) {
            std::vector<Move> moves = enumerateMoves(beam[si].sched);
            std::vector<std::size_t> picks;
            if (options.maxNeighborsPerState != 0 &&
                moves.size() > options.maxNeighborsPerState) {
                picks = sampleIndices(
                    moves.size(), options.maxNeighborsPerState,
                    ctx.seed ^ (iter * 0x9e3779b97f4a7c15ULL) ^
                        (si * 0xbf58476d1ce4e5b9ULL));
            } else {
                picks.resize(moves.size());
                for (std::size_t i = 0; i < moves.size(); ++i) {
                    picks[i] = i;
                }
            }
            for (std::size_t pick : picks) {
                if (ctx.cancelled() ||
                    (ctx.budget.maxExpansions != 0 &&
                     out.stats.expansions >= ctx.budget.maxExpansions) ||
                    (ctx.budget.wallSeconds > 0.0 &&
                     (double)elapsed_us() >=
                         ctx.budget.wallSeconds * 1e6)) {
                    stop = true;
                    break;
                }
                circuit::SmSchedule cand =
                    applyMove(beam[si].sched, moves[pick]);
                ++out.stats.expansions;
                uint64_t obj = ctx.objective.evaluate(cand);
                if (obj == kInvalidObjective) {
                    ++out.stats.deadEnds;
                    continue;
                }
                uint64_t key = scheduleKey(cand);
                if (!visited.insert(key).second) {
                    continue; // already seen this schedule
                }
                if (obj < best_obj) {
                    best_obj = obj;
                    out.schedule = cand;
                    if (out.stats.firstImprovementExpansions == 0) {
                        out.stats.firstImprovementExpansions =
                            out.stats.expansions;
                        out.stats.timeToFirstImprovementUs = elapsed_us();
                    }
                }
                candidates.push_back({std::move(cand), obj, key});
            }
        }
        if (candidates.empty()) {
            break; // neighborhood exhausted
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const State &a, const State &b) {
                      return a.obj != b.obj ? a.obj < b.obj
                                            : a.key < b.key;
                  });
        if (candidates.size() > width) {
            candidates.erase(candidates.begin() + (long)width,
                             candidates.end());
        }
        beam = std::move(candidates);
        if (best_obj < round_best) {
            stale = 0;
        } else if (++stale >= options.patience) {
            break;
        }
    }

    out.stats.bestObjective = best_obj;
    out.stats.totalUs = elapsed_us();
    return out;
}

} // namespace prophunt::search
