/**
 * @file
 * Branch-and-bound over check-order permutations.
 *
 * The tree assigns, check by check, a permutation of each check's data
 * support (relative qubit orders stay fixed at the start schedule's, so
 * commutation validity is preserved by construction and only
 * schedulability must be re-checked at leaves). The hook-alignment term
 * of the objective is separable per check, which yields the admissible
 * lower bound used for pruning:
 *
 *   LB(node) = alignWeight * ( damage(assigned checks)
 *                            + sum of per-check minimum damage over the
 *                              unassigned checks )          [relaxation]
 *            + depthLoadBound()      [per-qubit/per-check load relaxation]
 *
 * Both relaxations underestimate every completion (escape >= 0, depth >=
 * load bound, per-check minima <= any permutation's damage), so pruning
 * never discards the optimum — validated against exhaustive enumeration
 * in tests/search_test.cc. Children are visited in (damage, lexicographic
 * permutation) order, making the DFS deterministic and quick to find
 * strong incumbents; on budget expiry the best complete schedule seen so
 * far is returned (anytime).
 */
#ifndef PROPHUNT_SEARCH_BRANCH_BOUND_H
#define PROPHUNT_SEARCH_BRANCH_BOUND_H

#include "search/strategy.h"

namespace prophunt::search {

struct BnbOptions
{
    /**
     * Cap on the children expanded per node (0 = all permutations).
     * A nonzero cap keeps high-weight checks tractable but loses the
     * exhaustive-optimality guarantee; the bound stays admissible for
     * the subtree actually explored.
     */
    std::size_t maxChildrenPerNode = 0;
};

/** Run branch-and-bound. Anytime: returns best-so-far on budget expiry. */
SearchOutcome runBranchBound(const SearchContext &ctx,
                             const BnbOptions &options);

} // namespace prophunt::search

#endif // PROPHUNT_SEARCH_BRANCH_BOUND_H
