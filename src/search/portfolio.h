/**
 * @file
 * The anytime schedule-search portfolio: beam search and branch-and-bound
 * raced against the MaxSAT-driven PropHunt loop.
 *
 * Every OptimizeRequest with portfolio.enabled flows through
 * runPortfolio(): each enabled strategy runs under its own anytime
 * budget, every returned schedule is re-verified (commutation validity,
 * schedulability, objective no worse than the start), and the best
 * verified schedule wins — ties break on the fixed strategy order
 * (beam, branch_bound, maxsat), so the outcome is deterministic.
 *
 * Determinism contract: with expansion-count budgets (the default) the
 * returned core::OptimizeResult — schedules, history counters, and all
 * non-wall-clock SearchStats fields — is bit-identical across reruns
 * and thread counts. Wall-clock budgets (PortfolioOptions::wallSeconds
 * or per-strategy SearchBudget::wallSeconds) are an explicit opt-in
 * that gives latency control instead.
 */
#ifndef PROPHUNT_SEARCH_PORTFOLIO_H
#define PROPHUNT_SEARCH_PORTFOLIO_H

#include "prophunt/optimizer.h"
#include "search/beam.h"
#include "search/branch_bound.h"
#include "search/strategy.h"

namespace prophunt::search {

/** Portfolio composition and budgets. */
struct PortfolioOptions
{
    /** Route OptimizeRequest through the portfolio (off = the classic
     * MaxSAT-only PropHunt loop). */
    bool enabled = false;

    bool includeBeam = true;
    bool includeBranchBound = true;
    /** Include the MaxSAT-driven PropHunt loop as a strategy. Its budget
     * is PropHuntOptions::iterations (plus the shared wall budget). */
    bool includeMaxSat = true;

    /** Per-strategy expansion budgets (0 = unlimited; keep bounded). */
    SearchBudget beamBudget{4000, 0.0};
    SearchBudget bnbBudget{8000, 0.0};

    BeamOptions beam;
    BnbOptions bnb;

    /**
     * Entry capacity of the portfolio-wide transposition cache (key ->
     * packed objective) shared by beam, B&B, the MaxSAT loop's
     * verification step, and the central verification pass, so no
     * strategy re-scores a schedule another already scored. FIFO
     * eviction; 0 disables the cache. Cached scores are bit-identical
     * to fresh ones, so the portfolio outcome is unchanged by this
     * knob (asserted in tests/search_incremental_test.cc).
     */
    std::size_t transpositionCapacity = std::size_t(1) << 20;

    /**
     * Optional overall wall-clock budget in seconds, split evenly across
     * the enabled strategies on top of their expansion budgets. Opt-in:
     * breaks bit-reproducibility (results then depend on machine speed).
     */
    double wallSeconds = 0.0;
};

/**
 * Race the portfolio from @p start.
 *
 * @param start Starting schedule.
 * @param rounds Memory-experiment rounds for the MaxSAT strategy's
 * circuit-level model.
 * @param opts PropHunt knobs: seed (shared by all strategies), cancel
 * flag, thread pool, and the MaxSAT strategy's own budgets.
 *
 * The result's snapshots end with the portfolio's best verified
 * schedule; per-strategy SearchStats land in searchReports.
 */
core::OptimizeResult runPortfolio(const circuit::SmSchedule &start,
                                  std::size_t rounds,
                                  const core::PropHuntOptions &opts,
                                  const PortfolioOptions &portfolio);

} // namespace prophunt::search

#endif // PROPHUNT_SEARCH_PORTFOLIO_H
