/**
 * @file
 * Search telemetry shared by every schedule-search strategy.
 *
 * This header is dependency-free so prophunt::core::OptimizeResult can
 * carry per-strategy reports without pulling the search subsystem into
 * the optimizer's include graph.
 */
#ifndef PROPHUNT_SEARCH_STATS_H
#define PROPHUNT_SEARCH_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace prophunt::search {

/** Sentinel objective for "no schedule found / invalid schedule". */
inline constexpr uint64_t kInvalidObjective = UINT64_MAX;

/**
 * Per-strategy search counters.
 *
 * Everything except the wall-clock fields is deterministic under an
 * expansion-count budget: two runs with the same seed and budgets must
 * produce bit-identical counters (tested in tests/search_test.cc).
 */
struct SearchStats
{
    /** Candidate schedules evaluated (beam neighbors, B&B nodes,
     * MaxSAT candidate changes enumerated). */
    uint64_t expansions = 0;
    /** Subtrees discarded because the admissible lower bound reached
     * the incumbent (B&B only; 0 for beam and MaxSAT). */
    uint64_t prunedByBound = 0;
    /** Candidates discarded as invalid: unschedulable, commutation
     * breaking, or failing ambiguity-removal verification. */
    uint64_t deadEnds = 0;
    /** Best propagation-weight objective reached (kInvalidObjective if
     * the strategy never produced a valid schedule). */
    uint64_t bestObjective = kInvalidObjective;
    /** Expansion count at which the first strict improvement over the
     * start schedule was recorded (0 = never improved). Deterministic
     * counterpart of timeToFirstImprovementUs. */
    uint64_t firstImprovementExpansions = 0;
    /** Wall-clock microseconds until the first strict improvement
     * (0 = never improved). Telemetry only — excluded from the
     * determinism contract. */
    uint64_t timeToFirstImprovementUs = 0;
    /** Total wall-clock microseconds spent in the strategy. Telemetry
     * only — excluded from the determinism contract. */
    uint64_t totalUs = 0;
    /**
     * Transposition-cache probes resolved/unresolved during this
     * strategy's run (both 0 when no cache was attached). Deterministic
     * under expansion budgets: strategies run serially and the MaxSAT
     * loop's parallel verification probes a frozen cache exactly once
     * per candidate, so the totals don't depend on thread interleaving.
     */
    uint64_t transpositionHits = 0;
    uint64_t transpositionMisses = 0;

    /** Expansion rate (telemetry only — derived from totalUs). */
    double
    expansionsPerSec() const
    {
        return totalUs == 0 ? 0.0
                            : (double)expansions * 1e6 / (double)totalUs;
    }
};

/** One strategy's outcome inside a portfolio run. */
struct StrategyReport
{
    /** Strategy name: "beam", "branch_bound", "maxsat". */
    std::string name;
    SearchStats stats;
    /** True iff the strategy's returned schedule passed verification
     * (commutation-valid, schedulable, never worse than start). */
    bool verified = false;
    /** True iff this strategy produced the portfolio's final schedule. */
    bool winner = false;
};

} // namespace prophunt::search

#endif // PROPHUNT_SEARCH_STATS_H
