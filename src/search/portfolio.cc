#include "search/portfolio.h"

#include <algorithm>
#include <chrono>

#include "search/incremental.h"
#include "search/transposition.h"

namespace prophunt::search {

namespace {

uint64_t
nowUs()
{
    return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The MaxSAT backend wrapped as a portfolio strategy: one PropHunt run,
 * its iteration telemetry folded into SearchStats. */
SearchOutcome
runMaxSatStrategy(const SearchContext &ctx, std::size_t rounds,
                  const core::PropHuntOptions &opts,
                  core::OptimizeResult &prophunt_out)
{
    SearchOutcome out(ctx.start);
    uint64_t t0 = nowUs();
    uint64_t hits0 = ctx.transpositions ? ctx.transpositions->hits() : 0;
    uint64_t misses0 =
        ctx.transpositions ? ctx.transpositions->misses() : 0;

    core::PropHuntOptions run_opts = opts;
    run_opts.cancel = ctx.cancel;
    run_opts.transpositions = ctx.transpositions;
    if (ctx.budget.wallSeconds > 0.0) {
        run_opts.wallSecondsBudget = ctx.budget.wallSeconds;
    }
    core::PropHunt tool(run_opts);
    prophunt_out = tool.optimize(ctx.start, rounds);
    out.schedule = prophunt_out.finalSchedule();

    bool improved = false;
    for (const core::IterationRecord &rec : prophunt_out.history) {
        out.stats.expansions +=
            rec.ambiguousFound + rec.candidatesEnumerated;
        out.stats.deadEnds +=
            rec.candidatesEnumerated - rec.changesVerified;
        if (!improved && rec.changesApplied > 0) {
            improved = true;
            out.stats.firstImprovementExpansions = out.stats.expansions;
            out.stats.timeToFirstImprovementUs = nowUs() - t0;
        }
    }
    out.stats.bestObjective =
        cachedEvaluate(ctx.objective, out.schedule, ctx.transpositions);
    out.stats.totalUs = nowUs() - t0;
    if (ctx.transpositions != nullptr) {
        out.stats.transpositionHits = ctx.transpositions->hits() - hits0;
        out.stats.transpositionMisses =
            ctx.transpositions->misses() - misses0;
    }
    return out;
}

} // namespace

core::OptimizeResult
runPortfolio(const circuit::SmSchedule &start, std::size_t rounds,
             const core::PropHuntOptions &opts,
             const PortfolioOptions &portfolio)
{
    ScheduleObjective objective(start.codePtr());
    TranspositionCache cache(portfolio.transpositionCapacity);
    TranspositionCache *cache_ptr = cache.enabled() ? &cache : nullptr;
    uint64_t start_obj = cachedEvaluate(objective, start, cache_ptr);

    std::size_t enabled = (portfolio.includeBeam ? 1 : 0) +
                          (portfolio.includeBranchBound ? 1 : 0) +
                          (portfolio.includeMaxSat ? 1 : 0);
    double wall_share =
        portfolio.wallSeconds > 0.0 && enabled > 0
            ? portfolio.wallSeconds / (double)enabled
            : 0.0;
    auto budgetFor = [&](SearchBudget b) {
        if (wall_share > 0.0 &&
            (b.wallSeconds == 0.0 || wall_share < b.wallSeconds)) {
            b.wallSeconds = wall_share;
        }
        return b;
    };

    core::OptimizeResult maxsat_outcome;
    std::vector<StrategyReport> reports;
    std::vector<circuit::SmSchedule> schedules;

    if (portfolio.includeBeam) {
        SearchContext ctx{start, objective,
                          budgetFor(portfolio.beamBudget), opts.seed,
                          opts.cancel, cache_ptr};
        SearchOutcome o = runBeamSearch(ctx, portfolio.beam);
        reports.push_back({"beam", o.stats, false, false});
        schedules.push_back(std::move(o.schedule));
    }
    if (portfolio.includeBranchBound) {
        SearchContext ctx{start, objective,
                          budgetFor(portfolio.bnbBudget), opts.seed,
                          opts.cancel, cache_ptr};
        SearchOutcome o = runBranchBound(ctx, portfolio.bnb);
        reports.push_back({"branch_bound", o.stats, false, false});
        schedules.push_back(std::move(o.schedule));
    }
    if (portfolio.includeMaxSat) {
        SearchContext ctx{start, objective,
                          SearchBudget{0, wall_share}, opts.seed,
                          opts.cancel, cache_ptr};
        SearchOutcome o =
            runMaxSatStrategy(ctx, rounds, opts, maxsat_outcome);
        reports.push_back({"maxsat", o.stats, false, false});
        schedules.push_back(std::move(o.schedule));
    }

    // Verify every strategy's schedule centrally and pick the winner:
    // minimum objective, ties to the earlier strategy. The start
    // schedule is the floor — the portfolio never returns worse.
    std::size_t winner = schedules.size();
    uint64_t winner_obj = start_obj;
    for (std::size_t i = 0; i < schedules.size(); ++i) {
        uint64_t obj = cachedEvaluate(objective, schedules[i], cache_ptr);
        reports[i].verified =
            obj != kInvalidObjective && obj <= start_obj;
        if (reports[i].verified && obj < winner_obj) {
            winner = i;
            winner_obj = obj;
        }
    }

    core::OptimizeResult result;
    if (portfolio.includeMaxSat) {
        result = std::move(maxsat_outcome);
    } else {
        result.snapshots.push_back(start);
    }
    if (winner < schedules.size()) {
        reports[winner].winner = true;
        if (!(result.snapshots.back() == schedules[winner])) {
            result.snapshots.push_back(std::move(schedules[winner]));
        }
    } else if (!(result.snapshots.back() == start)) {
        // No strategy beat the start schedule: fall back to it even if
        // the MaxSAT loop drifted to an objective-worse schedule.
        result.snapshots.push_back(start);
    }
    result.searchReports = std::move(reports);
    return result;
}

} // namespace prophunt::search
