/**
 * @file
 * The anytime search-strategy contract of the schedule-search subsystem.
 *
 * Every strategy minimizes the propagation-weight objective over schedule
 * space, starting from a given schedule, and is *anytime*: whenever the
 * budget expires (or the caller cancels) it returns the best schedule
 * found so far, never worse than the start.
 *
 * Determinism contract: with budget.wallSeconds == 0 (the default), a
 * strategy's outcome — schedule and all non-wall-clock SearchStats
 * fields — is a pure function of (start schedule, options, seed,
 * expansion budget). Wall-clock budgets are an explicit opt-in that
 * trades reproducibility for latency control.
 */
#ifndef PROPHUNT_SEARCH_STRATEGY_H
#define PROPHUNT_SEARCH_STRATEGY_H

#include <atomic>
#include <cstdint>

#include "circuit/schedule.h"
#include "search/objective.h"
#include "search/stats.h"

namespace prophunt::search {

/** Anytime budget. */
struct SearchBudget
{
    /** Maximum candidate evaluations (0 = unlimited). */
    uint64_t maxExpansions = 0;
    /** Wall-clock budget in seconds (0 = off). Opt-in: breaks the
     * bit-reproducibility contract. */
    double wallSeconds = 0.0;
};

class TranspositionCache;

/** Shared per-run inputs handed to every strategy. */
struct SearchContext
{
    const circuit::SmSchedule &start;
    const ScheduleObjective &objective;
    SearchBudget budget;
    uint64_t seed = 1;
    /** Optional caller-owned cancellation flag; checked between
     * expansions. */
    const std::atomic<bool> *cancel = nullptr;
    /** Optional portfolio-shared transposition cache (key -> packed
     * objective). Strategies probe before scoring and insert fresh
     * scores; hit/miss deltas land in SearchStats. */
    TranspositionCache *transpositions = nullptr;

    bool
    cancelled() const
    {
        return cancel != nullptr && cancel->load(std::memory_order_relaxed);
    }
};

/** Outcome of one strategy run. */
struct SearchOutcome
{
    /** Best schedule found (the start schedule if nothing better). */
    circuit::SmSchedule schedule;
    SearchStats stats;

    explicit SearchOutcome(circuit::SmSchedule s) : schedule(std::move(s))
    {
    }
};

} // namespace prophunt::search

#endif // PROPHUNT_SEARCH_STRATEGY_H
