#include "search/incremental.h"

#include <algorithm>

namespace prophunt::search {

void
enumerateMoves(const circuit::SmSchedule &sched, std::vector<Move> &out)
{
    out.clear();
    const code::CssCode &code = sched.code();
    for (std::size_t check = 0; check < code.numChecks(); ++check) {
        std::size_t w = sched.checkOrder(check).size();
        for (std::size_t from = 0; from < w; ++from) {
            for (std::size_t before = 0; before <= w; ++before) {
                if (before == from || before == from + 1) {
                    continue; // no-op positions
                }
                out.push_back({Move::Kind::Reorder, check, from, before});
            }
        }
    }
    for (std::size_t q = 0; q < code.n(); ++q) {
        const auto &order = sched.qubitOrder(q);
        for (std::size_t i = 0; i < order.size(); ++i) {
            for (std::size_t j = i + 1; j < order.size(); ++j) {
                out.push_back(
                    {Move::Kind::RelativeSwap, q, order[i], order[j]});
            }
        }
    }
}

circuit::SmSchedule
applyMove(const circuit::SmSchedule &sched, const Move &move)
{
    if (move.kind == Move::Kind::Reorder) {
        return sched.withReorder(move.a, move.b, move.c);
    }
    return sched.withRelativeSwap(move.a, move.b, move.c);
}

uint64_t
cachedEvaluate(const ScheduleObjective &objective,
               const circuit::SmSchedule &schedule,
               TranspositionCache *cache)
{
    if (cache == nullptr || !cache->enabled()) {
        return objective.evaluate(schedule);
    }
    uint64_t key = scheduleKey(schedule);
    uint64_t obj = 0;
    if (cache->lookup(key, obj)) {
        return obj;
    }
    obj = objective.evaluate(schedule);
    cache->insert(key, obj);
    return obj;
}

// ---------------------------------------------------------------------------
// Node helpers. Node ids are (check, position-in-check) slots laid out
// contiguously per check, so the chain predecessor/successor of a node
// is just node -/+ 1 within its check's range; the qubit
// predecessor/successor is the neighboring slot in qnodes_.

uint32_t
ObjectiveState::chainSucc(uint32_t v) const
{
    std::size_t c = checkOf_[v];
    return (std::size_t)v + 1 < base_[c + 1] ? v + 1 : kNone;
}

uint32_t
ObjectiveState::qubitSucc(uint32_t v) const
{
    const auto &qn = qnodes_[qubitOf_[v]];
    uint32_t qi = qindex_[v];
    return (std::size_t)qi + 1 < qn.size() ? qn[qi + 1] : kNone;
}

std::size_t
ObjectiveState::computeLevelOf(uint32_t v) const
{
    std::size_t lvl = 0;
    if ((std::size_t)v > base_[checkOf_[v]]) {
        lvl = (std::size_t)level_[v - 1] + 1;
    }
    uint32_t qi = qindex_[v];
    if (qi > 0) {
        uint32_t u = qnodes_[qubitOf_[v]][qi - 1];
        lvl = std::max(lvl, (std::size_t)level_[u] + 1);
    }
    return lvl;
}

// ---------------------------------------------------------------------------
// Journaling. Each cell is value-journaled at most once per move
// (epoch guard), so undo can restore in any order within a frame.

void
ObjectiveState::recordLevel(uint32_t v)
{
    if (levelEpoch_[v] != epoch_) {
        levelEpoch_[v] = epoch_;
        levelJournal_.push_back({v, level_[v]});
    }
}

void
ObjectiveState::recordEscape(uint32_t v)
{
    if (escapeEpoch_[v] != epoch_) {
        escapeEpoch_[v] = epoch_;
        escapeJournal_.push_back({v, escaped_[v]});
    }
}

void
ObjectiveState::markDirtyQubit(std::size_t q)
{
    if (qubitEpoch_[q] != epoch_) {
        qubitEpoch_[q] = epoch_;
        dirtyQubits_.push_back((uint32_t)q);
    }
}

void
ObjectiveState::seed(uint32_t v)
{
    if (v != kNone && !inPending_[v]) {
        inPending_[v] = 1;
        pending_.push_back(v);
    }
}

void
ObjectiveState::clearPending()
{
    for (uint32_t v : pending_) {
        inPending_[v] = 0;
    }
    pending_.clear();
}

// ---------------------------------------------------------------------------
// Timestep repair.

bool
ObjectiveState::repairLevels()
{
    while (!pending_.empty()) {
        uint32_t v = pending_.back();
        pending_.pop_back();
        inPending_[v] = 0;
        std::size_t nl = computeLevelOf(v);
        if (nl == level_[v]) {
            continue;
        }
        if (nl >= numNodes_) {
            // A longest path can't exceed numNodes_ - 1 in a DAG; the
            // worklist pumped a level around a cycle.
            cycle_ = true;
            clearPending();
            return false;
        }
        recordLevel(v);
        level_[v] = (uint32_t)nl;
        markDirtyQubit(qubitOf_[v]);
        seed(chainSucc(v));
        seed(qubitSucc(v));
    }
    return true;
}

void
ObjectiveState::fullRelevel()
{
    clearPending();
    indeg_.assign(numNodes_, 0);
    for (uint32_t v = 0; v < (uint32_t)numNodes_; ++v) {
        uint32_t cs = chainSucc(v);
        if (cs != kNone) {
            ++indeg_[cs];
        }
        uint32_t qs = qubitSucc(v);
        if (qs != kNone) {
            ++indeg_[qs];
        }
    }
    kahnQueue_.clear();
    for (uint32_t v = 0; v < (uint32_t)numNodes_; ++v) {
        if (indeg_[v] == 0) {
            kahnQueue_.push_back(v);
        }
    }
    std::size_t processed = 0;
    while (!kahnQueue_.empty()) {
        uint32_t v = kahnQueue_.back();
        kahnQueue_.pop_back();
        ++processed;
        std::size_t nl = computeLevelOf(v);
        if (nl != level_[v]) {
            recordLevel(v);
            level_[v] = (uint32_t)nl;
        }
        uint32_t cs = chainSucc(v);
        if (cs != kNone && --indeg_[cs] == 0) {
            kahnQueue_.push_back(cs);
        }
        uint32_t qs = qubitSucc(v);
        if (qs != kNone && --indeg_[qs] == 0) {
            kahnQueue_.push_back(qs);
        }
    }
    cycle_ = processed != numNodes_;
}

// ---------------------------------------------------------------------------
// Escape + depth.

void
ObjectiveState::recomputeEscapesOn(std::size_t q)
{
    const auto &qn = qnodes_[q];
    for (uint32_t v : qn) {
        std::size_t c = checkOf_[v];
        if ((std::size_t)v == base_[c]) {
            continue; // first CNOT of a check never escapes (j >= 1 only)
        }
        uint32_t landed = level_[v];
        uint8_t esc = 1;
        for (uint32_t u : qn) {
            if (u == v || isX_[checkOf_[u]] == isX_[c]) {
                continue;
            }
            if (level_[u] > landed) {
                esc = 0; // an opposite-type check reads q afterwards
                break;
            }
        }
        if (esc != escaped_[v]) {
            recordEscape(v);
            escapeTotal_ += esc;
            escapeTotal_ -= escaped_[v];
            escaped_[v] = esc;
        }
    }
}

void
ObjectiveState::recomputeDepth()
{
    uint32_t max_level = 0;
    for (uint32_t lvl : level_) {
        max_level = std::max(max_level, lvl);
    }
    depth_ = numNodes_ == 0 ? 0 : (std::size_t)max_level + 1;
}

// ---------------------------------------------------------------------------
// Commutation parity.

void
ObjectiveState::flipPair(std::size_t u, std::size_t v, bool journal)
{
    bool ux = isX_[u] != 0;
    bool vx = isX_[v] != 0;
    if (ux == vx) {
        return; // same-type pairs don't constrain commutation
    }
    std::size_t cx = ux ? u : v;
    std::size_t cz = ux ? v : u;
    std::size_t bit = cx * numZ_ + (cz - mx_);
    uint64_t mask = uint64_t(1) << (bit & 63);
    uint64_t &word = parity_[bit >> 6];
    oddPairs_ += (word & mask) ? -1 : 1;
    word ^= mask;
    if (journal) {
        parityJournal_.push_back(bit);
    }
}

// ---------------------------------------------------------------------------
// Order mutation + node-map remap (shared by apply and undo). The slot
// of a (check, qubit) pair within the qubit's order is invariant under
// reorders, so the remap reads each segment qubit's slot from the old
// node map, then rebinds it to the new node occupying that position.

std::size_t
ObjectiveState::reorderAndRemap(std::size_t check, std::size_t from_pos,
                                std::size_t before_pos)
{
    std::size_t dest = sched_->applyReorder(check, from_pos, before_pos);
    const auto &order = sched_->checkOrder(check);
    std::size_t lo = std::min(from_pos, dest);
    std::size_t hi = std::max(from_pos, dest);
    std::size_t b = base_[check];
    for (std::size_t p = lo; p <= hi; ++p) {
        uint32_t v = (uint32_t)(b + p);
        qSlotScratch_[qubitOf_[v]] = qindex_[v];
    }
    for (std::size_t p = lo; p <= hi; ++p) {
        uint32_t v = (uint32_t)(b + p);
        std::size_t q = order[p];
        uint32_t qi = qSlotScratch_[q];
        qubitOf_[v] = (uint32_t)q;
        qindex_[v] = qi;
        qnodes_[q][qi] = v;
    }
    return dest;
}

void
ObjectiveState::swapAndRemap(std::size_t qubit, std::size_t pos_a,
                             std::size_t pos_b)
{
    sched_->applySwapAt(qubit, pos_a, pos_b);
    auto &qn = qnodes_[qubit];
    std::swap(qn[pos_a], qn[pos_b]);
    qindex_[qn[pos_a]] = (uint32_t)pos_a;
    qindex_[qn[pos_b]] = (uint32_t)pos_b;
}

void
ObjectiveState::setOrderAndRemap(std::size_t check,
                                 std::vector<std::size_t> order)
{
    std::size_t b = base_[check];
    std::size_t w = order.size();
    for (std::size_t p = 0; p < w; ++p) {
        uint32_t v = (uint32_t)(b + p);
        qSlotScratch_[qubitOf_[v]] = qindex_[v];
    }
    sched_->setCheckOrder(check, std::move(order));
    const auto &o = sched_->checkOrder(check);
    for (std::size_t p = 0; p < w; ++p) {
        uint32_t v = (uint32_t)(b + p);
        std::size_t q = o[p];
        uint32_t qi = qSlotScratch_[q];
        qubitOf_[v] = (uint32_t)q;
        qindex_[v] = qi;
        qnodes_[q][qi] = v;
    }
}

// ---------------------------------------------------------------------------
// reset: full from-scratch load.

void
ObjectiveState::reset(const circuit::SmSchedule &schedule)
{
    sched_.emplace(schedule);
    const code::CssCode &code = schedule.code();
    m_ = code.numChecks();
    n_ = code.n();
    mx_ = code.numXChecks();
    numZ_ = m_ - mx_;

    base_.assign(m_ + 1, 0);
    for (std::size_t c = 0; c < m_; ++c) {
        base_[c + 1] = base_[c] + schedule.checkOrder(c).size();
    }
    numNodes_ = base_[m_];

    checkOf_.assign(numNodes_, 0);
    qubitOf_.assign(numNodes_, 0);
    isX_.assign(m_, 0);
    for (std::size_t c = 0; c < m_; ++c) {
        isX_[c] = code.isXCheck(c) ? 1 : 0;
        const auto &order = schedule.checkOrder(c);
        for (std::size_t k = 0; k < order.size(); ++k) {
            checkOf_[base_[c] + k] = (uint32_t)c;
            qubitOf_[base_[c] + k] = (uint32_t)order[k];
        }
    }
    qnodes_.assign(n_, {});
    qindex_.assign(numNodes_, 0);
    for (std::size_t q = 0; q < n_; ++q) {
        const auto &qorder = schedule.qubitOrder(q);
        qnodes_[q].reserve(qorder.size());
        for (std::size_t c : qorder) {
            uint32_t v = (uint32_t)(base_[c] + schedule.posInCheck(c, q));
            qindex_[v] = (uint32_t)qnodes_[q].size();
            qnodes_[q].push_back(v);
        }
    }

    // Scratch + journals.
    epoch_ = 0;
    pending_.clear();
    inPending_.assign(numNodes_, 0);
    levelEpoch_.assign(numNodes_, 0);
    escapeEpoch_.assign(numNodes_, 0);
    qubitEpoch_.assign(n_, 0);
    dirtyQubits_.clear();
    qSlotScratch_.assign(n_, 0);
    frames_.clear();
    levelJournal_.clear();
    escapeJournal_.clear();
    parityJournal_.clear();
    orderPool_.clear();

    // Levels (full Kahn; detects cycles).
    level_.assign(numNodes_, 0);
    ++epoch_;
    fullRelevel();
    stale_ = cycle_;

    // Commutation parity: one bit per X/Z pair, set iff the pair
    // crosses (X CNOT before Z CNOT) on an odd number of shared qubits.
    parity_.assign((mx_ * numZ_ + 63) / 64, 0);
    oddPairs_ = 0;
    for (std::size_t q = 0; q < n_; ++q) {
        const auto &qorder = schedule.qubitOrder(q);
        for (std::size_t i = 0; i < qorder.size(); ++i) {
            for (std::size_t j = i + 1; j < qorder.size(); ++j) {
                if (isX_[qorder[i]] && !isX_[qorder[j]]) {
                    flipPair(qorder[i], qorder[j], false);
                }
            }
        }
    }

    // Per-check damage and the component sub-hashes.
    damage_.assign(m_, 0);
    checkHash_.assign(m_, 0);
    qubitHash_.assign(n_, 0);
    hookTotal_ = 0;
    key_ = 0;
    for (std::size_t c = 0; c < m_; ++c) {
        damage_[c] = obj_.checkDamage(c, schedule.checkOrder(c));
        hookTotal_ += damage_[c];
        checkHash_[c] = checkOrderHash(c, schedule.checkOrder(c));
        key_ ^= checkHash_[c];
    }
    for (std::size_t q = 0; q < n_; ++q) {
        qubitHash_[q] = qubitOrderHash(q, schedule.qubitOrder(q));
        key_ ^= qubitHash_[q];
    }

    // Escapes + depth (meaningful only while acyclic).
    escaped_.assign(numNodes_, 0);
    escapeTotal_ = 0;
    depth_ = 0;
    if (!cycle_) {
        for (std::size_t q = 0; q < n_; ++q) {
            recomputeEscapesOn(q);
        }
        recomputeDepth();
    }
    levelJournal_.clear();
    escapeJournal_.clear();
}

// ---------------------------------------------------------------------------
// Apply / undo.

void
ObjectiveState::beginMove(Frame &frame, Frame::Op op)
{
    ++epoch_;
    dirtyQubits_.clear();
    frame.op = op;
    frame.key = key_;
    frame.hookTotal = hookTotal_;
    frame.escapeTotal = escapeTotal_;
    frame.depth = depth_;
    frame.oddPairs = oddPairs_;
    frame.cycle = cycle_;
    frame.stale = stale_;
    frame.levelMark = levelJournal_.size();
    frame.escapeMark = escapeJournal_.size();
    frame.parityMark = parityJournal_.size();
}

uint64_t
ObjectiveState::finishApply(Frame frame)
{
    if (stale_) {
        // Levels have been unusable since a cycle appeared; run the
        // journaled no-allocation Kahn pass. On recovery every qubit is
        // treated dirty — escapes were frozen while the state was
        // invalid.
        fullRelevel();
        if (!cycle_) {
            stale_ = false;
            for (std::size_t q = 0; q < n_; ++q) {
                recomputeEscapesOn(q);
            }
            recomputeDepth();
        }
    } else if (repairLevels()) {
        for (uint32_t q : dirtyQubits_) {
            recomputeEscapesOn(q);
        }
        recomputeDepth();
    } else {
        stale_ = true; // repairLevels found a cycle
    }
    frames_.push_back(frame);
    return objective();
}

uint64_t
ObjectiveState::apply(const Move &move)
{
    if (move.kind == Move::Kind::Reorder) {
        return applyReorder(move.a, move.b, move.c);
    }
    return applyRelativeSwap(move.a, move.b, move.c);
}

uint64_t
ObjectiveState::applyReorder(std::size_t check, std::size_t from_pos,
                             std::size_t before_pos)
{
    Frame frame;
    beginMove(frame, Frame::Op::Reorder);
    frame.oldDamage = damage_[check];
    frame.oldSubHash = checkHash_[check];

    std::size_t dest = reorderAndRemap(check, from_pos, before_pos);
    frame.a = check;
    frame.b = dest;
    frame.c = from_pos < dest ? from_pos : from_pos + 1;

    const auto &order = sched_->checkOrder(check);
    uint64_t nh = checkOrderHash(check, order);
    key_ ^= frame.oldSubHash ^ nh;
    checkHash_[check] = nh;
    uint64_t nd = obj_.checkDamage(check, order);
    hookTotal_ += nd;
    hookTotal_ -= frame.oldDamage;
    damage_[check] = nd;

    std::size_t lo = std::min(from_pos, dest);
    std::size_t hi = std::max(from_pos, dest);
    for (std::size_t p = lo; p <= hi; ++p) {
        uint32_t v = (uint32_t)(base_[check] + p);
        seed(v);
        seed(qubitSucc(v));
        markDirtyQubit(order[p]);
    }
    return finishApply(frame);
}

uint64_t
ObjectiveState::applyRelativeSwap(std::size_t qubit, std::size_t check_a,
                                  std::size_t check_b)
{
    Frame frame;
    beginMove(frame, Frame::Op::Swap);
    frame.oldSubHash = qubitHash_[qubit];

    const auto &qorder = sched_->qubitOrder(qubit);
    std::size_t ia = sched_->posOnQubit(qubit, check_a);
    std::size_t ib = sched_->posOnQubit(qubit, check_b);
    if (ia > ib) {
        std::swap(ia, ib);
    }
    frame.a = qubit;
    frame.b = ia;
    frame.c = ib;

    // Crossing parity flips for every opposite-type pair whose relative
    // order on this qubit flips: the endpoints against everything
    // strictly between them, plus the endpoint pair itself.
    std::size_t ca = qorder[ia];
    std::size_t cb = qorder[ib];
    for (std::size_t p = ia + 1; p < ib; ++p) {
        flipPair(ca, qorder[p], true);
        flipPair(qorder[p], cb, true);
    }
    flipPair(ca, cb, true);

    swapAndRemap(qubit, ia, ib);

    uint64_t nh = qubitOrderHash(qubit, sched_->qubitOrder(qubit));
    key_ ^= frame.oldSubHash ^ nh;
    qubitHash_[qubit] = nh;

    const auto &qn = qnodes_[qubit];
    seed(qn[ia]);
    seed(qn[ib]);
    if (ia + 1 < qn.size()) {
        seed(qn[ia + 1]);
    }
    if (ib + 1 < qn.size()) {
        seed(qn[ib + 1]);
    }
    markDirtyQubit(qubit);
    return finishApply(frame);
}

uint64_t
ObjectiveState::applyCheckOrder(std::size_t check,
                                const std::vector<std::size_t> &order)
{
    Frame frame;
    beginMove(frame, Frame::Op::SetOrder);
    frame.oldDamage = damage_[check];
    frame.oldSubHash = checkHash_[check];
    frame.a = check;
    frame.b = orderPool_.size();
    frame.c = order.size();

    const auto &old_order = sched_->checkOrder(check);
    orderPool_.insert(orderPool_.end(), old_order.begin(),
                      old_order.end());
    setOrderAndRemap(check, order);

    const auto &o = sched_->checkOrder(check);
    uint64_t nh = checkOrderHash(check, o);
    key_ ^= frame.oldSubHash ^ nh;
    checkHash_[check] = nh;
    uint64_t nd = obj_.checkDamage(check, o);
    hookTotal_ += nd;
    hookTotal_ -= frame.oldDamage;
    damage_[check] = nd;

    for (std::size_t p = 0; p < o.size(); ++p) {
        uint32_t v = (uint32_t)(base_[check] + p);
        seed(v);
        seed(qubitSucc(v));
        markDirtyQubit(o[p]);
    }
    return finishApply(frame);
}

void
ObjectiveState::undo()
{
    Frame frame = frames_.back();
    frames_.pop_back();

    while (levelJournal_.size() > frame.levelMark) {
        const LevelEntry &e = levelJournal_.back();
        level_[e.node] = e.level;
        levelJournal_.pop_back();
    }
    while (escapeJournal_.size() > frame.escapeMark) {
        const EscapeEntry &e = escapeJournal_.back();
        escaped_[e.node] = e.escaped;
        escapeJournal_.pop_back();
    }
    while (parityJournal_.size() > frame.parityMark) {
        std::size_t bit = parityJournal_.back();
        parityJournal_.pop_back();
        parity_[bit >> 6] ^= uint64_t(1) << (bit & 63);
    }

    switch (frame.op) {
    case Frame::Op::Reorder:
        reorderAndRemap(frame.a, frame.b, frame.c);
        damage_[frame.a] = frame.oldDamage;
        checkHash_[frame.a] = frame.oldSubHash;
        break;
    case Frame::Op::Swap:
        swapAndRemap(frame.a, frame.b, frame.c);
        qubitHash_[frame.a] = frame.oldSubHash;
        break;
    case Frame::Op::SetOrder: {
        std::vector<std::size_t> old(
            orderPool_.begin() + (long)frame.b,
            orderPool_.begin() + (long)(frame.b + frame.c));
        orderPool_.resize(frame.b);
        setOrderAndRemap(frame.a, std::move(old));
        damage_[frame.a] = frame.oldDamage;
        checkHash_[frame.a] = frame.oldSubHash;
        break;
    }
    }

    key_ = frame.key;
    hookTotal_ = frame.hookTotal;
    escapeTotal_ = frame.escapeTotal;
    depth_ = frame.depth;
    oddPairs_ = frame.oddPairs;
    cycle_ = frame.cycle;
    stale_ = frame.stale;
}

// ---------------------------------------------------------------------------
// Reads.

uint64_t
ObjectiveState::objective() const
{
    return ScheduleObjective::pack(terms());
}

ObjectiveTerms
ObjectiveState::terms() const
{
    ObjectiveTerms t;
    if (cycle_ || oddPairs_ != 0) {
        return t; // zeros + valid=false, matching the oracle
    }
    t.valid = true;
    t.hookAlignment = hookTotal_;
    t.sameRoundEscape = escapeTotal_;
    t.depth = depth_;
    return t;
}

uint64_t
ObjectiveState::keyAfter(const Move &move) const
{
    if (move.kind == Move::Kind::Reorder) {
        keyScratch_ = sched_->checkOrder(move.a);
        std::size_t q = keyScratch_[move.b];
        keyScratch_.erase(keyScratch_.begin() + (long)move.b);
        std::size_t dest = move.c - (move.b < move.c ? 1 : 0);
        keyScratch_.insert(keyScratch_.begin() + (long)dest, q);
        return key_ ^ checkHash_[move.a] ^
               checkOrderHash(move.a, keyScratch_);
    }
    keyScratch_ = sched_->qubitOrder(move.a);
    for (std::size_t &c : keyScratch_) {
        if (c == move.b) {
            c = move.c;
        } else if (c == move.c) {
            c = move.b;
        }
    }
    return key_ ^ qubitHash_[move.a] ^
           qubitOrderHash(move.a, keyScratch_);
}

uint64_t
ObjectiveState::keyAfterCheckOrder(
    std::size_t check, const std::vector<std::size_t> &order) const
{
    return key_ ^ checkHash_[check] ^ checkOrderHash(check, order);
}

} // namespace prophunt::search
