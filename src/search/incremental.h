/**
 * @file
 * Incremental evaluation of the propagation-weight objective: the
 * search hot loop's apply/undo state.
 *
 * Every strategy expansion used to pay O(full schedule): a deep
 * SmSchedule copy, a from-scratch Kahn layering, an all-checks damage
 * sweep, a readTime rebuild for same-round escape, and a full re-hash
 * for the dedup key. ObjectiveState replaces that with move-scoped
 * deltas:
 *
 *  - **Damage** is separable per check, so a reorder re-scores exactly
 *    one check and a relative swap none.
 *  - **Timesteps** are repaired by a worklist over the dependency cone
 *    of the move. Each CNOT node has at most two predecessors (previous
 *    CNOT of its check, previous CNOT on its data qubit), so the
 *    repair touches only nodes whose longest path actually changed. A
 *    level pumped past the node count proves a precedence cycle.
 *  - **Escape** of a CNOT depends only on the timesteps of the CNOTs
 *    sharing its data qubit, so only "dirty" qubits — those in the
 *    move's segment or holding a relevelled node — are re-scanned.
 *  - **Commutation parity** is a bit per X/Z check pair; a relative
 *    swap flips exactly the pairs whose relative order on that qubit
 *    flipped, and reorders never touch it.
 *  - **The schedule key** is the XOR of per-component sub-hashes
 *    (search/objective.h), so a move re-mixes one component — and
 *    keyAfter() prices a candidate's key *without applying it*, which
 *    is what makes probe-before-apply transposition caching free.
 *
 * Undo is exact, by journaling: every level/escape/parity cell is
 * value-journaled on first touch per move, scalars are snapshotted per
 * frame, and the order mutation is inverted structurally. While a
 * schedule is cyclic the layering is unusable; the state goes *stale*
 * and each subsequent apply runs a full (allocation-free, journaled)
 * Kahn pass until acyclicity returns — B&B descends through such
 * states, since a later check's permutation can break the cycle.
 *
 * evaluateTerms stays the bit-identical reference oracle;
 * tests/search_incremental_test.cc fuzzes the equivalence over random
 * apply/undo sequences.
 */
#ifndef PROPHUNT_SEARCH_INCREMENTAL_H
#define PROPHUNT_SEARCH_INCREMENTAL_H

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/schedule.h"
#include "search/objective.h"
#include "search/transposition.h"

namespace prophunt::search {

/** One schedule move: the optimizer's two change families. */
struct Move
{
    enum class Kind { Reorder, RelativeSwap };
    Kind kind = Kind::Reorder;
    std::size_t a = 0; // check (reorder) / qubit (swap)
    std::size_t b = 0; // from_pos / check_a
    std::size_t c = 0; // before_pos / check_b
};

/** All single moves of a schedule, in a fixed deterministic order,
 * into a caller-reused buffer (cleared first). */
void enumerateMoves(const circuit::SmSchedule &sched,
                    std::vector<Move> &out);

/** Copying application of one move (the pre-incremental path; still
 * used to materialize winners and as the fuzz/bench reference). */
circuit::SmSchedule applyMove(const circuit::SmSchedule &sched,
                              const Move &move);

/** Evaluate through the transposition cache: probe by scheduleKey,
 * fall back to the oracle and insert on miss. cache == nullptr (or
 * disabled) degrades to a plain evaluate. */
uint64_t cachedEvaluate(const ScheduleObjective &objective,
                        const circuit::SmSchedule &schedule,
                        TranspositionCache *cache);

/**
 * Reusable incremental evaluator. reset() loads a schedule from
 * scratch; apply*() mutates it in place, returning the new packed
 * objective (kInvalidObjective for unschedulable or
 * commutation-breaking states) and pushing an undo frame; undo() pops
 * one frame exactly. No allocation on the apply/undo path once the
 * internal buffers are warm.
 */
class ObjectiveState
{
  public:
    explicit ObjectiveState(const ScheduleObjective &objective)
        : obj_(objective)
    {
    }

    /** Load @p schedule from scratch, clearing the undo stack. */
    void reset(const circuit::SmSchedule &schedule);

    uint64_t apply(const Move &move);
    uint64_t applyReorder(std::size_t check, std::size_t from_pos,
                          std::size_t before_pos);
    uint64_t applyRelativeSwap(std::size_t qubit, std::size_t check_a,
                               std::size_t check_b);
    /** Replace one check's CNOT order (B&B child assignment). @p order
     * must be a permutation of the current order. */
    uint64_t applyCheckOrder(std::size_t check,
                             const std::vector<std::size_t> &order);

    /** Revert the most recent un-undone apply. Exact: the state is
     * bit-identical to before that apply. */
    void undo();
    /** Number of applies available to undo. */
    std::size_t framesApplied() const { return frames_.size(); }

    /** Packed objective of the current schedule. */
    uint64_t objective() const;
    /** Term breakdown (zeros + valid=false when invalid, matching the
     * oracle). */
    ObjectiveTerms terms() const;
    /** Dedup/tie-break key of the current schedule (== scheduleKey). */
    uint64_t key() const { return key_; }
    bool valid() const { return !cycle_ && oddPairs_ == 0; }
    const circuit::SmSchedule &schedule() const { return *sched_; }

    /** Key the schedule would have after @p move, without applying it —
     * the probe-before-apply entry point of the transposition cache. */
    uint64_t keyAfter(const Move &move) const;
    /** Same for a full check-order replacement. */
    uint64_t keyAfterCheckOrder(std::size_t check,
                                const std::vector<std::size_t> &order) const;

  private:
    static constexpr uint32_t kNone = UINT32_MAX;

    struct LevelEntry
    {
        uint32_t node;
        uint32_t level;
    };
    struct EscapeEntry
    {
        uint32_t node;
        uint8_t escaped;
    };
    /** Undo frame: scalar snapshot + journal watermarks + the inverse
     * order operation. */
    struct Frame
    {
        enum class Op : uint8_t { Reorder, Swap, SetOrder };
        Op op;
        std::size_t a = 0; // check / qubit
        std::size_t b = 0; // inverse from_pos / pos_a / pool offset
        std::size_t c = 0; // inverse before_pos / pos_b / order length
        uint64_t key = 0;
        uint64_t hookTotal = 0;
        uint64_t escapeTotal = 0;
        std::size_t depth = 0;
        std::size_t oddPairs = 0;
        bool cycle = false;
        bool stale = false;
        uint64_t oldDamage = 0;
        uint64_t oldSubHash = 0;
        std::size_t levelMark = 0;
        std::size_t escapeMark = 0;
        std::size_t parityMark = 0;
    };

    uint32_t chainSucc(uint32_t v) const;
    uint32_t qubitSucc(uint32_t v) const;
    std::size_t computeLevelOf(uint32_t v) const;

    void beginMove(Frame &frame, Frame::Op op);
    uint64_t finishApply(Frame frame);
    void seed(uint32_t v);
    void clearPending();
    void markDirtyQubit(std::size_t q);
    void recordLevel(uint32_t v);
    void recordEscape(uint32_t v);
    bool repairLevels();
    void fullRelevel();
    void recomputeEscapesOn(std::size_t q);
    void recomputeDepth();
    void flipPair(std::size_t u, std::size_t v, bool journal);

    /** Order mutation + node-map remap, shared by apply and undo.
     * Returns the moved qubit's destination position. */
    std::size_t reorderAndRemap(std::size_t check, std::size_t from_pos,
                                std::size_t before_pos);
    void swapAndRemap(std::size_t qubit, std::size_t pos_a,
                      std::size_t pos_b);
    void setOrderAndRemap(std::size_t check,
                          std::vector<std::size_t> order);

    const ScheduleObjective &obj_;
    std::optional<circuit::SmSchedule> sched_;

    std::size_t m_ = 0;
    std::size_t n_ = 0;
    std::size_t mx_ = 0;
    std::size_t numZ_ = 0;
    std::size_t numNodes_ = 0;
    std::vector<std::size_t> base_;   // base_[c] = first node id of check c
    std::vector<uint32_t> checkOf_;   // node -> check
    std::vector<uint32_t> qubitOf_;   // node -> data qubit
    std::vector<uint32_t> level_;     // node -> timestep
    std::vector<uint8_t> escaped_;    // node -> same-round escape (k>=1)
    std::vector<uint32_t> qindex_;    // node -> slot in its qubit's order
    std::vector<std::vector<uint32_t>> qnodes_; // qubit -> nodes in order
    std::vector<uint8_t> isX_;        // check -> X type
    std::vector<uint64_t> damage_;    // check -> hook damage
    std::vector<uint64_t> checkHash_; // per-component sub-hashes
    std::vector<uint64_t> qubitHash_;
    std::vector<uint64_t> parity_;    // X/Z pair crossing-parity bits
    std::size_t oddPairs_ = 0;

    uint64_t key_ = 0;
    uint64_t hookTotal_ = 0;
    uint64_t escapeTotal_ = 0;
    std::size_t depth_ = 0;
    bool cycle_ = false;
    /** Levels unusable since a cycle appeared; applies run fullRelevel
     * until acyclicity returns. */
    bool stale_ = false;

    std::vector<LevelEntry> levelJournal_;
    std::vector<EscapeEntry> escapeJournal_;
    std::vector<uint64_t> parityJournal_;
    std::vector<std::size_t> orderPool_;
    std::vector<Frame> frames_;

    // Per-move scratch (epoch-guarded; no clearing between moves).
    uint32_t epoch_ = 0;
    std::vector<uint32_t> pending_;
    std::vector<uint8_t> inPending_;
    std::vector<uint32_t> levelEpoch_;
    std::vector<uint32_t> escapeEpoch_;
    std::vector<uint32_t> qubitEpoch_;
    std::vector<uint32_t> dirtyQubits_;
    std::vector<uint32_t> qSlotScratch_;
    std::vector<uint8_t> indeg_;
    std::vector<uint32_t> kahnQueue_;
    mutable std::vector<std::size_t> keyScratch_;
};

} // namespace prophunt::search

#endif // PROPHUNT_SEARCH_INCREMENTAL_H
