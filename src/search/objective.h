/**
 * @file
 * The propagation-weight objective the schedule-search strategies
 * minimize.
 *
 * The paper's expensive quality signal (circuit-level effective distance
 * via subgraph MaxSAT solves) is replaced here by a deterministic O(CNOTs)
 * proxy built from the same hook-error propagation analysis (Sections 2-3):
 *
 *  - **Hook alignment.** An ancilla fault between the CNOTs of a weight-w
 *    check propagates onto the suffix of the check's CNOT order. Modulo
 *    the stabilizer, the damage of a cut is the smaller of the suffix and
 *    its complement; a cut is harmful exactly when that set covers two or
 *    more qubits of one logical-operator support (k qubits of a logical
 *    for the price of one fault = k-1 free steps, the mechanism that
 *    halves the effective distance of the "poor" surface schedule). Per
 *    check, damage depends only on that check's own CNOT permutation, so
 *    it is separable — the property branch-and-bound's lower bound uses.
 *
 *  - **Same-round escape.** A propagated data error landing on qubit q at
 *    timestep t is caught this round only if some opposite-type check
 *    reads q after t; otherwise detection slips to the next round and the
 *    space-time error diagonal lengthens. This term depends on the full
 *    timestep layering, so rescheduling (relative-order) moves affect it.
 *
 *  - **Depth.** The paper's secondary target, as a final tie-breaker.
 *
 * The scalar objective packs the three terms with fixed radix weights so
 * comparisons are exact integer comparisons: hook alignment dominates,
 * then escape, then depth. Lower is better.
 */
#ifndef PROPHUNT_SEARCH_OBJECTIVE_H
#define PROPHUNT_SEARCH_OBJECTIVE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "circuit/schedule.h"
#include "search/stats.h"

namespace prophunt::search {

/** Term breakdown of one evaluation (for tests and reports). */
struct ObjectiveTerms
{
    uint64_t hookAlignment = 0;
    uint64_t sameRoundEscape = 0;
    uint64_t depth = 0;
    /** False for unschedulable or commutation-breaking schedules. */
    bool valid = false;
};

/**
 * Evaluator of the propagation-weight objective over one CSS code.
 *
 * Immutable after construction and safe to share between strategies; the
 * per-check minimum-damage table (the B&B relaxation) is precomputed
 * lazily per check and memoized.
 */
class ScheduleObjective
{
  public:
    /** Radix weights packing (hookAlignment, escape, depth) into one
     * uint64. Escape and depth saturate at their field width, keeping
     * the packing a valid (if then coarser) total order. */
    static constexpr uint64_t kAlignWeight = uint64_t(1) << 28;
    static constexpr uint64_t kEscapeWeight = uint64_t(1) << 14;
    static constexpr uint64_t kEscapeMax = (uint64_t(1) << 14) - 1;
    static constexpr uint64_t kDepthMax = (uint64_t(1) << 14) - 1;

    /** Per-check exact minimum-damage enumeration bound: supports wider
     * than this get the trivially admissible bound 0. */
    static constexpr std::size_t kExactPermWidth = 7;

    explicit ScheduleObjective(
        std::shared_ptr<const code::CssCode> code);

    /** Non-copyable: damageRows_ holds pointers into logicalMask_.
     * Strategies share one evaluator by reference anyway. */
    ScheduleObjective(const ScheduleObjective &) = delete;
    ScheduleObjective &operator=(const ScheduleObjective &) = delete;

    const code::CssCode &code() const { return *code_; }

    /** Full objective; kInvalidObjective for invalid schedules. */
    uint64_t evaluate(const circuit::SmSchedule &schedule) const;

    /** Term breakdown (same validity rules as evaluate). */
    ObjectiveTerms evaluateTerms(const circuit::SmSchedule &schedule) const;

    /** Pack terms into the scalar objective. */
    static uint64_t pack(const ObjectiveTerms &terms);

    /** Depth recovered from a packed objective, or nullopt when it is
     * not recoverable: the objective is invalid, or the depth field
     * saturated at kDepthMax (the packing is lossy there). */
    static std::optional<uint64_t> unpackDepth(uint64_t objective);

    /** Hook-alignment damage of one check under one CNOT order.
     * Precondition: @p order is a permutation of the check's support
     * (the overlap table is memoized against it at construction). */
    uint64_t checkDamage(std::size_t check,
                         const std::vector<std::size_t> &order) const;

    /**
     * Admissible lower bound on checkDamage over all permutations of the
     * check's support: exact (enumerated, memoized) when the support is
     * at most kExactPermWidth wide, else 0.
     */
    uint64_t minCheckDamage(std::size_t check) const;

    /** Exact maximum of checkDamage over all permutations (same width
     * rule; wide checks report the damage of the natural order). Used
     * only to rank branching variables, never as a bound. */
    uint64_t maxCheckDamage(std::size_t check) const;

    /**
     * Admissible lower bound on one round's CNOT depth from per-check
     * and per-qubit load relaxations: every check's CNOTs are serial,
     * and two CNOTs on one data qubit never share a timestep, so
     * depth >= max(max check weight, max qubit degree) for every
     * permutation assignment.
     */
    uint64_t depthLoadBound() const;

  private:
    void enumerateDamage(std::size_t check) const;

    /** One logical row relevant to a check's damage: a dense membership
     * mask over qubits plus the row's full overlap with the check's
     * support. Rows with full overlap < 2 can never contribute damage
     * and are dropped at construction. */
    struct DamageRow
    {
        const uint8_t *mask;
        uint64_t full;
    };

    std::shared_ptr<const code::CssCode> code_;
    /** Logical supports as dense membership masks: logicalMask_[f][r][q],
     * f = 0 for X-type logicals (lx), 1 for Z-type (lz). */
    std::vector<std::vector<std::vector<uint8_t>>> logicalMask_;
    /** For each data qubit, the opposite-type... (see .cc): detector
     * checks per (error type): detectors_[f][q] = checks of the type
     * that detects f-type data errors containing q. */
    std::vector<std::vector<std::vector<std::size_t>>> detectors_;
    /** Memoized per-check damage extrema (kInvalidObjective = unset). */
    mutable std::vector<uint64_t> minDamage_;
    mutable std::vector<uint64_t> maxDamage_;
    /** Schedule-independent per-check damage rows (satellite of the
     * incremental-evaluation PR): the full[r] overlap counts used to be
     * recomputed on every checkDamage call, including inside
     * enumerateDamage's w! loop. */
    std::vector<std::vector<DamageRow>> damageRows_;
    uint64_t depthLoadBound_ = 0;
};

/**
 * Component sub-hashes of the schedule dedup/tie-break key.
 *
 * The key of a schedule is the XOR of one finalized sub-hash per check
 * order and per qubit order, so a move re-mixes only the touched
 * component: key' = key ^ old_subhash ^ new_subhash. Each sub-hash is
 * the FNV-1a of the component's tag + entries pushed through a SplitMix64
 * finalizer (XOR of raw FNV states would correlate; the finalizer makes
 * the per-component hashes independent). Deterministic across processes.
 */
uint64_t checkOrderHash(std::size_t check,
                        const std::vector<std::size_t> &order);
uint64_t qubitOrderHash(std::size_t qubit,
                        const std::vector<std::size_t> &order);

/** XOR of all component sub-hashes — the dedup/tie-break key used by
 * the search strategies and the transposition cache. */
uint64_t scheduleKey(const circuit::SmSchedule &schedule);

} // namespace prophunt::search

#endif // PROPHUNT_SEARCH_OBJECTIVE_H
