/**
 * @file
 * Anytime beam search over schedule space.
 *
 * States are whole schedules; moves are the optimizer's two change
 * families (reorder within a check, relative-order swap on a data qubit).
 * Each iteration expands every beam state's neighborhood, scores the
 * candidates with the propagation-weight objective, and keeps the best
 * `width` distinct schedules. Ties break deterministically on
 * (objective, scheduleKey, generation order), so runs are bit-identical
 * under an expansion-count budget.
 */
#ifndef PROPHUNT_SEARCH_BEAM_H
#define PROPHUNT_SEARCH_BEAM_H

#include "search/strategy.h"

namespace prophunt::search {

struct BeamOptions
{
    /** Beam width (surviving states per iteration). */
    std::size_t width = 8;
    /**
     * Per-state neighborhood cap. When a state has more valid moves than
     * this, a deterministic seed-driven subsample is expanded instead —
     * the knob that keeps wide codes inside the expansion budget.
     * 0 = expand every move.
     */
    std::size_t maxNeighborsPerState = 0;
    /** Stop after this many consecutive iterations without a strict
     * improvement of the best objective. */
    std::size_t patience = 4;
    /** Hard iteration cap (0 = run until budget/patience). */
    std::size_t maxIterations = 0;
    /**
     * FIFO cap on the visited-key dedup set (0 = unbounded). Within the
     * window dedup is exact; beyond it the oldest keys are forgotten
     * and may be revisited — bounding memory on long runs. The default
     * covers any expansion budget the portfolio uses.
     */
    std::size_t visitedWindow = std::size_t(1) << 16;
};

/** Run beam search. Anytime: returns best-so-far on budget expiry. */
SearchOutcome runBeamSearch(const SearchContext &ctx,
                            const BeamOptions &options);

} // namespace prophunt::search

#endif // PROPHUNT_SEARCH_BEAM_H
