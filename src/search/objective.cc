#include "search/objective.h"

#include <algorithm>

namespace prophunt::search {

namespace {

/** Family index of the data-error type a check's ancilla faults produce:
 * X checks (ancilla as CNOT control) spread X errors, Z checks spread Z.
 * X data errors align with X-type logical supports and are detected by
 * Z checks; dually for Z. */
constexpr std::size_t kXErrors = 0;
constexpr std::size_t kZErrors = 1;

std::size_t
errorFamily(const code::CssCode &code, std::size_t check)
{
    return code.isXCheck(check) ? kXErrors : kZErrors;
}

} // namespace

ScheduleObjective::ScheduleObjective(
    std::shared_ptr<const code::CssCode> code)
    : code_(std::move(code))
{
    std::size_t n = code_->n();
    logicalMask_.resize(2);
    const gf2::Matrix *logicals[2] = {&code_->lx(), &code_->lz()};
    for (std::size_t f = 0; f < 2; ++f) {
        const gf2::Matrix &l = *logicals[f];
        logicalMask_[f].resize(l.rows());
        for (std::size_t r = 0; r < l.rows(); ++r) {
            logicalMask_[f][r].assign(n, 0);
            for (std::size_t q = 0; q < n; ++q) {
                logicalMask_[f][r][q] = l.get(r, q) ? 1 : 0;
            }
        }
    }

    // detectors_[kXErrors][q] = Z checks containing q; dually for Z.
    detectors_.resize(2);
    detectors_[kXErrors].resize(n);
    detectors_[kZErrors].resize(n);
    std::size_t m = code_->numChecks();
    std::vector<std::size_t> degree(n, 0);
    std::size_t max_weight = 0;
    for (std::size_t c = 0; c < m; ++c) {
        std::vector<std::size_t> support = code_->checkSupport(c);
        max_weight = std::max(max_weight, support.size());
        for (std::size_t q : support) {
            ++degree[q];
            if (code_->isXCheck(c)) {
                detectors_[kZErrors][q].push_back(c);
            } else {
                detectors_[kXErrors][q].push_back(c);
            }
        }
    }
    std::size_t max_degree = 0;
    for (std::size_t q = 0; q < n; ++q) {
        max_degree = std::max(max_degree, degree[q]);
    }
    depthLoadBound_ = std::min<uint64_t>(
        std::max<uint64_t>(max_weight, max_degree), kDepthMax);

    minDamage_.assign(m, kInvalidObjective);
    maxDamage_.assign(m, kInvalidObjective);

    // Per-check damage rows: full[r] depends only on the check's support
    // (every order checkDamage sees is a permutation of it), so memoize
    // it once and drop rows whose full overlap can never reach 2.
    damageRows_.resize(m);
    for (std::size_t c = 0; c < m; ++c) {
        const auto &masks = logicalMask_[errorFamily(*code_, c)];
        std::vector<std::size_t> support = code_->checkSupport(c);
        for (const auto &mask : masks) {
            uint64_t full = 0;
            for (std::size_t q : support) {
                full += mask[q];
            }
            if (full >= 2) {
                damageRows_[c].push_back({mask.data(), full});
            }
        }
    }
}

uint64_t
ScheduleObjective::checkDamage(std::size_t check,
                               const std::vector<std::size_t> &order) const
{
    const auto &rows = damageRows_[check];
    if (rows.empty() || order.size() < 2) {
        return 0;
    }
    std::size_t w = order.size();
    uint64_t total = 0;
    // overlap[r] tracks |prefix(k) ∩ L_r|; the suffix overlap is the
    // row's memoized full-support overlap minus it.
    static thread_local std::vector<uint64_t> overlap;
    overlap.assign(rows.size(), 0);
    for (std::size_t k = 1; k < w; ++k) {
        uint64_t dmg_prefix = 0;
        uint64_t dmg_suffix = 0;
        for (std::size_t r = 0; r < rows.size(); ++r) {
            overlap[r] += rows[r].mask[order[k - 1]];
            uint64_t pre = overlap[r];
            uint64_t suf = rows[r].full - overlap[r];
            if (pre >= 2) {
                dmg_prefix = std::max(dmg_prefix, pre - 1);
            }
            if (suf >= 2) {
                dmg_suffix = std::max(dmg_suffix, suf - 1);
            }
        }
        // The physical error is the suffix; modulo the stabilizer it is
        // equivalent to the prefix. Both representations are available
        // to a min-weight logical error, so the cut's damage is the
        // more harmful of the two.
        total += std::max(dmg_prefix, dmg_suffix);
    }
    return total;
}

void
ScheduleObjective::enumerateDamage(std::size_t check) const
{
    std::vector<std::size_t> support = code_->checkSupport(check);
    if (support.size() > kExactPermWidth) {
        // Trivially admissible: damage is a sum of non-negative terms.
        minDamage_[check] = 0;
        maxDamage_[check] = checkDamage(check, support);
        return;
    }
    std::sort(support.begin(), support.end());
    uint64_t lo = kInvalidObjective;
    uint64_t hi = 0;
    do {
        uint64_t d = checkDamage(check, support);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    } while (std::next_permutation(support.begin(), support.end()));
    minDamage_[check] = lo;
    maxDamage_[check] = hi;
}

uint64_t
ScheduleObjective::minCheckDamage(std::size_t check) const
{
    if (minDamage_[check] == kInvalidObjective) {
        enumerateDamage(check);
    }
    return minDamage_[check];
}

uint64_t
ScheduleObjective::maxCheckDamage(std::size_t check) const
{
    if (maxDamage_[check] == kInvalidObjective) {
        enumerateDamage(check);
    }
    return maxDamage_[check];
}

uint64_t
ScheduleObjective::depthLoadBound() const
{
    return depthLoadBound_;
}

uint64_t
ScheduleObjective::pack(const ObjectiveTerms &terms)
{
    if (!terms.valid) {
        return kInvalidObjective;
    }
    uint64_t escape = std::min<uint64_t>(terms.sameRoundEscape, kEscapeMax);
    uint64_t depth = std::min<uint64_t>(terms.depth, kDepthMax);
    return terms.hookAlignment * kAlignWeight + escape * kEscapeWeight +
           depth;
}

ObjectiveTerms
ScheduleObjective::evaluateTerms(const circuit::SmSchedule &schedule) const
{
    ObjectiveTerms terms;
    auto ts = schedule.computeTimesteps();
    if (!ts || !schedule.commutationValid()) {
        return terms;
    }
    terms.valid = true;
    terms.depth = ts->depth;

    std::size_t m = code_->numChecks();
    for (std::size_t c = 0; c < m; ++c) {
        terms.hookAlignment += checkDamage(c, schedule.checkOrder(c));
    }

    // readTime[q] = (check, timestep) of every CNOT touching q.
    std::size_t n = code_->n();
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> readTime(
        n);
    for (std::size_t c = 0; c < m; ++c) {
        const auto &order = schedule.checkOrder(c);
        for (std::size_t k = 0; k < order.size(); ++k) {
            readTime[order[k]].push_back({c, ts->t[c][k]});
        }
    }
    for (std::size_t c = 0; c < m; ++c) {
        const auto &order = schedule.checkOrder(c);
        bool x_errors = errorFamily(*code_, c) == kXErrors;
        for (std::size_t j = 1; j < order.size(); ++j) {
            std::size_t q = order[j];
            std::size_t landed = ts->t[c][j];
            bool caught = false;
            for (const auto &[rc, rt] : readTime[q]) {
                if (rc == c) {
                    continue;
                }
                bool detects =
                    x_errors ? !code_->isXCheck(rc) : code_->isXCheck(rc);
                if (detects && rt > landed) {
                    caught = true;
                    break;
                }
            }
            if (!caught) {
                ++terms.sameRoundEscape;
            }
        }
    }
    return terms;
}

uint64_t
ScheduleObjective::evaluate(const circuit::SmSchedule &schedule) const
{
    return pack(evaluateTerms(schedule));
}

std::optional<uint64_t>
ScheduleObjective::unpackDepth(uint64_t objective)
{
    if (objective == kInvalidObjective) {
        return std::nullopt;
    }
    uint64_t depth = objective % kEscapeWeight;
    if (depth == kDepthMax) {
        return std::nullopt; // saturated field: true depth unknown
    }
    return depth;
}

namespace {

/** FNV-1a over the component's tag and entries. */
uint64_t
componentFnv(uint64_t tag, const std::vector<std::size_t> &entries)
{
    uint64_t h = 1469598103934665603ULL; // FNV offset basis
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL; // FNV prime
    };
    mix(tag);
    for (std::size_t e : entries) {
        mix(e + 1);
    }
    return h;
}

/** SplitMix64 finalizer: decorrelates the sub-hashes so their XOR is a
 * sound combined key. */
uint64_t
finalizeComponent(uint64_t h)
{
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

} // namespace

uint64_t
checkOrderHash(std::size_t check, const std::vector<std::size_t> &order)
{
    return finalizeComponent(componentFnv(0xc0de0000 + check, order));
}

uint64_t
qubitOrderHash(std::size_t qubit, const std::vector<std::size_t> &order)
{
    return finalizeComponent(componentFnv(0x0b170000 + qubit, order));
}

uint64_t
scheduleKey(const circuit::SmSchedule &schedule)
{
    const code::CssCode &code = schedule.code();
    uint64_t key = 0;
    for (std::size_t c = 0; c < code.numChecks(); ++c) {
        key ^= checkOrderHash(c, schedule.checkOrder(c));
    }
    for (std::size_t q = 0; q < code.n(); ++q) {
        key ^= qubitOrderHash(q, schedule.qubitOrder(q));
    }
    return key;
}

} // namespace prophunt::search
