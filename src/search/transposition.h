/**
 * @file
 * Portfolio-wide transposition cache and the beam search's bounded
 * visited-set window.
 *
 * Beam search, branch-and-bound, and the MaxSAT loop all explore the
 * same schedule space from the same start, so they keep rediscovering
 * each other's schedules. The TranspositionCache maps the incremental
 * schedule key (search/objective.h) to the packed propagation-weight
 * objective, letting any strategy skip re-scoring a schedule another
 * one already scored. Entries are evicted FIFO under a bounded
 * capacity; hit/miss counters feed SearchStats.
 *
 * Lookups and inserts are mutex-guarded: the cache is created per
 * portfolio run (strategies run serially), but the MaxSAT strategy's
 * candidate-verification tasks probe it from the optimizer's worker
 * pool. Probes never mutate entries, so parallel probing is
 * deterministic: the hit/miss totals depend only on the probe set and
 * the (frozen) cache contents, not on interleaving.
 *
 * Keys are 64-bit hashes; two distinct schedules colliding would alias
 * their scores. That is the same failure mode (and the same odds) the
 * search strategies already accept for duplicate suppression.
 */
#ifndef PROPHUNT_SEARCH_TRANSPOSITION_H
#define PROPHUNT_SEARCH_TRANSPOSITION_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace prophunt::search {

/** Bounded schedule-key -> packed-objective cache shared by the
 * portfolio's strategies. capacity 0 disables the cache (every lookup
 * misses, inserts are dropped, counters stay 0). */
class TranspositionCache
{
  public:
    static constexpr std::size_t kDefaultCapacity = std::size_t(1) << 20;

    explicit TranspositionCache(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {
    }

    bool enabled() const { return capacity_ != 0; }

    /** Look @p key up; on hit stores the cached packed objective in
     * @p objective and returns true. Counts one hit or miss. */
    bool
    lookup(uint64_t key, uint64_t &objective)
    {
        if (capacity_ == 0) {
            return false;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++misses_;
            return false;
        }
        ++hits_;
        objective = it->second;
        return true;
    }

    /** Record @p key -> @p objective, evicting the oldest entry when
     * full. Re-inserting a present key is a no-op (first score wins —
     * scores for one key are identical by construction). */
    void
    insert(uint64_t key, uint64_t objective)
    {
        if (capacity_ == 0) {
            return;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (!map_.emplace(key, objective).second) {
            return;
        }
        fifo_.push_back(key);
        if (fifo_.size() > capacity_) {
            map_.erase(fifo_.front());
            fifo_.pop_front();
        }
    }

    uint64_t
    hits() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hits_;
    }

    uint64_t
    misses() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return misses_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return map_.size();
    }

  private:
    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, uint64_t> map_;
    std::deque<uint64_t> fifo_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** FIFO-bounded set of schedule keys: the beam search's visited window.
 * Within the window, insert() deduplicates exactly; once the window
 * overflows, the oldest keys are forgotten and may be revisited —
 * bounding memory on long runs over large codes. capacity 0 =
 * unbounded (the pre-window behavior). Single-threaded. */
class FifoKeySet
{
  public:
    explicit FifoKeySet(std::size_t capacity) : capacity_(capacity) {}

    /** True iff @p key was not present (and is now inserted). */
    bool
    insert(uint64_t key)
    {
        if (!set_.insert(key).second) {
            return false;
        }
        fifo_.push_back(key);
        if (capacity_ != 0 && fifo_.size() > capacity_) {
            set_.erase(fifo_.front());
            fifo_.pop_front();
        }
        return true;
    }

    bool contains(uint64_t key) const { return set_.count(key) != 0; }
    std::size_t size() const { return set_.size(); }

  private:
    std::size_t capacity_;
    std::unordered_set<uint64_t> set_;
    std::deque<uint64_t> fifo_;
};

} // namespace prophunt::search

#endif // PROPHUNT_SEARCH_TRANSPOSITION_H
