#include "search/branch_bound.h"

#include <algorithm>
#include <chrono>

namespace prophunt::search {

namespace {

/** DFS driver holding the shared mutable search state. */
struct BnbDriver
{
    const SearchContext &ctx;
    const BnbOptions &options;
    SearchOutcome &out;
    std::chrono::steady_clock::time_point t0;

    /** Checks being branched on, most damage-sensitive first. */
    std::vector<std::size_t> ranked;
    /** sumMinRemaining[t] = sum of minCheckDamage over ranked[t..]. */
    std::vector<uint64_t> sumMinRemaining;
    /** Working check orders (assigned prefix mutated in place). */
    std::vector<std::vector<std::size_t>> orders;
    /** Fixed relative orders from the start schedule. */
    std::vector<std::vector<std::size_t>> qubitOrders;

    uint64_t incumbentObj = kInvalidObjective;
    bool stop = false;

    uint64_t
    elapsedUs() const
    {
        return (uint64_t)std::chrono::duration_cast<
                   std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

    bool
    budgetExpired()
    {
        if (ctx.cancelled() ||
            (ctx.budget.maxExpansions != 0 &&
             out.stats.expansions >= ctx.budget.maxExpansions) ||
            (ctx.budget.wallSeconds > 0.0 &&
             (double)elapsedUs() >= ctx.budget.wallSeconds * 1e6)) {
            stop = true;
        }
        return stop;
    }

    void
    visitLeaf(uint64_t /*fixed_damage*/)
    {
        circuit::SmSchedule cand(ctx.start.codePtr(), orders, qubitOrders);
        uint64_t obj = ctx.objective.evaluate(cand);
        if (obj == kInvalidObjective) {
            ++out.stats.deadEnds; // reorders introduced a cycle
            return;
        }
        if (obj < incumbentObj) {
            incumbentObj = obj;
            out.schedule = std::move(cand);
            if (out.stats.firstImprovementExpansions == 0) {
                out.stats.firstImprovementExpansions = out.stats.expansions;
                out.stats.timeToFirstImprovementUs = elapsedUs();
            }
        }
    }

    void
    descend(std::size_t t, uint64_t fixed_damage)
    {
        if (stop) {
            return;
        }
        if (t == ranked.size()) {
            visitLeaf(fixed_damage);
            return;
        }
        std::size_t check = ranked[t];

        struct Child
        {
            std::vector<std::size_t> order;
            uint64_t damage;
        };
        std::vector<Child> children;
        std::vector<std::size_t> perm = orders[check];
        std::sort(perm.begin(), perm.end());
        do {
            children.push_back(
                {perm, ctx.objective.checkDamage(check, perm)});
        } while (std::next_permutation(perm.begin(), perm.end()));
        std::sort(children.begin(), children.end(),
                  [](const Child &a, const Child &b) {
                      return a.damage != b.damage ? a.damage < b.damage
                                                  : a.order < b.order;
                  });
        if (options.maxChildrenPerNode != 0 &&
            children.size() > options.maxChildrenPerNode) {
            children.resize(options.maxChildrenPerNode);
        }

        std::vector<std::size_t> saved = std::move(orders[check]);
        for (Child &child : children) {
            if (budgetExpired()) {
                break;
            }
            ++out.stats.expansions;
            uint64_t damage = fixed_damage + child.damage;
            uint64_t bound =
                (damage + sumMinRemaining[t + 1]) *
                    ScheduleObjective::kAlignWeight +
                ctx.objective.depthLoadBound();
            if (bound >= incumbentObj) {
                ++out.stats.prunedByBound;
                continue;
            }
            orders[check] = std::move(child.order);
            descend(t + 1, damage);
        }
        orders[check] = std::move(saved);
    }
};

} // namespace

SearchOutcome
runBranchBound(const SearchContext &ctx, const BnbOptions &options)
{
    SearchOutcome out(ctx.start);
    BnbDriver driver{ctx, options, out,
                     std::chrono::steady_clock::now(), {}, {}, {}, {}};

    const code::CssCode &code = ctx.start.code();
    std::size_t m = code.numChecks();
    driver.orders.resize(m);
    for (std::size_t c = 0; c < m; ++c) {
        driver.orders[c] = ctx.start.checkOrder(c);
    }
    driver.qubitOrders.resize(code.n());
    for (std::size_t q = 0; q < code.n(); ++q) {
        driver.qubitOrders[q] = ctx.start.qubitOrder(q);
    }

    // Branch on permutable checks, most damage-sensitive first (ties by
    // index). Single-qubit checks have one permutation — nothing to do.
    for (std::size_t c = 0; c < m; ++c) {
        if (driver.orders[c].size() >= 2) {
            driver.ranked.push_back(c);
        }
    }
    std::stable_sort(
        driver.ranked.begin(), driver.ranked.end(),
        [&](std::size_t a, std::size_t b) {
            uint64_t ra = ctx.objective.maxCheckDamage(a) -
                          ctx.objective.minCheckDamage(a);
            uint64_t rb = ctx.objective.maxCheckDamage(b) -
                          ctx.objective.minCheckDamage(b);
            return ra > rb;
        });
    driver.sumMinRemaining.assign(driver.ranked.size() + 1, 0);
    for (std::size_t t = driver.ranked.size(); t-- > 0;) {
        driver.sumMinRemaining[t] =
            driver.sumMinRemaining[t + 1] +
            ctx.objective.minCheckDamage(driver.ranked[t]);
    }

    driver.incumbentObj = ctx.objective.evaluate(ctx.start);
    driver.descend(0, 0);

    out.stats.bestObjective = driver.incumbentObj;
    out.stats.totalUs = driver.elapsedUs();
    return out;
}

} // namespace prophunt::search
