#include "search/branch_bound.h"

#include <algorithm>
#include <chrono>

#include "search/incremental.h"
#include "search/transposition.h"

namespace prophunt::search {

namespace {

/** DFS driver holding the shared mutable search state. */
struct BnbDriver
{
    const SearchContext &ctx;
    const BnbOptions &options;
    SearchOutcome &out;
    std::chrono::steady_clock::time_point t0;

    /** Checks being branched on, most damage-sensitive first. */
    std::vector<std::size_t> ranked;
    /** sumMinRemaining[t] = sum of minCheckDamage over ranked[t..]. */
    std::vector<uint64_t> sumMinRemaining;

    struct Child
    {
        std::vector<std::size_t> order;
        uint64_t damage;
    };
    /** Children per tree level, enumerated and sorted once on first
     * visit instead of at every node of that level (the level's check
     * and support never change, so neither do its children). */
    std::vector<std::vector<Child>> childrenAt;

    /** Incremental evaluator; the DFS applies one check order per
     * descent and undoes it on the way back up. */
    ObjectiveState state;
    TranspositionCache *cache = nullptr;

    uint64_t incumbentObj = kInvalidObjective;
    bool stop = false;

    BnbDriver(const SearchContext &c, const BnbOptions &o,
              SearchOutcome &so)
        : ctx(c), options(o), out(so),
          t0(std::chrono::steady_clock::now()), state(c.objective),
          cache(c.transpositions)
    {
    }

    uint64_t
    elapsedUs() const
    {
        return (uint64_t)std::chrono::duration_cast<
                   std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }

    bool
    budgetExpired()
    {
        if (ctx.cancelled() ||
            (ctx.budget.maxExpansions != 0 &&
             out.stats.expansions >= ctx.budget.maxExpansions) ||
            (ctx.budget.wallSeconds > 0.0 &&
             (double)elapsedUs() >= ctx.budget.wallSeconds * 1e6)) {
            stop = true;
        }
        return stop;
    }

    const std::vector<Child> &
    childrenFor(std::size_t t)
    {
        std::vector<Child> &children = childrenAt[t];
        if (!children.empty()) {
            return children;
        }
        std::vector<std::size_t> perm =
            ctx.start.checkOrder(ranked[t]);
        std::sort(perm.begin(), perm.end());
        do {
            children.push_back(
                {perm, ctx.objective.checkDamage(ranked[t], perm)});
        } while (std::next_permutation(perm.begin(), perm.end()));
        std::sort(children.begin(), children.end(),
                  [](const Child &a, const Child &b) {
                      return a.damage != b.damage ? a.damage < b.damage
                                                  : a.order < b.order;
                  });
        if (options.maxChildrenPerNode != 0 &&
            children.size() > options.maxChildrenPerNode) {
            children.resize(options.maxChildrenPerNode);
        }
        return children;
    }

    void
    acceptLeaf(uint64_t obj, bool applied, std::size_t check,
               const std::vector<std::size_t> &order)
    {
        if (obj == kInvalidObjective) {
            ++out.stats.deadEnds; // reorders introduced a cycle
            return;
        }
        if (obj >= incumbentObj) {
            return;
        }
        incumbentObj = obj;
        if (applied) {
            out.schedule = state.schedule();
        } else {
            // Cache hit skipped the apply; materialize the rare winner.
            state.applyCheckOrder(check, order);
            out.schedule = state.schedule();
            state.undo();
        }
        if (out.stats.firstImprovementExpansions == 0) {
            out.stats.firstImprovementExpansions = out.stats.expansions;
            out.stats.timeToFirstImprovementUs = elapsedUs();
        }
    }

    void
    descend(std::size_t t, uint64_t fixed_damage)
    {
        if (stop) {
            return;
        }
        if (t == ranked.size()) {
            // Only reachable when no check is permutable: the start
            // schedule itself is the single leaf.
            uint64_t obj = state.objective();
            if (obj == kInvalidObjective) {
                ++out.stats.deadEnds;
            }
            return;
        }
        std::size_t check = ranked[t];
        bool last = t + 1 == ranked.size();
        for (const Child &child : childrenFor(t)) {
            if (budgetExpired()) {
                break;
            }
            ++out.stats.expansions;
            uint64_t damage = fixed_damage + child.damage;
            uint64_t bound =
                (damage + sumMinRemaining[t + 1]) *
                    ScheduleObjective::kAlignWeight +
                ctx.objective.depthLoadBound();
            if (bound >= incumbentObj) {
                ++out.stats.prunedByBound;
                continue;
            }
            if (last) {
                // Leaf: probe the transposition cache before paying the
                // apply (the key is one XOR re-mix away).
                uint64_t key = state.keyAfterCheckOrder(check, child.order);
                uint64_t obj = 0;
                if (cache != nullptr && cache->lookup(key, obj)) {
                    acceptLeaf(obj, false, check, child.order);
                    continue;
                }
                obj = state.applyCheckOrder(check, child.order);
                if (cache != nullptr) {
                    cache->insert(key, obj);
                }
                acceptLeaf(obj, true, check, child.order);
                state.undo();
                continue;
            }
            state.applyCheckOrder(check, child.order);
            descend(t + 1, damage);
            state.undo();
        }
    }
};

} // namespace

SearchOutcome
runBranchBound(const SearchContext &ctx, const BnbOptions &options)
{
    SearchOutcome out(ctx.start);
    BnbDriver driver(ctx, options, out);
    uint64_t hits0 = driver.cache ? driver.cache->hits() : 0;
    uint64_t misses0 = driver.cache ? driver.cache->misses() : 0;

    const code::CssCode &code = ctx.start.code();
    std::size_t m = code.numChecks();

    // Branch on permutable checks, most damage-sensitive first (ties by
    // index). Single-qubit checks have one permutation — nothing to do.
    for (std::size_t c = 0; c < m; ++c) {
        if (ctx.start.checkOrder(c).size() >= 2) {
            driver.ranked.push_back(c);
        }
    }
    std::stable_sort(
        driver.ranked.begin(), driver.ranked.end(),
        [&](std::size_t a, std::size_t b) {
            uint64_t ra = ctx.objective.maxCheckDamage(a) -
                          ctx.objective.minCheckDamage(a);
            uint64_t rb = ctx.objective.maxCheckDamage(b) -
                          ctx.objective.minCheckDamage(b);
            return ra > rb;
        });
    driver.sumMinRemaining.assign(driver.ranked.size() + 1, 0);
    for (std::size_t t = driver.ranked.size(); t-- > 0;) {
        driver.sumMinRemaining[t] =
            driver.sumMinRemaining[t + 1] +
            ctx.objective.minCheckDamage(driver.ranked[t]);
    }
    driver.childrenAt.resize(driver.ranked.size());

    driver.incumbentObj =
        cachedEvaluate(ctx.objective, ctx.start, driver.cache);
    driver.state.reset(ctx.start);
    driver.descend(0, 0);

    out.stats.bestObjective = driver.incumbentObj;
    out.stats.totalUs = driver.elapsedUs();
    if (driver.cache != nullptr) {
        out.stats.transpositionHits = driver.cache->hits() - hits0;
        out.stats.transpositionMisses = driver.cache->misses() - misses0;
    }
    return out;
}

} // namespace prophunt::search
