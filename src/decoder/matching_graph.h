/**
 * @file
 * Matching graphs for union-find decoding.
 *
 * The DEM of a CSS memory experiment is nearly graph-like: most mechanisms
 * flip at most two detectors. Y-type faults flip detectors in both check
 * sectors (X-check detectors and Z-check detectors); splitting each
 * mechanism by sector yields per-sector components that are almost always
 * edges. The remaining multi-detector components (hook errors spanning
 * several rounds or data qubits) are greedily decomposed into known edges,
 * mirroring Stim's decompose_errors pass. Mechanisms with a single detector
 * become boundary edges.
 */
#ifndef PROPHUNT_DECODER_MATCHING_GRAPH_H
#define PROPHUNT_DECODER_MATCHING_GRAPH_H

#include <cstdint>
#include <vector>

#include "circuit/sm_circuit.h"
#include "sim/dem.h"

namespace prophunt::decoder {

/** One matching edge. node == kBoundary denotes the virtual boundary. */
struct MatchEdge
{
    static constexpr uint32_t kBoundary = 0xffffffffu;
    uint32_t u = 0;
    uint32_t v = kBoundary;
    /** Observable flips carried by this edge. */
    uint64_t obsMask = 0;
    /** Total probability of the merged mechanisms on this edge. */
    double p = 0.0;
};

/** A decoding graph suitable for union-find matching. */
struct MatchingGraph
{
    std::size_t numDetectors = 0;
    std::vector<MatchEdge> edges;
    /** Adjacency: for each detector, incident edge indices. */
    std::vector<std::vector<uint32_t>> incident;

    /** Count of hyperedge components that required fallback splitting. */
    std::size_t fallbackDecompositions = 0;
};

/**
 * Build a matching graph from a DEM.
 *
 * @param dem The detector error model.
 * @param circuit The circuit (provides detector -> check-sector labels).
 */
MatchingGraph buildMatchingGraph(const sim::Dem &dem,
                                 const circuit::SmCircuit &circuit);

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_MATCHING_GRAPH_H
