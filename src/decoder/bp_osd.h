/**
 * @file
 * Belief propagation + ordered-statistics decoding for LDPC DEMs.
 *
 * Min-sum BP runs on a localized sub-Tanner-graph around the flipped
 * detectors (the localized-statistics idea of BP-LSD, DESIGN.md
 * substitution 3); if the hard decision does not reproduce the syndrome,
 * OSD-0 re-solves it by Gaussian elimination over the columns ranked by BP
 * reliability. Falls back to the full graph when the local region cannot
 * explain the syndrome.
 */
#ifndef PROPHUNT_DECODER_BP_OSD_H
#define PROPHUNT_DECODER_BP_OSD_H

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "decoder/decoder.h"
#include "sim/dem.h"

namespace prophunt::decoder {

/** Options for the BP+OSD decoder. */
struct BpOsdOptions
{
    std::size_t maxIterations = 30;
    /** Min-sum normalization factor. */
    double scale = 0.8;
    /** Expansion radius of the localized region (error layers). */
    std::size_t regionRadius = 3;
};

/** BP+OSD decoder over a detector error model. */
class BpOsdDecoder : public Decoder
{
  public:
    explicit BpOsdDecoder(const sim::Dem &dem, BpOsdOptions opts = {});

    uint64_t decode(const std::vector<uint32_t> &flipped_detectors) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<BpOsdDecoder>(*this);
    }

  private:
    /** Decode restricted to a subset of error columns; nullopt-like
     * failure is signaled via @p ok. */
    uint64_t decodeRegion(const std::vector<uint32_t> &errs,
                          const std::vector<uint32_t> &flipped, bool &ok);

    BpOsdOptions opts_;
    std::size_t numDetectors_;
    /** Exact lookup: detector signature -> (obs mask, p) of the likeliest
     * single mechanism. Fixes BP's tendency to explain a weight-1
     * syndrome with a heavier degenerate solution. */
    std::map<std::vector<uint32_t>, std::pair<uint64_t, double>> single_;
    // Column-compressed DEM.
    std::vector<std::vector<uint32_t>> colDets_;
    std::vector<uint64_t> colObs_;
    std::vector<double> prior_; ///< log((1-p)/p) per column.
    std::vector<std::vector<uint32_t>> detCols_;
};

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_BP_OSD_H
