/**
 * @file
 * Belief propagation + ordered-statistics decoding for LDPC DEMs.
 *
 * Min-sum BP runs on a localized sub-Tanner-graph around the flipped
 * detectors (the localized-statistics idea of BP-LSD, DESIGN.md
 * substitution 3); if the hard decision does not reproduce the syndrome,
 * OSD-0 re-solves it by Gaussian elimination over the columns ranked by BP
 * reliability. Falls back to the full graph when the local region cannot
 * explain the syndrome.
 */
#ifndef PROPHUNT_DECODER_BP_OSD_H
#define PROPHUNT_DECODER_BP_OSD_H

#include <cstddef>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "decoder/decoder.h"
#include "decoder/gf2_dense.h"
#include "sim/dem.h"

namespace prophunt::decoder {

/** Options for the BP+OSD decoder. */
struct BpOsdOptions
{
    std::size_t maxIterations = 30;
    /** Min-sum normalization factor. */
    double scale = 0.8;
    /** Expansion radius of the localized region (error layers). */
    std::size_t regionRadius = 3;
    /**
     * Stop BP once this many consecutive iterations pass without the
     * syndrome-mismatch count reaching a new minimum (0 = always run to
     * maxIterations, reproducing the reference path bit for bit).
     *
     * Non-converging syndromes dominate LDPC decode time: they burn the
     * whole iteration budget polishing posteriors that OSD then only uses
     * for column ordering. Cutting them off once BP stagnates leaves the
     * logical error rate statistically unchanged or slightly better
     * (over-iterated min-sum misleads OSD; see the batch-decode tests)
     * while removing most BP work on the hard shots.
     */
    std::size_t stagnationWindow = 2;
    /**
     * Shots decoded in parallel SIMD lanes by decodePacked (clamped to
     * BpOsdDecoder::kMaxLaneWidth; 0 = scalar reference path, i.e. the
     * transpose + decodeBatch pipeline).
     *
     * The lane engine runs min-sum BP for laneWidth shots at once over
     * the shared Tanner CSR: messages are stored lane-interleaved
     * (laneWidth doubles per edge), the detector -> column two-minimum
     * reduction runs 8 lanes per AVX-512 vector (4 per AVX2 vector,
     * with a bit-identical scalar-lane fallback), and per-lane sentinel
     * masks keep each
     * shot's localized region independent. Lanes retire individually on
     * convergence / stagnation and are refilled from the shot queue, so
     * iteration skew between easy and hard syndromes no longer idles the
     * engine. Every lane reproduces per-shot decode() bit for bit — the
     * observables are identical for every laneWidth, only the throughput
     * changes.
     */
    std::size_t laneWidth = 8;
    /**
     * Solve the OSD-0 post-pass with the word-packed gf2_dense
     * eliminator (incremental syndrome reduction, bit-packed solution
     * membership) instead of the scalar reference elimination. Both
     * produce identical observables for every input — the solution is
     * the unique expression of the syndrome over the same independent
     * column set — so this switch only trades speed, and the scalar
     * path survives as the differential-test and benchmark reference
     * (tests/osd_elimination_test.cc, bench/packed_pipeline.cc).
     */
    bool packedOsd = true;
};

/**
 * BP+OSD decoder over a detector error model.
 *
 * The hot path runs on a Tanner structure flattened once at construction
 * (global CSR edge lists, message arrays sized to the full graph); each
 * shot only touches syndrome-dependent state — the localized region's
 * columns, their edges, and the message values — and restores it on exit.
 * Inactive edges carry a +1e300 sentinel message, which reproduces the
 * reference implementation's min-sum initialization exactly, so decode(),
 * decodeBatch(), and the retained per-region reference path
 * (decodeReference()) agree bit for bit.
 */
class BpOsdDecoder : public Decoder
{
  public:
    /** Hard cap on BpOsdOptions::laneWidth (lane masks are 32-bit and the
     * message arrays scale linearly with the width). */
    static constexpr std::size_t kMaxLaneWidth = 16;

    explicit BpOsdDecoder(const sim::Dem &dem, BpOsdOptions opts = {});

    uint64_t decode(const std::vector<uint32_t> &flipped_detectors) override;

    void decodeBatch(const sim::SampleBatch &batch, std::size_t first,
                     std::size_t count, uint64_t *obs_out) override;

    /** Native frame-layout path: per-shot syndromes are extracted from
     * the detector-major words without a transpose and decoded by the
     * lane engine (opts.laneWidth > 0) or routed through the base
     * adapter (laneWidth == 0, the PR 2 batched path). */
    void decodePacked(const sim::FrameView &frames, uint64_t *obs_out,
                      PackedDecodeStats *stats = nullptr) override;

    /**
     * The original per-region implementation (rebuilds local indices and
     * edge lists per call). Kept as the comparison baseline for the
     * batched path: equal output, pre-optimization cost.
     */
    uint64_t decodeReference(const std::vector<uint32_t> &flipped_detectors);

    /**
     * Test seam: run the OSD-0 post-pass alone on an explicit region.
     *
     * @p cols is the region's column set, @p post the per-position
     * posterior ranking (post[i] ranks cols[i]; size must match), and
     * @p flipped the sorted flipped detectors. @p packed selects the
     * gf2_dense elimination vs the scalar reference — the two must agree
     * bit for bit (tests/osd_elimination_test.cc fuzzes exactly this).
     * Fills @p uses with one 0/1 flag per cols position and returns
     * whether the syndrome was explained; a flipped detector with no
     * adjacent column in @p cols makes the region infeasible (false,
     * all-zero uses), matching runRegion's pre-check.
     */
    bool osdPostPass(const std::vector<uint32_t> &cols,
                     const std::vector<double> &post,
                     const std::vector<uint32_t> &flipped, bool packed,
                     std::vector<uint8_t> &uses);

    /**
     * Clones share the immutable per-DEM Tanner structure (one
     * shared_ptr<const Tanner> behind every copy), so cloning a
     * prototype for another worker or lane group copies only the
     * mutable per-shot scratch, not the graph.
     */
    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<BpOsdDecoder>(*this);
    }

    /**
     * Immutable per-DEM decode structure: the column-compressed DEM plus
     * the flattened global Tanner CSR, built once per DEM by
     * buildTanner() and referenced read-only by every per-shot pass.
     * Edge e of column c spans colBegin[c]..colBegin[c+1] in (column,
     * slot) order; detEdges groups the same edge ids by detector.
     */
    struct Tanner
    {
        /** Exact lookup: detector signature -> (obs mask, p) of the
         * likeliest single mechanism. Fixes BP's tendency to explain a
         * weight-1 syndrome with a heavier degenerate solution. */
        std::map<std::vector<uint32_t>, std::pair<uint64_t, double>> single;
        // Column-compressed DEM.
        std::vector<std::vector<uint32_t>> colDets;
        std::vector<uint64_t> colObs;
        std::vector<double> prior; ///< log((1-p)/p) per column.
        std::vector<std::vector<uint32_t>> detCols;
        // Global Tanner CSR.
        std::vector<uint32_t> colBegin;
        std::vector<uint32_t> colDet;   ///< Edge -> detector.
        std::vector<uint32_t> detBegin;
        std::vector<uint32_t> detEdges; ///< Detector -> edge ids, (c, k) order.
        std::vector<uint32_t> detCol;   ///< Column of detEdges[i] (growth).
        std::vector<uint32_t> allCols;  ///< 0..numErrors-1 (full-graph pass).
    };

    /** Build the shared read-only Tanner structure of @p dem. */
    static std::shared_ptr<const Tanner> buildTanner(const sim::Dem &dem);

  private:
    /** Reference decode restricted to a subset of error columns;
     * nullopt-like failure is signaled via @p ok. */
    uint64_t decodeRegion(const std::vector<uint32_t> &errs,
                          const std::vector<uint32_t> &flipped, bool &ok);

    /** Hot path: grow the localized region and decode it on the global
     * Tanner structure, falling back to the full graph. */
    uint64_t decodeFast(const std::vector<uint32_t> &flipped);

    /** Min-sum BP (+ OSD-0 fallback) over @p cols on the global edge
     * arrays; restores all scratch state before returning. */
    uint64_t runRegion(const std::vector<uint32_t> &cols,
                       const std::vector<uint32_t> &flipped, bool &ok);

    /** Grow the localized region (regionRadius layers) around @p flipped
     * into errs_; the errIn_/detIn_ marks are restored before returning.
     *
     * Saturation fast path: region growth is monotone in its seed set,
     * so if the region grown from @p flipped's first detector alone
     * covers every column, the full region does too. That predicate is
     * memoized per detector (satFromDet_), and a hit skips the BFS
     * entirely, filling errs_ with the canonical identity column order
     * instead of the discovery order. Every consumer is column-order
     * invariant — BP updates are per-column/per-detector independent,
     * the OSD solution is the unique expression of the syndrome over an
     * order-independent pivot set (posterior ties break by global column
     * id), and observable masks XOR over sets — so the fast path is
     * bit-identical to the BFS, it just stops paying ~an edge walk per
     * shot on DEMs whose dense Tanner graphs saturate every region (the
     * rqt benchmark codes).
     */
    void growRegion(const std::vector<uint32_t> &flipped);

    /** The BFS behind growRegion (discovery order, early saturation
     * exit). */
    void growRegionBfs(const std::vector<uint32_t> &seeds);

    /**
     * OSD-0 over @p cols: solve H x = s by incremental elimination with
     * columns ranked by ascending posterior (ties broken by global
     * column id, so every elimination backend and every region
     * discovery order picks the same pivot sequence); post[i] is the
     * posterior of cols[i] (both callers gather into osdPost_ first, so
     * the sort reads contiguous memory). detLocal_/regionDets_ must hold
     * the region's local detector numbering; fills solUses_ per position
     * in @p cols and returns whether the syndrome became explainable.
     * Dispatches to the packed or scalar elimination per opts_.packedOsd.
     */
    bool osdSolve(const std::vector<uint32_t> &cols, const double *post,
                  const std::vector<uint32_t> &flipped);

    /** Shared per-group packed-column cache of the batched OSD queue:
     * row i = packed column cols[i] over the group's local detector
     * numbering, built lazily and reused by every shot in the group. */
    struct OsdColCache
    {
        DenseBitMat bits;
        std::vector<uint8_t> built;
    };

    /** osdSolve body with the backend explicit and an optional shared
     * column cache (ignored by the scalar backend). Ranks the columns
     * into osdKeys_ (a sorted kOsdPrefix prefix unless the exact
     * mode or a small region forces the full sort; the backends complete
     * the tail lazily via osdSortTail) and dispatches. @p global_rows
     * (packed backend only) numbers elimination rows by global detector
     * id instead of detLocal_ — the flush path uses it to skip the
     * per-job detLocal_ rebuild; results are row-numbering invariant. */
    bool osdSolveImpl(const std::vector<uint32_t> &cols, const double *post,
                      const std::vector<uint32_t> &flipped, bool packed,
                      OsdColCache *cache, bool global_rows);

    /** The packed elimination: gf2_dense eliminator over lazily built
     * packed columns. */
    bool osdSolvePacked(const std::vector<uint32_t> &cols,
                        const std::vector<uint32_t> &flipped,
                        OsdColCache *cache, bool global_rows);

    /** The original per-entry elimination, kept as the bit-exact
     * reference and benchmark baseline for the packed backend. */
    bool osdSolveScalar(const std::vector<uint32_t> &cols,
                        const std::vector<uint32_t> &flipped);

    /**
     * One posterior-ranking record: @p key is the posterior mapped to a
     * uint64 whose integer order equals double order (with -0.0
     * collapsed onto +0.0), @p col the global column id tie-break, @p
     * pos the position in the caller's cols. Selecting/sorting flat
     * 16-byte records replaces the indirect double/column comparator —
     * the ordering, not the elimination, dominated the OSD post-pass.
     */
    struct OsdKey
    {
        uint64_t key;
        uint32_t col;
        uint32_t pos;

        bool
        operator<(const OsdKey &o) const
        {
            return key != o.key ? key < o.key : col < o.col;
        }
    };

    /** Sort the unsorted tail of osdKeys_: the lazy completion both
     * eliminations trigger when they outrun the sorted prefix. */
    void osdSortTail();

    // --- lane engine (decodePacked; see bp_osd_lanes.cc) ---

    /** Size the lane-interleaved state for width @p w (no-op once sized). */
    void laneEnsure(std::size_t w);
    /** Park shot @p shot (region already grown into errs_) in lane @p l. */
    void laneInstall(std::size_t l, std::size_t shot,
                     const std::vector<uint32_t> &flipped);
    /** Finish lane @p l and restore the lane's slice of every
     * between-shot invariant. Converged lanes write their observable
     * mask into @p obs_out immediately; unconverged lanes compact into
     * the batched OSD work queue (osdFlush writes their masks later). */
    void laneRetire(std::size_t l, bool converged, uint64_t *obs_out);
    /** One BP iteration for every live lane (detector and column pass);
     * simd_level picks the kernel tier (0 generic, 1 AVX2, 2 AVX-512 —
     * all bit-identical). */
    void laneIterate(int simd_level);

    // --- batched OSD work queue (decodePacked post-pass) ---

    /** One retired-but-unconverged shot awaiting the OSD post-pass. */
    struct OsdJob
    {
        std::size_t shot = 0;
        /** FNV-1a of the cols sequence (grouping key; saturated jobs
         * group by the flag alone). */
        uint64_t sig = 0;
        /** Region == every column: cols is left empty and allCols_ is
         * the canonical column order, so all saturated jobs share one
         * group regardless of their discovery order. */
        bool saturated = false;
        std::vector<uint32_t> cols;
        std::vector<uint32_t> flipped;
        std::vector<double> post; ///< Posterior per (canonical) position.
    };

    /** Capture lane @p l's region, flipped set, and posterior slice into
     * the OSD queue (storage reused across flushes). */
    void osdEnqueue(std::size_t l);
    /** Solve every queued job, grouped by region shape so the packed
     * column build is shared, and write the observable masks. */
    void osdFlush(uint64_t *obs_out, PackedDecodeStats *stats);

    BpOsdOptions opts_;
    std::size_t numDetectors_;
    /** Shared immutable DEM structure; every clone points at the same
     * Tanner, only the scratch below is per-instance. */
    std::shared_ptr<const Tanner> tanner_;

    // Per-shot scratch. Invariants between shots: msgC2d_ holds the
    // inactive-edge sentinel everywhere, flag arrays are zero, and
    // detLocal_ is -1; runRegion/decodeFast restore them on every path.
    std::vector<double> msgC2d_;
    std::vector<double> msgD2c_;
    std::vector<double> posterior_;   ///< Per column (active entries valid).
    std::vector<uint8_t> hard_;       ///< Per column.
    std::vector<uint8_t> acc_;        ///< Parity of hard columns per detector.
    std::vector<uint8_t> syn_;        ///< Syndrome bit per detector.
    std::vector<uint8_t> errIn_;      ///< Region-growth column marks.
    std::vector<uint8_t> detIn_;      ///< Region-growth detector marks.
    std::vector<int32_t> detLocal_;   ///< Detector -> local index (OSD).
    std::vector<uint32_t> regionDets_;
    std::vector<uint32_t> touchedDets_;
    std::vector<uint8_t> edgeNeg_;    ///< Per-slot message signs (one row).
    std::vector<uint32_t> errs_;
    std::vector<uint32_t> frontier_;
    std::vector<uint32_t> newDets_;
    std::vector<uint32_t> flippedScratch_;
    /** Memo: does the region grown from this detector alone saturate
     * (cover every column)? -1 unknown, else 0/1. */
    std::vector<int8_t> satFromDet_;
    std::vector<uint32_t> seedScratch_; ///< Single-seed BFS probe.
    /**
     * Per-detector region reachability: row d = bitmap of the columns
     * within regionRadius layers of detector d, built lazily by one
     * single-seed BFS per detector. Region growth is monotone, so the
     * region of a syndrome is the OR of its detectors' rows — one
     * word-wide sweep plus a bit extraction per shot instead of an edge
     * walk, with errs_ emerging in canonical ascending order (which
     * also makes same-set regions group in the batched OSD queue).
     * Enabled unless the matrix would be unreasonably large
     * (reachEnabled_); the BFS path remains as the fallback and the
     * row builder.
     */
    DenseBitMat reachCols_;
    std::vector<uint8_t> reachBuilt_;
    bool reachEnabled_ = false;
    std::vector<uint64_t> regionWords_; ///< OR-of-rows scratch.
    // OSD scratch. Pivots are stored flattened (rows, bit columns,
    // member segments) so the elimination loop never allocates.
    std::vector<uint64_t> synWords_;
    std::vector<uint64_t> colWords_;
    std::vector<uint8_t> solUses_;
    std::vector<uint32_t> pivRow_;
    std::vector<uint64_t> pivCols_;
    std::vector<uint32_t> pivMemBegin_;
    std::vector<uint32_t> pivMembers_;
    std::vector<uint32_t> memScratch_;
    std::vector<uint64_t> rScratch_;
    std::vector<uint8_t> useScratch_;
    std::vector<double> osdPost_; ///< Posteriors gathered per cols position.
    // Packed-elimination scratch (osdSolvePacked).
    Gf2Eliminator elim_;
    std::vector<uint32_t> osdPushPos_; ///< Push index -> cols position.
    std::vector<uint32_t> osdSolIdx_;  ///< Solution push indices.
    std::vector<OsdKey> osdKeys_;      ///< Posterior-ranking records.
    std::size_t osdSortedPrefix_ = 0;  ///< Sorted prefix of osdKeys_.
    // Batched OSD queue (lane engine). Entries are reused: osdQueueSize_
    // counts the live prefix, the vectors behind it keep their capacity.
    std::vector<OsdJob> osdQueue_;
    std::size_t osdQueueSize_ = 0;
    std::vector<uint32_t> osdOrderIdx_;    ///< Flush grouping scratch.
    std::vector<uint32_t> osdFallbackIdx_; ///< Full-graph fallback jobs.
    OsdColCache osdCache_;

    // Lane engine state (sized by laneEnsure on the first packed decode).
    // Message/posterior arrays are lane-interleaved: element (i, lane)
    // lives at i*laneW_ + lane. The region membership that the scalar
    // scratch encodes with sentinel *values* is carried by the per-edge
    // lane bit planes instead: laneMsg_ may hold garbage in inactive
    // lanes, the detector pass substitutes the sentinel (or, on a lane's
    // first iteration, the column prior) while loading. That turns the
    // per-shot install/retire work from one strided double per edge into
    // one contiguous bit per edge.
    std::size_t laneW_ = 0;
    /** In-place message array: column->detector values going into a
     * detector pass, detector->column values going into a column pass
     * (an edge belongs to exactly one detector and one column, so each
     * pass may overwrite its input slot). */
    std::vector<double> laneMsg_;
    std::vector<double> lanePost_;
    std::vector<uint16_t> laneEdgeActive_; ///< Bit l: edge in lane l's region.
    std::vector<double> edgePrior_;      ///< prior_ of each edge's column.
    std::vector<double> laneStage_;      ///< Det-pass staging, maxDeg x W.
    std::vector<uint32_t> laneHardBits_; ///< Per column, bit l = lane l.
    std::vector<uint8_t> laneAcc_;       ///< Hard-decision parity per (det, lane).
    std::vector<uint8_t> laneSynB_;      ///< Syndrome bit per (det, lane).
    std::vector<double> laneSynSign_;    ///< -0.0 where the syndrome is set.
    std::vector<uint32_t> colLaneMask_;  ///< Per column, lanes it is active in.
    std::vector<uint32_t> detLaneMask_;
    std::vector<std::vector<uint32_t>> laneCols_; ///< Region per lane.
    std::vector<std::vector<uint32_t>> laneFlipped_;
    std::vector<std::size_t> laneShot_;
    std::vector<uint8_t> laneLive_;
    std::vector<std::ptrdiff_t> laneMismatch_;
    std::vector<std::ptrdiff_t> laneBest_;
    std::vector<std::size_t> laneSinceBest_;
    std::vector<std::size_t> laneIter_;
    // Packed-syndrome extraction scratch (per-shot flipped lists).
    std::vector<uint32_t> packedFlipped_;
    std::vector<uint32_t> packedOffsets_;
    std::vector<uint32_t> packedFill_;
    std::vector<uint32_t> laneQueue_;
};

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_BP_OSD_H
