/**
 * @file
 * String-keyed decoder registry.
 *
 * Decoders are constructed by name through `Registry::make("bp_osd", ...)`
 * with per-backend options structs, so new backends (matching variants,
 * future SIMD min-sum lanes, external decoders) plug in without touching
 * call sites. This subsumed — and PR 6 deleted — the old closed
 * `DecoderKind` enum.
 */
#ifndef PROPHUNT_DECODER_REGISTRY_H
#define PROPHUNT_DECODER_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "circuit/sm_circuit.h"
#include "decoder/bp_osd.h"
#include "decoder/decoder.h"
#include "sim/dem.h"

namespace prophunt::decoder {

/** Options for the union-find matching decoder (currently none). */
struct UnionFindOptions
{
};

/** Options for the brute-force MLE decoder. */
struct MleOptions
{
    /** Largest error-set size considered in the exhaustive search. */
    std::size_t maxWeight = 6;
};

/**
 * Per-decoder options, one alternative per backend.
 *
 * `std::monostate` means "backend defaults". Passing the wrong
 * alternative for a backend is an error (std::invalid_argument), not a
 * silent fallback.
 */
using DecoderOptions =
    std::variant<std::monostate, UnionFindOptions, BpOsdOptions, MleOptions>;

/** A decoder selection: registry name plus backend options. */
struct DecoderSpec
{
    std::string name = "union_find";
    DecoderOptions options{};

    DecoderSpec() = default;
    DecoderSpec(std::string n) : name(std::move(n)) {}
    DecoderSpec(const char *n) : name(n) {}
    DecoderSpec(std::string n, DecoderOptions o)
        : name(std::move(n)), options(std::move(o))
    {
    }

    /**
     * Stable human-readable key: name plus every option field. Two specs
     * with equal describe() strings construct identical decoders, which is
     * what the engine's artifact cache keys on.
     */
    std::string describe() const;
};

/**
 * The process-wide decoder registry.
 *
 * Built-in backends are registered on first access:
 *
 *   "union_find"  matching decoder for surface-like DEMs (alias "matching")
 *   "bp_osd"      BP+OSD decoder for LDPC DEMs
 *   "mle"         exhaustive most-likely-error decoder (test oracle)
 *
 * `add()` lets extensions register further backends at runtime.
 */
class Registry
{
  public:
    /**
     * Build one decoder instance for @p dem.
     *
     * @param circuit Source circuit; provides the detector -> check-sector
     * labels the matching-graph construction needs.
     */
    using Factory = std::function<std::unique_ptr<Decoder>(
        const sim::Dem &dem, const circuit::SmCircuit &circuit,
        const DecoderOptions &opts)>;

    /** The singleton instance (built-ins registered). */
    static Registry &instance();

    /** Register @p factory under @p name; replaces an existing entry. */
    void add(const std::string &name, Factory factory);

    bool has(const std::string &name) const;

    /** Registered names, sorted (aliases included). */
    std::vector<std::string> names() const;

    /** Construct by spec; throws std::invalid_argument for unknown names
     * or mismatched options. */
    std::unique_ptr<Decoder> create(const DecoderSpec &spec,
                                    const sim::Dem &dem,
                                    const circuit::SmCircuit &circuit) const;

    /** Convenience: Registry::instance().create(spec, dem, circuit). */
    static std::unique_ptr<Decoder> make(const DecoderSpec &spec,
                                         const sim::Dem &dem,
                                         const circuit::SmCircuit &circuit);

  private:
    Registry();

    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
};

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_REGISTRY_H
