/**
 * @file
 * Word-packed dense GF(2) linear algebra for the OSD post-pass.
 *
 * The gf2::Matrix/BitVec substrate is a value-type API built for the
 * paper's offline code analysis; the decoder hot loop needs the opposite
 * trade-off: flat reusable storage, no per-operation allocation, and an
 * elimination primitive shaped exactly like OSD-0's "push columns in
 * reliability order until the syndrome is explainable". This header
 * provides both pieces:
 *
 *  - DenseBitMat: a rows() x cols() bit matrix, 64 columns per word,
 *    row-major, with reset() reusing capacity. The decoder uses it as the
 *    per-region packed-column cache (row i = column i of the region's
 *    check matrix over the local detectors).
 *
 *  - Gf2Eliminator: incremental row-swap-free Gaussian elimination over
 *    candidate columns. Each accepted pivot is stored reduced against all
 *    earlier pivots (lower-triangular in push order, no row swaps — the
 *    pivot row is recorded, never moved), together with a bit-packed
 *    member set over pivot slots recording which pushed columns XOR to
 *    it. The syndrome is reduced *incrementally*: a new pivot is applied
 *    at most once, when it is created, so the "is the syndrome
 *    explainable yet" check is one zero-scan instead of the reference
 *    implementation's full re-reduction against every pivot per step,
 *    and solution membership is tracked by word-wide XOR instead of
 *    member-list splicing. For any push sequence the solved/pivot
 *    decisions and the final solution are identical to the reference
 *    elimination: both express the syndrome over the same independent
 *    column set, on which the representation is unique.
 */
#ifndef PROPHUNT_DECODER_GF2_DENSE_H
#define PROPHUNT_DECODER_GF2_DENSE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prophunt::decoder {

/** Reusable dense bit matrix: row-major, 64 columns per machine word. */
class DenseBitMat
{
  public:
    DenseBitMat() = default;

    DenseBitMat(std::size_t rows, std::size_t cols) { reset(rows, cols); }

    /** Resize to rows x cols, zero every bit; reuses capacity. */
    void reset(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    /** Words per row: ceil(cols / 64). */
    std::size_t rowWords() const { return rowWords_; }

    uint64_t *row(std::size_t r) { return words_.data() + r * rowWords_; }

    const uint64_t *
    row(std::size_t r) const
    {
        return words_.data() + r * rowWords_;
    }

    bool
    get(std::size_t r, std::size_t c) const
    {
        return (row(r)[c >> 6] >> (c & 63)) & 1;
    }

    void
    set(std::size_t r, std::size_t c, bool v = true)
    {
        uint64_t bit = uint64_t{1} << (c & 63);
        if (v) {
            row(r)[c >> 6] |= bit;
        } else {
            row(r)[c >> 6] &= ~bit;
        }
    }

    void clearRow(std::size_t r);

    /** dst ^= row(src), word-wise (dst must hold rowWords() words). */
    void xorRowInto(std::size_t src, uint64_t *dst) const;

    /** Rank over GF(2); non-destructive (eliminates a scratch copy).
     * A diagnostic/test utility, not a hot-path primitive — the decode
     * paths use Gf2Eliminator, which never allocates once warm. */
    std::size_t rank() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t rowWords_ = 0;
    std::vector<uint64_t> words_;
};

/**
 * Incremental OSD-style GF(2) elimination with reusable scratch.
 *
 * Usage: begin(numRows), set syndrome bits, then push() candidate column
 * vectors in preference order until push() returns true (the syndrome
 * became explainable) or the candidates run out. solution() then lists
 * the push-order indices whose columns XOR to the syndrome; the support
 * is always a subset of the pushed columns that became pivots.
 *
 * No allocation happens in push() once the instance has warmed up to the
 * problem size (pivot storage grows geometrically and is kept).
 */
class Gf2Eliminator
{
  public:
    /** Start a solve over rows 0..numRows-1; clears the syndrome. */
    void begin(std::size_t numRows);

    /** Set syndrome bit @p r. Call between begin() and the first push(). */
    void setSyndromeBit(std::size_t r);

    /** Words per packed column: ceil(numRows / 64). */
    std::size_t rowWords() const { return rowWords_; }

    /**
     * Process the next candidate column (@p col: rowWords() packed words,
     * not modified). Returns solved(): once true, further pushes are
     * no-ops and the solution is frozen — the OSD-0 stopping rule.
     */
    bool push(const uint64_t *col);

    /** True iff the syndrome lies in the span of the pushed columns. */
    bool solved() const { return solved_; }

    /** Number of independent columns accepted so far. */
    std::size_t rank() const { return pivLead_.size(); }

    /** Number of push() calls since begin() (solved() freezes it). */
    std::size_t pushCount() const { return pushed_; }

    /**
     * Push-order indices of the columns in the solution, ascending.
     * Valid when solved(); the indices count every push (dependent
     * columns included in the numbering, never in the support).
     */
    void solution(std::vector<uint32_t> &out) const;

  private:
    std::size_t rowWords_ = 0;
    std::size_t memWords_ = 0; ///< Words of a pivot-slot member set.
    std::size_t pushed_ = 0;
    bool solved_ = false;
    /** Pivot storage, one stride = rowWords_ column words followed by
     * memWords_ member words (pivot-slot bits). */
    std::vector<uint64_t> pivData_;
    std::vector<uint32_t> pivLead_; ///< Lead row per pivot.
    std::vector<uint32_t> pivPush_; ///< Push index per pivot slot.
    std::vector<uint64_t> rSyn_;    ///< Syndrome reduced by all pivots.
    std::vector<uint64_t> solMem_;  ///< Pivot slots XORed into the syndrome.
    std::vector<uint64_t> cand_;    ///< Candidate scratch (column + members).
};

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_GF2_DENSE_H
