/**
 * @file
 * Exact most-likely-error decoder for small DEMs (test oracle).
 *
 * Searches error subsets in increasing weight (then decreasing probability)
 * for one reproducing the syndrome. Exponential; only suitable for the tiny
 * models used in unit tests, where it validates the union-find and BP+OSD
 * decoders.
 */
#ifndef PROPHUNT_DECODER_MLE_H
#define PROPHUNT_DECODER_MLE_H

#include <cstddef>

#include "decoder/decoder.h"
#include "sim/dem.h"

namespace prophunt::decoder {

/** Brute-force MLE decoder. */
class MleDecoder : public Decoder
{
  public:
    /**
     * @param dem The model; should have at most a few dozen mechanisms.
     * @param max_weight Largest error-set size considered.
     */
    explicit MleDecoder(const sim::Dem &dem, std::size_t max_weight = 6);

    uint64_t decode(const std::vector<uint32_t> &flipped_detectors) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<MleDecoder>(*this);
    }

  private:
    const sim::Dem dem_;
    std::size_t maxWeight_;
};

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_MLE_H
