#include "decoder/decoder.h"

namespace prophunt::decoder {

void
Decoder::decodeBatch(const sim::SampleBatch &batch, std::size_t first,
                     std::size_t count, uint64_t *obs_out)
{
    std::vector<uint32_t> flipped;
    for (std::size_t i = 0; i < count; ++i) {
        batch.flippedDetectors(first + i, flipped);
        obs_out[i] = decode(flipped);
    }
}

void
Decoder::decodePacked(const sim::FrameView &frames, uint64_t *obs_out,
                      PackedDecodeStats *stats)
{
    // Adapter for row-layout decoders: one transpose, then the batched
    // path. The transpose dominates the adapter's cost, so the scratch
    // batch being per-call is noise.
    sim::SampleBatch rows;
    sim::transposeView(frames, rows);
    decodeBatch(rows, 0, frames.shots, obs_out);
    if (stats != nullptr) {
        stats->adapterShots += frames.shots;
    }
}

} // namespace prophunt::decoder
