#include "decoder/decoder.h"

namespace prophunt::decoder {

void
Decoder::decodeBatch(const sim::SampleBatch &batch, std::size_t first,
                     std::size_t count, uint64_t *obs_out)
{
    std::vector<uint32_t> flipped;
    for (std::size_t i = 0; i < count; ++i) {
        batch.flippedDetectors(first + i, flipped);
        obs_out[i] = decode(flipped);
    }
}

} // namespace prophunt::decoder
