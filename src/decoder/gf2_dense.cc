#include "decoder/gf2_dense.h"

#include <algorithm>
#include <bit>

namespace prophunt::decoder {

void
DenseBitMat::reset(std::size_t rows, std::size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    rowWords_ = (cols + 63) / 64;
    words_.assign(rows * rowWords_, 0);
}

void
DenseBitMat::clearRow(std::size_t r)
{
    std::fill_n(row(r), rowWords_, uint64_t{0});
}

void
DenseBitMat::xorRowInto(std::size_t src, uint64_t *dst) const
{
    const uint64_t *s = row(src);
    for (std::size_t w = 0; w < rowWords_; ++w) {
        dst[w] ^= s[w];
    }
}

std::size_t
DenseBitMat::rank() const
{
    // Row-swap-free elimination on a scratch copy: pivots are
    // (row, lead column) pairs recorded in place.
    std::vector<uint64_t> scratch(words_);
    std::vector<std::size_t> pivRow;
    std::vector<std::size_t> pivCol;
    for (std::size_t r = 0; r < rows_; ++r) {
        uint64_t *cur = scratch.data() + r * rowWords_;
        for (std::size_t p = 0; p < pivRow.size(); ++p) {
            if ((cur[pivCol[p] >> 6] >> (pivCol[p] & 63)) & 1) {
                const uint64_t *pr = scratch.data() + pivRow[p] * rowWords_;
                for (std::size_t w = 0; w < rowWords_; ++w) {
                    cur[w] ^= pr[w];
                }
            }
        }
        for (std::size_t w = 0; w < rowWords_; ++w) {
            if (cur[w] != 0) {
                pivRow.push_back(r);
                pivCol.push_back((w << 6) + std::countr_zero(cur[w]));
                break;
            }
        }
    }
    return pivRow.size();
}

void
Gf2Eliminator::begin(std::size_t numRows)
{
    rowWords_ = (numRows + 63) / 64;
    // Rank never exceeds the row count, so member sets (bits over pivot
    // slots) fit the same word count as a packed column.
    memWords_ = rowWords_ == 0 ? 1 : rowWords_;
    pushed_ = 0;
    solved_ = false;
    pivData_.clear();
    pivLead_.clear();
    pivPush_.clear();
    rSyn_.assign(rowWords_, 0);
    solMem_.assign(memWords_, 0);
    cand_.assign(rowWords_ + memWords_, 0);
}

void
Gf2Eliminator::setSyndromeBit(std::size_t r)
{
    rSyn_[r >> 6] |= uint64_t{1} << (r & 63);
}

bool
Gf2Eliminator::push(const uint64_t *col)
{
    if (solved_) {
        return true;
    }
    std::size_t pushIdx = pushed_++;
    std::size_t stride = rowWords_ + memWords_;
    std::size_t npiv = pivLead_.size();
    // Member words actually in use: pivot slots 0..npiv occupy the low
    // ceil((npiv + 1) / 64) words; the rest stay zero.
    std::size_t memUsed = (npiv >> 6) + 1;

    uint64_t *candCol = cand_.data();
    uint64_t *candMem = cand_.data() + rowWords_;
    std::copy_n(col, rowWords_, candCol);
    std::fill_n(candMem, memUsed, uint64_t{0});

    // Reduce against the pivots in push order. Each pivot is already
    // reduced against its predecessors, so its only lead-row bit is its
    // own; XORing it can set later pivots' lead rows in the candidate
    // (fill-in), which the in-order walk picks up, exactly like the
    // reference elimination.
    for (std::size_t p = 0; p < npiv; ++p) {
        std::size_t lead = pivLead_[p];
        if (((candCol[lead >> 6] >> (lead & 63)) & 1) == 0) {
            continue;
        }
        const uint64_t *piv = pivData_.data() + p * stride;
        for (std::size_t w = 0; w < rowWords_; ++w) {
            candCol[w] ^= piv[w];
        }
        const uint64_t *mem = piv + rowWords_;
        for (std::size_t w = 0; w < memUsed; ++w) {
            candMem[w] ^= mem[w];
        }
    }
    std::size_t lead = (std::size_t)-1;
    for (std::size_t w = 0; w < rowWords_; ++w) {
        if (candCol[w] != 0) {
            lead = (w << 6) + std::countr_zero(candCol[w]);
            break;
        }
    }
    if (lead == (std::size_t)-1) {
        return false; // Dependent: the span is unchanged, no new check.
    }

    // Accept the pivot: slot npiv, member set = accumulated members plus
    // the candidate itself.
    candMem[npiv >> 6] ^= uint64_t{1} << (npiv & 63);
    pivData_.insert(pivData_.end(), cand_.begin(), cand_.end());
    pivLead_.push_back((uint32_t)lead);
    pivPush_.push_back((uint32_t)pushIdx);

    // Incremental syndrome reduction: the residual already has zeros at
    // every earlier pivot's lead row and the new pivot is reduced against
    // all of them, so applying it once (iff its lead bit is set in the
    // residual) keeps the residual fully reduced — no per-step
    // re-reduction against the whole pivot set.
    if ((rSyn_[lead >> 6] >> (lead & 63)) & 1) {
        for (std::size_t w = 0; w < rowWords_; ++w) {
            rSyn_[w] ^= candCol[w];
        }
        std::size_t memNow = (npiv >> 6) + 1;
        for (std::size_t w = 0; w < memNow; ++w) {
            solMem_[w] ^= candMem[w];
        }
    }
    for (std::size_t w = 0; w < rowWords_; ++w) {
        if (rSyn_[w] != 0) {
            return false;
        }
    }
    solved_ = true;
    return true;
}

void
Gf2Eliminator::solution(std::vector<uint32_t> &out) const
{
    out.clear();
    for (std::size_t w = 0; w < memWords_; ++w) {
        uint64_t word = solMem_[w];
        while (word != 0) {
            std::size_t slot = (w << 6) + std::countr_zero(word);
            out.push_back(pivPush_[slot]);
            word &= word - 1;
        }
    }
    std::sort(out.begin(), out.end());
}

} // namespace prophunt::decoder
