#include "decoder/matching_graph.h"

#include <algorithm>
#include <map>
#include <set>

namespace prophunt::decoder {

namespace {

/** Merge an edge into the graph, combining parallel edges. */
void
addEdge(MatchingGraph &g, std::map<std::pair<uint32_t, uint32_t>,
                                   std::size_t> &edge_index,
        uint32_t u, uint32_t v, uint64_t obs, double p)
{
    if (u > v) {
        std::swap(u, v);
    }
    auto key = std::make_pair(u, v);
    auto it = edge_index.find(key);
    if (it != edge_index.end()) {
        MatchEdge &e = g.edges[it->second];
        // Parallel mechanisms with different observable masks are kept as
        // the more likely branch; same-mask mechanisms combine.
        if (e.obsMask == obs) {
            e.p = e.p + p - 2.0 * e.p * p;
        } else if (p > e.p) {
            e.obsMask = obs;
            e.p = p;
        }
        return;
    }
    edge_index.emplace(key, g.edges.size());
    g.edges.push_back({u, v, obs, p});
}

} // namespace

MatchingGraph
buildMatchingGraph(const sim::Dem &dem, const circuit::SmCircuit &circuit)
{
    MatchingGraph g;
    g.numDetectors = dem.numDetectors;

    // Sector of each detector: true if it monitors an X check. Final-round
    // reconstruction detectors monitor deterministic-basis checks and keep
    // that check's sector.
    std::size_t mx = 0;
    // Infer the X-check count from the schedule-independent detectorSource.
    // X checks have global index < numXChecks; we recover the boundary from
    // the circuit's source list by checking observables' basis instead —
    // the caller's CssCode isn't available here, so we accept the check
    // index directly.
    (void)mx;
    auto sector_of = [&](uint32_t det) {
        return circuit.detectorSource[det].first;
    };

    // Split each mechanism by check sector type is not needed per se; we
    // split by *check type* via detector source check index parity of the
    // experiment. In a CSS memory experiment a mechanism's detectors
    // separate into the X-check group and the Z-check group; detectors of
    // the same group form the matchable component.
    // We classify detectors by whether their source check index is below
    // the number of X checks. That number equals the smallest check index
    // of a detector attached to the final round... To stay self-contained,
    // we take it from the circuit: X checks are exactly the checks measured
    // with MeasureX.
    std::vector<bool> check_is_x;
    for (std::size_t i = 0; i < circuit.instructions.size(); ++i) {
        const auto &ins = circuit.instructions[i];
        if ((ins.op == circuit::OpType::MeasureX ||
             ins.op == circuit::OpType::MeasureZ) &&
            ins.qubits[0] >= circuit.numData) {
            std::size_t check = ins.qubits[0] - circuit.numData;
            if (check_is_x.size() <= check) {
                check_is_x.resize(check + 1, false);
            }
            check_is_x[check] = ins.op == circuit::OpType::MeasureX;
        }
    }
    auto det_is_x_sector = [&](uint32_t det) {
        return check_is_x[sector_of(det)];
    };

    std::map<std::pair<uint32_t, uint32_t>, std::size_t> edge_index;

    // First pass: mechanisms whose per-sector components are already
    // edge-like (size <= 2) define the known edge set.
    struct Component
    {
        std::vector<uint32_t> dets;
        uint64_t obs;
        double p;
    };
    std::vector<Component> deferred;

    for (const auto &mech : dem.errors) {
        uint64_t obs = 0;
        for (uint32_t o : mech.observables) {
            obs |= uint64_t{1} << o;
        }
        std::vector<uint32_t> xs, zs;
        for (uint32_t d : mech.detectors) {
            (det_is_x_sector(d) ? xs : zs).push_back(d);
        }
        // The observable mask rides on the sector that carries the logical
        // flip; in a memory experiment that is the deterministic-basis
        // sector (the one with final-round detectors). If one component is
        // empty the other takes it regardless.
        bool obs_on_z = circuit.basis == circuit::MemoryBasis::Z;
        auto handle = [&](std::vector<uint32_t> &comp, uint64_t comp_obs) {
            if (comp.empty() && comp_obs == 0) {
                return;
            }
            if (comp.size() == 0) {
                // Undetected logical flip: represent as a boundary self
                // edge on the virtual boundary (decoder can never predict
                // it; it contributes directly to the error floor). Skip.
                return;
            }
            if (comp.size() == 1) {
                addEdge(g, edge_index, comp[0], MatchEdge::kBoundary,
                        comp_obs, mech.p);
            } else if (comp.size() == 2) {
                addEdge(g, edge_index, comp[0], comp[1], comp_obs, mech.p);
            } else {
                deferred.push_back({comp, comp_obs, mech.p});
            }
        };
        uint64_t z_obs = obs_on_z ? obs : 0;
        uint64_t x_obs = obs_on_z ? 0 : obs;
        // If a component is empty, give the observable to the other one.
        if (zs.empty() && z_obs) {
            x_obs |= z_obs;
            z_obs = 0;
        }
        if (xs.empty() && x_obs) {
            z_obs |= x_obs;
            x_obs = 0;
        }
        handle(zs, z_obs);
        handle(xs, x_obs);
    }

    // Second pass: decompose larger components into known edges.
    for (const auto &comp : deferred) {
        std::vector<uint32_t> rest = comp.dets;
        std::vector<std::pair<uint32_t, uint32_t>> pieces;
        bool progress = true;
        while (rest.size() > 1 && progress) {
            progress = false;
            for (std::size_t i = 0; i < rest.size() && !progress; ++i) {
                for (std::size_t j = i + 1; j < rest.size() && !progress;
                     ++j) {
                    uint32_t a = std::min(rest[i], rest[j]);
                    uint32_t b = std::max(rest[i], rest[j]);
                    if (edge_index.count({a, b})) {
                        pieces.push_back({a, b});
                        rest.erase(rest.begin() + (long)j);
                        rest.erase(rest.begin() + (long)i);
                        progress = true;
                    }
                }
            }
        }
        if (!progress && rest.size() > 1) {
            ++g.fallbackDecompositions;
            // Fallback: pair sequentially.
            while (rest.size() > 1) {
                pieces.push_back({rest[rest.size() - 2], rest.back()});
                rest.pop_back();
                rest.pop_back();
            }
        }
        for (uint32_t d : rest) {
            pieces.push_back({d, MatchEdge::kBoundary});
        }
        // The observable mask goes to the first piece; the rest are plain.
        for (std::size_t i = 0; i < pieces.size(); ++i) {
            addEdge(g, edge_index, pieces[i].first, pieces[i].second,
                    i == 0 ? comp.obs : 0, comp.p);
        }
    }

    g.incident.resize(g.numDetectors);
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
        g.incident[g.edges[e].u].push_back((uint32_t)e);
        if (g.edges[e].v != MatchEdge::kBoundary) {
            g.incident[g.edges[e].v].push_back((uint32_t)e);
        }
    }
    return g;
}

} // namespace prophunt::decoder
