#include "decoder/mle.h"
#include <functional>

#include <algorithm>
#include <cmath>

namespace prophunt::decoder {

MleDecoder::MleDecoder(const sim::Dem &dem, std::size_t max_weight)
    : dem_(dem), maxWeight_(max_weight)
{
}

uint64_t
MleDecoder::decode(const std::vector<uint32_t> &flipped_detectors)
{
    std::size_t ne = dem_.errors.size();
    std::size_t words = (dem_.numDetectors + 63) / 64;
    std::vector<uint64_t> target(words, 0);
    for (uint32_t d : flipped_detectors) {
        target[d >> 6] |= uint64_t{1} << (d & 63);
    }
    std::vector<std::vector<uint64_t>> cols(ne,
                                            std::vector<uint64_t>(words, 0));
    std::vector<double> logp(ne);
    for (std::size_t e = 0; e < ne; ++e) {
        for (uint32_t d : dem_.errors[e].detectors) {
            cols[e][d >> 6] |= uint64_t{1} << (d & 63);
        }
        double p = std::clamp(dem_.errors[e].p, 1e-12, 0.5);
        logp[e] = std::log(p / (1.0 - p));
    }

    double best_logp = -1e300;
    uint64_t best_obs = 0;
    bool found = false;

    // DFS over subsets up to maxWeight_, pruning on the lowest unmatched
    // detector: one of its incident errors must be in the subset.
    auto det_adj = dem_.detectorToErrors();
    std::vector<uint64_t> residual = target;
    std::vector<uint8_t> used(ne, 0);

    std::function<void(std::size_t, double, uint64_t)> dfs =
        [&](std::size_t weight, double lp, uint64_t obs) {
            // Find lowest set bit of the residual.
            std::size_t det = dem_.numDetectors;
            for (std::size_t w = 0; w < words && det == dem_.numDetectors;
                 ++w) {
                if (residual[w]) {
                    det = (w << 6) + std::countr_zero(residual[w]);
                }
            }
            if (det == dem_.numDetectors) {
                if (!found || lp > best_logp) {
                    found = true;
                    best_logp = lp;
                    best_obs = obs;
                }
                return;
            }
            if (weight >= maxWeight_) {
                return;
            }
            for (uint32_t e : det_adj[det]) {
                if (used[e]) {
                    continue;
                }
                used[e] = 1;
                for (std::size_t w = 0; w < words; ++w) {
                    residual[w] ^= cols[e][w];
                }
                uint64_t obs_mask = 0;
                for (uint32_t o : dem_.errors[e].observables) {
                    obs_mask |= uint64_t{1} << o;
                }
                dfs(weight + 1, lp + logp[e], obs ^ obs_mask);
                for (std::size_t w = 0; w < words; ++w) {
                    residual[w] ^= cols[e][w];
                }
                used[e] = 0;
            }
        };
    dfs(0, 0.0, 0);
    return best_obs;
}

} // namespace prophunt::decoder
