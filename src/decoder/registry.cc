#include "decoder/registry.h"

#include <sstream>
#include <stdexcept>

#include "decoder/matching_graph.h"
#include "decoder/mle.h"
#include "decoder/union_find.h"

namespace prophunt::decoder {

namespace {

/**
 * Extract a backend's options from the variant.
 *
 * monostate yields backend defaults; any other mismatched alternative is
 * a caller bug worth a loud error rather than a silent default.
 */
template <class T>
T
optionsAs(const DecoderOptions &opts, const char *name)
{
    if (std::holds_alternative<std::monostate>(opts)) {
        return T{};
    }
    if (const T *o = std::get_if<T>(&opts)) {
        return *o;
    }
    throw std::invalid_argument(std::string("decoder '") + name +
                                "': options variant holds a different "
                                "backend's options");
}

} // namespace

std::string
DecoderSpec::describe() const
{
    std::ostringstream os;
    os << name;
    if (const auto *uf = std::get_if<UnionFindOptions>(&options)) {
        (void)uf;
        os << "{}";
    } else if (const auto *bp = std::get_if<BpOsdOptions>(&options)) {
        os << "{maxIterations=" << bp->maxIterations
           << ",scale=" << bp->scale << ",regionRadius=" << bp->regionRadius
           << ",stagnationWindow=" << bp->stagnationWindow
           << ",laneWidth=" << bp->laneWidth
           << ",packedOsd=" << bp->packedOsd << "}";
    } else if (const auto *mle = std::get_if<MleOptions>(&options)) {
        os << "{maxWeight=" << mle->maxWeight << "}";
    }
    return os.str();
}

Registry::Registry()
{
    auto unionFind = [](const sim::Dem &dem,
                        const circuit::SmCircuit &circuit,
                        const DecoderOptions &opts) {
        (void)optionsAs<UnionFindOptions>(opts, "union_find");
        return std::make_unique<UnionFindDecoder>(
            buildMatchingGraph(dem, circuit));
    };
    factories_["union_find"] = unionFind;
    factories_["matching"] = unionFind;
    factories_["bp_osd"] = [](const sim::Dem &dem,
                              const circuit::SmCircuit &,
                              const DecoderOptions &opts) {
        return std::make_unique<BpOsdDecoder>(
            dem, optionsAs<BpOsdOptions>(opts, "bp_osd"));
    };
    factories_["mle"] = [](const sim::Dem &dem, const circuit::SmCircuit &,
                           const DecoderOptions &opts) {
        return std::make_unique<MleDecoder>(
            dem, optionsAs<MleOptions>(opts, "mle").maxWeight);
    };
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(const std::string &name, Factory factory)
{
    std::lock_guard<std::mutex> lock(mutex_);
    factories_[name] = std::move(factory);
}

bool
Registry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) != 0;
}

std::vector<std::string>
Registry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_) {
        out.push_back(name);
    }
    return out;
}

std::unique_ptr<Decoder>
Registry::create(const DecoderSpec &spec, const sim::Dem &dem,
                 const circuit::SmCircuit &circuit) const
{
    // Copy the factory under the lock, build outside it: decoder
    // construction is slow (matching-graph / Tanner-CSR builds) and must
    // not serialize concurrent engine workers.
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = factories_.find(spec.name);
        if (it == factories_.end()) {
            std::string known;
            for (const auto &[name, entry] : factories_) {
                known += known.empty() ? name : ", " + name;
            }
            throw std::invalid_argument("unknown decoder '" + spec.name +
                                        "' (registered: " + known + ")");
        }
        factory = it->second;
    }
    return factory(dem, circuit, spec.options);
}

std::unique_ptr<Decoder>
Registry::make(const DecoderSpec &spec, const sim::Dem &dem,
               const circuit::SmCircuit &circuit)
{
    return instance().create(spec, dem, circuit);
}

} // namespace prophunt::decoder
