/**
 * @file
 * Union-Find decoder (Delfosse-Nickerson) on a matching graph.
 *
 * Clusters grow from flipped detectors in half-edge increments until every
 * cluster is neutral (even defect parity or touching the boundary), then a
 * peeling pass over the grown spanning forest produces the correction. This
 * is our stand-in for PyMatching's sparse-blossom MWPM (DESIGN.md
 * substitution 2): near-MWPM accuracy with near-linear runtime.
 */
#ifndef PROPHUNT_DECODER_UNION_FIND_H
#define PROPHUNT_DECODER_UNION_FIND_H

#include "decoder/decoder.h"
#include "decoder/matching_graph.h"

namespace prophunt::decoder {

/** Union-Find matching decoder. Reusable across shots. */
class UnionFindDecoder : public Decoder
{
  public:
    explicit UnionFindDecoder(MatchingGraph graph);

    uint64_t decode(const std::vector<uint32_t> &flipped_detectors) override;

    std::unique_ptr<Decoder>
    clone() const override
    {
        return std::make_unique<UnionFindDecoder>(*this);
    }

    const MatchingGraph &graph() const { return graph_; }

  private:
    uint32_t find(uint32_t v);
    void unite(uint32_t a, uint32_t b);

    MatchingGraph graph_;

    // Per-decode scratch (sized once).
    std::vector<uint32_t> parent_;
    std::vector<uint8_t> rankOf_;
    std::vector<uint8_t> parity_;
    std::vector<uint8_t> touchesBoundary_;
    std::vector<uint8_t> growth_;
    std::vector<uint8_t> defect_;
};

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_UNION_FIND_H
