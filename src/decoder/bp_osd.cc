#include "decoder/bp_osd.h"

#include <bit>
#include <algorithm>
#include <cmath>
#include <numeric>

namespace prophunt::decoder {

BpOsdDecoder::BpOsdDecoder(const sim::Dem &dem, BpOsdOptions opts)
    : opts_(opts), numDetectors_(dem.numDetectors)
{
    colDets_.reserve(dem.errors.size());
    detCols_.resize(numDetectors_);
    for (std::size_t e = 0; e < dem.errors.size(); ++e) {
        const auto &mech = dem.errors[e];
        colDets_.push_back(mech.detectors);
        uint64_t obs = 0;
        for (uint32_t o : mech.observables) {
            obs |= uint64_t{1} << o;
        }
        colObs_.push_back(obs);
        double p = std::clamp(mech.p, 1e-12, 0.5 - 1e-12);
        prior_.push_back(std::log((1.0 - p) / p));
        for (uint32_t d : mech.detectors) {
            detCols_[d].push_back((uint32_t)e);
        }
        if (!mech.detectors.empty()) {
            auto it = single_.find(mech.detectors);
            if (it == single_.end() || mech.p > it->second.second) {
                single_[mech.detectors] = {obs, mech.p};
            }
        }
    }
}

uint64_t
BpOsdDecoder::decodeRegion(const std::vector<uint32_t> &errs,
                           const std::vector<uint32_t> &flipped, bool &ok)
{
    // Local index maps.
    std::vector<uint32_t> dets;
    std::vector<int> det_local(numDetectors_, -1);
    for (uint32_t e : errs) {
        for (uint32_t d : colDets_[e]) {
            if (det_local[d] < 0) {
                det_local[d] = (int)dets.size();
                dets.push_back(d);
            }
        }
    }
    std::size_t nd = dets.size(), ne = errs.size();
    std::vector<uint8_t> syn(nd, 0);
    for (uint32_t d : flipped) {
        if (det_local[d] < 0) {
            // A flipped detector with no adjacent error in the region:
            // unsolvable here.
            ok = false;
            return 0;
        }
        syn[det_local[d]] = 1;
    }

    // Edge lists (local).
    struct ColEdges
    {
        std::size_t begin, count;
    };
    std::vector<ColEdges> col_edges(ne);
    std::vector<uint32_t> edge_det;   // local detector per edge
    std::vector<double> msg_c2d;      // column -> detector messages
    for (std::size_t c = 0; c < ne; ++c) {
        col_edges[c].begin = edge_det.size();
        col_edges[c].count = colDets_[errs[c]].size();
        for (uint32_t d : colDets_[errs[c]]) {
            edge_det.push_back((uint32_t)det_local[d]);
            msg_c2d.push_back(prior_[errs[c]]);
        }
    }
    std::vector<std::vector<uint32_t>> det_edges(nd);
    for (std::size_t c = 0; c < ne; ++c) {
        for (std::size_t k = 0; k < col_edges[c].count; ++k) {
            det_edges[edge_det[col_edges[c].begin + k]].push_back(
                (uint32_t)(col_edges[c].begin + k));
        }
    }

    std::vector<double> msg_d2c(edge_det.size(), 0.0);
    std::vector<double> posterior(ne, 0.0);
    std::vector<uint8_t> hard(ne, 0);

    auto check_syndrome = [&]() {
        std::vector<uint8_t> acc(nd, 0);
        for (std::size_t c = 0; c < ne; ++c) {
            if (!hard[c]) {
                continue;
            }
            for (std::size_t k = 0; k < col_edges[c].count; ++k) {
                acc[edge_det[col_edges[c].begin + k]] ^= 1;
            }
        }
        return acc == syn;
    };

    bool converged = false;
    for (std::size_t it = 0; it < opts_.maxIterations && !converged; ++it) {
        // Detector -> column (min-sum with normalization).
        for (std::size_t d = 0; d < nd; ++d) {
            const auto &edges = det_edges[d];
            // Compute product of signs and two smallest magnitudes.
            int sign = syn[d] ? -1 : 1;
            double min1 = 1e300, min2 = 1e300;
            std::size_t argmin = 0;
            for (uint32_t e : edges) {
                double v = msg_c2d[e];
                if (v < 0) {
                    sign = -sign;
                }
                double a = std::fabs(v);
                if (a < min1) {
                    min2 = min1;
                    min1 = a;
                    argmin = e;
                } else if (a < min2) {
                    min2 = a;
                }
            }
            for (uint32_t e : edges) {
                double mag = (e == argmin) ? min2 : min1;
                int s = sign;
                if (msg_c2d[e] < 0) {
                    s = -s;
                }
                msg_d2c[e] = opts_.scale * s * mag;
            }
        }
        // Column -> detector, posterior, hard decision.
        for (std::size_t c = 0; c < ne; ++c) {
            double total = prior_[errs[c]];
            for (std::size_t k = 0; k < col_edges[c].count; ++k) {
                total += msg_d2c[col_edges[c].begin + k];
            }
            posterior[c] = total;
            hard[c] = total < 0;
            for (std::size_t k = 0; k < col_edges[c].count; ++k) {
                std::size_t e = col_edges[c].begin + k;
                msg_c2d[e] = total - msg_d2c[e];
            }
        }
        converged = check_syndrome();
    }

    uint64_t result = 0;
    if (converged) {
        for (std::size_t c = 0; c < ne; ++c) {
            if (hard[c]) {
                result ^= colObs_[errs[c]];
            }
        }
        ok = true;
        return result;
    }

    // OSD-0: process columns in decreasing error likelihood (ascending
    // posterior LLR) and solve H x = s by incremental elimination on column
    // vectors over the local detectors.
    std::vector<uint32_t> order(ne);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return posterior[a] < posterior[b];
    });

    std::size_t words = (nd + 63) / 64;
    std::vector<uint64_t> s_vec(words, 0);
    for (std::size_t d = 0; d < nd; ++d) {
        if (syn[d]) {
            s_vec[d >> 6] |= uint64_t{1} << (d & 63);
        }
    }
    struct Pivot
    {
        std::size_t row;
        std::vector<uint64_t> col;
        uint32_t errCol;
        std::vector<uint32_t> members; ///< original columns XORed in
    };
    std::vector<Pivot> pivots;
    std::vector<uint8_t> sol_uses(ne, 0);
    bool solved = false;
    // Reduce the syndrome as we go; solution = pivots whose row bit is set
    // in the (running) reduced syndrome.
    for (uint32_t oc : order) {
        // Build the column vector.
        std::vector<uint64_t> col(words, 0);
        for (std::size_t k = 0; k < col_edges[oc].count; ++k) {
            uint32_t d = edge_det[col_edges[oc].begin + k];
            col[d >> 6] |= uint64_t{1} << (d & 63);
        }
        std::vector<uint32_t> members{oc};
        for (const Pivot &p : pivots) {
            if ((col[p.row >> 6] >> (p.row & 63)) & 1) {
                for (std::size_t w = 0; w < words; ++w) {
                    col[w] ^= p.col[w];
                }
                for (uint32_t mc : p.members) {
                    members.push_back(mc);
                }
            }
        }
        std::size_t row = nd;
        for (std::size_t w = 0; w < words && row == nd; ++w) {
            if (col[w]) {
                row = (w << 6) + std::countr_zero(col[w]);
            }
        }
        if (row == nd) {
            continue; // dependent column
        }
        pivots.push_back({row, std::move(col), oc, std::move(members)});
        // Check if the syndrome is now explainable.
        std::vector<uint64_t> r = s_vec;
        std::vector<uint8_t> use(pivots.size(), 0);
        for (std::size_t pi = 0; pi < pivots.size(); ++pi) {
            const Pivot &p = pivots[pi];
            if ((r[p.row >> 6] >> (p.row & 63)) & 1) {
                for (std::size_t w = 0; w < words; ++w) {
                    r[w] ^= p.col[w];
                }
                use[pi] = 1;
            }
        }
        bool zero = true;
        for (uint64_t w : r) {
            if (w) {
                zero = false;
                break;
            }
        }
        if (zero) {
            std::fill(sol_uses.begin(), sol_uses.end(), 0);
            for (std::size_t pi = 0; pi < pivots.size(); ++pi) {
                if (use[pi]) {
                    for (uint32_t mc : pivots[pi].members) {
                        sol_uses[mc] ^= 1;
                    }
                }
            }
            solved = true;
            break;
        }
    }
    if (!solved) {
        ok = false;
        return 0;
    }
    for (std::size_t c = 0; c < ne; ++c) {
        if (sol_uses[c]) {
            result ^= colObs_[errs[c]];
        }
    }
    ok = true;
    return result;
}

uint64_t
BpOsdDecoder::decode(const std::vector<uint32_t> &flipped_detectors)
{
    if (flipped_detectors.empty()) {
        return 0;
    }
    // Weight-1 fast path: a syndrome exactly matching one mechanism is
    // overwhelmingly most likely explained by it (p >> p^2).
    auto hit = single_.find(flipped_detectors);
    if (hit != single_.end()) {
        return hit->second.first;
    }
    // Localized region: errors within regionRadius expansion layers of the
    // flipped detectors.
    std::vector<uint8_t> err_in(colDets_.size(), 0);
    std::vector<uint8_t> det_in(numDetectors_, 0);
    std::vector<uint32_t> frontier_dets = flipped_detectors;
    std::vector<uint32_t> errs;
    for (uint32_t d : frontier_dets) {
        det_in[d] = 1;
    }
    for (std::size_t layer = 0; layer < opts_.regionRadius; ++layer) {
        std::vector<uint32_t> new_dets;
        for (uint32_t d : frontier_dets) {
            for (uint32_t e : detCols_[d]) {
                if (err_in[e]) {
                    continue;
                }
                err_in[e] = 1;
                errs.push_back(e);
                for (uint32_t dd : colDets_[e]) {
                    if (!det_in[dd]) {
                        det_in[dd] = 1;
                        new_dets.push_back(dd);
                    }
                }
            }
        }
        frontier_dets = std::move(new_dets);
        if (frontier_dets.empty()) {
            break;
        }
    }
    bool ok = false;
    uint64_t result = decodeRegion(errs, flipped_detectors, ok);
    if (ok) {
        return result;
    }
    // Fall back to the full graph.
    std::vector<uint32_t> all(colDets_.size());
    std::iota(all.begin(), all.end(), 0);
    result = decodeRegion(all, flipped_detectors, ok);
    return result;
}

} // namespace prophunt::decoder
