#include "decoder/bp_osd.h"

#include <bit>
#include <algorithm>
#include <cmath>
#include <numeric>

namespace prophunt::decoder {

namespace {

/**
 * Message sentinel on inactive edges. Equal to the reference min-sum
 * magnitude initialization, so an inactive edge can never displace an
 * active one from the two-minimum (the two smallest of a multiset already
 * containing two 1e300 entries are unchanged by adding more), and its
 * positive sign leaves the row sign product alone.
 */
constexpr double kInactive = 1e300;

/**
 * Elimination usually terminates within a few dozen columns, so on large
 * regions only the most likely prefix is sorted up front; the tail is
 * sorted lazily if ever reached. The reference-exact mode keeps the full
 * sort so column order matches bit for bit.
 */
constexpr std::size_t kOsdPrefix = 512;

/**
 * Map a posterior to a uint64 whose integer order equals double order.
 * -0.0 is collapsed onto +0.0 first so key equality matches double
 * equality exactly — the column-id tie-break must fire for the same
 * pairs as a (post, col) comparator would. Finite and infinite values
 * order correctly; posteriors are never NaN.
 */
inline uint64_t
osdPostKey(double v)
{
    if (v == 0.0) {
        v = 0.0;
    }
    uint64_t b = std::bit_cast<uint64_t>(v);
    return (b & (uint64_t{1} << 63)) != 0 ? ~b : (b | (uint64_t{1} << 63));
}

} // namespace

std::shared_ptr<const BpOsdDecoder::Tanner>
BpOsdDecoder::buildTanner(const sim::Dem &dem)
{
    auto t = std::make_shared<Tanner>();
    std::size_t numDetectors = dem.numDetectors;
    t->colDets.reserve(dem.errors.size());
    t->detCols.resize(numDetectors);
    for (std::size_t e = 0; e < dem.errors.size(); ++e) {
        const auto &mech = dem.errors[e];
        t->colDets.push_back(mech.detectors);
        uint64_t obs = 0;
        for (uint32_t o : mech.observables) {
            obs |= uint64_t{1} << o;
        }
        t->colObs.push_back(obs);
        double p = std::clamp(mech.p, 1e-12, 0.5 - 1e-12);
        t->prior.push_back(std::log((1.0 - p) / p));
        for (uint32_t d : mech.detectors) {
            t->detCols[d].push_back((uint32_t)e);
        }
        if (!mech.detectors.empty()) {
            auto it = t->single.find(mech.detectors);
            if (it == t->single.end() || mech.p > it->second.second) {
                t->single[mech.detectors] = {obs, mech.p};
            }
        }
    }

    // Flatten the Tanner graph once: edge e of column c occupies slots
    // colBegin[c]..colBegin[c+1]; detEdges lists the same edge ids per
    // detector in (column, slot) order — the traversal order every
    // per-shot pass reuses.
    std::size_t ne = t->colDets.size();
    t->colBegin.assign(ne + 1, 0);
    for (std::size_t c = 0; c < ne; ++c) {
        t->colBegin[c + 1] = t->colBegin[c] + (uint32_t)t->colDets[c].size();
    }
    std::size_t edges = t->colBegin[ne];
    t->colDet.reserve(edges);
    for (std::size_t c = 0; c < ne; ++c) {
        for (uint32_t d : t->colDets[c]) {
            t->colDet.push_back(d);
        }
    }
    t->detBegin.assign(numDetectors + 1, 0);
    for (uint32_t d : t->colDet) {
        ++t->detBegin[d + 1];
    }
    for (std::size_t d = 0; d < numDetectors; ++d) {
        t->detBegin[d + 1] += t->detBegin[d];
    }
    t->detEdges.resize(edges);
    {
        std::vector<uint32_t> fill(t->detBegin.begin(),
                                   t->detBegin.end() - 1);
        for (std::size_t e = 0; e < edges; ++e) {
            t->detEdges[fill[t->colDet[e]]++] = (uint32_t)e;
        }
    }
    t->detCol.resize(edges);
    for (std::size_t d = 0; d < numDetectors; ++d) {
        for (uint32_t i = t->detBegin[d]; i < t->detBegin[d + 1]; ++i) {
            // detEdges is ordered by column within a detector, so this
            // reproduces the detCols adjacency order exactly.
            uint32_t e = t->detEdges[i];
            uint32_t lo = 0, hi = (uint32_t)ne;
            while (lo + 1 < hi) {
                uint32_t mid = (lo + hi) / 2;
                if (t->colBegin[mid] <= e) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            t->detCol[i] = lo;
        }
    }
    t->allCols.resize(ne);
    std::iota(t->allCols.begin(), t->allCols.end(), 0);
    return t;
}

BpOsdDecoder::BpOsdDecoder(const sim::Dem &dem, BpOsdOptions opts)
    : opts_(opts), numDetectors_(dem.numDetectors), tanner_(buildTanner(dem))
{
    std::size_t ne = tanner_->colDets.size();
    std::size_t edges = tanner_->colBegin[ne];
    msgC2d_.assign(edges, kInactive);
    msgD2c_.resize(edges);
    posterior_.assign(ne, 0.0);
    hard_.assign(ne, 0);
    acc_.assign(numDetectors_, 0);
    syn_.assign(numDetectors_, 0);
    errIn_.assign(ne, 0);
    detIn_.assign(numDetectors_, 0);
    detLocal_.assign(numDetectors_, -1);
    std::size_t maxDeg = 0;
    for (std::size_t d = 0; d < numDetectors_; ++d) {
        maxDeg = std::max<std::size_t>(maxDeg,
                                       tanner_->detBegin[d + 1] - tanner_->detBegin[d]);
    }
    edgeNeg_.assign(maxDeg, 0);
    satFromDet_.assign(numDetectors_, -1);
    // Reach bitmaps pay one BFS per distinct seed detector and then
    // replace every later BFS with an OR; cap the matrix at a size where
    // that trade is obviously right (32 MB covers every benchmark code
    // by orders of magnitude). The matrix itself is allocated lazily on
    // the first growRegion — engine caches hold prototype decoders that
    // are only ever clone()d, and per-worker clones should not each
    // commit megabytes before decoding a single shot.
    std::size_t reachWords = (ne + 63) / 64;
    reachEnabled_ = ne > 0 && numDetectors_ > 0 &&
                    numDetectors_ * reachWords * 8 <= 32u << 20;
}

uint64_t
BpOsdDecoder::runRegion(const std::vector<uint32_t> &cols,
                        const std::vector<uint32_t> &flipped, bool &ok)
{
    // One pass over the region's edges: install prior messages and build
    // the local detector numbering in the reference discovery order
    // (consumed by OSD); regionDets_ doubles as the active-detector
    // worklist.
    regionDets_.clear();
    for (uint32_t c : cols) {
        double prior = tanner_->prior[c];
        posterior_[c] = 0.0;
        for (uint32_t e = tanner_->colBegin[c]; e < tanner_->colBegin[c + 1]; ++e) {
            msgC2d_[e] = prior;
            uint32_t d = tanner_->colDet[e];
            if (detLocal_[d] < 0) {
                detLocal_[d] = (int32_t)regionDets_.size();
                regionDets_.push_back(d);
            }
        }
    }
    bool feasible = true;
    for (uint32_t d : flipped) {
        if (detLocal_[d] < 0) {
            // A flipped detector with no adjacent error in the region:
            // unsolvable here.
            feasible = false;
            break;
        }
    }
    if (!feasible) {
        for (uint32_t d : regionDets_) {
            detLocal_[d] = -1;
        }
        for (uint32_t c : cols) {
            for (uint32_t e = tanner_->colBegin[c]; e < tanner_->colBegin[c + 1]; ++e) {
                msgC2d_[e] = kInactive;
            }
        }
        ok = false;
        return 0;
    }

    for (uint32_t d : flipped) {
        syn_[d] = 1;
    }
    // Hamming distance between the hard-decision parity and the syndrome;
    // hard_/acc_ start all-zero between shots.
    std::ptrdiff_t mismatches = (std::ptrdiff_t)flipped.size();

    double scale = opts_.scale;
    bool converged = false;
    std::ptrdiff_t bestMismatches = mismatches;
    std::size_t sinceBest = 0;
    for (std::size_t it = 0; it < opts_.maxIterations && !converged; ++it) {
        // Detector -> column (min-sum with normalization). Inactive edges
        // sit at the kInactive sentinel and cannot perturb the result:
        // their magnitude matches the two-minimum initialization and their
        // sign is positive. Messages are staged into a stack buffer so the
        // write-back pass needs no second gather, and the two-minimum
        // tracking compiles to conditional moves instead of branches.
        for (uint32_t d : regionDets_) {
            uint32_t b = tanner_->detBegin[d], en = tanner_->detBegin[d + 1];
            uint32_t deg = en - b;
            bool negProduct = syn_[d] != 0;
            double min1 = 1e300, min2 = 1e300;
            uint32_t argpos = UINT32_MAX;
            for (uint32_t i = 0; i < deg; ++i) {
                double v = msgC2d_[tanner_->detEdges[b + i]];
                bool neg = v < 0.0;
                negProduct = negProduct != neg;
                edgeNeg_[i] = neg;
                double a = std::fabs(v);
                if (a < min1) {
                    min2 = min1;
                    min1 = a;
                    argpos = i;
                } else if (a < min2) {
                    min2 = a;
                }
            }
            double m1 = scale * min1, m2 = scale * min2;
            for (uint32_t i = 0; i < deg; ++i) {
                double mag = (i == argpos) ? m2 : m1;
                msgD2c_[tanner_->detEdges[b + i]] =
                    (negProduct != (bool)edgeNeg_[i]) ? -mag : mag;
            }
        }
        // Column -> detector, posterior, hard decision. The syndrome check
        // is maintained incrementally: a hard-decision flip toggles the
        // parity of the column's detectors.
        for (uint32_t c : cols) {
            uint32_t b = tanner_->colBegin[c], en = tanner_->colBegin[c + 1];
            double total = tanner_->prior[c];
            for (uint32_t e = b; e < en; ++e) {
                total += msgD2c_[e];
            }
            posterior_[c] = total;
            uint8_t h = total < 0;
            if (h != hard_[c]) {
                hard_[c] = h;
                for (uint32_t e = b; e < en; ++e) {
                    uint32_t d = tanner_->colDet[e];
                    acc_[d] ^= 1;
                    mismatches += (acc_[d] != syn_[d]) ? 1 : -1;
                }
            }
            for (uint32_t e = b; e < en; ++e) {
                msgC2d_[e] = total - msgD2c_[e];
            }
        }
        converged = mismatches == 0;
        if (!converged && opts_.stagnationWindow != 0) {
            if (mismatches < bestMismatches) {
                bestMismatches = mismatches;
                sinceBest = 0;
            } else if (++sinceBest >= opts_.stagnationWindow) {
                break; // BP stagnated; hand the posteriors to OSD.
            }
        }
    }

    uint64_t result = 0;
    bool solved = false;
    if (converged) {
        for (uint32_t c : cols) {
            if (hard_[c]) {
                result ^= tanner_->colObs[c];
            }
        }
        solved = true;
    } else {
        osdPost_.resize(cols.size());
        for (std::size_t i = 0; i < cols.size(); ++i) {
            osdPost_[i] = posterior_[cols[i]];
        }
        solved = osdSolve(cols, osdPost_.data(), flipped);
        if (solved) {
            for (std::size_t c = 0; c < cols.size(); ++c) {
                if (solUses_[c]) {
                    result ^= tanner_->colObs[cols[c]];
                }
            }
        }
    }

    // Restore the between-shot invariants: sentinel messages, zero flags,
    // -1 local indices.
    for (uint32_t c : cols) {
        hard_[c] = 0;
        for (uint32_t e = tanner_->colBegin[c]; e < tanner_->colBegin[c + 1]; ++e) {
            msgC2d_[e] = kInactive;
        }
    }
    for (uint32_t d : regionDets_) {
        acc_[d] = 0;
        detLocal_[d] = -1;
    }
    for (uint32_t d : flipped) {
        syn_[d] = 0;
    }
    ok = solved;
    return solved ? result : 0;
}

bool
BpOsdDecoder::osdSolve(const std::vector<uint32_t> &cols, const double *post,
                       const std::vector<uint32_t> &flipped)
{
    return osdSolveImpl(cols, post, flipped, opts_.packedOsd, nullptr,
                        false);
}

bool
BpOsdDecoder::osdSolveImpl(const std::vector<uint32_t> &cols,
                           const double *post,
                           const std::vector<uint32_t> &flipped, bool packed,
                           OsdColCache *cache, bool global_rows)
{
    // OSD-0: process columns in decreasing error likelihood (ascending
    // posterior LLR) and solve H x = s by incremental elimination on
    // column vectors over the local detectors. Ties are broken by global
    // column id: the pivot order must be identical across elimination
    // backends, sort strategies (full vs lazy prefix), and region
    // discovery orders even when posteriors collide exactly (duplicated
    // priors make that common, not hypothetical). The ranking runs on
    // flat OsdKey records — the indirect double comparator, not the
    // elimination, used to dominate the post-pass on large regions.
    std::size_t ne = cols.size();
    osdKeys_.resize(ne);
    for (std::size_t i = 0; i < ne; ++i) {
        osdKeys_[i] = OsdKey{osdPostKey(post[i]), cols[i], (uint32_t)i};
    }
    bool fullSort = opts_.stagnationWindow == 0 || ne <= kOsdPrefix;
    if (fullSort) {
        std::sort(osdKeys_.begin(), osdKeys_.end());
        osdSortedPrefix_ = ne;
    } else {
        std::nth_element(osdKeys_.begin(), osdKeys_.begin() + kOsdPrefix,
                         osdKeys_.end());
        std::sort(osdKeys_.begin(), osdKeys_.begin() + kOsdPrefix);
        osdSortedPrefix_ = kOsdPrefix;
    }
    if (packed) {
        return osdSolvePacked(cols, flipped, cache, global_rows);
    }
    return osdSolveScalar(cols, flipped);
}

void
BpOsdDecoder::osdSortTail()
{
    std::sort(osdKeys_.begin() + osdSortedPrefix_, osdKeys_.end());
    osdSortedPrefix_ = osdKeys_.size();
}

bool
BpOsdDecoder::osdSolvePacked(const std::vector<uint32_t> &cols,
                             const std::vector<uint32_t> &flipped,
                             OsdColCache *cache, bool global_rows)
{
    // Row numbering: the region-local detLocal_ map when the caller has
    // one anyway (runRegion, the scalar reference comparisons), the
    // global detector ids when it does not (the batched flush) — the
    // solution is row-numbering invariant, and global rows make the
    // per-job detLocal_ rebuild plus one indirection per gathered bit
    // disappear.
    std::size_t ne = cols.size();
    std::size_t nd = global_rows ? numDetectors_ : regionDets_.size();
    std::size_t words = (nd + 63) / 64;
    elim_.begin(nd);
    for (uint32_t d : flipped) {
        elim_.setSyndromeBit(global_rows ? d : (std::size_t)detLocal_[d]);
    }
    solUses_.assign(ne, 0);
    osdPushPos_.clear();
    bool solved = false;
    for (std::size_t oi = 0; oi < ne; ++oi) {
        if (oi == osdSortedPrefix_) {
            osdSortTail();
        }
        uint32_t oc = osdKeys_[oi].pos;
        uint32_t gc = cols[oc];
        const uint64_t *colBits;
        if (cache != nullptr) {
            // Shared lazily built packed column: one gather per column
            // per flush group, not per shot.
            uint64_t *bits = cache->bits.row(oc);
            if (!cache->built[oc]) {
                cache->built[oc] = 1;
                for (uint32_t e = tanner_->colBegin[gc]; e < tanner_->colBegin[gc + 1];
                     ++e) {
                    uint32_t ld = global_rows
                                      ? tanner_->colDet[e]
                                      : (uint32_t)detLocal_[tanner_->colDet[e]];
                    bits[ld >> 6] |= uint64_t{1} << (ld & 63);
                }
            }
            colBits = bits;
        } else {
            colWords_.assign(words, 0);
            for (uint32_t e = tanner_->colBegin[gc]; e < tanner_->colBegin[gc + 1]; ++e) {
                uint32_t ld = global_rows
                                  ? tanner_->colDet[e]
                                  : (uint32_t)detLocal_[tanner_->colDet[e]];
                colWords_[ld >> 6] |= uint64_t{1} << (ld & 63);
            }
            colBits = colWords_.data();
        }
        osdPushPos_.push_back(oc);
        if (elim_.push(colBits)) {
            solved = true;
            break;
        }
    }
    if (solved) {
        elim_.solution(osdSolIdx_);
        for (uint32_t idx : osdSolIdx_) {
            solUses_[osdPushPos_[idx]] = 1;
        }
    }
    return solved;
}

bool
BpOsdDecoder::osdSolveScalar(const std::vector<uint32_t> &cols,
                             const std::vector<uint32_t> &flipped)
{
    std::size_t ne = cols.size(), nd = regionDets_.size();
    std::size_t words = (nd + 63) / 64;
    synWords_.assign(words, 0);
    for (uint32_t d : flipped) {
        uint32_t ld = (uint32_t)detLocal_[d];
        synWords_[ld >> 6] |= uint64_t{1} << (ld & 63);
    }
    pivRow_.clear();
    pivCols_.clear();
    pivMembers_.clear();
    pivMemBegin_.assign(1, 0);
    solUses_.assign(ne, 0);
    bool solved = false;
    // Reduce the syndrome as we go; solution = pivots whose row bit is
    // set in the (running) reduced syndrome.
    for (std::size_t oi = 0; oi < ne; ++oi) {
        if (oi == osdSortedPrefix_) {
            osdSortTail();
        }
        uint32_t oc = osdKeys_[oi].pos;
        uint32_t gc = cols[oc];
        colWords_.assign(words, 0);
        for (uint32_t e = tanner_->colBegin[gc]; e < tanner_->colBegin[gc + 1]; ++e) {
            uint32_t ld = (uint32_t)detLocal_[tanner_->colDet[e]];
            colWords_[ld >> 6] |= uint64_t{1} << (ld & 63);
        }
        memScratch_.clear();
        memScratch_.push_back(oc);
        std::size_t npiv = pivRow_.size();
        for (std::size_t pi = 0; pi < npiv; ++pi) {
            std::size_t prow = pivRow_[pi];
            if ((colWords_[prow >> 6] >> (prow & 63)) & 1) {
                const uint64_t *pc = pivCols_.data() + pi * words;
                for (std::size_t w = 0; w < words; ++w) {
                    colWords_[w] ^= pc[w];
                }
                for (uint32_t mi = pivMemBegin_[pi];
                     mi < pivMemBegin_[pi + 1]; ++mi) {
                    memScratch_.push_back(pivMembers_[mi]);
                }
            }
        }
        std::size_t row = nd;
        for (std::size_t w = 0; w < words && row == nd; ++w) {
            if (colWords_[w]) {
                row = (w << 6) + std::countr_zero(colWords_[w]);
            }
        }
        if (row == nd) {
            continue; // dependent column
        }
        pivRow_.push_back((uint32_t)row);
        pivCols_.insert(pivCols_.end(), colWords_.begin(), colWords_.end());
        pivMembers_.insert(pivMembers_.end(), memScratch_.begin(),
                           memScratch_.end());
        pivMemBegin_.push_back((uint32_t)pivMembers_.size());
        // Check if the syndrome is now explainable.
        rScratch_.assign(synWords_.begin(), synWords_.end());
        useScratch_.assign(npiv + 1, 0);
        for (std::size_t pi = 0; pi < npiv + 1; ++pi) {
            std::size_t prow = pivRow_[pi];
            if ((rScratch_[prow >> 6] >> (prow & 63)) & 1) {
                const uint64_t *pc = pivCols_.data() + pi * words;
                for (std::size_t w = 0; w < words; ++w) {
                    rScratch_[w] ^= pc[w];
                }
                useScratch_[pi] = 1;
            }
        }
        bool zero = true;
        for (uint64_t w : rScratch_) {
            if (w) {
                zero = false;
                break;
            }
        }
        if (zero) {
            std::fill(solUses_.begin(), solUses_.end(), 0);
            for (std::size_t pi = 0; pi < npiv + 1; ++pi) {
                if (useScratch_[pi]) {
                    for (uint32_t mi = pivMemBegin_[pi];
                         mi < pivMemBegin_[pi + 1]; ++mi) {
                        solUses_[pivMembers_[mi]] ^= 1;
                    }
                }
            }
            solved = true;
            break;
        }
    }
    return solved;
}

void
BpOsdDecoder::growRegion(const std::vector<uint32_t> &flipped)
{
    // Region growth is monotone in its seed set: the region of a
    // syndrome is the union of the regions grown from each flipped
    // detector alone. The consumers are all column-order invariant (see
    // the header comment), so the union can be computed on the lazily
    // built per-detector reach bitmaps — one saturating seed proves the
    // whole region covers every column, and otherwise errs_ is the OR
    // of the seed rows extracted in canonical ascending order; both
    // match the BFS discovery-order region bit for bit.
    if (reachEnabled_ && !flipped.empty()) {
        std::size_t ne = tanner_->colDets.size();
        if (reachCols_.rows() != numDetectors_) {
            // First use (a populated clone arrives already sized).
            reachCols_.reset(numDetectors_, ne);
            reachBuilt_.assign(numDetectors_, 0);
            regionWords_.assign(reachCols_.rowWords(), 0);
        }
        bool saturated = false;
        for (uint32_t d : flipped) {
            if (!reachBuilt_[d]) {
                seedScratch_.assign(1, d);
                growRegionBfs(seedScratch_);
                uint64_t *row = reachCols_.row(d);
                for (uint32_t c : errs_) {
                    row[c >> 6] |= uint64_t{1} << (c & 63);
                }
                reachBuilt_[d] = 1;
                satFromDet_[d] = errs_.size() == ne ? 1 : 0;
            }
            if (satFromDet_[d] == 1) {
                saturated = true;
                break;
            }
        }
        if (saturated) {
            errs_ = tanner_->allCols;
            return;
        }
        std::size_t words = reachCols_.rowWords();
        std::fill(regionWords_.begin(), regionWords_.end(), uint64_t{0});
        for (uint32_t d : flipped) {
            const uint64_t *row = reachCols_.row(d);
            for (std::size_t w = 0; w < words; ++w) {
                regionWords_[w] |= row[w];
            }
        }
        errs_.clear();
        for (std::size_t w = 0; w < words; ++w) {
            uint64_t word = regionWords_[w];
            while (word != 0) {
                errs_.push_back(
                    (uint32_t)((w << 6) + std::countr_zero(word)));
                word &= word - 1;
            }
        }
        return;
    }
    // Bitmaps disabled: probe the first seed's memoized saturation flag,
    // then fall back to the BFS.
    if (!flipped.empty() && satFromDet_[flipped[0]] != 0) {
        if (satFromDet_[flipped[0]] < 0) {
            seedScratch_.assign(1, flipped[0]);
            growRegionBfs(seedScratch_);
            satFromDet_[flipped[0]] =
                errs_.size() == tanner_->colDets.size() ? 1 : 0;
        }
        if (satFromDet_[flipped[0]] == 1) {
            errs_ = tanner_->allCols;
            return;
        }
    }
    growRegionBfs(flipped);
}

void
BpOsdDecoder::growRegionBfs(const std::vector<uint32_t> &seeds)
{
    // Localized region: errors within regionRadius expansion layers of the
    // flipped detectors.
    errs_.clear();
    touchedDets_.clear();
    frontier_.assign(seeds.begin(), seeds.end());
    for (uint32_t d : frontier_) {
        detIn_[d] = 1;
        touchedDets_.push_back(d);
    }
    // Dense syndromes saturate the region early (every column joins
    // within a layer or two on the benchmark codes); once all columns are
    // in, later layers can only re-scan marks, so stop growing. The
    // column list and its order are unchanged by the early exit.
    std::size_t ne = tanner_->colDets.size();
    for (std::size_t layer = 0;
         layer < opts_.regionRadius && errs_.size() < ne; ++layer) {
        newDets_.clear();
        for (uint32_t d : frontier_) {
            if (errs_.size() == ne) {
                break;
            }
            for (uint32_t i = tanner_->detBegin[d]; i < tanner_->detBegin[d + 1]; ++i) {
                uint32_t e = tanner_->detCol[i];
                if (errIn_[e]) {
                    continue;
                }
                errIn_[e] = 1;
                errs_.push_back(e);
                for (uint32_t j = tanner_->colBegin[e]; j < tanner_->colBegin[e + 1];
                     ++j) {
                    uint32_t dd = tanner_->colDet[j];
                    if (!detIn_[dd]) {
                        detIn_[dd] = 1;
                        touchedDets_.push_back(dd);
                        newDets_.push_back(dd);
                    }
                }
            }
        }
        frontier_.swap(newDets_);
        if (frontier_.empty()) {
            break;
        }
    }
    for (uint32_t e : errs_) {
        errIn_[e] = 0;
    }
    for (uint32_t d : touchedDets_) {
        detIn_[d] = 0;
    }
}

uint64_t
BpOsdDecoder::decodeFast(const std::vector<uint32_t> &flipped)
{
    if (flipped.empty()) {
        return 0;
    }
    // Weight-1 fast path: a syndrome exactly matching one mechanism is
    // overwhelmingly most likely explained by it (p >> p^2).
    auto hit = tanner_->single.find(flipped);
    if (hit != tanner_->single.end()) {
        return hit->second.first;
    }
    growRegion(flipped);
    bool ok = false;
    uint64_t result = runRegion(errs_, flipped, ok);
    if (!ok) {
        // Fall back to the full graph.
        result = runRegion(tanner_->allCols, flipped, ok);
    }
    return result;
}

uint64_t
BpOsdDecoder::decode(const std::vector<uint32_t> &flipped_detectors)
{
    return decodeFast(flipped_detectors);
}

void
BpOsdDecoder::decodeBatch(const sim::SampleBatch &batch, std::size_t first,
                          std::size_t count, uint64_t *obs_out)
{
    for (std::size_t i = 0; i < count; ++i) {
        std::size_t shot = first + i;
        const uint64_t *row = batch.det.data() + shot * batch.detWords;
        uint64_t any = 0;
        for (std::size_t w = 0; w < batch.detWords; ++w) {
            any |= row[w];
        }
        if (any == 0) {
            obs_out[i] = 0;
            continue;
        }
        batch.flippedDetectors(shot, flippedScratch_);
        obs_out[i] = decodeFast(flippedScratch_);
    }
}

uint64_t
BpOsdDecoder::decodeRegion(const std::vector<uint32_t> &errs,
                           const std::vector<uint32_t> &flipped, bool &ok)
{
    // Local index maps.
    std::vector<uint32_t> dets;
    std::vector<int> det_local(numDetectors_, -1);
    for (uint32_t e : errs) {
        for (uint32_t d : tanner_->colDets[e]) {
            if (det_local[d] < 0) {
                det_local[d] = (int)dets.size();
                dets.push_back(d);
            }
        }
    }
    std::size_t nd = dets.size(), ne = errs.size();
    std::vector<uint8_t> syn(nd, 0);
    for (uint32_t d : flipped) {
        if (det_local[d] < 0) {
            // A flipped detector with no adjacent error in the region:
            // unsolvable here.
            ok = false;
            return 0;
        }
        syn[det_local[d]] = 1;
    }

    // Edge lists (local).
    struct ColEdges
    {
        std::size_t begin, count;
    };
    std::vector<ColEdges> col_edges(ne);
    std::vector<uint32_t> edge_det;   // local detector per edge
    std::vector<double> msg_c2d;      // column -> detector messages
    for (std::size_t c = 0; c < ne; ++c) {
        col_edges[c].begin = edge_det.size();
        col_edges[c].count = tanner_->colDets[errs[c]].size();
        for (uint32_t d : tanner_->colDets[errs[c]]) {
            edge_det.push_back((uint32_t)det_local[d]);
            msg_c2d.push_back(tanner_->prior[errs[c]]);
        }
    }
    std::vector<std::vector<uint32_t>> det_edges(nd);
    for (std::size_t c = 0; c < ne; ++c) {
        for (std::size_t k = 0; k < col_edges[c].count; ++k) {
            det_edges[edge_det[col_edges[c].begin + k]].push_back(
                (uint32_t)(col_edges[c].begin + k));
        }
    }

    std::vector<double> msg_d2c(edge_det.size(), 0.0);
    std::vector<double> posterior(ne, 0.0);
    std::vector<uint8_t> hard(ne, 0);

    auto check_syndrome = [&]() {
        std::vector<uint8_t> acc(nd, 0);
        for (std::size_t c = 0; c < ne; ++c) {
            if (!hard[c]) {
                continue;
            }
            for (std::size_t k = 0; k < col_edges[c].count; ++k) {
                acc[edge_det[col_edges[c].begin + k]] ^= 1;
            }
        }
        return acc == syn;
    };

    bool converged = false;
    for (std::size_t it = 0; it < opts_.maxIterations && !converged; ++it) {
        // Detector -> column (min-sum with normalization).
        for (std::size_t d = 0; d < nd; ++d) {
            const auto &edges = det_edges[d];
            // Compute product of signs and two smallest magnitudes.
            int sign = syn[d] ? -1 : 1;
            double min1 = 1e300, min2 = 1e300;
            std::size_t argmin = 0;
            for (uint32_t e : edges) {
                double v = msg_c2d[e];
                if (v < 0) {
                    sign = -sign;
                }
                double a = std::fabs(v);
                if (a < min1) {
                    min2 = min1;
                    min1 = a;
                    argmin = e;
                } else if (a < min2) {
                    min2 = a;
                }
            }
            for (uint32_t e : edges) {
                double mag = (e == argmin) ? min2 : min1;
                int s = sign;
                if (msg_c2d[e] < 0) {
                    s = -s;
                }
                msg_d2c[e] = opts_.scale * s * mag;
            }
        }
        // Column -> detector, posterior, hard decision.
        for (std::size_t c = 0; c < ne; ++c) {
            double total = tanner_->prior[errs[c]];
            for (std::size_t k = 0; k < col_edges[c].count; ++k) {
                total += msg_d2c[col_edges[c].begin + k];
            }
            posterior[c] = total;
            hard[c] = total < 0;
            for (std::size_t k = 0; k < col_edges[c].count; ++k) {
                std::size_t e = col_edges[c].begin + k;
                msg_c2d[e] = total - msg_d2c[e];
            }
        }
        converged = check_syndrome();
    }

    uint64_t result = 0;
    if (converged) {
        for (std::size_t c = 0; c < ne; ++c) {
            if (hard[c]) {
                result ^= tanner_->colObs[errs[c]];
            }
        }
        ok = true;
        return result;
    }

    // OSD-0: process columns in decreasing error likelihood (ascending
    // posterior LLR) and solve H x = s by incremental elimination on column
    // vectors over the local detectors.
    std::vector<uint32_t> order(ne);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        // Tie-break by global column id, as in osdSolve: every
        // elimination path must pick the same pivot order under tied
        // posteriors.
        if (posterior[a] != posterior[b]) {
            return posterior[a] < posterior[b];
        }
        return errs[a] < errs[b];
    });

    std::size_t words = (nd + 63) / 64;
    std::vector<uint64_t> s_vec(words, 0);
    for (std::size_t d = 0; d < nd; ++d) {
        if (syn[d]) {
            s_vec[d >> 6] |= uint64_t{1} << (d & 63);
        }
    }
    struct Pivot
    {
        std::size_t row;
        std::vector<uint64_t> col;
        uint32_t errCol;
        std::vector<uint32_t> members; ///< original columns XORed in
    };
    std::vector<Pivot> pivots;
    std::vector<uint8_t> sol_uses(ne, 0);
    bool solved = false;
    // Reduce the syndrome as we go; solution = pivots whose row bit is set
    // in the (running) reduced syndrome.
    for (uint32_t oc : order) {
        // Build the column vector.
        std::vector<uint64_t> col(words, 0);
        for (std::size_t k = 0; k < col_edges[oc].count; ++k) {
            uint32_t d = edge_det[col_edges[oc].begin + k];
            col[d >> 6] |= uint64_t{1} << (d & 63);
        }
        std::vector<uint32_t> members{oc};
        for (const Pivot &p : pivots) {
            if ((col[p.row >> 6] >> (p.row & 63)) & 1) {
                for (std::size_t w = 0; w < words; ++w) {
                    col[w] ^= p.col[w];
                }
                for (uint32_t mc : p.members) {
                    members.push_back(mc);
                }
            }
        }
        std::size_t row = nd;
        for (std::size_t w = 0; w < words && row == nd; ++w) {
            if (col[w]) {
                row = (w << 6) + std::countr_zero(col[w]);
            }
        }
        if (row == nd) {
            continue; // dependent column
        }
        pivots.push_back({row, std::move(col), oc, std::move(members)});
        // Check if the syndrome is now explainable.
        std::vector<uint64_t> r = s_vec;
        std::vector<uint8_t> use(pivots.size(), 0);
        for (std::size_t pi = 0; pi < pivots.size(); ++pi) {
            const Pivot &p = pivots[pi];
            if ((r[p.row >> 6] >> (p.row & 63)) & 1) {
                for (std::size_t w = 0; w < words; ++w) {
                    r[w] ^= p.col[w];
                }
                use[pi] = 1;
            }
        }
        bool zero = true;
        for (uint64_t w : r) {
            if (w) {
                zero = false;
                break;
            }
        }
        if (zero) {
            std::fill(sol_uses.begin(), sol_uses.end(), 0);
            for (std::size_t pi = 0; pi < pivots.size(); ++pi) {
                if (use[pi]) {
                    for (uint32_t mc : pivots[pi].members) {
                        sol_uses[mc] ^= 1;
                    }
                }
            }
            solved = true;
            break;
        }
    }
    if (!solved) {
        ok = false;
        return 0;
    }
    for (std::size_t c = 0; c < ne; ++c) {
        if (sol_uses[c]) {
            result ^= tanner_->colObs[errs[c]];
        }
    }
    ok = true;
    return result;
}

uint64_t
BpOsdDecoder::decodeReference(const std::vector<uint32_t> &flipped_detectors)
{
    if (flipped_detectors.empty()) {
        return 0;
    }
    // Weight-1 fast path: a syndrome exactly matching one mechanism is
    // overwhelmingly most likely explained by it (p >> p^2).
    auto hit = tanner_->single.find(flipped_detectors);
    if (hit != tanner_->single.end()) {
        return hit->second.first;
    }
    // Localized region: errors within regionRadius expansion layers of the
    // flipped detectors.
    std::vector<uint8_t> err_in(tanner_->colDets.size(), 0);
    std::vector<uint8_t> det_in(numDetectors_, 0);
    std::vector<uint32_t> frontier_dets = flipped_detectors;
    std::vector<uint32_t> errs;
    for (uint32_t d : frontier_dets) {
        det_in[d] = 1;
    }
    for (std::size_t layer = 0; layer < opts_.regionRadius; ++layer) {
        std::vector<uint32_t> new_dets;
        for (uint32_t d : frontier_dets) {
            for (uint32_t e : tanner_->detCols[d]) {
                if (err_in[e]) {
                    continue;
                }
                err_in[e] = 1;
                errs.push_back(e);
                for (uint32_t dd : tanner_->colDets[e]) {
                    if (!det_in[dd]) {
                        det_in[dd] = 1;
                        new_dets.push_back(dd);
                    }
                }
            }
        }
        frontier_dets = std::move(new_dets);
        if (frontier_dets.empty()) {
            break;
        }
    }
    bool ok = false;
    uint64_t result = decodeRegion(errs, flipped_detectors, ok);
    if (ok) {
        return result;
    }
    // Fall back to the full graph.
    std::vector<uint32_t> all(tanner_->colDets.size());
    std::iota(all.begin(), all.end(), 0);
    result = decodeRegion(all, flipped_detectors, ok);
    return result;
}

bool
BpOsdDecoder::osdPostPass(const std::vector<uint32_t> &cols,
                          const std::vector<double> &post,
                          const std::vector<uint32_t> &flipped, bool packed,
                          std::vector<uint8_t> &uses)
{
    // Local detector numbering in region-discovery order, exactly as
    // runRegion builds it before handing over to osdSolve.
    regionDets_.clear();
    for (uint32_t c : cols) {
        for (uint32_t e = tanner_->colBegin[c]; e < tanner_->colBegin[c + 1]; ++e) {
            uint32_t d = tanner_->colDet[e];
            if (detLocal_[d] < 0) {
                detLocal_[d] = (int32_t)regionDets_.size();
                regionDets_.push_back(d);
            }
        }
    }
    bool feasible = true;
    for (uint32_t d : flipped) {
        if (detLocal_[d] < 0) {
            feasible = false;
            break;
        }
    }
    bool solved = false;
    if (feasible) {
        solved = osdSolveImpl(cols, post.data(), flipped, packed, nullptr,
                              false);
    }
    uses.assign(cols.size(), 0);
    if (solved) {
        uses = solUses_;
    }
    for (uint32_t d : regionDets_) {
        detLocal_[d] = -1;
    }
    return solved;
}

} // namespace prophunt::decoder
