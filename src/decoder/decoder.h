/**
 * @file
 * Common decoder interface.
 *
 * A decoder receives the set of flipped detectors of one shot and predicts
 * which logical observables flipped, as a bit mask (observable i = bit i).
 * The library supports up to 64 observables per memory experiment, far more
 * than any benchmark code needs (max k = 18).
 */
#ifndef PROPHUNT_DECODER_DECODER_H
#define PROPHUNT_DECODER_DECODER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/sampler.h"

namespace prophunt::decoder {

/** Abstract syndrome decoder. */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Predict the observable flip mask for one shot.
     *
     * @param flipped_detectors Sorted indices of flipped detectors.
     * @return Bit mask of predicted observable flips.
     */
    virtual uint64_t decode(const std::vector<uint32_t> &flipped_detectors) = 0;

    /**
     * Decode shots [first, first + count) of a row-layout batch.
     *
     * Writes one predicted observable mask per shot into @p obs_out. Must
     * match per-shot decode() bit for bit; the default implementation loops
     * over decode() with a reusable flipped-detector buffer, and decoders
     * with a genuinely batched path (BP+OSD) override it.
     */
    virtual void decodeBatch(const sim::SampleBatch &batch, std::size_t first,
                             std::size_t count, uint64_t *obs_out);

    /**
     * Independent copy for another worker thread.
     *
     * Decode results must not depend on which copy handles a shot; scratch
     * state may be duplicated freely.
     */
    virtual std::unique_ptr<Decoder> clone() const = 0;
};

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_DECODER_H
