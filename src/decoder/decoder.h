/**
 * @file
 * Common decoder interface.
 *
 * A decoder receives the set of flipped detectors of one shot and predicts
 * which logical observables flipped, as a bit mask (observable i = bit i).
 * The library supports up to 64 observables per memory experiment, far more
 * than any benchmark code needs (max k = 18).
 */
#ifndef PROPHUNT_DECODER_DECODER_H
#define PROPHUNT_DECODER_DECODER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/frame_sampler.h"
#include "sim/sampler.h"

namespace prophunt::decoder {

/**
 * Counters describing how a packed decode was served.
 *
 * `packedShots` went down a native frame-layout path; `adapterShots` were
 * transposed into row layout and routed through decodeBatch by the base
 * adapter. The lane counters expose the lane engine's occupancy: busy is
 * the number of (lane, BP-iteration) slots that carried a live shot,
 * total is laneWidth times the iterations the engine ran. The OSD
 * counters account the lane engine's batched OSD post-pass: `osdShots`
 * is the number of shots whose lane retired without BP convergence and
 * went through the GF(2) elimination (or its scalar reference), `osdUs`
 * the wall microseconds spent inside that post-pass (packed-column
 * build, elimination, and the full-graph fallback for unexplainable
 * regions).
 */
struct PackedDecodeStats
{
    uint64_t packedShots = 0;
    uint64_t adapterShots = 0;
    uint64_t laneSlotsBusy = 0;
    uint64_t laneSlotsTotal = 0;
    uint64_t osdShots = 0;
    uint64_t osdUs = 0;

    /** Mean fraction of lanes carrying a live shot (0 when no lane ran). */
    double
    laneOccupancy() const
    {
        return laneSlotsTotal == 0
                   ? 0.0
                   : (double)laneSlotsBusy / (double)laneSlotsTotal;
    }

    PackedDecodeStats &
    operator+=(const PackedDecodeStats &o)
    {
        packedShots += o.packedShots;
        adapterShots += o.adapterShots;
        laneSlotsBusy += o.laneSlotsBusy;
        laneSlotsTotal += o.laneSlotsTotal;
        osdShots += o.osdShots;
        osdUs += o.osdUs;
        return *this;
    }
};

/** Abstract syndrome decoder. */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /**
     * Predict the observable flip mask for one shot.
     *
     * @param flipped_detectors Sorted indices of flipped detectors.
     * @return Bit mask of predicted observable flips.
     */
    virtual uint64_t decode(const std::vector<uint32_t> &flipped_detectors) = 0;

    /**
     * Decode shots [first, first + count) of a row-layout batch.
     *
     * Writes one predicted observable mask per shot into @p obs_out. Must
     * match per-shot decode() bit for bit; the default implementation loops
     * over decode() with a reusable flipped-detector buffer, and decoders
     * with a genuinely batched path (BP+OSD) override it.
     */
    virtual void decodeBatch(const sim::SampleBatch &batch, std::size_t first,
                             std::size_t count, uint64_t *obs_out);

    /**
     * Decode every shot of a bit-packed, detector-major frame view.
     *
     * The packed pipeline entry point: the sampler's frame layout flows in
     * unchanged and one observable mask per shot comes out. Must match
     * per-shot decode() bit for bit. The default implementation transposes
     * the view once and falls back to decodeBatch, so row-layout decoders
     * (union-find, matching, MLE) are served unchanged; decoders with a
     * native packed path (BP+OSD lanes) override it and skip the
     * transpose. @p stats, when non-null, is accumulated into — it is
     * never reset here.
     */
    virtual void decodePacked(const sim::FrameView &frames, uint64_t *obs_out,
                              PackedDecodeStats *stats = nullptr);

    /**
     * Independent copy for another worker thread.
     *
     * Decode results must not depend on which copy handles a shot; scratch
     * state may be duplicated freely.
     */
    virtual std::unique_ptr<Decoder> clone() const = 0;
};

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_DECODER_H
