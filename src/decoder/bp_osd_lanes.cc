/**
 * @file
 * Lane-batched SIMD BP engine behind BpOsdDecoder::decodePacked.
 *
 * The engine runs min-sum BP for laneWidth shots in parallel "lanes" over
 * the global Tanner CSR built once per DEM. Messages live in ONE
 * lane-interleaved in-place array (laneWidth doubles per edge): a
 * detector pass reads column->detector values and overwrites each slot
 * with its detector->column reply (an edge belongs to exactly one
 * detector and one column, so neither pass reads a slot another detector
 * or column wrote this iteration). The detector -> column two-minimum
 * reduction processes 8 lanes per AVX-512 vector (4 per AVX2 vector on
 * hardware without it) from one contiguous load — no gathers — and walks
 * every chunk of the width in a single pass over the detector's edges,
 * so the independent per-chunk min chains hide the blend latency and
 * each message cache line is touched once per pass. Odd widths and
 * non-x86 builds use a bit-identical scalar-lane fallback; all three
 * kernel tiers produce the same bits (PROPHUNT_NO_AVX512 /
 * PROPHUNT_NO_AVX2 step down explicitly).
 *
 * Localized-region semantics are preserved per lane without per-shot
 * message initialization: laneEdgeActive_ carries one bit per
 * (edge, lane), and the detector pass substitutes the scalar path's
 * +1e300 inactive-edge sentinel — or the column prior on a lane's first
 * iteration, when no column pass has written real messages yet — while
 * loading. The message array may therefore hold garbage in inactive
 * lanes: installing a shot sets one contiguous bit per region edge
 * instead of writing one strided double (a full cache line each at
 * laneWidth 8), and retiring clears the lane's bit planes with
 * vectorizable full-array sweeps. Both passes find their work by
 * scanning the per-column/per-detector lane masks in index order, which
 * keeps the message walks sequential. Lanes retire individually
 * (convergence, stagnation, or the iteration budget) and are refilled
 * from the shot queue, so iteration skew between easy and hard syndromes
 * no longer serializes the batch.
 *
 * Retired-but-unconverged lanes do not solve OSD inline: they compact
 * into a batched work queue (shot id, region, syndrome, posterior
 * snapshot) that is flushed in groups of identical region shapes, so
 * the packed-column build of the GF(2) elimination is shared across the
 * shots of a group and the post-pass runs out of hot scratch instead of
 * interleaving with lane state. Each job's solve is independent, so the
 * queueing changes throughput only.
 *
 * Exactness: every per-lane recurrence reproduces the scalar runRegion
 * arithmetic operation for operation (same edge order in the sums, same
 * strict-minimum updates, no FMA contraction), the per-lane stopping
 * rules are the scalar ones, and non-converged lanes hand their
 * posteriors to the shared OSD post-pass — so decodePacked equals
 * per-shot decode() bit for bit for every laneWidth, and a shot's result
 * never depends on which shots share its lanes (shot-order invariance).
 * The sign-bit trick used by the vector kernels (sign(x) as the IEEE
 * sign bit) matches the scalar `v < 0.0` test because effective
 * column -> detector messages are never -0.0: priors and sentinels are
 * positive, and a sum or difference of doubles only produces -0.0 from
 * two negative zeros.
 */
#include "decoder/bp_osd.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <numeric>

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define PROPHUNT_LANES_X86 1
#include <immintrin.h>
#endif

namespace prophunt::decoder {

namespace {

/** Same value as the scalar path's inactive-edge sentinel (bp_osd.cc). */
constexpr double kInactiveLane = 1e300;

/**
 * Flush the batched OSD queue once this many retired-unconverged shots
 * have accumulated (and always at the end of a decodePacked call).
 * Large enough to amortize the shared packed-column build across the
 * shots of a flush window, small enough to bound the queued posterior
 * snapshots (each is one double per region column).
 */
constexpr std::size_t kOsdFlushCap = 128;

/** Raw pointers of one lane BP iteration, hoisted out of the decoder so
 * the same kernels compile with and without AVX2. */
struct LaneCtx
{
    std::size_t W = 0;
    std::size_t numDetectors = 0;
    std::size_t numCols = 0;
    double scale = 0.0;
    /** Bit l: lane l is on its first iteration (messages still read as
     * the column prior; no column pass has run for it yet). */
    uint32_t freshLanes = 0;
    const uint32_t *colBegin = nullptr;
    const uint32_t *colDet = nullptr;
    const uint32_t *detBegin = nullptr;
    const uint32_t *detEdges = nullptr;
    const double *prior = nullptr;
    const double *edgePrior = nullptr;
    double *msg = nullptr;
    double *stage = nullptr;
    double *post = nullptr;
    const uint16_t *edgeActive = nullptr;
    const double *synSign = nullptr;
    const uint8_t *synB = nullptr;
    uint8_t *acc = nullptr;
    uint32_t *hardBits = nullptr;
    const uint32_t *detMask = nullptr;
    const uint32_t *colMask = nullptr;
    std::ptrdiff_t *mismatch = nullptr;
};

/** The effective column->detector message of (edge @p e, lane @p l): the
 * stored value for live region edges, the column prior before a lane's
 * first column pass, the scalar sentinel outside the region. */
inline double
effectiveMsg(const LaneCtx &cx, std::size_t e, std::size_t l)
{
    if (((cx.edgeActive[e] >> l) & 1) == 0) {
        return kInactiveLane;
    }
    if (((cx.freshLanes >> l) & 1) != 0) {
        return cx.edgePrior[e];
    }
    return cx.msg[e * cx.W + l];
}

/** Detector -> column pass for one (detector, lane): the scalar min-sum
 * two-minimum reduction of runRegion, indexed into the lane slice. */
void
detPassLane(const LaneCtx &cx, uint32_t d, std::size_t l)
{
    const std::size_t W = cx.W;
    uint32_t b = cx.detBegin[d], en = cx.detBegin[d + 1];
    uint32_t deg = en - b;
    bool negProduct = cx.synB[(std::size_t)d * W + l] != 0;
    double min1 = 1e300, min2 = 1e300;
    uint32_t argpos = UINT32_MAX;
    for (uint32_t i = 0; i < deg; ++i) {
        double v = effectiveMsg(cx, cx.detEdges[b + i], l);
        cx.stage[(std::size_t)i * W + l] = v;
        if (v < 0.0) {
            negProduct = !negProduct;
        }
        double a = std::fabs(v);
        if (a < min1) {
            min2 = min1;
            min1 = a;
            argpos = i;
        } else if (a < min2) {
            min2 = a;
        }
    }
    double m1 = cx.scale * min1, m2 = cx.scale * min2;
    for (uint32_t i = 0; i < deg; ++i) {
        double v = cx.stage[(std::size_t)i * W + l];
        double mag = (i == argpos) ? m2 : m1;
        cx.msg[(std::size_t)cx.detEdges[b + i] * W + l] =
            (negProduct != (v < 0.0)) ? -mag : mag;
    }
}

/** Column -> detector pass for one (column, lane): posterior, hard
 * decision with incremental syndrome-mismatch tracking, message update. */
void
colPassLane(const LaneCtx &cx, uint32_t c, std::size_t l)
{
    const std::size_t W = cx.W;
    uint32_t b = cx.colBegin[c], en = cx.colBegin[c + 1];
    double total = cx.prior[c];
    for (uint32_t e = b; e < en; ++e) {
        total += cx.msg[(std::size_t)e * W + l];
    }
    cx.post[(std::size_t)c * W + l] = total;
    uint32_t bit = uint32_t{1} << l;
    uint32_t h = total < 0 ? bit : 0;
    if (((cx.hardBits[c] ^ h) & bit) != 0) {
        cx.hardBits[c] ^= bit;
        for (uint32_t e = b; e < en; ++e) {
            std::size_t off = (std::size_t)cx.colDet[e] * W + l;
            cx.acc[off] ^= 1;
            cx.mismatch[l] += (cx.acc[off] != cx.synB[off]) ? 1 : -1;
        }
    }
    for (uint32_t e = b; e < en; ++e) {
        std::size_t off = (std::size_t)e * W + l;
        cx.msg[off] = total - cx.msg[off];
    }
}

void
detPassGeneric(const LaneCtx &cx)
{
    for (std::size_t d = 0; d < cx.numDetectors; ++d) {
        uint32_t mask = cx.detMask[d];
        while (mask != 0) {
            detPassLane(cx, (uint32_t)d,
                        (std::size_t)std::countr_zero(mask));
            mask &= mask - 1;
        }
    }
}

void
colPassGeneric(const LaneCtx &cx)
{
    for (std::size_t c = 0; c < cx.numCols; ++c) {
        uint32_t mask = cx.colMask[c];
        while (mask != 0) {
            colPassLane(cx, (uint32_t)c,
                        (std::size_t)std::countr_zero(mask));
            mask &= mask - 1;
        }
    }
}

#if PROPHUNT_LANES_X86

/** Element j is all-ones iff bit j of the index is set; the sign bits
 * drive _mm256_blendv_pd lane selection. */
alignas(32) constexpr int64_t kNibbleMask[16][4] = {
    {0, 0, 0, 0},     {-1, 0, 0, 0},   {0, -1, 0, 0},   {-1, -1, 0, 0},
    {0, 0, -1, 0},    {-1, 0, -1, 0},  {0, -1, -1, 0},  {-1, -1, -1, 0},
    {0, 0, 0, -1},    {-1, 0, 0, -1},  {0, -1, 0, -1},  {-1, -1, 0, -1},
    {0, 0, -1, -1},   {-1, 0, -1, -1}, {0, -1, -1, -1}, {-1, -1, -1, -1},
};

__attribute__((target("avx2"))) inline __m256d
nibbleMask(uint32_t nib)
{
    return _mm256_castsi256_pd(
        _mm256_load_si256((const __m256i *)kNibbleMask[nib]));
}

/**
 * AVX2 detector pass for NC 4-lane chunks walked in ONE pass over each
 * detector's edges: the two-minimum chains of the chunks are
 * independent, so interleaving them hides the blend latency, and every
 * message cache line is touched once per pass. Remainder lanes (W % 4)
 * run the scalar kernel; lanes of a processed chunk with no live shot at
 * this detector see only sentinels and produce garbage nobody reads.
 */
template <int NC>
__attribute__((target("avx2"))) void
detPassAvx2(const LaneCtx &cx)
{
    const std::size_t W = cx.W;
    const __m256d signMask = _mm256_set1_pd(-0.0);
    const __m256d inactive = _mm256_set1_pd(kInactiveLane);
    const __m256d scaleV = _mm256_set1_pd(cx.scale);
    __m256d freshV[NC];
    for (int k = 0; k < NC; ++k) {
        freshV[k] = nibbleMask((cx.freshLanes >> (4 * k)) & 0xf);
    }
    for (std::size_t d = 0; d < cx.numDetectors; ++d) {
        uint32_t mask = cx.detMask[d];
        if (mask == 0) {
            continue;
        }
        uint32_t b = cx.detBegin[d], en = cx.detBegin[d + 1];
        uint32_t deg = en - b;
        __m256d signAcc[NC], min1[NC], min2[NC], argpos[NC];
        for (int k = 0; k < NC; ++k) {
            signAcc[k] =
                _mm256_loadu_pd(cx.synSign + (std::size_t)d * W + 4 * k);
            min1[k] = inactive;
            min2[k] = inactive;
            argpos[k] = _mm256_set1_pd(-1.0);
        }
        for (uint32_t i = 0; i < deg; ++i) {
            std::size_t e = cx.detEdges[b + i];
            uint32_t act = cx.edgeActive[e];
            const __m256d priorV = _mm256_set1_pd(cx.edgePrior[e]);
            const __m256d idx = _mm256_set1_pd((double)i);
            for (int k = 0; k < NC; ++k) {
                __m256d am = nibbleMask((act >> (4 * k)) & 0xf);
                __m256d v = _mm256_loadu_pd(cx.msg + e * W + 4 * k);
                // Region membership: prior on the lane's first
                // iteration, stored value afterwards, sentinel outside
                // the region.
                v = _mm256_blendv_pd(v, priorV,
                                     _mm256_and_pd(am, freshV[k]));
                v = _mm256_blendv_pd(inactive, v, am);
                _mm256_storeu_pd(cx.stage + (std::size_t)i * W + 4 * k, v);
                signAcc[k] =
                    _mm256_xor_pd(signAcc[k], _mm256_and_pd(v, signMask));
                __m256d a = _mm256_andnot_pd(signMask, v);
                __m256d lt1 = _mm256_cmp_pd(a, min1[k], _CMP_LT_OQ);
                __m256d lt2 = _mm256_cmp_pd(a, min2[k], _CMP_LT_OQ);
                min2[k] = _mm256_blendv_pd(
                    _mm256_blendv_pd(min2[k], a, lt2), min1[k], lt1);
                min1[k] = _mm256_blendv_pd(min1[k], a, lt1);
                argpos[k] = _mm256_blendv_pd(argpos[k], idx, lt1);
            }
        }
        __m256d m1[NC], m2[NC];
        for (int k = 0; k < NC; ++k) {
            m1[k] = _mm256_mul_pd(scaleV, min1[k]);
            m2[k] = _mm256_mul_pd(scaleV, min2[k]);
        }
        for (uint32_t i = 0; i < deg; ++i) {
            std::size_t e = cx.detEdges[b + i];
            const __m256d idx = _mm256_set1_pd((double)i);
            for (int k = 0; k < NC; ++k) {
                __m256d v =
                    _mm256_loadu_pd(cx.stage + (std::size_t)i * W + 4 * k);
                __m256d eq = _mm256_cmp_pd(idx, argpos[k], _CMP_EQ_OQ);
                __m256d mag = _mm256_blendv_pd(m1[k], m2[k], eq);
                // mag >= 0, so OR-ing the product sign bit equals the
                // scalar ±mag selection bit for bit (including ±0.0).
                __m256d sb = _mm256_and_pd(
                    _mm256_xor_pd(signAcc[k], v), signMask);
                _mm256_storeu_pd(cx.msg + e * W + 4 * k,
                                 _mm256_or_pd(mag, sb));
            }
        }
        for (std::size_t l = (std::size_t)NC * 4; l < W; ++l) {
            if ((mask >> l) & 1) {
                detPassLane(cx, (uint32_t)d, l);
            }
        }
    }
}

template <int NC>
__attribute__((target("avx2"))) void
colPassAvx2(const LaneCtx &cx)
{
    const std::size_t W = cx.W;
    const __m256d zero = _mm256_setzero_pd();
    for (std::size_t c = 0; c < cx.numCols; ++c) {
        uint32_t mask = cx.colMask[c];
        if (mask == 0) {
            continue;
        }
        uint32_t b = cx.colBegin[c], en = cx.colBegin[c + 1];
        __m256d tot[NC];
        for (int k = 0; k < NC; ++k) {
            tot[k] = _mm256_set1_pd(cx.prior[c]);
        }
        for (uint32_t e = b; e < en; ++e) {
            for (int k = 0; k < NC; ++k) {
                tot[k] = _mm256_add_pd(
                    tot[k],
                    _mm256_loadu_pd(cx.msg + (std::size_t)e * W + 4 * k));
            }
        }
        for (int k = 0; k < NC; ++k) {
            // Unmasked: inactive lanes' posteriors are garbage nobody
            // reads (a live lane rewrites its slice every iteration).
            _mm256_storeu_pd(cx.post + (std::size_t)c * W + 4 * k, tot[k]);
            uint32_t nib = (mask >> (4 * k)) & 0xf;
            if (nib == 0) {
                continue;
            }
            uint32_t hNow =
                (uint32_t)_mm256_movemask_pd(
                    _mm256_cmp_pd(tot[k], zero, _CMP_LT_OQ)) &
                nib;
            uint32_t hPrev = (cx.hardBits[c] >> (4 * k)) & 0xf;
            uint32_t changed = hNow ^ hPrev;
            if (changed != 0) {
                cx.hardBits[c] ^= changed << (4 * k);
                while (changed != 0) {
                    std::size_t l =
                        4 * k + (std::size_t)std::countr_zero(changed);
                    for (uint32_t e = b; e < en; ++e) {
                        std::size_t off =
                            (std::size_t)cx.colDet[e] * W + l;
                        cx.acc[off] ^= 1;
                        cx.mismatch[l] +=
                            (cx.acc[off] != cx.synB[off]) ? 1 : -1;
                    }
                    changed &= changed - 1;
                }
            }
        }
        for (uint32_t e = b; e < en; ++e) {
            for (int k = 0; k < NC; ++k) {
                std::size_t off = (std::size_t)e * W + 4 * k;
                // In-place and unmasked: garbage lanes stay garbage, the
                // detector pass's membership blend restores semantics.
                _mm256_storeu_pd(
                    cx.msg + off,
                    _mm256_sub_pd(tot[k], _mm256_loadu_pd(cx.msg + off)));
            }
        }
        for (std::size_t l = (std::size_t)NC * 4; l < W; ++l) {
            if ((mask >> l) & 1) {
                colPassLane(cx, (uint32_t)c, l);
            }
        }
    }
}

/**
 * AVX-512 kernels: one 512-bit vector carries a whole 8-lane chunk, so
 * W=8 runs in a single chunk (W=16 in two) with half the instruction
 * stream of the AVX2 pair — and the per-edge lane bit planes become
 * native predicate masks (__mmask8) instead of nibble-expanded blend
 * vectors. Every select/compare mirrors the AVX2 kernel operation for
 * operation per lane, and all sign handling stays integer bit
 * manipulation, so the three kernel tiers are bit-identical.
 */

template <int NC>
__attribute__((target("avx512f"))) void
detPassAvx512(const LaneCtx &cx)
{
    const std::size_t W = cx.W;
    const __m512i signMask = _mm512_set1_epi64(INT64_MIN);
    const __m512i absMask = _mm512_set1_epi64(INT64_MAX);
    const __m512d inactive = _mm512_set1_pd(kInactiveLane);
    const __m512d scaleV = _mm512_set1_pd(cx.scale);
    __mmask8 fresh[NC];
    for (int k = 0; k < NC; ++k) {
        fresh[k] = (__mmask8)(cx.freshLanes >> (8 * k));
    }
    for (std::size_t d = 0; d < cx.numDetectors; ++d) {
        uint32_t mask = cx.detMask[d];
        if (mask == 0) {
            continue;
        }
        uint32_t b = cx.detBegin[d], en = cx.detBegin[d + 1];
        uint32_t deg = en - b;
        __m512i signAcc[NC];
        __m512d min1[NC], min2[NC], argpos[NC];
        for (int k = 0; k < NC; ++k) {
            signAcc[k] = _mm512_castpd_si512(
                _mm512_loadu_pd(cx.synSign + (std::size_t)d * W + 8 * k));
            min1[k] = inactive;
            min2[k] = inactive;
            argpos[k] = _mm512_set1_pd(-1.0);
        }
        for (uint32_t i = 0; i < deg; ++i) {
            std::size_t e = cx.detEdges[b + i];
            uint32_t act = cx.edgeActive[e];
            const __m512d priorV = _mm512_set1_pd(cx.edgePrior[e]);
            const __m512d idx = _mm512_set1_pd((double)i);
            for (int k = 0; k < NC; ++k) {
                __mmask8 am = (__mmask8)(act >> (8 * k));
                __m512d v = _mm512_loadu_pd(cx.msg + e * W + 8 * k);
                // Region membership: prior on the lane's first
                // iteration, stored value afterwards, sentinel outside
                // the region.
                v = _mm512_mask_blend_pd((__mmask8)(am & fresh[k]), v,
                                         priorV);
                v = _mm512_mask_blend_pd(am, inactive, v);
                _mm512_storeu_pd(cx.stage + (std::size_t)i * W + 8 * k, v);
                __m512i vi = _mm512_castpd_si512(v);
                signAcc[k] = _mm512_xor_epi64(
                    signAcc[k], _mm512_and_epi64(vi, signMask));
                __m512d a = _mm512_castsi512_pd(
                    _mm512_and_epi64(vi, absMask));
                __mmask8 lt1 = _mm512_cmp_pd_mask(a, min1[k], _CMP_LT_OQ);
                __mmask8 lt2 = _mm512_cmp_pd_mask(a, min2[k], _CMP_LT_OQ);
                min2[k] = _mm512_mask_blend_pd(
                    lt1, _mm512_mask_blend_pd(lt2, min2[k], a), min1[k]);
                min1[k] = _mm512_mask_blend_pd(lt1, min1[k], a);
                argpos[k] = _mm512_mask_blend_pd(lt1, argpos[k], idx);
            }
        }
        __m512d m1[NC], m2[NC];
        for (int k = 0; k < NC; ++k) {
            m1[k] = _mm512_mul_pd(scaleV, min1[k]);
            m2[k] = _mm512_mul_pd(scaleV, min2[k]);
        }
        for (uint32_t i = 0; i < deg; ++i) {
            std::size_t e = cx.detEdges[b + i];
            const __m512d idx = _mm512_set1_pd((double)i);
            for (int k = 0; k < NC; ++k) {
                __m512d v =
                    _mm512_loadu_pd(cx.stage + (std::size_t)i * W + 8 * k);
                __mmask8 eq =
                    _mm512_cmp_pd_mask(idx, argpos[k], _CMP_EQ_OQ);
                __m512d mag = _mm512_mask_blend_pd(eq, m1[k], m2[k]);
                // mag >= 0, so OR-ing the product sign bit equals the
                // scalar ±mag selection bit for bit (including ±0.0).
                __m512i sb = _mm512_and_epi64(
                    _mm512_xor_epi64(signAcc[k], _mm512_castpd_si512(v)),
                    signMask);
                _mm512_storeu_pd(
                    cx.msg + e * W + 8 * k,
                    _mm512_castsi512_pd(_mm512_or_epi64(
                        _mm512_castpd_si512(mag), sb)));
            }
        }
        for (std::size_t l = (std::size_t)NC * 8; l < W; ++l) {
            if ((mask >> l) & 1) {
                detPassLane(cx, (uint32_t)d, l);
            }
        }
    }
}

template <int NC>
__attribute__((target("avx512f"))) void
colPassAvx512(const LaneCtx &cx)
{
    const std::size_t W = cx.W;
    const __m512d zero = _mm512_setzero_pd();
    for (std::size_t c = 0; c < cx.numCols; ++c) {
        uint32_t mask = cx.colMask[c];
        if (mask == 0) {
            continue;
        }
        uint32_t b = cx.colBegin[c], en = cx.colBegin[c + 1];
        __m512d tot[NC];
        for (int k = 0; k < NC; ++k) {
            tot[k] = _mm512_set1_pd(cx.prior[c]);
        }
        for (uint32_t e = b; e < en; ++e) {
            for (int k = 0; k < NC; ++k) {
                tot[k] = _mm512_add_pd(
                    tot[k],
                    _mm512_loadu_pd(cx.msg + (std::size_t)e * W + 8 * k));
            }
        }
        for (int k = 0; k < NC; ++k) {
            // Unmasked: inactive lanes' posteriors are garbage nobody
            // reads (a live lane rewrites its slice every iteration).
            _mm512_storeu_pd(cx.post + (std::size_t)c * W + 8 * k, tot[k]);
            uint32_t oct = (mask >> (8 * k)) & 0xff;
            if (oct == 0) {
                continue;
            }
            uint32_t hNow =
                (uint32_t)_mm512_cmp_pd_mask(tot[k], zero, _CMP_LT_OQ) &
                oct;
            uint32_t hPrev = (cx.hardBits[c] >> (8 * k)) & 0xff;
            uint32_t changed = hNow ^ hPrev;
            if (changed != 0) {
                cx.hardBits[c] ^= changed << (8 * k);
                while (changed != 0) {
                    std::size_t l =
                        8 * k + (std::size_t)std::countr_zero(changed);
                    for (uint32_t e = b; e < en; ++e) {
                        std::size_t off =
                            (std::size_t)cx.colDet[e] * W + l;
                        cx.acc[off] ^= 1;
                        cx.mismatch[l] +=
                            (cx.acc[off] != cx.synB[off]) ? 1 : -1;
                    }
                    changed &= changed - 1;
                }
            }
        }
        for (uint32_t e = b; e < en; ++e) {
            for (int k = 0; k < NC; ++k) {
                std::size_t off = (std::size_t)e * W + 8 * k;
                // In-place and unmasked: garbage lanes stay garbage, the
                // detector pass's membership blend restores semantics.
                _mm512_storeu_pd(
                    cx.msg + off,
                    _mm512_sub_pd(tot[k], _mm512_loadu_pd(cx.msg + off)));
            }
        }
        for (std::size_t l = (std::size_t)NC * 8; l < W; ++l) {
            if ((mask >> l) & 1) {
                colPassLane(cx, (uint32_t)c, l);
            }
        }
    }
}

#endif // PROPHUNT_LANES_X86

/** True iff @p name is set to a non-empty value — CI matrix legs pass an
 * empty string on the leg that should keep the native kernels. */
bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0';
}

/** Runtime kernel selection. PROPHUNT_NO_AVX2 forces the generic lanes —
 * the cross-check the lane tests use on AVX2 hardware. */
bool
laneUseAvx2()
{
#if PROPHUNT_LANES_X86
    return __builtin_cpu_supports("avx2") && !envFlag("PROPHUNT_NO_AVX2");
#else
    return false;
#endif
}

/** PROPHUNT_NO_AVX512 (or PROPHUNT_NO_AVX2) steps down to the AVX2
 * (resp. generic) kernels; all tiers are bit-identical. */
bool
laneUseAvx512()
{
#if PROPHUNT_LANES_X86
    return __builtin_cpu_supports("avx512f") &&
           !envFlag("PROPHUNT_NO_AVX512") && !envFlag("PROPHUNT_NO_AVX2");
#else
    return false;
#endif
}

} // namespace

void
BpOsdDecoder::laneEnsure(std::size_t w)
{
    std::size_t edges = tanner_->colDet.size();
    std::size_t ne = tanner_->colDets.size();
    if (laneW_ == w && laneMsg_.size() == edges * w) {
        return;
    }
    laneW_ = w;
    laneMsg_.assign(edges * w, 0.0);
    lanePost_.assign(ne * w, 0.0);
    laneEdgeActive_.assign(edges, 0);
    if (edgePrior_.empty()) {
        edgePrior_.resize(edges);
        for (std::size_t c = 0; c < ne; ++c) {
            for (uint32_t e = tanner_->colBegin[c]; e < tanner_->colBegin[c + 1]; ++e) {
                edgePrior_[e] = tanner_->prior[c];
            }
        }
    }
    std::size_t maxDeg = 0;
    for (std::size_t d = 0; d < numDetectors_; ++d) {
        maxDeg = std::max<std::size_t>(maxDeg,
                                       tanner_->detBegin[d + 1] - tanner_->detBegin[d]);
    }
    laneStage_.assign(maxDeg * w, 0.0);
    laneHardBits_.assign(ne, 0);
    laneAcc_.assign(numDetectors_ * w, 0);
    laneSynB_.assign(numDetectors_ * w, 0);
    laneSynSign_.assign(numDetectors_ * w, 0.0);
    colLaneMask_.assign(ne, 0);
    detLaneMask_.assign(numDetectors_, 0);
    laneCols_.assign(w, {});
    laneFlipped_.assign(w, {});
    laneShot_.assign(w, 0);
    laneLive_.assign(w, 0);
    laneMismatch_.assign(w, 0);
    laneBest_.assign(w, 0);
    laneSinceBest_.assign(w, 0);
    laneIter_.assign(w, 0);
}

void
BpOsdDecoder::laneInstall(std::size_t l, std::size_t shot,
                          const std::vector<uint32_t> &flipped)
{
    const std::size_t W = laneW_;
    uint32_t bit = uint32_t{1} << l;
    uint16_t ebit = (uint16_t)(1u << l);
    // The caller just grew the region into errs_; take it over wholesale.
    laneCols_[l].swap(errs_);
    laneFlipped_[l].assign(flipped.begin(), flipped.end());
    if (laneCols_[l].size() == tanner_->colDets.size()) {
        // Saturated region: the lane's bit planes cover every edge and
        // column, and every detector with an incident error — exactly
        // the marks the per-column walk would set, written as
        // vectorizable full-array sweeps instead of per-edge bit ops.
        for (std::size_t e = 0; e < laneEdgeActive_.size(); ++e) {
            laneEdgeActive_[e] |= ebit;
        }
        for (std::size_t c = 0; c < colLaneMask_.size(); ++c) {
            colLaneMask_[c] |= bit;
        }
        for (std::size_t d = 0; d < numDetectors_; ++d) {
            if (tanner_->detBegin[d + 1] != tanner_->detBegin[d]) {
                detLaneMask_[d] |= bit;
            }
        }
    } else {
        for (uint32_t c : laneCols_[l]) {
            colLaneMask_[c] |= bit;
            for (uint32_t e = tanner_->colBegin[c]; e < tanner_->colBegin[c + 1]; ++e) {
                laneEdgeActive_[e] |= ebit;
                detLaneMask_[tanner_->colDet[e]] |= bit;
            }
        }
    }
    for (uint32_t d : laneFlipped_[l]) {
        laneSynB_[(std::size_t)d * W + l] = 1;
        laneSynSign_[(std::size_t)d * W + l] = -0.0;
    }
    laneShot_[l] = shot;
    laneLive_[l] = 1;
    // Hard decisions start all-zero, so every flipped detector mismatches.
    laneMismatch_[l] = (std::ptrdiff_t)laneFlipped_[l].size();
    laneBest_[l] = laneMismatch_[l];
    laneSinceBest_[l] = 0;
    laneIter_[l] = 0;
}

void
BpOsdDecoder::osdEnqueue(std::size_t l)
{
    if (osdQueue_.size() == osdQueueSize_) {
        osdQueue_.emplace_back();
    }
    OsdJob &job = osdQueue_[osdQueueSize_++];
    const std::size_t W = laneW_;
    std::size_t ne = tanner_->colDets.size();
    job.shot = laneShot_[l];
    job.saturated = laneCols_[l].size() == ne;
    if (job.saturated) {
        // Canonical column order (tanner_->allCols): saturated regions differ
        // only in discovery order, which the OSD result is invariant to
        // (global-id tie-break + row-numbering-free solution), so every
        // saturated job lands in one shared flush group.
        job.sig = 0;
        job.cols.clear();
        job.post.resize(ne);
        for (std::size_t c = 0; c < ne; ++c) {
            job.post[c] = lanePost_[c * W + l];
        }
    } else {
        job.cols.assign(laneCols_[l].begin(), laneCols_[l].end());
        uint64_t h = 1469598103934665603ull; // FNV-1a over the sequence.
        for (uint32_t c : job.cols) {
            h ^= c;
            h *= 1099511628211ull;
        }
        job.sig = h;
        job.post.resize(job.cols.size());
        for (std::size_t i = 0; i < job.cols.size(); ++i) {
            job.post[i] = lanePost_[(std::size_t)job.cols[i] * W + l];
        }
    }
    job.flipped.assign(laneFlipped_[l].begin(), laneFlipped_[l].end());
}

void
BpOsdDecoder::osdFlush(uint64_t *obs_out, PackedDecodeStats *stats)
{
    if (osdQueueSize_ == 0) {
        return;
    }
    auto t0 = std::chrono::steady_clock::now();
    // Group jobs with identical region shapes so the packed-column build
    // is shared; sorting by (shape, shot) keeps the processing order —
    // and thus any scratch warm-up — deterministic. Results are per-shot
    // regardless of grouping, so obs_out is grouping-invariant.
    osdOrderIdx_.resize(osdQueueSize_);
    std::iota(osdOrderIdx_.begin(), osdOrderIdx_.end(), 0);
    std::sort(osdOrderIdx_.begin(), osdOrderIdx_.end(),
              [&](uint32_t a, uint32_t b) {
                  const OsdJob &ja = osdQueue_[a], &jb = osdQueue_[b];
                  if (ja.saturated != jb.saturated) {
                      return ja.saturated > jb.saturated;
                  }
                  if (ja.sig != jb.sig) {
                      return ja.sig < jb.sig;
                  }
                  return ja.shot < jb.shot;
              });
    std::size_t i = 0;
    while (i < osdQueueSize_) {
        const OsdJob &rep = osdQueue_[osdOrderIdx_[i]];
        const std::vector<uint32_t> &cols =
            rep.saturated ? tanner_->allCols : rep.cols;
        std::size_t j = i + 1;
        while (j < osdQueueSize_) {
            const OsdJob &o = osdQueue_[osdOrderIdx_[j]];
            if (o.saturated != rep.saturated || o.sig != rep.sig ||
                (!rep.saturated && o.cols != rep.cols)) {
                break; // Hash collisions fall out as separate groups.
            }
            ++j;
        }
        // Row numbering for the packed backend: global detector rows
        // skip the per-job detLocal_ rebuild, but the elimination's word
        // width then scales with numDetectors_ instead of the region's
        // detector count — a loss on large-detector DEMs with small
        // regions. Compare numDetectors_ against the region's edge
        // count (an upper bound on its detector count, computed without
        // building the numbering): global rows only when at most ~4x
        // wider than the worst-case local numbering. Either numbering
        // produces identical solutions. The scalar reference backend
        // always uses the region-local numbering it has always used.
        bool packed = opts_.packedOsd;
        bool globalRows = packed;
        if (packed) {
            std::size_t edgeBound = 0;
            for (uint32_t c : cols) {
                edgeBound += tanner_->colBegin[c + 1] - tanner_->colBegin[c];
                if (4 * edgeBound >= numDetectors_) {
                    break;
                }
            }
            globalRows = numDetectors_ <= 4 * edgeBound;
        }
        if (!packed || !globalRows) {
            regionDets_.clear();
            for (uint32_t c : cols) {
                for (uint32_t e = tanner_->colBegin[c]; e < tanner_->colBegin[c + 1];
                     ++e) {
                    uint32_t d = tanner_->colDet[e];
                    if (detLocal_[d] < 0) {
                        detLocal_[d] = (int32_t)regionDets_.size();
                        regionDets_.push_back(d);
                    }
                }
            }
        }
        // The shared packed-column cache is built only when the group
        // actually has shots to share it (resetting it for a singleton
        // costs more than it saves — the no-cache path gathers only the
        // columns the elimination touches) and only when it fits the
        // same 32 MB cap the reach bitmaps respect.
        OsdColCache *cache = nullptr;
        std::size_t cacheRows =
            globalRows ? numDetectors_ : regionDets_.size();
        if (packed && j - i > 1 &&
            cols.size() * ((cacheRows + 63) / 64) * 8 <= 32u << 20) {
            osdCache_.bits.reset(cols.size(), cacheRows);
            osdCache_.built.assign(cols.size(), 0);
            cache = &osdCache_;
        }
        // Full-graph fallbacks run after the group releases detLocal_
        // (runRegion builds its own numbering there).
        osdFallbackIdx_.clear();
        for (std::size_t k = i; k < j; ++k) {
            OsdJob &job = osdQueue_[osdOrderIdx_[k]];
            bool solved = osdSolveImpl(cols, job.post.data(), job.flipped,
                                       packed, cache, globalRows);
            if (solved) {
                uint64_t result = 0;
                for (std::size_t c = 0; c < cols.size(); ++c) {
                    if (solUses_[c]) {
                        result ^= tanner_->colObs[cols[c]];
                    }
                }
                obs_out[job.shot] = result;
            } else {
                osdFallbackIdx_.push_back(osdOrderIdx_[k]);
            }
        }
        if (!packed || !globalRows) {
            for (uint32_t d : regionDets_) {
                detLocal_[d] = -1;
            }
        }
        for (uint32_t fk : osdFallbackIdx_) {
            // The scalar path's full-graph fallback (runRegion restores
            // its own scratch; the lane arrays are untouched by it).
            OsdJob &job = osdQueue_[fk];
            bool ok = false;
            obs_out[job.shot] = runRegion(tanner_->allCols, job.flipped, ok);
        }
        i = j;
    }
    if (stats != nullptr) {
        stats->osdShots += osdQueueSize_;
        stats->osdUs += (uint64_t)std::chrono::duration_cast<
                            std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    }
    osdQueueSize_ = 0; // Entries stay allocated for the next flush.
}

void
BpOsdDecoder::laneRetire(std::size_t l, bool converged, uint64_t *obs_out)
{
    const std::size_t W = laneW_;
    uint32_t bit = uint32_t{1} << l;
    uint16_t ebit = (uint16_t)(1u << l);
    if (converged) {
        uint64_t result = 0;
        for (uint32_t c : laneCols_[l]) {
            if (laneHardBits_[c] & bit) {
                result ^= tanner_->colObs[c];
            }
        }
        obs_out[laneShot_[l]] = result;
    } else {
        // Retired without convergence: compact into the batched OSD work
        // queue (the posterior slice, region, and syndrome are captured
        // before the lane's state is swept below); osdFlush writes the
        // observable mask.
        osdEnqueue(l);
    }
    // Restore this lane's slice of every between-shot invariant with
    // full-array sweeps: lane l's bits are only set inside its region, so
    // clearing them everywhere is the same as walking the region, and the
    // sweeps vectorize. The message array itself is NOT touched —
    // clearing the active bits is what retires its slots.
    for (std::size_t e = 0; e < laneEdgeActive_.size(); ++e) {
        laneEdgeActive_[e] &= (uint16_t)~ebit;
    }
    for (std::size_t c = 0; c < colLaneMask_.size(); ++c) {
        colLaneMask_[c] &= ~bit;
        laneHardBits_[c] &= ~bit;
    }
    for (std::size_t d = 0; d < numDetectors_; ++d) {
        detLaneMask_[d] &= ~bit;
        laneAcc_[d * W + l] = 0;
    }
    for (uint32_t d : laneFlipped_[l]) {
        laneSynB_[(std::size_t)d * W + l] = 0;
        laneSynSign_[(std::size_t)d * W + l] = 0.0;
    }
    laneCols_[l].clear();
    laneFlipped_[l].clear();
    laneLive_[l] = 0;
}

void
BpOsdDecoder::laneIterate(int simd_level)
{
    LaneCtx cx;
    cx.W = laneW_;
    cx.numDetectors = numDetectors_;
    cx.numCols = tanner_->colDets.size();
    cx.scale = opts_.scale;
    cx.freshLanes = 0;
    for (std::size_t l = 0; l < laneW_; ++l) {
        if (laneLive_[l] && laneIter_[l] == 0) {
            cx.freshLanes |= uint32_t{1} << l;
        }
    }
    cx.colBegin = tanner_->colBegin.data();
    cx.colDet = tanner_->colDet.data();
    cx.detBegin = tanner_->detBegin.data();
    cx.detEdges = tanner_->detEdges.data();
    cx.prior = tanner_->prior.data();
    cx.edgePrior = edgePrior_.data();
    cx.msg = laneMsg_.data();
    cx.stage = laneStage_.data();
    cx.post = lanePost_.data();
    cx.edgeActive = laneEdgeActive_.data();
    cx.synSign = laneSynSign_.data();
    cx.synB = laneSynB_.data();
    cx.acc = laneAcc_.data();
    cx.hardBits = laneHardBits_.data();
    cx.detMask = detLaneMask_.data();
    cx.colMask = colLaneMask_.data();
    cx.mismatch = laneMismatch_.data();
#if PROPHUNT_LANES_X86
    if (simd_level >= 2 && laneW_ == 8) {
        detPassAvx512<1>(cx);
        colPassAvx512<1>(cx);
        return;
    }
    if (simd_level >= 2 && laneW_ == 16) {
        detPassAvx512<2>(cx);
        colPassAvx512<2>(cx);
        return;
    }
    if (simd_level >= 1 && laneW_ == 8) {
        detPassAvx2<2>(cx);
        colPassAvx2<2>(cx);
        return;
    }
    if (simd_level >= 1 && laneW_ == 4) {
        detPassAvx2<1>(cx);
        colPassAvx2<1>(cx);
        return;
    }
    if (simd_level >= 1 && laneW_ == 16) {
        detPassAvx2<4>(cx);
        colPassAvx2<4>(cx);
        return;
    }
#else
    (void)simd_level;
#endif
    detPassGeneric(cx);
    colPassGeneric(cx);
}

void
BpOsdDecoder::decodePacked(const sim::FrameView &frames, uint64_t *obs_out,
                           PackedDecodeStats *stats)
{
    std::size_t W = std::min(opts_.laneWidth, kMaxLaneWidth);
    if (W == 0) {
        // Scalar reference path: the base adapter (one transpose, then the
        // PR 2 batched decode).
        Decoder::decodePacked(frames, obs_out, stats);
        return;
    }
    std::size_t shots = frames.shots;
    if (stats != nullptr) {
        stats->packedShots += shots;
    }
    if (shots == 0) {
        return;
    }
    laneEnsure(W);

    // Per-shot flipped-detector lists straight from the detector-major
    // words (two counting-sort passes). Scanning detectors in ascending
    // order leaves every per-shot list sorted, as decode() expects.
    packedOffsets_.assign(shots + 1, 0);
    for (std::size_t d = 0; d < frames.numDetectors; ++d) {
        const uint64_t *row = frames.detRow(d);
        for (std::size_t w = 0; w < frames.shotWords; ++w) {
            uint64_t word = row[w];
            while (word != 0) {
                ++packedOffsets_[(w << 6) +
                                 (std::size_t)std::countr_zero(word) + 1];
                word &= word - 1;
            }
        }
    }
    for (std::size_t s = 0; s < shots; ++s) {
        packedOffsets_[s + 1] += packedOffsets_[s];
    }
    packedFlipped_.resize(packedOffsets_[shots]);
    packedFill_.assign(packedOffsets_.begin(), packedOffsets_.end() - 1);
    for (std::size_t d = 0; d < frames.numDetectors; ++d) {
        const uint64_t *row = frames.detRow(d);
        for (std::size_t w = 0; w < frames.shotWords; ++w) {
            uint64_t word = row[w];
            while (word != 0) {
                std::size_t s =
                    (w << 6) + (std::size_t)std::countr_zero(word);
                packedFlipped_[packedFill_[s]++] = (uint32_t)d;
                word &= word - 1;
            }
        }
    }

    // Route shots: trivial syndromes resolve inline, the rest queue for
    // the lanes.
    laneQueue_.clear();
    for (std::size_t s = 0; s < shots; ++s) {
        uint32_t fb = packedOffsets_[s], fe = packedOffsets_[s + 1];
        if (fb == fe) {
            obs_out[s] = 0;
            continue;
        }
        flippedScratch_.assign(packedFlipped_.begin() + fb,
                               packedFlipped_.begin() + fe);
        auto hit = tanner_->single.find(flippedScratch_);
        if (hit != tanner_->single.end()) {
            obs_out[s] = hit->second.first;
            continue;
        }
        if (opts_.maxIterations == 0) {
            // Zero-iteration BP goes straight to OSD in the scalar path;
            // serve this pathological config from there instead of
            // special-casing the lane loop.
            obs_out[s] = decodeFast(flippedScratch_);
            continue;
        }
        bool disconnected = false;
        for (uint32_t d : flippedScratch_) {
            if (tanner_->detBegin[d + 1] == tanner_->detBegin[d]) {
                disconnected = true;
                break;
            }
        }
        if (disconnected) {
            // A flipped detector with no incident error is unexplainable
            // even on the full graph; the scalar path returns 0.
            obs_out[s] = 0;
            continue;
        }
        laneQueue_.push_back((uint32_t)s);
    }

    int simd = W >= 4 && laneUseAvx2() ? 1 : 0;
    if (simd == 1 && (W == 8 || W == 16) && laneUseAvx512()) {
        simd = 2;
    }
    std::size_t next = 0;
    std::size_t live = 0;
    for (;;) {
        // Refill free lanes from the queue.
        for (std::size_t l = 0; l < W; ++l) {
            while (!laneLive_[l] && next < laneQueue_.size()) {
                std::size_t s = laneQueue_[next++];
                uint32_t fb = packedOffsets_[s], fe = packedOffsets_[s + 1];
                flippedScratch_.assign(packedFlipped_.begin() + fb,
                                       packedFlipped_.begin() + fe);
                growRegion(flippedScratch_);
                if (errs_.empty()) {
                    // regionRadius == 0: the scalar path's region attempt
                    // is infeasible and it decodes on the full graph.
                    bool ok = false;
                    obs_out[s] = runRegion(tanner_->allCols, flippedScratch_, ok);
                    continue;
                }
                laneInstall(l, s, flippedScratch_);
                ++live;
            }
        }
        if (live == 0) {
            break;
        }
        laneIterate(simd);
        if (stats != nullptr) {
            stats->laneSlotsBusy += live;
            stats->laneSlotsTotal += W;
        }
        // Per-lane stopping rules, mirroring the scalar iteration loop.
        for (std::size_t l = 0; l < W; ++l) {
            if (!laneLive_[l]) {
                continue;
            }
            ++laneIter_[l];
            bool converged = laneMismatch_[l] == 0;
            bool done = converged;
            if (!converged) {
                if (opts_.stagnationWindow != 0) {
                    if (laneMismatch_[l] < laneBest_[l]) {
                        laneBest_[l] = laneMismatch_[l];
                        laneSinceBest_[l] = 0;
                    } else if (++laneSinceBest_[l] >=
                               opts_.stagnationWindow) {
                        done = true; // Stagnated; posteriors go to OSD.
                    }
                }
                if (laneIter_[l] >= opts_.maxIterations) {
                    done = true;
                }
            }
            if (done) {
                laneRetire(l, converged, obs_out);
                --live;
            }
        }
        if (osdQueueSize_ >= kOsdFlushCap) {
            osdFlush(obs_out, stats);
        }
    }
    osdFlush(obs_out, stats);
}

} // namespace prophunt::decoder
