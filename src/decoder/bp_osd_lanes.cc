/**
 * @file
 * Lane-batched SIMD BP engine behind BpOsdDecoder::decodePacked.
 *
 * The engine runs min-sum BP for laneWidth shots in parallel "lanes" over
 * the global Tanner CSR built once per DEM. Messages live in ONE
 * lane-interleaved in-place array (laneWidth doubles per edge): a
 * detector pass reads column->detector values and overwrites each slot
 * with its detector->column reply (an edge belongs to exactly one
 * detector and one column, so neither pass reads a slot another detector
 * or column wrote this iteration). The detector -> column two-minimum
 * reduction processes 4 lanes per AVX2 vector from one contiguous load —
 * no gathers — and walks every chunk of the width in a single pass over
 * the detector's edges, so the independent per-chunk min chains hide the
 * blend latency and each message cache line is touched once per pass.
 * Odd widths and non-x86 builds use a bit-identical scalar-lane
 * fallback.
 *
 * Localized-region semantics are preserved per lane without per-shot
 * message initialization: laneEdgeActive_ carries one bit per
 * (edge, lane), and the detector pass substitutes the scalar path's
 * +1e300 inactive-edge sentinel — or the column prior on a lane's first
 * iteration, when no column pass has written real messages yet — while
 * loading. The message array may therefore hold garbage in inactive
 * lanes: installing a shot sets one contiguous bit per region edge
 * instead of writing one strided double (a full cache line each at
 * laneWidth 8), and retiring clears the lane's bit planes with
 * vectorizable full-array sweeps. Both passes find their work by
 * scanning the per-column/per-detector lane masks in index order, which
 * keeps the message walks sequential. Lanes retire individually
 * (convergence, stagnation, or the iteration budget) and are refilled
 * from the shot queue, so iteration skew between easy and hard syndromes
 * no longer serializes the batch.
 *
 * Exactness: every per-lane recurrence reproduces the scalar runRegion
 * arithmetic operation for operation (same edge order in the sums, same
 * strict-minimum updates, no FMA contraction), the per-lane stopping
 * rules are the scalar ones, and non-converged lanes hand their
 * posteriors to the shared scalar OSD post-pass — so decodePacked equals
 * per-shot decode() bit for bit for every laneWidth, and a shot's result
 * never depends on which shots share its lanes (shot-order invariance).
 * The sign-bit trick used by the vector kernels (sign(x) as the IEEE
 * sign bit) matches the scalar `v < 0.0` test because effective
 * column -> detector messages are never -0.0: priors and sentinels are
 * positive, and a sum or difference of doubles only produces -0.0 from
 * two negative zeros.
 */
#include "decoder/bp_osd.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define PROPHUNT_LANES_X86 1
#include <immintrin.h>
#endif

namespace prophunt::decoder {

namespace {

/** Same value as the scalar path's inactive-edge sentinel (bp_osd.cc). */
constexpr double kInactiveLane = 1e300;

/** Raw pointers of one lane BP iteration, hoisted out of the decoder so
 * the same kernels compile with and without AVX2. */
struct LaneCtx
{
    std::size_t W = 0;
    std::size_t numDetectors = 0;
    std::size_t numCols = 0;
    double scale = 0.0;
    /** Bit l: lane l is on its first iteration (messages still read as
     * the column prior; no column pass has run for it yet). */
    uint32_t freshLanes = 0;
    const uint32_t *colBegin = nullptr;
    const uint32_t *colDet = nullptr;
    const uint32_t *detBegin = nullptr;
    const uint32_t *detEdges = nullptr;
    const double *prior = nullptr;
    const double *edgePrior = nullptr;
    double *msg = nullptr;
    double *stage = nullptr;
    double *post = nullptr;
    const uint16_t *edgeActive = nullptr;
    const double *synSign = nullptr;
    const uint8_t *synB = nullptr;
    uint8_t *acc = nullptr;
    uint32_t *hardBits = nullptr;
    const uint32_t *detMask = nullptr;
    const uint32_t *colMask = nullptr;
    std::ptrdiff_t *mismatch = nullptr;
};

/** The effective column->detector message of (edge @p e, lane @p l): the
 * stored value for live region edges, the column prior before a lane's
 * first column pass, the scalar sentinel outside the region. */
inline double
effectiveMsg(const LaneCtx &cx, std::size_t e, std::size_t l)
{
    if (((cx.edgeActive[e] >> l) & 1) == 0) {
        return kInactiveLane;
    }
    if (((cx.freshLanes >> l) & 1) != 0) {
        return cx.edgePrior[e];
    }
    return cx.msg[e * cx.W + l];
}

/** Detector -> column pass for one (detector, lane): the scalar min-sum
 * two-minimum reduction of runRegion, indexed into the lane slice. */
void
detPassLane(const LaneCtx &cx, uint32_t d, std::size_t l)
{
    const std::size_t W = cx.W;
    uint32_t b = cx.detBegin[d], en = cx.detBegin[d + 1];
    uint32_t deg = en - b;
    bool negProduct = cx.synB[(std::size_t)d * W + l] != 0;
    double min1 = 1e300, min2 = 1e300;
    uint32_t argpos = UINT32_MAX;
    for (uint32_t i = 0; i < deg; ++i) {
        double v = effectiveMsg(cx, cx.detEdges[b + i], l);
        cx.stage[(std::size_t)i * W + l] = v;
        if (v < 0.0) {
            negProduct = !negProduct;
        }
        double a = std::fabs(v);
        if (a < min1) {
            min2 = min1;
            min1 = a;
            argpos = i;
        } else if (a < min2) {
            min2 = a;
        }
    }
    double m1 = cx.scale * min1, m2 = cx.scale * min2;
    for (uint32_t i = 0; i < deg; ++i) {
        double v = cx.stage[(std::size_t)i * W + l];
        double mag = (i == argpos) ? m2 : m1;
        cx.msg[(std::size_t)cx.detEdges[b + i] * W + l] =
            (negProduct != (v < 0.0)) ? -mag : mag;
    }
}

/** Column -> detector pass for one (column, lane): posterior, hard
 * decision with incremental syndrome-mismatch tracking, message update. */
void
colPassLane(const LaneCtx &cx, uint32_t c, std::size_t l)
{
    const std::size_t W = cx.W;
    uint32_t b = cx.colBegin[c], en = cx.colBegin[c + 1];
    double total = cx.prior[c];
    for (uint32_t e = b; e < en; ++e) {
        total += cx.msg[(std::size_t)e * W + l];
    }
    cx.post[(std::size_t)c * W + l] = total;
    uint32_t bit = uint32_t{1} << l;
    uint32_t h = total < 0 ? bit : 0;
    if (((cx.hardBits[c] ^ h) & bit) != 0) {
        cx.hardBits[c] ^= bit;
        for (uint32_t e = b; e < en; ++e) {
            std::size_t off = (std::size_t)cx.colDet[e] * W + l;
            cx.acc[off] ^= 1;
            cx.mismatch[l] += (cx.acc[off] != cx.synB[off]) ? 1 : -1;
        }
    }
    for (uint32_t e = b; e < en; ++e) {
        std::size_t off = (std::size_t)e * W + l;
        cx.msg[off] = total - cx.msg[off];
    }
}

void
detPassGeneric(const LaneCtx &cx)
{
    for (std::size_t d = 0; d < cx.numDetectors; ++d) {
        uint32_t mask = cx.detMask[d];
        while (mask != 0) {
            detPassLane(cx, (uint32_t)d,
                        (std::size_t)std::countr_zero(mask));
            mask &= mask - 1;
        }
    }
}

void
colPassGeneric(const LaneCtx &cx)
{
    for (std::size_t c = 0; c < cx.numCols; ++c) {
        uint32_t mask = cx.colMask[c];
        while (mask != 0) {
            colPassLane(cx, (uint32_t)c,
                        (std::size_t)std::countr_zero(mask));
            mask &= mask - 1;
        }
    }
}

#if PROPHUNT_LANES_X86

/** Element j is all-ones iff bit j of the index is set; the sign bits
 * drive _mm256_blendv_pd lane selection. */
alignas(32) constexpr int64_t kNibbleMask[16][4] = {
    {0, 0, 0, 0},     {-1, 0, 0, 0},   {0, -1, 0, 0},   {-1, -1, 0, 0},
    {0, 0, -1, 0},    {-1, 0, -1, 0},  {0, -1, -1, 0},  {-1, -1, -1, 0},
    {0, 0, 0, -1},    {-1, 0, 0, -1},  {0, -1, 0, -1},  {-1, -1, 0, -1},
    {0, 0, -1, -1},   {-1, 0, -1, -1}, {0, -1, -1, -1}, {-1, -1, -1, -1},
};

__attribute__((target("avx2"))) inline __m256d
nibbleMask(uint32_t nib)
{
    return _mm256_castsi256_pd(
        _mm256_load_si256((const __m256i *)kNibbleMask[nib]));
}

/**
 * AVX2 detector pass for NC 4-lane chunks walked in ONE pass over each
 * detector's edges: the two-minimum chains of the chunks are
 * independent, so interleaving them hides the blend latency, and every
 * message cache line is touched once per pass. Remainder lanes (W % 4)
 * run the scalar kernel; lanes of a processed chunk with no live shot at
 * this detector see only sentinels and produce garbage nobody reads.
 */
template <int NC>
__attribute__((target("avx2"))) void
detPassAvx2(const LaneCtx &cx)
{
    const std::size_t W = cx.W;
    const __m256d signMask = _mm256_set1_pd(-0.0);
    const __m256d inactive = _mm256_set1_pd(kInactiveLane);
    const __m256d scaleV = _mm256_set1_pd(cx.scale);
    __m256d freshV[NC];
    for (int k = 0; k < NC; ++k) {
        freshV[k] = nibbleMask((cx.freshLanes >> (4 * k)) & 0xf);
    }
    for (std::size_t d = 0; d < cx.numDetectors; ++d) {
        uint32_t mask = cx.detMask[d];
        if (mask == 0) {
            continue;
        }
        uint32_t b = cx.detBegin[d], en = cx.detBegin[d + 1];
        uint32_t deg = en - b;
        __m256d signAcc[NC], min1[NC], min2[NC], argpos[NC];
        for (int k = 0; k < NC; ++k) {
            signAcc[k] =
                _mm256_loadu_pd(cx.synSign + (std::size_t)d * W + 4 * k);
            min1[k] = inactive;
            min2[k] = inactive;
            argpos[k] = _mm256_set1_pd(-1.0);
        }
        for (uint32_t i = 0; i < deg; ++i) {
            std::size_t e = cx.detEdges[b + i];
            uint32_t act = cx.edgeActive[e];
            const __m256d priorV = _mm256_set1_pd(cx.edgePrior[e]);
            const __m256d idx = _mm256_set1_pd((double)i);
            for (int k = 0; k < NC; ++k) {
                __m256d am = nibbleMask((act >> (4 * k)) & 0xf);
                __m256d v = _mm256_loadu_pd(cx.msg + e * W + 4 * k);
                // Region membership: prior on the lane's first
                // iteration, stored value afterwards, sentinel outside
                // the region.
                v = _mm256_blendv_pd(v, priorV,
                                     _mm256_and_pd(am, freshV[k]));
                v = _mm256_blendv_pd(inactive, v, am);
                _mm256_storeu_pd(cx.stage + (std::size_t)i * W + 4 * k, v);
                signAcc[k] =
                    _mm256_xor_pd(signAcc[k], _mm256_and_pd(v, signMask));
                __m256d a = _mm256_andnot_pd(signMask, v);
                __m256d lt1 = _mm256_cmp_pd(a, min1[k], _CMP_LT_OQ);
                __m256d lt2 = _mm256_cmp_pd(a, min2[k], _CMP_LT_OQ);
                min2[k] = _mm256_blendv_pd(
                    _mm256_blendv_pd(min2[k], a, lt2), min1[k], lt1);
                min1[k] = _mm256_blendv_pd(min1[k], a, lt1);
                argpos[k] = _mm256_blendv_pd(argpos[k], idx, lt1);
            }
        }
        __m256d m1[NC], m2[NC];
        for (int k = 0; k < NC; ++k) {
            m1[k] = _mm256_mul_pd(scaleV, min1[k]);
            m2[k] = _mm256_mul_pd(scaleV, min2[k]);
        }
        for (uint32_t i = 0; i < deg; ++i) {
            std::size_t e = cx.detEdges[b + i];
            const __m256d idx = _mm256_set1_pd((double)i);
            for (int k = 0; k < NC; ++k) {
                __m256d v =
                    _mm256_loadu_pd(cx.stage + (std::size_t)i * W + 4 * k);
                __m256d eq = _mm256_cmp_pd(idx, argpos[k], _CMP_EQ_OQ);
                __m256d mag = _mm256_blendv_pd(m1[k], m2[k], eq);
                // mag >= 0, so OR-ing the product sign bit equals the
                // scalar ±mag selection bit for bit (including ±0.0).
                __m256d sb = _mm256_and_pd(
                    _mm256_xor_pd(signAcc[k], v), signMask);
                _mm256_storeu_pd(cx.msg + e * W + 4 * k,
                                 _mm256_or_pd(mag, sb));
            }
        }
        for (std::size_t l = (std::size_t)NC * 4; l < W; ++l) {
            if ((mask >> l) & 1) {
                detPassLane(cx, (uint32_t)d, l);
            }
        }
    }
}

template <int NC>
__attribute__((target("avx2"))) void
colPassAvx2(const LaneCtx &cx)
{
    const std::size_t W = cx.W;
    const __m256d zero = _mm256_setzero_pd();
    for (std::size_t c = 0; c < cx.numCols; ++c) {
        uint32_t mask = cx.colMask[c];
        if (mask == 0) {
            continue;
        }
        uint32_t b = cx.colBegin[c], en = cx.colBegin[c + 1];
        __m256d tot[NC];
        for (int k = 0; k < NC; ++k) {
            tot[k] = _mm256_set1_pd(cx.prior[c]);
        }
        for (uint32_t e = b; e < en; ++e) {
            for (int k = 0; k < NC; ++k) {
                tot[k] = _mm256_add_pd(
                    tot[k],
                    _mm256_loadu_pd(cx.msg + (std::size_t)e * W + 4 * k));
            }
        }
        for (int k = 0; k < NC; ++k) {
            // Unmasked: inactive lanes' posteriors are garbage nobody
            // reads (a live lane rewrites its slice every iteration).
            _mm256_storeu_pd(cx.post + (std::size_t)c * W + 4 * k, tot[k]);
            uint32_t nib = (mask >> (4 * k)) & 0xf;
            if (nib == 0) {
                continue;
            }
            uint32_t hNow =
                (uint32_t)_mm256_movemask_pd(
                    _mm256_cmp_pd(tot[k], zero, _CMP_LT_OQ)) &
                nib;
            uint32_t hPrev = (cx.hardBits[c] >> (4 * k)) & 0xf;
            uint32_t changed = hNow ^ hPrev;
            if (changed != 0) {
                cx.hardBits[c] ^= changed << (4 * k);
                while (changed != 0) {
                    std::size_t l =
                        4 * k + (std::size_t)std::countr_zero(changed);
                    for (uint32_t e = b; e < en; ++e) {
                        std::size_t off =
                            (std::size_t)cx.colDet[e] * W + l;
                        cx.acc[off] ^= 1;
                        cx.mismatch[l] +=
                            (cx.acc[off] != cx.synB[off]) ? 1 : -1;
                    }
                    changed &= changed - 1;
                }
            }
        }
        for (uint32_t e = b; e < en; ++e) {
            for (int k = 0; k < NC; ++k) {
                std::size_t off = (std::size_t)e * W + 4 * k;
                // In-place and unmasked: garbage lanes stay garbage, the
                // detector pass's membership blend restores semantics.
                _mm256_storeu_pd(
                    cx.msg + off,
                    _mm256_sub_pd(tot[k], _mm256_loadu_pd(cx.msg + off)));
            }
        }
        for (std::size_t l = (std::size_t)NC * 4; l < W; ++l) {
            if ((mask >> l) & 1) {
                colPassLane(cx, (uint32_t)c, l);
            }
        }
    }
}

#endif // PROPHUNT_LANES_X86

/** Runtime kernel selection. PROPHUNT_NO_AVX2 forces the generic lanes —
 * the cross-check the lane tests use on AVX2 hardware. */
bool
laneUseAvx2()
{
#if PROPHUNT_LANES_X86
    return __builtin_cpu_supports("avx2") &&
           std::getenv("PROPHUNT_NO_AVX2") == nullptr;
#else
    return false;
#endif
}

} // namespace

void
BpOsdDecoder::laneEnsure(std::size_t w)
{
    std::size_t edges = colDet_.size();
    std::size_t ne = colDets_.size();
    if (laneW_ == w && laneMsg_.size() == edges * w) {
        return;
    }
    laneW_ = w;
    laneMsg_.assign(edges * w, 0.0);
    lanePost_.assign(ne * w, 0.0);
    laneEdgeActive_.assign(edges, 0);
    if (edgePrior_.empty()) {
        edgePrior_.resize(edges);
        for (std::size_t c = 0; c < ne; ++c) {
            for (uint32_t e = colBegin_[c]; e < colBegin_[c + 1]; ++e) {
                edgePrior_[e] = prior_[c];
            }
        }
    }
    std::size_t maxDeg = 0;
    for (std::size_t d = 0; d < numDetectors_; ++d) {
        maxDeg = std::max<std::size_t>(maxDeg,
                                       detBegin_[d + 1] - detBegin_[d]);
    }
    laneStage_.assign(maxDeg * w, 0.0);
    laneHardBits_.assign(ne, 0);
    laneAcc_.assign(numDetectors_ * w, 0);
    laneSynB_.assign(numDetectors_ * w, 0);
    laneSynSign_.assign(numDetectors_ * w, 0.0);
    colLaneMask_.assign(ne, 0);
    detLaneMask_.assign(numDetectors_, 0);
    laneCols_.assign(w, {});
    laneFlipped_.assign(w, {});
    laneShot_.assign(w, 0);
    laneLive_.assign(w, 0);
    laneMismatch_.assign(w, 0);
    laneBest_.assign(w, 0);
    laneSinceBest_.assign(w, 0);
    laneIter_.assign(w, 0);
}

void
BpOsdDecoder::laneInstall(std::size_t l, std::size_t shot,
                          const std::vector<uint32_t> &flipped)
{
    const std::size_t W = laneW_;
    uint32_t bit = uint32_t{1} << l;
    uint16_t ebit = (uint16_t)(1u << l);
    // The caller just grew the region into errs_; take it over wholesale.
    laneCols_[l].swap(errs_);
    laneFlipped_[l].assign(flipped.begin(), flipped.end());
    for (uint32_t c : laneCols_[l]) {
        colLaneMask_[c] |= bit;
        for (uint32_t e = colBegin_[c]; e < colBegin_[c + 1]; ++e) {
            laneEdgeActive_[e] |= ebit;
            detLaneMask_[colDet_[e]] |= bit;
        }
    }
    for (uint32_t d : laneFlipped_[l]) {
        laneSynB_[(std::size_t)d * W + l] = 1;
        laneSynSign_[(std::size_t)d * W + l] = -0.0;
    }
    laneShot_[l] = shot;
    laneLive_[l] = 1;
    // Hard decisions start all-zero, so every flipped detector mismatches.
    laneMismatch_[l] = (std::ptrdiff_t)laneFlipped_[l].size();
    laneBest_[l] = laneMismatch_[l];
    laneSinceBest_[l] = 0;
    laneIter_[l] = 0;
}

uint64_t
BpOsdDecoder::laneRetire(std::size_t l, bool converged)
{
    const std::size_t W = laneW_;
    uint32_t bit = uint32_t{1} << l;
    uint16_t ebit = (uint16_t)(1u << l);
    const std::vector<uint32_t> &cols = laneCols_[l];
    uint64_t result = 0;
    if (converged) {
        for (uint32_t c : cols) {
            if (laneHardBits_[c] & bit) {
                result ^= colObs_[c];
            }
        }
    } else {
        // Rebuild the region's local detector numbering in the scalar
        // discovery order and hand the lane's posterior slice to the
        // shared OSD post-pass (gathered contiguous, as the sort wants).
        regionDets_.clear();
        osdPost_.resize(cols.size());
        for (std::size_t i = 0; i < cols.size(); ++i) {
            uint32_t c = cols[i];
            osdPost_[i] = lanePost_[(std::size_t)c * W + l];
            for (uint32_t e = colBegin_[c]; e < colBegin_[c + 1]; ++e) {
                uint32_t d = colDet_[e];
                if (detLocal_[d] < 0) {
                    detLocal_[d] = (int32_t)regionDets_.size();
                    regionDets_.push_back(d);
                }
            }
        }
        bool solved = osdSolve(cols, osdPost_.data(), laneFlipped_[l]);
        if (solved) {
            for (std::size_t i = 0; i < cols.size(); ++i) {
                if (solUses_[i]) {
                    result ^= colObs_[cols[i]];
                }
            }
        }
        for (uint32_t d : regionDets_) {
            detLocal_[d] = -1;
        }
        if (!solved) {
            // The scalar path's full-graph fallback (runRegion restores
            // its own scratch; the lane arrays are untouched by it).
            bool ok = false;
            result = runRegion(allCols_, laneFlipped_[l], ok);
        }
    }
    // Restore this lane's slice of every between-shot invariant with
    // full-array sweeps: lane l's bits are only set inside its region, so
    // clearing them everywhere is the same as walking the region, and the
    // sweeps vectorize. The message array itself is NOT touched —
    // clearing the active bits is what retires its slots.
    for (std::size_t e = 0; e < laneEdgeActive_.size(); ++e) {
        laneEdgeActive_[e] &= (uint16_t)~ebit;
    }
    for (std::size_t c = 0; c < colLaneMask_.size(); ++c) {
        colLaneMask_[c] &= ~bit;
        laneHardBits_[c] &= ~bit;
    }
    for (std::size_t d = 0; d < numDetectors_; ++d) {
        detLaneMask_[d] &= ~bit;
        laneAcc_[d * W + l] = 0;
    }
    for (uint32_t d : laneFlipped_[l]) {
        laneSynB_[(std::size_t)d * W + l] = 0;
        laneSynSign_[(std::size_t)d * W + l] = 0.0;
    }
    laneCols_[l].clear();
    laneFlipped_[l].clear();
    laneLive_[l] = 0;
    return result;
}

void
BpOsdDecoder::laneIterate(bool use_avx2)
{
    LaneCtx cx;
    cx.W = laneW_;
    cx.numDetectors = numDetectors_;
    cx.numCols = colDets_.size();
    cx.scale = opts_.scale;
    cx.freshLanes = 0;
    for (std::size_t l = 0; l < laneW_; ++l) {
        if (laneLive_[l] && laneIter_[l] == 0) {
            cx.freshLanes |= uint32_t{1} << l;
        }
    }
    cx.colBegin = colBegin_.data();
    cx.colDet = colDet_.data();
    cx.detBegin = detBegin_.data();
    cx.detEdges = detEdges_.data();
    cx.prior = prior_.data();
    cx.edgePrior = edgePrior_.data();
    cx.msg = laneMsg_.data();
    cx.stage = laneStage_.data();
    cx.post = lanePost_.data();
    cx.edgeActive = laneEdgeActive_.data();
    cx.synSign = laneSynSign_.data();
    cx.synB = laneSynB_.data();
    cx.acc = laneAcc_.data();
    cx.hardBits = laneHardBits_.data();
    cx.detMask = detLaneMask_.data();
    cx.colMask = colLaneMask_.data();
    cx.mismatch = laneMismatch_.data();
#if PROPHUNT_LANES_X86
    if (use_avx2 && laneW_ == 8) {
        detPassAvx2<2>(cx);
        colPassAvx2<2>(cx);
        return;
    }
    if (use_avx2 && laneW_ == 4) {
        detPassAvx2<1>(cx);
        colPassAvx2<1>(cx);
        return;
    }
    if (use_avx2 && laneW_ == 16) {
        detPassAvx2<4>(cx);
        colPassAvx2<4>(cx);
        return;
    }
#else
    (void)use_avx2;
#endif
    detPassGeneric(cx);
    colPassGeneric(cx);
}

void
BpOsdDecoder::decodePacked(const sim::FrameView &frames, uint64_t *obs_out,
                           PackedDecodeStats *stats)
{
    std::size_t W = std::min(opts_.laneWidth, kMaxLaneWidth);
    if (W == 0) {
        // Scalar reference path: the base adapter (one transpose, then the
        // PR 2 batched decode).
        Decoder::decodePacked(frames, obs_out, stats);
        return;
    }
    std::size_t shots = frames.shots;
    if (stats != nullptr) {
        stats->packedShots += shots;
    }
    if (shots == 0) {
        return;
    }
    laneEnsure(W);

    // Per-shot flipped-detector lists straight from the detector-major
    // words (two counting-sort passes). Scanning detectors in ascending
    // order leaves every per-shot list sorted, as decode() expects.
    packedOffsets_.assign(shots + 1, 0);
    for (std::size_t d = 0; d < frames.numDetectors; ++d) {
        const uint64_t *row = frames.detRow(d);
        for (std::size_t w = 0; w < frames.shotWords; ++w) {
            uint64_t word = row[w];
            while (word != 0) {
                ++packedOffsets_[(w << 6) +
                                 (std::size_t)std::countr_zero(word) + 1];
                word &= word - 1;
            }
        }
    }
    for (std::size_t s = 0; s < shots; ++s) {
        packedOffsets_[s + 1] += packedOffsets_[s];
    }
    packedFlipped_.resize(packedOffsets_[shots]);
    packedFill_.assign(packedOffsets_.begin(), packedOffsets_.end() - 1);
    for (std::size_t d = 0; d < frames.numDetectors; ++d) {
        const uint64_t *row = frames.detRow(d);
        for (std::size_t w = 0; w < frames.shotWords; ++w) {
            uint64_t word = row[w];
            while (word != 0) {
                std::size_t s =
                    (w << 6) + (std::size_t)std::countr_zero(word);
                packedFlipped_[packedFill_[s]++] = (uint32_t)d;
                word &= word - 1;
            }
        }
    }

    // Route shots: trivial syndromes resolve inline, the rest queue for
    // the lanes.
    laneQueue_.clear();
    for (std::size_t s = 0; s < shots; ++s) {
        uint32_t fb = packedOffsets_[s], fe = packedOffsets_[s + 1];
        if (fb == fe) {
            obs_out[s] = 0;
            continue;
        }
        flippedScratch_.assign(packedFlipped_.begin() + fb,
                               packedFlipped_.begin() + fe);
        auto hit = single_.find(flippedScratch_);
        if (hit != single_.end()) {
            obs_out[s] = hit->second.first;
            continue;
        }
        if (opts_.maxIterations == 0) {
            // Zero-iteration BP goes straight to OSD in the scalar path;
            // serve this pathological config from there instead of
            // special-casing the lane loop.
            obs_out[s] = decodeFast(flippedScratch_);
            continue;
        }
        bool disconnected = false;
        for (uint32_t d : flippedScratch_) {
            if (detBegin_[d + 1] == detBegin_[d]) {
                disconnected = true;
                break;
            }
        }
        if (disconnected) {
            // A flipped detector with no incident error is unexplainable
            // even on the full graph; the scalar path returns 0.
            obs_out[s] = 0;
            continue;
        }
        laneQueue_.push_back((uint32_t)s);
    }

    bool avx2 = W >= 4 && laneUseAvx2();
    std::size_t next = 0;
    std::size_t live = 0;
    for (;;) {
        // Refill free lanes from the queue.
        for (std::size_t l = 0; l < W; ++l) {
            while (!laneLive_[l] && next < laneQueue_.size()) {
                std::size_t s = laneQueue_[next++];
                uint32_t fb = packedOffsets_[s], fe = packedOffsets_[s + 1];
                flippedScratch_.assign(packedFlipped_.begin() + fb,
                                       packedFlipped_.begin() + fe);
                growRegion(flippedScratch_);
                if (errs_.empty()) {
                    // regionRadius == 0: the scalar path's region attempt
                    // is infeasible and it decodes on the full graph.
                    bool ok = false;
                    obs_out[s] = runRegion(allCols_, flippedScratch_, ok);
                    continue;
                }
                laneInstall(l, s, flippedScratch_);
                ++live;
            }
        }
        if (live == 0) {
            break;
        }
        laneIterate(avx2);
        if (stats != nullptr) {
            stats->laneSlotsBusy += live;
            stats->laneSlotsTotal += W;
        }
        // Per-lane stopping rules, mirroring the scalar iteration loop.
        for (std::size_t l = 0; l < W; ++l) {
            if (!laneLive_[l]) {
                continue;
            }
            ++laneIter_[l];
            bool converged = laneMismatch_[l] == 0;
            bool done = converged;
            if (!converged) {
                if (opts_.stagnationWindow != 0) {
                    if (laneMismatch_[l] < laneBest_[l]) {
                        laneBest_[l] = laneMismatch_[l];
                        laneSinceBest_[l] = 0;
                    } else if (++laneSinceBest_[l] >=
                               opts_.stagnationWindow) {
                        done = true; // Stagnated; posteriors go to OSD.
                    }
                }
                if (laneIter_[l] >= opts_.maxIterations) {
                    done = true;
                }
            }
            if (done) {
                obs_out[laneShot_[l]] = laneRetire(l, converged);
                --live;
            }
        }
    }
}

} // namespace prophunt::decoder
