/**
 * @file
 * Logical-error-rate measurement harness.
 *
 * Ties together circuit construction, DEM extraction, sampling, and
 * decoding. The reported quantity matches the paper's evaluation: the
 * combined probability of a logical X or logical Z error over a d-round
 * memory experiment, estimated from separate memory-Z and memory-X runs.
 */
#ifndef PROPHUNT_DECODER_LOGICAL_ERROR_H
#define PROPHUNT_DECODER_LOGICAL_ERROR_H

#include <cstdint>
#include <memory>

#include "circuit/schedule.h"
#include "circuit/sm_circuit.h"
#include "decoder/decoder.h"
#include "sim/dem.h"
#include "sim/noise_model.h"

namespace prophunt::decoder {

/** Decoder selection for LER measurements. */
enum class DecoderKind
{
    UnionFind, ///< Matching decoder, for surface codes.
    BpOsd,     ///< LDPC decoder, for LP/RQT codes.
};

/** Build the appropriate decoder for a DEM. */
std::unique_ptr<Decoder> makeDecoder(const sim::Dem &dem,
                                     const circuit::SmCircuit &circuit,
                                     DecoderKind kind);

/** Outcome of one Monte-Carlo LER estimate. */
struct LerResult
{
    std::size_t shots = 0;
    std::size_t failures = 0;

    double
    ler() const
    {
        return shots == 0 ? 0.0 : (double)failures / (double)shots;
    }
};

/** Sample the DEM and decode each shot; failures are observable misses. */
LerResult measureDemLer(const sim::Dem &dem, Decoder &dec, std::size_t shots,
                        uint64_t seed);

/** Combined memory-Z + memory-X logical error rate. */
struct MemoryLer
{
    LerResult z; ///< Memory-Z experiment (decodes X-type faults).
    LerResult x; ///< Memory-X experiment (decodes Z-type faults).

    /** P(any logical error) = 1 - (1 - p_z)(1 - p_x). */
    double
    combined() const
    {
        return 1.0 - (1.0 - z.ler()) * (1.0 - x.ler());
    }
};

/**
 * Measure the combined LER of a schedule over @p rounds rounds.
 *
 * Runs both memory bases with @p shots shots each.
 */
MemoryLer measureMemoryLer(const circuit::SmSchedule &schedule,
                           std::size_t rounds, const sim::NoiseModel &noise,
                           DecoderKind kind, std::size_t shots,
                           uint64_t seed);

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_LOGICAL_ERROR_H
