/**
 * @file
 * Logical-error-rate measurement harness.
 *
 * Ties together circuit construction, DEM extraction, sampling, and
 * decoding. The reported quantity matches the paper's evaluation: the
 * combined probability of a logical X or logical Z error over a d-round
 * memory experiment, estimated from separate memory-Z and memory-X runs.
 */
#ifndef PROPHUNT_DECODER_LOGICAL_ERROR_H
#define PROPHUNT_DECODER_LOGICAL_ERROR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/schedule.h"
#include "circuit/sm_circuit.h"
#include "decoder/decoder.h"
#include "decoder/registry.h"
#include "sim/dem.h"
#include "sim/noise_model.h"
#include "sim/parallel_sampler.h"

namespace prophunt::decoder {

// The legacy closed DecoderKind enum and its compatibility overloads
// were deprecated in PR 4 and deleted in PR 6: pass a DecoderSpec
// ("union_find", "bp_osd", ...) instead; see decoder/registry.h.

/** Build a decoder for a DEM through the registry. */
std::unique_ptr<Decoder> makeDecoder(const sim::Dem &dem,
                                     const circuit::SmCircuit &circuit,
                                     const DecoderSpec &spec);

/** Outcome of one Monte-Carlo LER estimate. */
struct LerResult
{
    std::size_t shots = 0;
    std::size_t failures = 0;
    /** True iff early stopping cut the run before the full shot budget. */
    bool earlyStopped = false;
    /**
     * How the counted shots were decoded (native packed vs transpose
     * adapter, lane occupancy, batched-OSD shots and microseconds).
     * Accounted over the same deterministic shard prefix as
     * shots/failures, so every counter except the wall-clock osdUs is
     * thread-count invariant.
     */
    PackedDecodeStats packed;

    double
    ler() const
    {
        return shots == 0 ? 0.0 : (double)failures / (double)shots;
    }
};

/** Knobs for the parallel Monte-Carlo LER engine. */
struct LerOptions
{
    /** Worker threads; 0 (the default) means hardware concurrency. */
    std::size_t threads = 0;
    /**
     * Stop once this many failures were seen (0 disables).
     *
     * Sequential-test style: cheap (high-LER) regimes resolve in a few
     * shards instead of burning the full shot budget. Accounting walks
     * completed shards in index order and truncates at the first shard
     * where the cumulative failure count reaches the target, so the
     * reported failures/shots are identical for every thread count.
     */
    std::size_t maxFailures = 0;
    /** Shots per shard (granularity of parallelism and early stopping). */
    std::size_t shardShots = sim::kDefaultShardShots;
};

/**
 * Per-worker storage reused across shard decodes: per-shot predictions
 * and the observable masks read straight from the frame rows.
 */
struct FrameShardScratch
{
    std::vector<uint64_t> predictions;
    std::vector<uint64_t> obsMasks;
    PackedDecodeStats stats;
};

/**
 * Decode one sampled frame shard with @p dec; returns its failure count
 * and leaves the shard's packed-path telemetry in @p scratch.stats.
 *
 * Frames flow into the decoder packed (decodePacked): decoders with a
 * native frame path (BP+OSD lanes) never see a transpose, everything
 * else is adapted inside the default implementation. The one shard-tally
 * computation shared by measureDemLer and api::DecodeService — a tally
 * recorded under (DEM, decoder, shard seed, shard shots) is bit-exact
 * reusable wherever the same tuple recurs.
 */
std::size_t decodeFrameShard(Decoder &dec, const sim::FrameBatch &frames,
                             FrameShardScratch &scratch);

/**
 * Sample the DEM and decode each shot; failures are observable misses.
 *
 * Shots are sharded as in sim::sampleDemSharded: the result is
 * bit-identical for every thread count at a fixed master seed.
 */
LerResult measureDemLer(const sim::Dem &dem, Decoder &dec, std::size_t shots,
                        uint64_t seed, const LerOptions &opts);

/** Single-thread, no-early-stop convenience overload. */
LerResult measureDemLer(const sim::Dem &dem, Decoder &dec, std::size_t shots,
                        uint64_t seed);

/** Combined memory-Z + memory-X logical error rate. */
struct MemoryLer
{
    LerResult z; ///< Memory-Z experiment (decodes X-type faults).
    LerResult x; ///< Memory-X experiment (decodes Z-type faults).

    /** P(any logical error) = 1 - (1 - p_z)(1 - p_x). */
    double
    combined() const
    {
        return 1.0 - (1.0 - z.ler()) * (1.0 - x.ler());
    }
};

/**
 * Per-basis master seed of a memory experiment.
 *
 * measureMemoryLer and api::Engine both derive the Z/X sampling seeds
 * through this function, so their results are bit-identical at a fixed
 * request seed.
 */
uint64_t memoryBasisSeed(uint64_t seed, circuit::MemoryBasis basis);

/**
 * Measure the combined LER of a schedule over @p rounds rounds.
 *
 * Runs both memory bases with @p shots shots each; the decoder is built
 * through the registry from @p spec. Workloads that repeat (schedule, p)
 * points should prefer api::Engine, which caches the per-basis circuit,
 * DEM, and decoder this function rebuilds on every call.
 */
MemoryLer measureMemoryLer(const circuit::SmSchedule &schedule,
                           std::size_t rounds, const sim::NoiseModel &noise,
                           const DecoderSpec &spec, std::size_t shots,
                           uint64_t seed, const LerOptions &opts);

/** No-early-stop convenience overload. */
MemoryLer measureMemoryLer(const circuit::SmSchedule &schedule,
                           std::size_t rounds, const sim::NoiseModel &noise,
                           const DecoderSpec &spec, std::size_t shots,
                           uint64_t seed);

} // namespace prophunt::decoder

#endif // PROPHUNT_DECODER_LOGICAL_ERROR_H
