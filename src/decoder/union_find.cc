#include "decoder/union_find.h"

#include <algorithm>

namespace prophunt::decoder {

UnionFindDecoder::UnionFindDecoder(MatchingGraph graph)
    : graph_(std::move(graph))
{
    std::size_t n = graph_.numDetectors;
    parent_.resize(n);
    rankOf_.resize(n);
    parity_.resize(n);
    touchesBoundary_.resize(n);
    growth_.resize(graph_.edges.size());
    defect_.resize(n);
}

uint32_t
UnionFindDecoder::find(uint32_t v)
{
    while (parent_[v] != v) {
        parent_[v] = parent_[parent_[v]];
        v = parent_[v];
    }
    return v;
}

void
UnionFindDecoder::unite(uint32_t a, uint32_t b)
{
    a = find(a);
    b = find(b);
    if (a == b) {
        return;
    }
    if (rankOf_[a] < rankOf_[b]) {
        std::swap(a, b);
    }
    parent_[b] = a;
    parity_[a] ^= parity_[b];
    touchesBoundary_[a] |= touchesBoundary_[b];
    if (rankOf_[a] == rankOf_[b]) {
        ++rankOf_[a];
    }
}

uint64_t
UnionFindDecoder::decode(const std::vector<uint32_t> &flipped_detectors)
{
    if (flipped_detectors.empty()) {
        return 0;
    }
    std::size_t n = graph_.numDetectors;
    for (std::size_t v = 0; v < n; ++v) {
        parent_[v] = (uint32_t)v;
        rankOf_[v] = 0;
        parity_[v] = 0;
        touchesBoundary_[v] = 0;
        defect_[v] = 0;
    }
    std::fill(growth_.begin(), growth_.end(), 0);
    for (uint32_t d : flipped_detectors) {
        parity_[d] = 1;
        defect_[d] = 1;
    }

    auto active = [&](uint32_t v) {
        uint32_t r = find(v);
        return parity_[r] == 1 && !touchesBoundary_[r];
    };

    // Growth stage. Each round grows the frontier of every active cluster
    // by one half-edge; fully grown edges merge clusters.
    bool any_active = true;
    std::size_t guard = 0;
    while (any_active && guard++ < 4 * n + 16) {
        any_active = false;
        for (uint32_t v = 0; v < n; ++v) {
            if (active(v) && find(v) == v) {
                any_active = true;
            }
        }
        if (!any_active) {
            break;
        }
        std::vector<uint32_t> newly_grown;
        for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
            if (growth_[e] >= 2) {
                continue;
            }
            const MatchEdge &edge = graph_.edges[e];
            bool boundary = edge.v == MatchEdge::kBoundary;
            uint32_t ru = find(edge.u);
            uint32_t rv = boundary ? MatchEdge::kBoundary : find(edge.v);
            if (!boundary && ru == rv) {
                continue; // interior edge
            }
            int inc = 0;
            if (parity_[ru] == 1 && !touchesBoundary_[ru]) {
                ++inc;
            }
            if (!boundary && parity_[rv] == 1 && !touchesBoundary_[rv]) {
                ++inc;
            }
            if (inc == 0) {
                continue;
            }
            growth_[e] = (uint8_t)std::min(2, growth_[e] + inc);
            if (growth_[e] >= 2) {
                newly_grown.push_back((uint32_t)e);
            }
        }
        for (uint32_t e : newly_grown) {
            const MatchEdge &edge = graph_.edges[e];
            if (edge.v == MatchEdge::kBoundary) {
                touchesBoundary_[find(edge.u)] = 1;
            } else {
                unite(edge.u, edge.v);
            }
        }
    }

    // Peeling stage over the grown subgraph. Virtual copies of the boundary
    // per boundary edge keep the forest acyclic, and rooting trees at a
    // boundary copy lets leftover defects be absorbed there.
    std::size_t num_virtual = 0;
    std::vector<std::pair<uint32_t, uint32_t>> adj_count(n, {0, 0});
    (void)adj_count;
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> adj(n);
    std::vector<uint32_t> boundary_edges;
    for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
        if (growth_[e] < 2) {
            continue;
        }
        const MatchEdge &edge = graph_.edges[e];
        if (edge.v == MatchEdge::kBoundary) {
            boundary_edges.push_back((uint32_t)e);
            ++num_virtual;
        } else {
            adj[edge.u].push_back({edge.v, (uint32_t)e});
            adj[edge.v].push_back({edge.u, (uint32_t)e});
        }
    }

    uint64_t result = 0;
    std::vector<uint8_t> visited(n, 0);
    std::vector<uint32_t> bfs_order;
    std::vector<uint32_t> parent_node(n, MatchEdge::kBoundary);
    std::vector<uint32_t> parent_edge(n, MatchEdge::kBoundary);

    auto bfs_tree = [&](uint32_t root) {
        std::size_t start = bfs_order.size();
        visited[root] = 1;
        bfs_order.push_back(root);
        for (std::size_t i = start; i < bfs_order.size(); ++i) {
            uint32_t v = bfs_order[i];
            for (const auto &[w, e] : adj[v]) {
                if (!visited[w]) {
                    visited[w] = 1;
                    parent_node[w] = v;
                    parent_edge[w] = e;
                    bfs_order.push_back(w);
                }
            }
        }
        // Peel this tree leaves-first (reverse BFS order).
        for (std::size_t i = bfs_order.size(); i-- > start + 1;) {
            uint32_t v = bfs_order[i];
            if (defect_[v]) {
                result ^= graph_.edges[parent_edge[v]].obsMask;
                defect_[v] = 0;
                defect_[parent_node[v]] ^= 1;
            }
        }
        // Leftover defect at the root is handled by the caller (boundary).
    };

    // Trees containing boundary edges: root at the boundary-attached node
    // and discharge the root defect through the boundary edge.
    for (uint32_t e : boundary_edges) {
        uint32_t root = graph_.edges[e].u;
        if (visited[root]) {
            continue;
        }
        bfs_tree(root);
        if (defect_[root]) {
            result ^= graph_.edges[e].obsMask;
            defect_[root] = 0;
        }
    }
    // Remaining trees have even defect count; any root works.
    for (uint32_t v = 0; v < n; ++v) {
        if (!visited[v] && defect_[v]) {
            bfs_tree(v);
        }
    }
    return result;
}

} // namespace prophunt::decoder
