#include "decoder/logical_error.h"

#include "decoder/bp_osd.h"
#include "decoder/union_find.h"
#include "sim/dem_builder.h"
#include "sim/sampler.h"

namespace prophunt::decoder {

std::unique_ptr<Decoder>
makeDecoder(const sim::Dem &dem, const circuit::SmCircuit &circuit,
            DecoderKind kind)
{
    if (kind == DecoderKind::UnionFind) {
        return std::make_unique<UnionFindDecoder>(
            buildMatchingGraph(dem, circuit));
    }
    return std::make_unique<BpOsdDecoder>(dem);
}

LerResult
measureDemLer(const sim::Dem &dem, Decoder &dec, std::size_t shots,
              uint64_t seed)
{
    sim::SampleBatch batch = sim::sampleDem(dem, shots, seed);
    LerResult result;
    result.shots = shots;
    for (std::size_t s = 0; s < shots; ++s) {
        uint64_t predicted = dec.decode(batch.flippedDetectors(s));
        if (predicted != batch.obsMask(s)) {
            ++result.failures;
        }
    }
    return result;
}

MemoryLer
measureMemoryLer(const circuit::SmSchedule &schedule, std::size_t rounds,
                 const sim::NoiseModel &noise, DecoderKind kind,
                 std::size_t shots, uint64_t seed)
{
    MemoryLer out;
    for (auto basis : {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
        circuit::SmCircuit circ =
            circuit::buildMemoryCircuit(schedule, rounds, basis);
        sim::Dem dem = sim::buildDem(circ, noise);
        auto dec = makeDecoder(dem, circ, kind);
        LerResult r = measureDemLer(dem, *dec, shots,
                                    seed ^ (basis == circuit::MemoryBasis::X
                                                ? 0x9e3779b97f4a7c15ULL
                                                : 0));
        (basis == circuit::MemoryBasis::Z ? out.z : out.x) = r;
    }
    return out;
}

} // namespace prophunt::decoder
