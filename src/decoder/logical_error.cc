#include "decoder/logical_error.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "sim/dem_builder.h"
#include "sim/frame_sampler.h"
#include "sim/parallel_sampler.h"
#include "sim/sampler.h"

namespace prophunt::decoder {

const char *
decoderName(DecoderKind kind)
{
    return kind == DecoderKind::UnionFind ? "union_find" : "bp_osd";
}

std::unique_ptr<Decoder>
makeDecoder(const sim::Dem &dem, const circuit::SmCircuit &circuit,
            const DecoderSpec &spec)
{
    return Registry::make(spec, dem, circuit);
}

std::unique_ptr<Decoder>
makeDecoder(const sim::Dem &dem, const circuit::SmCircuit &circuit,
            DecoderKind kind)
{
    return makeDecoder(dem, circuit, DecoderSpec{decoderName(kind)});
}

namespace {

/** Per-worker storage reused across shards: packed frames, the transposed
 * row batch, and the prediction buffer. */
struct ShardWorkspace
{
    sim::FrameBatch frames;
    sim::SampleBatch rows;
    std::vector<uint64_t> predictions;
};

/**
 * Sample and decode one shard; returns its failure count.
 *
 * The shard is sampled word-packed, transposed once into row layout, and
 * decoded through decodeBatch — identical bits and predictions to the
 * scalar per-shot path, without its per-shot allocations.
 */
std::size_t
decodeShard(const sim::Dem &dem, Decoder &dec, std::size_t shard_shots,
            uint64_t shard_seed, ShardWorkspace &ws)
{
    sim::sampleDemFramesInto(dem, shard_shots, shard_seed, ws.frames);
    sim::transposeFrames(ws.frames, ws.rows);
    ws.predictions.resize(shard_shots);
    dec.decodeBatch(ws.rows, 0, shard_shots, ws.predictions.data());
    std::size_t failures = 0;
    for (std::size_t s = 0; s < shard_shots; ++s) {
        if (ws.predictions[s] != ws.rows.obsMask(s)) {
            ++failures;
        }
    }
    return failures;
}

} // namespace

LerResult
measureDemLer(const sim::Dem &dem, Decoder &dec, std::size_t shots,
              uint64_t seed, const LerOptions &opts)
{
    sim::ShardPlan plan{shots, std::max<std::size_t>(opts.shardShots, 1)};
    std::size_t n = plan.numShards();
    LerResult result;
    if (n == 0) {
        return result;
    }

    // Validate before spawning: a throw inside a pool worker terminates.
    sim::validateDemProbabilities(dem, "measureDemLer");

    // Per-worker decoders: worker 0 uses the caller's, the rest clones.
    std::size_t workers = sim::shardWorkers(plan, opts.threads);
    std::vector<std::unique_ptr<Decoder>> clones;
    clones.reserve(workers > 0 ? workers - 1 : 0);
    for (std::size_t w = 1; w < workers; ++w) {
        clones.push_back(dec.clone());
    }

    std::vector<ShardWorkspace> workspaces(workers);
    std::vector<std::size_t> shardFailures(n, 0);
    std::vector<uint8_t> shardDone(n, 0);
    std::atomic<bool> stop{false};
    std::mutex prefixMutex;
    std::size_t prefixEnd = 0;
    std::size_t prefixFailures = 0;

    sim::forEachShard(
        plan, opts.threads,
        [&](std::size_t shard, std::size_t worker) {
            Decoder &d = worker == 0 ? dec : *clones[worker - 1];
            std::size_t f = decodeShard(dem, d, plan.shotsOf(shard),
                                        sim::shardSeed(seed, shard),
                                        workspaces[worker]);
            std::lock_guard<std::mutex> lock(prefixMutex);
            shardFailures[shard] = f;
            shardDone[shard] = 1;
            // Advance the contiguous completed prefix; early stopping only
            // triggers off in-order results so the final accounting below
            // sees every shard up to the cut point.
            while (prefixEnd < n && shardDone[prefixEnd]) {
                prefixFailures += shardFailures[prefixEnd];
                ++prefixEnd;
            }
            if (opts.maxFailures != 0 && prefixFailures >= opts.maxFailures) {
                stop.store(true, std::memory_order_relaxed);
            }
        },
        opts.maxFailures != 0 ? &stop : nullptr);

    // Deterministic accounting: walk shards in index order and truncate at
    // the first shard whose cumulative failures reach the target. Shards a
    // fast worker finished beyond the cut are discarded, which makes
    // failures/shots independent of the thread count.
    for (std::size_t shard = 0; shard < n; ++shard) {
        if (!shardDone[shard]) {
            break;
        }
        result.shots += plan.shotsOf(shard);
        result.failures += shardFailures[shard];
        if (opts.maxFailures != 0 && result.failures >= opts.maxFailures) {
            result.earlyStopped = shard + 1 < n;
            break;
        }
    }
    return result;
}

LerResult
measureDemLer(const sim::Dem &dem, Decoder &dec, std::size_t shots,
              uint64_t seed)
{
    return measureDemLer(dem, dec, shots, seed, LerOptions{});
}

uint64_t
memoryBasisSeed(uint64_t seed, circuit::MemoryBasis basis)
{
    return seed ^
           (basis == circuit::MemoryBasis::X ? 0x9e3779b97f4a7c15ULL : 0);
}

MemoryLer
measureMemoryLer(const circuit::SmSchedule &schedule, std::size_t rounds,
                 const sim::NoiseModel &noise, const DecoderSpec &spec,
                 std::size_t shots, uint64_t seed, const LerOptions &opts)
{
    MemoryLer out;
    for (auto basis : {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
        circuit::SmCircuit circ =
            circuit::buildMemoryCircuit(schedule, rounds, basis);
        sim::Dem dem = sim::buildDem(circ, noise);
        auto dec = makeDecoder(dem, circ, spec);
        LerResult r = measureDemLer(dem, *dec, shots,
                                    memoryBasisSeed(seed, basis), opts);
        (basis == circuit::MemoryBasis::Z ? out.z : out.x) = r;
    }
    return out;
}

MemoryLer
measureMemoryLer(const circuit::SmSchedule &schedule, std::size_t rounds,
                 const sim::NoiseModel &noise, const DecoderSpec &spec,
                 std::size_t shots, uint64_t seed)
{
    return measureMemoryLer(schedule, rounds, noise, spec, shots, seed,
                            LerOptions{});
}

MemoryLer
measureMemoryLer(const circuit::SmSchedule &schedule, std::size_t rounds,
                 const sim::NoiseModel &noise, DecoderKind kind,
                 std::size_t shots, uint64_t seed, const LerOptions &opts)
{
    return measureMemoryLer(schedule, rounds, noise,
                            DecoderSpec{decoderName(kind)}, shots, seed,
                            opts);
}

MemoryLer
measureMemoryLer(const circuit::SmSchedule &schedule, std::size_t rounds,
                 const sim::NoiseModel &noise, DecoderKind kind,
                 std::size_t shots, uint64_t seed)
{
    return measureMemoryLer(schedule, rounds, noise,
                            DecoderSpec{decoderName(kind)}, shots, seed,
                            LerOptions{});
}

} // namespace prophunt::decoder
