#include "decoder/logical_error.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "sim/dem_builder.h"
#include "sim/frame_sampler.h"
#include "sim/parallel_sampler.h"
#include "sim/sampler.h"

namespace prophunt::decoder {

std::unique_ptr<Decoder>
makeDecoder(const sim::Dem &dem, const circuit::SmCircuit &circuit,
            const DecoderSpec &spec)
{
    return Registry::make(spec, dem, circuit);
}

std::size_t
decodeFrameShard(Decoder &dec, const sim::FrameBatch &frames,
                 FrameShardScratch &scratch)
{
    // The expected observable masks are read from the frame rows, so the
    // 64x64 transpose survives only inside the adapter for non-packed
    // decoders. Identical bits and predictions to the scalar per-shot
    // path.
    std::size_t shard_shots = frames.shots;
    scratch.predictions.resize(shard_shots);
    scratch.stats = PackedDecodeStats{};
    dec.decodePacked(frames.view(), scratch.predictions.data(),
                     &scratch.stats);
    frames.obsMasks(scratch.obsMasks);
    std::size_t failures = 0;
    for (std::size_t s = 0; s < shard_shots; ++s) {
        if (scratch.predictions[s] != scratch.obsMasks[s]) {
            ++failures;
        }
    }
    return failures;
}

LerResult
measureDemLer(const sim::Dem &dem, Decoder &dec, std::size_t shots,
              uint64_t seed, const LerOptions &opts)
{
    LerResult result;
    if (shots == 0) {
        // Well-formed empty run: no sampling, no decoder work, zeroed
        // counters (the engine relies on this for zero-shot requests).
        return result;
    }
    // A shard larger than the run is just one shard; clamping keeps the
    // shard seeds identical to an exact-fit plan.
    sim::ShardPlan plan{
        shots, std::min(std::max<std::size_t>(opts.shardShots, 1), shots)};
    std::size_t n = plan.numShards();

    // Per-worker decoders: worker 0 uses the caller's, the rest clones.
    std::size_t workers = sim::shardWorkers(plan, opts.threads);
    std::vector<std::unique_ptr<Decoder>> clones;
    clones.reserve(workers > 0 ? workers - 1 : 0);
    for (std::size_t w = 1; w < workers; ++w) {
        clones.push_back(dec.clone());
    }

    std::vector<FrameShardScratch> workspaces(workers);
    std::vector<std::size_t> shardFailures(n, 0);
    std::vector<PackedDecodeStats> shardStats(n);
    std::vector<uint8_t> shardDone(n, 0);
    std::atomic<bool> stop{false};
    std::mutex prefixMutex;
    std::size_t prefixEnd = 0;
    std::size_t prefixFailures = 0;

    // forEachFrameShard validates the DEM before spawning workers and
    // hands each shard to the decoder still word-packed.
    sim::forEachFrameShard(
        dem, plan, seed, opts.threads,
        [&](std::size_t shard, std::size_t worker,
            const sim::FrameBatch &frames) {
            Decoder &d = worker == 0 ? dec : *clones[worker - 1];
            FrameShardScratch &ws = workspaces[worker];
            std::size_t f = decodeFrameShard(d, frames, ws);
            std::lock_guard<std::mutex> lock(prefixMutex);
            shardFailures[shard] = f;
            shardStats[shard] = ws.stats;
            shardDone[shard] = 1;
            // Advance the contiguous completed prefix; early stopping only
            // triggers off in-order results so the final accounting below
            // sees every shard up to the cut point.
            while (prefixEnd < n && shardDone[prefixEnd]) {
                prefixFailures += shardFailures[prefixEnd];
                ++prefixEnd;
            }
            if (opts.maxFailures != 0 && prefixFailures >= opts.maxFailures) {
                stop.store(true, std::memory_order_relaxed);
            }
        },
        opts.maxFailures != 0 ? &stop : nullptr);

    // Deterministic accounting: walk shards in index order and truncate at
    // the first shard whose cumulative failures reach the target. Shards a
    // fast worker finished beyond the cut are discarded, which makes
    // failures/shots — and the packed-path telemetry — independent of the
    // thread count.
    for (std::size_t shard = 0; shard < n; ++shard) {
        if (!shardDone[shard]) {
            break;
        }
        result.shots += plan.shotsOf(shard);
        result.failures += shardFailures[shard];
        result.packed += shardStats[shard];
        if (opts.maxFailures != 0 && result.failures >= opts.maxFailures) {
            result.earlyStopped = shard + 1 < n;
            break;
        }
    }
    return result;
}

LerResult
measureDemLer(const sim::Dem &dem, Decoder &dec, std::size_t shots,
              uint64_t seed)
{
    return measureDemLer(dem, dec, shots, seed, LerOptions{});
}

uint64_t
memoryBasisSeed(uint64_t seed, circuit::MemoryBasis basis)
{
    return seed ^
           (basis == circuit::MemoryBasis::X ? 0x9e3779b97f4a7c15ULL : 0);
}

MemoryLer
measureMemoryLer(const circuit::SmSchedule &schedule, std::size_t rounds,
                 const sim::NoiseModel &noise, const DecoderSpec &spec,
                 std::size_t shots, uint64_t seed, const LerOptions &opts)
{
    MemoryLer out;
    for (auto basis : {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
        circuit::SmCircuit circ =
            circuit::buildMemoryCircuit(schedule, rounds, basis);
        sim::Dem dem = sim::buildDem(circ, noise);
        auto dec = makeDecoder(dem, circ, spec);
        LerResult r = measureDemLer(dem, *dec, shots,
                                    memoryBasisSeed(seed, basis), opts);
        (basis == circuit::MemoryBasis::Z ? out.z : out.x) = r;
    }
    return out;
}

MemoryLer
measureMemoryLer(const circuit::SmSchedule &schedule, std::size_t rounds,
                 const sim::NoiseModel &noise, const DecoderSpec &spec,
                 std::size_t shots, uint64_t seed)
{
    return measureMemoryLer(schedule, rounds, noise, spec, shots, seed,
                            LerOptions{});
}

} // namespace prophunt::decoder
