#include "sat/cardinality.h"

#include <algorithm>

namespace prophunt::sat {

std::vector<Lit>
encodeCounter(Solver &solver, const std::vector<Lit> &inputs,
              std::size_t max_count)
{
    std::size_t n = inputs.size();
    std::size_t k = std::min(max_count, n);
    if (k == 0 || n == 0) {
        return {};
    }
    // s[j] after processing prefix i: count(prefix) >= j+1.
    std::vector<Lit> prev(k);
    for (std::size_t j = 0; j < k; ++j) {
        prev[j] = mkLit(solver.newVar());
    }
    // Prefix of size 1.
    solver.addClause({negate(inputs[0]), prev[0]});
    for (std::size_t i = 1; i < n; ++i) {
        std::vector<Lit> cur(k);
        for (std::size_t j = 0; j < k; ++j) {
            cur[j] = mkLit(solver.newVar());
        }
        // Count carries over: s_{i-1,j} -> s_{i,j}.
        for (std::size_t j = 0; j < k; ++j) {
            solver.addClause({negate(prev[j]), cur[j]});
        }
        // This input increments: x_i -> s_{i,0}.
        solver.addClause({negate(inputs[i]), cur[0]});
        // x_i and s_{i-1,j-1} -> s_{i,j}.
        for (std::size_t j = 1; j < k; ++j) {
            solver.addClause(
                {negate(inputs[i]), negate(prev[j - 1]), cur[j]});
        }
        prev = std::move(cur);
    }
    return prev;
}

} // namespace prophunt::sat
