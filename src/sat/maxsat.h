/**
 * @file
 * MaxSAT via incremental cardinality-bounded linear search.
 *
 * Soft constraints are unit literals we would like true; the optimum is the
 * minimum number of violated softs subject to the hard clauses. PropHunt's
 * min-weight logical errors have small optima (the effective distance), so
 * an ascending linear search — SAT-solve with "at most k violations" for
 * k = 0, 1, 2, ... — converges in a handful of incremental calls.
 */
#ifndef PROPHUNT_SAT_MAXSAT_H
#define PROPHUNT_SAT_MAXSAT_H

#include <cstddef>
#include <vector>

#include "sat/solver.h"

namespace prophunt::sat {

/** Model-size statistics, reported in the paper's Table 2 format. */
struct MaxSatStats
{
    std::size_t variables = 0;
    std::size_t hardClauses = 0;
    std::size_t softClauses = 0;
    double wallSeconds = 0.0;
    bool timedOut = false;
};

/** Outcome of a MaxSAT solve. */
struct MaxSatResult
{
    bool satisfiable = false;
    /** Minimum number of violated soft constraints. */
    std::size_t optimum = 0;
    /** Model values per variable (valid if satisfiable). */
    std::vector<bool> model;
    MaxSatStats stats;
};

/** Incremental MaxSAT solver built on the CDCL core. */
class MaxSatSolver
{
  public:
    Var newVar() { return solver_.newVar(); }

    /** Add a hard clause. */
    void addHard(std::vector<Lit> lits);

    /** Add a soft unit literal (prefer @p l true; violation costs 1). */
    void addSoft(Lit l) { softs_.push_back(l); }

    std::size_t numSoft() const { return softs_.size(); }

    /**
     * Minimize soft violations.
     *
     * @param max_cost Upper bound on the searched cost (cardinality width).
     * @param timeout_seconds Wall-clock budget across all SAT calls.
     */
    MaxSatResult solve(std::size_t max_cost, double timeout_seconds);

  private:
    Solver solver_;
    std::vector<Lit> softs_;
    std::size_t hardClauses_ = 0;
};

} // namespace prophunt::sat

#endif // PROPHUNT_SAT_MAXSAT_H
