#include "sat/xor_encoder.h"

namespace prophunt::sat {

Lit
encodeXorGate(Solver &solver, Lit a, Lit b)
{
    Lit c = mkLit(solver.newVar());
    solver.addClause({negate(a), negate(b), negate(c)});
    solver.addClause({a, b, negate(c)});
    solver.addClause({a, negate(b), c});
    solver.addClause({negate(a), b, c});
    return c;
}

Lit
encodeXorTree(Solver &solver, std::vector<Lit> inputs)
{
    if (inputs.empty()) {
        return constantFalse(solver);
    }
    // Repeatedly pair adjacent literals; each level halves the count.
    while (inputs.size() > 1) {
        std::vector<Lit> next;
        for (std::size_t i = 0; i + 1 < inputs.size(); i += 2) {
            next.push_back(encodeXorGate(solver, inputs[i], inputs[i + 1]));
        }
        if (inputs.size() % 2 == 1) {
            next.push_back(inputs.back());
        }
        inputs = std::move(next);
    }
    return inputs[0];
}

Lit
constantFalse(Solver &solver)
{
    Lit l = mkLit(solver.newVar());
    solver.addClause({negate(l)});
    return l;
}

} // namespace prophunt::sat
