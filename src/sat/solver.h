/**
 * @file
 * A compact CDCL SAT solver.
 *
 * Standard architecture: two-watched-literal propagation, first-UIP
 * conflict analysis with clause learning, EVSIDS branching, phase saving,
 * Luby restarts, and assumption-based incremental solving. It replaces the
 * paper's Z3 + Loandra stack (DESIGN.md substitution 4) and is sized for
 * PropHunt's subgraph models (hundreds of variables) while still being able
 * to attempt — and time out on — the global formulations of Table 2.
 */
#ifndef PROPHUNT_SAT_SOLVER_H
#define PROPHUNT_SAT_SOLVER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace prophunt::sat {

/** Variables are non-negative integers; literals pack variable and sign. */
using Var = int32_t;
using Lit = int32_t;

inline Lit
mkLit(Var v, bool negated = false)
{
    return v * 2 + (negated ? 1 : 0);
}

inline Lit
negate(Lit l)
{
    return l ^ 1;
}

inline Var
varOf(Lit l)
{
    return l >> 1;
}

inline bool
isNegated(Lit l)
{
    return l & 1;
}

/** Result of a solve call. */
enum class SolveResult { Sat, Unsat, Unknown };

/** CDCL solver. */
class Solver
{
  public:
    Solver();

    /** Allocate a fresh variable and return it. */
    Var newVar();

    std::size_t numVars() const { return (std::size_t)numVars_; }
    std::size_t numClauses() const { return numClauses_; }

    /**
     * Add a clause. Returns false if the formula became trivially
     * unsatisfiable (empty clause at level 0).
     */
    bool addClause(std::vector<Lit> lits);

    /**
     * Solve under assumptions.
     *
     * @param assumptions Literals forced true for this call only.
     * @param timeout_seconds Wall-clock budget; Unknown on expiry.
     */
    SolveResult solve(const std::vector<Lit> &assumptions,
                      double timeout_seconds = 1e18);

    /** Model value of a variable (valid after Sat). */
    bool modelValue(Var v) const { return model_[v]; }

    /** Number of conflicts encountered so far (diagnostics). */
    uint64_t conflicts() const { return conflicts_; }

  private:
    // Clause storage: clauses live in an arena; a clause reference is an
    // offset. Layout: [size][lit0][lit1]...[activity is not stored; learned
    // clause deletion is skipped at this scale].
    using Cref = uint32_t;
    static constexpr Cref kNoReason = 0xffffffffu;

    int litValue(Lit l) const;
    void assign(Lit l, Cref reason);
    Cref propagate();
    void analyze(Cref conflict, std::vector<Lit> &learned, int &bt_level);
    void backtrack(int level);
    void bumpVar(Var v);
    void decayActivities();
    Var pickBranchVar();
    bool enqueueAssumptions(const std::vector<Lit> &assumptions);

    int32_t numVars_ = 0;
    std::size_t numClauses_ = 0;

    std::vector<int32_t> arena_;
    std::vector<Cref> clauses_;

    std::vector<int8_t> assigns_;      ///< Per var: 0 unset, 1 true, -1 false.
    std::vector<int32_t> level_;       ///< Decision level per var.
    std::vector<Cref> reason_;         ///< Implying clause per var.
    std::vector<Lit> trail_;
    std::vector<std::size_t> trailLim_; ///< Trail size at each level.
    std::size_t qhead_ = 0;

    std::vector<std::vector<Cref>> watches_; ///< Indexed by literal.

    std::vector<double> activity_;
    double varInc_ = 1.0;
    std::vector<int8_t> phase_;

    std::vector<int8_t> seen_; ///< Scratch for conflict analysis.

    uint64_t conflicts_ = 0;
    bool unsat_ = false;
    std::vector<bool> model_;
};

} // namespace prophunt::sat

#endif // PROPHUNT_SAT_SOLVER_H
