#include "sat/maxsat.h"

#include <chrono>

#include "sat/cardinality.h"

namespace prophunt::sat {

void
MaxSatSolver::addHard(std::vector<Lit> lits)
{
    ++hardClauses_;
    solver_.addClause(std::move(lits));
}

MaxSatResult
MaxSatSolver::solve(std::size_t max_cost, double timeout_seconds)
{
    auto start = std::chrono::steady_clock::now();
    auto elapsed = [&]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    MaxSatResult result;
    result.stats.softClauses = softs_.size();

    // Violation indicators: v_i true iff soft_i violated.
    std::vector<Lit> violations;
    violations.reserve(softs_.size());
    for (Lit s : softs_) {
        violations.push_back(negate(s));
    }
    std::vector<Lit> outputs =
        encodeCounter(solver_, violations, max_cost);

    result.stats.variables = solver_.numVars();
    result.stats.hardClauses = solver_.numClauses();

    for (std::size_t k = 0; k <= max_cost; ++k) {
        double remaining = timeout_seconds - elapsed();
        if (remaining <= 0) {
            result.stats.timedOut = true;
            break;
        }
        std::vector<Lit> assumptions;
        if (k < outputs.size()) {
            assumptions.push_back(negate(outputs[k]));
        }
        SolveResult r = solver_.solve(assumptions, remaining);
        if (r == SolveResult::Sat) {
            result.satisfiable = true;
            result.model.resize(solver_.numVars());
            for (std::size_t v = 0; v < solver_.numVars(); ++v) {
                result.model[v] = solver_.modelValue((Var)v);
            }
            if (k < outputs.size()) {
                result.optimum = k;
            } else {
                // Unbounded call: report the model's actual violation count.
                result.optimum = 0;
                for (Lit s : softs_) {
                    bool val = solver_.modelValue(varOf(s));
                    if (isNegated(s) ? val : !val) {
                        ++result.optimum;
                    }
                }
            }
            break;
        }
        if (r == SolveResult::Unknown) {
            result.stats.timedOut = true;
            break;
        }
        if (k >= outputs.size()) {
            // Even unbounded cost is unsatisfiable: hard clauses conflict.
            break;
        }
    }
    result.stats.wallSeconds = elapsed();
    return result;
}

} // namespace prophunt::sat
