/**
 * @file
 * XOR-to-CNF encoding via Tseitin transformation.
 *
 * Naively expanding a multivariate XOR clause into CNF is exponential in the
 * number of inputs (paper Section 5.2). Instead we introduce auxiliary
 * variables in a balanced binary tree of 2-input XOR gates, each costing
 * four clauses, exactly as PropHunt's MaxSAT formulation prescribes.
 */
#ifndef PROPHUNT_SAT_XOR_ENCODER_H
#define PROPHUNT_SAT_XOR_ENCODER_H

#include <vector>

#include "sat/solver.h"

namespace prophunt::sat {

/**
 * Encode c = a XOR b with a fresh output variable; returns the output
 * literal. Adds the four Tseitin clauses.
 */
Lit encodeXorGate(Solver &solver, Lit a, Lit b);

/**
 * Encode the XOR of @p inputs as a balanced tree of 2-input gates.
 *
 * Returns a literal equivalent to the parity of the inputs. For a single
 * input, the input itself is returned; for an empty list a constant-false
 * literal is created.
 */
Lit encodeXorTree(Solver &solver, std::vector<Lit> inputs);

/** A fresh literal constrained to be false (unit clause). */
Lit constantFalse(Solver &solver);

} // namespace prophunt::sat

#endif // PROPHUNT_SAT_XOR_ENCODER_H
