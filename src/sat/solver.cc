#include "sat/solver.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace prophunt::sat {

namespace {

/** Luby restart sequence (Minisat's formulation). */
uint64_t
luby(uint64_t i)
{
    // Find the finite subsequence containing index i and its position.
    uint64_t size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) / 2;
        --seq;
        i = i % size;
    }
    return uint64_t{1} << seq;
}

} // namespace

Solver::Solver() = default;

Var
Solver::newVar()
{
    Var v = numVars_++;
    assigns_.push_back(0);
    level_.push_back(0);
    reason_.push_back(kNoReason);
    activity_.push_back(0.0);
    phase_.push_back(-1);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    return v;
}

int
Solver::litValue(Lit l) const
{
    int8_t a = assigns_[varOf(l)];
    if (a == 0) {
        return 0;
    }
    return isNegated(l) ? -a : a;
}

bool
Solver::addClause(std::vector<Lit> lits)
{
    if (unsat_) {
        return false;
    }
    // Normalize: drop duplicate/false literals, detect tautology and
    // satisfied clauses (all additions happen at level 0).
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    for (std::size_t i = 0; i < lits.size(); ++i) {
        if (i > 0 && lits[i] == lits[i - 1]) {
            continue;
        }
        if (i + 1 < lits.size() && lits[i + 1] == negate(lits[i])) {
            return true; // tautology
        }
        int v = litValue(lits[i]);
        if (v == 1) {
            return true; // already satisfied at level 0
        }
        if (v == -1) {
            continue; // falsified at level 0: drop
        }
        out.push_back(lits[i]);
    }
    ++numClauses_;
    if (out.empty()) {
        unsat_ = true;
        return false;
    }
    if (out.size() == 1) {
        assign(out[0], kNoReason);
        if (propagate() != kNoReason) {
            unsat_ = true;
            return false;
        }
        return true;
    }
    Cref cref = (Cref)arena_.size();
    arena_.push_back((int32_t)out.size());
    for (Lit l : out) {
        arena_.push_back(l);
    }
    clauses_.push_back(cref);
    watches_[out[0]].push_back(cref);
    watches_[out[1]].push_back(cref);
    return true;
}

void
Solver::assign(Lit l, Cref reason)
{
    Var v = varOf(l);
    assigns_[v] = isNegated(l) ? -1 : 1;
    level_[v] = (int32_t)trailLim_.size();
    reason_[v] = reason;
    phase_[v] = assigns_[v];
    trail_.push_back(l);
}

Solver::Cref
Solver::propagate()
{
    while (qhead_ < trail_.size()) {
        Lit p = trail_[qhead_++];
        Lit np = negate(p);
        // Clauses watching np must be repaired.
        std::vector<Cref> &ws = watches_[np];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < ws.size(); ++i) {
            Cref c = ws[i];
            int32_t size = arena_[c];
            int32_t *lits = &arena_[c + 1];
            // Ensure the false literal is at slot 1.
            if (lits[0] == np) {
                std::swap(lits[0], lits[1]);
            }
            if (litValue(lits[0]) == 1) {
                ws[keep++] = c; // satisfied by the other watch
                continue;
            }
            // Find a replacement watch.
            bool moved = false;
            for (int32_t k = 2; k < size; ++k) {
                if (litValue(lits[k]) != -1) {
                    std::swap(lits[1], lits[k]);
                    watches_[lits[1]].push_back(c);
                    moved = true;
                    break;
                }
            }
            if (moved) {
                continue; // watch moved away
            }
            ws[keep++] = c;
            if (litValue(lits[0]) == -1) {
                // Conflict: restore remaining watches and bail.
                for (std::size_t j = i + 1; j < ws.size(); ++j) {
                    ws[keep++] = ws[j];
                }
                ws.resize(keep);
                qhead_ = trail_.size();
                return c;
            }
            assign(lits[0], c);
        }
        ws.resize(keep);
    }
    return kNoReason;
}

void
Solver::bumpVar(Var v)
{
    activity_[v] += varInc_;
    if (activity_[v] > 1e100) {
        for (double &a : activity_) {
            a *= 1e-100;
        }
        varInc_ *= 1e-100;
    }
}

void
Solver::decayActivities()
{
    varInc_ /= 0.95;
}

void
Solver::analyze(Cref conflict, std::vector<Lit> &learned, int &bt_level)
{
    learned.clear();
    learned.push_back(0); // placeholder for the asserting literal
    int counter = 0;
    Lit p = -1;
    Cref reason = conflict;
    std::size_t index = trail_.size();
    int current_level = (int)trailLim_.size();

    do {
        int32_t size = arena_[reason];
        int32_t *lits = &arena_[reason + 1];
        for (int32_t k = 0; k < size; ++k) {
            Lit q = lits[k];
            // Skip the literal being resolved on (the reason clause holds
            // the assigned literal; p is its negation).
            if (p != -1 && varOf(q) == varOf(p)) {
                continue;
            }
            Var v = varOf(q);
            if (!seen_[v] && level_[v] > 0) {
                seen_[v] = 1;
                bumpVar(v);
                if (level_[v] >= current_level) {
                    ++counter;
                } else {
                    learned.push_back(q);
                }
            }
        }
        // Next literal to resolve on: most recent seen var on the trail.
        while (!seen_[varOf(trail_[index - 1])]) {
            --index;
        }
        --index;
        p = negate(trail_[index]);
        Var pv = varOf(p);
        seen_[pv] = 0;
        --counter;
        reason = reason_[pv];
    } while (counter > 0);
    learned[0] = p;

    // Backtrack level: second-highest level in the learned clause.
    bt_level = 0;
    for (std::size_t i = 1; i < learned.size(); ++i) {
        bt_level = std::max(bt_level, (int)level_[varOf(learned[i])]);
    }
    for (Lit l : learned) {
        seen_[varOf(l)] = 0;
    }
}

void
Solver::backtrack(int target)
{
    if ((int)trailLim_.size() <= target) {
        return;
    }
    std::size_t lim = trailLim_[target];
    for (std::size_t i = trail_.size(); i-- > lim;) {
        Var v = varOf(trail_[i]);
        assigns_[v] = 0;
        reason_[v] = kNoReason;
    }
    trail_.resize(lim);
    trailLim_.resize(target);
    qhead_ = lim;
}

Var
Solver::pickBranchVar()
{
    Var best = -1;
    double best_act = -1.0;
    for (Var v = 0; v < numVars_; ++v) {
        if (assigns_[v] == 0 && activity_[v] > best_act) {
            best_act = activity_[v];
            best = v;
        }
    }
    return best;
}

bool
Solver::enqueueAssumptions(const std::vector<Lit> &assumptions)
{
    for (Lit a : assumptions) {
        int v = litValue(a);
        if (v == -1) {
            return false;
        }
        if (v == 0) {
            trailLim_.push_back(trail_.size());
            assign(a, kNoReason);
            if (propagate() != kNoReason) {
                return false;
            }
        }
    }
    return true;
}

SolveResult
Solver::solve(const std::vector<Lit> &assumptions, double timeout_seconds)
{
    if (unsat_) {
        return SolveResult::Unsat;
    }
    auto start = std::chrono::steady_clock::now();
    auto expired = [&]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
                   .count() > timeout_seconds;
    };

    backtrack(0);
    // Re-propagate the level-0 trail from scratch: a previous Unsat exit
    // may have abandoned the propagation queue mid-way.
    qhead_ = 0;
    if (propagate() != kNoReason) {
        unsat_ = true;
        return SolveResult::Unsat;
    }
    if (!enqueueAssumptions(assumptions)) {
        backtrack(0);
        return SolveResult::Unsat;
    }
    int assumption_levels = (int)trailLim_.size();

    uint64_t restart_count = 0;
    uint64_t conflict_budget = 256 * luby(restart_count);
    uint64_t conflicts_this_restart = 0;
    std::vector<Lit> learned;

    while (true) {
        Cref conflict = propagate();
        if (conflict != kNoReason) {
            ++conflicts_;
            ++conflicts_this_restart;
            if ((int)trailLim_.size() <= assumption_levels) {
                if (trailLim_.empty()) {
                    unsat_ = true; // conflict with no decisions: formula UNSAT
                }
                backtrack(0);
                return SolveResult::Unsat;
            }
            int bt;
            analyze(conflict, learned, bt);
            bt = std::max(bt, assumption_levels);
            backtrack(bt);
            if (learned.size() == 1 && bt == 0) {
                assign(learned[0], kNoReason);
            } else {
                Cref cref = (Cref)arena_.size();
                arena_.push_back((int32_t)learned.size());
                for (Lit l : learned) {
                    arena_.push_back(l);
                }
                clauses_.push_back(cref);
                if (learned.size() >= 2) {
                    // Watch the asserting literal and a highest-level one.
                    std::size_t wi = 1;
                    for (std::size_t i = 2; i < learned.size(); ++i) {
                        if (level_[varOf(learned[i])] >
                            level_[varOf(learned[wi])]) {
                            wi = i;
                        }
                    }
                    std::swap(arena_[cref + 2], arena_[cref + 1 + wi]);
                    watches_[arena_[cref + 1]].push_back(cref);
                    watches_[arena_[cref + 2]].push_back(cref);
                    assign(learned[0], cref);
                } else {
                    assign(learned[0], cref);
                }
            }
            decayActivities();
            if (conflicts_this_restart >= conflict_budget) {
                if (expired()) {
                    backtrack(0);
                    return SolveResult::Unknown;
                }
                ++restart_count;
                conflict_budget = 256 * luby(restart_count);
                conflicts_this_restart = 0;
                backtrack(assumption_levels);
            }
        } else {
            if ((conflicts_ & 1023) == 0 && expired()) {
                backtrack(0);
                return SolveResult::Unknown;
            }
            Var next = pickBranchVar();
            if (next == -1) {
                // Model found.
                model_.assign((std::size_t)numVars_, false);
                for (Var v = 0; v < numVars_; ++v) {
                    model_[v] = assigns_[v] == 1;
                }
                backtrack(0);
                return SolveResult::Sat;
            }
            trailLim_.push_back(trail_.size());
            assign(mkLit(next, phase_[next] != 1), kNoReason);
        }
    }
}

} // namespace prophunt::sat
