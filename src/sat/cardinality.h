/**
 * @file
 * Sequential-counter cardinality encoding.
 *
 * Encodes the unary count of a set of literals: output j is implied true
 * whenever at least j+1 inputs are true. Bounding the count to <= k is then
 * a single assumption (NOT output_k), which lets the MaxSAT linear search
 * reuse one incremental solver across all bounds.
 */
#ifndef PROPHUNT_SAT_CARDINALITY_H
#define PROPHUNT_SAT_CARDINALITY_H

#include <vector>

#include "sat/solver.h"

namespace prophunt::sat {

/**
 * Encode a sequential counter over @p inputs counting up to @p max_count.
 *
 * @return Output literals o_0 .. o_{max_count-1}; o_j true if the number of
 * true inputs is at least j+1 (one-sided: only the >= direction is
 * enforced, which suffices for at-most-k bounds via assumptions).
 */
std::vector<Lit> encodeCounter(Solver &solver,
                               const std::vector<Lit> &inputs,
                               std::size_t max_count);

} // namespace prophunt::sat

#endif // PROPHUNT_SAT_CARDINALITY_H
