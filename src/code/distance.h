/**
 * @file
 * Randomized code-distance estimation (QDistRnd-style).
 *
 * The X distance of a CSS code is the minimum weight of a vector in
 * ker(H_Z) that is not in rowspace(H_X). We estimate it with the standard
 * information-set technique: repeatedly row-reduce a spanning set of
 * ker(H_Z) under a random column permutation; the reduced rows are
 * codewords whose weights upper-bound the distance, polished greedily by
 * stabilizer additions. For the small distances of the benchmark suite
 * (d <= 9) this converges to the true distance with high probability.
 */
#ifndef PROPHUNT_CODE_DISTANCE_H
#define PROPHUNT_CODE_DISTANCE_H

#include <cstddef>
#include <cstdint>

#include "code/css_code.h"

namespace prophunt::code {

/** Estimate the minimum weight of an X logical operator. */
std::size_t estimateXDistance(const CssCode &code, std::size_t trials,
                              uint64_t seed);

/** Estimate the minimum weight of a Z logical operator. */
std::size_t estimateZDistance(const CssCode &code, std::size_t trials,
                              uint64_t seed);

/** Estimate the code distance: min of the X and Z distances. */
std::size_t estimateDistance(const CssCode &code, std::size_t trials,
                             uint64_t seed);

} // namespace prophunt::code

#endif // PROPHUNT_CODE_DISTANCE_H
