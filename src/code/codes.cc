#include "code/codes.h"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "code/distance.h"
#include "code/lifted_product.h"
#include "code/surface.h"
#include "code/two_block.h"

namespace prophunt::code {

CssCode
benchmarkSurface(std::size_t d)
{
    return SurfaceCode(d).code();
}

namespace {

/** Build a protograph from per-entry term lists (empty list = zero). */
Protograph
makeProtograph(const Group &g, std::size_t rows, std::size_t cols,
               const std::vector<std::vector<std::size_t>> &terms)
{
    Protograph p(g, rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            p.at(r, c) = AlgebraElement::fromTerms(g, terms[r * cols + c]);
        }
    }
    return p;
}

} // namespace

CssCode
benchmarkLp39()
{
    // LP over C3 of two 3-bit repetition-code protographs (2x3 each), the
    // shape of the protograph in Eq. 8 of Roffe et al. Entries selected by
    // searchLiftedProduct (seed 9) to realize exactly [[39,3,3]].
    Group g = Group::cyclic(3);
    Protograph a = makeProtograph(
        g, 2, 3, {{1}, {1}, {}, {}, {2}, {2}});
    Protograph b = makeProtograph(
        g, 2, 3, {{0}, {0}, {}, {}, {2}, {0}});
    return liftedProduct(g, a, b, "[[39,3,3]] LP");
}

CssCode
benchmarkRqt60()
{
    // Two-block code over C30 with weight-2 elements, matching the paper's
    // [[60,2,6]] RQT code built from a length-2 repetition code and C15
    // (C30 = C2 x C15). Terms selected by searchTwoBlock (seed 11).
    Group g = Group::cyclic(30);
    AlgebraElement a = AlgebraElement::fromTerms(g, {0, 4});
    AlgebraElement b = AlgebraElement::fromTerms(g, {0, 23});
    return twoBlock(g, a, b, "[[60,2,6]] RQT-2B");
}

CssCode
benchmarkRqt54()
{
    // Two-block code over C27 with weight-3 elements (weight-6 stabilizers
    // like the paper's [[54,11,4]] RQT code). Terms from searchTwoBlock
    // (seed 13); the realized parameters are [[54,12,4]] — the closest the
    // two-block family gets to the paper's k = 11 (cyclic two-block codes
    // have even k).
    Group g = Group::cyclic(27);
    AlgebraElement a = AlgebraElement::fromTerms(g, {0, 21, 15});
    AlgebraElement b = AlgebraElement::fromTerms(g, {0, 24, 21});
    return twoBlock(g, a, b, "[[54,12,4]] RQT-2B");
}

CssCode
benchmarkRqt108()
{
    // Two-block code over the dihedral group of order 54 with weight-3
    // elements (weight-6 stabilizers, like the paper's [[108,18,4]] RQT
    // code built on a dihedral group). Terms from a seeded search; the
    // realized parameters are [[108,12,4]] (distance matches, k is the
    // closest found with d = 4).
    Group g = Group::dihedral(27);
    AlgebraElement a = AlgebraElement::fromTerms(g, {0, 32, 44});
    AlgebraElement b = AlgebraElement::fromTerms(g, {0, 24, 12});
    return twoBlock(g, a, b, "[[108,12,4]] RQT-2B");
}

std::vector<CssCode>
allBenchmarkCodes()
{
    std::vector<CssCode> codes;
    codes.push_back(benchmarkSurface(3));
    codes.push_back(benchmarkSurface(5));
    codes.push_back(benchmarkSurface(7));
    codes.push_back(benchmarkSurface(9));
    codes.push_back(benchmarkLp39());
    codes.push_back(benchmarkRqt60());
    codes.push_back(benchmarkRqt54());
    codes.push_back(benchmarkRqt108());
    return codes;
}

namespace {

/** Score candidates: prefer exact k, then larger d, then exact d. */
long
score(std::size_t k, std::size_t d, std::size_t target_k,
      std::size_t target_d)
{
    long kk = (long)k - (long)target_k;
    long dd = (long)d - (long)target_d;
    long s = 0;
    s -= 100 * std::abs(kk);
    s -= 40 * std::abs(dd);
    if (k == 0 || d <= 1) {
        s -= 100000;
    }
    return s;
}

} // namespace

SearchResult
searchTwoBlock(const Group &g, std::size_t weight, std::size_t target_k,
               std::size_t target_d, std::size_t attempts, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, g.order() - 1);
    SearchResult best;
    long best_score = -1000000000;
    for (std::size_t t = 0; t < attempts; ++t) {
        std::vector<std::size_t> ta{0}, tb{0};
        while (ta.size() < weight) {
            std::size_t e = pick(rng);
            if (std::find(ta.begin(), ta.end(), e) == ta.end()) {
                ta.push_back(e);
            }
        }
        while (tb.size() < weight) {
            std::size_t e = pick(rng);
            if (std::find(tb.begin(), tb.end(), e) == tb.end()) {
                tb.push_back(e);
            }
        }
        AlgebraElement a = AlgebraElement::fromTerms(g, ta);
        AlgebraElement b = AlgebraElement::fromTerms(g, tb);
        CssCode code = twoBlock(g, a, b, "candidate");
        if (code.k() == 0) {
            continue;
        }
        std::size_t d = estimateDistance(code, 30, seed ^ (t * 7919));
        long s = score(code.k(), d, target_k, target_d);
        if (s > best_score) {
            best_score = s;
            best.k = code.k();
            best.d = d;
            best.termsA = {ta};
            best.termsB = {tb};
        }
        if (code.k() == target_k && d == target_d) {
            break;
        }
    }
    return best;
}

SearchResult
searchLiftedProduct(const Group &g, std::size_t ma, std::size_t na,
                    const std::vector<int> &maskA, std::size_t mb,
                    std::size_t nb, const std::vector<int> &maskB,
                    std::size_t target_k, std::size_t target_d,
                    std::size_t attempts, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, g.order() - 1);
    SearchResult best;
    long best_score = -1000000000;
    for (std::size_t t = 0; t < attempts; ++t) {
        std::vector<std::vector<std::size_t>> ta(ma * na), tb(mb * nb);
        for (std::size_t i = 0; i < ma * na; ++i) {
            if (maskA[i]) {
                ta[i] = {pick(rng)};
            }
        }
        for (std::size_t i = 0; i < mb * nb; ++i) {
            if (maskB[i]) {
                tb[i] = {pick(rng)};
            }
        }
        Protograph a = makeProtograph(g, ma, na, ta);
        Protograph b = makeProtograph(g, mb, nb, tb);
        CssCode code = liftedProduct(g, a, b, "candidate");
        if (code.k() == 0) {
            continue;
        }
        std::size_t d = estimateDistance(code, 30, seed ^ (t * 104729));
        long s = score(code.k(), d, target_k, target_d);
        if (s > best_score) {
            best_score = s;
            best.k = code.k();
            best.d = d;
            best.termsA = ta;
            best.termsB = tb;
        }
        if (code.k() == target_k && d == target_d) {
            break;
        }
    }
    return best;
}

} // namespace prophunt::code
