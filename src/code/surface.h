/**
 * @file
 * Rotated surface codes with retained 2D geometry.
 *
 * The rotated distance-d surface code has d*d data qubits on a grid and
 * d*d - 1 stabilizers on the faces of the grid. Geometry (which corner of a
 * face each data qubit occupies) is retained because the hand-designed
 * 'N-Z' schedule and its deliberately poor variants are defined in terms of
 * compass positions (NW/NE/SW/SE).
 */
#ifndef PROPHUNT_CODE_SURFACE_H
#define PROPHUNT_CODE_SURFACE_H

#include <array>
#include <cstddef>
#include <optional>
#include <vector>

#include "code/css_code.h"

namespace prophunt::code {

/** Compass corner of a face, used to describe CNOT orders geometrically. */
enum class Corner { NW = 0, NE = 1, SW = 2, SE = 3 };

/** One stabilizer face of the rotated surface code. */
struct SurfaceFace
{
    /** True for an X-type face, false for Z-type. */
    bool isX = false;
    /** Face coordinate (i, j) on the dual grid, 0 <= i, j <= d. */
    std::size_t i = 0, j = 0;
    /**
     * Data qubit at each corner, or nullopt for corners clipped off by the
     * code boundary (weight-2 boundary faces).
     */
    std::array<std::optional<std::size_t>, 4> corner;
};

/**
 * A rotated surface code of odd distance d.
 *
 * Data qubit (r, c) has index r*d + c. Faces are checkerboard-colored:
 * X-type faces terminate on the top/bottom boundaries and Z-type faces on
 * the left/right boundaries, matching the layout in the paper's Figure 2.
 */
class SurfaceCode
{
  public:
    /** Build the distance-@p d rotated surface code; d must be odd, >= 3. */
    explicit SurfaceCode(std::size_t d);

    std::size_t distance() const { return d_; }

    /** The underlying CSS code ([[d^2, 1, d]]). */
    const CssCode &code() const { return code_; }

    /**
     * Face geometry for the check with the given global check index
     * (X checks first, then Z checks, matching CssCode indexing).
     */
    const SurfaceFace &face(std::size_t check) const { return faces_[check]; }

    std::size_t numFaces() const { return faces_.size(); }

    /** Index of the data qubit at grid position (r, c). */
    std::size_t dataIndex(std::size_t r, std::size_t c) const { return r * d_ + c; }

  private:
    std::size_t d_;
    std::vector<SurfaceFace> faces_;
    CssCode code_;
};

} // namespace prophunt::code

#endif // PROPHUNT_CODE_SURFACE_H
