/**
 * @file
 * The benchmark QEC code suite of the paper's Table 1, plus the seeded
 * random searches used to select concrete lifted-product / two-block
 * instances (see DESIGN.md substitution 5 for why the RQT codes are
 * replaced by group-algebra constructions with matching shape).
 */
#ifndef PROPHUNT_CODE_CODES_H
#define PROPHUNT_CODE_CODES_H

#include <cstdint>
#include <vector>

#include "code/css_code.h"
#include "code/group_algebra.h"

namespace prophunt::code {

/** Rotated surface code entry of Table 1 ([[d^2, 1, d]]). */
CssCode benchmarkSurface(std::size_t d);

/** Lifted-product code over C3 standing in for the paper's [[39,3,3]]. */
CssCode benchmarkLp39();

/** Two-block code over C30 standing in for the [[60,2,6]] RQT code. */
CssCode benchmarkRqt60();

/** Two-block code over an order-27 cyclic group for the [[54,11,4]] RQT. */
CssCode benchmarkRqt54();

/** Two-block code over the order-54 dihedral group for [[108,18,4]]. */
CssCode benchmarkRqt108();

/** All eight benchmark codes of Table 1 in paper order. */
std::vector<CssCode> allBenchmarkCodes();

/** Outcome of a random instance search. */
struct SearchResult
{
    std::size_t k = 0;
    std::size_t d = 0;
    /** Group-element terms for each protograph entry (row major). */
    std::vector<std::vector<std::size_t>> termsA;
    std::vector<std::vector<std::size_t>> termsB;
};

/**
 * Randomly search two-block instances over @p g for a code with the target
 * parameters. Entries a and b each get @p weight random group elements.
 * Returns the best instance found (maximizing k closeness, then distance).
 */
SearchResult searchTwoBlock(const Group &g, std::size_t weight,
                            std::size_t target_k, std::size_t target_d,
                            std::size_t attempts, uint64_t seed);

/**
 * Randomly search lifted-product instances LP(A, B) over @p g with the
 * given protograph shapes and one random group element per nonzero entry.
 * Entry (r, c) is nonzero where @p maskA / @p maskB are set.
 */
SearchResult searchLiftedProduct(const Group &g, std::size_t ma,
                                 std::size_t na,
                                 const std::vector<int> &maskA,
                                 std::size_t mb, std::size_t nb,
                                 const std::vector<int> &maskB,
                                 std::size_t target_k, std::size_t target_d,
                                 std::size_t attempts, uint64_t seed);

} // namespace prophunt::code

#endif // PROPHUNT_CODE_CODES_H
