/**
 * @file
 * Two-block group-algebra (2BGA) codes.
 *
 * Given a, b in F2[G], the two-block code has n = 2|G| qubits and checks
 *
 *   H_X = [ L(a) | R(b) ],   H_Z = [ R(b)^T | L(a)^T ]
 *
 * which commute because left and right translations commute. For cyclic G
 * these are the well-known generalized bicycle codes. These serve as our
 * structural stand-in for the paper's Random Quantum Tanner codes (see
 * DESIGN.md, substitution 5): irregular LDPC CSS codes built from the same
 * group algebras (C15-derived and dihedral) with matching stabilizer
 * weights.
 */
#ifndef PROPHUNT_CODE_TWO_BLOCK_H
#define PROPHUNT_CODE_TWO_BLOCK_H

#include <string>

#include "code/css_code.h"
#include "code/group_algebra.h"

namespace prophunt::code {

/** Build the two-block code for algebra elements @p a and @p b over @p g. */
CssCode twoBlock(const Group &g, const AlgebraElement &a,
                 const AlgebraElement &b, const std::string &name);

} // namespace prophunt::code

#endif // PROPHUNT_CODE_TWO_BLOCK_H
