#include "code/css_code.h"

#include <stdexcept>
#include <utility>

namespace prophunt::code {

CssCode::CssCode(gf2::Matrix hx, gf2::Matrix hz, std::string name)
    : hx_(std::move(hx)), hz_(std::move(hz)), name_(std::move(name))
{
    if (hx_.cols() != hz_.cols()) {
        throw std::invalid_argument("CssCode: H_X / H_Z column mismatch");
    }
    // CSS condition: every X check commutes with every Z check, i.e. the
    // supports overlap on an even number of qubits.
    for (std::size_t i = 0; i < hx_.rows(); ++i) {
        for (std::size_t j = 0; j < hz_.rows(); ++j) {
            if (hx_.row(i).dot(hz_.row(j))) {
                throw std::invalid_argument(
                    "CssCode: H_X * H_Z^T != 0 (stabilizers anticommute)");
            }
        }
    }
    computeLogicals();
}

void
CssCode::computeLogicals()
{
    // X logicals: vectors in ker(H_Z) independent of rowspace(H_X).
    // Z logicals: vectors in ker(H_X) independent of rowspace(H_Z).
    auto pick_logicals = [](const gf2::Matrix &kernel_of,
                            const gf2::Matrix &modulo) {
        std::vector<gf2::BitVec> out;
        gf2::Matrix span = modulo;
        std::size_t span_rank = span.rank();
        for (const auto &v : kernel_of.kernelBasis()) {
            gf2::Matrix trial = span;
            trial.appendRow(v);
            std::size_t r = trial.rank();
            if (r > span_rank) {
                out.push_back(v);
                span = std::move(trial);
                span_rank = r;
            }
        }
        return out;
    };

    std::vector<gf2::BitVec> xlogs = pick_logicals(hz_, hx_);
    std::vector<gf2::BitVec> zlogs = pick_logicals(hx_, hz_);
    if (xlogs.size() != zlogs.size()) {
        throw std::logic_error("CssCode: logical count mismatch");
    }

    // Symplectic pairing: arrange so xlogs[i].dot(zlogs[j]) == (i == j).
    for (std::size_t i = 0; i < xlogs.size(); ++i) {
        // Find a Z logical anticommuting with xlogs[i].
        std::size_t sel = zlogs.size();
        for (std::size_t j = i; j < zlogs.size(); ++j) {
            if (xlogs[i].dot(zlogs[j])) {
                sel = j;
                break;
            }
        }
        if (sel == zlogs.size()) {
            throw std::logic_error("CssCode: symplectic pairing failed");
        }
        std::swap(zlogs[i], zlogs[sel]);
        // Clean remaining logicals so they commute with the chosen pair.
        for (std::size_t j = i + 1; j < xlogs.size(); ++j) {
            if (xlogs[j].dot(zlogs[i])) {
                xlogs[j] ^= xlogs[i];
            }
            if (zlogs[j].dot(xlogs[i])) {
                zlogs[j] ^= zlogs[i];
            }
        }
    }

    lx_ = gf2::Matrix(0, n());
    lz_ = gf2::Matrix(0, n());
    for (const auto &v : xlogs) {
        lx_.appendRow(v);
    }
    for (const auto &v : zlogs) {
        lz_.appendRow(v);
    }
}

std::vector<std::size_t>
CssCode::checkSupport(std::size_t check) const
{
    if (check < hx_.rows()) {
        return hx_.row(check).support();
    }
    return hz_.row(check - hx_.rows()).support();
}

std::size_t
CssCode::maxCheckWeight() const
{
    std::size_t w = 0;
    for (std::size_t i = 0; i < hx_.rows(); ++i) {
        w = std::max(w, hx_.row(i).popcount());
    }
    for (std::size_t i = 0; i < hz_.rows(); ++i) {
        w = std::max(w, hz_.row(i).popcount());
    }
    return w;
}

} // namespace prophunt::code
