/**
 * @file
 * CSS stabilizer codes: check matrices, logical operators, validation.
 *
 * An [[n, k, d]] CSS code is specified by two parity-check matrices H_X and
 * H_Z over GF(2) with H_X * H_Z^T = 0. Logical operator matrices L_X and L_Z
 * are computed from the kernels of the opposing check matrices and paired
 * symplectically so that L_X row i anticommutes with L_Z row i only.
 */
#ifndef PROPHUNT_CODE_CSS_CODE_H
#define PROPHUNT_CODE_CSS_CODE_H

#include <cstddef>
#include <string>
#include <vector>

#include "gf2/matrix.h"

namespace prophunt::code {

/**
 * A CSS quantum error-correcting code.
 *
 * The class is immutable after construction. Check matrices are the rows the
 * syndrome-measurement circuit will implement; logical matrices define the
 * observables tracked by the circuit-level model.
 */
class CssCode
{
  public:
    /**
     * Build a CSS code from its check matrices.
     *
     * Computes logical operators, verifies CSS commutation, and throws
     * std::invalid_argument if H_X * H_Z^T != 0.
     *
     * @param hx X-type checks (detect Z errors).
     * @param hz Z-type checks (detect X errors).
     * @param name Human-readable name, e.g. "[[9,1,3]] surface".
     */
    CssCode(gf2::Matrix hx, gf2::Matrix hz, std::string name);

    /** Number of physical data qubits. */
    std::size_t n() const { return hx_.cols(); }

    /** Number of logical qubits, n - rank(H_X) - rank(H_Z). */
    std::size_t k() const { return lx_.rows(); }

    std::size_t numXChecks() const { return hx_.rows(); }
    std::size_t numZChecks() const { return hz_.rows(); }
    std::size_t numChecks() const { return hx_.rows() + hz_.rows(); }

    const gf2::Matrix &hx() const { return hx_; }
    const gf2::Matrix &hz() const { return hz_; }
    const gf2::Matrix &lx() const { return lx_; }
    const gf2::Matrix &lz() const { return lz_; }

    const std::string &name() const { return name_; }

    /**
     * Data qubits of a check under the global check indexing:
     * checks [0, numXChecks) are X-type, [numXChecks, numChecks) are Z-type.
     */
    std::vector<std::size_t> checkSupport(std::size_t check) const;

    /** True iff the global check index refers to an X-type stabilizer. */
    bool isXCheck(std::size_t check) const { return check < hx_.rows(); }

    /** Maximum stabilizer weight across both check types. */
    std::size_t maxCheckWeight() const;

  private:
    void computeLogicals();

    gf2::Matrix hx_;
    gf2::Matrix hz_;
    gf2::Matrix lx_;
    gf2::Matrix lz_;
    std::string name_;
};

} // namespace prophunt::code

#endif // PROPHUNT_CODE_CSS_CODE_H
