/**
 * @file
 * Lifted-product CSS codes over a group algebra.
 *
 * Given protographs A (m_a x n_a) and B (m_b x n_b) with entries in F2[G],
 * the lifted product places qubits on two blocks (n_a*n_b and m_a*m_b
 * copies of G) with check matrices
 *
 *   H_X = [ L(A) (x) I_{n_b}  |  I_{m_a} (x) R(B*) ]
 *   H_Z = [ I_{n_a} (x) R(B)  |  L(A*) (x) I_{m_b} ]
 *
 * where L/R are the left/right regular representations and * is the
 * algebra conjugate transpose. Mixing L on the A side and R on the B side
 * makes H_X * H_Z^T vanish even for non-abelian groups, since left and
 * right translations commute.
 */
#ifndef PROPHUNT_CODE_LIFTED_PRODUCT_H
#define PROPHUNT_CODE_LIFTED_PRODUCT_H

#include <string>

#include "code/css_code.h"
#include "code/group_algebra.h"

namespace prophunt::code {

/** Build the lifted-product code LP(A, B) over group @p g. */
CssCode liftedProduct(const Group &g, const Protograph &a,
                      const Protograph &b, const std::string &name);

} // namespace prophunt::code

#endif // PROPHUNT_CODE_LIFTED_PRODUCT_H
