/**
 * @file
 * Finite groups and their GF(2) group algebras.
 *
 * Lifted-product and two-block codes are defined over the group algebra
 * F2[G]. We represent G by its multiplication table and algebra elements as
 * bit vectors over the |G| group elements. Lifting sends an algebra element
 * to a |G| x |G| permutation-sum binary matrix via the left or right regular
 * representation; using left for one protograph factor and right for the
 * other makes the lifted blocks commute even for non-abelian G.
 */
#ifndef PROPHUNT_CODE_GROUP_ALGEBRA_H
#define PROPHUNT_CODE_GROUP_ALGEBRA_H

#include <cstddef>
#include <vector>

#include "gf2/bitvec.h"
#include "gf2/matrix.h"

namespace prophunt::code {

/**
 * A finite group given by its multiplication table.
 *
 * Element 0 is the identity. mul(a, b) is the product a*b.
 */
class Group
{
  public:
    /** Cyclic group C_n. Element i is the rotation x^i. */
    static Group cyclic(std::size_t n);

    /**
     * Dihedral group of order 2n (symmetries of the n-gon). Elements
     * 0..n-1 are rotations r^i; elements n..2n-1 are reflections s*r^i.
     */
    static Group dihedral(std::size_t n);

    std::size_t order() const { return order_; }

    std::size_t mul(std::size_t a, std::size_t b) const
    {
        return table_[a * order_ + b];
    }

    std::size_t inverse(std::size_t a) const { return inv_[a]; }

  private:
    Group(std::size_t order, std::vector<std::size_t> table);

    std::size_t order_;
    std::vector<std::size_t> table_;
    std::vector<std::size_t> inv_;
};

/**
 * An element of the group algebra F2[G]: a formal GF(2) sum of group
 * elements, stored as a bit vector of length |G|.
 */
class AlgebraElement
{
  public:
    AlgebraElement() = default;

    /** The zero element of F2[G]. */
    explicit AlgebraElement(const Group &g) : bits_(g.order()) {}

    /** Sum of the listed group elements. */
    static AlgebraElement fromTerms(const Group &g,
                                    const std::vector<std::size_t> &terms);

    const gf2::BitVec &bits() const { return bits_; }

    bool isZero() const { return bits_.isZero(); }

    /**
     * The antipode a* = sum over terms g of g^{-1}. Lifting satisfies
     * L(a)^T = L(a*) and R(a)^T = R(a*).
     */
    AlgebraElement antipode(const Group &g) const;

    /** Left regular representation: matrix M with M[h, g*h] = 1 per term g. */
    gf2::Matrix liftLeft(const Group &g) const;

    /** Right regular representation: M[h, h*g] = 1 per term g. */
    gf2::Matrix liftRight(const Group &g) const;

  private:
    gf2::BitVec bits_;
};

/** A protograph: a small matrix with entries in F2[G]. */
class Protograph
{
  public:
    Protograph(const Group &g, std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    AlgebraElement &at(std::size_t r, std::size_t c)
    {
        return entries_[r * cols_ + c];
    }
    const AlgebraElement &at(std::size_t r, std::size_t c) const
    {
        return entries_[r * cols_ + c];
    }

    /** Entry-wise antipode combined with matrix transpose. */
    Protograph conjugateTranspose(const Group &g) const;

    /** Lift every entry with the left regular representation. */
    gf2::Matrix liftLeft(const Group &g) const;

    /** Lift every entry with the right regular representation. */
    gf2::Matrix liftRight(const Group &g) const;

  private:
    std::size_t rows_, cols_;
    std::vector<AlgebraElement> entries_;
};

} // namespace prophunt::code

#endif // PROPHUNT_CODE_GROUP_ALGEBRA_H
