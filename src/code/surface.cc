#include "code/surface.h"

#include <stdexcept>

namespace prophunt::code {

namespace {

/** Build all faces of the distance-d rotated surface code. */
std::vector<SurfaceFace>
buildFaces(std::size_t d)
{
    std::vector<SurfaceFace> faces;
    auto in_grid = [d](long r, long c) {
        return r >= 0 && c >= 0 && r < (long)d && c < (long)d;
    };
    for (std::size_t i = 0; i <= d; ++i) {
        for (std::size_t j = 0; j <= d; ++j) {
            // X-type faces on odd parity; they line the top/bottom
            // boundaries. Z-type on even parity, lining left/right.
            bool is_x = ((i + j) % 2) == 1;
            bool interior = i >= 1 && i <= d - 1 && j >= 1 && j <= d - 1;
            bool top = i == 0, bottom = i == d, left = j == 0, right = j == d;
            bool keep = false;
            if (interior) {
                keep = true;
            } else if ((top || bottom) && is_x && j >= 1 && j <= d - 1) {
                keep = true;
            } else if ((left || right) && !is_x && i >= 1 && i <= d - 1) {
                keep = true;
            }
            if (!keep) {
                continue;
            }
            SurfaceFace f;
            f.isX = is_x;
            f.i = i;
            f.j = j;
            long ri = (long)i, cj = (long)j;
            // Corners: NW, NE, SW, SE relative to the face center.
            std::array<std::pair<long, long>, 4> pos = {
                std::pair<long, long>{ri - 1, cj - 1}, {ri - 1, cj},
                {ri, cj - 1}, {ri, cj}};
            for (std::size_t c = 0; c < 4; ++c) {
                auto [r, col] = pos[c];
                if (in_grid(r, col)) {
                    f.corner[c] = (std::size_t)(r * (long)d + col);
                }
            }
            faces.push_back(f);
        }
    }
    // X faces first, then Z faces, to match CssCode check indexing.
    std::vector<SurfaceFace> ordered;
    for (const auto &f : faces) {
        if (f.isX) {
            ordered.push_back(f);
        }
    }
    for (const auto &f : faces) {
        if (!f.isX) {
            ordered.push_back(f);
        }
    }
    return ordered;
}

CssCode
buildCode(std::size_t d, const std::vector<SurfaceFace> &faces)
{
    std::size_t n = d * d;
    gf2::Matrix hx(0, n), hz(0, n);
    for (const auto &f : faces) {
        gf2::BitVec row(n);
        for (const auto &q : f.corner) {
            if (q) {
                row.set(*q, true);
            }
        }
        if (f.isX) {
            hx.appendRow(row);
        } else {
            hz.appendRow(row);
        }
    }
    std::string name = "[[" + std::to_string(n) + ",1," + std::to_string(d) +
                       "]] surface";
    return CssCode(hx, hz, name);
}

} // namespace

SurfaceCode::SurfaceCode(std::size_t d)
    : d_(d), faces_(buildFaces(d)), code_(buildCode(d, faces_))
{
    if (d < 3 || d % 2 == 0) {
        throw std::invalid_argument("SurfaceCode: d must be odd and >= 3");
    }
    if (faces_.size() != d * d - 1) {
        throw std::logic_error("SurfaceCode: face count mismatch");
    }
    if (code_.k() != 1) {
        throw std::logic_error("SurfaceCode: expected k = 1");
    }
}

} // namespace prophunt::code
