#include "code/distance.h"

#include <algorithm>
#include <numeric>
#include <random>

namespace prophunt::code {

namespace {

/**
 * Core estimator: min weight of a vector in span(stab rows + logical rows)
 * carrying a nonzero logical component (i.e., not in rowspace(stab)).
 *
 * @param stab Stabilizer check matrix whose row space must be avoided.
 * @param logicals Logical operator rows completing the kernel span.
 */
std::size_t
estimate(const gf2::Matrix &stab, const gf2::Matrix &logicals,
         std::size_t trials, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::size_t n = stab.cols();
    std::size_t best = n + 1;

    // Anticommuting partners detect logical components cheaply: v has a
    // logical component iff it anticommutes with some dual logical. The
    // caller passes logicals from the CssCode, whose dual partners are the
    // opposing-type logicals; instead we use membership via rank which is
    // robust: precompute the echelon form of the stabilizer matrix once.
    gf2::RowEchelon stab_re = stab.rowEchelon();
    auto in_stab_span = [&](const gf2::BitVec &v) {
        gf2::BitVec r = v;
        for (std::size_t i = 0; i < stab_re.rank; ++i) {
            if (r.get(stab_re.pivotCol[i])) {
                r ^= stab_re.rows[i];
            }
        }
        return r.isZero();
    };

    // Greedy polish: repeatedly add any stabilizer row that lowers weight.
    auto polish = [&](gf2::BitVec v) {
        bool improved = true;
        while (improved) {
            improved = false;
            for (std::size_t i = 0; i < stab.rows(); ++i) {
                gf2::BitVec cand = v ^ stab.row(i);
                if (cand.popcount() < v.popcount()) {
                    v = std::move(cand);
                    improved = true;
                }
            }
        }
        return v;
    };

    // Direct logicals first.
    for (std::size_t i = 0; i < logicals.rows(); ++i) {
        gf2::BitVec v = polish(logicals.row(i));
        best = std::min(best, v.popcount());
    }

    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t t = 0; t < trials; ++t) {
        std::shuffle(perm.begin(), perm.end(), rng);
        // Row reduce the spanning set under the permuted column order.
        std::vector<gf2::BitVec> rows;
        rows.reserve(stab.rows() + logicals.rows());
        for (std::size_t i = 0; i < stab.rows(); ++i) {
            rows.push_back(stab.row(i));
        }
        for (std::size_t i = 0; i < logicals.rows(); ++i) {
            rows.push_back(logicals.row(i));
        }
        std::size_t pivot_row = 0;
        for (std::size_t pc = 0; pc < n && pivot_row < rows.size(); ++pc) {
            std::size_t c = perm[pc];
            std::size_t sel = rows.size();
            for (std::size_t r = pivot_row; r < rows.size(); ++r) {
                if (rows[r].get(c)) {
                    sel = r;
                    break;
                }
            }
            if (sel == rows.size()) {
                continue;
            }
            std::swap(rows[pivot_row], rows[sel]);
            for (std::size_t r = 0; r < rows.size(); ++r) {
                if (r != pivot_row && rows[r].get(c)) {
                    rows[r] ^= rows[pivot_row];
                }
            }
            ++pivot_row;
        }
        for (std::size_t r = 0; r < pivot_row; ++r) {
            std::size_t w = rows[r].popcount();
            if (w >= best || in_stab_span(rows[r])) {
                continue;
            }
            gf2::BitVec v = polish(rows[r]);
            if (!in_stab_span(v)) {
                best = std::min(best, v.popcount());
            } else {
                best = std::min(best, w);
            }
        }
    }
    return best;
}

} // namespace

std::size_t
estimateXDistance(const CssCode &code, std::size_t trials, uint64_t seed)
{
    return estimate(code.hx(), code.lx(), trials, seed);
}

std::size_t
estimateZDistance(const CssCode &code, std::size_t trials, uint64_t seed)
{
    return estimate(code.hz(), code.lz(), trials, seed);
}

std::size_t
estimateDistance(const CssCode &code, std::size_t trials, uint64_t seed)
{
    return std::min(estimateXDistance(code, trials, seed),
                    estimateZDistance(code, trials, seed + 1));
}

} // namespace prophunt::code
