#include "code/group_algebra.h"

#include <stdexcept>

namespace prophunt::code {

Group::Group(std::size_t order, std::vector<std::size_t> table)
    : order_(order), table_(std::move(table)), inv_(order)
{
    for (std::size_t a = 0; a < order_; ++a) {
        bool found = false;
        for (std::size_t b = 0; b < order_; ++b) {
            if (mul(a, b) == 0) {
                inv_[a] = b;
                found = true;
                break;
            }
        }
        if (!found) {
            throw std::logic_error("Group: element without inverse");
        }
    }
}

Group
Group::cyclic(std::size_t n)
{
    std::vector<std::size_t> table(n * n);
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            table[a * n + b] = (a + b) % n;
        }
    }
    return Group(n, std::move(table));
}

Group
Group::dihedral(std::size_t n)
{
    // Elements 0..n-1: rotations r^i. Elements n..2n-1: reflections s r^i,
    // with relations s^2 = 1 and s r = r^{-1} s, i.e.
    //   r^a * r^b     = r^{a+b}
    //   r^a * s r^b   = s r^{b-a}
    //   s r^a * r^b   = s r^{a+b}
    //   s r^a * s r^b = r^{b-a}
    std::size_t order = 2 * n;
    std::vector<std::size_t> table(order * order);
    auto idx = [n](bool refl, std::size_t rot) {
        return (refl ? n : 0) + rot % n;
    };
    for (std::size_t a = 0; a < order; ++a) {
        bool ra = a >= n;
        std::size_t ia = ra ? a - n : a;
        for (std::size_t b = 0; b < order; ++b) {
            bool rb = b >= n;
            std::size_t ib = rb ? b - n : b;
            std::size_t out;
            if (!ra && !rb) {
                out = idx(false, ia + ib);
            } else if (!ra && rb) {
                out = idx(true, (ib + n - ia % n) % n);
            } else if (ra && !rb) {
                out = idx(true, ia + ib);
            } else {
                out = idx(false, (ib + n - ia % n) % n);
            }
            table[a * order + b] = out;
        }
    }
    return Group(order, std::move(table));
}

AlgebraElement
AlgebraElement::fromTerms(const Group &g, const std::vector<std::size_t> &terms)
{
    AlgebraElement e(g);
    for (std::size_t t : terms) {
        e.bits_.flip(t);
    }
    return e;
}

AlgebraElement
AlgebraElement::antipode(const Group &g) const
{
    AlgebraElement e(g);
    for (std::size_t t : bits_.support()) {
        e.bits_.flip(g.inverse(t));
    }
    return e;
}

gf2::Matrix
AlgebraElement::liftLeft(const Group &g) const
{
    std::size_t n = g.order();
    gf2::Matrix m(n, n);
    for (std::size_t t : bits_.support()) {
        for (std::size_t h = 0; h < n; ++h) {
            m.set(h, g.mul(t, h), true);
        }
    }
    return m;
}

gf2::Matrix
AlgebraElement::liftRight(const Group &g) const
{
    std::size_t n = g.order();
    gf2::Matrix m(n, n);
    for (std::size_t t : bits_.support()) {
        for (std::size_t h = 0; h < n; ++h) {
            m.set(h, g.mul(h, t), true);
        }
    }
    return m;
}

Protograph::Protograph(const Group &g, std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), entries_(rows * cols, AlgebraElement(g))
{
}

Protograph
Protograph::conjugateTranspose(const Group &g) const
{
    Protograph t(g, cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t.at(c, r) = at(r, c).antipode(g);
        }
    }
    return t;
}

namespace {

gf2::Matrix
liftProtograph(const Protograph &p, const Group &g, bool left)
{
    std::size_t n = g.order();
    gf2::Matrix out(p.rows() * n, p.cols() * n);
    for (std::size_t r = 0; r < p.rows(); ++r) {
        for (std::size_t c = 0; c < p.cols(); ++c) {
            const AlgebraElement &e = p.at(r, c);
            if (e.isZero()) {
                continue;
            }
            gf2::Matrix block = left ? e.liftLeft(g) : e.liftRight(g);
            for (std::size_t i = 0; i < n; ++i) {
                for (std::size_t j : block.row(i).support()) {
                    out.set(r * n + i, c * n + j, true);
                }
            }
        }
    }
    return out;
}

} // namespace

gf2::Matrix
Protograph::liftLeft(const Group &g) const
{
    return liftProtograph(*this, g, true);
}

gf2::Matrix
Protograph::liftRight(const Group &g) const
{
    return liftProtograph(*this, g, false);
}

} // namespace prophunt::code
