#include "code/two_block.h"

namespace prophunt::code {

CssCode
twoBlock(const Group &g, const AlgebraElement &a, const AlgebraElement &b,
         const std::string &name)
{
    gf2::Matrix la = a.liftLeft(g);
    gf2::Matrix rb = b.liftRight(g);
    gf2::Matrix hx = la.hstack(rb);
    gf2::Matrix hz = rb.transpose().hstack(la.transpose());
    return CssCode(hx, hz, name);
}

} // namespace prophunt::code
