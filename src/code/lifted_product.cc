#include "code/lifted_product.h"

namespace prophunt::code {

namespace {

/**
 * Place a lifted |G| x |G| block at protograph cell (br, bc) of @p dest,
 * offset by (row0, col0) in lifted coordinates.
 */
void
placeBlock(gf2::Matrix &dest, const gf2::Matrix &block, std::size_t row0,
           std::size_t col0)
{
    for (std::size_t i = 0; i < block.rows(); ++i) {
        for (std::size_t j : block.row(i).support()) {
            dest.set(row0 + i, col0 + j, true);
        }
    }
}

} // namespace

CssCode
liftedProduct(const Group &g, const Protograph &a, const Protograph &b,
              const std::string &name)
{
    std::size_t gl = g.order();
    std::size_t ma = a.rows(), na = a.cols();
    std::size_t mb = b.rows(), nb = b.cols();
    std::size_t n1 = na * nb * gl; // qubit block 1
    std::size_t n2 = ma * mb * gl; // qubit block 2
    std::size_t n = n1 + n2;

    Protograph astar = a.conjugateTranspose(g); // na x ma
    Protograph bstar = b.conjugateTranspose(g); // nb x mb

    // H_X: rows indexed (i in ma, l in nb).
    gf2::Matrix hx(ma * nb * gl, n);
    for (std::size_t i = 0; i < ma; ++i) {
        for (std::size_t l = 0; l < nb; ++l) {
            std::size_t row0 = (i * nb + l) * gl;
            // Block 1: L(A[i,k]) at qubit column (k, l).
            for (std::size_t k = 0; k < na; ++k) {
                const AlgebraElement &e = a.at(i, k);
                if (!e.isZero()) {
                    placeBlock(hx, e.liftLeft(g), row0, (k * nb + l) * gl);
                }
            }
            // Block 2: R(B*[l,j]) at qubit column (i, j).
            for (std::size_t j = 0; j < mb; ++j) {
                const AlgebraElement &e = bstar.at(l, j);
                if (!e.isZero()) {
                    placeBlock(hx, e.liftRight(g), row0,
                               n1 + (i * mb + j) * gl);
                }
            }
        }
    }

    // H_Z: rows indexed (k in na, j in mb).
    gf2::Matrix hz(na * mb * gl, n);
    for (std::size_t k = 0; k < na; ++k) {
        for (std::size_t j = 0; j < mb; ++j) {
            std::size_t row0 = (k * mb + j) * gl;
            // Block 1: R(B[j,l]) at qubit column (k, l).
            for (std::size_t l = 0; l < nb; ++l) {
                const AlgebraElement &e = b.at(j, l);
                if (!e.isZero()) {
                    placeBlock(hz, e.liftRight(g), row0, (k * nb + l) * gl);
                }
            }
            // Block 2: L(A*[k,i]) at qubit column (i, j).
            for (std::size_t i = 0; i < ma; ++i) {
                const AlgebraElement &e = astar.at(k, i);
                if (!e.isZero()) {
                    placeBlock(hz, e.liftLeft(g), row0,
                               n1 + (i * mb + j) * gl);
                }
            }
        }
    }

    return CssCode(hx, hz, name);
}

} // namespace prophunt::code
