/**
 * @file
 * Hand-designed surface-code schedules.
 *
 * The well-known 'N-Z' schedule [Tomita & Svore] orders each check's CNOTs
 * so worst-case hook errors land perpendicular to the corresponding logical
 * operator; the "poor" schedule swaps the two patterns so hooks align with
 * the logicals and reduce the effective distance. Both are 4-CNOT-layer,
 * commutation-valid schedules, used as the hand-designed reference (Fig. 12)
 * and the motivating comparison (Fig. 6).
 */
#ifndef PROPHUNT_CIRCUIT_SURFACE_SCHEDULES_H
#define PROPHUNT_CIRCUIT_SURFACE_SCHEDULES_H

#include <memory>

#include "circuit/schedule.h"
#include "code/surface.h"

namespace prophunt::circuit {

/** The good, hand-designed 'N-Z' schedule (hooks perpendicular). */
SmSchedule nzSchedule(const code::SurfaceCode &surface);

/** The poor schedule with swapped patterns (hooks parallel to logicals). */
SmSchedule poorSurfaceSchedule(const code::SurfaceCode &surface);

} // namespace prophunt::circuit

#endif // PROPHUNT_CIRCUIT_SURFACE_SCHEDULES_H
