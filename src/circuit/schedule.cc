#include "circuit/schedule.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace prophunt::circuit {

SmSchedule::SmSchedule(std::shared_ptr<const code::CssCode> code,
                       std::vector<std::vector<std::size_t>> check_order,
                       std::vector<std::vector<std::size_t>> qubit_order)
    : code_(std::move(code)), checkOrder_(std::move(check_order)),
      qubitOrder_(std::move(qubit_order))
{
    if (checkOrder_.size() != code_->numChecks() ||
        qubitOrder_.size() != code_->n()) {
        throw std::invalid_argument("SmSchedule: order size mismatch");
    }
}

SmSchedule
SmSchedule::fromTimesteps(
    std::shared_ptr<const code::CssCode> code,
    const std::vector<std::vector<std::pair<std::size_t, std::size_t>>> &ts)
{
    std::size_t m = code->numChecks();
    std::size_t n = code->n();
    std::vector<std::vector<std::size_t>> check_order(m);
    // Per qubit, collect (timestep, check) and sort.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> per_q(n);
    for (std::size_t c = 0; c < m; ++c) {
        std::vector<std::pair<std::size_t, std::size_t>> sorted = ts[c];
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.second < b.second;
                  });
        for (const auto &[q, t] : sorted) {
            check_order[c].push_back(q);
            per_q[q].push_back({t, c});
        }
    }
    std::vector<std::vector<std::size_t>> qubit_order(n);
    for (std::size_t q = 0; q < n; ++q) {
        std::sort(per_q[q].begin(), per_q[q].end());
        for (std::size_t i = 0; i + 1 < per_q[q].size(); ++i) {
            if (per_q[q][i].first == per_q[q][i + 1].first) {
                throw std::invalid_argument(
                    "fromTimesteps: qubit used twice in one timestep");
            }
        }
        for (const auto &[t, c] : per_q[q]) {
            qubit_order[q].push_back(c);
        }
    }
    return SmSchedule(std::move(code), std::move(check_order),
                      std::move(qubit_order));
}

std::size_t
SmSchedule::posInCheck(std::size_t check, std::size_t qubit) const
{
    const auto &o = checkOrder_[check];
    auto it = std::find(o.begin(), o.end(), qubit);
    if (it == o.end()) {
        throw std::invalid_argument("posInCheck: qubit not in check");
    }
    return (std::size_t)(it - o.begin());
}

std::size_t
SmSchedule::posOnQubit(std::size_t qubit, std::size_t check) const
{
    const auto &o = qubitOrder_[qubit];
    auto it = std::find(o.begin(), o.end(), check);
    if (it == o.end()) {
        throw std::invalid_argument("posOnQubit: check not on qubit");
    }
    return (std::size_t)(it - o.begin());
}

bool
SmSchedule::commutationValid() const
{
    std::size_t mx = code_->numXChecks();
    std::size_t m = code_->numChecks();
    for (std::size_t cx = 0; cx < mx; ++cx) {
        for (std::size_t cz = mx; cz < m; ++cz) {
            std::size_t crossings = 0;
            std::size_t shared = 0;
            for (std::size_t q : checkOrder_[cx]) {
                const auto &zq = checkOrder_[cz];
                if (std::find(zq.begin(), zq.end(), q) == zq.end()) {
                    continue;
                }
                ++shared;
                if (posOnQubit(q, cx) < posOnQubit(q, cz)) {
                    ++crossings;
                }
            }
            (void)shared;
            if (crossings % 2 != 0) {
                return false;
            }
        }
    }
    return true;
}

std::optional<Timesteps>
SmSchedule::computeTimesteps() const
{
    // Node per CNOT, identified by (check, position-in-check).
    std::size_t m = code_->numChecks();
    std::vector<std::size_t> base(m + 1, 0);
    for (std::size_t c = 0; c < m; ++c) {
        base[c + 1] = base[c] + checkOrder_[c].size();
    }
    std::size_t num_nodes = base[m];
    auto node = [&](std::size_t c, std::size_t pos) { return base[c] + pos; };

    std::vector<std::vector<std::size_t>> succ(num_nodes);
    std::vector<std::size_t> indeg(num_nodes, 0);
    auto add_edge = [&](std::size_t u, std::size_t v) {
        succ[u].push_back(v);
        ++indeg[v];
    };
    for (std::size_t c = 0; c < m; ++c) {
        for (std::size_t k = 0; k + 1 < checkOrder_[c].size(); ++k) {
            add_edge(node(c, k), node(c, k + 1));
        }
    }
    for (std::size_t q = 0; q < code_->n(); ++q) {
        for (std::size_t k = 0; k + 1 < qubitOrder_[q].size(); ++k) {
            std::size_t c1 = qubitOrder_[q][k];
            std::size_t c2 = qubitOrder_[q][k + 1];
            add_edge(node(c1, posInCheck(c1, q)), node(c2, posInCheck(c2, q)));
        }
    }

    // Longest-path layering via Kahn's algorithm.
    std::vector<std::size_t> level(num_nodes, 0);
    std::vector<std::size_t> queue;
    for (std::size_t v = 0; v < num_nodes; ++v) {
        if (indeg[v] == 0) {
            queue.push_back(v);
        }
    }
    std::size_t processed = 0;
    std::size_t max_level = 0;
    while (!queue.empty()) {
        std::size_t v = queue.back();
        queue.pop_back();
        ++processed;
        max_level = std::max(max_level, level[v]);
        for (std::size_t w : succ[v]) {
            level[w] = std::max(level[w], level[v] + 1);
            if (--indeg[w] == 0) {
                queue.push_back(w);
            }
        }
    }
    if (processed != num_nodes) {
        return std::nullopt; // cycle: not schedulable
    }
    Timesteps out;
    out.t.resize(m);
    for (std::size_t c = 0; c < m; ++c) {
        out.t[c].resize(checkOrder_[c].size());
        for (std::size_t k = 0; k < checkOrder_[c].size(); ++k) {
            out.t[c][k] = level[node(c, k)];
        }
    }
    out.depth = num_nodes == 0 ? 0 : max_level + 1;
    return out;
}

bool
SmSchedule::schedulable() const
{
    return computeTimesteps().has_value();
}

std::size_t
SmSchedule::depth() const
{
    auto ts = computeTimesteps();
    if (!ts) {
        throw std::logic_error("SmSchedule::depth: unschedulable");
    }
    return ts->depth;
}

SmSchedule
SmSchedule::withReorder(std::size_t check, std::size_t from_pos,
                        std::size_t before_pos) const
{
    SmSchedule s = *this;
    s.applyReorder(check, from_pos, before_pos);
    return s;
}

std::size_t
SmSchedule::applyReorder(std::size_t check, std::size_t from_pos,
                         std::size_t before_pos)
{
    auto &o = checkOrder_[check];
    std::size_t q = o[from_pos];
    o.erase(o.begin() + (long)from_pos);
    std::size_t dest = before_pos;
    if (from_pos < before_pos) {
        --dest;
    }
    o.insert(o.begin() + (long)dest, q);
    return dest;
}

void
SmSchedule::applySwapAt(std::size_t qubit, std::size_t pos_a,
                        std::size_t pos_b)
{
    auto &o = qubitOrder_[qubit];
    std::swap(o[pos_a], o[pos_b]);
}

void
SmSchedule::setCheckOrder(std::size_t check, std::vector<std::size_t> order)
{
    checkOrder_[check] = std::move(order);
}

SmSchedule
SmSchedule::withRelativeSwap(std::size_t qubit, std::size_t check_a,
                             std::size_t check_b) const
{
    SmSchedule s = *this;
    auto &o = s.qubitOrder_[qubit];
    auto ia = std::find(o.begin(), o.end(), check_a);
    auto ib = std::find(o.begin(), o.end(), check_b);
    if (ia == o.end() || ib == o.end()) {
        throw std::invalid_argument("withRelativeSwap: check not on qubit");
    }
    std::iter_swap(ia, ib);
    return s;
}

std::vector<std::size_t>
SmSchedule::sharedQubits(std::size_t check_a, std::size_t check_b) const
{
    std::vector<std::size_t> a = code_->checkSupport(check_a);
    std::vector<std::size_t> b = code_->checkSupport(check_b);
    std::vector<std::size_t> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

} // namespace prophunt::circuit
