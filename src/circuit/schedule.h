/**
 * @file
 * Syndrome-measurement schedules: the object PropHunt optimizes.
 *
 * A schedule is two families of total orders (the paper's Section 5.3
 * internal representation):
 *
 *  - per check: the order in which a syndrome qubit performs CNOTs with its
 *    data qubits ("check order", modified by *reordering* changes);
 *  - per data qubit: the order in which the checks touching that qubit get
 *    their CNOT ("relative scheduling", the directed multi-edge graph of the
 *    paper's Figure 11, modified by *rescheduling* changes).
 *
 * A schedule is *schedulable* iff the combined precedence constraints are
 * acyclic; the minimal-depth timestep assignment is the longest-path
 * layering. It is *commutation-valid* iff every X-check/Z-check pair crosses
 * on an even number of shared qubits (each shared qubit where the X CNOT
 * precedes the Z CNOT contributes one effective ancilla-ancilla CNOT; pairs
 * cancel).
 */
#ifndef PROPHUNT_CIRCUIT_SCHEDULE_H
#define PROPHUNT_CIRCUIT_SCHEDULE_H

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "code/css_code.h"

namespace prophunt::circuit {

/** Timestep assignment for every CNOT of one round of the SM circuit. */
struct Timesteps
{
    /** t[check][k] = timestep of the k-th CNOT in that check's order. */
    std::vector<std::vector<std::size_t>> t;
    /** Number of CNOT layers in the round. */
    std::size_t depth = 0;
};

/** An SM schedule for a CSS code. Value type; mutations return copies. */
class SmSchedule
{
  public:
    /**
     * Build from explicit orders.
     *
     * @param code The CSS code (shared; schedules are cheap copies).
     * @param check_order Per check (global index), data qubits in CNOT order.
     * @param qubit_order Per data qubit, touching checks in CNOT order.
     */
    SmSchedule(std::shared_ptr<const code::CssCode> code,
               std::vector<std::vector<std::size_t>> check_order,
               std::vector<std::vector<std::size_t>> qubit_order);

    /**
     * Build from explicit per-CNOT timesteps.
     *
     * @param ts ts[check] = list of (data qubit, timestep); two CNOTs on the
     * same qubit must not share a timestep.
     */
    static SmSchedule fromTimesteps(
        std::shared_ptr<const code::CssCode> code,
        const std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
            &ts);

    const code::CssCode &code() const { return *code_; }
    std::shared_ptr<const code::CssCode> codePtr() const { return code_; }

    const std::vector<std::size_t> &checkOrder(std::size_t check) const
    {
        return checkOrder_[check];
    }
    const std::vector<std::size_t> &qubitOrder(std::size_t qubit) const
    {
        return qubitOrder_[qubit];
    }

    /** Position of @p qubit within @p check's CNOT order. */
    std::size_t posInCheck(std::size_t check, std::size_t qubit) const;

    /** Position of @p check within @p qubit's cross-check order. */
    std::size_t posOnQubit(std::size_t qubit, std::size_t check) const;

    /** True iff every X/Z check pair crosses evenly on shared qubits. */
    bool commutationValid() const;

    /** True iff the precedence constraints are acyclic. */
    bool schedulable() const;

    /** Minimal-depth layering, or nullopt if the schedule has a cycle. */
    std::optional<Timesteps> computeTimesteps() const;

    /** CNOT depth of one round; throws if unschedulable. */
    std::size_t depth() const;

    /**
     * Reordering change (paper Section 5.3.1): move the data qubit at
     * position @p from_pos of @p check to directly precede position
     * @p before_pos. The qubit's cross-check orders are unchanged.
     */
    SmSchedule withReorder(std::size_t check, std::size_t from_pos,
                           std::size_t before_pos) const;

    /**
     * Rescheduling change (paper Section 5.3.2): swap the relative order of
     * checks @p check_a and @p check_b on data qubit @p qubit.
     */
    SmSchedule withRelativeSwap(std::size_t qubit, std::size_t check_a,
                                std::size_t check_b) const;

    /**
     * In-place reorder with withReorder's semantics. Returns the final
     * position of the moved qubit (before_pos, minus one when the
     * removal at from_pos shifted it). The exact inverse is
     * applyReorder(check, dest, from_pos < dest ? from_pos
     *                                           : from_pos + 1).
     * These mutators exist for the search hot loop
     * (search::ObjectiveState), which applies and undoes thousands of
     * moves per second; everything else should keep using the
     * copying with* API.
     */
    std::size_t applyReorder(std::size_t check, std::size_t from_pos,
                             std::size_t before_pos);

    /** In-place relative swap by positions within @p qubit's order
     * (self-inverse). */
    void applySwapAt(std::size_t qubit, std::size_t pos_a,
                     std::size_t pos_b);

    /** Replace one check's CNOT order in place. @p order must be a
     * permutation of the current order (B&B child assignment). */
    void setCheckOrder(std::size_t check, std::vector<std::size_t> order);

    /** Data qubits shared by two checks, ascending. */
    std::vector<std::size_t> sharedQubits(std::size_t check_a,
                                          std::size_t check_b) const;

    bool operator==(const SmSchedule &other) const
    {
        return checkOrder_ == other.checkOrder_ &&
               qubitOrder_ == other.qubitOrder_;
    }

  private:
    std::shared_ptr<const code::CssCode> code_;
    std::vector<std::vector<std::size_t>> checkOrder_;
    std::vector<std::vector<std::size_t>> qubitOrder_;
};

} // namespace prophunt::circuit

#endif // PROPHUNT_CIRCUIT_SCHEDULE_H
