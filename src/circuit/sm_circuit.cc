#include "circuit/sm_circuit.h"

#include <stdexcept>

namespace prophunt::circuit {

std::size_t
SmCircuit::countCnots() const
{
    std::size_t c = 0;
    for (const auto &ins : instructions) {
        if (ins.op == OpType::Cnot) {
            ++c;
        }
    }
    return c;
}

SmCircuit
buildMemoryCircuit(const SmSchedule &schedule, std::size_t rounds,
                   MemoryBasis basis)
{
    const code::CssCode &code = schedule.code();
    auto ts = schedule.computeTimesteps();
    if (!ts) {
        throw std::invalid_argument("buildMemoryCircuit: unschedulable");
    }
    std::size_t n = code.n();
    std::size_t m = code.numChecks();
    std::size_t mx = code.numXChecks();

    SmCircuit circ;
    circ.numData = n;
    circ.numQubits = n + m;
    circ.rounds = rounds;
    circ.basis = basis;

    auto anc = [n](std::size_t c) { return (uint32_t)(n + c); };
    auto emit = [&circ](OpType op, std::vector<uint32_t> qs) {
        circ.instructions.push_back({op, std::move(qs)});
        circ.cnotInfo.emplace_back();
    };
    auto emit_cnot = [&](uint32_t ctrl, uint32_t tgt, CnotInfo info) {
        circ.instructions.push_back({OpType::Cnot, {ctrl, tgt}});
        circ.cnotInfo.push_back(info);
    };

    bool mem_x = basis == MemoryBasis::X;

    // Initial data reset in the memory basis.
    for (std::size_t q = 0; q < n; ++q) {
        emit(mem_x ? OpType::ResetX : OpType::ResetZ, {(uint32_t)q});
    }

    for (std::size_t r = 0; r < rounds; ++r) {
        emit(OpType::Tick, {});
        for (std::size_t c = 0; c < m; ++c) {
            emit(c < mx ? OpType::ResetX : OpType::ResetZ, {anc(c)});
        }
        for (std::size_t t = 0; t < ts->depth; ++t) {
            emit(OpType::Tick, {});
            for (std::size_t c = 0; c < m; ++c) {
                const auto &order = schedule.checkOrder(c);
                for (std::size_t k = 0; k < order.size(); ++k) {
                    if (ts->t[c][k] != t) {
                        continue;
                    }
                    uint32_t dq = (uint32_t)order[k];
                    CnotInfo info{c, order[k], k, r, false};
                    if (c < mx) {
                        emit_cnot(anc(c), dq, info); // X check: ancilla ctrl
                    } else {
                        emit_cnot(dq, anc(c), info); // Z check: data ctrl
                    }
                }
            }
        }
        emit(OpType::Tick, {});
        for (std::size_t c = 0; c < m; ++c) {
            emit(c < mx ? OpType::MeasureX : OpType::MeasureZ, {anc(c)});
        }
    }

    emit(OpType::Tick, {});
    for (std::size_t q = 0; q < n; ++q) {
        emit(mem_x ? OpType::MeasureX : OpType::MeasureZ, {(uint32_t)q});
    }
    circ.numMeasurements = rounds * m + n;

    auto meas = [m](std::size_t r, std::size_t c) { return r * m + c; };
    auto data_meas = [rounds, m](std::size_t q) { return rounds * m + q; };

    // A check is "deterministic-basis" if its first-round outcome is fixed
    // by the initial data reset: Z checks for memory-Z, X for memory-X.
    auto deterministic = [&](std::size_t c) {
        return mem_x ? c < mx : c >= mx;
    };

    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t c = 0; c < m; ++c) {
            if (r == 0) {
                if (deterministic(c)) {
                    circ.detectors.push_back({meas(0, c)});
                    circ.detectorSource.push_back({c, 0});
                }
            } else {
                circ.detectors.push_back({meas(r - 1, c), meas(r, c)});
                circ.detectorSource.push_back({c, r});
            }
        }
    }
    // Final detectors: compare the last check outcome to the value
    // reconstructed from the transversal data measurement.
    for (std::size_t c = 0; c < m; ++c) {
        if (!deterministic(c)) {
            continue;
        }
        std::vector<std::size_t> d{meas(rounds - 1, c)};
        for (std::size_t q : code.checkSupport(c)) {
            d.push_back(data_meas(q));
        }
        circ.detectors.push_back(std::move(d));
        circ.detectorSource.push_back({c, rounds});
    }

    const gf2::Matrix &lmat = mem_x ? code.lx() : code.lz();
    for (std::size_t i = 0; i < lmat.rows(); ++i) {
        std::vector<std::size_t> obs;
        for (std::size_t q : lmat.row(i).support()) {
            obs.push_back(data_meas(q));
        }
        circ.observables.push_back(std::move(obs));
    }

    return circ;
}

} // namespace prophunt::circuit
