/**
 * @file
 * The coloration-circuit baseline (after Tremblay et al., Algorithm 1).
 *
 * The baseline SM circuit for an arbitrary CSS code: greedily edge-color the
 * X-check Tanner graph and the Z-check Tanner graph, then run all X-check
 * CNOT layers (one per color) followed by all Z-check CNOT layers. Running
 * the X phase strictly before the Z phase makes every X/Z check pair cross
 * on *all* of its shared qubits — an even number for a CSS code — so the
 * schedule is commutation-valid for every code. This is the generic,
 * hook-error-oblivious starting point PropHunt optimizes (DESIGN.md
 * substitution 6).
 */
#ifndef PROPHUNT_CIRCUIT_COLORATION_H
#define PROPHUNT_CIRCUIT_COLORATION_H

#include <cstdint>
#include <memory>

#include "circuit/schedule.h"

namespace prophunt::circuit {

/** Deterministic coloration circuit (edges processed in sorted order). */
SmSchedule colorationSchedule(std::shared_ptr<const code::CssCode> code);

/**
 * Randomized coloration circuit: edges are processed in a seeded random
 * order, producing the "different, random coloration circuits" of the
 * paper's Figure 13.
 */
SmSchedule randomColorationSchedule(std::shared_ptr<const code::CssCode> code,
                                    uint64_t seed);

} // namespace prophunt::circuit

#endif // PROPHUNT_CIRCUIT_COLORATION_H
