#include "circuit/surface_schedules.h"

#include <array>

namespace prophunt::circuit {

namespace {

/**
 * Build a 4-layer schedule from corner patterns.
 *
 * @param x_pattern Timestep of each corner (NW, NE, SW, SE) for X checks.
 * @param z_pattern Likewise for Z checks.
 */
SmSchedule
patternSchedule(const code::SurfaceCode &surface,
                const std::array<std::size_t, 4> &x_pattern,
                const std::array<std::size_t, 4> &z_pattern)
{
    const code::CssCode &c = surface.code();
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> ts(
        c.numChecks());
    for (std::size_t chk = 0; chk < c.numChecks(); ++chk) {
        const code::SurfaceFace &f = surface.face(chk);
        const auto &pattern = f.isX ? x_pattern : z_pattern;
        for (std::size_t corner = 0; corner < 4; ++corner) {
            if (f.corner[corner]) {
                ts[chk].push_back({*f.corner[corner], pattern[corner]});
            }
        }
    }
    auto code_ptr =
        std::make_shared<const code::CssCode>(surface.code());
    return SmSchedule::fromTimesteps(code_ptr, ts);
}

} // namespace

SmSchedule
nzSchedule(const code::SurfaceCode &surface)
{
    // In this layout X-error chains run vertically (X_L is a column), so
    // the worst-case X hooks must land horizontally: X checks follow the
    // 'Z' pattern (NW, NE, SW, SE), spreading a mid-sequence hook to the
    // SW/SE row. Z-error chains run horizontally (Z_L is a row), so Z
    // checks follow the 'N' pattern (NW, SW, NE, SE), spreading Z hooks
    // vertically.
    return patternSchedule(surface, {0, 1, 2, 3}, {0, 2, 1, 3});
}

SmSchedule
poorSurfaceSchedule(const code::SurfaceCode &surface)
{
    // Swapped patterns: hooks align with the logical operators, reducing
    // the effective distance toward ceil(d/2).
    return patternSchedule(surface, {0, 2, 1, 3}, {0, 1, 2, 3});
}

} // namespace prophunt::circuit
