#include "circuit/coloration.h"

#include <algorithm>
#include <random>

namespace prophunt::circuit {

namespace {

/** Tanner-graph edge: a CNOT between a check and a data qubit. */
struct Edge
{
    std::size_t check;
    std::size_t qubit;
};

/**
 * Greedy proper edge coloring: each edge gets the smallest color unused by
 * edges sharing its check or its qubit. Returns per-edge colors and the
 * number of colors used.
 */
std::pair<std::vector<std::size_t>, std::size_t>
greedyEdgeColoring(const std::vector<Edge> &edges, std::size_t num_checks,
                   std::size_t num_qubits)
{
    std::vector<std::vector<bool>> check_used(num_checks);
    std::vector<std::vector<bool>> qubit_used(num_qubits);
    std::vector<std::size_t> color(edges.size());
    std::size_t num_colors = 0;
    auto used = [](const std::vector<bool> &v, std::size_t c) {
        return c < v.size() && v[c];
    };
    auto mark = [](std::vector<bool> &v, std::size_t c) {
        if (v.size() <= c) {
            v.resize(c + 1, false);
        }
        v[c] = true;
    };
    for (std::size_t e = 0; e < edges.size(); ++e) {
        std::size_t c = 0;
        while (used(check_used[edges[e].check], c) ||
               used(qubit_used[edges[e].qubit], c)) {
            ++c;
        }
        color[e] = c;
        mark(check_used[edges[e].check], c);
        mark(qubit_used[edges[e].qubit], c);
        num_colors = std::max(num_colors, c + 1);
    }
    return {color, num_colors};
}

SmSchedule
buildColoration(std::shared_ptr<const code::CssCode> code, uint64_t seed,
                bool randomize)
{
    std::size_t mx = code->numXChecks();
    std::size_t m = code->numChecks();

    // Collect edges per phase (X checks first, then Z checks).
    std::vector<Edge> x_edges, z_edges;
    for (std::size_t c = 0; c < m; ++c) {
        for (std::size_t q : code->checkSupport(c)) {
            (c < mx ? x_edges : z_edges).push_back({c, q});
        }
    }
    if (randomize) {
        std::mt19937_64 rng(seed);
        std::shuffle(x_edges.begin(), x_edges.end(), rng);
        std::shuffle(z_edges.begin(), z_edges.end(), rng);
    }

    auto [x_color, x_colors] =
        greedyEdgeColoring(x_edges, m, code->n());
    auto [z_color, z_colors] =
        greedyEdgeColoring(z_edges, m, code->n());
    (void)z_colors;

    // Timesteps: X phase occupies [0, x_colors); Z phase follows.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> ts(m);
    for (std::size_t e = 0; e < x_edges.size(); ++e) {
        ts[x_edges[e].check].push_back({x_edges[e].qubit, x_color[e]});
    }
    for (std::size_t e = 0; e < z_edges.size(); ++e) {
        ts[z_edges[e].check].push_back(
            {z_edges[e].qubit, x_colors + z_color[e]});
    }
    return SmSchedule::fromTimesteps(std::move(code), ts);
}

} // namespace

SmSchedule
colorationSchedule(std::shared_ptr<const code::CssCode> code)
{
    return buildColoration(std::move(code), 0, false);
}

SmSchedule
randomColorationSchedule(std::shared_ptr<const code::CssCode> code,
                         uint64_t seed)
{
    return buildColoration(std::move(code), seed, true);
}

} // namespace prophunt::circuit
