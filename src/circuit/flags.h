/**
 * @file
 * Flag fault-tolerant SM circuits (the paper's future-work extension).
 *
 * A flag qubit coupled to a check's ancilla twice — after the first data
 * CNOT and before the last — catches exactly the harmful mid-sequence hook
 * errors: an ancilla fault between the two flag couplings flips the flag
 * measurement, while faults outside spread to at most one data qubit or to
 * w-1 qubits (stabilizer-equivalent to one). Following Chao-Reichardt-style
 * gadgets, X checks use a |0>-prepared flag as the target of ancilla
 * CNOTs; Z checks use a |+>-prepared flag as the control.
 *
 * Flag measurements become additional (deterministic) detectors, so the
 * generic DEM builder and decoders consume flagged circuits unchanged.
 */
#ifndef PROPHUNT_CIRCUIT_FLAGS_H
#define PROPHUNT_CIRCUIT_FLAGS_H

#include "circuit/schedule.h"
#include "circuit/sm_circuit.h"

namespace prophunt::circuit {

/**
 * Build a memory experiment with flag qubits on every check of weight >=
 * @p min_flag_weight.
 *
 * The schedule's CNOT orders are respected; each flagged check's round
 * becomes [d_1, flag, d_2 .. d_{w-1}, flag, d_w] in its own serialized
 * time slots (flags serialize a check's CNOTs, trading depth for hook
 * detection — the same depth/fidelity trade-off the paper's Figure 15
 * studies).
 */
SmCircuit buildFlaggedMemoryCircuit(const SmSchedule &schedule,
                                    std::size_t rounds, MemoryBasis basis,
                                    std::size_t min_flag_weight = 4);

} // namespace prophunt::circuit

#endif // PROPHUNT_CIRCUIT_FLAGS_H
