#include "circuit/flags.h"

#include <algorithm>
#include <stdexcept>

namespace prophunt::circuit {

SmCircuit
buildFlaggedMemoryCircuit(const SmSchedule &schedule, std::size_t rounds,
                          MemoryBasis basis, std::size_t min_flag_weight)
{
    const code::CssCode &code = schedule.code();
    auto ts = schedule.computeTimesteps();
    if (!ts) {
        throw std::invalid_argument(
            "buildFlaggedMemoryCircuit: unschedulable");
    }
    std::size_t n = code.n();
    std::size_t m = code.numChecks();
    std::size_t mx = code.numXChecks();

    // Flagged checks and their flag qubit indices.
    std::vector<long> flag_of(m, -1);
    std::vector<std::size_t> flagged;
    for (std::size_t c = 0; c < m; ++c) {
        if (schedule.checkOrder(c).size() >= min_flag_weight) {
            flag_of[c] = (long)flagged.size();
            flagged.push_back(c);
        }
    }
    std::size_t f = flagged.size();

    // First/last CNOT layer per check (for flag-coupling placement).
    std::vector<std::size_t> t_first(m, 0), t_last(m, 0);
    for (std::size_t c = 0; c < m; ++c) {
        if (ts->t[c].empty()) {
            continue;
        }
        t_first[c] = *std::min_element(ts->t[c].begin(), ts->t[c].end());
        t_last[c] = *std::max_element(ts->t[c].begin(), ts->t[c].end());
    }

    SmCircuit circ;
    circ.numData = n;
    circ.numQubits = n + m + f;
    circ.rounds = rounds;
    circ.basis = basis;

    auto anc = [n](std::size_t c) { return (uint32_t)(n + c); };
    auto flag_q = [n, m](std::size_t fi) { return (uint32_t)(n + m + fi); };
    auto emit = [&circ](OpType op, std::vector<uint32_t> qs) {
        circ.instructions.push_back({op, std::move(qs)});
        circ.cnotInfo.emplace_back();
    };
    auto emit_cnot = [&](uint32_t ctrl, uint32_t tgt, CnotInfo info) {
        circ.instructions.push_back({OpType::Cnot, {ctrl, tgt}});
        circ.cnotInfo.push_back(info);
    };
    auto emit_flag_cnot = [&](std::size_t c) {
        CnotInfo info;
        info.check = c;
        info.flag = true;
        if (c < mx) {
            // X check: ancilla (control) couples into the |0> flag.
            emit_cnot(anc(c), flag_q((std::size_t)flag_of[c]), info);
        } else {
            // Z check: the |+> flag (control) couples into the ancilla.
            emit_cnot(flag_q((std::size_t)flag_of[c]), anc(c), info);
        }
    };

    bool mem_x = basis == MemoryBasis::X;
    for (std::size_t q = 0; q < n; ++q) {
        emit(mem_x ? OpType::ResetX : OpType::ResetZ, {(uint32_t)q});
    }

    for (std::size_t r = 0; r < rounds; ++r) {
        emit(OpType::Tick, {});
        for (std::size_t c = 0; c < m; ++c) {
            emit(c < mx ? OpType::ResetX : OpType::ResetZ, {anc(c)});
        }
        for (std::size_t fi = 0; fi < f; ++fi) {
            emit(flagged[fi] < mx ? OpType::ResetZ : OpType::ResetX,
                 {flag_q(fi)});
        }
        for (std::size_t t = 0; t < ts->depth; ++t) {
            emit(OpType::Tick, {});
            for (std::size_t c = 0; c < m; ++c) {
                const auto &order = schedule.checkOrder(c);
                for (std::size_t k = 0; k < order.size(); ++k) {
                    if (ts->t[c][k] != t) {
                        continue;
                    }
                    uint32_t dq = (uint32_t)order[k];
                    CnotInfo info{c, order[k], k, r, false};
                    if (c < mx) {
                        emit_cnot(anc(c), dq, info);
                    } else {
                        emit_cnot(dq, anc(c), info);
                    }
                }
            }
            // Flag couplings in the gap after layer t: the opening
            // coupling after a check's first CNOT and the closing one
            // before its last.
            emit(OpType::Tick, {});
            for (std::size_t c = 0; c < m; ++c) {
                if (flag_of[c] < 0) {
                    continue;
                }
                if (t == t_first[c]) {
                    emit_flag_cnot(c);
                }
                if (t + 1 == t_last[c]) {
                    emit_flag_cnot(c);
                }
            }
        }
        emit(OpType::Tick, {});
        for (std::size_t c = 0; c < m; ++c) {
            emit(c < mx ? OpType::MeasureX : OpType::MeasureZ, {anc(c)});
        }
        for (std::size_t fi = 0; fi < f; ++fi) {
            emit(flagged[fi] < mx ? OpType::MeasureZ : OpType::MeasureX,
                 {flag_q(fi)});
        }
    }

    emit(OpType::Tick, {});
    for (std::size_t q = 0; q < n; ++q) {
        emit(mem_x ? OpType::MeasureX : OpType::MeasureZ, {(uint32_t)q});
    }
    std::size_t stride = m + f;
    circ.numMeasurements = rounds * stride + n;

    auto meas = [stride](std::size_t r, std::size_t idx) {
        return r * stride + idx;
    };
    auto data_meas = [rounds, stride](std::size_t q) {
        return rounds * stride + q;
    };
    auto deterministic = [&](std::size_t c) {
        return mem_x ? c < mx : c >= mx;
    };

    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t c = 0; c < m; ++c) {
            if (r == 0) {
                if (deterministic(c)) {
                    circ.detectors.push_back({meas(0, c)});
                    circ.detectorSource.push_back({c, 0});
                }
            } else {
                circ.detectors.push_back({meas(r - 1, c), meas(r, c)});
                circ.detectorSource.push_back({c, r});
            }
        }
        // Flag outcomes are deterministic every round.
        for (std::size_t fi = 0; fi < f; ++fi) {
            circ.detectors.push_back({meas(r, m + fi)});
            circ.detectorSource.push_back({m + fi, r});
        }
    }
    for (std::size_t c = 0; c < m; ++c) {
        if (!deterministic(c)) {
            continue;
        }
        std::vector<std::size_t> d{meas(rounds - 1, c)};
        for (std::size_t q : code.checkSupport(c)) {
            d.push_back(data_meas(q));
        }
        circ.detectors.push_back(std::move(d));
        circ.detectorSource.push_back({c, rounds});
    }

    const gf2::Matrix &lmat = mem_x ? code.lx() : code.lz();
    for (std::size_t i = 0; i < lmat.rows(); ++i) {
        std::vector<std::size_t> obs;
        for (std::size_t q : lmat.row(i).support()) {
            obs.push_back(data_meas(q));
        }
        circ.observables.push_back(std::move(obs));
    }
    return circ;
}

} // namespace prophunt::circuit
