/**
 * @file
 * Executable syndrome-measurement circuits (memory experiments).
 *
 * An SmCircuit is a flat Clifford instruction stream (resets, CNOTs,
 * measurements, layer ticks) for a d-round memory experiment, plus the
 * detector and logical-observable definitions the circuit-level model needs
 * and per-CNOT provenance (check, data qubit, position, round) that lets
 * PropHunt map circuit-level errors back to schedule changes.
 */
#ifndef PROPHUNT_CIRCUIT_SM_CIRCUIT_H
#define PROPHUNT_CIRCUIT_SM_CIRCUIT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/schedule.h"

namespace prophunt::circuit {

/** Clifford operations appearing in SM circuits. */
enum class OpType : uint8_t
{
    ResetZ,   ///< Reset qubit to |0>.
    ResetX,   ///< Reset qubit to |+>.
    Cnot,     ///< qubits[0] = control, qubits[1] = target.
    MeasureZ, ///< Z-basis measurement.
    MeasureX, ///< X-basis measurement.
    Tick,     ///< Layer boundary (idle-noise insertion point).
};

/** One circuit instruction. */
struct Instruction
{
    OpType op;
    std::vector<uint32_t> qubits;
};

/** Provenance of a CNOT instruction: which schedule slot produced it. */
struct CnotInfo
{
    std::size_t check = 0;      ///< Global check index.
    std::size_t dataQubit = 0;  ///< Data qubit of the CNOT.
    std::size_t posInCheck = 0; ///< Position in the check's CNOT order.
    std::size_t round = 0;      ///< SM round.
    bool flag = false;          ///< True for flag-coupling CNOTs.
};

/** Memory-experiment basis. */
enum class MemoryBasis { Z, X };

/** A complete memory-experiment circuit with detector metadata. */
struct SmCircuit
{
    /** Data qubits are [0, n); check ancillas are [n, n + m). */
    std::size_t numQubits = 0;
    std::size_t numData = 0;
    std::vector<Instruction> instructions;
    std::size_t numMeasurements = 0;

    /** Detector i = XOR of these measurement indices. */
    std::vector<std::vector<std::size_t>> detectors;
    /** Observable i = XOR of these measurement indices. */
    std::vector<std::vector<std::size_t>> observables;

    /**
     * For detector i, the (check, round) pair it monitors; round == rounds
     * denotes the final data-reconstruction detectors. Detector indexing is
     * schedule-independent: it depends only on the code and round count, so
     * detector sets stay comparable across candidate schedule changes.
     */
    std::vector<std::pair<std::size_t, std::size_t>> detectorSource;

    /** cnotInfo[i] is valid iff instructions[i].op == Cnot. */
    std::vector<CnotInfo> cnotInfo;

    std::size_t rounds = 0;
    MemoryBasis basis = MemoryBasis::Z;

    /** Number of CNOT instructions (for reporting). */
    std::size_t countCnots() const;
};

/**
 * Build an @p rounds-round memory experiment for the given schedule.
 *
 * Memory-Z: data reset in |0>, Z-check detectors start at round 0 (their
 * first outcome is deterministic), X-check detectors compare consecutive
 * rounds starting at round 1, and the final transversal Z measurement both
 * reconstructs the Z checks and reads out the Z logical observables (rows
 * of L_Z). Memory-X is the basis-swapped mirror.
 */
SmCircuit buildMemoryCircuit(const SmSchedule &schedule, std::size_t rounds,
                             MemoryBasis basis);

} // namespace prophunt::circuit

#endif // PROPHUNT_CIRCUIT_SM_CIRCUIT_H
