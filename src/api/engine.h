/**
 * @file
 * prophunt::api::Engine — the one entry point for every workload.
 *
 * The engine serves typed requests (api/requests.h) over the existing
 * simulation/decoding machinery, adding the production-side concerns the
 * free functions never had:
 *
 *  - an artifact cache: compiled memory circuits are keyed by
 *    (schedule hash, rounds, basis); built DEMs and decoder prototypes
 *    additionally by (noise model, decoder spec). Sweeps and repeated
 *    requests reuse them instead of rebuilding per point — the dominant
 *    non-decode cost of fig06/fig12-style sweeps. Cached and uncached
 *    runs are bit-identical: DEM construction is deterministic and
 *    Decoder::clone() must not affect decode results.
 *  - a decode service: every LER measurement (fixed-budget and SPRT
 *    chunks alike) flows through a long-lived api::DecodeService, which
 *    keeps lane groups of warm decoder clones per decode key, coalesces
 *    concurrent same-key requests into one shard stream on a persistent
 *    worker pool, and reuses recorded shard tallies across requests —
 *    all bit-identical to a serial decoder::measureMemoryLer run.
 *  - async submission: submit() enqueues the request onto internal
 *    dispatcher threads and returns a std::future; each job still fans
 *    its shots out over the shared persistent worker pool.
 *  - adaptive sweeps: Engine::sweep with SprtOptions::enabled allocates
 *    shots across sweep points with a sequential test (api/sprt.h)
 *    instead of a fixed per-point budget.
 *  - checkpointable, shardable sweeps: SweepRequest execution walks a
 *    deterministic (point, chunk) cell grid (api/sweep_checkpoint.h);
 *    with checkpointPath set the completed cells persist atomically and
 *    a rerun resumes bit-identically to an uninterrupted run, and with
 *    shard.count > 1 the process serves only its slice of cells, to be
 *    merged by mergeSweepCheckpoints + finalizeSweep.
 *
 * Thread safety: all public methods may be called concurrently.
 */
#ifndef PROPHUNT_API_ENGINE_H
#define PROPHUNT_API_ENGINE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/decode_service.h"
#include "api/requests.h"
#include "api/sweep_checkpoint.h"

namespace prophunt::api {

/**
 * Structural hash of a schedule: code shape (name, n, k, check supports)
 * plus both order families. Equal schedules of equal codes hash equal
 * across processes; used as the artifact-cache key component.
 */
uint64_t hashSchedule(const circuit::SmSchedule &schedule);

/** Engine construction knobs. */
struct EngineOptions
{
    /** Reuse compiled circuits/DEMs/decoders across requests. */
    bool cacheEnabled = true;
    /** FIFO capacity of each cache layer (0 = unbounded). */
    std::size_t maxCacheEntries = 256;
    /** Dispatcher threads draining submit()'s job queue. */
    std::size_t asyncWorkers = 1;
    /** Decode-service knobs (pool sizing, coalescing, shot reuse). */
    DecodeServiceOptions service;
};

/** The unified workload engine. */
class Engine
{
  public:
    explicit Engine(EngineOptions opts = {});
    ~Engine();
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Measure one schedule's combined memory-Z/X LER. Bit-identical to
     * decoder::measureMemoryLer at the same request parameters. */
    LerResult run(const LerRequest &req);

    /** Run a physical-error-rate sweep (adaptive if req.sprt.enabled). */
    SweepResult run(const SweepRequest &req);

    /** Run the PropHunt optimizer. */
    OptimizeResult run(const OptimizeRequest &req);

    /** Naming alias: sweeps read better as engine.sweep(req). */
    SweepResult
    sweep(const SweepRequest &req)
    {
        return run(req);
    }

    /** Enqueue a request onto the dispatcher pool; returns its future. */
    std::future<LerResult> submit(LerRequest req);
    std::future<SweepResult> submit(SweepRequest req);
    std::future<OptimizeResult> submit(OptimizeRequest req);

    struct CacheStats
    {
        std::size_t circuitEntries = 0;
        std::size_t demEntries = 0;
        std::size_t hits = 0;
        std::size_t misses = 0;
    };
    CacheStats cacheStats() const;
    void clearCache();

    /** Decode-service lifetime counters (coalescing, steals, reuse). */
    DecodeServiceStats serviceStats() const;

  private:
    /**
     * A compiled circuit plus the schedule it came from. Cache keys carry
     * only a 64-bit schedule hash; the stored schedule is compared on
     * every hit so a hash collision degrades to a rebuild, never to
     * silently serving another schedule's artifacts.
     */
    struct CircuitEntry
    {
        circuit::SmSchedule schedule;
        std::shared_ptr<const circuit::SmCircuit> circuit;
    };

    /** A built DEM plus the decoder prototype runs clone from. */
    struct DemEntry
    {
        circuit::SmSchedule schedule;
        sim::Dem dem;
        std::unique_ptr<decoder::Decoder> prototype;
    };

    /** What one measurement borrows: the shared DEM entry plus its cache
     * key — the decode service's coalescing/reuse identity. Decoder
     * clones are checked out inside the service per shard. */
    struct Artifact
    {
        std::string demKey;
        std::shared_ptr<const DemEntry> entry;
    };

    std::shared_ptr<const circuit::SmCircuit>
    circuitFor(const std::string &key, const circuit::SmSchedule &schedule,
               std::size_t rounds, circuit::MemoryBasis basis,
               std::size_t flag_weight, Telemetry &telemetry);

    Artifact artifactFor(const circuit::SmSchedule &schedule,
                         std::size_t rounds, circuit::MemoryBasis basis,
                         const sim::NoiseModel &noise,
                         const decoder::DecoderSpec &spec,
                         std::size_t flag_weight, Telemetry &telemetry);

    /**
     * Compute every owned, still-pending cell of sweep point @p pi in
     * canonical chunk order, recording completed tallies into
     * @p pointCp. @p cellCommitted fires after each newly completed
     * cell (the checkpoint-write hook); @p interrupted is set when
     * req.cancel stopped the point before its owned cells finished.
     * Packed-decode stats of the freshly computed cells accumulate into
     * @p zPacked / @p xPacked.
     */
    void sweepPointCells(const SweepRequest &req, const SweepGrid &grid,
                         std::size_t pi, SweepPointCheckpoint &pointCp,
                         Telemetry &telemetry,
                         decoder::PackedDecodeStats &zPacked,
                         decoder::PackedDecodeStats &xPacked,
                         const std::function<void()> &cellCommitted,
                         bool &interrupted);

    /** Run one basis measurement through the decode service and fold the
     * outcome's telemetry into @p telemetry. */
    decoder::LerResult serviceMeasure(const Artifact &art, std::size_t shots,
                                      uint64_t seed,
                                      const decoder::LerOptions &ler,
                                      const std::atomic<bool> *cancel,
                                      Telemetry &telemetry);

    template <class Result, class Request>
    std::future<Result> enqueue(Request req);
    void startWorkersLocked();

    EngineOptions opts_;
    DecodeService service_;

    mutable std::mutex cacheMutex_;
    std::map<std::string, CircuitEntry> circuitCache_;
    std::deque<std::string> circuitOrder_;
    std::map<std::string, std::shared_ptr<const DemEntry>> demCache_;
    std::deque<std::string> demOrder_;
    std::size_t cacheHits_ = 0;
    std::size_t cacheMisses_ = 0;

    std::mutex jobMutex_;
    std::condition_variable jobCv_;
    std::deque<std::function<void()>> jobs_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace prophunt::api

#endif // PROPHUNT_API_ENGINE_H
