/**
 * @file
 * Decode-as-a-service: persistent lane pools with request coalescing.
 *
 * The PR 4/5 lane engine tore its workers down after every request and
 * refilled from a single per-request shard queue. DecodeService turns
 * that into a long-lived server core:
 *
 *  - shard execution runs on a persistent sim::WorkerPool (the shared
 *    process pool by default, or a dedicated pool for isolation), so
 *    threads never tear down between requests and idle workers pull
 *    shards from whichever request has work — work stealing across
 *    concurrent requests falls out of the pool's run queue;
 *  - each decode key (DEM + decoder spec + noise, as baked into the
 *    engine's artifact key) owns a lane group: a checkout list of warm
 *    decoder clones that all share the read-only Tanner CSR
 *    (decoder::BpOsdDecoder clones alias one immutable Tanner), so a
 *    request admitted for a warm key decodes without paying clone
 *    construction, let alone graph construction;
 *  - concurrent requests for the same key coalesce into one lane
 *    stream: they share the lane group's clones and interleave their
 *    shards in the same pool. Results still split deterministically
 *    per request because every request's shards are seeded from its own
 *    SplitMix64 range (sim::shardSeed(seed, shard)) — the answer is
 *    bit-identical to a serial run at any thread count and any arrival
 *    order;
 *  - completed shard tallies (failures + packed-decode stats per shard
 *    seed) are recorded under a FIFO-bounded key so later requests —
 *    or coalesced concurrent ones — satisfy part of their shot budget
 *    without re-decoding. Reuse is bit-exact by construction: a tally
 *    is only consulted when its (key, seed, shard size) tuple matches
 *    exactly, and shard results do not depend on which thread or clone
 *    produced them.
 *
 * Determinism contract: measure() returns exactly what
 * decoder::measureDemLer(dem, clone, shots, seed, ler) returns for the
 * same inputs, for every thread count, coalescing state, and cache
 * state. Early stopping uses the same contiguous-prefix accounting;
 * cancellation truncates to a contiguous shard prefix (each prefix
 * being a valid smaller run of the same stream).
 */
#ifndef PROPHUNT_API_DECODE_SERVICE_H
#define PROPHUNT_API_DECODE_SERVICE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "decoder/decoder.h"
#include "decoder/logical_error.h"
#include "sim/dem.h"
#include "sim/parallel_sampler.h"

namespace prophunt::api {

/** DecodeService construction knobs. */
struct DecodeServiceOptions
{
    /**
     * Dedicated pool workers; 0 (the default) shares the process-wide
     * sim::WorkerPool. A dedicated pool isolates the service's decode
     * traffic (and makes pool-side behavior observable in tests even on
     * small machines).
     */
    std::size_t threads = 0;
    /** Let same-key concurrent requests share one lane group. */
    bool coalesce = true;
    /** Record and reuse per-shard tallies across requests. */
    bool reuseShots = true;
    /** FIFO bound on distinct tally keys (0 = unbounded). Each key holds
     * the tallies of one (decode key, seed, shard size) stream. */
    std::size_t maxTallyKeys = 64;
    /** FIFO bound on warm lane groups (0 = unbounded). */
    std::size_t maxLaneGroups = 16;
};

/**
 * One decode job: a DEM + decoder prototype (borrowed from the caller's
 * artifact cache) and a shot budget.
 *
 * Jobs with equal @p key MUST describe bit-identical decode problems —
 * the key is the coalescing and reuse identity. @p keepAlive guards
 * that contract: it pins the artifacts alive and is compared by pointer
 * identity before any cached lane group or tally is trusted, so a
 * 64-bit key collision or a rebuilt artifact degrades to a cold start,
 * never to wrong reuse.
 */
struct DecodeJob
{
    std::string key;
    const sim::Dem *dem = nullptr;
    const decoder::Decoder *prototype = nullptr;
    /** Owner of @p dem / @p prototype (identity guard, lifetime pin). */
    std::shared_ptr<const void> keepAlive;
    /** Shot budget of this request. */
    std::size_t shots = 0;
    /** Master seed; shard i samples with sim::shardSeed(seed, i). */
    uint64_t seed = 1;
    /** threads / maxFailures / shardShots, as decoder::measureDemLer. */
    decoder::LerOptions ler;
    /**
     * Optional cancellation flag. Once set, no further shards are
     * claimed; already-claimed shards complete, and the result is the
     * contiguous completed shard prefix (a valid smaller run).
     */
    const std::atomic<bool> *cancel = nullptr;
    /** Record this run's shard tallies for later reuse. */
    bool record = true;
};

/** What measure() hands back: the LER tally plus service telemetry. */
struct DecodeOutcome
{
    decoder::LerResult result;
    /** Shots of the accounted result satisfied from recorded tallies. */
    std::size_t reusedShots = 0;
    /** Admitted while another request with the same key was in flight. */
    bool coalesced = false;
    /** Shards of this request a thread decoded right after serving a
     * different request stream. */
    std::size_t steals = 0;
    /** Pending shard-queue depth at admission (this request included). */
    std::size_t queueDepth = 0;
};

/** Monotone service-lifetime counters (tallyKeys/laneGroups are
 * point-in-time sizes). */
struct DecodeServiceStats
{
    std::size_t requests = 0;
    std::size_t coalescedRequests = 0;
    std::size_t steals = 0;
    std::size_t reusedShots = 0;
    std::size_t decodedShards = 0;
    std::size_t peakQueueDepth = 0;
    /** Shard decoder checkouts served by a warm clone vs a fresh
     * prototype->clone(). */
    std::size_t cloneHits = 0;
    std::size_t cloneMisses = 0;
    std::size_t tallyKeys = 0;
    std::size_t laneGroups = 0;
};

/**
 * The persistent decode core behind api::Engine's LER paths.
 *
 * Thread safety: measure(), stats(), and clear() may be called
 * concurrently from any number of threads.
 */
class DecodeService
{
  public:
    explicit DecodeService(DecodeServiceOptions opts = {});
    ~DecodeService();
    DecodeService(const DecodeService &) = delete;
    DecodeService &operator=(const DecodeService &) = delete;

    /**
     * Run one decode job to completion (blocking). Bit-identical to
     * decoder::measureDemLer on the same (dem, prototype clone, shots,
     * seed, ler) regardless of thread count, arrival order, coalescing,
     * or tally reuse. Throws std::invalid_argument on invalid DEM
     * probabilities (before any shard is queued).
     */
    DecodeOutcome measure(const DecodeJob &job);

    DecodeServiceStats stats() const;

    /** Drop all warm lane groups and recorded tallies. */
    void clear();

  private:
    /** Warm decoder clones of one decode key. */
    struct LaneGroup
    {
        std::shared_ptr<const void> owner;
        std::vector<std::unique_ptr<decoder::Decoder>> idle;
    };

    /** Bit-exact result of one decoded shard. */
    struct ShardTally
    {
        std::size_t shots = 0; ///< 0 = not recorded.
        std::size_t failures = 0;
        decoder::PackedDecodeStats stats;
    };

    /** Recorded tallies of one (key, seed, shard size) stream. */
    struct TallyEntry
    {
        std::shared_ptr<const void> owner;
        std::vector<ShardTally> shards; ///< Indexed by shard number.
    };

    sim::WorkerPool &pool();
    std::size_t defaultSlotCap() const;
    std::shared_ptr<LaneGroup> groupForLocked(const DecodeJob &job);
    std::shared_ptr<TallyEntry> tallyForLocked(const std::string &tally_key,
                                               const DecodeJob &job,
                                               bool create);
    std::unique_ptr<decoder::Decoder> checkout(LaneGroup &group,
                                               const DecodeJob &job);
    void giveBack(LaneGroup &group, std::unique_ptr<decoder::Decoder> dec);

    DecodeServiceOptions opts_;
    /** Dedicated pool (opts_.threads > 0); otherwise WorkerPool::shared()
     * serves the shards. */
    std::unique_ptr<sim::WorkerPool> pool_;

    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<LaneGroup>> groups_;
    std::deque<std::string> groupOrder_;
    std::map<std::string, std::shared_ptr<TallyEntry>> tallies_;
    std::deque<std::string> tallyOrder_;
    /** In-flight requests per key (coalescing detection). */
    std::map<std::string, std::size_t> activeKeys_;
    std::size_t pendingShards_ = 0;
    DecodeServiceStats stats_;
};

} // namespace prophunt::api

#endif // PROPHUNT_API_DECODE_SERVICE_H
