#include "api/decode_service.h"

#include <algorithm>
#include <cstdio>

#include "sim/frame_sampler.h"

namespace prophunt::api {

namespace {

/**
 * Stream tag of the last shard this thread decoded. A thread whose next
 * shard belongs to a different stream "stole" it in the classic sense:
 * it finished one request's work and moved onto another's queue. Tags
 * are only compared, never dereferenced, so a recycled address can at
 * worst miscount one steal — acceptable for a telemetry counter.
 */
thread_local const void *tlLastStream = nullptr;

} // namespace

DecodeService::DecodeService(DecodeServiceOptions opts) : opts_(opts)
{
    if (opts_.threads > 0) {
        pool_ = std::make_unique<sim::WorkerPool>(opts_.threads);
    }
}

DecodeService::~DecodeService() = default;

sim::WorkerPool &
DecodeService::pool()
{
    return pool_ ? *pool_ : sim::WorkerPool::shared();
}

std::size_t
DecodeService::defaultSlotCap() const
{
    // One caller plus every pool worker; the shared pool is sized
    // hardware_concurrency() - 1, so both branches saturate the machine.
    return pool_ ? pool_->threadCount() + 1 : sim::resolveThreads(0);
}

std::shared_ptr<DecodeService::LaneGroup>
DecodeService::groupForLocked(const DecodeJob &job)
{
    auto it = groups_.find(job.key);
    if (it != groups_.end()) {
        if (it->second->owner.get() == job.keepAlive.get()) {
            return it->second;
        }
        // The key re-bound to a rebuilt artifact (or a 64-bit key
        // collision): drop the stale clones, adopt the new owner.
        it->second = std::make_shared<LaneGroup>();
        it->second->owner = job.keepAlive;
        return it->second;
    }
    auto group = std::make_shared<LaneGroup>();
    group->owner = job.keepAlive;
    groups_.emplace(job.key, group);
    groupOrder_.push_back(job.key);
    if (opts_.maxLaneGroups != 0 && groupOrder_.size() > opts_.maxLaneGroups) {
        groups_.erase(groupOrder_.front());
        groupOrder_.pop_front();
    }
    return group;
}

std::shared_ptr<DecodeService::TallyEntry>
DecodeService::tallyForLocked(const std::string &tally_key,
                              const DecodeJob &job, bool create)
{
    auto it = tallies_.find(tally_key);
    if (it != tallies_.end()) {
        if (it->second->owner.get() == job.keepAlive.get()) {
            return it->second;
        }
        if (!create) {
            return nullptr;
        }
        it->second = std::make_shared<TallyEntry>();
        it->second->owner = job.keepAlive;
        return it->second;
    }
    if (!create) {
        return nullptr;
    }
    auto entry = std::make_shared<TallyEntry>();
    entry->owner = job.keepAlive;
    tallies_.emplace(tally_key, entry);
    tallyOrder_.push_back(tally_key);
    if (opts_.maxTallyKeys != 0 && tallyOrder_.size() > opts_.maxTallyKeys) {
        tallies_.erase(tallyOrder_.front());
        tallyOrder_.pop_front();
    }
    return entry;
}

std::unique_ptr<decoder::Decoder>
DecodeService::checkout(LaneGroup &group, const DecodeJob &job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!group.idle.empty()) {
            auto dec = std::move(group.idle.back());
            group.idle.pop_back();
            ++stats_.cloneHits;
            return dec;
        }
        ++stats_.cloneMisses;
    }
    // Clone outside the lock: a BP+OSD scratch copy is large and must
    // not serialize the whole service (the shared Tanner CSR itself is
    // not copied — clones alias it).
    return job.prototype->clone();
}

void
DecodeService::giveBack(LaneGroup &group,
                        std::unique_ptr<decoder::Decoder> dec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    group.idle.push_back(std::move(dec));
}

DecodeOutcome
DecodeService::measure(const DecodeJob &job)
{
    DecodeOutcome out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.requests;
    }
    if (job.shots == 0) {
        // Well-formed empty run: nothing admitted, nothing recorded.
        return out;
    }
    // Throw in the caller before any shard reaches a pool thread.
    sim::validateDemProbabilities(*job.dem, "DecodeService::measure");

    // The exact shard plan of measureDemLer: a shard larger than the run
    // is one shard, so shard seeds match an exact-fit plan.
    sim::ShardPlan plan{job.shots, std::min(std::max<std::size_t>(
                                                job.ler.shardShots, 1),
                                            job.shots)};
    std::size_t n = plan.numShards();

    // Tally streams are identified by (decode key, master seed, shard
    // size): only an exactly matching tuple may exchange shard results.
    char suffix[48];
    std::snprintf(suffix, sizeof suffix, "|s%016llx|w%zu",
                  (unsigned long long)job.seed, plan.shardShots);
    std::string tallyKey = job.key + suffix;

    std::vector<std::size_t> shardFailures(n, 0);
    std::vector<decoder::PackedDecodeStats> shardStats(n);
    std::vector<uint8_t> shardDone(n, 0);
    std::vector<uint8_t> shardReused(n, 0);
    std::vector<std::size_t> todo;
    todo.reserve(n);

    std::shared_ptr<LaneGroup> group;
    std::shared_ptr<TallyEntry> tally;
    LaneGroup privateGroup; // coalescing off: per-request clone set.

    // Admission: coalescing bookkeeping, lane-group checkout, and the
    // tally-prefix scan happen under one lock so concurrent same-key
    // requests see a consistent picture.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::size_t &active = activeKeys_[job.key];
        out.coalesced = opts_.coalesce && active > 0;
        if (out.coalesced) {
            ++stats_.coalescedRequests;
        }
        ++active;
        if (opts_.coalesce) {
            group = groupForLocked(job);
        }
        if (opts_.reuseShots) {
            tally = tallyForLocked(tallyKey, job, job.record);
        }
        for (std::size_t shard = 0; shard < n; ++shard) {
            if (tally && shard < tally->shards.size() &&
                tally->shards[shard].shots == plan.shotsOf(shard)) {
                shardFailures[shard] = tally->shards[shard].failures;
                shardStats[shard] = tally->shards[shard].stats;
                shardDone[shard] = 1;
                shardReused[shard] = 1;
            } else {
                todo.push_back(shard);
            }
        }
        pendingShards_ += todo.size();
        out.queueDepth = pendingShards_;
        stats_.peakQueueDepth =
            std::max(stats_.peakQueueDepth, pendingShards_);
    }

    // Per-run completion state (caller stack, own lock): the contiguous
    // completed prefix drives early stopping exactly as measureDemLer.
    std::mutex runMutex;
    std::size_t prefixEnd = 0;
    std::size_t prefixFailures = 0;
    while (prefixEnd < n && shardDone[prefixEnd]) {
        prefixFailures += shardFailures[prefixEnd];
        ++prefixEnd;
    }
    bool targetMet = job.ler.maxFailures != 0 &&
                     prefixFailures >= job.ler.maxFailures;
    bool cancelled =
        job.cancel != nullptr && job.cancel->load(std::memory_order_relaxed);

    std::atomic<bool> stopFlag{false};
    std::size_t executed = 0;
    std::atomic<std::size_t> steals{0};

    if (!todo.empty() && !targetMet && !cancelled) {
        std::size_t cap = job.ler.threads != 0
                              ? sim::resolveThreads(job.ler.threads)
                              : defaultSlotCap();
        std::size_t maxSlots = std::min(cap, todo.size());
        std::vector<sim::FrameBatch> frameScratch(maxSlots);
        std::vector<decoder::FrameShardScratch> decodeScratch(maxSlots);
        const void *streamTag =
            group ? (const void *)group.get() : (const void *)&privateGroup;
        LaneGroup &lanes = group ? *group : privateGroup;

        pool().run(
            todo.size(), maxSlots,
            [&](std::size_t t, std::size_t slot) {
                if (job.cancel != nullptr &&
                    job.cancel->load(std::memory_order_relaxed)) {
                    stopFlag.store(true, std::memory_order_relaxed);
                    return;
                }
                std::size_t shard = todo[t];
                bool stolen = tlLastStream != nullptr &&
                              tlLastStream != streamTag;
                tlLastStream = streamTag;

                auto dec = checkout(lanes, job);
                sim::FrameBatch &frames = frameScratch[slot];
                sim::sampleDemFramesInto(*job.dem, plan.shotsOf(shard),
                                         sim::shardSeed(job.seed, shard),
                                         frames);
                decoder::FrameShardScratch &ws = decodeScratch[slot];
                std::size_t failures =
                    decoder::decodeFrameShard(*dec, frames, ws);
                giveBack(lanes, std::move(dec));

                {
                    std::lock_guard<std::mutex> lock(runMutex);
                    shardFailures[shard] = failures;
                    shardStats[shard] = ws.stats;
                    shardDone[shard] = 1;
                    ++executed;
                    while (prefixEnd < n && shardDone[prefixEnd]) {
                        prefixFailures += shardFailures[prefixEnd];
                        ++prefixEnd;
                    }
                    if (job.ler.maxFailures != 0 &&
                        prefixFailures >= job.ler.maxFailures) {
                        stopFlag.store(true, std::memory_order_relaxed);
                    }
                }
                if (stolen) {
                    steals.fetch_add(1, std::memory_order_relaxed);
                }
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (pendingShards_ > 0) {
                        --pendingShards_;
                    }
                    ++stats_.decodedShards;
                    if (tally && job.record) {
                        if (tally->shards.size() <= shard) {
                            tally->shards.resize(shard + 1);
                        }
                        tally->shards[shard] =
                            ShardTally{plan.shotsOf(shard), failures,
                                       ws.stats};
                    }
                }
            },
            &stopFlag);
    }
    out.steals = steals.load(std::memory_order_relaxed);

    // Deterministic accounting: identical to measureDemLer's walk —
    // shards in index order, truncated at the first gap or at the shard
    // whose cumulative failures reach the early-stop target.
    decoder::LerResult &result = out.result;
    for (std::size_t shard = 0; shard < n; ++shard) {
        if (!shardDone[shard]) {
            break;
        }
        result.shots += plan.shotsOf(shard);
        result.failures += shardFailures[shard];
        result.packed += shardStats[shard];
        if (shardReused[shard]) {
            out.reusedShots += plan.shotsOf(shard);
        }
        if (job.ler.maxFailures != 0 &&
            result.failures >= job.ler.maxFailures) {
            result.earlyStopped = shard + 1 < n;
            break;
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Shards never claimed (early stop / cancel) leave the queue.
        pendingShards_ -= std::min(pendingShards_, todo.size() - executed);
        stats_.steals += out.steals;
        stats_.reusedShots += out.reusedShots;
        auto it = activeKeys_.find(job.key);
        if (it != activeKeys_.end() && --it->second == 0) {
            activeKeys_.erase(it);
        }
    }
    return out;
}

DecodeServiceStats
DecodeService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    DecodeServiceStats s = stats_;
    s.tallyKeys = tallies_.size();
    s.laneGroups = groups_.size();
    return s;
}

void
DecodeService::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    groups_.clear();
    groupOrder_.clear();
    tallies_.clear();
    tallyOrder_.clear();
}

} // namespace prophunt::api
