/**
 * @file
 * One configuration layer for the experiment harness.
 *
 * Replaces the duplicated phbench::env* helpers and phcli's hand-rolled
 * --threads parsing: every binary builds a Config from the environment,
 * optionally overlays command-line flags, and derives LerOptions /
 * PropHuntOptions from it. Recognized environment variables (all
 * optional):
 *
 *   PROPHUNT_SHOTS        Monte-Carlo shots per (circuit, p) point (20000)
 *   PROPHUNT_ITERS        PropHunt iterations (6)
 *   PROPHUNT_SAMPLES      Subgraph samples per iteration (200)
 *   PROPHUNT_SAT_TIMEOUT  Seconds per MaxSAT solve (60)
 *   PROPHUNT_FULL         If set, include the largest codes in sweeps
 *   PROPHUNT_THREADS      Worker threads (0 = hardware concurrency)
 *   PROPHUNT_MAX_FAILURES Early-stop failure target per LER run (0 = off)
 *   PROPHUNT_ZNE_TRIALS   Trials per ZNE bias estimate (200)
 *   PROPHUNT_BENCH_REPS   Best-of-N repetitions in timing benches (3)
 *   PROPHUNT_BENCH_OUT    Output path for BENCH_*.json artifacts
 */
#ifndef PROPHUNT_API_CONFIG_H
#define PROPHUNT_API_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "decoder/logical_error.h"
#include "prophunt/optimizer.h"

namespace prophunt::api {

/** std::getenv as a size_t, with a default. */
std::size_t envSize(const char *name, std::size_t def);

/** std::getenv as a double, with a default. */
double envDouble(const char *name, double def);

/** True iff the variable is set (to anything). */
bool envFlag(const char *name);

/** Harness configuration: env defaults overlaid by CLI flags. */
struct Config
{
    std::size_t shots = 20000;
    std::size_t iterations = 6;
    std::size_t samplesPerIteration = 200;
    double satTimeoutSeconds = 60.0;
    bool full = false;
    /** Worker threads; 0 = hardware concurrency (the global default). */
    std::size_t threads = 0;
    std::size_t maxFailures = 0;
    std::size_t zneTrials = 200;
    std::size_t benchReps = 3;
    std::string benchOut;

    /** Defaults overridden by PROPHUNT_* environment variables. */
    static Config fromEnv();

    /**
     * Strip recognized flags from argv (adjusting argc) and overlay them:
     * --threads N, --shots N, --max-failures N. Unrecognized arguments
     * are left in place for the caller.
     */
    void applyArgs(int &argc, char **argv);

    /** LER-engine knobs (threads, early stop) from this configuration. */
    decoder::LerOptions lerOptions() const;

    /** Optimizer knobs sharing the same thread-pool configuration. */
    core::PropHuntOptions propHuntOptions(uint64_t seed) const;
};

} // namespace prophunt::api

#endif // PROPHUNT_API_CONFIG_H
