#include "api/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "circuit/flags.h"
#include "circuit/sm_circuit.h"
#include "sim/dem_builder.h"
#include "sim/parallel_sampler.h"

namespace prophunt::api {

namespace {

uint64_t
now_us()
{
    return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
fnv(uint64_t &h, uint64_t v)
{
    // FNV-1a over the value's 8 bytes.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
}

void
fnvStr(uint64_t &h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    fnv(h, s.size());
}

/** Full schedule identity, used to verify hash-keyed cache hits. */
bool
sameSchedule(const circuit::SmSchedule &a, const circuit::SmSchedule &b)
{
    return a.code().name() == b.code().name() &&
           a.code().n() == b.code().n() &&
           a.code().numChecks() == b.code().numChecks() && a == b;
}

std::string
noiseKey(const sim::NoiseModel &noise)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%.17g,%.17g,%.17g", noise.p1, noise.p2,
                  noise.pIdle);
    return buf;
}

} // namespace

uint64_t
hashSchedule(const circuit::SmSchedule &schedule)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    const code::CssCode &code = schedule.code();
    fnvStr(h, code.name());
    fnv(h, code.n());
    fnv(h, code.k());
    fnv(h, code.numChecks());
    for (std::size_t c = 0; c < code.numChecks(); ++c) {
        for (std::size_t q : code.checkSupport(c)) {
            fnv(h, q);
        }
        fnv(h, 0xdeadULL); // Check separator.
        for (std::size_t q : schedule.checkOrder(c)) {
            fnv(h, q);
        }
        fnv(h, 0xbeefULL);
    }
    for (std::size_t q = 0; q < code.n(); ++q) {
        for (std::size_t c : schedule.qubitOrder(q)) {
            fnv(h, c);
        }
        fnv(h, 0xfeedULL);
    }
    return h;
}

Engine::Engine(EngineOptions opts) : opts_(opts), service_(opts.service) {}

Engine::~Engine()
{
    {
        std::lock_guard<std::mutex> lock(jobMutex_);
        stopping_ = true;
    }
    jobCv_.notify_all();
    for (std::thread &w : workers_) {
        w.join();
    }
}

std::shared_ptr<const circuit::SmCircuit>
Engine::circuitFor(const std::string &key,
                   const circuit::SmSchedule &schedule, std::size_t rounds,
                   circuit::MemoryBasis basis, std::size_t flag_weight,
                   Telemetry &telemetry)
{
    if (opts_.cacheEnabled) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = circuitCache_.find(key);
        if (it != circuitCache_.end() &&
            sameSchedule(it->second.schedule, schedule)) {
            ++cacheHits_;
            ++telemetry.cacheHits;
            return it->second.circuit;
        }
    }
    uint64_t t0 = now_us();
    auto circuit = std::make_shared<const circuit::SmCircuit>(
        flag_weight == 0
            ? circuit::buildMemoryCircuit(schedule, rounds, basis)
            : circuit::buildFlaggedMemoryCircuit(schedule, rounds, basis,
                                                 flag_weight));
    telemetry.buildUs += now_us() - t0;
    ++telemetry.cacheMisses;
    if (opts_.cacheEnabled) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        ++cacheMisses_;
        // A racing builder may have inserted the key meanwhile; keep the
        // first entry so every borrower shares one artifact. A key held
        // by a *different* schedule (64-bit hash collision) keeps its
        // entry too — the colliding schedule just rebuilds uncached.
        auto [it, inserted] = circuitCache_.emplace(
            key, CircuitEntry{schedule, circuit});
        if (inserted) {
            circuitOrder_.push_back(key);
            if (opts_.maxCacheEntries != 0 &&
                circuitOrder_.size() > opts_.maxCacheEntries) {
                circuitCache_.erase(circuitOrder_.front());
                circuitOrder_.pop_front();
            }
        }
        if (sameSchedule(it->second.schedule, schedule)) {
            return it->second.circuit;
        }
    }
    return circuit;
}

Engine::Artifact
Engine::artifactFor(const circuit::SmSchedule &schedule, std::size_t rounds,
                    circuit::MemoryBasis basis,
                    const sim::NoiseModel &noise,
                    const decoder::DecoderSpec &spec,
                    std::size_t flag_weight, Telemetry &telemetry)
{
    char circuitKey[80];
    std::snprintf(circuitKey, sizeof circuitKey, "c%016llx|r%zu|b%d|f%zu",
                  (unsigned long long)hashSchedule(schedule), rounds,
                  basis == circuit::MemoryBasis::Z ? 0 : 1, flag_weight);
    std::string demKey = std::string(circuitKey) + "|n" + noiseKey(noise) +
                         "|d" + spec.describe();

    if (opts_.cacheEnabled) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = demCache_.find(demKey);
        if (it != demCache_.end() &&
            sameSchedule(it->second->schedule, schedule)) {
            ++cacheHits_;
            ++telemetry.cacheHits;
            // No decoder clone here: the decode service checks warm
            // clones out of the key's lane group per shard.
            return {std::move(demKey), it->second};
        }
    }

    auto circuit = circuitFor(circuitKey, schedule, rounds, basis,
                              flag_weight, telemetry);
    uint64_t t0 = now_us();
    sim::Dem dem = sim::buildDem(*circuit, noise);
    auto prototype = decoder::Registry::make(spec, dem, *circuit);
    auto entry = std::make_shared<DemEntry>(
        DemEntry{schedule, std::move(dem), std::move(prototype)});
    telemetry.buildUs += now_us() - t0;
    ++telemetry.cacheMisses;
    std::shared_ptr<const DemEntry> shared = entry;
    if (opts_.cacheEnabled) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        ++cacheMisses_;
        auto [it, inserted] = demCache_.emplace(demKey, shared);
        if (inserted) {
            demOrder_.push_back(demKey);
            if (opts_.maxCacheEntries != 0 &&
                demOrder_.size() > opts_.maxCacheEntries) {
                demCache_.erase(demOrder_.front());
                demOrder_.pop_front();
            }
        }
        // On a hash collision the first entry stays; this request keeps
        // its privately built artifacts.
        if (sameSchedule(it->second->schedule, schedule)) {
            shared = it->second;
        }
    }
    return {std::move(demKey), std::move(shared)};
}

decoder::LerResult
Engine::serviceMeasure(const Artifact &art, std::size_t shots, uint64_t seed,
                       const decoder::LerOptions &ler,
                       const std::atomic<bool> *cancel, Telemetry &telemetry)
{
    DecodeJob job;
    job.key = art.demKey;
    job.dem = &art.entry->dem;
    job.prototype = art.entry->prototype.get();
    job.keepAlive = art.entry;
    job.shots = shots;
    job.seed = seed;
    job.ler = ler;
    job.cancel = cancel;
    uint64_t t0 = now_us();
    DecodeOutcome o = service_.measure(job);
    telemetry.decodeUs += now_us() - t0;
    telemetry.shots += o.result.shots;
    telemetry.packed += o.result.packed;
    telemetry.reusedShots += o.reusedShots;
    telemetry.coalescedRequests += o.coalesced ? 1 : 0;
    telemetry.workSteals += o.steals;
    telemetry.queueDepth = std::max(telemetry.queueDepth, o.queueDepth);
    return o.result;
}

LerResult
Engine::run(const LerRequest &req)
{
    LerResult out;
    if (req.shots == 0) {
        // A zero-shot request has a well-formed empty answer; skip the
        // artifact build so the telemetry stays zeroed too.
        return out;
    }
    for (auto basis : {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
        Artifact art =
            artifactFor(req.schedule, req.rounds, basis, req.noise,
                        req.decoder, req.flagWeight, out.telemetry);
        decoder::LerResult r = serviceMeasure(
            art, req.shots, decoder::memoryBasisSeed(req.seed, basis),
            req.ler, req.cancel, out.telemetry);
        (basis == circuit::MemoryBasis::Z ? out.memory.z : out.memory.x) =
            r;
    }
    return out;
}

SweepPointResult
Engine::sweepPoint(const SweepRequest &req, double p)
{
    SweepPointResult pt;
    pt.p = p;
    sim::NoiseModel noise = sim::NoiseModel::withIdle(p, req.pIdle);

    if (req.shotsPerPoint == 0) {
        // No data: a well-formed empty point with no decision and zeroed
        // telemetry (mirrors the zero-shot LerRequest contract).
        return pt;
    }

    if (!req.sprt.enabled) {
        LerRequest lr(req.schedule);
        lr.rounds = req.rounds;
        lr.noise = noise;
        lr.decoder = req.decoder;
        lr.shots = req.shotsPerPoint;
        lr.seed = req.seed;
        lr.ler = req.ler;
        lr.flagWeight = req.flagWeight;
        LerResult r = run(lr);
        pt.memory = r.memory;
        pt.telemetry = r.telemetry;
        pt.decision = req.sprt.decisionLer > 0.0
                          ? SprtTest::fixedDecision(r.ler(), req.sprt)
                          : SprtDecision::None;
        return pt;
    }

    SprtTest test(req.sprt);
    Artifact artZ =
        artifactFor(req.schedule, req.rounds, circuit::MemoryBasis::Z,
                    noise, req.decoder, req.flagWeight, pt.telemetry);
    Artifact artX =
        artifactFor(req.schedule, req.rounds, circuit::MemoryBasis::X,
                    noise, req.decoder, req.flagWeight, pt.telemetry);

    // Chunk seeds come from their own SplitMix64 stream, so adaptive runs
    // stay deterministic (and thread-count independent, chunk by chunk)
    // without colliding with the fixed-budget path's shard seeds.
    uint64_t chunkState = req.seed ^ 0xc4ceb9fe1a85ec53ULL;
    // chunkShots = 0 would never advance `done`; treat it as 1.
    std::size_t chunkShots =
        std::max<std::size_t>(1, req.sprt.chunkShots);
    std::size_t done = 0;
    pt.decision = SprtDecision::Undecided;
    while (done < req.shotsPerPoint) {
        std::size_t chunk = std::min(chunkShots, req.shotsPerPoint - done);
        uint64_t chunkSeed = sim::splitMix64(chunkState);
        for (auto basis :
             {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
            Artifact &art =
                basis == circuit::MemoryBasis::Z ? artZ : artX;
            decoder::LerResult r = serviceMeasure(
                art, chunk, decoder::memoryBasisSeed(chunkSeed, basis),
                req.ler, nullptr, pt.telemetry);
            decoder::LerResult &acc = basis == circuit::MemoryBasis::Z
                                          ? pt.memory.z
                                          : pt.memory.x;
            acc.shots += r.shots;
            acc.failures += r.failures;
            acc.packed += r.packed;
        }
        done += chunk;
        std::size_t trials = (pt.memory.z.shots + pt.memory.x.shots) / 2;
        std::size_t failures =
            pt.memory.z.failures + pt.memory.x.failures;
        SprtDecision dec = test.evaluate(trials, failures);
        if (dec != SprtDecision::Undecided) {
            pt.decision = dec;
            pt.memory.z.earlyStopped = pt.memory.x.earlyStopped =
                done < req.shotsPerPoint;
            break;
        }
    }
    // Budget exhausted inside the indifference zone: fall back to the
    // fixed-budget rule so adaptive and fixed sweeps agree everywhere.
    if (pt.decision == SprtDecision::Undecided) {
        pt.decision = SprtTest::fixedDecision(pt.ler(), req.sprt);
    }
    // telemetry.shots accumulated chunk by chunk inside serviceMeasure.
    return pt;
}

SweepResult
Engine::run(const SweepRequest &req)
{
    SweepResult out;
    out.points.reserve(req.ps.size());
    for (double p : req.ps) {
        out.points.push_back(sweepPoint(req, p));
        out.telemetry += out.points.back().telemetry;
    }
    return out;
}

OptimizeResult
Engine::run(const OptimizeRequest &req)
{
    OptimizeResult out;
    uint64_t t0 = now_us();
    core::PropHuntOptions opts = req.options;
    if (req.cancel != nullptr) {
        opts.cancel = req.cancel;
    }
    if (req.portfolio.enabled) {
        out.outcome =
            search::runPortfolio(req.start, req.rounds, opts,
                                 req.portfolio);
    } else {
        core::PropHunt tool(opts);
        out.outcome = tool.optimize(req.start, req.rounds);
    }
    out.telemetry.search = out.outcome.searchReports;
    // The optimizer samples/decodes internally; its whole wall time is
    // reported as decode time.
    out.telemetry.decodeUs += now_us() - t0;
    return out;
}

template <class Result, class Request>
std::future<Result>
Engine::enqueue(Request req)
{
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [this, req = std::move(req)]() { return run(req); });
    std::future<Result> future = task->get_future();
    {
        std::lock_guard<std::mutex> lock(jobMutex_);
        startWorkersLocked();
        jobs_.push_back([task]() { (*task)(); });
    }
    jobCv_.notify_one();
    return future;
}

void
Engine::startWorkersLocked()
{
    if (!workers_.empty()) {
        return;
    }
    std::size_t n = std::max<std::size_t>(1, opts_.asyncWorkers);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this]() {
            for (;;) {
                std::function<void()> job;
                {
                    std::unique_lock<std::mutex> lock(jobMutex_);
                    jobCv_.wait(lock, [this]() {
                        return stopping_ || !jobs_.empty();
                    });
                    if (jobs_.empty()) {
                        return; // stopping_, queue drained.
                    }
                    job = std::move(jobs_.front());
                    jobs_.pop_front();
                }
                job();
            }
        });
    }
}

std::future<LerResult>
Engine::submit(LerRequest req)
{
    return enqueue<LerResult>(std::move(req));
}

std::future<SweepResult>
Engine::submit(SweepRequest req)
{
    return enqueue<SweepResult>(std::move(req));
}

std::future<OptimizeResult>
Engine::submit(OptimizeRequest req)
{
    return enqueue<OptimizeResult>(std::move(req));
}

Engine::CacheStats
Engine::cacheStats() const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return {circuitCache_.size(), demCache_.size(), cacheHits_,
            cacheMisses_};
}

void
Engine::clearCache()
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        circuitCache_.clear();
        circuitOrder_.clear();
        demCache_.clear();
        demOrder_.clear();
    }
    // Warm clones and tallies borrow cache-owned artifacts; dropping the
    // cache without them would only waste memory (identity guards keep
    // correctness either way).
    service_.clear();
}

DecodeServiceStats
Engine::serviceStats() const
{
    return service_.stats();
}

} // namespace prophunt::api
