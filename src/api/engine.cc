#include "api/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "circuit/flags.h"
#include "circuit/sm_circuit.h"
#include "sim/dem_builder.h"
#include "sim/parallel_sampler.h"

namespace prophunt::api {

namespace {

uint64_t
now_us()
{
    return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
fnv(uint64_t &h, uint64_t v)
{
    // FNV-1a over the value's 8 bytes.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
}

void
fnvStr(uint64_t &h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    fnv(h, s.size());
}

/** Full schedule identity, used to verify hash-keyed cache hits. */
bool
sameSchedule(const circuit::SmSchedule &a, const circuit::SmSchedule &b)
{
    return a.code().name() == b.code().name() &&
           a.code().n() == b.code().n() &&
           a.code().numChecks() == b.code().numChecks() && a == b;
}

std::string
noiseKey(const sim::NoiseModel &noise)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%.17g,%.17g,%.17g", noise.p1, noise.p2,
                  noise.pIdle);
    return buf;
}

} // namespace

uint64_t
hashSchedule(const circuit::SmSchedule &schedule)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    const code::CssCode &code = schedule.code();
    fnvStr(h, code.name());
    fnv(h, code.n());
    fnv(h, code.k());
    fnv(h, code.numChecks());
    for (std::size_t c = 0; c < code.numChecks(); ++c) {
        for (std::size_t q : code.checkSupport(c)) {
            fnv(h, q);
        }
        fnv(h, 0xdeadULL); // Check separator.
        for (std::size_t q : schedule.checkOrder(c)) {
            fnv(h, q);
        }
        fnv(h, 0xbeefULL);
    }
    for (std::size_t q = 0; q < code.n(); ++q) {
        for (std::size_t c : schedule.qubitOrder(q)) {
            fnv(h, c);
        }
        fnv(h, 0xfeedULL);
    }
    return h;
}

Engine::Engine(EngineOptions opts) : opts_(opts), service_(opts.service) {}

Engine::~Engine()
{
    {
        std::lock_guard<std::mutex> lock(jobMutex_);
        stopping_ = true;
    }
    jobCv_.notify_all();
    for (std::thread &w : workers_) {
        w.join();
    }
}

std::shared_ptr<const circuit::SmCircuit>
Engine::circuitFor(const std::string &key,
                   const circuit::SmSchedule &schedule, std::size_t rounds,
                   circuit::MemoryBasis basis, std::size_t flag_weight,
                   Telemetry &telemetry)
{
    if (opts_.cacheEnabled) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = circuitCache_.find(key);
        if (it != circuitCache_.end() &&
            sameSchedule(it->second.schedule, schedule)) {
            ++cacheHits_;
            ++telemetry.cacheHits;
            return it->second.circuit;
        }
    }
    uint64_t t0 = now_us();
    auto circuit = std::make_shared<const circuit::SmCircuit>(
        flag_weight == 0
            ? circuit::buildMemoryCircuit(schedule, rounds, basis)
            : circuit::buildFlaggedMemoryCircuit(schedule, rounds, basis,
                                                 flag_weight));
    telemetry.buildUs += now_us() - t0;
    ++telemetry.cacheMisses;
    if (opts_.cacheEnabled) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        ++cacheMisses_;
        // A racing builder may have inserted the key meanwhile; keep the
        // first entry so every borrower shares one artifact. A key held
        // by a *different* schedule (64-bit hash collision) keeps its
        // entry too — the colliding schedule just rebuilds uncached.
        auto [it, inserted] = circuitCache_.emplace(
            key, CircuitEntry{schedule, circuit});
        if (inserted) {
            circuitOrder_.push_back(key);
            if (opts_.maxCacheEntries != 0 &&
                circuitOrder_.size() > opts_.maxCacheEntries) {
                circuitCache_.erase(circuitOrder_.front());
                circuitOrder_.pop_front();
            }
        }
        if (sameSchedule(it->second.schedule, schedule)) {
            return it->second.circuit;
        }
    }
    return circuit;
}

Engine::Artifact
Engine::artifactFor(const circuit::SmSchedule &schedule, std::size_t rounds,
                    circuit::MemoryBasis basis,
                    const sim::NoiseModel &noise,
                    const decoder::DecoderSpec &spec,
                    std::size_t flag_weight, Telemetry &telemetry)
{
    char circuitKey[80];
    std::snprintf(circuitKey, sizeof circuitKey, "c%016llx|r%zu|b%d|f%zu",
                  (unsigned long long)hashSchedule(schedule), rounds,
                  basis == circuit::MemoryBasis::Z ? 0 : 1, flag_weight);
    std::string demKey = std::string(circuitKey) + "|n" + noiseKey(noise) +
                         "|d" + spec.describe();

    if (opts_.cacheEnabled) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = demCache_.find(demKey);
        if (it != demCache_.end() &&
            sameSchedule(it->second->schedule, schedule)) {
            ++cacheHits_;
            ++telemetry.cacheHits;
            // No decoder clone here: the decode service checks warm
            // clones out of the key's lane group per shard.
            return {std::move(demKey), it->second};
        }
    }

    auto circuit = circuitFor(circuitKey, schedule, rounds, basis,
                              flag_weight, telemetry);
    uint64_t t0 = now_us();
    sim::Dem dem = sim::buildDem(*circuit, noise);
    auto prototype = decoder::Registry::make(spec, dem, *circuit);
    auto entry = std::make_shared<DemEntry>(
        DemEntry{schedule, std::move(dem), std::move(prototype)});
    telemetry.buildUs += now_us() - t0;
    ++telemetry.cacheMisses;
    std::shared_ptr<const DemEntry> shared = entry;
    if (opts_.cacheEnabled) {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        ++cacheMisses_;
        auto [it, inserted] = demCache_.emplace(demKey, shared);
        if (inserted) {
            demOrder_.push_back(demKey);
            if (opts_.maxCacheEntries != 0 &&
                demOrder_.size() > opts_.maxCacheEntries) {
                demCache_.erase(demOrder_.front());
                demOrder_.pop_front();
            }
        }
        // On a hash collision the first entry stays; this request keeps
        // its privately built artifacts.
        if (sameSchedule(it->second->schedule, schedule)) {
            shared = it->second;
        }
    }
    return {std::move(demKey), std::move(shared)};
}

decoder::LerResult
Engine::serviceMeasure(const Artifact &art, std::size_t shots, uint64_t seed,
                       const decoder::LerOptions &ler,
                       const std::atomic<bool> *cancel, Telemetry &telemetry)
{
    DecodeJob job;
    job.key = art.demKey;
    job.dem = &art.entry->dem;
    job.prototype = art.entry->prototype.get();
    job.keepAlive = art.entry;
    job.shots = shots;
    job.seed = seed;
    job.ler = ler;
    job.cancel = cancel;
    uint64_t t0 = now_us();
    DecodeOutcome o = service_.measure(job);
    telemetry.decodeUs += now_us() - t0;
    telemetry.shots += o.result.shots;
    telemetry.packed += o.result.packed;
    telemetry.reusedShots += o.reusedShots;
    telemetry.coalescedRequests += o.coalesced ? 1 : 0;
    telemetry.workSteals += o.steals;
    telemetry.queueDepth = std::max(telemetry.queueDepth, o.queueDepth);
    return o.result;
}

LerResult
Engine::run(const LerRequest &req)
{
    LerResult out;
    if (req.shots == 0) {
        // A zero-shot request has a well-formed empty answer; skip the
        // artifact build so the telemetry stays zeroed too.
        return out;
    }
    for (auto basis : {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
        Artifact art =
            artifactFor(req.schedule, req.rounds, basis, req.noise,
                        req.decoder, req.flagWeight, out.telemetry);
        decoder::LerResult r = serviceMeasure(
            art, req.shots, decoder::memoryBasisSeed(req.seed, basis),
            req.ler, req.cancel, out.telemetry);
        (basis == circuit::MemoryBasis::Z ? out.memory.z : out.memory.x) =
            r;
    }
    return out;
}

void
Engine::sweepPointCells(const SweepRequest &req, const SweepGrid &grid,
                        std::size_t pi, SweepPointCheckpoint &pointCp,
                        Telemetry &telemetry,
                        decoder::PackedDecodeStats &zPacked,
                        decoder::PackedDecodeStats &xPacked,
                        const std::function<void()> &cellCommitted,
                        bool &interrupted)
{
    const std::size_t n_chunks = grid.chunksPerPoint();
    if (n_chunks == 0) {
        return; // Zero-shot point: nothing to compute, decision None.
    }
    sim::NoiseModel noise =
        sim::NoiseModel::withIdle(req.ps[pi], req.pIdle);
    // Artifacts are built lazily: a fully checkpointed point resumes
    // without touching the cache at all.
    Artifact artZ, artX;
    bool have_artifacts = false;

    for (std::size_t c = 0; c < n_chunks; ++c) {
        if (grid.sprt) {
            // Canonical early stop: once the contiguous done prefix
            // decides, every later chunk is irrelevant — the serial
            // loop stopped here, and finalize will never read past it.
            // (Shard workers rarely see a contiguous prefix and so
            // compute their whole slice; the merge discards the
            // speculative excess the same way.)
            SweepPrefix pre = evalSweepPrefix(pointCp, grid, req.sprt);
            if (pre.decision != SprtDecision::Undecided &&
                pre.chunksConsumed <= c) {
                break;
            }
        }
        if (pointCp.chunks[c].done ||
            !grid.ownsCell(req.shard.index,
                           std::max<std::size_t>(1, req.shard.count), pi,
                           c)) {
            continue;
        }
        if (req.cancel != nullptr && req.cancel->load()) {
            interrupted = true;
            break;
        }
        if (!have_artifacts) {
            artZ = artifactFor(req.schedule, req.rounds,
                               circuit::MemoryBasis::Z, noise, req.decoder,
                               req.flagWeight, telemetry);
            artX = artifactFor(req.schedule, req.rounds,
                               circuit::MemoryBasis::X, noise, req.decoder,
                               req.flagWeight, telemetry);
            have_artifacts = true;
        }
        const std::size_t chunk_shots = grid.chunkSize(c);
        const uint64_t chunk_seed = sweepChunkSeed(req, grid, c);
        SweepChunkTally tally;
        for (auto basis :
             {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
            Artifact &art = basis == circuit::MemoryBasis::Z ? artZ : artX;
            decoder::LerResult r = serviceMeasure(
                art, chunk_shots,
                decoder::memoryBasisSeed(chunk_seed, basis), req.ler,
                req.cancel, telemetry);
            if (basis == circuit::MemoryBasis::Z) {
                tally.zShots = r.shots;
                tally.zFailures = r.failures;
                tally.zEarlyStopped = r.earlyStopped;
                zPacked += r.packed;
            } else {
                tally.xShots = r.shots;
                tally.xFailures = r.failures;
                tally.xEarlyStopped = r.earlyStopped;
                xPacked += r.packed;
            }
        }
        if (req.cancel != nullptr && req.cancel->load()) {
            // The cancel flag flipped while this chunk was in flight;
            // its tallies may be a truncated shard prefix rather than
            // the canonical chunk. Discard it — results and checkpoints
            // carry only full canonical cells, so a resume recomputes
            // this chunk and stays bit-identical.
            interrupted = true;
            break;
        }
        tally.done = true;
        pointCp.chunks[c] = tally;
        cellCommitted();
    }
}

SweepResult
Engine::run(const SweepRequest &req)
{
    validateSweepRequest(req);
    const SweepGrid grid = sweepGridFor(req);
    const bool persist = !req.checkpointPath.empty();

    SweepCheckpoint cp = makeSweepCheckpoint(req);
    if (persist) {
        if (auto loaded = SweepCheckpoint::loadIfExists(req.checkpointPath)) {
            if (loaded->fingerprint != cp.fingerprint) {
                throw std::runtime_error(
                    "SweepRequest: checkpoint '" + req.checkpointPath +
                    "' belongs to a different request (fingerprint "
                    "mismatch); point it elsewhere or delete it");
            }
            if (loaded->shardIndex != cp.shardIndex ||
                loaded->shardCount != cp.shardCount) {
                throw std::runtime_error(
                    "SweepRequest: checkpoint '" + req.checkpointPath +
                    "' was written by shard " +
                    std::to_string(loaded->shardIndex) + "/" +
                    std::to_string(loaded->shardCount) +
                    ", not this request's shard slice");
            }
            if (loaded->points.size() != cp.points.size()) {
                throw std::runtime_error(
                    "SweepRequest: checkpoint '" + req.checkpointPath +
                    "' does not match the request's point grid");
            }
            cp = std::move(*loaded);
        }
    }

    const std::size_t save_every =
        std::max<std::size_t>(1, req.checkpointEveryChunks);
    std::size_t since_save = 0;
    auto cell_committed = [&]() {
        if (persist && ++since_save >= save_every) {
            cp.saveAtomic(req.checkpointPath);
            since_save = 0;
        }
    };

    SweepResult out;
    out.points.reserve(req.ps.size());
    bool interrupted = false;
    for (std::size_t pi = 0; pi < req.ps.size(); ++pi) {
        if (req.cancel != nullptr && req.cancel->load()) {
            interrupted = true;
        }
        if (interrupted) {
            break;
        }
        Telemetry new_work;
        decoder::PackedDecodeStats z_packed, x_packed;
        sweepPointCells(req, grid, pi, cp.points[pi], new_work, z_packed,
                        x_packed, cell_committed, interrupted);
        SweepPointResult pt = finalizePoint(cp, pi);
        // Telemetry reports this run's work (build/decode time, cache
        // traffic, freshly sampled shots); the memory tallies always
        // account the full canonical prefix, checkpointed or fresh.
        pt.telemetry = new_work;
        pt.memory.z.packed = z_packed;
        pt.memory.x.packed = x_packed;
        // A cancelled in-progress point contributes its contiguous
        // done-chunk prefix; an untouched one is omitted entirely.
        if (interrupted && pt.memory.z.shots + pt.memory.x.shots == 0) {
            out.telemetry += new_work;
            break;
        }
        out.points.push_back(pt);
        out.telemetry += pt.telemetry;
    }
    if (persist) {
        // Always leave a final checkpoint on disk — even a no-progress
        // shard writes its (empty) slice so the merge step has a
        // complete set of files to work from.
        cp.saveAtomic(req.checkpointPath);
    }
    return out;
}

OptimizeResult
Engine::run(const OptimizeRequest &req)
{
    OptimizeResult out;
    uint64_t t0 = now_us();
    core::PropHuntOptions opts = req.options;
    if (req.cancel != nullptr) {
        opts.cancel = req.cancel;
    }
    if (req.portfolio.enabled) {
        out.outcome =
            search::runPortfolio(req.start, req.rounds, opts,
                                 req.portfolio);
    } else {
        core::PropHunt tool(opts);
        out.outcome = tool.optimize(req.start, req.rounds);
    }
    out.telemetry.search = out.outcome.searchReports;
    // The optimizer samples/decodes internally; its whole wall time is
    // reported as decode time.
    out.telemetry.decodeUs += now_us() - t0;
    return out;
}

template <class Result, class Request>
std::future<Result>
Engine::enqueue(Request req)
{
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [this, req = std::move(req)]() { return run(req); });
    std::future<Result> future = task->get_future();
    {
        std::lock_guard<std::mutex> lock(jobMutex_);
        startWorkersLocked();
        jobs_.push_back([task]() { (*task)(); });
    }
    jobCv_.notify_one();
    return future;
}

void
Engine::startWorkersLocked()
{
    if (!workers_.empty()) {
        return;
    }
    std::size_t n = std::max<std::size_t>(1, opts_.asyncWorkers);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        workers_.emplace_back([this]() {
            for (;;) {
                std::function<void()> job;
                {
                    std::unique_lock<std::mutex> lock(jobMutex_);
                    jobCv_.wait(lock, [this]() {
                        return stopping_ || !jobs_.empty();
                    });
                    if (jobs_.empty()) {
                        return; // stopping_, queue drained.
                    }
                    job = std::move(jobs_.front());
                    jobs_.pop_front();
                }
                job();
            }
        });
    }
}

std::future<LerResult>
Engine::submit(LerRequest req)
{
    return enqueue<LerResult>(std::move(req));
}

std::future<SweepResult>
Engine::submit(SweepRequest req)
{
    return enqueue<SweepResult>(std::move(req));
}

std::future<OptimizeResult>
Engine::submit(OptimizeRequest req)
{
    return enqueue<OptimizeResult>(std::move(req));
}

Engine::CacheStats
Engine::cacheStats() const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return {circuitCache_.size(), demCache_.size(), cacheHits_,
            cacheMisses_};
}

void
Engine::clearCache()
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        circuitCache_.clear();
        circuitOrder_.clear();
        demCache_.clear();
        demOrder_.clear();
    }
    // Warm clones and tallies borrow cache-owned artifacts; dropping the
    // cache without them would only waste memory (identity guards keep
    // correctness either way).
    service_.clear();
}

DecodeServiceStats
Engine::serviceStats() const
{
    return service_.stats();
}

} // namespace prophunt::api
