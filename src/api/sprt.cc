#include "api/sprt.h"

#include <cmath>
#include <stdexcept>

namespace prophunt::api {

const char *
toString(SprtDecision decision)
{
    switch (decision) {
    case SprtDecision::None:
        return "none";
    case SprtDecision::Below:
        return "below";
    case SprtDecision::Above:
        return "above";
    case SprtDecision::Undecided:
        return "undecided";
    }
    return "?";
}

SprtTest::SprtTest(const SprtOptions &opts) : opts_(opts)
{
    if (opts.margin <= 1.0) {
        throw std::invalid_argument("SprtOptions::margin must be > 1");
    }
    double p0 = opts.decisionLer / opts.margin;
    double p1 = opts.decisionLer * opts.margin;
    if (!(p0 > 0.0) || !(p1 < 1.0)) {
        throw std::invalid_argument(
            "SprtOptions::decisionLer must lie in (0, 1/margin)");
    }
    if (!(opts.alpha > 0.0 && opts.alpha < 1.0) ||
        !(opts.beta > 0.0 && opts.beta < 1.0)) {
        throw std::invalid_argument(
            "SprtOptions::alpha/beta must lie in (0, 1)");
    }
    llrFailure_ = std::log(p1 / p0);
    llrSuccess_ = std::log((1.0 - p1) / (1.0 - p0));
    upper_ = std::log((1.0 - opts.beta) / opts.alpha);
    lower_ = std::log(opts.beta / (1.0 - opts.alpha));
}

SprtDecision
SprtTest::evaluate(std::size_t trials, std::size_t failures) const
{
    if (trials < opts_.minShots) {
        return SprtDecision::Undecided;
    }
    // The engine counts one trial per basis *pair* but sums failures over
    // both bases, so failures can exceed trials when per-basis rates are
    // extreme; an observed rate >= 1 is above any threshold p1 < 1.
    if (failures >= trials) {
        return SprtDecision::Above;
    }
    double llr = (double)failures * llrFailure_ +
                 (double)(trials - failures) * llrSuccess_;
    if (llr >= upper_) {
        return SprtDecision::Above;
    }
    if (llr <= lower_) {
        return SprtDecision::Below;
    }
    return SprtDecision::Undecided;
}

SprtDecision
SprtTest::fixedDecision(double ler, const SprtOptions &opts)
{
    if (opts.decisionLer <= 0.0) {
        return SprtDecision::None;
    }
    return ler >= opts.decisionLer ? SprtDecision::Above
                                   : SprtDecision::Below;
}

} // namespace prophunt::api
