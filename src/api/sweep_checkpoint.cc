#include "api/sweep_checkpoint.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "api/engine.h"
#include "api/sprt.h"
#include "sim/parallel_sampler.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace prophunt::api {

namespace {

// FNV-1a over 8-byte values / strings, as the engine's cache keys use.
void
fnv(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
}

void
fnvStr(uint64_t &h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    fnv(h, s.size());
}

uint64_t
doubleBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    return bits;
}

[[noreturn]] void
fail(const std::string &msg)
{
    throw std::runtime_error("sweep checkpoint: " + msg);
}

// --- minimal strict JSON ----------------------------------------------------
//
// Exactly the subset the writer emits: objects, arrays, strings (no
// escapes beyond \" \\ \/ \b \f \n \r \t), numbers, true/false/null.
// Kept dependency-free on purpose; errors carry the byte offset so a
// truncated or corrupt checkpoint is diagnosable.

struct JsonValue
{
    enum Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Kind kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const char *key) const
    {
        for (const auto &[k, v] : object) {
            if (k == key) {
                return &v;
            }
        }
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size()) {
            error("trailing data after document");
        }
        return v;
    }

  private:
    [[noreturn]] void
    error(const std::string &what) const
    {
        fail("parse error at byte " + std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            error("unexpected end of input");
        }
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c) {
            error(std::string("expected '") + c + "', got '" +
                  text_[pos_] + "'");
        }
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        char c = peek();
        switch (c) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
        case 'f':
            return boolean();
        case 'n':
            literal("null");
            return JsonValue{};
        default:
            return number();
        }
    }

    void
    literal(const char *word)
    {
        std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0) {
            error(std::string("expected '") + word + "'");
        }
        pos_ += len;
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (text_[pos_] == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
            v.boolean = false;
        }
        return v;
    }

    JsonValue
    string()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::String;
        while (true) {
            if (pos_ >= text_.size()) {
                error("unterminated string");
            }
            char c = text_[pos_++];
            if (c == '"') {
                return v;
            }
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    error("unterminated escape");
                }
                char e = text_[pos_++];
                switch (e) {
                case '"':
                case '\\':
                case '/':
                    v.string.push_back(e);
                    break;
                case 'b':
                    v.string.push_back('\b');
                    break;
                case 'f':
                    v.string.push_back('\f');
                    break;
                case 'n':
                    v.string.push_back('\n');
                    break;
                case 'r':
                    v.string.push_back('\r');
                    break;
                case 't':
                    v.string.push_back('\t');
                    break;
                default:
                    error("unsupported string escape");
                }
            } else {
                v.string.push_back(c);
            }
        }
    }

    JsonValue
    number()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit((unsigned char)text_[pos_]) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            error("expected a value");
        }
        std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        errno = 0;
        double d = std::strtod(tok.c_str(), &end);
        if (errno != 0 || end == tok.c_str() || *end != '\0') {
            pos_ = start;
            error("malformed number '" + tok + "'");
        }
        JsonValue v;
        v.kind = JsonValue::Number;
        v.number = d;
        return v;
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Array;
        if (consume(']')) {
            return v;
        }
        while (true) {
            v.array.push_back(value());
            if (consume(']')) {
                return v;
            }
            expect(',');
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Object;
        if (consume('}')) {
            return v;
        }
        while (true) {
            JsonValue key = string();
            expect(':');
            v.object.emplace_back(std::move(key.string), value());
            if (consume('}')) {
                return v;
            }
            expect(',');
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

// --- typed field access -----------------------------------------------------

const JsonValue &
field(const JsonValue &obj, const char *key)
{
    if (obj.kind != JsonValue::Object) {
        fail(std::string("expected an object around '") + key + "'");
    }
    const JsonValue *v = obj.find(key);
    if (v == nullptr) {
        fail(std::string("missing field '") + key + "'");
    }
    return *v;
}

double
numField(const JsonValue &obj, const char *key)
{
    const JsonValue &v = field(obj, key);
    if (v.kind != JsonValue::Number) {
        fail(std::string("field '") + key + "' must be a number");
    }
    return v.number;
}

std::size_t
sizeField(const JsonValue &obj, const char *key)
{
    double d = numField(obj, key);
    if (d < 0 || d != (double)(uint64_t)d) {
        fail(std::string("field '") + key +
             "' must be a non-negative integer");
    }
    return (std::size_t)d;
}

bool
boolField(const JsonValue &obj, const char *key)
{
    const JsonValue &v = field(obj, key);
    if (v.kind != JsonValue::Bool) {
        fail(std::string("field '") + key + "' must be a boolean");
    }
    return v.boolean;
}

std::string
strField(const JsonValue &obj, const char *key)
{
    const JsonValue &v = field(obj, key);
    if (v.kind != JsonValue::String) {
        fail(std::string("field '") + key + "' must be a string");
    }
    return v.string;
}

/** uint64 fields travel as hex strings: JSON numbers are doubles and
 * would corrupt seeds/fingerprints above 2^53. */
uint64_t
hexField(const JsonValue &obj, const char *key)
{
    std::string s = strField(obj, key);
    char *end = nullptr;
    errno = 0;
    uint64_t v = std::strtoull(s.c_str(), &end, 16);
    if (errno != 0 || end == s.c_str() || *end != '\0') {
        fail(std::string("field '") + key + "' must be a hex string");
    }
    return v;
}

uint64_t
tallyElem(const JsonValue &arr, std::size_t i)
{
    const JsonValue &v = arr.array[i];
    if (v.kind != JsonValue::Number || v.number < 0 ||
        v.number != (double)(uint64_t)v.number) {
        fail("chunk tally entries must be non-negative integers");
    }
    return (uint64_t)v.number;
}

} // namespace

// --- grid -------------------------------------------------------------------

SweepGrid
sweepGridFor(const SweepRequest &req)
{
    SweepGrid grid;
    grid.numPoints = req.ps.size();
    grid.shotsPerPoint = req.shotsPerPoint;
    grid.sprt = req.sprt.enabled;
    if (req.shotsPerPoint == 0) {
        grid.chunkShots = 0;
    } else if (req.sprt.enabled) {
        // chunkShots = 0 would never advance the budget; clamp to 1.
        grid.chunkShots = std::max<std::size_t>(1, req.sprt.chunkShots);
    } else {
        grid.chunkShots = req.shotsPerPoint;
    }
    return grid;
}

uint64_t
sweepChunkSeed(const SweepRequest &req, const SweepGrid &grid,
               std::size_t chunk)
{
    if (!grid.sprt) {
        return req.seed;
    }
    // The serial pre-checkpoint loop drew chunk seeds sequentially from
    // SplitMix64(seed ^ salt); shardSeed gives O(1) access to the same
    // stream, so shard workers agree with it without replaying it.
    return sim::shardSeed(req.seed ^ 0xc4ceb9fe1a85ec53ULL, chunk);
}

// --- fingerprint / construction ---------------------------------------------

uint64_t
sweepFingerprint(const SweepRequest &req)
{
    SweepGrid grid = sweepGridFor(req);
    uint64_t h = 0x6a09e667f3bcc908ULL; // Distinct basis from cache keys.
    fnv(h, hashSchedule(req.schedule));
    fnv(h, req.rounds);
    fnv(h, req.ps.size());
    for (double p : req.ps) {
        fnv(h, doubleBits(p));
    }
    fnv(h, doubleBits(req.pIdle));
    fnvStr(h, req.decoder.describe());
    fnv(h, req.shotsPerPoint);
    fnv(h, req.seed);
    fnv(h, grid.chunkShots);
    fnv(h, req.sprt.enabled ? 1 : 0);
    fnv(h, doubleBits(req.sprt.decisionLer));
    fnv(h, doubleBits(req.sprt.margin));
    fnv(h, doubleBits(req.sprt.alpha));
    fnv(h, doubleBits(req.sprt.beta));
    fnv(h, req.sprt.minShots);
    fnv(h, req.flagWeight);
    fnv(h, req.ler.maxFailures);
    fnv(h, req.ler.shardShots);
    return h;
}

SweepCheckpoint
makeSweepCheckpoint(const SweepRequest &req)
{
    SweepGrid grid = sweepGridFor(req);
    SweepCheckpoint cp;
    cp.fingerprint = sweepFingerprint(req);
    cp.shardIndex = req.shard.index;
    cp.shardCount = std::max<std::size_t>(1, req.shard.count);
    cp.shotsPerPoint = grid.shotsPerPoint;
    cp.chunkShots = grid.chunkShots;
    cp.seed = req.seed;
    cp.sprt = req.sprt;
    cp.sprt.chunkShots = grid.chunkShots; // Persist the clamped value.
    cp.points.resize(req.ps.size());
    for (std::size_t i = 0; i < req.ps.size(); ++i) {
        cp.points[i].p = req.ps[i];
        cp.points[i].chunks.resize(grid.chunksPerPoint());
    }
    return cp;
}

// --- serialization ----------------------------------------------------------

std::string
SweepCheckpoint::toJson() const
{
    std::string out;
    out.reserve(256 + points.size() * 64);
    char buf[384];
    auto append = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof buf, fmt, args...);
        out += buf;
    };
    out += "{\n";
    append("  \"format\": \"%s\",\n", kFormat);
    append("  \"version\": %d,\n", version);
    append("  \"fingerprint\": \"%016" PRIx64 "\",\n", fingerprint);
    append("  \"shard_index\": %zu,\n", shardIndex);
    append("  \"shard_count\": %zu,\n", shardCount);
    append("  \"seed\": \"%016" PRIx64 "\",\n", seed);
    append("  \"shots_per_point\": %zu,\n", shotsPerPoint);
    append("  \"chunk_shots\": %zu,\n", chunkShots);
    append("  \"sprt\": {\"enabled\": %s, \"decision_ler\": %.17g, "
           "\"margin\": %.17g, \"alpha\": %.17g, \"beta\": %.17g, "
           "\"chunk_shots\": %zu, \"min_shots\": %zu},\n",
           sprt.enabled ? "true" : "false", sprt.decisionLer, sprt.margin,
           sprt.alpha, sprt.beta, sprt.chunkShots, sprt.minShots);
    out += "  \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPointCheckpoint &pt = points[i];
        out += i == 0 ? "\n" : ",\n";
        append("    {\"p\": %.17g, \"chunks\": [", pt.p);
        for (std::size_t c = 0; c < pt.chunks.size(); ++c) {
            const SweepChunkTally &t = pt.chunks[c];
            if (c != 0) {
                out += ",";
            }
            if (!t.done) {
                out += "null";
            } else {
                append("[%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                       ",%d,%d]",
                       t.zShots, t.zFailures, t.xShots, t.xFailures,
                       t.zEarlyStopped ? 1 : 0, t.xEarlyStopped ? 1 : 0);
            }
        }
        out += "]}";
    }
    out += points.empty() ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

SweepCheckpoint
SweepCheckpoint::fromJson(const std::string &json)
{
    JsonValue root = JsonParser(json).parse();
    if (root.kind != JsonValue::Object) {
        fail("document must be an object");
    }
    if (strField(root, "format") != kFormat) {
        fail("not a " + std::string(kFormat) + " file");
    }
    SweepCheckpoint cp;
    cp.version = (int)sizeField(root, "version");
    if (cp.version != kVersion) {
        fail("unsupported version " + std::to_string(cp.version) +
             " (this build reads version " + std::to_string(kVersion) +
             ")");
    }
    cp.fingerprint = hexField(root, "fingerprint");
    cp.shardIndex = sizeField(root, "shard_index");
    cp.shardCount = sizeField(root, "shard_count");
    if (cp.shardCount == 0 || cp.shardIndex >= cp.shardCount) {
        fail("invalid shard slice " + std::to_string(cp.shardIndex) + "/" +
             std::to_string(cp.shardCount));
    }
    cp.seed = hexField(root, "seed");
    cp.shotsPerPoint = sizeField(root, "shots_per_point");
    cp.chunkShots = sizeField(root, "chunk_shots");
    const JsonValue &sprt = field(root, "sprt");
    cp.sprt.enabled = boolField(sprt, "enabled");
    cp.sprt.decisionLer = numField(sprt, "decision_ler");
    cp.sprt.margin = numField(sprt, "margin");
    cp.sprt.alpha = numField(sprt, "alpha");
    cp.sprt.beta = numField(sprt, "beta");
    cp.sprt.chunkShots = sizeField(sprt, "chunk_shots");
    cp.sprt.minShots = sizeField(sprt, "min_shots");

    // The grid every point must be laid out on.
    std::size_t chunks_per_point = 0;
    if (cp.shotsPerPoint > 0) {
        if (cp.chunkShots == 0) {
            fail("chunk_shots must be positive when shots_per_point is");
        }
        chunks_per_point =
            (cp.shotsPerPoint + cp.chunkShots - 1) / cp.chunkShots;
    }

    const JsonValue &pts = field(root, "points");
    if (pts.kind != JsonValue::Array) {
        fail("'points' must be an array");
    }
    cp.points.reserve(pts.array.size());
    for (const JsonValue &pv : pts.array) {
        SweepPointCheckpoint pt;
        pt.p = numField(pv, "p");
        const JsonValue &chunks = field(pv, "chunks");
        if (chunks.kind != JsonValue::Array) {
            fail("'chunks' must be an array");
        }
        if (chunks.array.size() != chunks_per_point) {
            fail("point has " + std::to_string(chunks.array.size()) +
                 " chunks; the grid requires " +
                 std::to_string(chunks_per_point));
        }
        pt.chunks.reserve(chunks.array.size());
        for (const JsonValue &cv : chunks.array) {
            SweepChunkTally t;
            if (cv.kind == JsonValue::Null) {
                pt.chunks.push_back(t);
                continue;
            }
            if (cv.kind != JsonValue::Array || cv.array.size() != 6) {
                fail("each chunk must be null or a 6-element array");
            }
            t.done = true;
            t.zShots = tallyElem(cv, 0);
            t.zFailures = tallyElem(cv, 1);
            t.xShots = tallyElem(cv, 2);
            t.xFailures = tallyElem(cv, 3);
            t.zEarlyStopped = tallyElem(cv, 4) != 0;
            t.xEarlyStopped = tallyElem(cv, 5) != 0;
            if (t.zFailures > t.zShots || t.xFailures > t.xShots) {
                fail("chunk failures exceed its shots");
            }
            pt.chunks.push_back(t);
        }
        cp.points.push_back(std::move(pt));
    }
    return cp;
}

void
SweepCheckpoint::saveAtomic(const std::string &path) const
{
    std::string tmp = path + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
        fail("cannot open '" + tmp + "' for writing: " +
             std::strerror(errno));
    }
    std::string json = toJson();
    bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    ok = std::fflush(f) == 0 && ok;
#ifndef _WIN32
    // Durability: the rename must not land before the contents do.
    ok = fsync(fileno(f)) == 0 && ok;
#endif
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        fail("write to '" + tmp + "' failed: " + std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        std::remove(tmp.c_str());
        fail("rename '" + tmp + "' -> '" + path +
             "' failed: " + std::strerror(err));
    }
}

SweepCheckpoint
SweepCheckpoint::load(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        fail("cannot open '" + path + "': " + std::strerror(errno));
    }
    std::string text;
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err) {
        fail("read of '" + path + "' failed");
    }
    try {
        return fromJson(text);
    } catch (const std::runtime_error &e) {
        fail("'" + path + "' is corrupt or not a checkpoint (" + e.what() +
             "); delete it to restart from scratch");
    }
}

std::optional<SweepCheckpoint>
SweepCheckpoint::loadIfExists(const std::string &path)
{
    if (FILE *f = std::fopen(path.c_str(), "rb")) {
        std::fclose(f);
        return load(path);
    }
    return std::nullopt;
}

// --- canonical evaluation ---------------------------------------------------

SweepPrefix
evalSweepPrefix(const SweepPointCheckpoint &point, const SweepGrid &grid,
                const SprtOptions &sprt)
{
    SweepPrefix pre;
    const std::size_t n = point.chunks.size();
    while (pre.chunksDone < n && point.chunks[pre.chunksDone].done) {
        ++pre.chunksDone;
    }
    if (n == 0) {
        // Zero-shot point: well-formed empty, decision None.
        pre.complete = true;
        return pre;
    }

    if (!grid.sprt) {
        // Fixed budget: one chunk carrying the whole point.
        if (pre.chunksDone == 0) {
            pre.decision = SprtDecision::None;
            return pre;
        }
        const SweepChunkTally &t = point.chunks[0];
        pre.chunksConsumed = 1;
        pre.zShots = t.zShots;
        pre.zFailures = t.zFailures;
        pre.xShots = t.xShots;
        pre.xFailures = t.xFailures;
        pre.zEarlyStopped = t.zEarlyStopped;
        pre.xEarlyStopped = t.xEarlyStopped;
        double zl = pre.zShots == 0
                        ? 0.0
                        : (double)pre.zFailures / (double)pre.zShots;
        double xl = pre.xShots == 0
                        ? 0.0
                        : (double)pre.xFailures / (double)pre.xShots;
        double combined = 1.0 - (1.0 - zl) * (1.0 - xl);
        pre.decision = SprtTest::fixedDecision(combined, sprt);
        pre.complete = true;
        return pre;
    }

    SprtTest test(sprt);
    pre.decision = SprtDecision::Undecided;
    for (std::size_t c = 0; c < pre.chunksDone; ++c) {
        const SweepChunkTally &t = point.chunks[c];
        pre.zShots += t.zShots;
        pre.zFailures += t.zFailures;
        pre.xShots += t.xShots;
        pre.xFailures += t.xFailures;
        pre.chunksConsumed = c + 1;
        std::size_t trials = (std::size_t)((pre.zShots + pre.xShots) / 2);
        std::size_t failures =
            (std::size_t)(pre.zFailures + pre.xFailures);
        SprtDecision dec = test.evaluate(trials, failures);
        if (dec != SprtDecision::Undecided) {
            pre.decision = dec;
            pre.decidedEarly = grid.chunkEnd(c) < grid.shotsPerPoint;
            pre.zEarlyStopped = pre.xEarlyStopped = pre.decidedEarly;
            pre.complete = true;
            return pre;
        }
    }
    if (pre.chunksDone == n) {
        // Budget exhausted inside the indifference zone: the
        // fixed-budget fallback rule, exactly as the serial loop.
        double zl = pre.zShots == 0
                        ? 0.0
                        : (double)pre.zFailures / (double)pre.zShots;
        double xl = pre.xShots == 0
                        ? 0.0
                        : (double)pre.xFailures / (double)pre.xShots;
        double combined = 1.0 - (1.0 - zl) * (1.0 - xl);
        pre.decision = SprtTest::fixedDecision(combined, sprt);
        pre.complete = true;
    }
    return pre;
}

namespace {

SweepGrid
gridOf(const SweepCheckpoint &cp)
{
    SweepGrid grid;
    grid.numPoints = cp.points.size();
    grid.shotsPerPoint = cp.shotsPerPoint;
    grid.chunkShots = cp.chunkShots;
    grid.sprt = cp.sprt.enabled;
    return grid;
}

} // namespace

SweepPointResult
finalizePoint(const SweepCheckpoint &cp, std::size_t point)
{
    const SweepPointCheckpoint &pt = cp.points[point];
    SweepPrefix pre = evalSweepPrefix(pt, gridOf(cp), cp.sprt);
    SweepPointResult out;
    out.p = pt.p;
    out.memory.z.shots = (std::size_t)pre.zShots;
    out.memory.z.failures = (std::size_t)pre.zFailures;
    out.memory.z.earlyStopped = pre.zEarlyStopped;
    out.memory.x.shots = (std::size_t)pre.xShots;
    out.memory.x.failures = (std::size_t)pre.xFailures;
    out.memory.x.earlyStopped = pre.xEarlyStopped;
    out.decision = pre.decision;
    out.telemetry.shots = (std::size_t)(pre.zShots + pre.xShots);
    return out;
}

SweepFinalize
finalizeSweep(const SweepCheckpoint &cp)
{
    SweepFinalize fin;
    fin.complete = true;
    fin.result.points.reserve(cp.points.size());
    SweepGrid grid = gridOf(cp);
    for (std::size_t i = 0; i < cp.points.size(); ++i) {
        SweepPrefix pre = evalSweepPrefix(cp.points[i], grid, cp.sprt);
        fin.complete = fin.complete && pre.complete;
        fin.pointsComplete += pre.complete ? 1 : 0;
        fin.result.points.push_back(finalizePoint(cp, i));
        fin.result.telemetry += fin.result.points.back().telemetry;
    }
    return fin;
}

// --- merge ------------------------------------------------------------------

SweepCheckpoint
mergeSweepCheckpoints(const std::vector<SweepCheckpoint> &shards)
{
    if (shards.empty()) {
        fail("merge of zero shards");
    }
    SweepCheckpoint out = shards.front();
    out.shardIndex = 0;
    out.shardCount = 1;
    for (std::size_t s = 1; s < shards.size(); ++s) {
        const SweepCheckpoint &sh = shards[s];
        if (sh.fingerprint != out.fingerprint) {
            fail("merge: shard " + std::to_string(s) +
                 " fingerprint mismatch (checkpoints of different "
                 "requests)");
        }
        if (sh.version != out.version ||
            sh.shotsPerPoint != out.shotsPerPoint ||
            sh.chunkShots != out.chunkShots || sh.seed != out.seed ||
            sh.points.size() != out.points.size() ||
            sh.sprt.enabled != out.sprt.enabled) {
            fail("merge: shard " + std::to_string(s) +
                 " grid parameters disagree");
        }
        for (std::size_t i = 0; i < out.points.size(); ++i) {
            SweepPointCheckpoint &dst = out.points[i];
            const SweepPointCheckpoint &src = sh.points[i];
            if (src.chunks.size() != dst.chunks.size() ||
                doubleBits(src.p) != doubleBits(dst.p)) {
                fail("merge: shard " + std::to_string(s) + " point " +
                     std::to_string(i) + " does not match the grid");
            }
            for (std::size_t c = 0; c < dst.chunks.size(); ++c) {
                const SweepChunkTally &t = src.chunks[c];
                if (!t.done) {
                    continue;
                }
                if (!dst.chunks[c].done) {
                    dst.chunks[c] = t;
                } else if (!(dst.chunks[c] == t)) {
                    fail("merge: conflicting tallies for point " +
                         std::to_string(i) + " chunk " +
                         std::to_string(c) +
                         " (shards ran different requests or a "
                         "checkpoint is corrupt)");
                }
            }
        }
    }
    return out;
}

// --- admission validation ---------------------------------------------------

void
validateSweepRequest(const SweepRequest &req)
{
    if (req.sprt.enabled) {
        try {
            SprtOptions effective = req.sprt;
            effective.chunkShots =
                std::max<std::size_t>(1, req.sprt.chunkShots);
            SprtTest probe(effective);
            (void)probe;
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument(
                std::string("SweepRequest: sprt.enabled with unusable "
                            "SPRT options (") +
                e.what() +
                "). Set sprt.decisionLer to the LER threshold the sweep "
                "should decide against (e.g. 0.02) and keep margin > 1, "
                "alpha/beta in (0, 1).");
        }
    }
    std::size_t count = std::max<std::size_t>(1, req.shard.count);
    if (req.shard.index >= count) {
        throw std::invalid_argument(
            "SweepRequest: shard.index " +
            std::to_string(req.shard.index) +
            " out of range for shard.count " + std::to_string(count));
    }
}

} // namespace prophunt::api
