/**
 * @file
 * Typed request/response structs of the prophunt::api engine.
 *
 * One struct per workload kind, replacing the seed's positional-argument
 * free functions. Every result carries Telemetry (build/decode timings,
 * cache hits, shots) so callers — and future regression benches — can
 * observe where the time went without instrumenting the engine.
 */
#ifndef PROPHUNT_API_REQUESTS_H
#define PROPHUNT_API_REQUESTS_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/sprt.h"
#include "circuit/schedule.h"
#include "decoder/logical_error.h"
#include "decoder/registry.h"
#include "prophunt/optimizer.h"
#include "search/portfolio.h"
#include "sim/noise_model.h"

namespace prophunt::api {

/** Per-request timing and cache telemetry. */
struct Telemetry
{
    /** Microseconds spent building artifacts (circuits, DEMs, decoder
     * prototypes) on cache misses. */
    uint64_t buildUs = 0;
    /** Microseconds spent sampling + decoding. */
    uint64_t decodeUs = 0;
    /** Artifact-cache hits / misses while serving the request. */
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;
    /** Total shots actually sampled (both bases). */
    std::size_t shots = 0;
    /** Shots of the result satisfied from the decode service's recorded
     * shard tallies instead of fresh sampling + decoding. */
    std::size_t reusedShots = 0;
    /** Decode-service jobs of this request admitted while another
     * request with the same decode key was already in flight. */
    std::size_t coalescedRequests = 0;
    /** Shards a pool thread decoded right after serving a different
     * request stream (decode-service work stealing). */
    std::size_t workSteals = 0;
    /** Peak pending shard-queue depth observed at admission. */
    std::size_t queueDepth = 0;
    /** Packed-decode path counters: native packed vs transpose-adapter
     * shots, the lane engine's occupancy, and the batched OSD
     * post-pass's osdShots/osdUs (decoder/decoder.h). */
    decoder::PackedDecodeStats packed;
    /** Per-strategy schedule-search telemetry of portfolio-served
     * OptimizeRequests (search/stats.h); empty otherwise. */
    std::vector<search::StrategyReport> search;

    Telemetry &
    operator+=(const Telemetry &o)
    {
        buildUs += o.buildUs;
        decodeUs += o.decodeUs;
        cacheHits += o.cacheHits;
        cacheMisses += o.cacheMisses;
        shots += o.shots;
        reusedShots += o.reusedShots;
        coalescedRequests += o.coalescedRequests;
        workSteals += o.workSteals;
        queueDepth = queueDepth > o.queueDepth ? queueDepth : o.queueDepth;
        packed += o.packed;
        search.insert(search.end(), o.search.begin(), o.search.end());
        return *this;
    }
};

/** One logical-error-rate measurement of a schedule. */
struct LerRequest
{
    circuit::SmSchedule schedule;
    /** Memory-experiment rounds (typically the code distance). */
    std::size_t rounds = 1;
    sim::NoiseModel noise;
    decoder::DecoderSpec decoder;
    /** Shots per memory basis. */
    std::size_t shots = 20000;
    uint64_t seed = 1;
    decoder::LerOptions ler;
    /**
     * 0 = plain memory circuit; otherwise augment the schedule with flag
     * qubits (circuit::buildFlaggedMemoryCircuit) of at least this check
     * weight — the Section 8 flag-fault-tolerance extension study.
     */
    std::size_t flagWeight = 0;
    /**
     * Optional cancellation flag (owned by the caller, may be flipped
     * from any thread). Once set, the decode service stops claiming
     * shards; the result truncates to the contiguous completed shard
     * prefix — a valid smaller run of the same seed stream.
     */
    const std::atomic<bool> *cancel = nullptr;

    explicit LerRequest(circuit::SmSchedule s) : schedule(std::move(s)) {}
};

struct LerResult
{
    decoder::MemoryLer memory;
    Telemetry telemetry;

    /** Combined P(any logical error). */
    double
    ler() const
    {
        return memory.combined();
    }
};

/**
 * One process's slice of a sweep's (point, chunk) cell space: shard
 * index of count serves the cells where the canonical cell index
 * (point * chunksPerPoint + chunk) is congruent to index mod count.
 * The default 0/1 serves everything.
 */
struct SweepShard
{
    std::size_t index = 0;
    std::size_t count = 1;
};

/**
 * A physical-error-rate sweep of one schedule.
 *
 * The engine reuses the compiled circuits across all points (the DEM and
 * decoder are per-noise) and, with sprt.enabled, allocates shots
 * adaptively: each point stops as soon as the sequential test decides
 * its LER against sprt.decisionLer.
 *
 * Execution decomposes into deterministic (point, chunk) cells (see
 * api/sweep_checkpoint.h): with checkpointPath set, completed cells
 * persist atomically every checkpointEveryChunks chunks and a rerun of
 * the same request resumes bit-identically to an uninterrupted run;
 * with shard.count > 1 this process computes only its slice of cells
 * and the per-shard checkpoints merge into the serial result.
 */
struct SweepRequest
{
    circuit::SmSchedule schedule;
    std::size_t rounds = 1;
    /** Gate error rates to sweep. */
    std::vector<double> ps;
    /** Per-CNOT-layer idle error strength applied at every point. */
    double pIdle = 0.0;
    decoder::DecoderSpec decoder;
    /** Shot budget per basis per point (SPRT may stop earlier). */
    std::size_t shotsPerPoint = 20000;
    uint64_t seed = 1;
    decoder::LerOptions ler;
    SprtOptions sprt;
    /** As LerRequest::flagWeight. */
    std::size_t flagWeight = 0;
    /** This process's slice of the sweep's cell space. */
    SweepShard shard;
    /** Checkpoint/resume file; empty (the default) disables both. A
     * mismatched existing checkpoint (different request fingerprint or
     * shard slice) is an error, never silently overwritten. */
    std::string checkpointPath;
    /** Checkpoint write frequency, in completed chunks (clamped >= 1).
     * A final write always happens, even on cancellation. */
    std::size_t checkpointEveryChunks = 8;
    /**
     * Optional cancellation flag (parity with LerRequest::cancel).
     * Honored between points and between SPRT chunks, and passed into
     * the decode service so an in-flight measurement truncates to a
     * valid contiguous shard prefix. The result holds every completed
     * point plus the in-progress point's contiguous chunk prefix (a
     * mid-chunk truncation is discarded — only canonical full-chunk
     * tallies enter results and checkpoints).
     */
    const std::atomic<bool> *cancel = nullptr;

    explicit SweepRequest(circuit::SmSchedule s) : schedule(std::move(s)) {}
};

struct SweepPointResult
{
    double p = 0.0;
    decoder::MemoryLer memory;
    /** Sequential-test outcome (None when no threshold was given). */
    SprtDecision decision = SprtDecision::None;
    Telemetry telemetry;

    double
    ler() const
    {
        return memory.combined();
    }
};

struct SweepResult
{
    std::vector<SweepPointResult> points;
    Telemetry telemetry;

    /** Total shots sampled across all points and bases. */
    std::size_t
    totalShots() const
    {
        return telemetry.shots;
    }
};

/** A PropHunt optimization run. */
struct OptimizeRequest
{
    circuit::SmSchedule start;
    std::size_t rounds = 1;
    core::PropHuntOptions options;
    /**
     * Schedule-search portfolio knobs. With portfolio.enabled the
     * request races beam search, branch-and-bound, and the MaxSAT loop
     * under anytime budgets and returns the best verified schedule;
     * otherwise the classic MaxSAT-only loop runs. Per-strategy
     * SearchStats surface in the result's Telemetry::search.
     */
    search::PortfolioOptions portfolio;
    /**
     * Optional cancellation flag (parity with LerRequest::cancel).
     * Checked between optimizer iterations and between portfolio search
     * expansions; once set, the request returns the best schedule
     * reached so far.
     */
    const std::atomic<bool> *cancel = nullptr;

    explicit OptimizeRequest(circuit::SmSchedule s) : start(std::move(s)) {}
};

struct OptimizeResult
{
    core::OptimizeResult outcome;
    Telemetry telemetry;

    const circuit::SmSchedule &
    finalSchedule() const
    {
        return outcome.finalSchedule();
    }
};

} // namespace prophunt::api

#endif // PROPHUNT_API_REQUESTS_H
