#include "api/config.h"

#include <cstdlib>
#include <cstring>

namespace prophunt::api {

std::size_t
envSize(const char *name, std::size_t def)
{
    const char *v = std::getenv(name);
    return v ? (std::size_t)std::strtoull(v, nullptr, 10) : def;
}

double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    return v ? std::strtod(v, nullptr) : def;
}

bool
envFlag(const char *name)
{
    return std::getenv(name) != nullptr;
}

Config
Config::fromEnv()
{
    Config cfg;
    cfg.shots = envSize("PROPHUNT_SHOTS", cfg.shots);
    cfg.iterations = envSize("PROPHUNT_ITERS", cfg.iterations);
    cfg.samplesPerIteration =
        envSize("PROPHUNT_SAMPLES", cfg.samplesPerIteration);
    cfg.satTimeoutSeconds =
        envDouble("PROPHUNT_SAT_TIMEOUT", cfg.satTimeoutSeconds);
    cfg.full = envFlag("PROPHUNT_FULL");
    cfg.threads = envSize("PROPHUNT_THREADS", cfg.threads);
    cfg.maxFailures = envSize("PROPHUNT_MAX_FAILURES", cfg.maxFailures);
    cfg.zneTrials = envSize("PROPHUNT_ZNE_TRIALS", cfg.zneTrials);
    cfg.benchReps = envSize("PROPHUNT_BENCH_REPS", cfg.benchReps);
    if (const char *out = std::getenv("PROPHUNT_BENCH_OUT")) {
        cfg.benchOut = out;
    }
    return cfg;
}

void
Config::applyArgs(int &argc, char **argv)
{
    auto eat = [&](int i, int count) {
        for (int j = i; j + count < argc; ++j) {
            argv[j] = argv[j + count];
        }
        argc -= count;
    };
    for (int i = 1; i < argc;) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = (std::size_t)std::strtoull(argv[i + 1], nullptr, 10);
            eat(i, 2);
        } else if (std::strcmp(argv[i], "--shots") == 0 && i + 1 < argc) {
            shots = (std::size_t)std::strtoull(argv[i + 1], nullptr, 10);
            eat(i, 2);
        } else if (std::strcmp(argv[i], "--max-failures") == 0 &&
                   i + 1 < argc) {
            maxFailures =
                (std::size_t)std::strtoull(argv[i + 1], nullptr, 10);
            eat(i, 2);
        } else {
            ++i;
        }
    }
}

decoder::LerOptions
Config::lerOptions() const
{
    decoder::LerOptions opts;
    opts.threads = threads;
    opts.maxFailures = maxFailures;
    return opts;
}

core::PropHuntOptions
Config::propHuntOptions(uint64_t seed) const
{
    core::PropHuntOptions opts;
    opts.iterations = iterations;
    opts.samplesPerIteration = samplesPerIteration;
    opts.seed = seed;
    opts.ler = lerOptions();
    return opts;
}

} // namespace prophunt::api
