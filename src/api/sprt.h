/**
 * @file
 * Wald sequential probability ratio test (SPRT) on logical error rates.
 *
 * The ROADMAP's adaptive early-stopping policy: instead of burning a
 * fixed shot budget at every (circuit, p) sweep point, the engine samples
 * in chunks and stops a point as soon as the sequential test decides
 * whether its LER lies above or below a decision threshold. Points far
 * from the threshold resolve in a few chunks; only points inside the
 * indifference zone consume the full budget, where the decision falls
 * back to the fixed-budget point-estimate rule — so SPRT sweeps reach the
 * same decisions with (usually far) fewer total shots.
 *
 * The test treats the memory experiment's combined failure stream as
 * binomial: one trial = one shot in each basis, failure count = Z
 * failures + X failures. For the small per-basis rates of interest the
 * combined LER 1-(1-p_z)(1-p_x) is p_z + p_x up to O(p^2), which is well
 * inside the indifference zone of any sensible margin.
 */
#ifndef PROPHUNT_API_SPRT_H
#define PROPHUNT_API_SPRT_H

#include <cstddef>

namespace prophunt::api {

/** Sequential-test configuration for adaptive sweeps. */
struct SprtOptions
{
    /** Off by default: sweeps use the fixed shot budget. */
    bool enabled = false;
    /**
     * The LER threshold the sweep decides against. The test separates
     * H_below: LER <= decisionLer / margin from
     * H_above: LER >= decisionLer * margin.
     */
    double decisionLer = 0.0;
    /** Indifference-zone half-width factor (must be > 1). */
    double margin = 2.0;
    /** Allowed probability of a false "above" decision. */
    double alpha = 1e-3;
    /** Allowed probability of a false "below" decision. */
    double beta = 1e-3;
    /** Shots per basis sampled between sequential-bound checks. */
    std::size_t chunkShots = 1024;
    /** Trials required before the first bound check. */
    std::size_t minShots = 256;
};

/** Outcome of the sequential test for one sweep point. */
enum class SprtDecision
{
    None,      ///< SPRT disabled (fixed-budget run, no threshold given).
    Below,     ///< LER decided below the threshold.
    Above,     ///< LER decided above the threshold.
    Undecided, ///< Budget exhausted inside the indifference zone.
};

const char *toString(SprtDecision decision);

/**
 * The running test: feed cumulative (trials, failures), read the
 * decision once a Wald bound is crossed.
 */
class SprtTest
{
  public:
    /** Throws std::invalid_argument for nonsensical options (margin <= 1,
     * decisionLer outside (0, 1/margin), alpha/beta outside (0, 1)). */
    explicit SprtTest(const SprtOptions &opts);

    /**
     * Evaluate the bounds at cumulative counts.
     *
     * @param trials Total trials so far.
     * @param failures Total failures so far.
     * @return Below / Above once a bound is crossed, else Undecided.
     */
    SprtDecision evaluate(std::size_t trials, std::size_t failures) const;

    /**
     * The fixed-budget decision rule: point estimate vs threshold. Used
     * for non-SPRT runs and as the fallback when the budget runs out
     * undecided, so adaptive and fixed sweeps agree on every point that
     * either rule can classify.
     */
    static SprtDecision fixedDecision(double ler, const SprtOptions &opts);

  private:
    SprtOptions opts_;
    double llrFailure_ = 0.0; ///< Log-likelihood-ratio step per failure.
    double llrSuccess_ = 0.0; ///< Step per success.
    double upper_ = 0.0;      ///< Accept H_above at LLR >= upper_.
    double lower_ = 0.0;      ///< Accept H_below at LLR <= lower_.
};

} // namespace prophunt::api

#endif // PROPHUNT_API_SPRT_H
