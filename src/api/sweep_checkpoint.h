/**
 * @file
 * Checkpointable, shardable sweep execution state.
 *
 * A SweepRequest's work decomposes into a deterministic grid of cells:
 * one cell per (point, chunk), where SPRT-adaptive points split their
 * shot budget into sprt.chunkShots-sized chunks and fixed-budget points
 * are a single chunk of shotsPerPoint shots. Each cell's measurement is
 * independent of every other cell — its sampling seed comes from an
 * O(1)-random-access SplitMix64 stream position, and the decode service
 * guarantees the tally is thread-count invariant — so any subset of
 * cells can be computed by any process in any order and the results are
 * bit-identical to a serial run.
 *
 * SweepCheckpoint persists the grid's completed tallies as versioned
 * JSON (written atomically: temp file + rename, so a SIGKILL at any
 * instant leaves either the old or the new checkpoint, never a torn
 * one). Engine::run(SweepRequest) resumes from it bit-identically, and
 * K worker processes can each serve the disjoint slice of cells where
 * cellIndex % K == shardIndex; mergeSweepCheckpoints unions their
 * checkpoints and finalizeSweep re-evaluates the SPRT in canonical
 * chunk order — a point's decision consumes the contiguous chunk prefix
 * up to the first Wald-bound crossing and never reads a later chunk, so
 * a late-arriving shard can never flip a decision vs. the serial run.
 */
#ifndef PROPHUNT_API_SWEEP_CHECKPOINT_H
#define PROPHUNT_API_SWEEP_CHECKPOINT_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/requests.h"

namespace prophunt::api {

/**
 * The deterministic cell grid of one SweepRequest. Pure arithmetic over
 * the request's budgets — two processes building a grid for the same
 * request always agree on chunk count, sizes, and seeds.
 */
struct SweepGrid
{
    std::size_t numPoints = 0;
    std::size_t shotsPerPoint = 0;
    /** Effective chunk size: sprt.chunkShots clamped to >= 1 (SPRT), or
     * shotsPerPoint itself (fixed budget = one chunk per point). */
    std::size_t chunkShots = 0;
    bool sprt = false;

    /** Chunks per point (0 when shotsPerPoint == 0). */
    std::size_t
    chunksPerPoint() const
    {
        if (shotsPerPoint == 0 || chunkShots == 0) {
            return 0;
        }
        return (shotsPerPoint + chunkShots - 1) / chunkShots;
    }

    /** Requested shots of chunk @p c (the last chunk may be short). */
    std::size_t
    chunkSize(std::size_t c) const
    {
        std::size_t begin = c * chunkShots;
        std::size_t size = shotsPerPoint - begin;
        return size < chunkShots ? size : chunkShots;
    }

    /** Cumulative requested shots through chunk @p c inclusive. */
    std::size_t
    chunkEnd(std::size_t c) const
    {
        return c * chunkShots + chunkSize(c);
    }

    /** Canonical linearization of (point, chunk) — the sharding index. */
    std::size_t
    cellIndex(std::size_t point, std::size_t chunk) const
    {
        return point * chunksPerPoint() + chunk;
    }

    std::size_t
    totalCells() const
    {
        return numPoints * chunksPerPoint();
    }

    /** True iff shard @p index of @p count serves (point, chunk). */
    bool
    ownsCell(std::size_t index, std::size_t count, std::size_t point,
             std::size_t chunk) const
    {
        return count <= 1 || cellIndex(point, chunk) % count == index;
    }
};

/** The grid a request's execution and checkpoints are laid out on. */
SweepGrid sweepGridFor(const SweepRequest &req);

/**
 * Master sampling seed of chunk @p chunk. SPRT chunks draw from the
 * request's dedicated SplitMix64 chunk stream (identical to the stream
 * the pre-checkpoint serial loop consumed sequentially); fixed-budget
 * points sample with the request seed itself, exactly as the equivalent
 * LerRequest would.
 */
uint64_t sweepChunkSeed(const SweepRequest &req, const SweepGrid &grid,
                        std::size_t chunk);

/** Bit-exact completed tally of one (point, chunk) cell. */
struct SweepChunkTally
{
    bool done = false;
    /** Accounted shots/failures per basis (shots can undershoot the
     * requested chunk size when ler.maxFailures stops a chunk early —
     * that truncation is deterministic and part of the tally). */
    uint64_t zShots = 0;
    uint64_t zFailures = 0;
    uint64_t xShots = 0;
    uint64_t xFailures = 0;
    /** Per-basis maxFailures early-stop flags (fixed-budget points
     * surface them in the result, mirroring LerRequest). */
    bool zEarlyStopped = false;
    bool xEarlyStopped = false;

    bool
    operator==(const SweepChunkTally &o) const
    {
        return done == o.done && zShots == o.zShots &&
               zFailures == o.zFailures && xShots == o.xShots &&
               xFailures == o.xFailures &&
               zEarlyStopped == o.zEarlyStopped &&
               xEarlyStopped == o.xEarlyStopped;
    }
};

/** Checkpointed state of one sweep point. */
struct SweepPointCheckpoint
{
    double p = 0.0;
    std::vector<SweepChunkTally> chunks; ///< Fixed grid size per point.
};

/**
 * The serializable sweep execution state: request fingerprint + grid
 * parameters + every completed cell tally. Version 1.
 */
struct SweepCheckpoint
{
    static constexpr int kVersion = 1;
    static constexpr const char *kFormat = "prophunt-sweep-checkpoint";

    int version = kVersion;
    /** sweepFingerprint(req) of the request this state belongs to. */
    uint64_t fingerprint = 0;
    /** The shard slice this file was produced by (0/1 = unsharded). */
    std::size_t shardIndex = 0;
    std::size_t shardCount = 1;
    /** Grid + decision parameters, so finalizeSweep needs no request. */
    std::size_t shotsPerPoint = 0;
    std::size_t chunkShots = 0;
    uint64_t seed = 1;
    SprtOptions sprt;
    std::vector<SweepPointCheckpoint> points;

    std::string toJson() const;
    /** Parse; throws std::runtime_error with offset + cause on corrupt,
     * truncated, wrong-format, or wrong-version input. */
    static SweepCheckpoint fromJson(const std::string &json);

    /** Write via temp file + rename (+fsync): readers and crash victims
     * see either the previous complete file or this one. */
    void saveAtomic(const std::string &path) const;
    /** Load @p path; throws std::runtime_error if missing or corrupt. */
    static SweepCheckpoint load(const std::string &path);
    /** As load(), but a missing file is nullopt (corrupt still throws:
     * silently restarting a multi-hour sweep is worse than an error). */
    static std::optional<SweepCheckpoint> loadIfExists(
        const std::string &path);
};

/**
 * Fingerprint of every request field that affects cell tallies or the
 * decision rule: schedule hash, rounds, ps, pIdle, decoder spec,
 * budgets, seeds, SPRT options, flag weight, and the ler fields that
 * change the sample stream (shardShots) or accounting (maxFailures).
 * Thread counts, shard slice, cancellation, and checkpoint knobs are
 * excluded — they never change a tally.
 */
uint64_t sweepFingerprint(const SweepRequest &req);

/** A fresh all-cells-pending checkpoint laid out for @p req. */
SweepCheckpoint makeSweepCheckpoint(const SweepRequest &req);

/**
 * Canonical-order evaluation of one point's contiguous done prefix —
 * the single decision procedure shared by serial execution, resume, and
 * shard merge (which is what makes them bit-identical).
 */
struct SweepPrefix
{
    /** Length of the contiguous done-chunk prefix. */
    std::size_t chunksDone = 0;
    /** Chunks the canonical evaluation consumed (SPRT stops consuming
     * at the first decision; later chunks are never read). */
    std::size_t chunksConsumed = 0;
    /** Accumulated tallies over the consumed chunks. */
    uint64_t zShots = 0, zFailures = 0;
    uint64_t xShots = 0, xFailures = 0;
    bool zEarlyStopped = false, xEarlyStopped = false;
    SprtDecision decision = SprtDecision::None;
    /** Decision reached before the full budget (sets earlyStopped). */
    bool decidedEarly = false;
    /** Point fully resolved: decided, or every chunk consumed. */
    bool complete = false;
};

SweepPrefix evalSweepPrefix(const SweepPointCheckpoint &point,
                            const SweepGrid &grid, const SprtOptions &sprt);

/** The finalized result of one point (memory tallies + decision;
 * telemetry.shots = accounted shots, timings zero). */
SweepPointResult finalizePoint(const SweepCheckpoint &cp, std::size_t point);

/** Finalization of a whole checkpoint. */
struct SweepFinalize
{
    SweepResult result;
    /** Every point decided or fully sampled. */
    bool complete = false;
    std::size_t pointsComplete = 0;
};

SweepFinalize finalizeSweep(const SweepCheckpoint &cp);

/**
 * Union shard checkpoints into one (shard 0/1) checkpoint. All inputs
 * must agree on fingerprint/version/grid/SPRT parameters, and any cell
 * completed by more than one shard must carry identical tallies;
 * violations throw std::runtime_error. Order of @p shards is
 * irrelevant — finalizeSweep of the merge consumes canonical chunk
 * order, so no arrival order can change a decision.
 */
SweepCheckpoint mergeSweepCheckpoints(
    const std::vector<SweepCheckpoint> &shards);

/**
 * Request admission checks, run before any artifact is built:
 *  - sprt.enabled with unusable SPRT options (the default
 *    decisionLer == 0 in particular) throws std::invalid_argument with
 *    an actionable message instead of surfacing from deep inside the
 *    chunk loop; sprt.chunkShots == 0 is legal and clamps to 1.
 *  - shard.index must lie inside shard.count (count >= 1).
 */
void validateSweepRequest(const SweepRequest &req);

} // namespace prophunt::api

#endif // PROPHUNT_API_SWEEP_CHECKPOINT_H
