/**
 * @file
 * Code explorer: construct and inspect CSS codes with the library's
 * group-algebra machinery.
 *
 * Demonstrates the construction substrate on its own: builds every
 * Table 1 benchmark code, prints its parameters, stabilizer-weight
 * profile and a randomized distance estimate, then uses the seeded
 * search API to discover a fresh two-block instance over a user-chosen
 * group — the workflow for extending the benchmark suite to new codes —
 * and scores the fresh code's coloration circuit through api::Engine.
 */
#include <cstdio>
#include <map>
#include <memory>

#include "api/engine.h"
#include "circuit/coloration.h"
#include "code/codes.h"
#include "code/distance.h"
#include "code/two_block.h"

using namespace prophunt;
using namespace prophunt::code;

int
main()
{
    std::printf("Benchmark suite (paper Table 1):\n");
    std::printf("%-22s %4s %3s %3s %8s %8s  weights\n", "code", "n", "k",
                "d", "X-checks", "Z-checks");
    for (const CssCode &c : allBenchmarkCodes()) {
        std::size_t d = estimateDistance(c, 50, 7);
        std::map<std::size_t, std::size_t> weights;
        for (std::size_t i = 0; i < c.numChecks(); ++i) {
            ++weights[c.checkSupport(i).size()];
        }
        std::printf("%-22s %4zu %3zu %3zu %8zu %8zu  ", c.name().c_str(),
                    c.n(), c.k(), d, c.numXChecks(), c.numZChecks());
        for (const auto &[w, count] : weights) {
            std::printf("w%zu:%zu ", w, count);
        }
        std::printf("\n");
    }

    std::printf("\nSearching a fresh two-block instance over the dihedral "
                "group of order 18...\n");
    Group g = Group::dihedral(9);
    SearchResult r = searchTwoBlock(g, /*weight=*/3, /*target_k=*/4,
                                    /*target_d=*/4, /*attempts=*/400,
                                    /*seed=*/2024);
    std::printf("best found: [[%zu,%zu,%zu]] with a = {", 2 * g.order(),
                r.k, r.d);
    for (std::size_t t : r.termsA[0]) {
        std::printf("%zu ", t);
    }
    std::printf("}, b = {");
    for (std::size_t t : r.termsB[0]) {
        std::printf("%zu ", t);
    }
    std::printf("}\n");

    AlgebraElement a = AlgebraElement::fromTerms(g, r.termsA[0]);
    AlgebraElement b = AlgebraElement::fromTerms(g, r.termsB[0]);
    CssCode fresh = twoBlock(g, a, b, "explorer 2BGA");
    std::printf("verified: n=%zu k=%zu, CSS commutation holds by "
                "construction.\n",
                fresh.n(), fresh.k());

    // Score the discovery end to end: coloration circuit, BP+OSD decoder
    // from the registry, quick LER estimate through the engine.
    api::Engine engine;
    auto cp = std::make_shared<const CssCode>(fresh);
    api::LerRequest req(circuit::colorationSchedule(cp));
    req.rounds = r.d;
    req.noise = sim::NoiseModel::uniform(1e-3);
    req.decoder = "bp_osd";
    req.shots = 2000;
    req.seed = 11;
    api::LerResult ler = engine.run(req);
    std::printf("coloration-circuit LER at p=1e-3 over %zu rounds: %.5f "
                "(%zu shots)\n",
                r.d, ler.ler(), ler.telemetry.shots);
    return 0;
}
