/**
 * @file
 * Shared command-line plumbing for the example binaries.
 *
 * Every example accepts `--threads N` (0 = hardware concurrency, the
 * default) and forwards it to the parallel LER engine. Sharded seeding
 * makes the printed numbers identical for every thread count.
 */
#ifndef PROPHUNT_EXAMPLES_CLI_COMMON_H
#define PROPHUNT_EXAMPLES_CLI_COMMON_H

#include <cstdlib>
#include <cstring>

#include "decoder/logical_error.h"

namespace phcli {

/**
 * Strip `--threads N` from argv (adjusting argc) and build LerOptions.
 *
 * Unrecognized arguments are left in place for the caller.
 */
inline prophunt::decoder::LerOptions
lerOptionsFromArgs(int &argc, char **argv)
{
    prophunt::decoder::LerOptions opts;
    opts.threads = 0; // Hardware concurrency by default.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            opts.threads = (std::size_t)std::strtoull(argv[i + 1], nullptr,
                                                      10);
            for (int j = i; j + 2 < argc; ++j) {
                argv[j] = argv[j + 2];
            }
            argc -= 2;
            break;
        }
    }
    return opts;
}

} // namespace phcli

#endif // PROPHUNT_EXAMPLES_CLI_COMMON_H
