/**
 * @file
 * Shared command-line plumbing for the example binaries.
 *
 * Every example builds an api::Config from the environment and overlays
 * the flags api::Config::applyArgs recognizes (`--threads N`, `--shots N`,
 * `--max-failures N`; 0 threads = hardware concurrency, the default).
 * Sharded seeding makes the printed numbers identical for every thread
 * count.
 */
#ifndef PROPHUNT_EXAMPLES_CLI_COMMON_H
#define PROPHUNT_EXAMPLES_CLI_COMMON_H

#include "api/config.h"
#include "api/engine.h"

namespace phcli {

/** Environment configuration overlaid with recognized CLI flags. */
inline prophunt::api::Config
configFromArgs(int &argc, char **argv)
{
    prophunt::api::Config cfg = prophunt::api::Config::fromEnv();
    cfg.applyArgs(argc, argv);
    return cfg;
}

/**
 * Deprecated shim: strip recognized flags from argv and build LerOptions.
 *
 * Prefer configFromArgs; this keeps the old examples' entry point
 * working. Unrecognized arguments are left in place for the caller.
 */
inline prophunt::decoder::LerOptions
lerOptionsFromArgs(int &argc, char **argv)
{
    return configFromArgs(argc, argv).lerOptions();
}

} // namespace phcli

#endif // PROPHUNT_EXAMPLES_CLI_COMMON_H
