/**
 * @file
 * Quickstart: build a surface code, compare schedules, run PropHunt.
 *
 * Demonstrates the full public API surface in ~80 lines, all through the
 * prophunt::api::Engine:
 *   1. Construct a d=3 rotated surface code.
 *   2. Build the generic coloration SM circuit and the hand-designed N-Z
 *      schedule, and measure their logical error rates (LerRequest).
 *   3. Run PropHunt starting from the coloration circuit
 *      (OptimizeRequest) and show the automatically optimized schedule
 *      recovering hand-designed quality.
 */
#include <cstdio>
#include <memory>
#include <string>

#include <fstream>

#include "api/engine.h"
#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "cli_common.h"
#include "code/surface.h"
#include "sim/stim_export.h"

using namespace prophunt;

int
main(int argc, char **argv)
{
    api::Config cfg = phcli::configFromArgs(argc, argv);
    api::Engine engine;
    std::size_t d = 3;
    double p = 3e-3;
    std::size_t shots = 20000;

    code::SurfaceCode surface(d);
    auto code_ptr = std::make_shared<const code::CssCode>(surface.code());
    std::printf("Code: %s (n=%zu, k=%zu, %zu checks)\n",
                surface.code().name().c_str(), surface.code().n(),
                surface.code().k(), surface.code().numChecks());

    sim::NoiseModel noise = sim::NoiseModel::uniform(p);
    auto report = [&](const char *label, const circuit::SmSchedule &s) {
        api::LerRequest req(s);
        req.rounds = d;
        req.noise = noise;
        req.decoder = "union_find";
        req.shots = shots;
        req.seed = 12345;
        req.ler = cfg.lerOptions();
        // Wall-clock telemetry (buildUs/decodeUs) stays off stdout so the
        // printed numbers are byte-identical across runs and threads.
        api::LerResult r = engine.run(req);
        std::printf("%-24s depth=%zu  LER=%.4f (Z:%.4f X:%.4f)  "
                    "[%zu shots, %zu cache hits]\n",
                    label, s.depth(), r.ler(), r.memory.z.ler(),
                    r.memory.x.ler(), r.telemetry.shots,
                    r.telemetry.cacheHits);
        return r.ler();
    };

    circuit::SmSchedule coloration =
        circuit::colorationSchedule(code_ptr);
    circuit::SmSchedule nz = circuit::nzSchedule(surface);
    circuit::SmSchedule poor = circuit::poorSurfaceSchedule(surface);

    double start_ler = report("coloration circuit", coloration);
    report("hand-designed (N-Z)", nz);
    report("poor schedule", poor);

    std::printf("\nRunning PropHunt on the coloration circuit...\n");
    api::OptimizeRequest oreq(coloration);
    oreq.rounds = d;
    oreq.options.iterations = 8;
    oreq.options.samplesPerIteration = 200;
    oreq.options.p = 1e-3;
    oreq.options.seed = 7;
    oreq.options.ler = cfg.lerOptions();
    api::OptimizeResult result = engine.run(oreq);

    for (const auto &rec : result.outcome.history) {
        std::string w = rec.minLogicalWeight == (std::size_t)-1
                            ? "-"
                            : std::to_string(rec.minLogicalWeight);
        std::printf("  iter %zu: ambiguous=%zu candidates=%zu verified=%zu "
                    "applied=%zu depth=%zu min_weight=%s\n",
                    rec.iteration, rec.ambiguousFound,
                    rec.candidatesEnumerated, rec.changesVerified,
                    rec.changesApplied, rec.depth, w.c_str());
    }
    double end_ler = report("\nPropHunt optimized", result.finalSchedule());
    std::printf("Improvement over coloration start: %.2fx\n",
                end_ler > 0 ? start_ler / end_ler : 0.0);

    // Interop: export the optimized circuit in Stim format so it can be
    // cross-checked with the reference toolchain.
    auto circ = circuit::buildMemoryCircuit(result.finalSchedule(), d,
                                            circuit::MemoryBasis::Z);
    std::ofstream("quickstart_optimized.stim")
        << sim::toStimCircuit(circ, noise);
    std::printf("Optimized memory-Z circuit written to "
                "quickstart_optimized.stim\n");
    return 0;
}
