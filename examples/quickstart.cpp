/**
 * @file
 * Quickstart: build a surface code, compare schedules, run PropHunt.
 *
 * Demonstrates the full public API surface in ~80 lines:
 *   1. Construct a d=3 rotated surface code.
 *   2. Build the generic coloration SM circuit and the hand-designed N-Z
 *      schedule, and measure their logical error rates.
 *   3. Run PropHunt starting from the coloration circuit and show the
 *      automatically optimized schedule recovering hand-designed quality.
 */
#include <cstdio>
#include <memory>
#include <string>

#include <fstream>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "cli_common.h"
#include "code/surface.h"
#include "decoder/logical_error.h"
#include "prophunt/optimizer.h"
#include "sim/stim_export.h"

using namespace prophunt;

int
main(int argc, char **argv)
{
    decoder::LerOptions lopts = phcli::lerOptionsFromArgs(argc, argv);
    std::size_t d = 3;
    double p = 3e-3;
    std::size_t shots = 20000;

    code::SurfaceCode surface(d);
    auto code_ptr = std::make_shared<const code::CssCode>(surface.code());
    std::printf("Code: %s (n=%zu, k=%zu, %zu checks)\n",
                surface.code().name().c_str(), surface.code().n(),
                surface.code().k(), surface.code().numChecks());

    sim::NoiseModel noise = sim::NoiseModel::uniform(p);
    auto report = [&](const char *label, const circuit::SmSchedule &s) {
        decoder::MemoryLer ler = decoder::measureMemoryLer(
            s, d, noise, decoder::DecoderKind::UnionFind, shots, 12345,
            lopts);
        std::printf("%-24s depth=%zu  LER=%.4f (Z:%.4f X:%.4f)\n", label,
                    s.depth(), ler.combined(), ler.z.ler(), ler.x.ler());
        return ler.combined();
    };

    circuit::SmSchedule coloration =
        circuit::colorationSchedule(code_ptr);
    circuit::SmSchedule nz = circuit::nzSchedule(surface);
    circuit::SmSchedule poor = circuit::poorSurfaceSchedule(surface);

    double start_ler = report("coloration circuit", coloration);
    report("hand-designed (N-Z)", nz);
    report("poor schedule", poor);

    std::printf("\nRunning PropHunt on the coloration circuit...\n");
    core::PropHuntOptions opts;
    opts.iterations = 8;
    opts.samplesPerIteration = 200;
    opts.p = 1e-3;
    opts.seed = 7;
    core::PropHunt tool(opts);
    core::OptimizeResult result = tool.optimize(coloration, d);

    for (const auto &rec : result.history) {
        std::string w = rec.minLogicalWeight == (std::size_t)-1
                            ? "-"
                            : std::to_string(rec.minLogicalWeight);
        std::printf("  iter %zu: ambiguous=%zu candidates=%zu verified=%zu "
                    "applied=%zu depth=%zu min_weight=%s\n",
                    rec.iteration, rec.ambiguousFound,
                    rec.candidatesEnumerated, rec.changesVerified,
                    rec.changesApplied, rec.depth, w.c_str());
    }
    double end_ler = report("\nPropHunt optimized", result.finalSchedule());
    std::printf("Improvement over coloration start: %.2fx\n",
                end_ler > 0 ? start_ler / end_ler : 0.0);

    // Interop: export the optimized circuit in Stim format so it can be
    // cross-checked with the reference toolchain.
    auto circ = circuit::buildMemoryCircuit(result.finalSchedule(), d,
                                            circuit::MemoryBasis::Z);
    std::ofstream("quickstart_optimized.stim")
        << sim::toStimCircuit(circ, noise);
    std::printf("Optimized memory-Z circuit written to "
                "quickstart_optimized.stim\n");
    return 0;
}
