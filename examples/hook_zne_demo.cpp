/**
 * @file
 * Hook-ZNE demo: error mitigation from suboptimal SM circuits.
 *
 * Walks through the paper's Section 7 pipeline end to end:
 *   1. Run PropHunt on a d=3 surface code with a gentle budget, keeping
 *      every intermediate schedule.
 *   2. Measure each snapshot's logical error rate — the fine-grained noise
 *      ladder Hook-ZNE exploits. The snapshot measurements are submitted
 *      asynchronously (api::Engine::submit) and collected from futures.
 *   3. Run a logical randomized-benchmarking ZNE experiment comparing the
 *      coarse DS-ZNE distance ladder against the fine Hook-ZNE ladder
 *      under a shared shot budget, reporting the bias of each.
 */
#include <cstdio>
#include <future>
#include <vector>

#include "api/engine.h"
#include "circuit/surface_schedules.h"
#include "cli_common.h"
#include "code/surface.h"
#include "zne/zne.h"

using namespace prophunt;

int
main(int argc, char **argv)
{
    api::Config cfg = phcli::configFromArgs(argc, argv);
    api::Engine engine;

    // Step 1: gentle PropHunt run to harvest intermediate circuits.
    code::SurfaceCode surface(3);
    api::OptimizeRequest oreq(circuit::poorSurfaceSchedule(surface));
    oreq.rounds = 3;
    oreq.options.iterations = 8;
    oreq.options.samplesPerIteration = 40;
    oreq.options.maxAmbiguousPerIteration = 2;
    oreq.options.seed = 77;
    oreq.options.ler = cfg.lerOptions();
    api::OptimizeResult res = engine.run(oreq);
    const auto &snapshots = res.outcome.snapshots;

    // Step 2: the intermediate noise ladder, submitted asynchronously.
    std::printf("Intermediate SM circuits as noise-amplification levels "
                "(d=3, p=2e-3):\n");
    std::printf("%10s %10s %12s\n", "snapshot", "depth", "LER");
    std::vector<std::future<api::LerResult>> futures;
    for (const auto &snap : snapshots) {
        api::LerRequest req(snap);
        req.rounds = 3;
        req.noise = sim::NoiseModel::uniform(2e-3);
        req.decoder = "union_find";
        req.shots = 30000;
        req.seed = 9;
        req.ler = cfg.lerOptions();
        futures.push_back(engine.submit(std::move(req)));
    }
    std::vector<double> lers;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        double ler = futures[i].get().ler();
        lers.push_back(ler);
        std::printf("%10zu %10zu %12.5f\n", i, snapshots[i].depth(), ler);
    }
    std::printf("Noise scale factors relative to the optimized end:");
    for (double l : lers) {
        std::printf(" %.2f", lers.back() > 0 ? l / lers.back() : 0.0);
    }
    std::printf("\n\n");

    // Step 3: DS-ZNE vs Hook-ZNE bias under the paper's configuration.
    zne::ZneConfig zcfg;
    zcfg.lambdaSuppression = 2.0;
    zcfg.depth = 50;
    zcfg.totalShots = 20000;
    std::printf("ZNE bias comparison (Lambda=2, RB depth 50, 20000-shot "
                "budget, 200 trials):\n");
    std::printf("%16s %12s %12s\n", "distance range", "DS-ZNE",
                "Hook-ZNE");
    for (double dmax : {13.0, 11.0, 9.0}) {
        double ds =
            zne::zneBias(zne::dsZneDistances(dmax), zcfg, 200, 31);
        double hook =
            zne::zneBias(zne::hookZneDistances(dmax), zcfg, 200, 31);
        std::printf("%10.0f..%-4.0f %12.5f %12.5f\n", dmax - 6.0, dmax, ds,
                    hook);
    }
    std::printf("\nHook-ZNE's finely spaced noise levels avoid the very "
                "low distances where estimator\nvariance explodes, giving "
                "more stable extrapolations at the same shot budget.\n");
    return 0;
}
