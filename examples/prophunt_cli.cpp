/**
 * @file
 * Command-line PropHunt driver, mirroring the paper artifact's
 * `prophunt_experiment.py <benchmark> <distance> <samples> <iters>
 * <cores>` interface.
 *
 * Usage:
 *   prophunt_cli <code> <samples-per-iteration> <iterations> [threads]
 *
 * where <code> is one of: surface3 surface5 surface7 surface9 lp39
 * rqt60 rqt54 rqt108. Prints per-iteration telemetry and the
 * before/after logical error rates. Everything runs through
 * prophunt::api::Engine.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "api/engine.h"
#include "circuit/coloration.h"
#include "code/codes.h"

using namespace prophunt;

namespace {

struct Named
{
    const char *name;
    code::CssCode (*build)();
    std::size_t distance;
};

code::CssCode
surface3()
{
    return code::benchmarkSurface(3);
}
code::CssCode
surface5()
{
    return code::benchmarkSurface(5);
}
code::CssCode
surface7()
{
    return code::benchmarkSurface(7);
}
code::CssCode
surface9()
{
    return code::benchmarkSurface(9);
}

const Named kCodes[] = {
    {"surface3", surface3, 3},       {"surface5", surface5, 5},
    {"surface7", surface7, 7},       {"surface9", surface9, 9},
    {"lp39", code::benchmarkLp39, 3}, {"rqt60", code::benchmarkRqt60, 6},
    {"rqt54", code::benchmarkRqt54, 4},
    {"rqt108", code::benchmarkRqt108, 4},
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <code> <samples-per-iteration> <iterations> "
                 "[threads]\ncodes:",
                 argv0);
    for (const Named &n : kCodes) {
        std::fprintf(stderr, " %s", n.name);
    }
    std::fprintf(stderr, "\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 4) {
        usage(argv[0]);
        return 1;
    }
    const Named *spec = nullptr;
    for (const Named &n : kCodes) {
        if (std::strcmp(argv[1], n.name) == 0) {
            spec = &n;
        }
    }
    if (!spec) {
        usage(argv[0]);
        return 1;
    }

    code::CssCode code = spec->build();
    auto cp = std::make_shared<const code::CssCode>(code);
    circuit::SmSchedule start = circuit::colorationSchedule(cp);
    std::printf("%s: n=%zu k=%zu checks=%zu, coloration depth=%zu, "
                "rounds=%zu\n",
                code.name().c_str(), code.n(), code.k(), code.numChecks(),
                start.depth(), spec->distance);

    api::Engine engine;
    api::OptimizeRequest oreq(start);
    oreq.rounds = spec->distance;
    oreq.options.samplesPerIteration = std::strtoull(argv[2], nullptr, 10);
    oreq.options.iterations = std::strtoull(argv[3], nullptr, 10);
    oreq.options.threads =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;
    oreq.options.ler.threads = oreq.options.threads;
    oreq.options.seed = 1;
    api::OptimizeResult res = engine.run(oreq);
    for (const auto &rec : res.outcome.history) {
        std::printf("iter %2zu: ambiguous=%-3zu candidates=%-4zu "
                    "verified=%-3zu applied=%-2zu depth=%zu\n",
                    rec.iteration, rec.ambiguousFound,
                    rec.candidatesEnumerated, rec.changesVerified,
                    rec.changesApplied, rec.depth);
    }

    bool is_surface = std::strncmp(argv[1], "surface", 7) == 0;
    decoder::DecoderSpec dec{is_surface ? "union_find" : "bp_osd"};
    std::size_t shots = is_surface ? 20000 : 4000;
    double p = 2e-3;
    auto ler = [&](const circuit::SmSchedule &s) {
        api::LerRequest req(s);
        req.rounds = spec->distance;
        req.noise = sim::NoiseModel::uniform(p);
        req.decoder = dec;
        req.shots = shots;
        req.seed = 3;
        req.ler = oreq.options.ler;
        return engine.run(req).ler();
    };
    double l0 = ler(start), l1 = ler(res.finalSchedule());
    std::printf("LER @ p=%.0e: coloration=%.5f prophunt=%.5f "
                "(%.2fx)\n",
                p, l0, l1, l1 > 0 ? l0 / l1 : 0.0);
    return 0;
}
