/**
 * @file
 * Command-line PropHunt driver, mirroring the paper artifact's
 * `prophunt_experiment.py <benchmark> <distance> <samples> <iters>
 * <cores>` interface, plus the distributed-sweep front end.
 *
 * Usage:
 *   prophunt_cli <code> <samples-per-iteration> <iterations> [threads]
 *   prophunt_cli sweep <code> [--ps p1,p2,..] [--shots N] [--rounds N]
 *                      [--sprt LER] [--chunk N] [--seed N] [--threads N]
 *                      [--checkpoint PATH [--every N]] [--shard i/k]
 *                      [--out PATH]
 *   prophunt_cli merge <merged-ckpt.json> <shard-ckpt.json>...
 *                      [--out PATH]
 *
 * where <code> is one of: surface3 surface5 surface7 surface9 lp39
 * rqt60 rqt54 rqt108. The default mode prints per-iteration telemetry
 * and the before/after logical error rates. `sweep` runs an LER-vs-p
 * sweep with optional SPRT early stopping, checkpoint/resume
 * (interrupt it with SIGKILL and rerun the identical command line), and
 * (point, chunk) sharding across worker processes; `merge` combines
 * shard checkpoints and finalizes the sweep with the deterministic
 * canonical-order SPRT re-evaluation (exit 0 = complete, 3 =
 * incomplete, needs more shard data). Everything runs through
 * prophunt::api::Engine.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/sweep_checkpoint.h"
#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"

using namespace prophunt;

namespace {

struct Named
{
    const char *name;
    code::CssCode (*build)();
    std::size_t distance;
};

code::CssCode
surface3()
{
    return code::benchmarkSurface(3);
}
code::CssCode
surface5()
{
    return code::benchmarkSurface(5);
}
code::CssCode
surface7()
{
    return code::benchmarkSurface(7);
}
code::CssCode
surface9()
{
    return code::benchmarkSurface(9);
}

const Named kCodes[] = {
    {"surface3", surface3, 3},       {"surface5", surface5, 5},
    {"surface7", surface7, 7},       {"surface9", surface9, 9},
    {"lp39", code::benchmarkLp39, 3}, {"rqt60", code::benchmarkRqt60, 6},
    {"rqt54", code::benchmarkRqt54, 4},
    {"rqt108", code::benchmarkRqt108, 4},
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <code> <samples-per-iteration> <iterations> "
                 "[threads]\n"
                 "       %s sweep <code> [--ps p1,p2,..] [--shots N] "
                 "[--rounds N] [--sprt LER] [--chunk N] [--seed N]\n"
                 "             [--threads N] [--checkpoint PATH "
                 "[--every N]] [--shard i/k] [--out PATH]\n"
                 "       %s merge <merged-ckpt.json> "
                 "<shard-ckpt.json>... [--out PATH]\ncodes:",
                 argv0, argv0, argv0);
    for (const Named &n : kCodes) {
        std::fprintf(stderr, " %s", n.name);
    }
    std::fprintf(stderr, "\n");
}

const Named *
findCode(const char *name)
{
    for (const Named &n : kCodes) {
        if (std::strcmp(name, n.name) == 0) {
            return &n;
        }
    }
    return nullptr;
}

/**
 * Stable sweep-result JSON: tallies and decisions only, no timings —
 * a clean run and a kill/resume run of the same request produce
 * byte-identical files, which is exactly what the CI smoke leg diffs.
 */
void
writeSweepResultJson(const std::string &path, const char *code_name,
                     std::size_t rounds, const api::SweepResult &result,
                     bool complete)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n  \"format\": \"prophunt-sweep-result\",\n"
                 "  \"code\": \"%s\",\n  \"rounds\": %zu,\n"
                 "  \"complete\": %s,\n  \"points\": [",
                 code_name, rounds, complete ? "true" : "false");
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const api::SweepPointResult &pt = result.points[i];
        std::fprintf(f,
                     "%s\n    {\"p\": %.17g, \"z_shots\": %zu, "
                     "\"z_failures\": %zu, \"x_shots\": %zu, "
                     "\"x_failures\": %zu, \"ler\": %.6g, "
                     "\"decision\": \"%s\"}",
                     i == 0 ? "" : ",", pt.p, pt.memory.z.shots,
                     pt.memory.z.failures, pt.memory.x.shots,
                     pt.memory.x.failures, pt.ler(),
                     api::toString(pt.decision));
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

void
printSweepResult(const api::SweepResult &result)
{
    std::printf("%10s %10s %10s %10s %10s %10s %10s\n", "p", "z_shots",
                "z_fails", "x_shots", "x_fails", "ler", "decision");
    for (const api::SweepPointResult &pt : result.points) {
        std::printf("%10.4g %10zu %10zu %10zu %10zu %10.5f %10s\n", pt.p,
                    pt.memory.z.shots, pt.memory.z.failures,
                    pt.memory.x.shots, pt.memory.x.failures, pt.ler(),
                    api::toString(pt.decision));
    }
}

std::vector<double>
parsePs(const char *arg)
{
    std::vector<double> ps;
    const char *s = arg;
    while (*s != '\0') {
        char *end = nullptr;
        double p = std::strtod(s, &end);
        if (end == s) {
            throw std::invalid_argument(std::string("bad --ps list: ") +
                                        arg);
        }
        ps.push_back(p);
        s = *end == ',' ? end + 1 : end;
    }
    if (ps.empty()) {
        throw std::invalid_argument("--ps needs at least one rate");
    }
    return ps;
}

int
runSweepMode(int argc, char **argv)
{
    if (argc < 3) {
        usage(argv[0]);
        return 1;
    }
    const Named *spec = findCode(argv[2]);
    if (spec == nullptr) {
        usage(argv[0]);
        return 1;
    }
    code::CssCode code = spec->build();
    auto cp = std::make_shared<const code::CssCode>(code);
    api::SweepRequest req(circuit::colorationSchedule(cp));
    req.rounds = spec->distance;
    req.ps = {1e-3, 2e-3, 4e-3};
    req.decoder = decoder::DecoderSpec{
        std::strncmp(argv[2], "surface", 7) == 0 ? "union_find"
                                                 : "bp_osd"};
    req.shotsPerPoint = 20000;
    req.seed = 1;
    std::string out_path;

    for (int i = 3; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                throw std::invalid_argument(std::string(flag) +
                                            " needs a value");
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--ps") == 0) {
            req.ps = parsePs(value("--ps"));
        } else if (std::strcmp(argv[i], "--shots") == 0) {
            req.shotsPerPoint = std::strtoull(value("--shots"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--rounds") == 0) {
            req.rounds = std::strtoull(value("--rounds"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--sprt") == 0) {
            req.sprt.enabled = true;
            req.sprt.decisionLer = std::strtod(value("--sprt"), nullptr);
        } else if (std::strcmp(argv[i], "--chunk") == 0) {
            req.sprt.chunkShots =
                std::strtoull(value("--chunk"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            req.seed = std::strtoull(value("--seed"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            req.ler.threads =
                std::strtoull(value("--threads"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
            req.checkpointPath = value("--checkpoint");
        } else if (std::strcmp(argv[i], "--every") == 0) {
            req.checkpointEveryChunks =
                std::strtoull(value("--every"), nullptr, 10);
        } else if (std::strcmp(argv[i], "--shard") == 0) {
            const char *arg = value("--shard");
            char *end = nullptr;
            req.shard.index = std::strtoull(arg, &end, 10);
            if (*end != '/') {
                throw std::invalid_argument("--shard wants i/k");
            }
            req.shard.count = std::strtoull(end + 1, nullptr, 10);
        } else if (std::strcmp(argv[i], "--out") == 0) {
            out_path = value("--out");
        } else {
            throw std::invalid_argument(
                std::string("unknown sweep flag: ") + argv[i]);
        }
    }

    std::printf("%s sweep: rounds=%zu decoder=%s shots/point=%zu "
                "points=%zu sprt=%s shard=%zu/%zu%s%s\n",
                spec->name, req.rounds, req.decoder.describe().c_str(),
                req.shotsPerPoint, req.ps.size(),
                req.sprt.enabled ? "on" : "off", req.shard.index,
                req.shard.count,
                req.checkpointPath.empty() ? "" : " checkpoint=",
                req.checkpointPath.c_str());

    api::Engine engine;
    api::SweepResult result = engine.run(req);
    printSweepResult(result);
    std::printf("total sampled shots this run: %zu\n",
                result.telemetry.shots);

    bool complete = true;
    if (!req.checkpointPath.empty()) {
        api::SweepFinalize fin = api::finalizeSweep(
            api::SweepCheckpoint::load(req.checkpointPath));
        complete = fin.complete;
        std::printf("checkpoint: %zu/%zu points complete\n",
                    fin.pointsComplete, req.ps.size());
    }
    if (!out_path.empty()) {
        writeSweepResultJson(out_path, spec->name, req.rounds, result,
                             complete);
    }
    return complete ? 0 : 3;
}

int
runMergeMode(int argc, char **argv)
{
    if (argc < 4) {
        usage(argv[0]);
        return 1;
    }
    std::string merged_path = argv[2];
    std::string out_path;
    std::vector<api::SweepCheckpoint> shards;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0) {
            if (i + 1 >= argc) {
                throw std::invalid_argument("--out needs a value");
            }
            out_path = argv[++i];
            continue;
        }
        shards.push_back(api::SweepCheckpoint::load(argv[i]));
    }
    api::SweepCheckpoint merged = api::mergeSweepCheckpoints(shards);
    merged.saveAtomic(merged_path);
    api::SweepFinalize fin = api::finalizeSweep(merged);
    std::printf("merged %zu shard checkpoint(s) -> %s (%zu/%zu points "
                "complete)\n",
                shards.size(), merged_path.c_str(), fin.pointsComplete,
                merged.points.size());
    printSweepResult(fin.result);
    if (!out_path.empty()) {
        writeSweepResultJson(out_path, "merged", 0, fin.result,
                             fin.complete);
    }
    return fin.complete ? 0 : 3;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && (std::strcmp(argv[1], "sweep") == 0 ||
                      std::strcmp(argv[1], "merge") == 0 ||
                      std::strcmp(argv[1], "--merge") == 0)) {
        try {
            return argv[1][0] == 's' ? runSweepMode(argc, argv)
                                     : runMergeMode(argc, argv);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    if (argc < 4) {
        usage(argv[0]);
        return 1;
    }
    const Named *spec = findCode(argv[1]);
    if (!spec) {
        usage(argv[0]);
        return 1;
    }

    code::CssCode code = spec->build();
    auto cp = std::make_shared<const code::CssCode>(code);
    circuit::SmSchedule start = circuit::colorationSchedule(cp);
    std::printf("%s: n=%zu k=%zu checks=%zu, coloration depth=%zu, "
                "rounds=%zu\n",
                code.name().c_str(), code.n(), code.k(), code.numChecks(),
                start.depth(), spec->distance);

    api::Engine engine;
    api::OptimizeRequest oreq(start);
    oreq.rounds = spec->distance;
    oreq.options.samplesPerIteration = std::strtoull(argv[2], nullptr, 10);
    oreq.options.iterations = std::strtoull(argv[3], nullptr, 10);
    oreq.options.threads =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;
    oreq.options.ler.threads = oreq.options.threads;
    oreq.options.seed = 1;
    api::OptimizeResult res = engine.run(oreq);
    for (const auto &rec : res.outcome.history) {
        std::printf("iter %2zu: ambiguous=%-3zu candidates=%-4zu "
                    "verified=%-3zu applied=%-2zu depth=%zu\n",
                    rec.iteration, rec.ambiguousFound,
                    rec.candidatesEnumerated, rec.changesVerified,
                    rec.changesApplied, rec.depth);
    }

    bool is_surface = std::strncmp(argv[1], "surface", 7) == 0;
    decoder::DecoderSpec dec{is_surface ? "union_find" : "bp_osd"};
    std::size_t shots = is_surface ? 20000 : 4000;
    double p = 2e-3;
    auto ler = [&](const circuit::SmSchedule &s) {
        api::LerRequest req(s);
        req.rounds = spec->distance;
        req.noise = sim::NoiseModel::uniform(p);
        req.decoder = dec;
        req.shots = shots;
        req.seed = 3;
        req.ler = oreq.options.ler;
        return engine.run(req).ler();
    };
    double l0 = ler(start), l1 = ler(res.finalSchedule());
    std::printf("LER @ p=%.0e: coloration=%.5f prophunt=%.5f "
                "(%.2fx)\n",
                p, l0, l1, l1 > 0 ? l0 / l1 : 0.0);
    return 0;
}
