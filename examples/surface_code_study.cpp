/**
 * @file
 * Surface-code schedule study: the paper's motivating example in code.
 *
 * For d = 3 and d = 5 rotated surface codes, compares the hand-designed
 * 'N-Z' schedule, a deliberately poor schedule, and the generic coloration
 * circuit: depth, circuit-level effective distance, and logical error rate
 * across a physical-error-rate sweep — the sweep runs through
 * api::Engine::sweep, so each schedule's circuits are compiled once and
 * reused across every p. Shows how hook-error orientation — not depth —
 * separates good from bad SM circuits (paper Sections 3-4).
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "api/engine.h"
#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "cli_common.h"
#include "code/surface.h"
#include "prophunt/optimizer.h"

using namespace prophunt;

namespace {

void
study(std::size_t d, api::Engine &engine, const api::Config &cfg)
{
    code::SurfaceCode surface(d);
    auto cp = std::make_shared<const code::CssCode>(surface.code());
    std::vector<std::pair<const char *, circuit::SmSchedule>> schedules = {
        {"N-Z (hand-designed)", circuit::nzSchedule(surface)},
        {"poor (swapped)", circuit::poorSurfaceSchedule(surface)},
        {"coloration", circuit::colorationSchedule(cp)},
    };

    std::printf("\n=== d = %zu rotated surface code ===\n", d);
    std::printf("%-22s %6s %6s", "schedule", "depth", "d_eff");
    std::vector<double> ps = {1e-3, 3e-3, 1e-2};
    for (double p : ps) {
        std::printf("  LER(p=%.0e)", p);
    }
    std::printf("\n");
    for (const auto &[label, sched] : schedules) {
        std::printf("%-22s %6zu %6zu", label, sched.depth(),
                    core::estimateEffectiveDistance(sched, d, 1e-3, 300,
                                                    7));
        api::SweepRequest req(sched);
        req.rounds = d;
        req.ps = ps;
        req.decoder = "union_find";
        req.shotsPerPoint = 20000;
        req.seed = 19;
        req.ler = cfg.lerOptions();
        api::SweepResult sweep = engine.sweep(req);
        for (const auto &point : sweep.points) {
            std::printf("  %11.5f", point.ler());
        }
        std::printf("\n");
    }
    std::printf("Note how the poor schedule shares the N-Z schedule's "
                "depth of 4 yet loses a full\nunit of effective distance "
                "to parallel hook errors.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    api::Config cfg = phcli::configFromArgs(argc, argv);
    api::Engine engine;
    std::printf("Surface-code SM schedule study (paper Figures 1 and 6)\n");
    study(3, engine, cfg);
    study(5, engine, cfg);
    return 0;
}
