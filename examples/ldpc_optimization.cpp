/**
 * @file
 * LDPC-code optimization: PropHunt on codes with no hand-designed circuit.
 *
 * The lifted-product [[39,3,3]] and two-block [[60,2,6]] codes have no
 * known good SM schedule — exactly the situation the paper motivates.
 * Starting from the generic coloration circuit, PropHunt identifies and
 * resolves ambiguity, and this example prints the per-iteration telemetry
 * (found ambiguity, applied changes, effective-distance growth) together
 * with before/after logical error rates under the BP+OSD decoder. Both
 * the optimization and the LER scoring run through api::Engine.
 */
#include <cstdio>
#include <memory>

#include "api/engine.h"
#include "circuit/coloration.h"
#include "cli_common.h"
#include "code/codes.h"

using namespace prophunt;

namespace {

void
optimizeCode(const code::CssCode &code, std::size_t distance,
             api::Engine &engine, const api::Config &cfg)
{
    auto cp = std::make_shared<const code::CssCode>(code);
    circuit::SmSchedule start = circuit::colorationSchedule(cp);

    std::printf("\n=== %s (rounds = %zu) ===\n", code.name().c_str(),
                distance);
    std::printf("coloration circuit: depth %zu, %zu CNOTs/round\n",
                start.depth(), [&] {
                    std::size_t c = 0;
                    for (std::size_t i = 0; i < code.numChecks(); ++i) {
                        c += code.checkSupport(i).size();
                    }
                    return c;
                }());

    api::OptimizeRequest oreq(start);
    oreq.rounds = distance;
    oreq.options.iterations = 6;
    oreq.options.samplesPerIteration = 200;
    oreq.options.seed = 1234;
    oreq.options.ler = cfg.lerOptions();
    api::OptimizeResult res = engine.run(oreq);

    for (const auto &rec : res.outcome.history) {
        std::printf("  iter %zu: ambiguous=%-3zu candidates=%-4zu "
                    "verified=%-3zu applied=%-2zu depth=%zu",
                    rec.iteration, rec.ambiguousFound,
                    rec.candidatesEnumerated, rec.changesVerified,
                    rec.changesApplied, rec.depth);
        if (rec.minLogicalWeight != (std::size_t)-1) {
            std::printf(" min_logical_weight=%zu", rec.minLogicalWeight);
        }
        std::printf("\n");
    }

    double p = 2e-3;
    std::size_t shots = 4000;
    auto ler = [&](const circuit::SmSchedule &s) {
        api::LerRequest req(s);
        req.rounds = distance;
        req.noise = sim::NoiseModel::uniform(p);
        req.decoder = "bp_osd";
        req.shots = shots;
        req.seed = 55;
        req.ler = cfg.lerOptions();
        return engine.run(req).ler();
    };
    double l0 = ler(start), l1 = ler(res.finalSchedule());
    std::printf("LER at p=%.0e: coloration=%.5f prophunt=%.5f "
                "(%.2fx improvement)\n",
                p, l0, l1, l1 > 0 ? l0 / l1 : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    api::Config cfg = phcli::configFromArgs(argc, argv);
    api::Engine engine;
    std::printf("PropHunt on LDPC codes without hand-designed schedules\n");
    optimizeCode(code::benchmarkLp39(), 3, engine, cfg);
    optimizeCode(code::benchmarkRqt60(), 6, engine, cfg);
    return 0;
}
