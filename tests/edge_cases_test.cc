/**
 * @file
 * Edge cases and failure-path tests across modules: timeout behavior,
 * hyperedge decomposition, coloration phase structure, optimizer
 * ablations, and small pathological inputs.
 */
#include <gtest/gtest.h>
#include <chrono>

#include <memory>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"
#include "decoder/matching_graph.h"
#include "decoder/union_find.h"
#include "prophunt/minweight.h"
#include "prophunt/optimizer.h"
#include "sat/maxsat.h"
#include "sim/dem_builder.h"

using namespace prophunt;

TEST(MaxSatTimeout, GlobalFormulationTimesOutGracefully)
{
    // The [[60,2,6]] global model is intractable at tiny timeouts — the
    // Table 2 behavior. The solver must return within the budget with
    // timedOut set, not hang or crash.
    auto cp =
        std::make_shared<const code::CssCode>(code::benchmarkRqt60());
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 6, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    auto t0 = std::chrono::steady_clock::now();
    core::MinWeightResult mw = core::solveGlobalMinWeight(dem, 8, 0.5);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    EXPECT_TRUE(mw.stats.timedOut || mw.found);
    // Encoding time is excluded from the solve budget; still, the call
    // must come back quickly.
    EXPECT_LT(elapsed, 30.0);
    EXPECT_GT(mw.stats.variables, 10000u);
}

TEST(MatchingGraph, HyperedgeDecomposesIntoKnownEdges)
{
    // Craft a DEM: two edges (0,1) and (2,3), plus a 4-detector
    // mechanism {0,1,2,3} that must decompose into those two edges.
    sim::Dem dem;
    dem.numDetectors = 4;
    dem.numObservables = 1;
    sim::ErrorMechanism e01, e23, hyper;
    e01.p = 1e-3;
    e01.detectors = {0, 1};
    e23.p = 1e-3;
    e23.detectors = {2, 3};
    // More likely than the plain edges, so its observable branch wins
    // the parallel-edge merge.
    hyper.p = 0.1;
    hyper.detectors = {0, 1, 2, 3};
    hyper.observables = {0};
    dem.errors = {e01, e23, hyper};

    // Build a minimal fake circuit for sector labels: one Z check.
    circuit::SmCircuit circ;
    circ.numData = 1;
    circ.numQubits = 2;
    circ.basis = circuit::MemoryBasis::Z;
    circ.instructions.push_back(
        {circuit::OpType::MeasureZ, {1}}); // check 0 measured in Z
    circ.detectorSource = {{0, 0}, {0, 1}, {0, 2}, {0, 3}};
    decoder::MatchingGraph g = decoder::buildMatchingGraph(dem, circ);
    EXPECT_EQ(g.fallbackDecompositions, 0u);
    // All edges must be pairwise (u, v < 4); the hyperedge contributed
    // its observable to one of the two pieces.
    uint64_t obs_seen = 0;
    for (const auto &e : g.edges) {
        EXPECT_NE(e.v, decoder::MatchEdge::kBoundary);
        obs_seen |= e.obsMask;
    }
    EXPECT_EQ(obs_seen, 1u);
}

TEST(MatchingGraph, UnknownHyperedgeFallsBack)
{
    sim::Dem dem;
    dem.numDetectors = 4;
    dem.numObservables = 0;
    sim::ErrorMechanism hyper;
    hyper.p = 1e-4;
    hyper.detectors = {0, 1, 2, 3};
    dem.errors = {hyper};
    circuit::SmCircuit circ;
    circ.numData = 1;
    circ.numQubits = 2;
    circ.basis = circuit::MemoryBasis::Z;
    circ.instructions.push_back({circuit::OpType::MeasureZ, {1}});
    circ.detectorSource = {{0, 0}, {0, 1}, {0, 2}, {0, 3}};
    decoder::MatchingGraph g = decoder::buildMatchingGraph(dem, circ);
    EXPECT_EQ(g.fallbackDecompositions, 1u);
    EXPECT_EQ(g.edges.size(), 2u); // sequential pairing
}

TEST(Coloration, XBeforeZOnEverySharedQubit)
{
    // The sequential coloration runs every X-check CNOT before every
    // Z-check CNOT *on each shared data qubit* — all crossings, an even
    // count, which is what makes it commutation-valid for all CSS codes.
    // (The minimal layering may interleave the phases globally; only the
    // per-qubit order matters.)
    for (const code::CssCode &c : code::allBenchmarkCodes()) {
        auto cp = std::make_shared<const code::CssCode>(c);
        circuit::SmSchedule s = circuit::colorationSchedule(cp);
        for (std::size_t q = 0; q < c.n(); ++q) {
            bool seen_z = false;
            for (std::size_t chk : s.qubitOrder(q)) {
                if (c.isXCheck(chk)) {
                    EXPECT_FALSE(seen_z)
                        << c.name() << " qubit " << q
                        << ": X CNOT after a Z CNOT";
                } else {
                    seen_z = true;
                }
            }
        }
    }
}

TEST(Coloration, DepthBoundedByDegreeSum)
{
    // Greedy edge coloring uses at most 2*Delta - 1 colors per phase.
    for (const code::CssCode &c : code::allBenchmarkCodes()) {
        auto cp = std::make_shared<const code::CssCode>(c);
        circuit::SmSchedule s = circuit::colorationSchedule(cp);
        std::size_t max_check_w = c.maxCheckWeight();
        std::size_t max_qubit_deg = 0;
        for (std::size_t q = 0; q < c.n(); ++q) {
            max_qubit_deg =
                std::max(max_qubit_deg, s.qubitOrder(q).size());
        }
        std::size_t delta = std::max(max_check_w, max_qubit_deg);
        EXPECT_LE(s.depth(), 2 * (2 * delta - 1)) << c.name();
    }
}

TEST(OptimizerAblation, NoVerifyStillProducesValidSchedules)
{
    code::SurfaceCode s(3);
    core::PropHuntOptions opts;
    opts.iterations = 3;
    opts.samplesPerIteration = 100;
    opts.verifyAmbiguityRemoval = false;
    opts.seed = 41;
    opts.threads = 1; // One sampling worker: machine-independent trajectory.
    core::PropHunt tool(opts);
    core::OptimizeResult res =
        tool.optimize(circuit::poorSurfaceSchedule(s), 3);
    EXPECT_TRUE(res.finalSchedule().commutationValid());
    EXPECT_TRUE(res.finalSchedule().schedulable());
}

TEST(OptimizerAblation, VerificationPrunesMoreThanValidityAlone)
{
    code::SurfaceCode s(3);
    auto run = [&](bool verify) {
        core::PropHuntOptions opts;
        opts.iterations = 2;
        opts.samplesPerIteration = 100;
        opts.verifyAmbiguityRemoval = verify;
        opts.seed = 43;
        opts.threads = 1; // One sampling worker: machine-independent trajectory.
        core::PropHunt tool(opts);
        core::OptimizeResult res =
            tool.optimize(circuit::poorSurfaceSchedule(s), 3);
        std::size_t verified = 0;
        for (const auto &rec : res.history) {
            verified += rec.changesVerified;
        }
        return verified;
    };
    EXPECT_LT(run(true), run(false));
}

TEST(UnionFind, IsolatedDefectPairMatchesThroughChain)
{
    // Hand-built path graph: 0-1-2-3 with boundary at both ends; flip
    // detectors 1 and 2: the cheapest explanation is the middle edge.
    decoder::MatchingGraph g;
    g.numDetectors = 4;
    g.edges.push_back({0, decoder::MatchEdge::kBoundary, 1, 0.01});
    g.edges.push_back({0, 1, 0, 0.01});
    g.edges.push_back({1, 2, 1, 0.01}); // middle edge flips observable
    g.edges.push_back({2, 3, 0, 0.01});
    g.edges.push_back({3, decoder::MatchEdge::kBoundary, 1, 0.01});
    g.incident.resize(4);
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
        g.incident[g.edges[e].u].push_back((uint32_t)e);
        if (g.edges[e].v != decoder::MatchEdge::kBoundary) {
            g.incident[g.edges[e].v].push_back((uint32_t)e);
        }
    }
    decoder::UnionFindDecoder uf(g);
    EXPECT_EQ(uf.decode({1, 2}), 1u);
    // Single defect at the end: boundary match.
    EXPECT_EQ(uf.decode({0}), 1u);
    // Defects at 0 and 1: interior edge 0-1, no observable.
    EXPECT_EQ(uf.decode({0, 1}), 0u);
}

TEST(SmallCodes, RepetitionCodeEndToEnd)
{
    // Three-qubit repetition code (Z checks only, protects against X).
    gf2::Matrix hz = gf2::Matrix::fromRows({{1, 1, 0}, {0, 1, 1}});
    auto cp = std::make_shared<const code::CssCode>(
        code::CssCode(gf2::Matrix(0, 3), hz, "rep3"));
    EXPECT_EQ(cp->k(), 1u);
    circuit::SmSchedule s = circuit::colorationSchedule(cp);
    EXPECT_TRUE(s.commutationValid());
    auto circ =
        circuit::buildMemoryCircuit(s, 3, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    EXPECT_GT(dem.errors.size(), 10u);
    // No single fault is an undetected logical.
    for (const auto &m : dem.errors) {
        EXPECT_FALSE(m.detectors.empty() && !m.observables.empty());
    }
    // d_eff should be 3 (the code distance; no hooks on weight-2 checks).
    core::MinWeightResult mw = core::solveGlobalMinWeight(dem, 5, 30.0);
    ASSERT_TRUE(mw.found);
    EXPECT_EQ(mw.weight, 3u);
}

TEST(SmallCodes, SteaneCodeHasDistanceReducingSchedules)
{
    // The paper (Section 3.1) notes all Steane-code CNOT orderings
    // produce distance-reducing hooks: the coloration circuit must show
    // d_eff < d = 3 in at least one basis.
    gf2::Matrix h = gf2::Matrix::fromRows({{1, 0, 1, 0, 1, 0, 1},
                                           {0, 1, 1, 0, 0, 1, 1},
                                           {0, 0, 0, 1, 1, 1, 1}});
    auto cp = std::make_shared<const code::CssCode>(
        code::CssCode(h, h, "steane"));
    circuit::SmSchedule s = circuit::colorationSchedule(cp);
    std::size_t deff = core::estimateEffectiveDistance(s, 3, 1e-3, 400, 7);
    EXPECT_LT(deff, 3u);
    EXPECT_GE(deff, 2u);
}
