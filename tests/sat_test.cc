/**
 * @file
 * Tests for the CDCL SAT solver, XOR encoding, cardinality counter, and
 * MaxSAT — including a randomized cross-check against brute force.
 */
#include <gtest/gtest.h>

#include <random>

#include "sat/cardinality.h"
#include "sat/maxsat.h"
#include "sat/solver.h"
#include "sat/xor_encoder.h"

using namespace prophunt::sat;

namespace {

bool
bruteForceSat(int n, const std::vector<std::vector<Lit>> &clauses)
{
    for (int m = 0; m < (1 << n); ++m) {
        bool ok = true;
        for (const auto &c : clauses) {
            bool sat = false;
            for (Lit l : c) {
                bool v = (m >> varOf(l)) & 1;
                if (isNegated(l) ? !v : v) {
                    sat = true;
                    break;
                }
            }
            if (!sat) {
                ok = false;
                break;
            }
        }
        if (ok) {
            return true;
        }
    }
    return false;
}

} // namespace

TEST(Solver, TrivialSat)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    s.addClause({mkLit(a), mkLit(b)});
    s.addClause({mkLit(a, true)});
    EXPECT_EQ(s.solve({}, 10.0), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(a));
    EXPECT_TRUE(s.modelValue(b));
}

TEST(Solver, TrivialUnsat)
{
    Solver s;
    Var a = s.newVar();
    s.addClause({mkLit(a)});
    EXPECT_FALSE(s.addClause({mkLit(a, true)}));
    EXPECT_EQ(s.solve({}, 10.0), SolveResult::Unsat);
}

TEST(Solver, PigeonHole3Into2)
{
    // 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h.
    Solver s;
    std::vector<std::vector<Var>> v(3, std::vector<Var>(2));
    for (auto &row : v) {
        for (auto &x : row) {
            x = s.newVar();
        }
    }
    for (int p = 0; p < 3; ++p) {
        s.addClause({mkLit(v[p][0]), mkLit(v[p][1])});
    }
    for (int h = 0; h < 2; ++h) {
        for (int p1 = 0; p1 < 3; ++p1) {
            for (int p2 = p1 + 1; p2 < 3; ++p2) {
                s.addClause({mkLit(v[p1][h], true), mkLit(v[p2][h], true)});
            }
        }
    }
    EXPECT_EQ(s.solve({}, 10.0), SolveResult::Unsat);
}

TEST(Solver, AssumptionsFlipSatisfiability)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    s.addClause({mkLit(a), mkLit(b)});
    EXPECT_EQ(s.solve({mkLit(a, true)}, 10.0), SolveResult::Sat);
    EXPECT_TRUE(s.modelValue(b));
    EXPECT_EQ(s.solve({mkLit(a, true), mkLit(b, true)}, 10.0),
              SolveResult::Unsat);
    // Removing the assumptions restores satisfiability (incremental).
    EXPECT_EQ(s.solve({}, 10.0), SolveResult::Sat);
}

class SolverFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverFuzz, MatchesBruteForce)
{
    std::mt19937_64 rng(GetParam() * 1000003 + 17);
    for (int iter = 0; iter < 300; ++iter) {
        int n = 3 + rng() % 8;
        int m = 2 + rng() % 25;
        Solver s;
        for (int i = 0; i < n; ++i) {
            s.newVar();
        }
        std::vector<std::vector<Lit>> clauses;
        for (int c = 0; c < m; ++c) {
            int len = 1 + rng() % 4;
            std::vector<Lit> cl;
            for (int k = 0; k < len; ++k) {
                cl.push_back(mkLit((Var)(rng() % n), rng() & 1));
            }
            clauses.push_back(cl);
            s.addClause(cl);
        }
        std::vector<Lit> assume;
        for (std::size_t k = 0; k < rng() % 3; ++k) {
            assume.push_back(mkLit((Var)(rng() % n), rng() & 1));
        }
        auto all = clauses;
        for (Lit a : assume) {
            all.push_back({a});
        }
        bool expect = bruteForceSat(n, all);
        for (int round = 0; round < 2; ++round) {
            SolveResult r = s.solve(assume, 10.0);
            ASSERT_EQ(r == SolveResult::Sat, expect)
                << "iter " << iter << " round " << round;
            if (r == SolveResult::Sat) {
                for (const auto &c : all) {
                    bool sat = false;
                    for (Lit l : c) {
                        bool v = s.modelValue(varOf(l));
                        if (isNegated(l) ? !v : v) {
                            sat = true;
                            break;
                        }
                    }
                    ASSERT_TRUE(sat) << "model violates clause";
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz, ::testing::Range(0, 8));

TEST(XorEncoder, GateTruthTable)
{
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            Solver s;
            Var va = s.newVar(), vb = s.newVar();
            Lit c = encodeXorGate(s, mkLit(va), mkLit(vb));
            s.addClause({mkLit(va, a == 0)});
            s.addClause({mkLit(vb, b == 0)});
            ASSERT_EQ(s.solve({}, 10.0), SolveResult::Sat);
            EXPECT_EQ(s.modelValue(varOf(c)) != isNegated(c),
                      (a ^ b) == 1);
        }
    }
}

TEST(XorEncoder, TreeParity)
{
    std::mt19937_64 rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        int n = 1 + rng() % 9;
        Solver s;
        std::vector<Lit> inputs;
        int parity = 0;
        for (int i = 0; i < n; ++i) {
            Var v = s.newVar();
            inputs.push_back(mkLit(v));
            bool val = rng() & 1;
            parity ^= val;
            s.addClause({mkLit(v, !val)});
        }
        Lit out = encodeXorTree(s, inputs);
        ASSERT_EQ(s.solve({}, 10.0), SolveResult::Sat);
        EXPECT_EQ(s.modelValue(varOf(out)) != isNegated(out), parity == 1);
    }
}

TEST(XorEncoder, ConstantFalse)
{
    Solver s;
    Lit f = constantFalse(s);
    ASSERT_EQ(s.solve({}, 10.0), SolveResult::Sat);
    EXPECT_FALSE(s.modelValue(varOf(f)) != isNegated(f));
}

TEST(Cardinality, AtMostKBounds)
{
    for (std::size_t k = 0; k < 5; ++k) {
        Solver s;
        std::vector<Lit> xs;
        for (int i = 0; i < 6; ++i) {
            xs.push_back(mkLit(s.newVar()));
        }
        auto outs = encodeCounter(s, xs, 6);
        // Force exactly 4 inputs true.
        for (int i = 0; i < 6; ++i) {
            s.addClause({i < 4 ? xs[i] : negate(xs[i])});
        }
        std::vector<Lit> assume;
        if (k < outs.size()) {
            assume.push_back(negate(outs[k])); // count <= k
        }
        SolveResult r = s.solve(assume, 10.0);
        EXPECT_EQ(r == SolveResult::Sat, k >= 4) << "k=" << k;
    }
}

TEST(MaxSat, KnownOptimum)
{
    // Hard: a OR b. Softs: !a, !b. Optimum: violate exactly one.
    MaxSatSolver m;
    Var a = m.newVar(), b = m.newVar();
    m.addHard({mkLit(a), mkLit(b)});
    m.addSoft(mkLit(a, true));
    m.addSoft(mkLit(b, true));
    auto r = m.solve(2, 10.0);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_EQ(r.optimum, 1u);
}

TEST(MaxSat, ZeroCostWhenConsistent)
{
    MaxSatSolver m;
    Var a = m.newVar();
    m.addHard({mkLit(a, true), mkLit(a, true)});
    m.addSoft(mkLit(a, true));
    auto r = m.solve(1, 10.0);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_EQ(r.optimum, 0u);
}

TEST(MaxSat, HardConflictUnsat)
{
    MaxSatSolver m;
    Var a = m.newVar();
    m.addHard({mkLit(a)});
    m.addHard({mkLit(a, true)});
    m.addSoft(mkLit(a));
    auto r = m.solve(1, 10.0);
    EXPECT_FALSE(r.satisfiable);
}

TEST(MaxSat, StatsPopulated)
{
    MaxSatSolver m;
    Var a = m.newVar(), b = m.newVar();
    m.addHard({mkLit(a), mkLit(b)});
    m.addSoft(mkLit(a, true));
    m.addSoft(mkLit(b, true));
    auto r = m.solve(2, 10.0);
    EXPECT_EQ(r.stats.softClauses, 2u);
    EXPECT_GE(r.stats.variables, 2u);
    EXPECT_GE(r.stats.hardClauses, 1u);
    EXPECT_FALSE(r.stats.timedOut);
    EXPECT_GE(r.stats.wallSeconds, 0.0);
}

TEST(MaxSat, RandomOptimaMatchBruteForce)
{
    std::mt19937_64 rng(77);
    for (int iter = 0; iter < 60; ++iter) {
        int n = 3 + rng() % 5;
        int m = 2 + rng() % 8;
        MaxSatSolver ms;
        for (int i = 0; i < n; ++i) {
            ms.newVar();
        }
        std::vector<std::vector<Lit>> hard;
        for (int c = 0; c < m; ++c) {
            std::vector<Lit> cl;
            int len = 2 + rng() % 3;
            for (int k = 0; k < len; ++k) {
                cl.push_back(mkLit((Var)(rng() % n), rng() & 1));
            }
            hard.push_back(cl);
            ms.addHard(cl);
        }
        std::vector<Lit> softs;
        for (int i = 0; i < n; ++i) {
            softs.push_back(mkLit((Var)i, true)); // prefer all-false
        }
        for (Lit l : softs) {
            ms.addSoft(l);
        }
        // Brute force optimum: min true-count over satisfying models.
        int best = -1;
        for (int model = 0; model < (1 << n); ++model) {
            bool ok = true;
            for (const auto &c : hard) {
                bool sat = false;
                for (Lit l : c) {
                    bool v = (model >> varOf(l)) & 1;
                    if (isNegated(l) ? !v : v) {
                        sat = true;
                        break;
                    }
                }
                if (!sat) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                int cnt = __builtin_popcount((unsigned)model);
                if (best < 0 || cnt < best) {
                    best = cnt;
                }
            }
        }
        auto r = ms.solve(n, 10.0);
        ASSERT_EQ(r.satisfiable, best >= 0) << "iter " << iter;
        if (best >= 0) {
            EXPECT_EQ((int)r.optimum, best) << "iter " << iter;
        }
    }
}
