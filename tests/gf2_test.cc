/**
 * @file
 * Unit and property tests for the GF(2) linear-algebra substrate.
 */
#include <gtest/gtest.h>

#include <random>

#include "gf2/bitvec.h"
#include "gf2/matrix.h"

using namespace prophunt::gf2;

namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::mt19937_64 &rng,
             double density = 0.4)
{
    Matrix m(rows, cols);
    std::bernoulli_distribution bit(density);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (bit(rng)) {
                m.set(r, c, true);
            }
        }
    }
    return m;
}

} // namespace

TEST(BitVec, SetGetFlip)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.isZero());
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.flip(64);
    EXPECT_FALSE(v.get(64));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, XorAndDot)
{
    BitVec a = BitVec::fromBits({1, 0, 1, 1, 0});
    BitVec b = BitVec::fromBits({1, 1, 0, 1, 0});
    BitVec c = a ^ b;
    EXPECT_EQ(c, BitVec::fromBits({0, 1, 1, 0, 0}));
    // dot = parity of AND = parity of overlap {0,3} = 0.
    EXPECT_FALSE(a.dot(b));
    BitVec d = BitVec::fromBits({1, 0, 0, 0, 0});
    EXPECT_TRUE(a.dot(d));
}

TEST(BitVec, SupportAndFirstSet)
{
    BitVec v = BitVec::fromSupport(200, {3, 77, 199});
    EXPECT_EQ(v.support(), (std::vector<std::size_t>{3, 77, 199}));
    EXPECT_EQ(v.firstSet(), 3u);
    BitVec z(10);
    EXPECT_EQ(z.firstSet(), 10u);
}

TEST(BitVec, SizeMismatchThrows)
{
    BitVec a(5), b(6);
    EXPECT_THROW(a ^= b, std::invalid_argument);
    EXPECT_THROW((void)a.dot(b), std::invalid_argument);
}

TEST(Matrix, IdentityRank)
{
    Matrix id = Matrix::identity(17);
    EXPECT_EQ(id.rank(), 17u);
    EXPECT_EQ(id.mul(id), id);
}

TEST(Matrix, KnownRank)
{
    // Row 3 = row 0 + row 1.
    Matrix m = Matrix::fromRows({{1, 0, 1, 0},
                                 {0, 1, 1, 0},
                                 {0, 0, 0, 1},
                                 {1, 1, 0, 0}});
    EXPECT_EQ(m.rank(), 3u);
}

TEST(Matrix, RowSpaceContains)
{
    Matrix m = Matrix::fromRows({{1, 1, 0}, {0, 1, 1}});
    EXPECT_TRUE(m.rowSpaceContains(BitVec::fromBits({1, 0, 1})));
    EXPECT_TRUE(m.rowSpaceContains(BitVec::fromBits({0, 0, 0})));
    EXPECT_FALSE(m.rowSpaceContains(BitVec::fromBits({1, 0, 0})));
}

TEST(Matrix, TransposeInvolution)
{
    std::mt19937_64 rng(1);
    Matrix m = randomMatrix(7, 13, rng);
    EXPECT_EQ(m.transpose().transpose(), m);
}

TEST(Matrix, SolveConsistent)
{
    Matrix a = Matrix::fromRows({{1, 1, 0}, {0, 1, 1}});
    BitVec b = BitVec::fromBits({1, 1});
    auto x = a.solve(b);
    ASSERT_TRUE(x.has_value());
    EXPECT_EQ(a.mulVec(*x), b);
}

TEST(Matrix, SolveInconsistent)
{
    // Rows are equal; RHS differs.
    Matrix a = Matrix::fromRows({{1, 1, 0}, {1, 1, 0}});
    BitVec b = BitVec::fromBits({1, 0});
    EXPECT_FALSE(a.solve(b).has_value());
}

TEST(Matrix, StackOperations)
{
    Matrix a = Matrix::fromRows({{1, 0}, {0, 1}});
    Matrix b = Matrix::fromRows({{1, 1}});
    Matrix v = a.vstack(b);
    EXPECT_EQ(v.rows(), 3u);
    EXPECT_TRUE(v.get(2, 0));
    Matrix h = a.hstack(Matrix::fromRows({{1}, {0}}));
    EXPECT_EQ(h.cols(), 3u);
    EXPECT_TRUE(h.get(0, 2));
    EXPECT_FALSE(h.get(1, 2));
}

TEST(Matrix, SelectRowsCols)
{
    Matrix m = Matrix::fromRows({{1, 0, 1}, {0, 1, 0}, {1, 1, 1}});
    Matrix r = m.selectRows({2, 0});
    EXPECT_EQ(r.rows(), 2u);
    EXPECT_TRUE(r.get(0, 1));
    Matrix c = m.selectCols({2, 1});
    EXPECT_EQ(c.cols(), 2u);
    EXPECT_TRUE(c.get(0, 0));
    EXPECT_FALSE(c.get(0, 1));
}

/** Property sweep over random matrices of varying shapes. */
class MatrixProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MatrixProperty, RankEqualsTransposeRank)
{
    std::mt19937_64 rng(GetParam());
    std::size_t rows = 1 + rng() % 20, cols = 1 + rng() % 20;
    Matrix m = randomMatrix(rows, cols, rng);
    EXPECT_EQ(m.rank(), m.transpose().rank());
}

TEST_P(MatrixProperty, KernelVectorsAnnihilate)
{
    std::mt19937_64 rng(GetParam() * 31 + 7);
    std::size_t rows = 1 + rng() % 15, cols = 1 + rng() % 20;
    Matrix m = randomMatrix(rows, cols, rng);
    auto basis = m.kernelBasis();
    EXPECT_EQ(basis.size(), cols - m.rank());
    for (const auto &v : basis) {
        EXPECT_TRUE(m.mulVec(v).isZero());
    }
    // Basis vectors are independent.
    Matrix k(0, cols);
    for (const auto &v : basis) {
        k.appendRow(v);
    }
    if (k.rows() > 0) {
        EXPECT_EQ(k.rank(), basis.size());
    }
}

TEST_P(MatrixProperty, SolveRoundTrip)
{
    std::mt19937_64 rng(GetParam() * 97 + 3);
    std::size_t rows = 1 + rng() % 15, cols = 1 + rng() % 15;
    Matrix m = randomMatrix(rows, cols, rng);
    // Build a consistent RHS from a random x.
    BitVec x(cols);
    for (std::size_t c = 0; c < cols; ++c) {
        if (rng() & 1) {
            x.set(c, true);
        }
    }
    BitVec b = m.mulVec(x);
    auto sol = m.solve(b);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(m.mulVec(*sol), b);
}

TEST_P(MatrixProperty, RowSpaceMembershipMatchesRank)
{
    std::mt19937_64 rng(GetParam() * 131 + 11);
    std::size_t rows = 1 + rng() % 12, cols = 1 + rng() % 16;
    Matrix m = randomMatrix(rows, cols, rng);
    BitVec v(cols);
    for (std::size_t c = 0; c < cols; ++c) {
        if (rng() & 1) {
            v.set(c, true);
        }
    }
    Matrix aug = m;
    aug.appendRow(v);
    bool member = m.rowSpaceContains(v);
    EXPECT_EQ(member, aug.rank() == m.rank());
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, MatrixProperty,
                         ::testing::Range(0, 25));
