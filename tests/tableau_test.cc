/**
 * @file
 * Tests for the stabilizer tableau simulator — and the exact
 * cross-validation between the tableau simulator and the Pauli-frame DEM
 * builder, the strongest correctness check in the suite: every single
 * fault's detector/observable footprint must agree between the two
 * completely independent implementations.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"
#include "sim/dem_builder.h"
#include "sim/tableau.h"

using namespace prophunt;
using namespace prophunt::sim;

TEST(Tableau, BasicMeasurements)
{
    Rng rng(1);
    Tableau t(2);
    // |00>: deterministic Z measurements.
    EXPECT_FALSE(t.measureZ(0, rng));
    EXPECT_FALSE(t.measureZ(1, rng));
    // X|0> = |1>.
    t.applyX(0);
    EXPECT_TRUE(t.measureZ(0, rng));
    // Z on |1> leaves it.
    t.applyZ(0);
    EXPECT_TRUE(t.measureZ(0, rng));
}

TEST(Tableau, PlusStateIsXEigenstate)
{
    Rng rng(2);
    Tableau t(1);
    t.applyH(0);
    EXPECT_FALSE(t.measureX(0, rng));
    t.applyZ(0); // |+> -> |->
    EXPECT_TRUE(t.measureX(0, rng));
}

TEST(Tableau, BellPairCorrelations)
{
    for (uint64_t seed = 0; seed < 16; ++seed) {
        Rng rng(seed);
        Tableau t(2);
        t.applyH(0);
        t.applyCnot(0, 1);
        bool a = t.measureZ(0, rng);
        bool b = t.measureZ(1, rng);
        EXPECT_EQ(a, b) << "Bell pair Z outcomes must agree";
    }
}

TEST(Tableau, MeasurementCollapsePersists)
{
    Rng rng(5);
    Tableau t(1);
    t.applyH(0);
    bool first = t.measureZ(0, rng);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(t.measureZ(0, rng), first);
    }
}

TEST(Tableau, ResetForcesZero)
{
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(seed);
        Tableau t(1);
        t.applyH(0);
        t.resetZ(0, rng);
        EXPECT_FALSE(t.measureZ(0, rng));
    }
}

TEST(Tableau, YEqualsXZUpToPhase)
{
    Rng rng(7);
    Tableau a(1), b(1);
    a.applyY(0);
    b.applyX(0);
    b.applyZ(0);
    EXPECT_EQ(a.measureZ(0, rng), true);
    EXPECT_EQ(b.measureZ(0, rng), true);
}

TEST(TableauCircuit, NoiselessDetectorsAreDeterministicallyZero)
{
    // The strongest structural check of the circuit builder: in a
    // noiseless run every detector and every observable must be zero,
    // for every benchmark code and both memory bases.
    for (const code::CssCode &c : code::allBenchmarkCodes()) {
        if (c.n() > 60) {
            continue; // keep the sweep fast; larger codes covered below
        }
        auto cp = std::make_shared<const code::CssCode>(c);
        for (auto basis :
             {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
            auto circ = circuit::buildMemoryCircuit(
                circuit::colorationSchedule(cp), 2, basis);
            Rng rng(99);
            auto meas = runTableau(circ, rng);
            ASSERT_EQ(meas.size(), circ.numMeasurements);
            for (uint8_t d : detectorValues(circ, meas)) {
                ASSERT_EQ(d, 0) << c.name();
            }
            for (uint8_t o : observableValues(circ, meas)) {
                ASSERT_EQ(o, 0) << c.name();
            }
        }
    }
}

TEST(TableauCircuit, NoiselessNzScheduleAllDistances)
{
    for (std::size_t d : {3, 5}) {
        code::SurfaceCode s(d);
        auto circ = circuit::buildMemoryCircuit(circuit::nzSchedule(s), d,
                                                circuit::MemoryBasis::Z);
        Rng rng(3);
        auto meas = runTableau(circ, rng);
        for (uint8_t det : detectorValues(circ, meas)) {
            ASSERT_EQ(det, 0);
        }
    }
}

namespace {

/**
 * Cross-validate: for each enumerated fault location, the tableau
 * simulator's detector/observable flips (faulty run vs noiseless run with
 * identical measurement randomness) must equal the DEM's signature for
 * the mechanism containing that fault.
 */
void
crossValidate(const circuit::SmCircuit &circ, uint64_t seed)
{
    Dem dem = buildDem(circ, NoiseModel::uniform(1e-3));
    // Index mechanisms by fault location.
    std::map<std::tuple<std::size_t, int, int>, std::size_t> by_loc;
    for (std::size_t e = 0; e < dem.errors.size(); ++e) {
        for (const FaultLoc &loc : dem.errors[e].sources) {
            by_loc[{loc.instr, (int)loc.p0, (int)loc.p1}] = e;
        }
    }

    Rng ref_rng(seed);
    auto ref = runTableau(circ, ref_rng);
    auto ref_det = detectorValues(circ, ref);
    auto ref_obs = observableValues(circ, ref);

    std::size_t checked = 0;
    for (const auto &[key, mech_idx] : by_loc) {
        FaultLoc loc;
        loc.instr = std::get<0>(key);
        loc.p0 = (Pauli)std::get<1>(key);
        loc.p1 = (Pauli)std::get<2>(key);
        Rng rng(seed); // identical randomness as the reference run
        auto meas = runTableau(circ, rng, &loc);
        auto det = detectorValues(circ, meas);
        auto obs = observableValues(circ, meas);

        std::vector<uint32_t> flipped_det, flipped_obs;
        for (std::size_t i = 0; i < det.size(); ++i) {
            if (det[i] != ref_det[i]) {
                flipped_det.push_back((uint32_t)i);
            }
        }
        for (std::size_t i = 0; i < obs.size(); ++i) {
            if (obs[i] != ref_obs[i]) {
                flipped_obs.push_back((uint32_t)i);
            }
        }
        ASSERT_EQ(flipped_det, dem.errors[mech_idx].detectors)
            << "instr " << loc.instr;
        ASSERT_EQ(flipped_obs, dem.errors[mech_idx].observables)
            << "instr " << loc.instr;
        ++checked;
        if (checked >= 400) {
            break; // plenty of coverage per circuit
        }
    }
    ASSERT_GT(checked, 100u);
}

} // namespace

TEST(TableauCrossValidation, SurfaceD3ColorationMemoryZ)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    crossValidate(circuit::buildMemoryCircuit(
                      circuit::colorationSchedule(cp), 3,
                      circuit::MemoryBasis::Z),
                  11);
}

TEST(TableauCrossValidation, SurfaceD3NzMemoryX)
{
    code::SurfaceCode s(3);
    crossValidate(circuit::buildMemoryCircuit(circuit::nzSchedule(s), 2,
                                              circuit::MemoryBasis::X),
                  13);
}

TEST(TableauCrossValidation, Lp39MemoryZ)
{
    auto cp =
        std::make_shared<const code::CssCode>(code::benchmarkLp39());
    crossValidate(circuit::buildMemoryCircuit(
                      circuit::randomColorationSchedule(cp, 3), 2,
                      circuit::MemoryBasis::Z),
                  17);
}
