/**
 * @file
 * Cross-module property tests: invariants that must hold for every
 * benchmark code, both memory bases, and randomized schedule mutations.
 */
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>

#include "circuit/coloration.h"
#include "circuit/sm_circuit.h"
#include "code/codes.h"
#include "decoder/matching_graph.h"
#include "decoder/union_find.h"
#include "prophunt/subgraph.h"
#include "sim/dem_builder.h"
#include "sim/sampler.h"

using namespace prophunt;

namespace {

std::shared_ptr<const code::CssCode>
benchCode(std::size_t idx)
{
    static std::vector<code::CssCode> codes = code::allBenchmarkCodes();
    return std::make_shared<const code::CssCode>(codes[idx]);
}

} // namespace

/** Sweep over all Table 1 codes x both memory bases. */
class DemInvariants
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(DemInvariants, NoWeightOneLogicalAndSortedSignatures)
{
    auto [idx, basis_i] = GetParam();
    auto cp = benchCode(idx);
    auto basis = basis_i == 0 ? circuit::MemoryBasis::Z
                              : circuit::MemoryBasis::X;
    // Two rounds keeps the largest codes quick while still exercising
    // round-boundary detectors.
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 2, basis);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    ASSERT_GT(dem.errors.size(), 0u);
    for (const auto &mech : dem.errors) {
        // No undetected single fault may flip an observable (d_eff >= 2
        // for every valid CSS code and schedule).
        EXPECT_FALSE(mech.detectors.empty() && !mech.observables.empty())
            << cp->name();
        for (std::size_t i = 1; i < mech.detectors.size(); ++i) {
            EXPECT_LT(mech.detectors[i - 1], mech.detectors[i]);
        }
        EXPECT_GT(mech.p, 0.0);
    }
}

TEST_P(DemInvariants, DetectorCountMatchesCircuit)
{
    auto [idx, basis_i] = GetParam();
    auto cp = benchCode(idx);
    auto basis = basis_i == 0 ? circuit::MemoryBasis::Z
                              : circuit::MemoryBasis::X;
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 2, basis);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    EXPECT_EQ(dem.numDetectors, circ.detectors.size());
    EXPECT_EQ(dem.numObservables, cp->k());
    // Every detector index referenced must be in range.
    for (const auto &mech : dem.errors) {
        for (uint32_t d : mech.detectors) {
            EXPECT_LT(d, dem.numDetectors);
        }
        for (uint32_t o : mech.observables) {
            EXPECT_LT(o, dem.numObservables);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, DemInvariants,
    ::testing::Combine(::testing::Range<std::size_t>(0, 8),
                       ::testing::Values(0, 1)));

/** Random valid rescheduling mutations preserve CNOT multiset. */
class ScheduleMutation : public ::testing::TestWithParam<int>
{
};

TEST_P(ScheduleMutation, RandomSwapsPreserveStructure)
{
    std::mt19937_64 rng(GetParam() * 7 + 1);
    auto cp = benchCode(GetParam() % 8);
    circuit::SmSchedule s = circuit::colorationSchedule(cp);
    for (int step = 0; step < 10; ++step) {
        std::size_t q = rng() % cp->n();
        if (s.qubitOrder(q).size() < 2) {
            continue;
        }
        std::size_t i = rng() % s.qubitOrder(q).size();
        std::size_t j = rng() % s.qubitOrder(q).size();
        if (i == j) {
            continue;
        }
        circuit::SmSchedule t = s.withRelativeSwap(
            q, s.qubitOrder(q)[i], s.qubitOrder(q)[j]);
        // Per-check orders unchanged by rescheduling.
        for (std::size_t c = 0; c < cp->numChecks(); ++c) {
            EXPECT_EQ(t.checkOrder(c), s.checkOrder(c));
        }
        // Qubit membership preserved.
        std::multiset<std::size_t> before(s.qubitOrder(q).begin(),
                                          s.qubitOrder(q).end());
        std::multiset<std::size_t> after(t.qubitOrder(q).begin(),
                                         t.qubitOrder(q).end());
        EXPECT_EQ(before, after);
        if (t.schedulable()) {
            s = t; // keep walking through valid schedule space
        }
    }
}

TEST_P(ScheduleMutation, ReorderKeepsCommutationValidity)
{
    // Reordering changes the within-check order only; crossing parity
    // between X and Z checks depends only on per-qubit orders, so
    // commutation validity must be invariant under any reorder.
    std::mt19937_64 rng(GetParam() * 13 + 3);
    auto cp = benchCode(GetParam() % 8);
    circuit::SmSchedule s = circuit::colorationSchedule(cp);
    ASSERT_TRUE(s.commutationValid());
    for (int step = 0; step < 10; ++step) {
        std::size_t c = rng() % cp->numChecks();
        std::size_t w = s.checkOrder(c).size();
        if (w < 2) {
            continue;
        }
        std::size_t i = rng() % w, j = rng() % w;
        if (i == j) {
            continue;
        }
        s = s.withReorder(c, i, j);
        EXPECT_TRUE(s.commutationValid());
    }
}

INSTANTIATE_TEST_SUITE_P(RandomWalks, ScheduleMutation,
                         ::testing::Range(0, 16));

/** Sampler statistics per code: detector rates track the DEM. */
class SamplerSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SamplerSweep, PerDetectorRatesMatchFirstOrder)
{
    auto cp = benchCode(GetParam());
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 2, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(5e-3));
    std::size_t shots = 30000;
    sim::SampleBatch batch = sim::sampleDem(dem, shots, GetParam() * 101);
    // Expected per-detector flip rate, first order in p.
    std::vector<double> expected(dem.numDetectors, 0.0);
    for (const auto &mech : dem.errors) {
        for (uint32_t d : mech.detectors) {
            expected[d] += mech.p;
        }
    }
    std::vector<std::size_t> fired(dem.numDetectors, 0);
    for (std::size_t s = 0; s < shots; ++s) {
        for (uint32_t d : batch.flippedDetectors(s)) {
            ++fired[d];
        }
    }
    std::size_t gross_mismatches = 0;
    for (std::size_t d = 0; d < dem.numDetectors; ++d) {
        double rate = (double)fired[d] / shots;
        if (std::abs(rate - expected[d]) >
            0.35 * expected[d] + 6.0 / shots) {
            ++gross_mismatches;
        }
    }
    EXPECT_LE(gross_mismatches, dem.numDetectors / 20)
        << cp->name();
}

INSTANTIATE_TEST_SUITE_P(AllCodes, SamplerSweep,
                         ::testing::Range<std::size_t>(0, 8));

/** Union-find decodes every two-mechanism syndrome without crashing and
 * with bounded inaccuracy relative to independent single decodes. */
class UnionFindFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(UnionFindFuzz, PairwiseSyndromesNeverCrash)
{
    auto cp = benchCode(GetParam() % 4); // surface codes
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 2, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    decoder::UnionFindDecoder uf(decoder::buildMatchingGraph(dem, circ));
    std::mt19937_64 rng(GetParam() * 4241 + 11);
    for (int trial = 0; trial < 200; ++trial) {
        const auto &a = dem.errors[rng() % dem.errors.size()];
        const auto &b = dem.errors[rng() % dem.errors.size()];
        std::vector<uint32_t> dets;
        std::set<uint32_t> sym;
        for (uint32_t d : a.detectors) {
            if (!sym.insert(d).second) {
                sym.erase(d);
            }
        }
        for (uint32_t d : b.detectors) {
            auto it = sym.find(d);
            if (it != sym.end()) {
                sym.erase(it);
            } else {
                sym.insert(d);
            }
        }
        dets.assign(sym.begin(), sym.end());
        // Must return without crashing; correctness is statistical.
        (void)uf.decode(dets);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindFuzz, ::testing::Range(0, 6));

/** Subgraph sampling over every code never escapes the DEM bounds. */
class SubgraphSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SubgraphSweep, SamplesAreWellFormed)
{
    auto cp = benchCode(GetParam());
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 2, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    core::SubgraphFinder finder(dem);
    sim::Rng rng(GetParam() + 1);
    for (int trial = 0; trial < 15; ++trial) {
        core::Subgraph sg = finder.sample(rng, 24);
        EXPECT_FALSE(sg.detectors.empty());
        EXPECT_FALSE(sg.errors.empty());
        EXPECT_LE(sg.errors.size(), 24u + dem.errors.size() / 10);
        for (uint32_t d : sg.detectors) {
            EXPECT_LT(d, dem.numDetectors);
        }
        // Flag matches the definition.
        EXPECT_EQ(sg.ambiguous,
                  core::hasAmbiguity(dem, sg.detectors, sg.errors));
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodes, SubgraphSweep,
                         ::testing::Range<std::size_t>(0, 8));

TEST(FailureInjection, UnknownDetectorIndexInUfIsSafe)
{
    auto cp = benchCode(0);
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 2, circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(1e-3));
    decoder::UnionFindDecoder uf(decoder::buildMatchingGraph(dem, circ));
    // All valid detectors flipped at once: pathological but must return.
    std::vector<uint32_t> all;
    for (uint32_t d = 0; d < dem.numDetectors; ++d) {
        all.push_back(d);
    }
    (void)uf.decode(all);
}

TEST(FailureInjection, SamplerRejectsCertainErrors)
{
    sim::Dem dem;
    dem.numDetectors = 1;
    dem.numObservables = 0;
    sim::ErrorMechanism m;
    m.p = 1.0;
    m.detectors = {0};
    dem.errors.push_back(m);
    EXPECT_THROW(sim::sampleDem(dem, 10, 1), std::invalid_argument);
}
