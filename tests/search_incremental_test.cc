/**
 * @file
 * Differential tests of the incremental search evaluator: random
 * apply/undo sequences against the from-scratch oracle
 * (ScheduleObjective::evaluate / evaluateTerms / scheduleKey), plus
 * unit tests of the transposition cache, the FIFO visited window, and
 * the cache-on/off invariance of the portfolio.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"
#include "search/incremental.h"
#include "search/objective.h"
#include "search/portfolio.h"
#include "search/transposition.h"
#include "sim/rng.h"

using namespace prophunt;
using namespace prophunt::search;

namespace {

void
expectTermsEqual(const ObjectiveTerms &got, const ObjectiveTerms &want,
                 const char *where)
{
    EXPECT_EQ(got.valid, want.valid) << where;
    EXPECT_EQ(got.hookAlignment, want.hookAlignment) << where;
    EXPECT_EQ(got.sameRoundEscape, want.sameRoundEscape) << where;
    EXPECT_EQ(got.depth, want.depth) << where;
}

/** One full differential fuzz run: random applies (moves and whole
 * check-order replacements, cycle-inducing ones included), random
 * undos, bit-equality against the scratch oracle at every step, and a
 * final unwind back to the start schedule. */
void
fuzzAgainstOracle(const circuit::SmSchedule &start, std::size_t steps,
                  uint64_t seed)
{
    ScheduleObjective obj(start.codePtr());
    ObjectiveState state(obj);
    state.reset(start);

    // Shadow history: schedule before each un-undone apply.
    std::vector<circuit::SmSchedule> history;
    circuit::SmSchedule cur = start;
    sim::Rng rng(seed);

    auto checkAgainstOracle = [&](const char *where) {
        ASSERT_TRUE(state.schedule() == cur) << where;
        EXPECT_EQ(state.key(), scheduleKey(cur)) << where;
        EXPECT_EQ(state.objective(), obj.evaluate(cur)) << where;
        expectTermsEqual(state.terms(), obj.evaluateTerms(cur), where);
    };
    checkAgainstOracle("after reset");

    std::vector<Move> moves;
    for (std::size_t step = 0; step < steps; ++step) {
        uint64_t roll = rng.next() % 100;
        if (roll < 25 && state.framesApplied() > 0) {
            state.undo();
            cur = std::move(history.back());
            history.pop_back();
            checkAgainstOracle("after undo");
            continue;
        }
        if (roll < 80) {
            enumerateMoves(cur, moves);
            if (moves.empty()) {
                continue;
            }
            const Move mv = moves[rng.next() % moves.size()];
            uint64_t predicted_key = state.keyAfter(mv);
            history.push_back(cur);
            cur = applyMove(cur, mv);
            uint64_t ret = state.apply(mv);
            EXPECT_EQ(state.key(), predicted_key) << "keyAfter";
            EXPECT_EQ(ret, state.objective());
            checkAgainstOracle("after move apply");
            continue;
        }
        // Whole check-order replacement (the B&B child move); random
        // shuffles routinely produce commutation-breaking and cyclic
        // schedules, exercising the stale/recovery path.
        std::size_t check = rng.next() % cur.code().numChecks();
        std::vector<std::size_t> order = cur.checkOrder(check);
        if (order.size() < 2) {
            continue;
        }
        for (std::size_t i = order.size(); i-- > 1;) {
            std::swap(order[i], order[rng.next() % (i + 1)]);
        }
        uint64_t predicted_key = state.keyAfterCheckOrder(check, order);
        history.push_back(cur);
        std::vector<std::vector<std::size_t>> orders;
        std::vector<std::vector<std::size_t>> qorders;
        for (std::size_t c = 0; c < cur.code().numChecks(); ++c) {
            orders.push_back(c == check ? order : cur.checkOrder(c));
        }
        for (std::size_t q = 0; q < cur.code().n(); ++q) {
            qorders.push_back(cur.qubitOrder(q));
        }
        cur = circuit::SmSchedule(cur.codePtr(), std::move(orders),
                                  std::move(qorders));
        uint64_t ret = state.applyCheckOrder(check, order);
        EXPECT_EQ(state.key(), predicted_key) << "keyAfterCheckOrder";
        EXPECT_EQ(ret, state.objective());
        checkAgainstOracle("after check-order apply");
    }

    // Full unwind returns bit-exactly to the start.
    while (state.framesApplied() > 0) {
        state.undo();
        cur = std::move(history.back());
        history.pop_back();
        checkAgainstOracle("during unwind");
    }
    ASSERT_TRUE(history.empty());
    EXPECT_TRUE(state.schedule() == start);
    EXPECT_EQ(state.key(), scheduleKey(start));
    EXPECT_EQ(state.objective(), obj.evaluate(start));
}

} // namespace

// --- differential fuzz ----------------------------------------------------

TEST(IncrementalFuzz, SurfaceD3MatchesOracle)
{
    code::SurfaceCode s(3);
    fuzzAgainstOracle(circuit::poorSurfaceSchedule(s), 400, 12345);
}

TEST(IncrementalFuzz, SurfaceD5MatchesOracle)
{
    code::SurfaceCode s(5);
    fuzzAgainstOracle(circuit::poorSurfaceSchedule(s), 200, 67890);
}

TEST(IncrementalFuzz, Lp39ColorationMatchesOracle)
{
    auto cp =
        std::make_shared<const code::CssCode>(code::benchmarkLp39());
    fuzzAgainstOracle(circuit::colorationSchedule(cp), 250, 24680);
}

TEST(IncrementalFuzz, NzScheduleMatchesOracle)
{
    // A hook-optimized start: improvements are rare, so most applies
    // land on equal-or-worse (often invalid) neighbors.
    code::SurfaceCode s(3);
    fuzzAgainstOracle(circuit::nzSchedule(s), 300, 1357);
}

// --- enumerateMoves / applyMove -------------------------------------------

TEST(IncrementalMoves, ApplyMoveMatchesLegacyNeighborhood)
{
    code::SurfaceCode s(3);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    std::vector<Move> moves;
    enumerateMoves(start, moves);
    ASSERT_FALSE(moves.empty());
    // Reorders first (skipping no-ops), then swaps: spot-check the
    // families and that each applied move changes the key.
    bool saw_reorder = false, saw_swap = false;
    for (const Move &mv : moves) {
        saw_reorder |= mv.kind == Move::Kind::Reorder;
        saw_swap |= mv.kind == Move::Kind::RelativeSwap;
    }
    EXPECT_TRUE(saw_reorder);
    EXPECT_TRUE(saw_swap);
    for (std::size_t i = 0; i < moves.size(); i += 7) {
        circuit::SmSchedule next = applyMove(start, moves[i]);
        EXPECT_NE(scheduleKey(next), scheduleKey(start));
        EXPECT_FALSE(next == start);
    }
}

// --- transposition cache --------------------------------------------------

TEST(TranspositionCacheTest, LookupInsertAndCounters)
{
    TranspositionCache cache(8);
    EXPECT_TRUE(cache.enabled());
    uint64_t obj = 0;
    EXPECT_FALSE(cache.lookup(42, obj));
    EXPECT_EQ(cache.misses(), 1u);
    cache.insert(42, 1234);
    EXPECT_TRUE(cache.lookup(42, obj));
    EXPECT_EQ(obj, 1234u);
    EXPECT_EQ(cache.hits(), 1u);
    // First insert wins; a second insert with the same key is a no-op.
    cache.insert(42, 9999);
    EXPECT_TRUE(cache.lookup(42, obj));
    EXPECT_EQ(obj, 1234u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(TranspositionCacheTest, FifoEvictionBoundsSize)
{
    TranspositionCache cache(4);
    for (uint64_t k = 0; k < 10; ++k) {
        cache.insert(k, k * 10);
    }
    EXPECT_EQ(cache.size(), 4u);
    uint64_t obj = 0;
    // Oldest keys evicted, newest retained.
    EXPECT_FALSE(cache.lookup(0, obj));
    EXPECT_FALSE(cache.lookup(5, obj));
    EXPECT_TRUE(cache.lookup(9, obj));
    EXPECT_EQ(obj, 90u);
}

TEST(TranspositionCacheTest, ZeroCapacityDisables)
{
    TranspositionCache cache(0);
    EXPECT_FALSE(cache.enabled());
    cache.insert(1, 2);
    uint64_t obj = 0;
    EXPECT_FALSE(cache.lookup(1, obj));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(TranspositionCacheTest, CachedEvaluateMatchesOracle)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule sched = circuit::poorSurfaceSchedule(s);
    TranspositionCache cache(64);
    uint64_t fresh = obj.evaluate(sched);
    EXPECT_EQ(cachedEvaluate(obj, sched, &cache), fresh);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cachedEvaluate(obj, sched, &cache), fresh);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cachedEvaluate(obj, sched, nullptr), fresh);
}

// --- FIFO visited window --------------------------------------------------

TEST(FifoKeySetTest, DedupsWithinWindowForgetsBeyond)
{
    FifoKeySet set(3);
    EXPECT_TRUE(set.insert(1));
    EXPECT_TRUE(set.insert(2));
    EXPECT_TRUE(set.insert(3));
    EXPECT_FALSE(set.insert(2)); // exact dedup inside the window
    EXPECT_TRUE(set.insert(4));  // evicts 1
    EXPECT_TRUE(set.insert(1));  // forgotten, admitted again (evicts 2)
    EXPECT_FALSE(set.insert(4));
    EXPECT_TRUE(set.insert(2));
}

TEST(FifoKeySetTest, ZeroCapacityIsUnbounded)
{
    FifoKeySet set(0);
    for (uint64_t k = 0; k < 1000; ++k) {
        EXPECT_TRUE(set.insert(k));
    }
    for (uint64_t k = 0; k < 1000; ++k) {
        EXPECT_FALSE(set.insert(k));
    }
}

TEST(BeamVisitedWindow, DefaultWindowCoversPortfolioBudgets)
{
    // The dedup regression: a small window must not change the beam's
    // outcome at budgets it covers, and the default window exceeds the
    // portfolio's expansion budgets.
    BeamOptions defaults;
    PortfolioOptions portfolio;
    EXPECT_GE(defaults.visitedWindow, portfolio.beamBudget.maxExpansions);

    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    SearchContext ctx{start, obj, SearchBudget{1000, 0.0}, 7, nullptr};
    BeamOptions unbounded;
    unbounded.visitedWindow = 0;
    BeamOptions windowed;
    windowed.visitedWindow = std::size_t(1) << 16;
    SearchOutcome a = runBeamSearch(ctx, unbounded);
    SearchOutcome b = runBeamSearch(ctx, windowed);
    EXPECT_TRUE(a.schedule == b.schedule);
    EXPECT_EQ(a.stats.expansions, b.stats.expansions);
    EXPECT_EQ(a.stats.deadEnds, b.stats.deadEnds);
    EXPECT_EQ(a.stats.bestObjective, b.stats.bestObjective);
}

// --- cache-on/off invariance ----------------------------------------------

TEST(PortfolioCache, OutcomeUnchangedByCacheAndStatsExposed)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    core::PropHuntOptions opts;
    opts.iterations = 1;
    opts.samplesPerIteration = 50;
    opts.maxAmbiguousPerIteration = 2;
    opts.maxCost = 8;
    opts.seed = 21;

    PortfolioOptions cached;
    cached.enabled = true;
    cached.beamBudget = {800, 0.0};
    cached.bnbBudget = {800, 0.0};
    PortfolioOptions uncached = cached;
    uncached.transpositionCapacity = 0;

    core::OptimizeResult a = runPortfolio(start, 3, opts, cached);
    core::OptimizeResult b = runPortfolio(start, 3, opts, uncached);
    EXPECT_TRUE(a.finalSchedule() == b.finalSchedule());
    ASSERT_EQ(a.searchReports.size(), b.searchReports.size());
    uint64_t hits = 0, misses = 0;
    for (std::size_t i = 0; i < a.searchReports.size(); ++i) {
        EXPECT_EQ(a.searchReports[i].name, b.searchReports[i].name);
        EXPECT_EQ(a.searchReports[i].stats.expansions,
                  b.searchReports[i].stats.expansions);
        EXPECT_EQ(a.searchReports[i].stats.deadEnds,
                  b.searchReports[i].stats.deadEnds);
        EXPECT_EQ(a.searchReports[i].stats.bestObjective,
                  b.searchReports[i].stats.bestObjective);
        EXPECT_EQ(a.searchReports[i].winner, b.searchReports[i].winner);
        hits += a.searchReports[i].stats.transpositionHits;
        misses += a.searchReports[i].stats.transpositionMisses;
        // Cache disabled => no probes counted.
        EXPECT_EQ(b.searchReports[i].stats.transpositionHits, 0u);
        EXPECT_EQ(b.searchReports[i].stats.transpositionMisses, 0u);
    }
    EXPECT_GT(misses, 0u);
    EXPECT_GT(hits, 0u) << "strategies share one cache; B&B and the "
                           "verification pass must re-hit beam entries";
}

TEST(PortfolioCache, ExpansionRateExposed)
{
    SearchStats stats;
    stats.expansions = 500;
    stats.totalUs = 250000;
    EXPECT_DOUBLE_EQ(stats.expansionsPerSec(), 2000.0);
    stats.totalUs = 0;
    EXPECT_DOUBLE_EQ(stats.expansionsPerSec(), 0.0);
}
