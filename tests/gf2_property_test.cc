/**
 * @file
 * Randomized property tests for the GF(2) substrate, beyond the point
 * checks of gf2_test.cc and api_surface_test.cc: row-reduction
 * idempotence, rank inequalities, solve/mulVec round-trips, and BitVec
 * resize/popcount invariants at word boundaries.
 */
#include <gtest/gtest.h>

#include <random>

#include "gf2/bitvec.h"
#include "gf2/matrix.h"

using namespace prophunt::gf2;

namespace {

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::mt19937_64 &rng,
             double density = 0.4)
{
    Matrix m(rows, cols);
    std::bernoulli_distribution bit(density);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (bit(rng)) {
                m.set(r, c, true);
            }
        }
    }
    return m;
}

BitVec
randomVec(std::size_t n, std::mt19937_64 &rng, double density = 0.5)
{
    BitVec v(n);
    std::bernoulli_distribution bit(density);
    for (std::size_t i = 0; i < n; ++i) {
        if (bit(rng)) {
            v.set(i, true);
        }
    }
    return v;
}

Matrix
fromEchelon(const RowEchelon &re, std::size_t cols)
{
    Matrix m(0, cols);
    for (const BitVec &row : re.rows) {
        m.appendRow(row);
    }
    return m;
}

} // namespace

TEST(MatrixProperty, RowReduceIsIdempotent)
{
    std::mt19937_64 rng(1);
    for (int trial = 0; trial < 30; ++trial) {
        std::size_t rows = 1 + rng() % 20;
        std::size_t cols = 1 + rng() % 20;
        Matrix m = randomMatrix(rows, cols, rng);
        RowEchelon once = m.rowEchelon();
        RowEchelon twice = fromEchelon(once, cols).rowEchelon();
        EXPECT_EQ(once.rank, twice.rank);
        EXPECT_EQ(once.pivotCol, twice.pivotCol);
        ASSERT_EQ(once.rows.size(), twice.rows.size());
        for (std::size_t r = 0; r < twice.rows.size(); ++r) {
            EXPECT_EQ(once.rows[r], twice.rows[r]);
        }
    }
}

TEST(MatrixProperty, RankBounds)
{
    std::mt19937_64 rng(2);
    for (int trial = 0; trial < 30; ++trial) {
        std::size_t rows = 1 + rng() % 16;
        std::size_t cols = 1 + rng() % 16;
        Matrix m = randomMatrix(rows, cols, rng);
        std::size_t r = m.rank();
        EXPECT_LE(r, std::min(rows, cols));
        // rank(M Mt) <= rank(M); over GF(2) the gap can be positive
        // (self-orthogonal rows), but never negative.
        Matrix gram = m.mul(m.transpose());
        EXPECT_LE(gram.rank(), r);
        // Rank is invariant under transposition.
        EXPECT_EQ(m.transpose().rank(), r);
    }
}

TEST(MatrixProperty, SolveMulVecRoundTrip)
{
    std::mt19937_64 rng(3);
    for (int trial = 0; trial < 30; ++trial) {
        std::size_t rows = 1 + rng() % 18;
        std::size_t cols = 1 + rng() % 18;
        Matrix m = randomMatrix(rows, cols, rng);
        // b in the column space by construction: a solution must exist
        // and must reproduce b exactly.
        BitVec x = randomVec(cols, rng);
        BitVec b = m.mulVec(x);
        auto sol = m.solve(b);
        ASSERT_TRUE(sol.has_value());
        EXPECT_EQ(m.mulVec(*sol), b);
    }
}

TEST(MatrixProperty, SolveRejectsOutsideColumnSpace)
{
    // Zero matrix: only b = 0 is solvable.
    Matrix z(3, 5);
    BitVec bad(3);
    bad.set(1, true);
    EXPECT_FALSE(z.solve(bad).has_value());
    EXPECT_TRUE(z.solve(BitVec(3)).has_value());
}

TEST(MatrixProperty, KernelBasisAnnihilatesAndCompletesRank)
{
    std::mt19937_64 rng(4);
    for (int trial = 0; trial < 30; ++trial) {
        std::size_t rows = 1 + rng() % 14;
        std::size_t cols = 1 + rng() % 14;
        Matrix m = randomMatrix(rows, cols, rng);
        auto kernel = m.kernelBasis();
        // Rank-nullity over GF(2).
        EXPECT_EQ(m.rank() + kernel.size(), cols);
        for (const BitVec &k : kernel) {
            EXPECT_TRUE(m.mulVec(k).isZero());
        }
    }
}

TEST(MatrixProperty, RowSpaceContainsAllRowCombinations)
{
    std::mt19937_64 rng(5);
    Matrix m = randomMatrix(8, 12, rng);
    for (int trial = 0; trial < 20; ++trial) {
        BitVec combo(12);
        for (std::size_t r = 0; r < m.rows(); ++r) {
            if (rng() & 1) {
                combo ^= m.row(r);
            }
        }
        EXPECT_TRUE(m.rowSpaceContains(combo));
    }
}

TEST(MatrixProperty, TransposeIsInvolution)
{
    std::mt19937_64 rng(6);
    Matrix m = randomMatrix(9, 17, rng);
    EXPECT_EQ(m.transpose().transpose(), m);
    // (A B)t = Bt At.
    Matrix b = randomMatrix(17, 7, rng);
    EXPECT_EQ(m.mul(b).transpose(), b.transpose().mul(m.transpose()));
}

TEST(BitVecProperty, ResizeAcrossWordBoundariesKeepsPrefix)
{
    for (std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 130u}) {
        BitVec v(n);
        for (std::size_t i = 0; i < n; i += 3) {
            v.set(i, true);
        }
        std::size_t before = v.popcount();
        BitVec grown = v;
        grown.resize(n + 64);
        EXPECT_EQ(grown.size(), n + 64);
        EXPECT_EQ(grown.popcount(), before) << n;
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(grown.get(i), v.get(i));
        }
        for (std::size_t i = n; i < n + 64; ++i) {
            EXPECT_FALSE(grown.get(i));
        }
    }
}

TEST(BitVecProperty, ShrinkMasksTailBits)
{
    BitVec v(130);
    v.set(1, true);
    v.set(64, true);
    v.set(129, true);
    v.resize(65);
    EXPECT_EQ(v.size(), 65u);
    EXPECT_EQ(v.popcount(), 2u);
    // Growing back must NOT resurrect the dropped bit.
    v.resize(130);
    EXPECT_EQ(v.popcount(), 2u);
    EXPECT_FALSE(v.get(129));
    EXPECT_TRUE(v.get(64));
}

TEST(BitVecProperty, ShrinkToExactWordBoundary)
{
    BitVec v(128);
    v.set(63, true);
    v.set(64, true);
    v.set(127, true);
    v.resize(64);
    EXPECT_EQ(v.popcount(), 1u);
    EXPECT_TRUE(v.get(63));
    v.resize(0);
    EXPECT_EQ(v.size(), 0u);
    EXPECT_EQ(v.popcount(), 0u);
    EXPECT_TRUE(v.isZero());
}

TEST(BitVecProperty, PopcountMatchesSupportAndXor)
{
    std::mt19937_64 rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        std::size_t n = 1 + rng() % 200;
        BitVec a = randomVec(n, rng);
        BitVec b = randomVec(n, rng);
        EXPECT_EQ(a.popcount(), a.support().size());
        // |a^b| = |a| + |b| - 2|a&b|; check via the dot-parity identity
        // instead: parity(|a^b|) == parity(|a|) ^ parity(|b|).
        BitVec x = a ^ b;
        EXPECT_EQ(x.popcount() % 2, (a.popcount() + b.popcount()) % 2);
        // XOR is self-inverse.
        x ^= b;
        EXPECT_EQ(x, a);
    }
}

TEST(BitVecProperty, FirstSetAndClear)
{
    BitVec v(150);
    EXPECT_EQ(v.firstSet(), 150u);
    v.set(149, true);
    EXPECT_EQ(v.firstSet(), 149u);
    v.set(64, true);
    EXPECT_EQ(v.firstSet(), 64u);
    v.clear();
    EXPECT_EQ(v.size(), 150u);
    EXPECT_TRUE(v.isZero());
    EXPECT_EQ(v.firstSet(), 150u);
}
