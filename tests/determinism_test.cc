/**
 * @file
 * Determinism guarantees of the sharded sampler and parallel LER engine.
 *
 * The contract under test: at a fixed master seed, the sharded result is
 * defined as the concatenation of independent per-shard serial runs, so it
 * must be byte-identical for every thread count — including when early
 * stopping truncates the run.
 */
#include <gtest/gtest.h>

#include <memory>

#include "circuit/coloration.h"
#include "code/surface.h"
#include "decoder/logical_error.h"
#include "sim/dem_builder.h"
#include "sim/parallel_sampler.h"
#include "sim/sampler.h"

using namespace prophunt;
using namespace prophunt::sim;

namespace {

Dem
d3Dem(double p)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto circ = circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                            3, circuit::MemoryBasis::Z);
    return buildDem(circ, NoiseModel::uniform(p));
}

std::unique_ptr<decoder::Decoder>
d3Decoder(const Dem &dem)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto circ = circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                            3, circuit::MemoryBasis::Z);
    return decoder::makeDecoder(dem, circ, "union_find");
}

} // namespace

TEST(ShardPlan, CoversShotsExactlyOnce)
{
    ShardPlan plan{10000, 4096};
    EXPECT_EQ(plan.numShards(), 3u);
    EXPECT_EQ(plan.shotsOf(0), 4096u);
    EXPECT_EQ(plan.shotsOf(1), 4096u);
    EXPECT_EQ(plan.shotsOf(2), 10000u - 2 * 4096u);
    EXPECT_EQ(plan.offsetOf(2), 8192u);
    std::size_t total = 0;
    for (std::size_t i = 0; i < plan.numShards(); ++i) {
        total += plan.shotsOf(i);
    }
    EXPECT_EQ(total, plan.shots);

    EXPECT_EQ((ShardPlan{0, 4096}).numShards(), 0u);
    EXPECT_EQ((ShardPlan{4096, 4096}).numShards(), 1u);
    EXPECT_EQ((ShardPlan{1, 4096}).shotsOf(0), 1u);
}

TEST(ShardSeed, MatchesSplitMix64Sequence)
{
    uint64_t state = 12345;
    for (std::size_t shard = 0; shard < 8; ++shard) {
        EXPECT_EQ(splitMix64(state), shardSeed(12345, shard)) << shard;
    }
    // Distinct shards get distinct streams.
    EXPECT_NE(shardSeed(1, 0), shardSeed(1, 1));
    EXPECT_NE(shardSeed(1, 0), shardSeed(2, 0));
}

TEST(ShardedSampler, SameSeedGivesByteIdenticalBatch)
{
    Dem dem = d3Dem(1e-2);
    SampleBatch a = sampleDemSharded(dem, 5000, 9, 1, 512);
    SampleBatch b = sampleDemSharded(dem, 5000, 9, 1, 512);
    EXPECT_EQ(a.det, b.det);
    EXPECT_EQ(a.obs, b.obs);
    SampleBatch c = sampleDemSharded(dem, 5000, 10, 1, 512);
    EXPECT_NE(a.det, c.det);
}

TEST(ShardedSampler, ThreadCountDoesNotChangeTheBatch)
{
    Dem dem = d3Dem(1e-2);
    SampleBatch serial = sampleDemSharded(dem, 10000, 42, 1, 512);
    for (std::size_t threads : {2u, 4u, 8u}) {
        SampleBatch par = sampleDemSharded(dem, 10000, 42, threads, 512);
        EXPECT_EQ(serial.det, par.det) << threads << " threads";
        EXPECT_EQ(serial.obs, par.obs) << threads << " threads";
    }
}

TEST(ShardedSampler, EqualsConcatenatedSerialShardRuns)
{
    Dem dem = d3Dem(5e-3);
    std::size_t shard_shots = 300;
    std::size_t shots = 1000; // 3 full shards + 1 short shard.
    SampleBatch whole = sampleDemSharded(dem, shots, 7, 4, shard_shots);
    ShardPlan plan{shots, shard_shots};
    for (std::size_t i = 0; i < plan.numShards(); ++i) {
        SampleBatch part =
            sampleDem(dem, plan.shotsOf(i), shardSeed(7, i));
        for (std::size_t s = 0; s < part.shots; ++s) {
            std::size_t w = plan.offsetOf(i) + s;
            EXPECT_EQ(whole.flippedDetectors(w), part.flippedDetectors(s));
            EXPECT_EQ(whole.obsMask(w), part.obsMask(s));
        }
    }
}

TEST(ParallelLer, ThreadCountDoesNotChangeFailuresOrShots)
{
    Dem dem = d3Dem(3e-3);
    auto dec = d3Decoder(dem);
    decoder::LerOptions base;
    base.shardShots = 256; // Many shards so threads genuinely interleave.
    base.threads = 1;
    decoder::LerResult serial =
        decoder::measureDemLer(dem, *dec, 8000, 77, base);
    EXPECT_EQ(serial.shots, 8000u);
    for (std::size_t threads : {2u, 4u, 8u}) {
        decoder::LerOptions opts = base;
        opts.threads = threads;
        decoder::LerResult par =
            decoder::measureDemLer(dem, *dec, 8000, 77, opts);
        EXPECT_EQ(serial.failures, par.failures) << threads << " threads";
        EXPECT_EQ(serial.shots, par.shots) << threads << " threads";
    }
}

TEST(ParallelLer, EarlyStoppingIsThreadCountIndependent)
{
    // High p: failures are frequent, so a small target cuts the run early.
    Dem dem = d3Dem(1e-2);
    auto dec = d3Decoder(dem);
    decoder::LerOptions base;
    base.shardShots = 128;
    base.maxFailures = 20;
    base.threads = 1;
    decoder::LerResult serial =
        decoder::measureDemLer(dem, *dec, 50000, 5, base);
    EXPECT_TRUE(serial.earlyStopped);
    EXPECT_LT(serial.shots, 50000u);
    EXPECT_GE(serial.failures, 20u);
    for (std::size_t threads : {2u, 4u, 8u}) {
        decoder::LerOptions opts = base;
        opts.threads = threads;
        decoder::LerResult par =
            decoder::measureDemLer(dem, *dec, 50000, 5, opts);
        EXPECT_EQ(serial.failures, par.failures) << threads << " threads";
        EXPECT_EQ(serial.shots, par.shots) << threads << " threads";
        EXPECT_EQ(serial.earlyStopped, par.earlyStopped)
            << threads << " threads";
    }
}

TEST(ParallelLer, LegacyOverloadMatchesDefaultOptions)
{
    Dem dem = d3Dem(3e-3);
    auto dec = d3Decoder(dem);
    decoder::LerResult a = decoder::measureDemLer(dem, *dec, 4000, 3);
    decoder::LerResult b =
        decoder::measureDemLer(dem, *dec, 4000, 3, decoder::LerOptions{});
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.shots, b.shots);
}

TEST(ParallelLer, ClonedDecoderAgreesWithOriginal)
{
    Dem dem = d3Dem(5e-3);
    auto dec = d3Decoder(dem);
    auto copy = dec->clone();
    SampleBatch batch = sampleDem(dem, 500, 21);
    for (std::size_t s = 0; s < batch.shots; ++s) {
        auto flipped = batch.flippedDetectors(s);
        EXPECT_EQ(dec->decode(flipped), copy->decode(flipped));
    }
}

TEST(ParallelLer, MemoryLerThreadCountIndependent)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto sched = circuit::colorationSchedule(cp);
    decoder::LerOptions one;
    one.threads = 1;
    one.shardShots = 256;
    decoder::LerOptions four = one;
    four.threads = 4;
    auto a = decoder::measureMemoryLer(sched, 3, NoiseModel::uniform(3e-3),
                                       "union_find", 4000,
                                       11, one);
    auto b = decoder::measureMemoryLer(sched, 3, NoiseModel::uniform(3e-3),
                                       "union_find", 4000,
                                       11, four);
    EXPECT_EQ(a.z.failures, b.z.failures);
    EXPECT_EQ(a.x.failures, b.x.failures);
    EXPECT_EQ(a.combined(), b.combined());
}
