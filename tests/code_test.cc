/**
 * @file
 * Tests for CSS code constructions: surface, group algebra, lifted product,
 * two-block, distance estimation, and the Table 1 benchmark suite.
 */
#include <gtest/gtest.h>

#include <random>

#include "code/codes.h"
#include "code/distance.h"
#include "code/group_algebra.h"
#include "code/lifted_product.h"
#include "code/surface.h"
#include "code/two_block.h"

using namespace prophunt::code;
using prophunt::gf2::BitVec;
using prophunt::gf2::Matrix;

TEST(CssCode, RejectsAnticommutingChecks)
{
    // Single-qubit overlap between an X and a Z check anticommutes.
    Matrix hx = Matrix::fromRows({{1, 1, 0}});
    Matrix hz = Matrix::fromRows({{1, 0, 1}});
    EXPECT_THROW(CssCode(hx, hz, "bad"), std::invalid_argument);
}

TEST(CssCode, PaperExampleD3)
{
    // The d=3 check matrices from the paper's Section 2.2.
    Matrix hx = Matrix::fromRows({{1, 1, 0, 1, 1, 0, 0, 0, 0},
                                  {0, 0, 0, 0, 1, 1, 0, 1, 1},
                                  {0, 0, 0, 1, 0, 0, 1, 0, 0},
                                  {0, 0, 1, 0, 0, 1, 0, 0, 0}});
    Matrix hz = Matrix::fromRows({{0, 1, 1, 0, 1, 1, 0, 0, 0},
                                  {0, 0, 0, 1, 1, 0, 1, 1, 0},
                                  {1, 1, 0, 0, 0, 0, 0, 0, 0},
                                  {0, 0, 0, 0, 0, 0, 0, 1, 1}});
    CssCode code(hx, hz, "paper d3");
    EXPECT_EQ(code.n(), 9u);
    EXPECT_EQ(code.k(), 1u);
    EXPECT_EQ(estimateDistance(code, 40, 5), 3u);
}

TEST(CssCode, LogicalsAnticommutePairwise)
{
    CssCode code = benchmarkLp39();
    for (std::size_t i = 0; i < code.k(); ++i) {
        for (std::size_t j = 0; j < code.k(); ++j) {
            EXPECT_EQ(code.lx().row(i).dot(code.lz().row(j)), i == j)
                << "pair " << i << "," << j;
        }
    }
}

TEST(CssCode, LogicalsCommuteWithChecks)
{
    CssCode code = benchmarkRqt60();
    for (std::size_t i = 0; i < code.k(); ++i) {
        for (std::size_t r = 0; r < code.hz().rows(); ++r) {
            EXPECT_FALSE(code.lx().row(i).dot(code.hz().row(r)));
        }
        for (std::size_t r = 0; r < code.hx().rows(); ++r) {
            EXPECT_FALSE(code.lz().row(i).dot(code.hx().row(r)));
        }
    }
}

class SurfaceCodeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SurfaceCodeTest, Parameters)
{
    std::size_t d = GetParam();
    SurfaceCode s(d);
    EXPECT_EQ(s.code().n(), d * d);
    EXPECT_EQ(s.code().k(), 1u);
    EXPECT_EQ(s.code().numChecks(), d * d - 1);
    EXPECT_EQ(s.code().numXChecks(), (d * d - 1) / 2);
    EXPECT_EQ(estimateDistance(s.code(), 60, 17), d);
}

TEST_P(SurfaceCodeTest, FaceWeights)
{
    std::size_t d = GetParam();
    SurfaceCode s(d);
    std::size_t weight2 = 0, weight4 = 0;
    for (std::size_t c = 0; c < s.numFaces(); ++c) {
        std::size_t w = s.code().checkSupport(c).size();
        EXPECT_TRUE(w == 2 || w == 4);
        (w == 2 ? weight2 : weight4)++;
    }
    EXPECT_EQ(weight2, 2 * (d - 1)); // boundary faces
    EXPECT_EQ(weight4, (d - 1) * (d - 1));
}

INSTANTIATE_TEST_SUITE_P(Distances, SurfaceCodeTest,
                         ::testing::Values(3, 5, 7, 9));

TEST(SurfaceCode, RejectsEvenDistance)
{
    EXPECT_THROW(SurfaceCode(4), std::invalid_argument);
}

TEST(Group, CyclicAxioms)
{
    Group g = Group::cyclic(12);
    EXPECT_EQ(g.order(), 12u);
    for (std::size_t a = 0; a < 12; ++a) {
        EXPECT_EQ(g.mul(a, g.inverse(a)), 0u);
        EXPECT_EQ(g.mul(0, a), a);
        for (std::size_t b = 0; b < 12; ++b) {
            for (std::size_t c = 0; c < 12; ++c) {
                EXPECT_EQ(g.mul(g.mul(a, b), c), g.mul(a, g.mul(b, c)));
            }
        }
    }
}

TEST(Group, DihedralAxioms)
{
    Group g = Group::dihedral(5);
    EXPECT_EQ(g.order(), 10u);
    for (std::size_t a = 0; a < 10; ++a) {
        EXPECT_EQ(g.mul(a, g.inverse(a)), 0u);
        for (std::size_t b = 0; b < 10; ++b) {
            for (std::size_t c = 0; c < 10; ++c) {
                EXPECT_EQ(g.mul(g.mul(a, b), c), g.mul(a, g.mul(b, c)));
            }
        }
    }
    // Non-abelian: some pair fails to commute.
    bool noncommutative = false;
    for (std::size_t a = 0; a < 10 && !noncommutative; ++a) {
        for (std::size_t b = 0; b < 10; ++b) {
            if (g.mul(a, b) != g.mul(b, a)) {
                noncommutative = true;
                break;
            }
        }
    }
    EXPECT_TRUE(noncommutative);
}

TEST(GroupAlgebra, LeftRightRepresentationsCommute)
{
    Group g = Group::dihedral(4);
    std::mt19937_64 rng(3);
    for (int trial = 0; trial < 10; ++trial) {
        AlgebraElement a = AlgebraElement::fromTerms(
            g, {rng() % g.order(), rng() % g.order()});
        AlgebraElement b = AlgebraElement::fromTerms(
            g, {rng() % g.order(), rng() % g.order()});
        Matrix la = a.liftLeft(g);
        Matrix rb = b.liftRight(g);
        EXPECT_EQ(la.mul(rb), rb.mul(la));
    }
}

TEST(GroupAlgebra, AntipodeTransposesLift)
{
    Group g = Group::dihedral(6);
    AlgebraElement a = AlgebraElement::fromTerms(g, {1, 7, 10});
    EXPECT_EQ(a.liftLeft(g).transpose(), a.antipode(g).liftLeft(g));
    EXPECT_EQ(a.liftRight(g).transpose(), a.antipode(g).liftRight(g));
}

class LiftedProductProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LiftedProductProperty, RandomInstancesAreValidCss)
{
    std::mt19937_64 rng(GetParam() * 7919 + 1);
    bool dihedral = rng() & 1;
    Group g = dihedral ? Group::dihedral(2 + rng() % 4)
                       : Group::cyclic(2 + rng() % 7);
    std::size_t ma = 1 + rng() % 2, na = 2 + rng() % 2;
    std::size_t mb = 1 + rng() % 2, nb = 2 + rng() % 2;
    Protograph a(g, ma, na), b(g, mb, nb);
    for (std::size_t r = 0; r < ma; ++r) {
        for (std::size_t c = 0; c < na; ++c) {
            a.at(r, c) = AlgebraElement::fromTerms(g, {rng() % g.order()});
        }
    }
    for (std::size_t r = 0; r < mb; ++r) {
        for (std::size_t c = 0; c < nb; ++c) {
            b.at(r, c) = AlgebraElement::fromTerms(g, {rng() % g.order()});
        }
    }
    // Construction throws if H_X H_Z^T != 0; success is the assertion.
    CssCode code = liftedProduct(g, a, b, "prop");
    EXPECT_EQ(code.n(), g.order() * (na * nb + ma * mb));
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, LiftedProductProperty,
                         ::testing::Range(0, 20));

class TwoBlockProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(TwoBlockProperty, RandomInstancesAreValidCss)
{
    std::mt19937_64 rng(GetParam() * 104729 + 5);
    bool dihedral = rng() & 1;
    Group g = dihedral ? Group::dihedral(3 + rng() % 6)
                       : Group::cyclic(4 + rng() % 12);
    std::vector<std::size_t> ta{0}, tb{0};
    while (ta.size() < 3) {
        ta.push_back(rng() % g.order());
    }
    while (tb.size() < 3) {
        tb.push_back(rng() % g.order());
    }
    CssCode code = twoBlock(g, AlgebraElement::fromTerms(g, ta),
                            AlgebraElement::fromTerms(g, tb), "prop");
    EXPECT_EQ(code.n(), 2 * g.order());
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, TwoBlockProperty,
                         ::testing::Range(0, 20));

TEST(BenchmarkCodes, Table1Parameters)
{
    auto codes = allBenchmarkCodes();
    ASSERT_EQ(codes.size(), 8u);
    struct Expected
    {
        std::size_t n, k, d;
    };
    // The two large RQT stand-ins realize k=12 (see DESIGN.md, sub. 5).
    std::vector<Expected> expected = {{9, 1, 3},   {25, 1, 5}, {49, 1, 7},
                                      {81, 1, 9},  {39, 3, 3}, {60, 2, 6},
                                      {54, 12, 4}, {108, 12, 4}};
    for (std::size_t i = 0; i < codes.size(); ++i) {
        EXPECT_EQ(codes[i].n(), expected[i].n) << codes[i].name();
        EXPECT_EQ(codes[i].k(), expected[i].k) << codes[i].name();
        EXPECT_EQ(estimateDistance(codes[i], 50, 23), expected[i].d)
            << codes[i].name();
    }
}

TEST(Distance, RepetitionLikeLowerBound)
{
    // Steane code [[7,1,3]].
    Matrix h = Matrix::fromRows({{1, 0, 1, 0, 1, 0, 1},
                                 {0, 1, 1, 0, 0, 1, 1},
                                 {0, 0, 0, 1, 1, 1, 1}});
    CssCode steane(h, h, "steane");
    EXPECT_EQ(steane.k(), 1u);
    EXPECT_EQ(estimateDistance(steane, 40, 3), 3u);
}
