/**
 * @file
 * Tests for the schedule-search subsystem: the propagation-weight
 * objective, beam search, branch-and-bound (bound admissibility against
 * exhaustive enumeration on toy codes), the portfolio driver, and the
 * engine-level determinism/cancellation contracts.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>

#include "api/engine.h"
#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/surface.h"
#include "search/beam.h"
#include "search/branch_bound.h"
#include "search/objective.h"
#include "search/portfolio.h"

using namespace prophunt;
using namespace prophunt::search;

namespace {

/** Single-stabilizer-pair toy code: every check-order assignment is
 * exhaustively enumerable (4!^2 = 576 leaves). */
std::shared_ptr<const code::CssCode>
toyCode4()
{
    return std::make_shared<const code::CssCode>(
        gf2::Matrix::fromRows({{1, 1, 1, 1}}),
        gf2::Matrix::fromRows({{1, 1, 1, 1}}), "toy4");
}

/** Weight-3 toy with partially overlapping checks (3!^2 = 36 leaves). */
std::shared_ptr<const code::CssCode>
toyCode3()
{
    return std::make_shared<const code::CssCode>(
        gf2::Matrix::fromRows({{1, 1, 1, 0}}),
        gf2::Matrix::fromRows({{0, 1, 1, 1}}), "toy3");
}

/** Natural start schedule: ascending check orders, X-before-Z on every
 * qubit (commutation-valid: full-overlap pairs cross evenly). */
circuit::SmSchedule
naturalSchedule(std::shared_ptr<const code::CssCode> code)
{
    std::vector<std::vector<std::size_t>> check_order;
    for (std::size_t c = 0; c < code->numChecks(); ++c) {
        check_order.push_back(code->checkSupport(c));
    }
    std::vector<std::vector<std::size_t>> qubit_order(code->n());
    for (std::size_t c = 0; c < code->numChecks(); ++c) {
        for (std::size_t q : code->checkSupport(c)) {
            qubit_order[q].push_back(c);
        }
    }
    return circuit::SmSchedule(std::move(code), std::move(check_order),
                               std::move(qubit_order));
}

/** Minimum objective over every check-order permutation assignment with
 * the start schedule's relative orders — B&B's exact search space. */
uint64_t
exhaustiveOptimum(const circuit::SmSchedule &start,
                  const ScheduleObjective &obj)
{
    const code::CssCode &code = start.code();
    std::vector<std::vector<std::size_t>> orders;
    std::vector<std::vector<std::size_t>> qubit_orders;
    for (std::size_t c = 0; c < code.numChecks(); ++c) {
        orders.push_back(start.checkOrder(c));
    }
    for (std::size_t q = 0; q < code.n(); ++q) {
        qubit_orders.push_back(start.qubitOrder(q));
    }
    for (auto &o : orders) {
        std::sort(o.begin(), o.end());
    }
    uint64_t best = obj.evaluate(start);
    std::size_t m = code.numChecks();
    // Odometer over per-check permutations.
    std::function<void(std::size_t)> walk = [&](std::size_t c) {
        if (c == m) {
            circuit::SmSchedule cand(start.codePtr(), orders,
                                     qubit_orders);
            best = std::min(best, obj.evaluate(cand));
            return;
        }
        std::vector<std::size_t> &o = orders[c];
        std::sort(o.begin(), o.end());
        do {
            walk(c + 1);
        } while (std::next_permutation(o.begin(), o.end()));
    };
    walk(0);
    return best;
}

core::PropHuntOptions
cheapMaxSatOptions(uint64_t seed)
{
    core::PropHuntOptions opts;
    opts.iterations = 2;
    opts.samplesPerIteration = 50;
    opts.maxAmbiguousPerIteration = 2;
    opts.maxCost = 8;
    opts.satTimeoutSeconds = 5.0;
    opts.seed = seed;
    return opts;
}

/** Deterministic SearchStats fields (wall-clock excluded). */
void
expectStatsEqual(const SearchStats &a, const SearchStats &b)
{
    EXPECT_EQ(a.expansions, b.expansions);
    EXPECT_EQ(a.prunedByBound, b.prunedByBound);
    EXPECT_EQ(a.deadEnds, b.deadEnds);
    EXPECT_EQ(a.bestObjective, b.bestObjective);
    EXPECT_EQ(a.firstImprovementExpansions, b.firstImprovementExpansions);
    EXPECT_EQ(a.transpositionHits, b.transpositionHits);
    EXPECT_EQ(a.transpositionMisses, b.transpositionMisses);
}

void
expectOutcomesEqual(const core::OptimizeResult &a,
                    const core::OptimizeResult &b)
{
    EXPECT_TRUE(a.finalSchedule() == b.finalSchedule());
    ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
    for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
        EXPECT_TRUE(a.snapshots[i] == b.snapshots[i]);
    }
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(a.history[i].ambiguousFound, b.history[i].ambiguousFound);
        EXPECT_EQ(a.history[i].candidatesEnumerated,
                  b.history[i].candidatesEnumerated);
        EXPECT_EQ(a.history[i].changesVerified,
                  b.history[i].changesVerified);
        EXPECT_EQ(a.history[i].changesApplied, b.history[i].changesApplied);
        EXPECT_EQ(a.history[i].depth, b.history[i].depth);
        EXPECT_EQ(a.history[i].minLogicalWeight,
                  b.history[i].minLogicalWeight);
        EXPECT_EQ(a.history[i].solveWeights, b.history[i].solveWeights);
    }
    ASSERT_EQ(a.searchReports.size(), b.searchReports.size());
    for (std::size_t i = 0; i < a.searchReports.size(); ++i) {
        EXPECT_EQ(a.searchReports[i].name, b.searchReports[i].name);
        EXPECT_EQ(a.searchReports[i].verified, b.searchReports[i].verified);
        EXPECT_EQ(a.searchReports[i].winner, b.searchReports[i].winner);
        expectStatsEqual(a.searchReports[i].stats,
                         b.searchReports[i].stats);
    }
}

} // namespace

// --- objective ------------------------------------------------------------

TEST(Objective, RanksHandDesignedSchedulesCorrectly)
{
    for (std::size_t d : {3ul, 5ul}) {
        code::SurfaceCode s(d);
        auto cp = std::make_shared<const code::CssCode>(s.code());
        ScheduleObjective obj(cp);
        uint64_t nz = obj.evaluate(circuit::nzSchedule(s));
        uint64_t poor = obj.evaluate(circuit::poorSurfaceSchedule(s));
        EXPECT_LT(nz, poor)
            << "hook-aligned poor schedule must score worse at d=" << d;
        ObjectiveTerms tp =
            obj.evaluateTerms(circuit::poorSurfaceSchedule(s));
        ObjectiveTerms tn = obj.evaluateTerms(circuit::nzSchedule(s));
        EXPECT_TRUE(tp.valid);
        EXPECT_GT(tp.hookAlignment, tn.hookAlignment);
    }
}

TEST(Objective, InvalidSchedulesScoreInvalid)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule sched = circuit::nzSchedule(s);
    EXPECT_NE(obj.evaluate(sched), kInvalidObjective);
    ObjectiveTerms terms = obj.evaluateTerms(sched);
    EXPECT_TRUE(terms.valid);
    EXPECT_EQ(ScheduleObjective::pack(terms), obj.evaluate(sched));
    ObjectiveTerms invalid;
    EXPECT_EQ(ScheduleObjective::pack(invalid), kInvalidObjective);
}

TEST(Objective, DepthLoadBoundIsAdmissible)
{
    code::SurfaceCode s(5);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    for (const circuit::SmSchedule &sched :
         {circuit::nzSchedule(s), circuit::poorSurfaceSchedule(s),
          circuit::colorationSchedule(cp)}) {
        EXPECT_GE(sched.depth(), obj.depthLoadBound());
    }
}

TEST(Objective, MinCheckDamageBoundsEveryPermutation)
{
    auto cp = toyCode4();
    ScheduleObjective obj(cp);
    for (std::size_t c = 0; c < cp->numChecks(); ++c) {
        std::vector<std::size_t> support = cp->checkSupport(c);
        std::sort(support.begin(), support.end());
        uint64_t lo = UINT64_MAX, hi = 0;
        do {
            uint64_t d = obj.checkDamage(c, support);
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        } while (std::next_permutation(support.begin(), support.end()));
        EXPECT_EQ(obj.minCheckDamage(c), lo);
        EXPECT_EQ(obj.maxCheckDamage(c), hi);
    }
}

TEST(Objective, ScheduleKeyDistinguishesSchedules)
{
    code::SurfaceCode s(3);
    circuit::SmSchedule a = circuit::nzSchedule(s);
    circuit::SmSchedule b = circuit::poorSurfaceSchedule(s);
    EXPECT_EQ(scheduleKey(a), scheduleKey(circuit::nzSchedule(s)));
    EXPECT_NE(scheduleKey(a), scheduleKey(b));
}

// --- beam search ----------------------------------------------------------

TEST(BeamSearch, ImprovesPoorSchedule)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    SearchContext ctx{start, obj, SearchBudget{4000, 0.0}, 7, nullptr};
    SearchOutcome out = runBeamSearch(ctx, BeamOptions{});
    EXPECT_LT(out.stats.bestObjective, obj.evaluate(start));
    EXPECT_EQ(out.stats.bestObjective, obj.evaluate(out.schedule));
    EXPECT_TRUE(out.schedule.commutationValid());
    EXPECT_TRUE(out.schedule.schedulable());
    EXPECT_GT(out.stats.firstImprovementExpansions, 0u);
    EXPECT_LE(out.stats.firstImprovementExpansions, out.stats.expansions);
}

TEST(BeamSearch, DeterministicAcrossReruns)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    BeamOptions options;
    options.maxNeighborsPerState = 40; // exercise the seeded subsample
    SearchContext ctx{start, obj, SearchBudget{1500, 0.0}, 11, nullptr};
    SearchOutcome a = runBeamSearch(ctx, options);
    SearchOutcome b = runBeamSearch(ctx, options);
    EXPECT_TRUE(a.schedule == b.schedule);
    expectStatsEqual(a.stats, b.stats);
}

TEST(BeamSearch, BudgetExhaustionReturnsBestSoFar)
{
    code::SurfaceCode s(5);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    SearchContext ctx{start, obj, SearchBudget{5, 0.0}, 3, nullptr};
    SearchOutcome out = runBeamSearch(ctx, BeamOptions{});
    EXPECT_LE(out.stats.expansions, 5u);
    EXPECT_LE(out.stats.bestObjective, obj.evaluate(start));
    EXPECT_EQ(out.stats.bestObjective, obj.evaluate(out.schedule));
}

TEST(BeamSearch, CancellationStopsImmediately)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    std::atomic<bool> cancel{true};
    SearchContext ctx{start, obj, SearchBudget{0, 0.0}, 3, &cancel};
    SearchOutcome out = runBeamSearch(ctx, BeamOptions{});
    EXPECT_EQ(out.stats.expansions, 0u);
    EXPECT_TRUE(out.schedule == start);
}

// --- branch and bound -----------------------------------------------------

TEST(BranchBound, MatchesExhaustiveSearchOnToyCodes)
{
    for (auto code : {toyCode4(), toyCode3()}) {
        circuit::SmSchedule start = naturalSchedule(code);
        ASSERT_TRUE(start.commutationValid());
        ASSERT_TRUE(start.schedulable());
        ScheduleObjective obj(code);
        uint64_t truth = exhaustiveOptimum(start, obj);
        SearchContext ctx{start, obj, SearchBudget{0, 0.0}, 1, nullptr};
        SearchOutcome out = runBranchBound(ctx, BnbOptions{});
        EXPECT_EQ(out.stats.bestObjective, truth)
            << "B&B pruned the optimum on " << code->name();
        EXPECT_EQ(obj.evaluate(out.schedule), truth);
    }
}

TEST(BranchBound, PruningEngagesAndStaysAdmissible)
{
    // The d=3 surface code is too large to enumerate, but admissibility
    // shows as: unlimited B&B's optimum is not changed by running it
    // twice (determinism) and never exceeds any leaf we can sample.
    auto code = toyCode4();
    circuit::SmSchedule start = naturalSchedule(code);
    ScheduleObjective obj(code);
    SearchContext ctx{start, obj, SearchBudget{0, 0.0}, 1, nullptr};
    SearchOutcome out = runBranchBound(ctx, BnbOptions{});
    SearchOutcome again = runBranchBound(ctx, BnbOptions{});
    expectStatsEqual(out.stats, again.stats);
    EXPECT_TRUE(out.schedule == again.schedule);
    // 2 checks x 24 permutations: pruning must have fired at least once
    // (the all-leaves tree would be 24 + 24*24 = 600 expansions).
    EXPECT_GT(out.stats.prunedByBound, 0u);
    EXPECT_LT(out.stats.expansions, 600u);
}

TEST(BranchBound, BudgetExhaustionReturnsBestSoFar)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    SearchContext ctx{start, obj, SearchBudget{10, 0.0}, 1, nullptr};
    SearchOutcome out = runBranchBound(ctx, BnbOptions{});
    EXPECT_LE(out.stats.expansions, 10u);
    EXPECT_LE(out.stats.bestObjective, obj.evaluate(start));
    EXPECT_EQ(out.stats.bestObjective, obj.evaluate(out.schedule));
    EXPECT_TRUE(out.schedule.commutationValid());
    EXPECT_TRUE(out.schedule.schedulable());
}

// --- portfolio ------------------------------------------------------------

TEST(Portfolio, EqualsBestStrategy)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule start = circuit::poorSurfaceSchedule(s);
    core::PropHuntOptions opts = cheapMaxSatOptions(21);

    auto soloBest = [&](bool beam, bool bnb, bool maxsat) {
        PortfolioOptions p;
        p.enabled = true;
        p.includeBeam = beam;
        p.includeBranchBound = bnb;
        p.includeMaxSat = maxsat;
        core::OptimizeResult r = runPortfolio(start, 3, opts, p);
        return obj.evaluate(r.finalSchedule());
    };
    uint64_t beam_obj = soloBest(true, false, false);
    uint64_t bnb_obj = soloBest(false, true, false);
    uint64_t maxsat_obj = soloBest(false, false, true);

    PortfolioOptions all;
    all.enabled = true;
    core::OptimizeResult combined = runPortfolio(start, 3, opts, all);
    uint64_t combined_obj = obj.evaluate(combined.finalSchedule());
    EXPECT_EQ(combined_obj,
              std::min({beam_obj, bnb_obj, maxsat_obj}));
    ASSERT_EQ(combined.searchReports.size(), 3u);
    EXPECT_EQ(combined.searchReports[0].name, "beam");
    EXPECT_EQ(combined.searchReports[1].name, "branch_bound");
    EXPECT_EQ(combined.searchReports[2].name, "maxsat");
    std::size_t winners = 0;
    for (const auto &rep : combined.searchReports) {
        winners += rep.winner ? 1 : 0;
    }
    EXPECT_LE(winners, 1u);
}

TEST(Portfolio, NeverWorseThanStart)
{
    // Start from the already-good nz schedule: whatever the strategies
    // do, the portfolio must not hand back anything objective-worse.
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    ScheduleObjective obj(cp);
    circuit::SmSchedule start = circuit::nzSchedule(s);
    core::PropHuntOptions opts = cheapMaxSatOptions(5);
    PortfolioOptions p;
    p.enabled = true;
    p.beamBudget = {200, 0.0};
    p.bnbBudget = {200, 0.0};
    core::OptimizeResult r = runPortfolio(start, 3, opts, p);
    EXPECT_LE(obj.evaluate(r.finalSchedule()), obj.evaluate(start));
    EXPECT_TRUE(r.finalSchedule().commutationValid());
    EXPECT_TRUE(r.finalSchedule().schedulable());
}

// --- engine integration ---------------------------------------------------

TEST(EngineSearch, PortfolioRequestIsBitDeterministic)
{
    code::SurfaceCode s(3);
    api::Engine engine;
    auto makeReq = [&](std::size_t threads) {
        api::OptimizeRequest req(circuit::poorSurfaceSchedule(s));
        req.rounds = 3;
        req.options = cheapMaxSatOptions(33);
        req.options.threads = threads;
        req.portfolio.enabled = true;
        req.portfolio.beamBudget = {800, 0.0};
        req.portfolio.bnbBudget = {800, 0.0};
        return req;
    };
    api::OptimizeResult a = engine.run(makeReq(1));
    api::OptimizeResult b = engine.run(makeReq(1));
    expectOutcomesEqual(a.outcome, b.outcome);
    // Thread-count invariance: the MaxSAT strategy's sampling and
    // verification are index-ordered, beam/B&B are serial.
    api::OptimizeResult c = engine.run(makeReq(3));
    expectOutcomesEqual(a.outcome, c.outcome);
}

TEST(EngineSearch, TelemetryCarriesSearchStats)
{
    code::SurfaceCode s(3);
    api::Engine engine;
    api::OptimizeRequest req(circuit::poorSurfaceSchedule(s));
    req.rounds = 3;
    req.options = cheapMaxSatOptions(9);
    req.portfolio.enabled = true;
    api::OptimizeResult res = engine.run(req);
    ASSERT_EQ(res.telemetry.search.size(), 3u);
    EXPECT_EQ(res.telemetry.search[0].name, "beam");
    EXPECT_GT(res.telemetry.search[0].stats.expansions, 0u);
    EXPECT_NE(res.telemetry.search[0].stats.bestObjective,
              kInvalidObjective);
    EXPECT_EQ(res.telemetry.search[1].name, "branch_bound");
    EXPECT_GT(res.telemetry.search[1].stats.expansions, 0u);
    EXPECT_EQ(res.telemetry.search[2].name, "maxsat");
}

TEST(EngineSearch, ClassicPathUnchangedWithoutPortfolio)
{
    code::SurfaceCode s(3);
    api::Engine engine;
    api::OptimizeRequest req(circuit::poorSurfaceSchedule(s));
    req.rounds = 3;
    req.options = cheapMaxSatOptions(17);
    api::OptimizeResult viaEngine = engine.run(req);
    core::PropHunt tool(req.options);
    core::OptimizeResult direct =
        tool.optimize(req.start, req.rounds);
    EXPECT_TRUE(viaEngine.finalSchedule() == direct.finalSchedule());
    EXPECT_TRUE(viaEngine.telemetry.search.empty());
}

TEST(EngineSearch, CancellationReturnsStartSchedule)
{
    code::SurfaceCode s(3);
    api::Engine engine;
    std::atomic<bool> cancel{true};
    api::OptimizeRequest req(circuit::poorSurfaceSchedule(s));
    req.rounds = 3;
    req.options = cheapMaxSatOptions(3);
    req.portfolio.enabled = true;
    req.cancel = &cancel;
    api::OptimizeResult res = engine.run(req);
    EXPECT_TRUE(res.finalSchedule() == req.start);
    ASSERT_EQ(res.telemetry.search.size(), 3u);
    for (const auto &rep : res.telemetry.search) {
        EXPECT_EQ(rep.stats.expansions, 0u);
    }
    EXPECT_TRUE(res.outcome.history.empty());
}

TEST(EngineSearch, CancellationStopsClassicOptimize)
{
    // Parity with LerRequest::cancel for the MaxSAT-only path.
    code::SurfaceCode s(3);
    api::Engine engine;
    std::atomic<bool> cancel{true};
    api::OptimizeRequest req(circuit::poorSurfaceSchedule(s));
    req.rounds = 3;
    req.options = cheapMaxSatOptions(3);
    req.cancel = &cancel;
    api::OptimizeResult res = engine.run(req);
    EXPECT_TRUE(res.finalSchedule() == req.start);
    EXPECT_TRUE(res.outcome.history.empty());
}

TEST(EngineSearch, SubmitMatchesRun)
{
    code::SurfaceCode s(3);
    api::Engine engine;
    auto makeReq = [&]() {
        api::OptimizeRequest req(circuit::poorSurfaceSchedule(s));
        req.rounds = 3;
        req.options = cheapMaxSatOptions(13);
        req.portfolio.enabled = true;
        req.portfolio.includeMaxSat = false; // keep the async leg fast
        return req;
    };
    api::OptimizeResult sync = engine.run(makeReq());
    std::future<api::OptimizeResult> fut = engine.submit(makeReq());
    api::OptimizeResult async = fut.get();
    expectOutcomesEqual(sync.outcome, async.outcome);
}
