/**
 * @file
 * Tests for the circuit-level model: fault propagation, DEM extraction,
 * probability merging, and the DEM sampler.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/surface.h"
#include "sim/dem_builder.h"
#include "sim/sampler.h"

using namespace prophunt;
using namespace prophunt::sim;

namespace {

circuit::SmCircuit
d3Circuit(circuit::MemoryBasis basis, std::size_t rounds = 3)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    return circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                       rounds, basis);
}

} // namespace

TEST(DemBuilder, NoNoiseNoErrors)
{
    Dem dem = buildDem(d3Circuit(circuit::MemoryBasis::Z),
                       NoiseModel{0, 0, 0});
    EXPECT_TRUE(dem.errors.empty());
}

TEST(DemBuilder, EveryMechanismHasSourcesAndProbability)
{
    Dem dem = buildDem(d3Circuit(circuit::MemoryBasis::Z),
                       NoiseModel::uniform(1e-3));
    ASSERT_FALSE(dem.errors.empty());
    for (const auto &mech : dem.errors) {
        EXPECT_FALSE(mech.sources.empty());
        EXPECT_GT(mech.p, 0.0);
        EXPECT_LT(mech.p, 0.1);
        // Detectors sorted and unique.
        for (std::size_t i = 1; i < mech.detectors.size(); ++i) {
            EXPECT_LT(mech.detectors[i - 1], mech.detectors[i]);
        }
    }
}

TEST(DemBuilder, NoUndetectedSingleFaults)
{
    // A valid SM circuit must detect every single fault that flips an
    // observable: no mechanism with empty detectors and nonempty
    // observables (that would be d_eff = 1).
    for (auto basis : {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
        Dem dem = buildDem(d3Circuit(basis), NoiseModel::uniform(1e-3));
        for (const auto &mech : dem.errors) {
            EXPECT_FALSE(mech.detectors.empty() &&
                         !mech.observables.empty());
        }
    }
}

TEST(DemBuilder, HandCheckedSingleQubitCode)
{
    // One data qubit, one Z check of weight 1 is not a CSS code; use a
    // two-qubit repetition code: Z checks {q0 q1}, memory-Z.
    gf2::Matrix hz = gf2::Matrix::fromRows({{1, 1}});
    auto cp = std::make_shared<const code::CssCode>(
        code::CssCode(gf2::Matrix(0, 2), hz, "rep2"));
    circuit::SmSchedule s(cp, {{0, 1}}, {{0}, {0}});
    circuit::SmCircuit c =
        circuit::buildMemoryCircuit(s, 2, circuit::MemoryBasis::Z);
    // Only CNOT noise.
    Dem dem = buildDem(c, NoiseModel{0.0, 1e-3, 0.0});
    // Each mechanism must touch at most 2 rounds of the single check.
    EXPECT_GT(dem.errors.size(), 0u);
    for (const auto &mech : dem.errors) {
        EXPECT_LE(mech.detectors.size(), 3u);
    }
    // An X fault on data qubit 0 after the first CNOT of round 0 flips the
    // round-1 detector and the final reconstruction, plus the observable
    // (qubit 0 is in the Z logical = {0} or {0,1}-ish). Check that at
    // least one mechanism flips the observable and is detected.
    bool seen_logical = false;
    for (const auto &mech : dem.errors) {
        if (!mech.observables.empty() && !mech.detectors.empty()) {
            seen_logical = true;
        }
    }
    EXPECT_TRUE(seen_logical);
}

TEST(DemBuilder, ProbabilityMergeFormula)
{
    // Two faults with identical signatures at p each combine to
    // 2p(1-p); verify some mechanism has a merged probability.
    Dem dem = buildDem(d3Circuit(circuit::MemoryBasis::Z),
                       NoiseModel::uniform(3e-3));
    double p1 = 3e-3 / 3.0, p2 = 3e-3 / 15.0;
    (void)p1;
    bool merged = false;
    for (const auto &mech : dem.errors) {
        if (mech.sources.size() >= 2) {
            merged = true;
            EXPECT_GT(mech.p, p2 * 1.5);
        }
    }
    EXPECT_TRUE(merged);
}

TEST(DemBuilder, IdleNoiseAddsProbabilityMass)
{
    // Idle faults propagate like data/ancilla components of existing gate
    // faults, so they merge into existing mechanisms rather than adding
    // new ones; the total error probability mass must grow.
    auto circ = d3Circuit(circuit::MemoryBasis::Z);
    Dem base = buildDem(circ, NoiseModel::uniform(1e-3));
    Dem idle = buildDem(circ, NoiseModel::withIdle(1e-3, 1e-4));
    EXPECT_GE(idle.errors.size(), base.errors.size());
    auto mass = [](const Dem &d) {
        double total = 0;
        for (const auto &m : d.errors) {
            total += m.p;
        }
        return total;
    };
    EXPECT_GT(mass(idle), mass(base) * 1.01);
}

TEST(DemBuilder, DeterministicAcrossCalls)
{
    auto circ = d3Circuit(circuit::MemoryBasis::Z);
    Dem a = buildDem(circ, NoiseModel::uniform(1e-3));
    Dem b = buildDem(circ, NoiseModel::uniform(1e-3));
    ASSERT_EQ(a.errors.size(), b.errors.size());
    for (std::size_t e = 0; e < a.errors.size(); ++e) {
        EXPECT_EQ(a.errors[e].detectors, b.errors[e].detectors);
        EXPECT_DOUBLE_EQ(a.errors[e].p, b.errors[e].p);
    }
}

TEST(DemBuilder, CheckMatrixShapes)
{
    Dem dem = buildDem(d3Circuit(circuit::MemoryBasis::Z),
                       NoiseModel::uniform(1e-3));
    auto h = dem.checkMatrix();
    auto l = dem.logicalMatrix();
    EXPECT_EQ(h.rows(), dem.numDetectors);
    EXPECT_EQ(h.cols(), dem.errors.size());
    EXPECT_EQ(l.rows(), dem.numObservables);
    EXPECT_EQ(l.cols(), dem.errors.size());
    // Circuit-level H is far wider than the code-level matrix (Sec. 2.7).
    EXPECT_GT(h.cols(), 100u);
}

TEST(Sampler, EmptyDemGivesCleanShots)
{
    Dem dem;
    dem.numDetectors = 10;
    dem.numObservables = 1;
    SampleBatch b = sampleDem(dem, 100, 1);
    for (std::size_t s = 0; s < 100; ++s) {
        EXPECT_TRUE(b.flippedDetectors(s).empty());
        EXPECT_EQ(b.obsMask(s), 0u);
    }
}

TEST(Sampler, SingleMechanismFrequency)
{
    Dem dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    ErrorMechanism m;
    m.p = 0.25;
    m.detectors = {0, 1};
    m.observables = {0};
    dem.errors.push_back(m);
    std::size_t shots = 200000;
    SampleBatch b = sampleDem(dem, shots, 42);
    std::size_t fired = 0;
    for (std::size_t s = 0; s < shots; ++s) {
        bool d0 = b.detBit(s, 0);
        EXPECT_EQ(d0, b.detBit(s, 1));
        EXPECT_EQ(d0, b.obsMask(s) == 1);
        fired += d0;
    }
    double rate = (double)fired / (double)shots;
    EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(Sampler, XorOfTwoMechanisms)
{
    Dem dem;
    dem.numDetectors = 1;
    dem.numObservables = 1;
    ErrorMechanism a, b;
    a.p = 0.5;
    a.detectors = {0};
    b.p = 0.5;
    b.detectors = {0};
    b.observables = {0};
    dem.errors = {a, b};
    std::size_t shots = 100000;
    SampleBatch batch = sampleDem(dem, shots, 7);
    // Detector fires iff exactly one mechanism fired: probability 1/2.
    std::size_t fired = 0;
    for (std::size_t s = 0; s < shots; ++s) {
        fired += batch.detBit(s, 0);
    }
    EXPECT_NEAR((double)fired / shots, 0.5, 0.02);
}

TEST(Sampler, DeterministicSeeding)
{
    Dem dem = buildDem(d3Circuit(circuit::MemoryBasis::Z),
                       NoiseModel::uniform(1e-2));
    SampleBatch a = sampleDem(dem, 500, 9);
    SampleBatch b = sampleDem(dem, 500, 9);
    SampleBatch c = sampleDem(dem, 500, 10);
    EXPECT_EQ(a.det, b.det);
    EXPECT_NE(a.det, c.det);
}

TEST(Sampler, MeanDetectorRateMatchesExpectation)
{
    Dem dem = buildDem(d3Circuit(circuit::MemoryBasis::Z),
                       NoiseModel::uniform(5e-3));
    // Expected flips per shot: sum over mechanisms of p * |detectors|
    // (small-p approximation ignoring cancellation).
    double expected = 0;
    for (const auto &m : dem.errors) {
        expected += m.p * m.detectors.size();
    }
    std::size_t shots = 20000;
    SampleBatch batch = sampleDem(dem, shots, 11);
    double total = 0;
    for (std::size_t s = 0; s < shots; ++s) {
        total += batch.flippedDetectors(s).size();
    }
    double mean = total / shots;
    EXPECT_NEAR(mean, expected, expected * 0.1);
}
