/**
 * @file
 * Tests for SM schedules, validity checks, the coloration baseline, the
 * hand-designed surface schedules, and memory-circuit construction.
 */
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "circuit/coloration.h"
#include "circuit/schedule.h"
#include "circuit/sm_circuit.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"

using namespace prophunt;
using namespace prophunt::circuit;

namespace {

std::shared_ptr<const code::CssCode>
surfacePtr(std::size_t d)
{
    return std::make_shared<const code::CssCode>(
        code::SurfaceCode(d).code());
}

} // namespace

TEST(SmSchedule, FromTimestepsRoundTrip)
{
    auto cp = surfacePtr(3);
    SmSchedule s = colorationSchedule(cp);
    auto ts = s.computeTimesteps();
    ASSERT_TRUE(ts.has_value());
    SmSchedule rebuilt = [&]() {
        std::vector<std::vector<std::pair<std::size_t, std::size_t>>> v(
            cp->numChecks());
        for (std::size_t c = 0; c < cp->numChecks(); ++c) {
            for (std::size_t k = 0; k < s.checkOrder(c).size(); ++k) {
                v[c].push_back({s.checkOrder(c)[k], ts->t[c][k]});
            }
        }
        return SmSchedule::fromTimesteps(cp, v);
    }();
    EXPECT_EQ(rebuilt, s);
}

TEST(SmSchedule, TimestepCollisionThrows)
{
    auto cp = surfacePtr(3);
    // Two checks touching qubit 4 at the same timestep.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> ts(
        cp->numChecks());
    for (std::size_t c = 0; c < cp->numChecks(); ++c) {
        std::size_t t = 0;
        for (std::size_t q : cp->checkSupport(c)) {
            ts[c].push_back({q, t++});
        }
    }
    // Qubit 4 participates in several checks, all starting at t=0 only if
    // it is first in multiple supports; force a collision explicitly.
    bool forced = false;
    for (std::size_t c = 0; c < cp->numChecks() && !forced; ++c) {
        for (auto &[q, t] : ts[c]) {
            if (q == 4 && t != 0) {
                t = 0;
                forced = true;
            }
        }
    }
    ASSERT_TRUE(forced);
    EXPECT_THROW(SmSchedule::fromTimesteps(cp, ts), std::invalid_argument);
}

TEST(SmSchedule, ReorderMovesQubit)
{
    auto cp = surfacePtr(3);
    SmSchedule s = colorationSchedule(cp);
    // Pick a weight-4 check.
    std::size_t check = 0;
    for (std::size_t c = 0; c < cp->numChecks(); ++c) {
        if (s.checkOrder(c).size() == 4) {
            check = c;
            break;
        }
    }
    auto before = s.checkOrder(check);
    SmSchedule t = s.withReorder(check, 3, 1);
    auto after = t.checkOrder(check);
    EXPECT_EQ(after[1], before[3]);
    EXPECT_EQ(after[0], before[0]);
    // Multiset of qubits preserved.
    std::multiset<std::size_t> a(before.begin(), before.end());
    std::multiset<std::size_t> b(after.begin(), after.end());
    EXPECT_EQ(a, b);
}

TEST(SmSchedule, RelativeSwapTogglesOrder)
{
    auto cp = surfacePtr(3);
    SmSchedule s = colorationSchedule(cp);
    // Find a qubit with at least two checks.
    for (std::size_t q = 0; q < cp->n(); ++q) {
        if (s.qubitOrder(q).size() >= 2) {
            std::size_t a = s.qubitOrder(q)[0], b = s.qubitOrder(q)[1];
            SmSchedule t = s.withRelativeSwap(q, a, b);
            EXPECT_EQ(t.qubitOrder(q)[0], b);
            EXPECT_EQ(t.qubitOrder(q)[1], a);
            return;
        }
    }
    FAIL() << "no shared qubit found";
}

TEST(SmSchedule, CycleDetection)
{
    // Two checks sharing two qubits with opposite relative orders create a
    // cycle only when combined with within-check ordering; construct one
    // directly: check A does (q0, q1), check B does (q1, q0), with
    // per-qubit orders q0: A before B, q1: B before A. Then
    // A(q1) < B(q1) is violated... build and expect unschedulable or
    // schedulable but consistent — assert computeTimesteps handles both.
    gf2::Matrix hz = gf2::Matrix::fromRows({{1, 1}, {1, 1}});
    gf2::Matrix hx(0, 2);
    auto cp = std::make_shared<const code::CssCode>(
        code::CssCode(hx, hz, "two-checks"));
    // Orders: check0: q0 then q1. check1: q1 then q0.
    // Qubit orders: q0: check0 then check1; q1: check1 then check0.
    // Precedence: c0q0 < c0q1 (check0), c1q1 < c1q0 (check1),
    // c0q0 < c1q0 (qubit0), c1q1 < c0q1 (qubit1). Acyclic.
    SmSchedule ok(cp, {{0, 1}, {1, 0}}, {{0, 1}, {1, 0}});
    EXPECT_TRUE(ok.schedulable());
    // Qubit orders: q0: check0 first; q1: check0 first. Then
    // c1q1 < c1q0 (check1), c0q1 < c1q1 (qubit1), c0q0 < c0q1 (check0),
    // c1q0 after c0q0 — still acyclic. Flip check1's order to (q0, q1):
    // c1q0 < c1q1 with q0: c1 first, q1: c0 first =>
    // c1q0 < c0q0 < c0q1 < c1q1 OK; now q1 order c1 first instead:
    // c1q1 < c0q1, and c0q0 < c0q1, c1q0 < c1q1, q0: c0 first:
    // c0q0 < c1q0 < c1q1 < c0q1 — consistent. A genuine cycle:
    // check0: q0 then q1; check1: q0 then q1;
    // qubit0: check0 first; qubit1: check1 first.
    // c0q0 < c1q0 (q0), c1q0 < c1q1 (c1), c1q1 < c0q1 (q1),
    // c0q0 < c0q1 (c0) — acyclic again! With two checks a cycle needs
    // opposite qubit orders AND aligned check orders:
    // qubit0: check1 first; qubit1: check0 first; both checks q0 then q1:
    // c1q0 < c0q0 (q0), c0q0 < c0q1 (c0), c0q1 < c1q1 (q1),
    // c1q0 < c1q1 (c1) — acyclic. Three constraints can't close a loop
    // here; use three checks on a triangle of qubits instead.
    gf2::Matrix hz3 =
        gf2::Matrix::fromRows({{1, 1, 0}, {0, 1, 1}, {1, 0, 1}});
    auto cp3 = std::make_shared<const code::CssCode>(
        code::CssCode(gf2::Matrix(0, 3), hz3, "triangle"));
    // check0 on {q0,q1}: q0 then q1; check1 on {q1,q2}: q1 then q2;
    // check2 on {q0,q2}: q2 then q0.
    // qubit orders: q0: c0 before c2? For a cycle:
    // c0q1 < c1q1 (q1: c0 first), c1q2 < c2q2 (q2: c1 first),
    // c2q0 < c0q0 (q0: c2 first); with internal orders
    // c0q0 < c0q1, c1q1 < c1q2, c2q2 < c2q0:
    // c0q0 < c0q1 < c1q1 < c1q2 < c2q2 < c2q0 < c0q0 — cycle!
    SmSchedule cyc(cp3, {{0, 1}, {1, 2}, {2, 0}},
                   {{2, 0}, {0, 1}, {1, 2}});
    EXPECT_FALSE(cyc.schedulable());
    EXPECT_THROW((void)cyc.depth(), std::logic_error);
}

TEST(SurfaceSchedules, NzIsDepth4AndValid)
{
    for (std::size_t d : {3, 5, 7}) {
        code::SurfaceCode s(d);
        SmSchedule nz = nzSchedule(s);
        EXPECT_EQ(nz.depth(), 4u) << "d=" << d;
        EXPECT_TRUE(nz.commutationValid()) << "d=" << d;
        SmSchedule poor = poorSurfaceSchedule(s);
        EXPECT_EQ(poor.depth(), 4u) << "d=" << d;
        EXPECT_TRUE(poor.commutationValid()) << "d=" << d;
        EXPECT_FALSE(nz == poor);
    }
}

class ColorationAllCodes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ColorationAllCodes, ValidForEveryBenchmarkCode)
{
    auto codes = code::allBenchmarkCodes();
    auto cp =
        std::make_shared<const code::CssCode>(codes[GetParam()]);
    SmSchedule s = colorationSchedule(cp);
    EXPECT_TRUE(s.commutationValid()) << cp->name();
    EXPECT_TRUE(s.schedulable()) << cp->name();
    // Every CNOT present exactly once.
    std::size_t cnots = 0;
    for (std::size_t c = 0; c < cp->numChecks(); ++c) {
        EXPECT_EQ(s.checkOrder(c).size(), cp->checkSupport(c).size());
        cnots += s.checkOrder(c).size();
    }
    std::size_t by_qubit = 0;
    for (std::size_t q = 0; q < cp->n(); ++q) {
        by_qubit += s.qubitOrder(q).size();
    }
    EXPECT_EQ(cnots, by_qubit);
}

TEST_P(ColorationAllCodes, RandomVariantsValidAndDistinct)
{
    auto codes = code::allBenchmarkCodes();
    auto cp =
        std::make_shared<const code::CssCode>(codes[GetParam()]);
    SmSchedule a = randomColorationSchedule(cp, 1);
    SmSchedule b = randomColorationSchedule(cp, 2);
    EXPECT_TRUE(a.commutationValid());
    EXPECT_TRUE(b.commutationValid());
    EXPECT_TRUE(a.schedulable());
    EXPECT_FALSE(a == b); // different seeds give different circuits
    // Same seed is deterministic.
    EXPECT_TRUE(a == randomColorationSchedule(cp, 1));
}

INSTANTIATE_TEST_SUITE_P(Table1, ColorationAllCodes,
                         ::testing::Range<std::size_t>(0, 8));

TEST(SmCircuit, MemoryZStructure)
{
    auto cp = surfacePtr(3);
    SmSchedule s = colorationSchedule(cp);
    std::size_t rounds = 3;
    SmCircuit c = buildMemoryCircuit(s, rounds, MemoryBasis::Z);
    std::size_t m = cp->numChecks();
    EXPECT_EQ(c.numMeasurements, rounds * m + cp->n());
    // Detectors: round 0 Z checks + (rounds-1)*all + final Z checks.
    std::size_t mz = cp->numZChecks();
    EXPECT_EQ(c.detectors.size(), mz + (rounds - 1) * m + mz);
    EXPECT_EQ(c.observables.size(), cp->k());
    EXPECT_EQ(c.countCnots(), rounds * 24u); // 24 CNOTs per round for d=3
    EXPECT_EQ(c.rounds, rounds);
}

TEST(SmCircuit, MemoryXMirror)
{
    auto cp = surfacePtr(3);
    SmSchedule s = colorationSchedule(cp);
    SmCircuit c = buildMemoryCircuit(s, 2, MemoryBasis::X);
    std::size_t mx = cp->numXChecks();
    std::size_t m = cp->numChecks();
    EXPECT_EQ(c.detectors.size(), mx + m + mx);
    // Observables read the X logical support.
    EXPECT_EQ(c.observables.size(), 1u);
    EXPECT_EQ(c.observables[0].size(),
              cp->lx().row(0).popcount());
}

TEST(SmCircuit, DetectorSourcesAreScheduleIndependent)
{
    auto cp = surfacePtr(3);
    SmSchedule a = colorationSchedule(cp);
    SmSchedule b = randomColorationSchedule(cp, 77);
    SmCircuit ca = buildMemoryCircuit(a, 3, MemoryBasis::Z);
    SmCircuit cb = buildMemoryCircuit(b, 3, MemoryBasis::Z);
    ASSERT_EQ(ca.detectorSource.size(), cb.detectorSource.size());
    EXPECT_EQ(ca.detectorSource, cb.detectorSource);
}

TEST(SmCircuit, UnschedulableThrows)
{
    gf2::Matrix hz3 =
        gf2::Matrix::fromRows({{1, 1, 0}, {0, 1, 1}, {1, 0, 1}});
    auto cp3 = std::make_shared<const code::CssCode>(
        code::CssCode(gf2::Matrix(0, 3), hz3, "triangle"));
    SmSchedule cyc(cp3, {{0, 1}, {1, 2}, {2, 0}},
                   {{2, 0}, {0, 1}, {1, 2}});
    EXPECT_THROW(buildMemoryCircuit(cyc, 2, MemoryBasis::Z),
                 std::invalid_argument);
}
