/**
 * @file
 * The gf2_dense subsystem and the packed OSD post-pass.
 *
 * Two layers of checks:
 *
 *  - Unit tests for DenseBitMat and Gf2Eliminator against the
 *    gf2::Matrix substrate: rank agreement on random matrices
 *    (round-tripped through both representations), solve round-trips
 *    (the eliminator's solution must reproduce a consistent RHS), and
 *    solvability agreement with the augmented-rank criterion, including
 *    duplicate/singular column sets and zero syndromes.
 *
 *  - Differential fuzz of the packed vs reference osdSolve through the
 *    BpOsdDecoder::osdPostPass seam and the full decode paths, over
 *    random DEMs and the lp39/rqt54 circuit DEMs: random posteriors,
 *    degenerate/tied posteriors (the pivot-order tie-break regression),
 *    all-zero syndromes, and OSD-forcing decode settings. The packed
 *    elimination must match the scalar reference bit for bit.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <random>
#include <vector>

#include "circuit/coloration.h"
#include "code/codes.h"
#include "decoder/bp_osd.h"
#include "decoder/gf2_dense.h"
#include "gf2/bitvec.h"
#include "gf2/matrix.h"
#include "sim/dem_builder.h"
#include "sim/frame_sampler.h"
#include "sim/rng.h"

using namespace prophunt;
using namespace prophunt::decoder;

namespace {

gf2::Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::mt19937_64 &rng,
             double density = 0.35)
{
    gf2::Matrix m(rows, cols);
    std::bernoulli_distribution bit(density);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (bit(rng)) {
                m.set(r, c, true);
            }
        }
    }
    return m;
}

DenseBitMat
toDense(const gf2::Matrix &m)
{
    DenseBitMat d(m.rows(), m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            if (m.get(r, c)) {
                d.set(r, c);
            }
        }
    }
    return d;
}

/** Random sparse DEM; max_p close to 0.5 makes OSD work hard. */
sim::Dem
randomDem(uint64_t seed, std::size_t nd, std::size_t ne, double max_p,
          bool tied_priors = false)
{
    sim::Rng rng(seed);
    sim::Dem dem;
    dem.numDetectors = nd;
    dem.numObservables = 2;
    for (std::size_t e = 0; e < ne; ++e) {
        sim::ErrorMechanism mech;
        mech.p = tied_priors ? max_p : 1e-4 + rng.uniform() * max_p;
        std::size_t weight = 1 + rng.below(3);
        for (std::size_t k = 0; k < weight; ++k) {
            uint32_t d = (uint32_t)rng.below(nd);
            bool dup = false;
            for (uint32_t prev : mech.detectors) {
                dup = dup || prev == d;
            }
            if (!dup) {
                mech.detectors.push_back(d);
            }
        }
        std::sort(mech.detectors.begin(), mech.detectors.end());
        if (rng.below(3) == 0) {
            mech.observables.push_back((uint32_t)rng.below(2));
        }
        dem.errors.push_back(std::move(mech));
    }
    return dem;
}

sim::Dem
circuitDem(code::CssCode (*build)(), std::size_t rounds, double p)
{
    auto cp = std::make_shared<const code::CssCode>(build());
    auto circ = circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                            rounds,
                                            circuit::MemoryBasis::Z);
    return buildDem(circ, sim::NoiseModel::uniform(p));
}

/** Run osdPostPass with both backends and require identical outcomes. */
void
expectBackendsAgree(BpOsdDecoder &dec, const sim::Dem &dem,
                    const std::vector<uint32_t> &cols,
                    const std::vector<double> &post,
                    const std::vector<uint32_t> &flipped)
{
    std::vector<uint8_t> usesPacked, usesScalar;
    bool packedOk = dec.osdPostPass(cols, post, flipped, true, usesPacked);
    bool scalarOk = dec.osdPostPass(cols, post, flipped, false, usesScalar);
    ASSERT_EQ(packedOk, scalarOk);
    ASSERT_EQ(usesPacked, usesScalar);
    if (!packedOk) {
        return;
    }
    // The solution must actually explain the syndrome: XOR of the used
    // columns' detector sets == the flipped set.
    std::vector<uint8_t> parity(dem.numDetectors, 0);
    for (std::size_t i = 0; i < cols.size(); ++i) {
        if (usesPacked[i]) {
            for (uint32_t d : dem.errors[cols[i]].detectors) {
                parity[d] ^= 1;
            }
        }
    }
    std::vector<uint8_t> expected(dem.numDetectors, 0);
    for (uint32_t d : flipped) {
        expected[d] = 1;
    }
    EXPECT_EQ(parity, expected);
}

} // namespace

TEST(DenseBitMat, SetGetClearXor)
{
    DenseBitMat m(3, 130);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 130u);
    EXPECT_EQ(m.rowWords(), 3u);
    m.set(0, 0);
    m.set(0, 64);
    m.set(0, 129);
    m.set(1, 64);
    EXPECT_TRUE(m.get(0, 64));
    EXPECT_FALSE(m.get(1, 0));
    m.xorRowInto(0, m.row(1));
    EXPECT_TRUE(m.get(1, 0));
    EXPECT_FALSE(m.get(1, 64));
    EXPECT_TRUE(m.get(1, 129));
    m.set(0, 64, false);
    EXPECT_FALSE(m.get(0, 64));
    m.clearRow(0);
    EXPECT_FALSE(m.get(0, 0));
    EXPECT_FALSE(m.get(0, 129));
    m.reset(2, 65);
    EXPECT_EQ(m.rowWords(), 2u);
    EXPECT_FALSE(m.get(1, 64));
}

TEST(DenseBitMat, RankMatchesGf2Matrix)
{
    std::mt19937_64 rng(7);
    for (int trial = 0; trial < 40; ++trial) {
        std::size_t rows = 1 + rng() % 24, cols = 1 + rng() % 90;
        gf2::Matrix m = randomMatrix(rows, cols, rng);
        EXPECT_EQ(toDense(m).rank(), m.rank()) << "trial " << trial;
    }
}

TEST(Gf2Eliminator, SolveRoundTripAgainstMatrix)
{
    std::mt19937_64 rng(11);
    for (int trial = 0; trial < 60; ++trial) {
        std::size_t nd = 1 + rng() % 40, ne = 1 + rng() % 50;
        gf2::Matrix h = randomMatrix(nd, ne, rng);
        // Consistent RHS from a random x.
        gf2::BitVec x(ne);
        for (std::size_t c = 0; c < ne; ++c) {
            if (rng() & 1) {
                x.set(c, true);
            }
        }
        gf2::BitVec b = h.mulVec(x);
        // Push the columns in a random order until solved.
        std::vector<uint32_t> perm(ne);
        std::iota(perm.begin(), perm.end(), 0);
        std::shuffle(perm.begin(), perm.end(), rng);

        Gf2Eliminator elim;
        elim.begin(nd);
        for (std::size_t d = 0; d < nd; ++d) {
            if (b.get(d)) {
                elim.setSyndromeBit(d);
            }
        }
        std::vector<uint64_t> col(elim.rowWords());
        std::vector<uint32_t> pushed;
        for (uint32_t pc : perm) {
            std::fill(col.begin(), col.end(), 0);
            for (std::size_t d = 0; d < nd; ++d) {
                if (h.get(d, pc)) {
                    col[d >> 6] |= uint64_t{1} << (d & 63);
                }
            }
            pushed.push_back(pc);
            if (elim.push(col.data())) {
                break;
            }
        }
        ASSERT_TRUE(elim.solved()) << "consistent system, trial " << trial;
        std::vector<uint32_t> sol;
        elim.solution(sol);
        gf2::BitVec acc(nd);
        for (uint32_t idx : sol) {
            acc ^= h.column(pushed[idx]);
        }
        EXPECT_EQ(acc, b) << "trial " << trial;
    }
}

TEST(Gf2Eliminator, UnsolvableMatchesAugmentedRank)
{
    std::mt19937_64 rng(13);
    std::size_t solvable = 0, unsolvable = 0;
    for (int trial = 0; trial < 60; ++trial) {
        // Skinny matrices make inconsistent RHS likely.
        std::size_t nd = 8 + rng() % 30, ne = 1 + rng() % 10;
        gf2::Matrix h = randomMatrix(nd, ne, rng);
        if (h.rank() == 0) {
            continue; // No pivot can ever exist; nothing to check.
        }
        gf2::BitVec b(nd);
        for (std::size_t d = 0; d < nd; ++d) {
            if (rng() & 1) {
                b.set(d, true);
            }
        }
        Gf2Eliminator elim;
        elim.begin(nd);
        for (std::size_t d = 0; d < nd; ++d) {
            if (b.get(d)) {
                elim.setSyndromeBit(d);
            }
        }
        std::vector<uint64_t> col(elim.rowWords());
        for (std::size_t pc = 0; pc < ne; ++pc) {
            std::fill(col.begin(), col.end(), 0);
            for (std::size_t d = 0; d < nd; ++d) {
                if (h.get(d, pc)) {
                    col[d >> 6] |= uint64_t{1} << (d & 63);
                }
            }
            elim.push(col.data());
        }
        // b in the column span of H <=> rank([H^T; b]) == rank(H^T)
        // over rows.
        gf2::Matrix ht = h.transpose();
        gf2::Matrix aug = ht;
        aug.appendRow(b);
        bool inSpan = aug.rank() == ht.rank();
        EXPECT_EQ(elim.solved(), inSpan) << "trial " << trial;
        (inSpan ? solvable : unsolvable) += 1;
        if (!elim.solved()) {
            // Every column was processed (no early freeze), so the
            // eliminator saw the full column space.
            EXPECT_EQ(elim.rank(), h.rank()) << "trial " << trial;
        }
    }
    // The sweep must actually exercise both outcomes.
    EXPECT_GT(solvable, 0u);
    EXPECT_GT(unsolvable, 0u);
}

TEST(Gf2Eliminator, ZeroSyndromeAndDuplicateColumns)
{
    // A zero syndrome is explainable by the empty set as soon as one
    // pivot exists (the reference elimination's behavior); duplicate
    // columns are dependent and never enter the solution.
    Gf2Eliminator elim;
    elim.begin(8);
    std::vector<uint64_t> col{0b0110};
    EXPECT_TRUE(elim.push(col.data()));
    EXPECT_TRUE(elim.solved());
    std::vector<uint32_t> sol;
    elim.solution(sol);
    EXPECT_TRUE(sol.empty());

    elim.begin(8);
    elim.setSyndromeBit(1);
    elim.setSyndromeBit(3);
    std::vector<uint64_t> a{0b0010}, dup{0b0010}, c{0b1000};
    EXPECT_FALSE(elim.push(a.data()));
    EXPECT_FALSE(elim.push(dup.data())); // dependent
    EXPECT_EQ(elim.rank(), 1u);
    EXPECT_TRUE(elim.push(c.data()));
    elim.solution(sol);
    EXPECT_EQ(sol, (std::vector<uint32_t>{0, 2}));
}

TEST(OsdPostPass, DifferentialFuzzRandomDems)
{
    for (uint64_t seed : {31u, 32u, 33u, 34u}) {
        sim::Dem dem = randomDem(seed, 36, 110, 0.2);
        BpOsdDecoder dec(dem);
        sim::Rng rng(seed * 17 + 5);
        for (int trial = 0; trial < 30; ++trial) {
            // Random region: a contiguous-ish random subset of columns.
            std::vector<uint32_t> cols;
            for (uint32_t c = 0; c < dem.errors.size(); ++c) {
                if (rng.below(3) != 0) {
                    cols.push_back(c);
                }
            }
            if (cols.empty()) {
                continue;
            }
            // Random syndrome over the region's detectors (may still be
            // unexplainable — both backends must agree on that too).
            std::vector<uint8_t> inRegion(dem.numDetectors, 0);
            for (uint32_t c : cols) {
                for (uint32_t d : dem.errors[c].detectors) {
                    inRegion[d] = 1;
                }
            }
            std::vector<uint32_t> flipped;
            for (uint32_t d = 0; d < dem.numDetectors; ++d) {
                if (inRegion[d] && rng.below(4) == 0) {
                    flipped.push_back(d);
                }
            }
            std::vector<double> post(cols.size());
            for (double &p : post) {
                p = rng.uniform() * 10.0 - 5.0;
            }
            expectBackendsAgree(dec, dem, cols, post, flipped);
        }
    }
}

TEST(OsdPostPass, TiedPosteriorsPickIdenticalPivotOrders)
{
    // Duplicated priors are the realistic source of exact posterior
    // ties; the tie-break by global column id must make the packed and
    // reference eliminations (and any region discovery order) pick the
    // same pivots. Regression test for the unstable posterior sort.
    sim::Dem dem = randomDem(77, 30, 90, 0.1, /*tied_priors=*/true);
    BpOsdDecoder dec(dem);
    sim::Rng rng(123);
    for (int trial = 0; trial < 25; ++trial) {
        std::vector<uint32_t> cols;
        for (uint32_t c = 0; c < dem.errors.size(); ++c) {
            cols.push_back(c);
        }
        std::vector<uint32_t> flipped;
        for (uint32_t d = 0; d < dem.numDetectors; ++d) {
            if (rng.below(3) == 0) {
                flipped.push_back(d);
            }
        }
        // Heavily tied posteriors: only 3 distinct values.
        std::vector<double> post(cols.size());
        for (double &p : post) {
            p = (double)rng.below(3) - 1.0;
        }
        expectBackendsAgree(dec, dem, cols, post, flipped);

        // The same region presented in a rotated column order must pick
        // the same solution as a set (order-invariance of the
        // tie-break): compare the used global column ids.
        std::vector<uint32_t> rotated(cols.begin() + 7, cols.end());
        rotated.insert(rotated.end(), cols.begin(), cols.begin() + 7);
        std::vector<double> rotatedPost(post.begin() + 7, post.end());
        rotatedPost.insert(rotatedPost.end(), post.begin(),
                           post.begin() + 7);
        std::vector<uint8_t> uses, rotatedUses;
        bool ok = dec.osdPostPass(cols, post, flipped, true, uses);
        bool rok =
            dec.osdPostPass(rotated, rotatedPost, flipped, true,
                            rotatedUses);
        ASSERT_EQ(ok, rok);
        std::vector<uint32_t> usedIds, rotatedIds;
        for (std::size_t i = 0; i < cols.size(); ++i) {
            if (uses[i]) {
                usedIds.push_back(cols[i]);
            }
            if (rotatedUses[i]) {
                rotatedIds.push_back(rotated[i]);
            }
        }
        std::sort(usedIds.begin(), usedIds.end());
        std::sort(rotatedIds.begin(), rotatedIds.end());
        EXPECT_EQ(usedIds, rotatedIds);
    }
}

TEST(OsdPostPass, AllZeroSyndromeAndInfeasibleRegion)
{
    sim::Dem dem = randomDem(55, 24, 60, 0.2);
    BpOsdDecoder dec(dem);
    std::vector<uint32_t> cols{0, 1, 2, 3, 4, 5};
    std::vector<double> post{0.5, 0.5, 0.5, -1.0, 2.0, 0.5}; // ties too
    std::vector<uint8_t> usesPacked, usesScalar;
    // All-zero syndrome: explainable by the empty solution.
    bool p0 = dec.osdPostPass(cols, post, {}, true, usesPacked);
    bool s0 = dec.osdPostPass(cols, post, {}, false, usesScalar);
    EXPECT_EQ(p0, s0);
    EXPECT_EQ(usesPacked, usesScalar);
    if (p0) {
        EXPECT_EQ(std::count(usesPacked.begin(), usesPacked.end(), 1), 0);
    }
    // A flipped detector nowhere adjacent to the region: infeasible for
    // both backends.
    std::vector<uint8_t> inRegion(dem.numDetectors, 0);
    for (uint32_t c : cols) {
        for (uint32_t d : dem.errors[c].detectors) {
            inRegion[d] = 1;
        }
    }
    uint32_t outside = UINT32_MAX;
    for (uint32_t d = 0; d < dem.numDetectors; ++d) {
        if (!inRegion[d]) {
            outside = d;
            break;
        }
    }
    ASSERT_NE(outside, UINT32_MAX);
    EXPECT_FALSE(
        dec.osdPostPass(cols, post, {outside}, true, usesPacked));
    EXPECT_FALSE(
        dec.osdPostPass(cols, post, {outside}, false, usesScalar));
    EXPECT_EQ(usesPacked, usesScalar);
}

TEST(OsdPostPass, DifferentialOnCircuitDems)
{
    // lp39 and rqt54 circuit DEMs: full decode with the packed vs scalar
    // elimination under OSD-forcing settings (tiny iteration budget at
    // benchmark noise) must be observable-identical on every path.
    struct Cfg
    {
        code::CssCode (*build)();
        std::size_t rounds;
        double p;
        std::size_t shots;
    };
    const Cfg cfgs[] = {{code::benchmarkLp39, 3, 4e-3, 200},
                        {code::benchmarkRqt54, 4, 2e-3, 80}};
    for (const Cfg &cfg : cfgs) {
        sim::Dem dem = circuitDem(cfg.build, cfg.rounds, cfg.p);
        sim::FrameBatch frames =
            sim::sampleDemFrames(dem, cfg.shots, 913);
        BpOsdOptions packedOpts;
        packedOpts.maxIterations = 3; // most shots reach OSD
        BpOsdOptions scalarOpts = packedOpts;
        scalarOpts.packedOsd = false;
        BpOsdDecoder packedDec(dem, packedOpts);
        BpOsdDecoder scalarDec(dem, scalarOpts);
        std::vector<uint64_t> packedPred(cfg.shots),
            scalarPred(cfg.shots);
        PackedDecodeStats packedStats, scalarStats;
        packedDec.decodePacked(frames.view(), packedPred.data(),
                               &packedStats);
        scalarDec.decodePacked(frames.view(), scalarPred.data(),
                               &scalarStats);
        EXPECT_EQ(packedPred, scalarPred);
        EXPECT_EQ(packedStats.osdShots, scalarStats.osdShots);
        EXPECT_GT(packedStats.osdShots, cfg.shots / 4)
            << "regime not OSD-heavy enough to test anything";
        // Per-shot decode() must agree with both.
        sim::SampleBatch rows;
        sim::transposeFrames(frames, rows);
        std::vector<uint32_t> scratch;
        for (std::size_t s = 0; s < std::min<std::size_t>(cfg.shots, 40);
             ++s) {
            rows.flippedDetectors(s, scratch);
            EXPECT_EQ(packedDec.decode(scratch), packedPred[s]);
            EXPECT_EQ(scalarDec.decode(scratch), packedPred[s]);
        }
    }
}
