/**
 * @file
 * Tests for the Stim-format exporters.
 */
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "circuit/coloration.h"
#include "code/surface.h"
#include "sim/dem_builder.h"
#include "sim/stim_export.h"

using namespace prophunt;
using namespace prophunt::sim;

namespace {

std::size_t
countLines(const std::string &s, const std::string &prefix)
{
    std::istringstream in(s);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
        if (line.rfind(prefix, 0) == 0) {
            ++n;
        }
    }
    return n;
}

} // namespace

TEST(StimExport, CircuitInstructionCounts)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 3, circuit::MemoryBasis::Z);
    std::string text = toStimCircuit(circ);

    EXPECT_EQ(countLines(text, "CX "), circ.countCnots());
    EXPECT_EQ(countLines(text, "M ") + countLines(text, "MX "),
              circ.numMeasurements);
    EXPECT_EQ(countLines(text, "DETECTOR"), circ.detectors.size());
    EXPECT_EQ(countLines(text, "OBSERVABLE_INCLUDE"),
              circ.observables.size());
    // No noise requested: no error annotations.
    EXPECT_EQ(countLines(text, "DEPOLARIZE"), 0u);
}

TEST(StimExport, NoiseAnnotationsPlacedPerGate)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 2, circuit::MemoryBasis::Z);
    std::string text = toStimCircuit(circ, NoiseModel::uniform(1e-3));
    // One DEPOLARIZE2 per CNOT; one DEPOLARIZE1 per reset/measurement.
    EXPECT_EQ(countLines(text, "DEPOLARIZE2"), circ.countCnots());
    std::size_t oneq = 0;
    for (const auto &ins : circ.instructions) {
        if (ins.op != circuit::OpType::Cnot &&
            ins.op != circuit::OpType::Tick) {
            ++oneq;
        }
    }
    EXPECT_EQ(countLines(text, "DEPOLARIZE1"), oneq);
}

TEST(StimExport, RecordLookbacksInRange)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 2, circuit::MemoryBasis::X);
    std::string text = toStimCircuit(circ);
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        std::size_t pos = 0;
        while ((pos = line.find("rec[-", pos)) != std::string::npos) {
            std::size_t end = line.find(']', pos);
            long k = std::stol(line.substr(pos + 5, end - pos - 5));
            EXPECT_GE(k, 1);
            EXPECT_LE(k, (long)circ.numMeasurements);
            pos = end;
        }
    }
}

TEST(StimExport, DemLinesMatchMechanisms)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cp), 2, circuit::MemoryBasis::Z);
    Dem dem = buildDem(circ, NoiseModel::uniform(1e-3));
    std::string text = toStimDem(dem);
    EXPECT_EQ(countLines(text, "error("), dem.errors.size());
    // Every detector index printed must parse back below numDetectors.
    std::istringstream in(text);
    std::string tok;
    while (in >> tok) {
        if (tok[0] == 'D') {
            EXPECT_LT((std::size_t)std::stoul(tok.substr(1)),
                      dem.numDetectors);
        }
        if (tok[0] == 'L') {
            EXPECT_LT((std::size_t)std::stoul(tok.substr(1)),
                      dem.numObservables);
        }
    }
}
