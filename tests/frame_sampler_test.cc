/**
 * @file
 * Word-packed frame sampler: transpose correctness, bit-identity with the
 * scalar row sampler, and statistical fidelity of the packed event stream.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <memory>

#include "circuit/coloration.h"
#include "code/codes.h"
#include "code/surface.h"
#include "sim/dem_builder.h"
#include "sim/frame_sampler.h"
#include "sim/parallel_sampler.h"
#include "sim/rng.h"
#include "sim/sampler.h"

using namespace prophunt;
using namespace prophunt::sim;

namespace {

Dem
circuitDem(double p)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto circ = circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                            3, circuit::MemoryBasis::Z);
    return buildDem(circ, NoiseModel::uniform(p));
}

Dem
ldpcDem(double p)
{
    auto code = code::benchmarkLp39();
    auto cp = std::make_shared<const code::CssCode>(code);
    auto circ = circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                            3, circuit::MemoryBasis::Z);
    return buildDem(circ, NoiseModel::uniform(p));
}

} // namespace

TEST(Transpose64, MatchesNaiveBitTranspose)
{
    Rng rng(7);
    for (int trial = 0; trial < 8; ++trial) {
        uint64_t m[64], orig[64];
        for (auto &w : m) {
            w = rng.next();
        }
        std::copy(std::begin(m), std::end(m), std::begin(orig));
        transpose64x64(m);
        for (int i = 0; i < 64; ++i) {
            for (int j = 0; j < 64; ++j) {
                EXPECT_EQ((m[i] >> j) & 1, (orig[j] >> i) & 1)
                    << "trial " << trial << " bit (" << i << "," << j << ")";
            }
        }
    }
}

TEST(FrameSampler, TransposedFramesEqualScalarRows)
{
    Dem dem = circuitDem(1e-2);
    // Shot counts around the 64-shot word boundary.
    for (std::size_t shots : {1u, 63u, 64u, 65u, 1000u, 4096u}) {
        for (uint64_t seed : {3u, 99u}) {
            SampleBatch scalar = sampleDem(dem, shots, seed);
            FrameBatch frames = sampleDemFrames(dem, shots, seed);
            SampleBatch rows;
            transposeFrames(frames, rows);
            EXPECT_EQ(scalar.det, rows.det) << shots << "@" << seed;
            EXPECT_EQ(scalar.obs, rows.obs) << shots << "@" << seed;
        }
    }
}

TEST(FrameSampler, LdpcDemBitIdentical)
{
    Dem dem = ldpcDem(2e-3);
    SampleBatch scalar = sampleDem(dem, 3000, 17);
    FrameBatch frames = sampleDemFrames(dem, 3000, 17);
    SampleBatch rows;
    transposeFrames(frames, rows);
    EXPECT_EQ(scalar.det, rows.det);
    EXPECT_EQ(scalar.obs, rows.obs);
}

TEST(FrameSampler, FrameBitsMatchRowBits)
{
    Dem dem = circuitDem(5e-3);
    std::size_t shots = 300;
    FrameBatch frames = sampleDemFrames(dem, shots, 5);
    SampleBatch rows;
    transposeFrames(frames, rows);
    for (std::size_t s = 0; s < shots; s += 7) {
        for (std::size_t d = 0; d < dem.numDetectors; ++d) {
            EXPECT_EQ(frames.detBit(d, s), rows.detBit(s, d));
        }
        for (std::size_t o = 0; o < dem.numObservables; ++o) {
            EXPECT_EQ(frames.obsBit(o, s), rows.obsBit(s, o));
        }
    }
}

TEST(FrameSampler, PerMechanismFlipCountsMatchProbabilities)
{
    // One mechanism per detector: the packed row popcount estimates p.
    Dem dem;
    dem.numDetectors = 4;
    dem.numObservables = 1;
    double ps[] = {0.002, 0.01, 0.05, 0.2};
    for (uint32_t d = 0; d < 4; ++d) {
        ErrorMechanism mech;
        mech.p = ps[d];
        mech.detectors = {d};
        if (d == 0) {
            mech.observables = {0};
        }
        dem.errors.push_back(mech);
    }
    const std::size_t shots = 200000;
    FrameBatch frames = sampleDemFrames(dem, shots, 1234);
    for (uint32_t d = 0; d < 4; ++d) {
        std::size_t flips = 0;
        for (std::size_t w = 0; w < frames.shotWords; ++w) {
            flips += std::popcount(frames.det[d * frames.shotWords + w]);
        }
        double expect = ps[d] * shots;
        double sigma = std::sqrt(ps[d] * (1 - ps[d]) * shots);
        EXPECT_NEAR((double)flips, expect, 6 * sigma) << "detector " << d;
    }
}

TEST(FrameSampler, ShardedSamplerStillThreadInvariant)
{
    // The sharded sampler now routes through packed frames + transpose;
    // the bit-identity contract must survive the rewiring.
    Dem dem = circuitDem(1e-2);
    SampleBatch serial = sampleDemSharded(dem, 5000, 11, 1, 256);
    for (std::size_t threads : {2u, 4u}) {
        SampleBatch par = sampleDemSharded(dem, 5000, 11, threads, 256);
        EXPECT_EQ(serial.det, par.det) << threads;
        EXPECT_EQ(serial.obs, par.obs) << threads;
    }
    // And it still equals per-shard scalar runs.
    ShardPlan plan{5000, 256};
    for (std::size_t i = 0; i < plan.numShards(); i += 5) {
        SampleBatch part = sampleDem(dem, plan.shotsOf(i), shardSeed(11, i));
        for (std::size_t s = 0; s < part.shots; s += 13) {
            EXPECT_EQ(serial.flippedDetectors(plan.offsetOf(i) + s),
                      part.flippedDetectors(s));
        }
    }
}

TEST(FrameSampler, ScratchOverloadMatchesAllocatingOverload)
{
    Dem dem = circuitDem(1e-2);
    SampleBatch batch = sampleDem(dem, 500, 3);
    std::vector<uint32_t> scratch;
    for (std::size_t s = 0; s < batch.shots; ++s) {
        batch.flippedDetectors(s, scratch);
        EXPECT_EQ(batch.flippedDetectors(s), scratch);
    }
}
