/**
 * @file
 * decodeBatch contracts: the batched path must equal per-shot decode bit
 * for bit for every decoder; the BP+OSD hot path must reproduce the
 * original per-region reference implementation exactly in exact mode
 * (stagnationWindow = 0) and keep equal statistical quality in the
 * default stagnation-window mode.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "circuit/coloration.h"
#include "code/codes.h"
#include "code/surface.h"
#include "decoder/bp_osd.h"
#include "decoder/logical_error.h"
#include "decoder/mle.h"
#include "sim/dem_builder.h"
#include "sim/frame_sampler.h"
#include "sim/rng.h"
#include "sim/sampler.h"

using namespace prophunt;
using namespace prophunt::sim;

namespace {

/** Random sparse DEM: ne mechanisms over nd detectors. */
Dem
randomDem(uint64_t seed, std::size_t nd, std::size_t ne, double max_p)
{
    Rng rng(seed);
    Dem dem;
    dem.numDetectors = nd;
    dem.numObservables = 2;
    for (std::size_t e = 0; e < ne; ++e) {
        ErrorMechanism mech;
        mech.p = 1e-4 + rng.uniform() * max_p;
        std::size_t weight = 1 + rng.below(3);
        for (std::size_t k = 0; k < weight; ++k) {
            uint32_t d = (uint32_t)rng.below(nd);
            bool dup = false;
            for (uint32_t prev : mech.detectors) {
                if (prev == d) {
                    dup = true;
                }
            }
            if (!dup) {
                mech.detectors.push_back(d);
            }
        }
        std::sort(mech.detectors.begin(), mech.detectors.end());
        if (rng.below(3) == 0) {
            mech.observables.push_back((uint32_t)rng.below(2));
        }
        dem.errors.push_back(std::move(mech));
    }
    return dem;
}

Dem
ldpcDem(double p)
{
    auto code = code::benchmarkLp39();
    auto cp = std::make_shared<const code::CssCode>(code);
    auto circ = circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                            3, circuit::MemoryBasis::Z);
    return buildDem(circ, NoiseModel::uniform(p));
}

/** decodeBatch(first, count) must equal a per-shot decode() loop. */
void
expectBatchEqualsLoop(decoder::Decoder &dec, const SampleBatch &batch)
{
    std::vector<uint64_t> batched(batch.shots);
    dec.decodeBatch(batch, 0, batch.shots, batched.data());
    for (std::size_t s = 0; s < batch.shots; ++s) {
        EXPECT_EQ(batched[s], dec.decode(batch.flippedDetectors(s)))
            << "shot " << s;
    }
    // An offset sub-range must address the same shots.
    if (batch.shots > 10) {
        std::vector<uint64_t> sub(5);
        dec.decodeBatch(batch, 7, 5, sub.data());
        for (std::size_t i = 0; i < 5; ++i) {
            EXPECT_EQ(sub[i], batched[7 + i]) << "offset shot " << i;
        }
    }
}

} // namespace

TEST(BatchDecode, BpOsdBatchEqualsDecodeOnRandomDems)
{
    for (uint64_t seed : {1u, 2u, 3u}) {
        Dem dem = randomDem(seed, 40, 120, 0.03);
        decoder::BpOsdDecoder dec(dem);
        SampleBatch batch = sampleDem(dem, 400, seed * 7 + 1);
        expectBatchEqualsLoop(dec, batch);
    }
}

TEST(BatchDecode, MleBatchEqualsDecode)
{
    Dem dem = randomDem(5, 10, 18, 0.05);
    decoder::MleDecoder dec(dem, 4);
    SampleBatch batch = sampleDem(dem, 150, 9);
    expectBatchEqualsLoop(dec, batch);
}

TEST(BatchDecode, UnionFindBatchEqualsDecode)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto circ = circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                            3, circuit::MemoryBasis::Z);
    Dem dem = buildDem(circ, NoiseModel::uniform(5e-3));
    auto dec = decoder::makeDecoder(dem, circ,
                                    "union_find");
    SampleBatch batch = sampleDem(dem, 600, 23);
    expectBatchEqualsLoop(*dec, batch);
}

TEST(BatchDecode, ExactModeMatchesReferenceOnRandomDems)
{
    // stagnationWindow = 0 must reproduce the original per-region
    // implementation bit for bit — the global-Tanner rewrite may not
    // change a single prediction.
    decoder::BpOsdOptions exact;
    exact.stagnationWindow = 0;
    for (uint64_t seed : {11u, 12u, 13u, 14u}) {
        Dem dem = randomDem(seed, 50, 160, 0.04);
        decoder::BpOsdDecoder dec(dem, exact);
        SampleBatch batch = sampleDem(dem, 500, seed + 100);
        std::vector<uint32_t> scratch;
        for (std::size_t s = 0; s < batch.shots; ++s) {
            batch.flippedDetectors(s, scratch);
            EXPECT_EQ(dec.decode(scratch), dec.decodeReference(scratch))
                << "seed " << seed << " shot " << s;
        }
    }
}

TEST(BatchDecode, ExactModeMatchesReferenceOnLdpcCircuit)
{
    decoder::BpOsdOptions exact;
    exact.stagnationWindow = 0;
    for (double p : {1e-3, 4e-3}) {
        Dem dem = ldpcDem(p);
        decoder::BpOsdDecoder dec(dem, exact);
        SampleBatch batch = sampleDem(dem, 800, 201);
        std::vector<uint32_t> scratch;
        for (std::size_t s = 0; s < batch.shots; ++s) {
            batch.flippedDetectors(s, scratch);
            EXPECT_EQ(dec.decode(scratch), dec.decodeReference(scratch))
                << "p " << p << " shot " << s;
        }
    }
}

TEST(BatchDecode, StagnationWindowKeepsStatisticalQuality)
{
    // The default stagnation window may change individual hard-shot
    // predictions but must not degrade the logical error rate beyond
    // statistical noise (empirically it slightly improves it).
    Dem dem = ldpcDem(2e-3);
    decoder::BpOsdOptions exact;
    exact.stagnationWindow = 0;
    decoder::BpOsdDecoder dexact(dem, exact);
    decoder::BpOsdDecoder dfast(dem); // default window
    SampleBatch batch = sampleDem(dem, 6000, 77);
    std::vector<uint64_t> a(batch.shots), b(batch.shots);
    dexact.decodeBatch(batch, 0, batch.shots, a.data());
    dfast.decodeBatch(batch, 0, batch.shots, b.data());
    std::size_t failExact = 0, failFast = 0;
    for (std::size_t s = 0; s < batch.shots; ++s) {
        failExact += a[s] != batch.obsMask(s);
        failFast += b[s] != batch.obsMask(s);
    }
    // ~5 sigma of slack on top of the exact-mode failure count.
    double sigma = std::sqrt((double)failExact + 1.0);
    EXPECT_LE((double)failFast, (double)failExact + 5.0 * sigma)
        << "exact=" << failExact << " fast=" << failFast;
}

TEST(BatchDecode, LerEngineThreadInvariantThroughPackedPipeline)
{
    // measureDemLer now samples packed, transposes per shard, and decodes
    // through decodeBatch; failures must stay thread-count independent
    // with the BP+OSD decoder in the loop.
    Dem dem = ldpcDem(4e-3);
    decoder::BpOsdDecoder dec(dem);
    decoder::LerOptions base;
    base.shardShots = 128;
    base.threads = 1;
    decoder::LerResult serial = decoder::measureDemLer(dem, dec, 1500, 31, base);
    EXPECT_EQ(serial.shots, 1500u);
    for (std::size_t threads : {2u, 4u}) {
        decoder::LerOptions opts = base;
        opts.threads = threads;
        decoder::LerResult par =
            decoder::measureDemLer(dem, dec, 1500, 31, opts);
        EXPECT_EQ(serial.failures, par.failures) << threads << " threads";
        EXPECT_EQ(serial.shots, par.shots) << threads << " threads";
    }
}
