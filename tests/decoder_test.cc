/**
 * @file
 * Tests for matching-graph construction, the union-find decoder, BP+OSD,
 * the exact MLE oracle, and the LER harness.
 */
#include <gtest/gtest.h>

#include <memory>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"
#include "decoder/bp_osd.h"
#include "decoder/logical_error.h"
#include "decoder/matching_graph.h"
#include "decoder/mle.h"
#include "decoder/union_find.h"
#include "sim/dem_builder.h"
#include "sim/sampler.h"

using namespace prophunt;
using namespace prophunt::decoder;

namespace {

struct Harness
{
    circuit::SmCircuit circ;
    sim::Dem dem;
};

Harness
surfaceSetup(std::size_t d, double p, circuit::MemoryBasis basis,
             bool use_nz = true)
{
    code::SurfaceCode s(d);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    circuit::SmSchedule sched = use_nz ? circuit::nzSchedule(s)
                                       : circuit::colorationSchedule(cp);
    Harness out{circuit::buildMemoryCircuit(sched, d, basis), {}};
    out.dem = sim::buildDem(out.circ, sim::NoiseModel::uniform(p));
    return out;
}

} // namespace

TEST(MatchingGraph, SurfaceDemIsGraphLike)
{
    Harness s = surfaceSetup(3, 1e-3, circuit::MemoryBasis::Z);
    MatchingGraph g = buildMatchingGraph(s.dem, s.circ);
    EXPECT_EQ(g.numDetectors, s.dem.numDetectors);
    EXPECT_GT(g.edges.size(), 0u);
    EXPECT_EQ(g.fallbackDecompositions, 0u)
        << "surface-code DEM should decompose into known edges";
    for (const auto &e : g.edges) {
        EXPECT_LT(e.u, g.numDetectors);
        EXPECT_TRUE(e.v == MatchEdge::kBoundary || e.v < g.numDetectors);
    }
}

TEST(UnionFind, EmptySyndromeGivesNoFlips)
{
    Harness s = surfaceSetup(3, 1e-3, circuit::MemoryBasis::Z);
    UnionFindDecoder uf(buildMatchingGraph(s.dem, s.circ));
    EXPECT_EQ(uf.decode({}), 0u);
}

TEST(UnionFind, SingleEdgeSyndromeCorrected)
{
    Harness s = surfaceSetup(3, 1e-3, circuit::MemoryBasis::Z);
    MatchingGraph g = buildMatchingGraph(s.dem, s.circ);
    UnionFindDecoder uf(g);
    // Fire each single mechanism; the decoder must predict its observable.
    std::size_t checked = 0;
    for (const auto &mech : s.dem.errors) {
        if (mech.detectors.empty()) {
            continue;
        }
        uint64_t obs = 0;
        for (uint32_t o : mech.observables) {
            obs |= uint64_t{1} << o;
        }
        uint64_t predicted = uf.decode(mech.detectors);
        EXPECT_EQ(predicted, obs)
            << "mechanism with " << mech.detectors.size() << " detectors";
        ++checked;
    }
    EXPECT_GT(checked, 50u);
}

TEST(BpOsd, SingleMechanismsCorrected)
{
    Harness s = surfaceSetup(3, 1e-3, circuit::MemoryBasis::Z);
    BpOsdDecoder bp(s.dem);
    for (const auto &mech : s.dem.errors) {
        if (mech.detectors.empty()) {
            continue;
        }
        uint64_t obs = 0;
        for (uint32_t o : mech.observables) {
            obs |= uint64_t{1} << o;
        }
        EXPECT_EQ(bp.decode(mech.detectors), obs);
    }
}

TEST(BpOsd, AgreesWithMleOnSampledShots)
{
    // Tiny model where MLE is exact: d=3, one round.
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    auto circ = circuit::buildMemoryCircuit(circuit::nzSchedule(s), 1,
                                            circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(2e-3));
    BpOsdDecoder bp(dem);
    MleDecoder mle(dem, 4);
    sim::SampleBatch batch = sim::sampleDem(dem, 400, 3);
    std::size_t bp_fail = 0, mle_fail = 0;
    for (std::size_t shot = 0; shot < 400; ++shot) {
        auto flipped = batch.flippedDetectors(shot);
        uint64_t actual = batch.obsMask(shot);
        bp_fail += bp.decode(flipped) != actual;
        mle_fail += mle.decode(flipped) != actual;
    }
    // BP+OSD should not lose badly to exact MLE.
    EXPECT_LE(bp_fail, mle_fail + 4);
}

TEST(UnionFind, NearMleAccuracy)
{
    code::SurfaceCode s(3);
    auto circ = circuit::buildMemoryCircuit(circuit::nzSchedule(s), 1,
                                            circuit::MemoryBasis::Z);
    sim::Dem dem = sim::buildDem(circ, sim::NoiseModel::uniform(2e-3));
    UnionFindDecoder uf(buildMatchingGraph(dem, circ));
    MleDecoder mle(dem, 4);
    sim::SampleBatch batch = sim::sampleDem(dem, 400, 5);
    std::size_t uf_fail = 0, mle_fail = 0;
    for (std::size_t shot = 0; shot < 400; ++shot) {
        auto flipped = batch.flippedDetectors(shot);
        uint64_t actual = batch.obsMask(shot);
        uf_fail += uf.decode(flipped) != actual;
        mle_fail += mle.decode(flipped) != actual;
    }
    EXPECT_LE(uf_fail, mle_fail + 6);
}

TEST(LogicalError, LerDecreasesWithPhysicalRate)
{
    code::SurfaceCode s(3);
    circuit::SmSchedule nz = circuit::nzSchedule(s);
    auto at = [&](double p) {
        return measureMemoryLer(nz, 3, sim::NoiseModel::uniform(p),
                                "union_find", 20000, 17)
            .combined();
    };
    double high = at(8e-3), low = at(1e-3);
    EXPECT_GT(high, low);
    EXPECT_GT(high, 2.0 * low);
}

TEST(LogicalError, DistanceSuppressesLer)
{
    auto ler_for = [&](std::size_t d) {
        code::SurfaceCode s(d);
        return measureMemoryLer(circuit::nzSchedule(s), d,
                                sim::NoiseModel::uniform(3e-3),
                                "union_find", 10000, 23)
            .combined();
    };
    // Below threshold, d=5 beats d=3.
    EXPECT_LT(ler_for(5), ler_for(3));
}

TEST(LogicalError, NzBeatsPoorSchedule)
{
    code::SurfaceCode s(5);
    double nz = measureMemoryLer(circuit::nzSchedule(s), 5,
                                 sim::NoiseModel::uniform(3e-3),
                                 "union_find", 8000, 31)
                    .combined();
    double poor = measureMemoryLer(circuit::poorSurfaceSchedule(s), 5,
                                   sim::NoiseModel::uniform(3e-3),
                                   "union_find", 8000, 31)
                      .combined();
    EXPECT_LT(nz, poor);
}

TEST(LogicalError, BpOsdHandlesLdpcCode)
{
    auto code = code::benchmarkLp39();
    auto cp = std::make_shared<const code::CssCode>(code);
    circuit::SmSchedule sched = circuit::colorationSchedule(cp);
    decoder::MemoryLer ler =
        measureMemoryLer(sched, 3, sim::NoiseModel::uniform(1e-3),
                         "bp_osd", 2000, 41);
    // Sanity: decodes most shots correctly at this rate.
    EXPECT_LT(ler.combined(), 0.25);
}

TEST(Mle, PrefersLikelierExplanation)
{
    sim::Dem dem;
    dem.numDetectors = 2;
    dem.numObservables = 1;
    sim::ErrorMechanism cheap, exp1, exp2;
    cheap.p = 0.01; // one error explains both detectors, flips observable
    cheap.detectors = {0, 1};
    cheap.observables = {0};
    exp1.p = 0.001;
    exp1.detectors = {0};
    exp2.p = 0.001;
    exp2.detectors = {1};
    dem.errors = {cheap, exp1, exp2};
    MleDecoder mle(dem, 4);
    // P(cheap)=0.01 > P(exp1)*P(exp2)=1e-6: predict the observable flip.
    EXPECT_EQ(mle.decode({0, 1}), 1u);
}
